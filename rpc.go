package amoeba

import (
	"context"
	"fmt"

	"amoeba/internal/flip"
	"amoeba/internal/rpc"
)

// Addr names an RPC endpoint on the network. Addresses identify processes,
// not machines (the FLIP property the paper highlights against IP), so a
// server keeps its address if it moves kernels.
type Addr uint64

// AddrForName derives a stable well-known address from a service name.
func AddrForName(name string) Addr { return Addr(flip.AddressForName(name)) }

// RPCHandler serves one request. Returning a non-zero forward address
// instead of a reply hands the request to that server — the paper's
// ForwardRequest primitive; the reply reaches the client from wherever the
// request lands. When forwarding, a non-nil reply replaces the request
// payload (the handler may rewrite the request before handing it on, e.g. to
// mark it as already forwarded — see the kv shard proxy); a nil reply
// forwards the original bytes unchanged.
type RPCHandler func(req []byte) (reply []byte, forward Addr)

// RPCServer answers point-to-point RPCs, Amoeba's other communication
// primitive and the performance yardstick the paper measures group sends
// against.
type RPCServer struct {
	srv *rpc.Server
}

// RPCServerOptions tunes an RPCServer.
type RPCServerOptions struct {
	// Concurrent runs request handlers on a bounded worker pool, so
	// handlers may block — perform group sends, issue RPCs of their own —
	// without stalling the kernel's packet delivery (which would deadlock
	// a handler that needs inbound packets to make progress). Duplicate
	// requests arriving while a handler runs are suppressed; once it
	// completes, retransmissions are answered from the per-(client,
	// transaction) reply cache.
	Concurrent bool
	// MaxConcurrent bounds the Concurrent worker pool (default 64). A
	// retransmission storm queues and then sheds requests instead of
	// spawning unbounded goroutines; shed requests are served by the
	// client's next retransmission.
	MaxConcurrent int
	// ReplyCacheSize bounds the at-most-once reply cache (default 1024
	// (client, transaction) entries).
	ReplyCacheSize int
}

// NewRPCServer starts serving at addr (use AddrForName for well-known
// services, or 0 to allocate a fresh address). Handlers run on the kernel's
// delivery goroutine and must not block; for blocking handlers see
// NewRPCServerWith.
func (k *Kernel) NewRPCServer(addr Addr, h RPCHandler) (*RPCServer, error) {
	return k.NewRPCServerWith(addr, h, RPCServerOptions{})
}

// NewRPCServerWith starts serving at addr with explicit options.
func (k *Kernel) NewRPCServerWith(addr Addr, h RPCHandler, opts RPCServerOptions) (*RPCServer, error) {
	srv, err := rpc.NewServer(rpc.Config{
		Stack:          k.stack,
		Clock:          k.clock,
		Concurrent:     opts.Concurrent,
		MaxConcurrent:  opts.MaxConcurrent,
		ReplyCacheSize: opts.ReplyCacheSize,
	},
		flip.Address(addr),
		func(req []byte) ([]byte, flip.Address) {
			reply, fwd := h(req)
			return reply, flip.Address(fwd)
		})
	if err != nil {
		return nil, fmt.Errorf("amoeba: starting RPC server: %w", err)
	}
	return &RPCServer{srv: srv}, nil
}

// Addr returns the server's address.
func (s *RPCServer) Addr() Addr { return Addr(s.srv.Addr()) }

// Close stops serving.
func (s *RPCServer) Close() { s.srv.Close() }

// RPCClient issues blocking remote procedure calls.
type RPCClient struct {
	cl *rpc.Client
}

// NewRPCClient creates a client on this kernel.
func (k *Kernel) NewRPCClient() (*RPCClient, error) {
	cl, err := rpc.NewClient(rpc.Config{Stack: k.stack, Clock: k.clock})
	if err != nil {
		return nil, fmt.Errorf("amoeba: creating RPC client: %w", err)
	}
	return &RPCClient{cl: cl}, nil
}

// Call performs a blocking RPC: request out, reply back, with
// retransmission on loss and at-most-once execution at the server. The
// context bounds the call end to end: when ctx expires mid-retransmit the
// pending transaction is withdrawn — its retry timer stops and no goroutine
// or retransmission traffic lingers — and ctx's error is returned.
func (c *RPCClient) Call(ctx context.Context, server Addr, req []byte) ([]byte, error) {
	return c.cl.CallContext(ctx, flip.Address(server), req)
}

// Close releases the client; in-flight calls fail.
func (c *RPCClient) Close() { c.cl.Close() }

// ErrRPCTimeout reports an RPC whose retransmissions all went unanswered:
// the server is unreachable, crashed, or (for a well-known address) not yet
// registered anywhere.
var ErrRPCTimeout = rpc.ErrTimeout
