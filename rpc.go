package amoeba

import (
	"context"
	"fmt"

	"amoeba/internal/flip"
	"amoeba/internal/rpc"
)

// Addr names an RPC endpoint on the network. Addresses identify processes,
// not machines (the FLIP property the paper highlights against IP), so a
// server keeps its address if it moves kernels.
type Addr uint64

// AddrForName derives a stable well-known address from a service name.
func AddrForName(name string) Addr { return Addr(flip.AddressForName(name)) }

// RPCHandler serves one request. Returning a non-zero forward address
// instead of a reply hands the request to that server — the paper's
// ForwardRequest primitive; the reply reaches the client from wherever the
// request lands.
type RPCHandler func(req []byte) (reply []byte, forward Addr)

// RPCServer answers point-to-point RPCs, Amoeba's other communication
// primitive and the performance yardstick the paper measures group sends
// against.
type RPCServer struct {
	srv *rpc.Server
}

// NewRPCServer starts serving at addr (use AddrForName for well-known
// services, or 0 to allocate a fresh address).
func (k *Kernel) NewRPCServer(addr Addr, h RPCHandler) (*RPCServer, error) {
	srv, err := rpc.NewServer(rpc.Config{Stack: k.stack, Clock: k.clock},
		flip.Address(addr),
		func(req []byte) ([]byte, flip.Address) {
			reply, fwd := h(req)
			return reply, flip.Address(fwd)
		})
	if err != nil {
		return nil, fmt.Errorf("amoeba: starting RPC server: %w", err)
	}
	return &RPCServer{srv: srv}, nil
}

// Addr returns the server's address.
func (s *RPCServer) Addr() Addr { return Addr(s.srv.Addr()) }

// Close stops serving.
func (s *RPCServer) Close() { s.srv.Close() }

// RPCClient issues blocking remote procedure calls.
type RPCClient struct {
	cl *rpc.Client
}

// NewRPCClient creates a client on this kernel.
func (k *Kernel) NewRPCClient() (*RPCClient, error) {
	cl, err := rpc.NewClient(rpc.Config{Stack: k.stack, Clock: k.clock})
	if err != nil {
		return nil, fmt.Errorf("amoeba: creating RPC client: %w", err)
	}
	return &RPCClient{cl: cl}, nil
}

// Call performs a blocking RPC: request out, reply back, with
// retransmission on loss and at-most-once execution at the server.
func (c *RPCClient) Call(ctx context.Context, server Addr, req []byte) ([]byte, error) {
	type result struct {
		reply []byte
		err   error
	}
	done := make(chan result, 1)
	go func() {
		reply, err := c.cl.Call(flip.Address(server), req)
		done <- result{reply, err}
	}()
	select {
	case r := <-done:
		return r.reply, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close releases the client; in-flight calls fail.
func (c *RPCClient) Close() { c.cl.Close() }
