package amoeba

// Benchmarks, one per table/figure of the paper plus native-transport
// microbenchmarks.
//
// The Benchmark*_Sim benches drive the calibrated discrete-event simulator
// (the substrate that reproduces the paper's numbers) and report the
// simulated metric via b.ReportMetric: sim-ms/op is virtual milliseconds of
// delay, sim-msg/s virtual throughput. ns/op for those benches measures how
// fast the simulator itself runs. The Native benches measure this library's
// real performance over the in-memory transport on the host machine.
//
// The full parameter sweeps behind each figure live in cmd/amoeba-bench;
// each bench here pins the figure's headline configuration.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"amoeba/internal/core"
	"amoeba/internal/experiments"
	"amoeba/internal/netsim"
)

// simDelay runs one delay configuration per iteration and reports the
// simulated delay.
func simDelay(b *testing.B, members, size, resilience int, method core.Method) {
	b.Helper()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		g, err := experiments.NewSimGroup(experiments.GroupParams{
			Members: members, Resilience: resilience, Method: method,
			Model: netsim.DefaultCostModel(), Seed: 1,
		})
		if err != nil {
			b.Fatalf("NewSimGroup: %v", err)
		}
		total += g.MeasureDelay(1, size, 20) // mean over 20 sends
	}
	b.ReportMetric(float64(total.Microseconds())/float64(b.N)/1000, "sim-ms/op")
}

// simThroughput runs one throughput configuration per iteration.
func simThroughput(b *testing.B, members, size, resilience int, method core.Method) {
	b.Helper()
	var total float64
	for i := 0; i < b.N; i++ {
		g, err := experiments.NewSimGroup(experiments.GroupParams{
			Members: members, Resilience: resilience, Method: method,
			Model: netsim.DefaultCostModel(), Seed: 1,
		})
		if err != nil {
			b.Fatalf("NewSimGroup: %v", err)
		}
		total += g.MeasureThroughput(size, time.Second)
	}
	b.ReportMetric(total/float64(b.N), "sim-msg/s")
}

// BenchmarkTable3_Breakdown reproduces Table 3's measured total: the 0-byte
// PB critical path for a group of 2 (paper: 2740 µs).
func BenchmarkTable3_Breakdown(b *testing.B) {
	simDelay(b, 2, 0, 0, core.MethodPB)
}

// BenchmarkFig1_DelayPB pins Figure 1's headline point: 0-byte PB delay to a
// group of 30 (paper: 2.8 ms).
func BenchmarkFig1_DelayPB(b *testing.B) {
	simDelay(b, 30, 0, 0, core.MethodPB)
}

// BenchmarkFig1_DelayPB8K is Figure 1's large-message point (paper: ≈+20 ms
// over the 0-byte delay).
func BenchmarkFig1_DelayPB8K(b *testing.B) {
	simDelay(b, 2, 8000, 0, core.MethodPB)
}

// BenchmarkFig3_DelayBB pins Figure 3: the BB method's large-message
// advantage (payload crosses the wire once).
func BenchmarkFig3_DelayBB(b *testing.B) {
	simDelay(b, 2, 8000, 0, core.MethodBB)
}

// BenchmarkFig4_ThroughputPB pins Figure 4's maximum: 0-byte PB throughput,
// all members sending (paper: 815 msg/s, sequencer-bound).
func BenchmarkFig4_ThroughputPB(b *testing.B) {
	simThroughput(b, 4, 0, 0, core.MethodPB)
}

// BenchmarkFig5_ThroughputBB is the BB equivalent at 1 KB, where BB's single
// wire transit pays off.
func BenchmarkFig5_ThroughputBB(b *testing.B) {
	simThroughput(b, 4, 1024, 0, core.MethodBB)
}

// BenchmarkFig6_ParallelGroups reproduces Figure 6's peak: five disjoint
// 2-member groups on one Ethernet (paper: 3175 msg/s aggregate).
func BenchmarkFig6_ParallelGroups(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.ParallelGroupsPoint(netsim.DefaultCostModel(), 5, 2)
		if err != nil {
			b.Fatalf("ParallelGroupsPoint: %v", err)
		}
		total += tbl
	}
	b.ReportMetric(total/float64(b.N), "sim-msg/s")
}

// BenchmarkFig7_ResilienceDelay pins Figure 7's endpoint: r=15 in a group of
// 16 (paper: 12.9 ms, ≈600 µs per acknowledgement).
func BenchmarkFig7_ResilienceDelay(b *testing.B) {
	simDelay(b, 16, 0, 15, core.MethodPB)
}

// BenchmarkFig8_ResilienceThroughput pins Figure 8: throughput with
// resilience (r = members−1 = 3), all members sending.
func BenchmarkFig8_ResilienceThroughput(b *testing.B) {
	simThroughput(b, 4, 0, 3, core.MethodPB)
}

// BenchmarkRPCComparison reproduces the §4 RPC comparison (paper: the null
// group send is ≈0.1 ms faster than the null RPC).
func BenchmarkRPCComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RPCComparison(netsim.DefaultCostModel()); err != nil {
			b.Fatalf("RPCComparison: %v", err)
		}
	}
}

// BenchmarkCMComparison reproduces the §6 Chang–Maxemchuk comparison
// (paper: CM needs 2–3 messages and 2(n−1) interrupts per broadcast versus
// Amoeba's 2 and n).
func BenchmarkCMComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CMComparison(netsim.DefaultCostModel()); err != nil {
			b.Fatalf("CMComparison: %v", err)
		}
	}
}

// BenchmarkUserSpaceAblation reproduces the §5 kernel-vs-user-space
// discussion (Oey et al.: 32% processing penalty, small end-to-end effect).
func BenchmarkUserSpaceAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.UserSpaceAblation(netsim.DefaultCostModel()); err != nil {
			b.Fatalf("UserSpaceAblation: %v", err)
		}
	}
}

// BenchmarkSequencerPlacement quantifies the §5 co-location observation
// behind migrating sequencers: one multicast instead of request+broadcast.
func BenchmarkSequencerPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SequencerPlacement(netsim.DefaultCostModel()); err != nil {
			b.Fatalf("SequencerPlacement: %v", err)
		}
	}
}

// BenchmarkProcessingScaling supports the paper's conclusion 1: throughput
// is bounded by per-message processing time, not the protocol.
func BenchmarkProcessingScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ProcessingScaling(netsim.DefaultCostModel()); err != nil {
			b.Fatalf("ProcessingScaling: %v", err)
		}
	}
}

// --- Native performance of this library (no simulator) ----------------------

func nativeGroup(b *testing.B, members int, opts GroupOptions) []*Group {
	b.Helper()
	ctx := context.Background()
	net := NewMemoryNetwork()
	b.Cleanup(net.Close)
	groups := make([]*Group, members)
	for i := 0; i < members; i++ {
		k, err := net.NewKernel(fmt.Sprintf("bench-%d", i))
		if err != nil {
			b.Fatalf("kernel: %v", err)
		}
		if i == 0 {
			groups[i], err = k.CreateGroup(ctx, "bench", opts)
		} else {
			groups[i], err = k.JoinGroup(ctx, "bench", opts)
		}
		if err != nil {
			b.Fatalf("member %d: %v", i, err)
		}
	}
	return groups
}

// BenchmarkNativeSendLatency measures a blocking Send round trip (member →
// sequencer → ordered broadcast back) on the in-memory transport.
func BenchmarkNativeSendLatency(b *testing.B) {
	groups := nativeGroup(b, 3, GroupOptions{})
	ctx := context.Background()
	payload := []byte("native-benchmark-payload")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := groups[1].Send(ctx, payload); err != nil {
			b.Fatalf("send: %v", err)
		}
	}
}

// BenchmarkNativeSendLatency8K is the large-message variant (fragmented).
func BenchmarkNativeSendLatency8K(b *testing.B) {
	groups := nativeGroup(b, 3, GroupOptions{})
	ctx := context.Background()
	payload := make([]byte, 8000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := groups[1].Send(ctx, payload); err != nil {
			b.Fatalf("send: %v", err)
		}
	}
}

// BenchmarkNativeResilientSend measures Send with resilience 1 (tentative →
// ack → accept).
func BenchmarkNativeResilientSend(b *testing.B) {
	groups := nativeGroup(b, 3, GroupOptions{Resilience: 1})
	ctx := context.Background()
	payload := []byte("resilient")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := groups[1].Send(ctx, payload); err != nil {
			b.Fatalf("send: %v", err)
		}
	}
}

// BenchmarkNativeDeliveryThroughput measures end-to-end ordered delivery:
// one sender streaming, one member consuming.
func BenchmarkNativeDeliveryThroughput(b *testing.B) {
	groups := nativeGroup(b, 2, GroupOptions{})
	ctx := context.Background()
	payload := []byte("stream")
	done := make(chan error, 1)
	go func() {
		for {
			m, err := groups[1].Receive(ctx)
			if err != nil {
				done <- err
				return
			}
			if m.Kind == Data && string(m.Payload) == "stop" {
				done <- nil
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := groups[0].Send(ctx, payload); err != nil {
			b.Fatalf("send: %v", err)
		}
	}
	if err := groups[0].Send(ctx, []byte("stop")); err != nil {
		b.Fatalf("stop: %v", err)
	}
	if err := <-done; err != nil {
		b.Fatalf("receiver: %v", err)
	}
}

// BenchmarkNativeRPC measures a null RPC on the in-memory transport.
func BenchmarkNativeRPC(b *testing.B) {
	ctx := context.Background()
	net := NewMemoryNetwork()
	b.Cleanup(net.Close)
	ks, _ := net.NewKernel("server")
	kc, _ := net.NewKernel("client")
	srv, err := ks.NewRPCServer(0, func(req []byte) ([]byte, Addr) { return req, 0 })
	if err != nil {
		b.Fatalf("server: %v", err)
	}
	b.Cleanup(srv.Close)
	cl, err := kc.NewRPCClient()
	if err != nil {
		b.Fatalf("client: %v", err)
	}
	b.Cleanup(cl.Close)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Call(ctx, srv.Addr(), nil); err != nil {
			b.Fatalf("call: %v", err)
		}
	}
}
