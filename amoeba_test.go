package amoeba

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestQuickstartFlow(t *testing.T) {
	ctx := ctxT(t)
	net := NewMemoryNetwork()
	defer net.Close()
	k1, err := net.NewKernel("m1")
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	k2, err := net.NewKernel("m2")
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	g1, err := k1.CreateGroup(ctx, "workers", GroupOptions{})
	if err != nil {
		t.Fatalf("CreateGroup: %v", err)
	}
	g2, err := k2.JoinGroup(ctx, "workers", GroupOptions{})
	if err != nil {
		t.Fatalf("JoinGroup: %v", err)
	}
	if err := g1.Send(ctx, []byte("hello, group")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// g2's stream: its own join, then the data.
	m, err := g2.Receive(ctx)
	if err != nil || m.Kind != Join {
		t.Fatalf("first receive = %+v, %v", m, err)
	}
	m, err = g2.Receive(ctx)
	if err != nil {
		t.Fatalf("Receive: %v", err)
	}
	if m.Kind != Data || string(m.Payload) != "hello, group" || m.Sender != 0 {
		t.Fatalf("message = %+v", m)
	}
}

func TestJoinNonexistentGroupFails(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	net := NewMemoryNetwork()
	defer net.Close()
	k, _ := net.NewKernel("m")
	_, err := k.JoinGroup(ctx, "ghost", GroupOptions{})
	if !errors.Is(err, ErrNoGroup) {
		t.Fatalf("err = %v, want ErrNoGroup", err)
	}
}

func TestTotalOrderAcrossManyMembers(t *testing.T) {
	ctx := ctxT(t)
	net := NewMemoryNetwork()
	defer net.Close()
	const members = 5
	groups := make([]*Group, members)
	for i := 0; i < members; i++ {
		k, _ := net.NewKernel(fmt.Sprintf("m%d", i))
		var err error
		if i == 0 {
			groups[i], err = k.CreateGroup(ctx, "order", GroupOptions{})
		} else {
			groups[i], err = k.JoinGroup(ctx, "order", GroupOptions{})
		}
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}
	// Concurrent senders.
	const per = 10
	var wg sync.WaitGroup
	for i := 0; i < members; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if err := groups[i].Send(ctx, []byte(fmt.Sprintf("%d:%d", i, j))); err != nil {
					t.Errorf("send %d:%d: %v", i, j, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Every member receives the identical data stream.
	var ref []string
	for i := 0; i < members; i++ {
		var got []string
		for len(got) < members*per {
			m, err := groups[i].Receive(ctx)
			if err != nil {
				t.Fatalf("receive at %d: %v", i, err)
			}
			if m.Kind == Data {
				got = append(got, fmt.Sprintf("%d@%s", m.Seq, m.Payload))
			}
		}
		if i == 0 {
			ref = got
			continue
		}
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("member %d delivery %d = %s, member 0 saw %s", i, j, got[j], ref[j])
			}
		}
	}
}

func TestMembershipEventsInStream(t *testing.T) {
	ctx := ctxT(t)
	net := NewMemoryNetwork()
	defer net.Close()
	k1, _ := net.NewKernel("m1")
	k2, _ := net.NewKernel("m2")
	g1, err := k1.CreateGroup(ctx, "events", GroupOptions{})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	g2, err := k2.JoinGroup(ctx, "events", GroupOptions{})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	// g1 sees: own join, g2's join.
	m, _ := g1.Receive(ctx)
	if m.Kind != Join || m.Sender != 0 || m.Members != 1 {
		t.Fatalf("first event = %+v", m)
	}
	m, _ = g1.Receive(ctx)
	if m.Kind != Join || m.Sender != 1 || m.Members != 2 {
		t.Fatalf("second event = %+v", m)
	}
	if err := g2.Leave(ctx); err != nil {
		t.Fatalf("leave: %v", err)
	}
	m, _ = g1.Receive(ctx)
	if m.Kind != Leave || m.Sender != 1 || m.Members != 1 {
		t.Fatalf("leave event = %+v", m)
	}
	// The departed handle is dead.
	if err := g2.Send(ctx, []byte("x")); err == nil {
		t.Fatal("send after leave succeeded")
	}
}

func TestInfoAndSequencerIdentity(t *testing.T) {
	ctx := ctxT(t)
	net := NewMemoryNetwork()
	defer net.Close()
	k1, _ := net.NewKernel("m1")
	k2, _ := net.NewKernel("m2")
	g1, _ := k1.CreateGroup(ctx, "info", GroupOptions{Resilience: 1})
	g2, err := k2.JoinGroup(ctx, "info", GroupOptions{Resilience: 1})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	i1, i2 := g1.Info(), g2.Info()
	if !i1.IsSequencer || i2.IsSequencer {
		t.Fatalf("sequencer flags: %+v %+v", i1, i2)
	}
	if i1.Members != 2 || i2.Members != 2 || i2.Sequencer != 0 {
		t.Fatalf("info: %+v %+v", i1, i2)
	}
	if i2.Resilience != 1 || i2.Name != "info" {
		t.Fatalf("info: %+v", i2)
	}
	if len(i2.MemberIDs) != 2 || i2.MemberIDs[0] != 0 || i2.MemberIDs[1] != 1 {
		t.Fatalf("member ids: %v", i2.MemberIDs)
	}
}

func TestResetAfterSequencerCrash(t *testing.T) {
	ctx := ctxT(t)
	net := NewMemoryNetwork()
	defer net.Close()
	k1, _ := net.NewKernel("m1")
	k2, _ := net.NewKernel("m2")
	k3, _ := net.NewKernel("m3")
	g1, _ := k1.CreateGroup(ctx, "crashy", GroupOptions{})
	g2, err := k2.JoinGroup(ctx, "crashy", GroupOptions{})
	if err != nil {
		t.Fatalf("join2: %v", err)
	}
	g3, err := k3.JoinGroup(ctx, "crashy", GroupOptions{})
	if err != nil {
		t.Fatalf("join3: %v", err)
	}
	if err := g2.Send(ctx, []byte("before")); err != nil {
		t.Fatalf("send: %v", err)
	}
	g1.Close() // sequencer crashes
	if err := g2.Reset(ctx, 2); err != nil {
		t.Fatalf("reset: %v", err)
	}
	info := g2.Info()
	if !info.IsSequencer || info.Members != 2 || info.Incarnation < 2 {
		t.Fatalf("post-reset info: %+v", info)
	}
	if err := g3.Send(ctx, []byte("after")); err != nil {
		t.Fatalf("post-reset send: %v", err)
	}
	// g3 sees: joins (its own), "before", reset, "after" — with data
	// payloads intact and in order.
	var data []string
	var sawReset bool
	for len(data) < 2 {
		m, err := g3.Receive(ctx)
		if err != nil {
			t.Fatalf("receive: %v", err)
		}
		switch m.Kind {
		case Data:
			data = append(data, string(m.Payload))
		case Reset:
			sawReset = true
		}
	}
	if data[0] != "before" || data[1] != "after" {
		t.Fatalf("data = %v", data)
	}
	if !sawReset {
		t.Fatal("reset event not delivered in stream")
	}
}

func TestContextCancellationUnblocksReceive(t *testing.T) {
	net := NewMemoryNetwork()
	defer net.Close()
	k, _ := net.NewKernel("m")
	g, err := k.CreateGroup(context.Background(), "quiet", GroupOptions{})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	// Drain the self-join, then block on an empty queue.
	if _, err := g.Receive(context.Background()); err != nil {
		t.Fatalf("receive join: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := g.Receive(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestSendUnderFaultyNetwork(t *testing.T) {
	ctx := ctxT(t)
	net := NewMemoryNetworkWithFaults(MemoryNetworkConfig{DropRate: 0.15, CorruptRate: 0.05, Seed: 3})
	defer net.Close()
	k1, _ := net.NewKernel("m1")
	k2, _ := net.NewKernel("m2")
	g1, err := k1.CreateGroup(ctx, "lossy", GroupOptions{})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	g2, err := k2.JoinGroup(ctx, "lossy", GroupOptions{})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := g1.Send(ctx, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	seen := 0
	for seen < 10 {
		m, err := g2.Receive(ctx)
		if err != nil {
			t.Fatalf("receive: %v", err)
		}
		if m.Kind == Data {
			if m.Payload[0] != byte(seen) {
				t.Fatalf("out of order under loss: got %d want %d", m.Payload[0], seen)
			}
			seen++
		}
	}
}

func TestRPCAndForwardRequest(t *testing.T) {
	ctx := ctxT(t)
	net := NewMemoryNetwork()
	defer net.Close()
	k1, _ := net.NewKernel("m1")
	k2, _ := net.NewKernel("m2")
	k3, _ := net.NewKernel("m3")

	backend, err := k2.NewRPCServer(0, func(req []byte) ([]byte, Addr) {
		return append([]byte("did:"), req...), 0
	})
	if err != nil {
		t.Fatalf("backend: %v", err)
	}
	defer backend.Close()
	front, err := k1.NewRPCServer(AddrForName("frontdoor"), func(req []byte) ([]byte, Addr) {
		return nil, backend.Addr() // ForwardRequest
	})
	if err != nil {
		t.Fatalf("front: %v", err)
	}
	defer front.Close()

	cl, err := k3.NewRPCClient()
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer cl.Close()
	reply, err := cl.Call(ctx, AddrForName("frontdoor"), []byte("work"))
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if string(reply) != "did:work" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestMsgKindStrings(t *testing.T) {
	for k, want := range map[MsgKind]string{
		Data: "data", Join: "join", Leave: "leave",
		Reset: "reset", Expelled: "expelled", MsgKind(0): "unknown",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestManyGroupsOnOneKernel(t *testing.T) {
	ctx := ctxT(t)
	net := NewMemoryNetwork()
	defer net.Close()
	k1, _ := net.NewKernel("m1")
	k2, _ := net.NewKernel("m2")
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("g%d", i)
		ga, err := k1.CreateGroup(ctx, name, GroupOptions{})
		if err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
		gb, err := k2.JoinGroup(ctx, name, GroupOptions{})
		if err != nil {
			t.Fatalf("join %s: %v", name, err)
		}
		if err := ga.Send(ctx, []byte(name)); err != nil {
			t.Fatalf("send %s: %v", name, err)
		}
		for {
			m, err := gb.Receive(ctx)
			if err != nil {
				t.Fatalf("receive %s: %v", name, err)
			}
			if m.Kind == Data {
				if string(m.Payload) != name {
					t.Fatalf("cross-group leak: got %q in %s", m.Payload, name)
				}
				break
			}
		}
	}
}

func TestFullStackOverUDP(t *testing.T) {
	ctx := ctxT(t)
	net := NewUDPNetwork()
	defer net.Close()
	k1, err := net.NewKernel("udp-1")
	if err != nil {
		t.Fatalf("kernel: %v", err)
	}
	k2, err := net.NewKernel("udp-2")
	if err != nil {
		t.Fatalf("kernel: %v", err)
	}
	g1, err := k1.CreateGroup(ctx, "over-udp", GroupOptions{Resilience: 1})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	g2, err := k2.JoinGroup(ctx, "over-udp", GroupOptions{Resilience: 1})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if err := g1.Send(ctx, []byte("real datagrams")); err != nil {
		t.Fatalf("send: %v", err)
	}
	for {
		m, err := g2.Receive(ctx)
		if err != nil {
			t.Fatalf("receive: %v", err)
		}
		if m.Kind == Data {
			if string(m.Payload) != "real datagrams" {
				t.Fatalf("payload = %q", m.Payload)
			}
			return
		}
	}
}

// TestFirstSeqSeedsSequenceSpace: a group created with FirstSeq continues a
// recovered timeline — its first entries are ordered past the seed, and a
// joiner's deliveries carry the continued numbering.
func TestFirstSeqSeedsSequenceSpace(t *testing.T) {
	ctx := ctxT(t)
	net := NewMemoryNetwork()
	defer net.Close()
	k1, err := net.NewKernel("m1")
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	k2, err := net.NewKernel("m2")
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	const seed = 500
	g1, err := k1.CreateGroup(ctx, "reformed", GroupOptions{FirstSeq: seed})
	if err != nil {
		t.Fatalf("CreateGroup: %v", err)
	}
	defer g1.Close()
	// The creator's own join is the first entry of the continued history.
	m, err := g1.Receive(ctx)
	if err != nil || m.Kind != Join || m.Seq != seed+1 {
		t.Fatalf("creator's first delivery = %+v, %v; want join at seq %d", m, err, seed+1)
	}
	g2, err := k2.JoinGroup(ctx, "reformed", GroupOptions{})
	if err != nil {
		t.Fatalf("JoinGroup: %v", err)
	}
	defer g2.Close()
	if err := g1.Send(ctx, []byte("post-recovery")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m, err = g2.Receive(ctx) // own join
	if err != nil || m.Kind != Join || m.Seq != seed+2 {
		t.Fatalf("joiner's join = %+v, %v; want seq %d", m, err, seed+2)
	}
	m, err = g2.Receive(ctx)
	if err != nil || m.Kind != Data || m.Seq != seed+3 {
		t.Fatalf("data = %+v, %v; want seq %d", m, err, seed+3)
	}
	if info := g1.Info(); info.NextSeq != seed+4 {
		t.Fatalf("NextSeq = %d, want %d", info.NextSeq, seed+4)
	}
}
