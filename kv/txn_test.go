package kv

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"amoeba"
)

// pickCrossShardKeys probes key names until it has n keys on n distinct
// shards, so a test transaction is guaranteed to span groups.
func pickCrossShardKeys(t *testing.T, s *Store, prefix string, n int) []string {
	t.Helper()
	byShard := make(map[int]string)
	for i := 0; len(byShard) < n && i < 10000; i++ {
		k := fmt.Sprintf("%s-%04d", prefix, i)
		sh := s.ShardFor(k)
		if _, ok := byShard[sh]; !ok {
			byShard[sh] = k
		}
	}
	if len(byShard) < n {
		t.Fatalf("could not find %d cross-shard keys with prefix %q", n, prefix)
	}
	out := make([]string, 0, n)
	for _, k := range byShard {
		out = append(out, k)
		if len(out) == n {
			break
		}
	}
	sort.Strings(out)
	return out
}

func TestTxnCommitCrossShard(t *testing.T) {
	ctx := ctxT(t, 60*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "txn-basic", 2, Options{Shards: 4})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	cl := stores[0].NewClient()
	defer cl.Close()

	keys := pickCrossShardKeys(t, stores[0], "txn", 2)
	a, b := keys[0], keys[1]
	if err := cl.Put(ctx, a, []byte("10")); err != nil {
		t.Fatalf("seed %s: %v", a, err)
	}
	if err := cl.Put(ctx, b, []byte("20")); err != nil {
		t.Fatalf("seed %s: %v", b, err)
	}

	res, err := cl.Txn(ctx, TxnOp{
		Reads:  []string{a, b},
		Writes: []TxnWrite{{Key: a, Val: []byte("5")}, {Key: b, Val: []byte("25")}},
		Conds:  []TxnCond{{Key: a, ExpectPresent: true, Expect: []byte("10")}},
	})
	if err != nil {
		t.Fatalf("Txn: %v", err)
	}
	if !res.Committed || res.CondFailed {
		t.Fatalf("Txn = %+v, want committed", res)
	}
	// The returned reads are the pre-state, captured under the locks.
	if len(res.Values) != 2 || string(res.Values[0]) != "10" || string(res.Values[1]) != "20" {
		t.Fatalf("Txn read snapshot = %q", res.Values)
	}
	if v, _, _ := cl.Get(ctx, a); string(v) != "5" {
		t.Fatalf("%s = %q after commit", a, v)
	}
	if v, _, _ := cl.Get(ctx, b); string(v) != "25" {
		t.Fatalf("%s = %q after commit", b, v)
	}

	// A read-only transaction commits trivially and returns a snapshot.
	ro, err := cl.Txn(ctx, TxnOp{Reads: []string{a, b}})
	if err != nil || !ro.Committed {
		t.Fatalf("read-only Txn = %+v %v", ro, err)
	}
	if string(ro.Values[0]) != "5" || string(ro.Values[1]) != "25" {
		t.Fatalf("read-only snapshot = %q", ro.Values)
	}

	// A delete rides the same machinery.
	res, err = cl.Txn(ctx, TxnOp{Writes: []TxnWrite{{Key: a, Delete: true}}})
	if err != nil || !res.Committed {
		t.Fatalf("delete Txn = %+v %v", res, err)
	}
	if _, ok, _ := cl.Get(ctx, a); ok {
		t.Fatalf("%s survived transactional delete", a)
	}
}

func TestTxnCondFailedAborts(t *testing.T) {
	ctx := ctxT(t, 60*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "txn-cond", 1, Options{Shards: 4})
	defer stores[0].Close()
	cl := stores[0].NewClient()
	defer cl.Close()

	keys := pickCrossShardKeys(t, stores[0], "cond", 2)
	a, b := keys[0], keys[1]
	if err := cl.Put(ctx, a, []byte("x")); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Txn(ctx, TxnOp{
		Writes: []TxnWrite{{Key: a, Val: []byte("y")}, {Key: b, Val: []byte("y")}},
		Conds:  []TxnCond{{Key: a, ExpectPresent: true, Expect: []byte("WRONG")}},
	})
	if err != nil {
		t.Fatalf("Txn: %v", err)
	}
	if res.Committed || !res.CondFailed {
		t.Fatalf("Txn = %+v, want CondFailed abort", res)
	}
	if v, _, _ := cl.Get(ctx, a); string(v) != "x" {
		t.Fatalf("%s = %q after aborted txn, want untouched", a, v)
	}
	if _, ok, _ := cl.Get(ctx, b); ok {
		t.Fatalf("%s written by aborted txn", b)
	}
	// The locks are released: an ordinary write proceeds.
	if err := cl.Put(ctx, b, []byte("free")); err != nil {
		t.Fatalf("Put after abort: %v", err)
	}
}

// bankSum MGets every account and returns the balance total.
func bankSum(t *testing.T, ctx context.Context, cl *Client, accounts []string) int {
	t.Helper()
	got, err := cl.MGet(ctx, accounts...)
	if err != nil {
		t.Fatalf("MGet: %v", err)
	}
	sum := 0
	for _, k := range accounts {
		v, ok := got[k]
		if !ok {
			t.Fatalf("account %s missing", k)
		}
		n, err := strconv.Atoi(string(v))
		if err != nil {
			t.Fatalf("account %s = %q", k, v)
		}
		sum += n
	}
	return sum
}

// TestTxnBankTransfersConcurrent is the acceptance workload in miniature:
// concurrent transfers between accounts spread across shards must conserve
// the total balance, and every MGet snapshot taken mid-flight must already
// observe a conserved total — never a half-applied transfer.
func TestTxnBankTransfersConcurrent(t *testing.T) {
	ctx := ctxT(t, 120*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "txn-bank", 3, Options{Shards: 4})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()

	const accounts, initial = 8, 100
	keys := make([]string, accounts)
	seed := stores[0].NewClient()
	for i := range keys {
		keys[i] = fmt.Sprintf("bank-%d", i)
		if err := seed.Put(ctx, keys[i], []byte(strconv.Itoa(initial))); err != nil {
			t.Fatalf("seed: %v", err)
		}
	}
	seed.Close()
	total := accounts * initial

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := stores[w%len(stores)].NewClient()
			defer cl.Close()
			for i := 0; i < 25; i++ {
				from, to := keys[(w+i)%accounts], keys[(w*3+i*5+1)%accounts]
				if from == to {
					continue
				}
				for {
					snap, err := cl.Txn(ctx, TxnOp{Reads: []string{from, to}})
					if err != nil {
						errCh <- err
						return
					}
					fv, _ := strconv.Atoi(string(snap.Values[0]))
					tv, _ := strconv.Atoi(string(snap.Values[1]))
					if fv <= 0 {
						break
					}
					res, err := cl.Txn(ctx, TxnOp{
						Conds: []TxnCond{
							{Key: from, ExpectPresent: true, Expect: []byte(strconv.Itoa(fv))},
							{Key: to, ExpectPresent: true, Expect: []byte(strconv.Itoa(tv))},
						},
						Writes: []TxnWrite{
							{Key: from, Val: []byte(strconv.Itoa(fv - 1))},
							{Key: to, Val: []byte(strconv.Itoa(tv + 1))},
						},
					})
					if err != nil {
						errCh <- err
						return
					}
					if res.Committed {
						break
					}
					// CondFailed: lost the race, re-read and retry.
				}
			}
		}()
	}
	// Auditor: MGet snapshots taken during the churn must conserve the
	// total — the consistent-MGet satellite, checked live.
	auditDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(auditDone)
		cl := stores[2].NewClient()
		defer cl.Close()
		for i := 0; i < 40; i++ {
			if sum := bankSum(t, ctx, cl, keys); sum != total {
				errCh <- fmt.Errorf("mid-flight MGet snapshot sum = %d, want %d", sum, total)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	cl := stores[1].NewClient()
	defer cl.Close()
	if sum := bankSum(t, ctx, cl, keys); sum != total {
		t.Fatalf("final sum = %d, want %d", sum, total)
	}
}

// TestMGetSnapshotRegression pins the consistent-MGet bugfix: a writer keeps
// the invariant a == b via atomic transactions; a scatter-gather MGet could
// observe a from before a transaction and b from after it. The snapshot MGet
// must never see the halves disagree.
func TestMGetSnapshotRegression(t *testing.T) {
	ctx := ctxT(t, 120*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "mget-snap", 2, Options{Shards: 4})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	keys := pickCrossShardKeys(t, stores[0], "pair", 2)
	a, b := keys[0], keys[1]

	w := stores[0].NewClient()
	defer w.Close()
	if _, err := w.Txn(ctx, TxnOp{Writes: []TxnWrite{
		{Key: a, Val: []byte("0")}, {Key: b, Val: []byte("0")},
	}}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 1; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			v := []byte(strconv.Itoa(n))
			if _, err := w.Txn(ctx, TxnOp{Writes: []TxnWrite{
				{Key: a, Val: v}, {Key: b, Val: v},
			}}); err != nil {
				return
			}
		}
	}()
	r := stores[1].NewClient()
	defer r.Close()
	for i := 0; i < 50; i++ {
		got, err := r.MGet(ctx, a, b)
		if err != nil {
			t.Fatalf("MGet: %v", err)
		}
		if string(got[a]) != string(got[b]) {
			close(stop)
			wg.Wait()
			t.Fatalf("MGet observed a half-applied transaction: %s=%q %s=%q",
				a, got[a], b, got[b])
		}
	}
	close(stop)
	wg.Wait()
}

// txnDurableOpts builds the durable-store options shared by the crash tests.
func txnDurableOpts(dataDir string) Options {
	return Options{
		Shards:           4,
		DataDir:          dataDir,
		CheckpointEvery:  64,
		TxnRecoveryAfter: 500 * time.Millisecond,
		Group: amoeba.GroupOptions{
			AutoReset:    true,
			MinSurvivors: 1,
		},
	}
}

// TestTxnKillAllBetweenPrepareAndCommit crashes every node after the prepare
// phase journaled but before any resolve — the deepest in-doubt window. The
// restarted store must arbitrate the orphaned prepare (presumed abort: the
// home never decided), release the locks, and a retry of the SAME
// coordinator request must then commit exactly once.
func TestTxnKillAllBetweenPrepareAndCommit(t *testing.T) {
	ctx := ctxT(t, 180*time.Second)
	dataDir, err := os.MkdirTemp("", "kv-txn-prepare-crash-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	opts := txnDurableOpts(dataDir)
	const nodes = 2
	boot := func(gen int) ([]*Store, *amoeba.MemoryNetwork) {
		t.Helper()
		net := amoeba.NewMemoryNetwork()
		kernels := make([]*amoeba.Kernel, nodes)
		for i := range kernels {
			k, err := net.NewKernel(fmt.Sprintf("txnprep-g%d-n%d", gen, i))
			if err != nil {
				t.Fatalf("kernel: %v", err)
			}
			kernels[i] = k
		}
		stores, err := Bootstrap(ctx, kernels, "txnprep", opts)
		if err != nil {
			t.Fatalf("Bootstrap gen %d: %v", gen, err)
		}
		return stores, net
	}

	stores, net := boot(0)
	cl := stores[0].NewClient()
	keys := pickCrossShardKeys(t, stores[0], "acct", 2)
	from, to := keys[0], keys[1]
	for _, k := range keys {
		if err := cl.Put(ctx, k, []byte("100")); err != nil {
			t.Fatalf("seed: %v", err)
		}
	}

	// Drive phase 1 only, under the pinned coordinator request id: the
	// prepares sequence and journal, then the whole cluster dies before any
	// resolve — exactly what a coordinator crash mid-2PC leaves behind.
	const pinID = 0xBEEF0001
	allKeys := append([]string(nil), keys...)
	sort.Strings(allKeys)
	prep, err := cl.Do(ctx, &Request{
		Op: ReqTxnPrepare, ID: pinID, TxnID: txnAttemptID(pinID, 0),
		HomeKey: allKeys[0], AllKeys: allKeys,
		Writes: []TxnWrite{
			{Key: from, Val: []byte("90")},
			{Key: to, Val: []byte("110")},
		},
		Conds: []TxnCond{{Key: from, ExpectPresent: true, Expect: []byte("100")}},
	})
	if err != nil || !prep.OK || prep.TxnState != txnStatePrepared {
		t.Fatalf("prepare = %+v %v", prep, err)
	}
	cl.Close()
	for _, s := range stores {
		s.Close() // no goodbye: every node at once
	}
	net.Close()

	// Bootstrap recovers the WALs AND resolves the in-doubt prepare before
	// returning: the home never decided, so presumed abort.
	stores2, net2 := boot(1)
	defer net2.Close()
	defer func() {
		for _, s := range stores2 {
			s.Close()
		}
	}()
	cl2 := stores2[1].NewClient()
	defer cl2.Close()
	for _, k := range keys {
		v, ok, err := cl2.Get(ctx, k)
		if err != nil || !ok || string(v) != "100" {
			t.Fatalf("%s = %q %v %v after aborted recovery, want untouched 100", k, v, ok, err)
		}
	}
	// The locks are gone: ordinary writes proceed immediately.
	if err := cl2.Put(ctx, from, []byte("100")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}

	// The coordinator comes back and retries the SAME request id. Attempt 0
	// finds its aborted tombstones, retries under the next attempt id, and
	// commits — exactly once.
	resp, err := cl2.Do(ctx, &Request{
		Op: ReqTxn, ID: pinID,
		Writes: []TxnWrite{
			{Key: from, Val: []byte("90")},
			{Key: to, Val: []byte("110")},
		},
		Conds: []TxnCond{{Key: from, ExpectPresent: true, Expect: []byte("100")}},
	})
	if err != nil || !resp.OK {
		t.Fatalf("retried txn = %+v %v", resp, err)
	}
	if v, _, _ := cl2.Get(ctx, from); string(v) != "90" {
		t.Fatalf("%s = %q after retried commit", from, v)
	}
	if v, _, _ := cl2.Get(ctx, to); string(v) != "110" {
		t.Fatalf("%s = %q after retried commit", to, v)
	}
}

// TestTxnKillAllBetweenPartialCommits crashes every node after the home
// shard sequenced the commit but before the decision reached the other
// participants — the transactional analogue of
// TestReshardingResumeAfterPartialCommit. Recovery must drive the committed
// decision to the stragglers (never abort: the home already decided), and a
// retried coordinator request must re-answer without re-applying.
func TestTxnKillAllBetweenPartialCommits(t *testing.T) {
	ctx := ctxT(t, 180*time.Second)
	dataDir, err := os.MkdirTemp("", "kv-txn-commit-crash-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	opts := txnDurableOpts(dataDir)
	const nodes = 2
	boot := func(gen int) ([]*Store, *amoeba.MemoryNetwork) {
		t.Helper()
		net := amoeba.NewMemoryNetwork()
		kernels := make([]*amoeba.Kernel, nodes)
		for i := range kernels {
			k, err := net.NewKernel(fmt.Sprintf("txncommit-g%d-n%d", gen, i))
			if err != nil {
				t.Fatalf("kernel: %v", err)
			}
			kernels[i] = k
		}
		stores, err := Bootstrap(ctx, kernels, "txncommit", opts)
		if err != nil {
			t.Fatalf("Bootstrap gen %d: %v", gen, err)
		}
		return stores, net
	}

	stores, net := boot(0)
	cl := stores[0].NewClient()
	keys := pickCrossShardKeys(t, stores[0], "acct", 2)
	from, to := keys[0], keys[1]
	for _, k := range keys {
		if err := cl.Put(ctx, k, []byte("100")); err != nil {
			t.Fatalf("seed: %v", err)
		}
	}

	const pinID = 0xBEEF0002
	txnID := txnAttemptID(pinID, 0)
	allKeys := append([]string(nil), keys...)
	sort.Strings(allKeys)
	prep, err := cl.Do(ctx, &Request{
		Op: ReqTxnPrepare, ID: pinID, TxnID: txnID,
		HomeKey: allKeys[0], AllKeys: allKeys,
		Writes: []TxnWrite{
			{Key: from, Val: []byte("90")},
			{Key: to, Val: []byte("110")},
		},
	})
	if err != nil || !prep.OK {
		t.Fatalf("prepare = %+v %v", prep, err)
	}
	// Phase 2 only: the home sequences the commit point. No echo — the
	// other participant stays prepared, locks held, when the cluster dies.
	home, err := cl.Do(ctx, &Request{
		Op: ReqTxnResolve, TxnID: txnID, Commit: true,
		Key: allKeys[0], HomeKey: allKeys[0], AllKeys: allKeys,
	})
	if err != nil || home.TxnState != txnStateCommitted {
		t.Fatalf("home resolve = %+v %v", home, err)
	}
	cl.Close()
	for _, s := range stores {
		s.Close()
	}
	net.Close()

	// Recovery asks the home: it re-answers committed, and the echo applies
	// the straggler's held-back writes. Both halves must be visible.
	stores2, net2 := boot(1)
	defer net2.Close()
	defer func() {
		for _, s := range stores2 {
			s.Close()
		}
	}()
	cl2 := stores2[1].NewClient()
	defer cl2.Close()
	if v, _, _ := cl2.Get(ctx, from); string(v) != "90" {
		t.Fatalf("%s = %q after recovery, want committed 90", from, v)
	}
	if v, _, _ := cl2.Get(ctx, to); string(v) != "110" {
		t.Fatalf("%s = %q after recovery, want committed 110", to, v)
	}

	// Exactly-once across the dedup window: perturb one written key, then
	// retry the coordinator request — it must re-answer the recorded commit
	// without re-applying the writes.
	if err := cl2.Put(ctx, from, []byte("77")); err != nil {
		t.Fatal(err)
	}
	resp, err := cl2.Do(ctx, &Request{
		Op: ReqTxn, ID: pinID,
		Writes: []TxnWrite{
			{Key: from, Val: []byte("90")},
			{Key: to, Val: []byte("110")},
		},
	})
	if err != nil || !resp.OK {
		t.Fatalf("retried txn = %+v %v", resp, err)
	}
	if v, _, _ := cl2.Get(ctx, from); string(v) != "77" {
		t.Fatalf("%s = %q: a retried committed txn re-applied its writes", from, v)
	}
}

// TestTxnJanitorRecoversOrphanedPrepare leaves a prepared transaction with
// no coordinator on a LIVE cluster: the per-node janitor must notice the
// aged locks and arbitrate without a restart.
func TestTxnJanitorRecoversOrphanedPrepare(t *testing.T) {
	ctx := ctxT(t, 60*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "txn-janitor", 2, Options{
		Shards:           4,
		TxnRecoveryAfter: 300 * time.Millisecond,
	})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	cl := stores[0].NewClient()
	defer cl.Close()
	keys := pickCrossShardKeys(t, stores[0], "orphan", 2)
	allKeys := append([]string(nil), keys...)
	sort.Strings(allKeys)
	prep, err := cl.Do(ctx, &Request{
		Op: ReqTxnPrepare, TxnID: 0xABAD1DEA,
		HomeKey: allKeys[0], AllKeys: allKeys,
		Writes: []TxnWrite{{Key: keys[0], Val: []byte("never")}},
	})
	if err != nil || !prep.OK {
		t.Fatalf("prepare = %+v %v", prep, err)
	}
	// No resolve: the coordinator is gone. The janitor must abort it and
	// release the lock; an ordinary write then proceeds.
	deadline := time.Now().Add(30 * time.Second)
	for {
		wctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		err := cl.Put(wctx, keys[0], []byte("after"))
		cancel()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("janitor never released the orphaned lock: %v", err)
		}
	}
	if _, ok, _ := cl.Get(ctx, keys[0]); !ok {
		t.Fatal("key lost after janitor recovery")
	}
	if v, _, _ := cl.Get(ctx, keys[0]); string(v) != "after" {
		t.Fatal("held-back write of an aborted txn leaked")
	}
}

// TestTxnSurvivesLiveReshard runs bank transfers while the store splits
// 4 → 8 shards mid-workload: prepared state migrates with its keys and no
// transaction is torn across the epoch flip.
func TestTxnSurvivesLiveReshard(t *testing.T) {
	ctx := ctxT(t, 180*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "txn-reshard", 2, Options{Shards: 4})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()

	const accounts, initial = 8, 100
	keys := make([]string, accounts)
	seed := stores[0].NewClient()
	for i := range keys {
		keys[i] = fmt.Sprintf("rbank-%d", i)
		if err := seed.Put(ctx, keys[i], []byte(strconv.Itoa(initial))); err != nil {
			t.Fatalf("seed: %v", err)
		}
	}
	seed.Close()
	total := accounts * initial

	stop := make(chan struct{})
	errCh := make(chan error, 4)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := stores[w].NewClient()
			defer cl.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				from, to := keys[(w+i)%accounts], keys[(w+i*3+1)%accounts]
				if from == to {
					continue
				}
				snap, err := cl.Txn(ctx, TxnOp{Reads: []string{from, to}})
				if err != nil {
					errCh <- err
					return
				}
				fv, _ := strconv.Atoi(string(snap.Values[0]))
				tv, _ := strconv.Atoi(string(snap.Values[1]))
				if fv <= 0 {
					continue
				}
				if _, err := cl.Txn(ctx, TxnOp{
					Conds: []TxnCond{
						{Key: from, ExpectPresent: true, Expect: []byte(strconv.Itoa(fv))},
						{Key: to, ExpectPresent: true, Expect: []byte(strconv.Itoa(tv))},
					},
					Writes: []TxnWrite{
						{Key: from, Val: []byte(strconv.Itoa(fv - 1))},
						{Key: to, Val: []byte(strconv.Itoa(tv + 1))},
					},
				}); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	if err := stores[0].Resharding(ctx, 8); err != nil {
		t.Fatalf("Resharding: %v", err)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := stores[0].Shards(); got != 8 {
		t.Fatalf("shards = %d after reshard, want 8", got)
	}
	cl := stores[1].NewClient()
	defer cl.Close()
	if sum := bankSum(t, ctx, cl, keys); sum != total {
		t.Fatalf("sum = %d after mid-workload reshard, want %d (torn transaction)", sum, total)
	}
}
