package kv

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amoeba"
	"amoeba/obs"
	"amoeba/shared"
)

// collectItems reads every hosted shard's item map on one store and counts
// how many shards hold each key — the duplication detector.
func collectItems(s *Store) map[string]int {
	out := make(map[string]int)
	for i := 0; i < len(s.snapshotShards()); i++ {
		r := s.Replica(i)
		if r == nil {
			continue
		}
		r.Read(func(sm shared.StateMachine) {
			for k := range sm.(*mapSM).items {
				out[k]++
			}
		})
	}
	return out
}

// verifyKeys asserts that every expected key reads back with its expected
// value and that no key is present in more than one shard.
func verifyKeys(t *testing.T, ctx context.Context, s *Store, want map[string]string) {
	t.Helper()
	cl := s.NewClient()
	defer cl.Close()
	for k, v := range want {
		got, ok, err := cl.Get(ctx, k)
		if err != nil {
			t.Fatalf("Get %q: %v", k, err)
		}
		if !ok || string(got) != v {
			t.Fatalf("Get %q = %q (found=%v), want %q", k, got, ok, v)
		}
	}
	counts := collectItems(s)
	for k, n := range counts {
		if n > 1 {
			t.Fatalf("key %q present in %d shards (duplicated by resharding)", k, n)
		}
	}
	for k := range want {
		if counts[k] != 1 {
			t.Fatalf("key %q present in %d shards, want exactly 1", k, counts[k])
		}
	}
}

// waitShards blocks until the store's routing table reports n shards.
func waitShards(t *testing.T, s *Store, n int, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if s.Routing().Shards == n && s.PendingRouting() == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("routing never reached %d shards: %+v (pending %+v)", n, s.Routing(), s.PendingRouting())
}

// TestReshardingSplitUnderLoad grows a live 4-shard store to 8 while
// clients keep writing and reading: no operation may fail, every key —
// seeded or written mid-handoff — must read back exactly once afterwards,
// and the epoch must have advanced on every node.
func TestReshardingSplitUnderLoad(t *testing.T) {
	ctx := ctxT(t, 120*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "split", 3, Options{Shards: 4})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()

	want := make(map[string]string)
	var wantMu sync.Mutex
	seed := stores[0].NewClient()
	pairs := make([]Pair, 400)
	for i := range pairs {
		k, v := fmt.Sprintf("split-%04d", i), fmt.Sprintf("v%04d", i)
		pairs[i] = Pair{Key: k, Val: []byte(v)}
		want[k] = v
	}
	if err := seed.BatchPut(ctx, pairs); err != nil {
		t.Fatalf("seeding: %v", err)
	}
	seed.Close()

	// Continuous load across the handoff, one client per node. Loaders are
	// stopped by flag, not context cancellation, so every issued operation
	// runs to completion and the expected-value map is exact (a cancelled
	// Put may commit without reporting).
	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		opErrs  atomic.Uint64
		loadOps atomic.Uint64
	)
	for n := range stores {
		n := n
		cl := stores[n].NewClient()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cl.Close()
			for i := 0; !stop.Load(); i++ {
				k := fmt.Sprintf("live-%d-%04d", n, i%100)
				v := fmt.Sprintf("n%d-i%d", n, i)
				if err := cl.Put(ctx, k, []byte(v)); err != nil {
					opErrs.Add(1)
					return
				}
				wantMu.Lock()
				want[k] = v
				wantMu.Unlock()
				if _, _, err := cl.Get(ctx, k); err != nil {
					opErrs.Add(1)
					return
				}
				loadOps.Add(2)
			}
		}()
	}

	time.Sleep(100 * time.Millisecond) // let the load get going
	if err := stores[1].Resharding(ctx, 8); err != nil {
		t.Fatalf("Resharding(8): %v", err)
	}
	time.Sleep(100 * time.Millisecond) // load continues on the new table
	stop.Store(true)
	wg.Wait()
	if e := opErrs.Load(); e != 0 {
		t.Fatalf("%d client operations failed across the handoff (want 0)", e)
	}
	if loadOps.Load() == 0 {
		t.Fatal("load performed no operations; the handoff was not exercised under load")
	}

	for i, s := range stores {
		waitShards(t, s, 8, 10*time.Second)
		if rt := s.Routing(); rt.Epoch != 1 {
			t.Fatalf("node %d at epoch %d after one resharding, want 1", i, rt.Epoch)
		}
	}
	verifyKeys(t, ctx, stores[2], want)

	// The split must actually have moved data onto the new shards.
	moved := 0
	for i := 4; i < 8; i++ {
		r := stores[0].Replica(i)
		if r == nil {
			t.Fatalf("node 0 does not host new shard %d", i)
		}
		r.Read(func(sm shared.StateMachine) { moved += len(sm.(*mapSM).items) })
	}
	if moved == 0 {
		t.Fatal("no keys landed on the new shards")
	}
	t.Logf("split moved %d keys onto shards 4..7; %d live ops during handoff", moved, loadOps.Load())
}

// TestReshardingMergeRetiresShards shrinks 6→3: the dying shards' keys must
// land exactly once on the survivors, and the dead groups must be left and
// released on every node.
func TestReshardingMergeRetiresShards(t *testing.T) {
	ctx := ctxT(t, 120*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "merge", 3, Options{Shards: 6})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()

	want := make(map[string]string)
	cl := stores[0].NewClient()
	pairs := make([]Pair, 300)
	for i := range pairs {
		k, v := fmt.Sprintf("merge-%04d", i), fmt.Sprintf("v%04d", i)
		pairs[i] = Pair{Key: k, Val: []byte(v)}
		want[k] = v
	}
	if err := cl.BatchPut(ctx, pairs); err != nil {
		t.Fatalf("seeding: %v", err)
	}
	cl.Close()

	if err := stores[0].Resharding(ctx, 3); err != nil {
		t.Fatalf("Resharding(3): %v", err)
	}
	for _, s := range stores {
		waitShards(t, s, 3, 10*time.Second)
	}
	verifyKeys(t, ctx, stores[1], want)

	// Retirement is asynchronous per node; every replica of shards 3..5
	// must eventually be released.
	deadline := time.Now().Add(15 * time.Second)
	for _, s := range stores {
		for i := 3; i < 6; i++ {
			for s.Replica(i) != nil {
				if time.Now().After(deadline) {
					t.Fatalf("shard %d still hosted after merge", i)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
	}
}

// TestReshardingExactlyOnceAcrossFlip pins a command id, executes it before
// the split, and retries it afterwards: the dedup result must have migrated
// with its key, so the retry answers the original outcome instead of
// re-executing — and a genuinely new command still sees the recovered value.
func TestReshardingExactlyOnceAcrossFlip(t *testing.T) {
	ctx := ctxT(t, 60*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "dedup", 2, Options{Shards: 4})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	cl := stores[0].NewClient()
	defer cl.Close()

	// Find keys that change owner under the 4→8 split — the hard case,
	// where the result must travel.
	next := Routing{Epoch: 1, Shards: 8, VNodes: stores[0].Routing().VNodes}.ring("dedup")
	var movingCAS, movingDel string
	for i := 0; movingCAS == "" || movingDel == ""; i++ {
		k := fmt.Sprintf("probe-%04d", i)
		if stores[0].ShardFor(k) != next.shard(k) {
			if movingCAS == "" {
				movingCAS = k
			} else {
				movingDel = k
			}
		}
	}

	const casID, delID = 0xDEAD0001, 0xDEAD0002
	if resp, err := cl.Do(ctx, &Request{Op: ReqCAS, Key: movingCAS, Val: []byte("owner"), ID: casID}); err != nil || !resp.OK {
		t.Fatalf("CAS create: %+v %v", resp, err)
	}
	if err := cl.Put(ctx, movingDel, []byte("x")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if resp, err := cl.Do(ctx, &Request{Op: ReqDelete, Key: movingDel, ID: delID}); err != nil || !resp.OK {
		t.Fatalf("Delete: %+v %v", resp, err)
	}

	if err := stores[0].Resharding(ctx, 8); err != nil {
		t.Fatalf("Resharding: %v", err)
	}
	waitShards(t, stores[0], 8, 10*time.Second)

	// Retried CAS (same id) must answer its original success, not observe
	// its own first execution.
	if resp, err := cl.Do(ctx, &Request{Op: ReqCAS, Key: movingCAS, Val: []byte("owner"), ID: casID}); err != nil || !resp.OK {
		t.Fatalf("retried CAS after flip = %+v %v (dedup result did not migrate)", resp, err)
	}
	// A fresh create must fail: the value exists on the new owner.
	if ok, err := cl.CAS(ctx, movingCAS, nil, []byte("usurper")); err != nil || ok {
		t.Fatalf("fresh CAS create after flip = %v %v (key lost in migration?)", ok, err)
	}
	// Retried delete of a key that no longer exists anywhere: its
	// tombstoned result must still answer the original true.
	if resp, err := cl.Do(ctx, &Request{Op: ReqDelete, Key: movingDel, ID: delID}); err != nil || !resp.OK {
		t.Fatalf("retried Delete after flip = %+v %v (tombstone result did not migrate)", resp, err)
	}
}

// TestStaleClientConvergesAcrossReshard: a Dial'd client that still routes
// by the bootstrap table keeps working through a split — services answer
// under the new table and attach it, and the client adopts it.
func TestStaleClientConvergesAcrossReshard(t *testing.T) {
	ctx := ctxT(t, 60*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "stale", 2, Options{Shards: 4})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	var svcs []*Service
	for _, s := range stores {
		svc, err := NewService(s)
		if err != nil {
			t.Fatalf("NewService: %v", err)
		}
		svcs = append(svcs, svc)
	}
	defer func() {
		for _, svc := range svcs {
			svc.Close()
		}
	}()
	ext, err := net.NewKernel("stale-client")
	if err != nil {
		t.Fatalf("client kernel: %v", err)
	}
	cl, err := Dial(ext, "stale", DialOptions{Node: 0, Shards: 4})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	for i := 0; i < 32; i++ {
		if err := cl.Put(ctx, fmt.Sprintf("s-%03d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put before reshard: %v", err)
		}
	}
	if err := stores[0].Resharding(ctx, 8); err != nil {
		t.Fatalf("Resharding: %v", err)
	}
	// The client still routes by the 4-shard table; its next operations are
	// served under the 8-shard table and teach it the new epoch.
	for i := 0; i < 32; i++ {
		v, ok, err := cl.Get(ctx, fmt.Sprintf("s-%03d", i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get after reshard via stale client: %q %v %v", v, ok, err)
		}
	}
	if cl.Routing().Epoch != 1 {
		t.Fatalf("stale client never converged: routing %+v", cl.Routing())
	}
	if cl.Stats().RoutingUpdates == 0 {
		t.Fatal("client reports no routing updates despite epoch change")
	}
}

// TestReshardingUnderChurn is the lossy-network churn test: a source-shard
// sequencer is killed mid-migration while the network drops and duplicates
// frames. The handoff (driven by a surviving node) must still complete with
// every key exactly once, and a command retried across the crash AND the
// epoch flip must stay exactly-once.
func TestReshardingUnderChurn(t *testing.T) {
	ctx := ctxT(t, 180*time.Second)
	net := amoeba.NewMemoryNetworkWithFaults(amoeba.MemoryNetworkConfig{
		DropRate: 0.02,
		DupRate:  0.01,
		Seed:     7,
	})
	defer net.Close()
	// A failure in this test is exactly what the flight recorder exists
	// for: dump the last protocol events (membership churn, NAKs, migrate
	// phases) as a postmortem artifact instead of "rerun with prints".
	hub := obs.NewHub(obs.Options{Node: "churn", FlightSize: 4096})
	hub.Flight().DumpOnFailure(t)
	stores := newCluster(t, ctx, net, "churn", 3, Options{
		Shards: 4,
		Group: amoeba.GroupOptions{
			Resilience:   1,
			AutoReset:    true,
			MinSurvivors: 1,
			Obs:          hub,
		},
	})
	closed := make([]bool, len(stores))
	defer func() {
		for i, s := range stores {
			if !closed[i] {
				s.Close()
			}
		}
	}()

	want := make(map[string]string)
	cl := stores[1].NewClient()
	pairs := make([]Pair, 500)
	for i := range pairs {
		k, v := fmt.Sprintf("churn-%04d", i), fmt.Sprintf("v%04d", i)
		pairs[i] = Pair{Key: k, Val: []byte(v)}
		want[k] = v
	}
	if err := cl.BatchPut(ctx, pairs); err != nil {
		t.Fatalf("seeding: %v", err)
	}
	const pinID = 0xC0FFEE01
	if resp, err := cl.Do(ctx, &Request{Op: ReqCAS, Key: "churn-lock", Val: []byte("holder"), ID: pinID}); err != nil || !resp.OK {
		t.Fatalf("pinned CAS: %+v %v", resp, err)
	}
	want["churn-lock"] = "holder"
	cl.Close()

	// Node 0 sequences shard 0 (Bootstrap's placement rule): kill it as
	// soon as the handoff is observed in flight. Coordinate from node 1.
	reshardErr := make(chan error, 1)
	go func() { reshardErr <- stores[1].Resharding(ctx, 8) }()
	killDeadline := time.Now().Add(30 * time.Second)
	for stores[1].PendingRouting() == nil && time.Now().Before(killDeadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if stores[1].PendingRouting() == nil && stores[1].Routing().Epoch == 0 {
		t.Fatal("handoff never started")
	}
	stores[0].Close() // the source-shard sequencer crashes mid-migration
	closed[0] = true

	if err := <-reshardErr; err != nil {
		t.Fatalf("Resharding under churn: %v", err)
	}
	for _, s := range stores[1:] {
		waitShards(t, s, 8, 60*time.Second)
	}
	verifyKeys(t, ctx, stores[2], want)

	// The pinned command retried across the crash and the flip must not
	// re-execute.
	cl2 := stores[2].NewClient()
	defer cl2.Close()
	if resp, err := cl2.Do(ctx, &Request{Op: ReqCAS, Key: "churn-lock", Val: []byte("holder"), ID: pinID}); err != nil || !resp.OK {
		t.Fatalf("pinned CAS retried across crash+flip = %+v %v", resp, err)
	}
	if ok, err := cl2.CAS(ctx, "churn-lock", nil, []byte("usurper")); err != nil || ok {
		t.Fatalf("fresh CAS create after churn = %v %v", ok, err)
	}

	// The flight ring must have captured the handoff it just survived:
	// the commit thaw on the shards and the coordinator's final flip.
	dump := hub.Flight().Format()
	for _, want := range []string{"migrate commit: epoch 1", "reshard: epoch 1 committed"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("flight recorder missing %q:\n%s", want, dump)
		}
	}
}

// TestReshardingDurableResume kills every node mid-handoff and restarts the
// cluster from the write-ahead logs: Bootstrap must resume (or complete) the
// interrupted migration deterministically — all keys exactly once under the
// new table, dedup state intact.
func TestReshardingDurableResume(t *testing.T) {
	ctx := ctxT(t, 180*time.Second)
	dataDir, err := os.MkdirTemp("", "kv-reshard-resume-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	opts := Options{
		Shards:          4,
		DataDir:         dataDir,
		CheckpointEvery: 64,
		Group: amoeba.GroupOptions{
			AutoReset:    true,
			MinSurvivors: 1,
		},
	}
	const nodes = 2
	boot := func(gen int) ([]*Store, *amoeba.MemoryNetwork) {
		t.Helper()
		net := amoeba.NewMemoryNetwork()
		kernels := make([]*amoeba.Kernel, nodes)
		for i := range kernels {
			k, err := net.NewKernel(fmt.Sprintf("resume-g%d-n%d", gen, i))
			if err != nil {
				t.Fatalf("kernel: %v", err)
			}
			kernels[i] = k
		}
		stores, err := Bootstrap(ctx, kernels, "resume", opts)
		if err != nil {
			t.Fatalf("Bootstrap gen %d: %v", gen, err)
		}
		return stores, net
	}

	stores, net := boot(0)
	want := make(map[string]string)
	cl := stores[0].NewClient()
	pairs := make([]Pair, 600)
	for i := range pairs {
		k, v := fmt.Sprintf("resume-%04d", i), fmt.Sprintf("v%04d", i)
		pairs[i] = Pair{Key: k, Val: []byte(v)}
		want[k] = v
	}
	if err := cl.BatchPut(ctx, pairs); err != nil {
		t.Fatalf("seeding: %v", err)
	}
	const pinID = 0xFEED0001
	if resp, err := cl.Do(ctx, &Request{Op: ReqCAS, Key: "resume-lock", Val: []byte("holder"), ID: pinID}); err != nil || !resp.OK {
		t.Fatalf("pinned CAS: %+v %v", resp, err)
	}
	want["resume-lock"] = "holder"
	cl.Close()

	// Start the split, then crash the whole cluster the moment the handoff
	// is journaled as pending (the begins have been sequenced).
	go func() { _ = stores[0].Resharding(ctx, 8) }()
	killDeadline := time.Now().Add(30 * time.Second)
	for stores[1].PendingRouting() == nil && stores[1].Routing().Epoch == 0 &&
		time.Now().Before(killDeadline) {
		time.Sleep(time.Millisecond)
	}
	for _, s := range stores {
		s.Close() // no goodbye: every node at once
	}
	net.Close()

	stores2, net2 := boot(1) // Bootstrap recovers AND resumes the handoff
	defer net2.Close()
	defer func() {
		for _, s := range stores2 {
			s.Close()
		}
	}()
	for _, s := range stores2 {
		waitShards(t, s, 8, 60*time.Second)
		if rt := s.Routing(); rt.Epoch != 1 {
			t.Fatalf("recovered store at epoch %d, want 1", rt.Epoch)
		}
	}
	verifyKeys(t, ctx, stores2[1], want)

	cl2 := stores2[0].NewClient()
	defer cl2.Close()
	if resp, err := cl2.Do(ctx, &Request{Op: ReqCAS, Key: "resume-lock", Val: []byte("holder"), ID: pinID}); err != nil || !resp.OK {
		t.Fatalf("pinned CAS retried across restart+flip = %+v %v", resp, err)
	}
	if ok, err := cl2.CAS(ctx, "resume-lock", nil, []byte("usurper")); err != nil || ok {
		t.Fatalf("fresh CAS create after resume = %v %v", ok, err)
	}
}

// TestReshardingResumeAfterPartialCommit pins the nastiest crash window: a
// handoff that died AFTER one shard committed the new epoch but before the
// rest did. The store-level epoch has already flipped (any committed shard
// raises it), yet straggler shards still hold the pending freeze — the
// recovered pending view must survive the flip so the restart drives the
// remaining commits, or the frozen ranges would answer Moved forever.
func TestReshardingResumeAfterPartialCommit(t *testing.T) {
	ctx := ctxT(t, 180*time.Second)
	dataDir, err := os.MkdirTemp("", "kv-partial-commit-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	opts := Options{
		Shards:          4,
		DataDir:         dataDir,
		CheckpointEvery: 64,
		Group: amoeba.GroupOptions{
			AutoReset:    true,
			MinSurvivors: 1,
		},
	}
	const nodes = 2
	boot := func(gen int) ([]*Store, *amoeba.MemoryNetwork) {
		t.Helper()
		net := amoeba.NewMemoryNetwork()
		kernels := make([]*amoeba.Kernel, nodes)
		for i := range kernels {
			k, err := net.NewKernel(fmt.Sprintf("partial-g%d-n%d", gen, i))
			if err != nil {
				t.Fatalf("kernel: %v", err)
			}
			kernels[i] = k
		}
		stores, err := Bootstrap(ctx, kernels, "partial", opts)
		if err != nil {
			t.Fatalf("Bootstrap gen %d: %v", gen, err)
		}
		return stores, net
	}

	stores, net := boot(0)
	want := make(map[string]string)
	cl := stores[0].NewClient()
	pairs := make([]Pair, 400)
	for i := range pairs {
		k, v := fmt.Sprintf("partial-%04d", i), fmt.Sprintf("v%04d", i)
		pairs[i] = Pair{Key: k, Val: []byte(v)}
		want[k] = v
	}
	if err := cl.BatchPut(ctx, pairs); err != nil {
		t.Fatalf("seeding: %v", err)
	}
	cl.Close()

	// Drive the handoff BY HAND up to exactly one commit, mirroring
	// reshardTo's phases: begin everywhere, targets up, full export, then
	// commit ONLY shard 0 — and crash the whole cluster there.
	target := Routing{Epoch: 1, Shards: 8, VNodes: stores[0].Routing().VNodes}
	co := stores[0]
	for i := 0; i < 4; i++ {
		if err := co.migrate(ctx, i, encodeMigrate(opMigrateBegin, co.nextCmdID(), target)); err != nil {
			t.Fatalf("begin %d: %v", i, err)
		}
	}
	if err := co.waitHosted(ctx, 4, 8); err != nil {
		t.Fatalf("targets up: %v", err)
	}
	for i := 4; i < 8; i++ {
		if err := co.migrate(ctx, i, encodeMigrate(opMigrateBegin, co.nextCmdID(), target)); err != nil {
			t.Fatalf("begin %d: %v", i, err)
		}
	}
	next := target.ring("partial")
	for src := 0; src < 4; src++ {
		if err := co.exportShard(ctx, src, next, target); err != nil {
			t.Fatalf("export %d: %v", src, err)
		}
	}
	if err := co.migrate(ctx, 0, encodeMigrate(opMigrateCommit, co.nextCmdID(), target)); err != nil {
		t.Fatalf("commit 0: %v", err)
	}
	if rt := co.Routing(); rt.Epoch != 1 {
		t.Fatalf("store epoch %d after first commit, want 1", rt.Epoch)
	}
	if co.PendingRouting() == nil {
		t.Fatal("pending view vanished after the first commit: the straggler freeze would be unresumable")
	}
	for _, s := range stores {
		s.Close()
	}
	net.Close()

	stores2, net2 := boot(1) // must finish the remaining commits
	defer net2.Close()
	defer func() {
		for _, s := range stores2 {
			s.Close()
		}
	}()
	for _, s := range stores2 {
		waitShards(t, s, 8, 60*time.Second)
		if rt := s.Routing(); rt.Epoch != 1 {
			t.Fatalf("recovered store at epoch %d, want 1", rt.Epoch)
		}
	}
	verifyKeys(t, ctx, stores2[1], want)
}
