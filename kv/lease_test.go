package kv

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amoeba"
)

// TestLeaseReadsSafeAcrossReshard runs lease-served reads concurrently with
// single-writer counters while the store splits 4→8 shards live. Safety
// condition: a read of key k started after the writer's i-th Put completed
// must return at least i — a lease read serving a frozen or migrated key
// from local state (instead of dropping to the sequenced fallback) would
// violate it. The test also requires the lease path to have actually served
// before AND after the handoff, so it proves leases re-establish on the new
// shard groups rather than just silently falling back forever.
func TestLeaseReadsSafeAcrossReshard(t *testing.T) {
	ctx := ctxT(t, 120*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "leaseshard", 3, Options{Shards: 4, Leases: true})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()

	const nKeys = 12
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("lr-%04d", i)
	}
	seed := stores[0].NewClient()
	for _, k := range keys {
		if err := seed.Put(ctx, k, []byte("0")); err != nil {
			t.Fatalf("seeding %q: %v", k, err)
		}
	}
	seed.Close()

	// Wait until every shard serves lease reads (grants ride sync ticks).
	deadline := time.Now().Add(15 * time.Second)
	for shard := 0; shard < 4; shard++ {
		k := ""
		for _, cand := range keys {
			if stores[0].ShardFor(cand) == shard {
				k = cand
				break
			}
		}
		if k == "" {
			continue // no test key on this shard; fine
		}
		for {
			if _, ok := stores[0].leaseGet(shard, []string{k}); ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("shard %d: lease never established", shard)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	var (
		wg        sync.WaitGroup
		stop      atomic.Bool
		failure   atomic.Value // first violation message
		lastAcked [nKeys]atomic.Int64
		readOps   atomic.Uint64
	)
	fail := func(msg string) {
		failure.CompareAndSwap(nil, msg)
		stop.Store(true)
	}

	// One single-writer goroutine bumping every key's counter in turn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := stores[0].NewClient()
		defer cl.Close()
		for i := int64(1); !stop.Load(); i++ {
			ki := int(i) % nKeys
			if err := cl.Put(ctx, keys[ki], []byte(strconv.FormatInt(i, 10))); err != nil {
				fail(fmt.Sprintf("Put %q: %v", keys[ki], err))
				return
			}
			lastAcked[ki].Store(i)
		}
	}()

	// Lease readers on the other nodes: each read must observe at least the
	// writer's last completed value for its key.
	for n := 1; n < len(stores); n++ {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := stores[n].NewClient()
			defer cl.Close()
			for i := 0; !stop.Load(); i++ {
				ki := i % nKeys
				floor := lastAcked[ki].Load()
				got, ok, err := cl.Get(ctx, keys[ki])
				if err != nil {
					fail(fmt.Sprintf("node %d Get %q: %v", n, keys[ki], err))
					return
				}
				if !ok {
					fail(fmt.Sprintf("node %d: key %q vanished", n, keys[ki]))
					return
				}
				v, err := strconv.ParseInt(string(got), 10, 64)
				if err != nil {
					fail(fmt.Sprintf("node %d: key %q holds %q", n, keys[ki], got))
					return
				}
				if v < floor {
					fail(fmt.Sprintf("node %d: STALE lease read of %q: got %d, writer had completed %d",
						n, keys[ki], v, floor))
					return
				}
				readOps.Add(1)
			}
		}()
	}

	time.Sleep(150 * time.Millisecond) // load under the old table
	leasedBefore, _, _, _ := stores[1].LeaseStats()
	if leasedBefore == 0 {
		t.Log("warning: no lease reads before the reshard yet")
	}
	if err := stores[1].Resharding(ctx, 8); err != nil {
		stop.Store(true)
		wg.Wait()
		t.Fatalf("Resharding(8): %v", err)
	}
	waitShards(t, stores[1], 8, 20*time.Second)

	// Keep load running on the new table until the lease path demonstrably
	// serves again (leases re-arm on the post-flip shard groups).
	deadline = time.Now().Add(15 * time.Second)
	for {
		leased, _, _, _ := stores[1].LeaseStats()
		if leased > leasedBefore || failure.Load() != nil {
			break
		}
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("lease reads never resumed after the reshard (still %d)", leased)
		}
		time.Sleep(25 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if msg := failure.Load(); msg != nil {
		t.Fatal(msg)
	}
	if readOps.Load() == 0 {
		t.Fatal("readers performed no reads; the lease path was not exercised")
	}
	leased, fallbacks, _, _ := stores[1].LeaseStats()
	leased2, fallbacks2, _, _ := stores[2].LeaseStats()
	t.Logf("%d reads total; node1 lease stats: %d leased / %d fallbacks; node2: %d / %d",
		readOps.Load(), leased, fallbacks, leased2, fallbacks2)
	if leased+leased2 == 0 {
		t.Fatal("no reads were served from a lease")
	}
}
