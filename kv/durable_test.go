package kv

import (
	"fmt"
	"testing"
	"time"

	"amoeba"
)

// bootDurable boots (or, re-run on the same dir, restarts) a durable store.
func bootDurable(t *testing.T, net *amoeba.MemoryNetwork, name, dataDir string, nodes int, opts Options, gen int) []*Store {
	t.Helper()
	ctx := ctxT(t, 60*time.Second)
	kernels := make([]*amoeba.Kernel, nodes)
	for i := range kernels {
		k, err := net.NewKernel(fmt.Sprintf("%s-g%d-node-%d", name, gen, i))
		if err != nil {
			t.Fatalf("kernel %d: %v", i, err)
		}
		kernels[i] = k
	}
	opts.DataDir = dataDir
	stores, err := Bootstrap(ctx, kernels, name, opts)
	if err != nil {
		t.Fatalf("Bootstrap (gen %d): %v", gen, err)
	}
	return stores
}

func closeAll(stores []*Store) {
	for _, s := range stores {
		s.Close()
	}
}

// TestDurableColdRestartExactlyOnce is the acceptance scenario: every node
// of a durable store is killed and restarted; all data must come back from
// the write-ahead logs, and a command retried across the restart must stay
// exactly-once because the replicated dedup state recovered with the data.
func TestDurableColdRestartExactlyOnce(t *testing.T) {
	dataDir := t.TempDir()
	ctx := ctxT(t, 120*time.Second)
	opts := Options{
		Shards:          2,
		CheckpointEvery: 16, // small cadence so the restart exercises checkpoint + suffix replay
		Group: amoeba.GroupOptions{
			Resilience:   1,
			AutoReset:    true,
			MinSurvivors: 1,
		},
	}

	net := amoeba.NewMemoryNetwork()
	stores := bootDurable(t, net, "durable", dataDir, 3, opts, 0)
	cl := stores[0].NewClient()
	var pairs []Pair
	for i := 0; i < 50; i++ {
		pairs = append(pairs, Pair{Key: fmt.Sprintf("key-%03d", i), Val: []byte(fmt.Sprintf("val-%03d", i))})
	}
	if err := cl.BatchPut(ctx, pairs); err != nil {
		t.Fatalf("BatchPut: %v", err)
	}
	// An atomic create with a pinned command id — the retried command.
	casReq := &Request{Op: ReqCAS, Key: "lock", Val: []byte("owner-1"), ID: 0xD00D_F00D}
	resp, err := cl.Do(ctx, casReq)
	if err != nil || !resp.OK {
		t.Fatalf("CAS create = %+v, %v", resp, err)
	}
	cl.Close()

	// Kill every node: no Leave, no checkpoint-on-close — a power cut.
	closeAll(stores)
	net.Close()

	// Cold restart on a fresh network from the same data dir.
	net2 := amoeba.NewMemoryNetwork()
	defer net2.Close()
	stores2 := bootDurable(t, net2, "durable", dataDir, 3, opts, 1)
	defer closeAll(stores2)
	cl2 := stores2[1].NewClient() // a different node serves, same state
	defer cl2.Close()

	got, err := cl2.MGet(ctx, keysOf(pairs)...)
	if err != nil {
		t.Fatalf("MGet after restart: %v", err)
	}
	for _, p := range pairs {
		if string(got[p.Key]) != string(p.Val) {
			t.Fatalf("key %q = %q after restart, want %q", p.Key, got[p.Key], p.Val)
		}
	}

	// The client retries its CAS (same command id) across the restart: the
	// dedup state recovered from the WAL must suppress re-execution and
	// answer the original result — OK, even though the key now exists.
	retry := &Request{Op: ReqCAS, Key: "lock", Val: []byte("owner-1"), ID: 0xD00D_F00D}
	resp2, err := cl2.Do(ctx, retry)
	if err != nil || !resp2.OK {
		t.Fatalf("retried CAS after restart = %+v, %v (duplicate was re-executed?)", resp2, err)
	}
	// Whereas a genuinely new create of the same key must fail: the first
	// one's effect survived.
	fresh, err := cl2.CAS(ctx, "lock", nil, []byte("owner-2"))
	if err != nil {
		t.Fatalf("fresh CAS: %v", err)
	}
	if fresh {
		t.Fatal("fresh CAS create succeeded — the recovered store lost the lock value")
	}
	v, ok, err := cl2.Get(ctx, "lock")
	if err != nil || !ok || string(v) != "owner-1" {
		t.Fatalf("lock = %q %v %v after restart, want owner-1", v, ok, err)
	}

	// Durability kept running after the restart: the retried CAS and reads
	// journaled on the new timeline.
	journaled := false
	for _, s := range stores2 {
		for i := 0; i < s.Shards(); i++ {
			if r := s.Replica(i); r != nil {
				if st := r.DurabilityStats(); st.Enabled && st.Log.Entries > 0 {
					journaled = true
				}
			}
		}
	}
	if !journaled {
		t.Fatal("no shard journaled anything after the restart")
	}
}

func keysOf(pairs []Pair) []string {
	keys := make([]string, len(pairs))
	for i, p := range pairs {
		keys[i] = p.Key
	}
	return keys
}

// TestDurableSingleNodeRestartJoinsLiveStore: one node of a durable store
// restarts while the others keep serving; it must rejoin over state transfer
// and reset its log to the live timeline.
func TestDurableSingleNodeRestartJoinsLiveStore(t *testing.T) {
	dataDir := t.TempDir()
	ctx := ctxT(t, 120*time.Second)
	opts := Options{
		Shards: 2,
		Group: amoeba.GroupOptions{
			Resilience:   1,
			AutoReset:    true,
			MinSurvivors: 1,
		},
	}
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := bootDurable(t, net, "dur-one", dataDir, 3, opts, 0)
	defer closeAll(stores)

	cl := stores[0].NewClient()
	defer cl.Close()
	for i := 0; i < 20; i++ {
		if err := cl.Put(ctx, fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Crash node 2 and write more while it is down.
	stores[2].Close()
	for i := 20; i < 30; i++ {
		if err := cl.Put(ctx, fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
			t.Fatalf("Put while node down: %v", err)
		}
	}
	// Restart node 2 from its logs into the live store.
	k2, err := net.NewKernel("dur-one-node-2-reborn")
	if err != nil {
		t.Fatalf("reborn kernel: %v", err)
	}
	o := opts
	o.DataDir = dataDir
	o.Nodes = 3
	o.NodeIndex = 2
	s2, err := Open(ctx, k2, "dur-one", o)
	if err != nil {
		t.Fatalf("Open restarted node: %v", err)
	}
	defer s2.Close()

	// Its local replicas hold the live state, including writes it missed.
	cl2 := s2.NewClient()
	defer cl2.Close()
	for i := 0; i < 30; i++ {
		if v, ok := cl2.LocalGet(fmt.Sprintf("k%02d", i)); !ok || string(v) != "v" {
			t.Fatalf("restarted node lacks k%02d (= %q, %v)", i, v, ok)
		}
	}
}
