package kv

import (
	"context"
	"testing"
	"time"
)

func TestRunLoadSmoke(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := RunLoad(ctx, LoadOptions{
		Shards:   2,
		Nodes:    2,
		Clients:  4,
		Duration: 200 * time.Millisecond,
		Keys:     64,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Ops == 0 {
		t.Fatal("load run made no progress")
	}
	if rep.Errors > rep.Ops/10 {
		t.Fatalf("excessive errors on a healthy store: %d errors, %d ops", rep.Errors, rep.Ops)
	}
	t.Logf("%s", rep)
}

func TestRunLoadProxied(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := RunLoad(ctx, LoadOptions{
		Shards:      4,
		Nodes:       4,
		Replication: 1, // each shard on one node: most ops must leave the entry node
		Proxied:     true,
		Clients:     4,
		Duration:    200 * time.Millisecond,
		Keys:        64,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Ops == 0 {
		t.Fatal("proxied load run made no progress")
	}
	if rep.Errors > rep.Ops/10 {
		t.Fatalf("excessive errors: %d errors, %d ops", rep.Errors, rep.Ops)
	}
	if rep.Forwarded == 0 {
		t.Fatalf("proxied run forwarded nothing: %+v", rep)
	}
	if rep.RemoteOps == 0 {
		t.Fatalf("proxied run kept everything local: %+v", rep)
	}
	t.Logf("%s", rep)
}
