package kv

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"amoeba"
	"amoeba/obs"
)

// spanEvents flattens a merged trace to its event strings, in time order.
func spanEvents(spans []obs.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Event
	}
	return out
}

// firstIndexContaining returns the index of the first event containing
// substr, or -1.
func firstIndexContaining(events []string, substr string) int {
	for i, e := range events {
		if strings.Contains(e, substr) {
			return i
		}
	}
	return -1
}

// lastIndexContaining returns the index of the last event containing
// substr, or -1.
func lastIndexContaining(events []string, substr string) int {
	for i := len(events) - 1; i >= 0; i-- {
		if strings.Contains(events[i], substr) {
			return i
		}
	}
	return -1
}

// TestTraceReassemblyAcrossForwardHop drives an operation through the
// proxied access path — a Dial'd client holding one node's address, whose
// entry node does not host the key's shard — and reassembles the op's
// timeline from two independent tracers: the client machine's hub and the
// cluster's hub. The merged trace must show the whole hop: submitted at the
// client, forwarded by the entry node's service, applied by the owning
// shard, replied at the client.
func TestTraceReassemblyAcrossForwardHop(t *testing.T) {
	ctx := ctxT(t, 60*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()

	clusterHub := obs.NewHub(obs.Options{Node: "cluster", TraceMod: 1})
	clusterHub.Flight().DumpOnFailure(t)
	const nodes, shards = 3, 4
	stores := newCluster(t, ctx, net, "tracefwd", nodes, Options{
		Shards:      shards,
		Replication: 1, // every shard on exactly one node: most ops must proxy
		Group:       amoeba.GroupOptions{Obs: clusterHub},
	})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	startServices(t, stores)

	// The client lives on its own kernel with its own hub: reassembly has
	// to merge spans across genuinely separate tracers.
	ext, err := net.NewKernel("tracefwd-client")
	if err != nil {
		t.Fatalf("client kernel: %v", err)
	}
	clientHub := obs.NewHub(obs.Options{Node: "ext", TraceMod: 1})
	cl, err := Dial(ext, "tracefwd", DialOptions{Node: 0, Obs: clientHub})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	// One key per shard: with replication 1 across 3 nodes, at least one
	// shard is not hosted by the entry node, so at least one Put is
	// answered with a ForwardRequest.
	for i := 0; i < shards; i++ {
		k := keyOnShard(stores[0], i, fmt.Sprintf("fwd-s%d", i))
		if err := cl.Put(ctx, k, []byte("v")); err != nil {
			t.Fatalf("Put %s: %v", k, err)
		}
	}

	// Reassemble every sampled op across both hubs and find a forwarded
	// one with the full pipeline visible.
	var found bool
	for _, id := range clientHub.Tracer().IDs() {
		spans := obs.MergeTraces(id, clientHub.Tracer(), clusterHub.Tracer())
		events := spanEvents(spans)
		fwd := firstIndexContaining(events, "forwarded to shard")
		if fwd < 0 {
			continue
		}
		found = true
		sub := firstIndexContaining(events, "submitted")
		app := firstIndexContaining(events, "applied@seq")
		rep := firstIndexContaining(events, "replied")
		if sub < 0 || app < 0 || rep < 0 {
			t.Fatalf("trace %d missing pipeline stages:\n%s", id, obs.FormatTrace(id, spans))
		}
		if !(sub < fwd && fwd < app && app < rep) {
			t.Fatalf("trace %d stages out of order (submitted=%d forwarded=%d applied=%d replied=%d):\n%s",
				id, sub, fwd, app, rep, obs.FormatTrace(id, spans))
		}
		nodesSeen := map[string]bool{}
		for _, s := range spans {
			nodesSeen[s.Node] = true
		}
		if !nodesSeen["ext"] || !nodesSeen["cluster"] {
			t.Fatalf("trace %d not reassembled across hubs (nodes %v):\n%s",
				id, nodesSeen, obs.FormatTrace(id, spans))
		}
		rendered := obs.FormatTrace(id, spans)
		if !strings.Contains(rendered, fmt.Sprintf("trace %d", id)) || !strings.Contains(rendered, "ext") {
			t.Fatalf("FormatTrace rendering incomplete:\n%s", rendered)
		}
	}
	if !found {
		t.Fatal("no operation was forwarded: every shard landed on the entry node?")
	}
}

// TestTraceReassemblyAcrossMovedRetry freezes the moving key ranges with a
// manual migrate-begin (the first phase of a reshard), issues a Put against
// a frozen key — which bounces with Moved and retries — then lets the
// reshard complete. The op's trace must show the whole story under one
// command id: submitted, bounced at the frozen shard, applied after the
// flip, replied.
func TestTraceReassemblyAcrossMovedRetry(t *testing.T) {
	ctx := ctxT(t, 60*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()

	hub := obs.NewHub(obs.Options{Node: "moved", TraceMod: 1})
	hub.Flight().DumpOnFailure(t)
	stores := newCluster(t, ctx, net, "tracemoved", 2, Options{
		Shards: 4,
		Group:  amoeba.GroupOptions{Obs: hub},
	})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	cl := stores[0].NewClient()
	defer cl.Close()

	// A key whose owner changes under the 4→2 merge: its range freezes at
	// migrate-begin and thaws, at the new owner, only at commit.
	cur := stores[0].Routing()
	target := Routing{Epoch: cur.Epoch + 1, Shards: 2, VNodes: cur.VNodes}
	next := target.ring("tracemoved")
	var moving string
	for i := 0; moving == ""; i++ {
		k := fmt.Sprintf("mv-%04d", i)
		if stores[0].ShardFor(k) != next.shard(k) {
			moving = k
		}
	}

	// Phase 1 only: freeze every old shard's moving ranges, commit later.
	for i := 0; i < cur.Shards; i++ {
		if err := stores[0].migrate(ctx, i, encodeMigrate(opMigrateBegin, stores[0].nextCmdID(), target)); err != nil {
			t.Fatalf("migrate-begin on shard %d: %v", i, err)
		}
	}

	// The Put lands on the frozen range: it must bounce with Moved and
	// keep retrying under the same command id until the flip.
	done := make(chan error, 1)
	go func() { done <- cl.Put(ctx, moving, []byte("travelled")) }()
	time.Sleep(100 * time.Millisecond) // let it bounce at least once

	// Complete the interrupted handoff (Resharding resumes the pending
	// epoch: stream, then commit).
	if err := stores[0].Resharding(ctx, 2); err != nil {
		t.Fatalf("Resharding: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Put across the freeze: %v", err)
	}
	waitShards(t, stores[0], 2, 10*time.Second)

	var found bool
	for _, id := range hub.Tracer().IDs() {
		spans := hub.Tracer().Trace(id)
		events := spanEvents(spans)
		mv := lastIndexContaining(events, "retrying")
		if mv < 0 {
			continue
		}
		found = true
		// The frozen shard traces its apply too (it executes the command
		// and answers Moved), so require an apply AFTER the final bounce —
		// the one at the new owner — followed by the reply.
		sub := firstIndexContaining(events, "submitted")
		app := lastIndexContaining(events, "applied@seq")
		rep := lastIndexContaining(events, "replied")
		if sub < 0 || app < 0 || rep < 0 || !(sub < mv && mv < app && app < rep) {
			t.Fatalf("trace %d missing or misordered Moved-retry stages:\n%s",
				id, obs.FormatTrace(id, spans))
		}
	}
	if !found {
		t.Fatal("no trace recorded a Moved bounce despite the frozen range")
	}
	if v, ok, err := cl.Get(ctx, moving); err != nil || !ok || string(v) != "travelled" {
		t.Fatalf("Get %q after flip = %q %v %v", moving, v, ok, err)
	}
}
