// Package kv is a sharded, replicated key-value service built on the group
// communication system: the layer the paper's §5 applications point toward,
// scaled past the single-sequencer bottleneck.
//
// A store partitions its keyspace by consistent hashing across N independent
// shard groups. Each shard is a shared.Replica — a map state machine kept
// identical on every node by the group's total order, with Isis-style atomic
// state transfer when a node (re)joins. Because every shard has its own
// sequencer, and Bootstrap spreads the shards' sequencers round-robin across
// the nodes, aggregate write throughput grows with the shard count instead
// of saturating one sequencer machine — the multi-group scaling the paper
// measures in Figure 6, put to work.
//
// # Topology
//
// By default every node hosts one replica of every shard, so any node can
// serve any key locally. Options.Replication bounds the factor instead:
// shard i then lives only on nodes {i, …, i+R−1} mod nodes, each write
// interrupts R machines rather than all of them, and aggregate capacity
// grows with the node count — the deployment shape behind the sharded
// benchmark. Nodes are created together with Bootstrap (which places shard
// i's sequencer on node i mod nodes) or added later with Join (which
// state-transfers every hosted shard).
//
// The shard count is NOT frozen at Bootstrap: Store.Resharding splits or
// merges a live store's shard groups under load, coordinating the handoff
// through an epoch-versioned routing table (see Routing and reshard.go) —
// the way the paper's Amoeba applications added groups as load grew.
//
// # Consistency
//
// Writes (Put, Delete, CAS) are sequenced through the owning shard's total
// order. Reads come in two strengths: Client.Get/MGet inject a read marker
// into the same total order and report the value at the marker's position —
// linearizable, at the cost of a group send; Client.LocalGet reads the local
// replica directly — no network traffic, but it may trail the total order.
package kv

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"amoeba"
	"amoeba/obs"
	"amoeba/shared"
	"amoeba/wal"
)

// Options configures a store.
type Options struct {
	// Shards is the number of independent shard groups at bootstrap
	// (default 4). All nodes of one store must agree on it; the live count
	// afterwards is governed by the routing table (Store.Routing) and
	// changed with Store.Resharding.
	Shards int
	// Replication is the number of nodes hosting each shard. 0 (the
	// default) replicates every shard on every node, so any node serves
	// any key locally. A bounded factor (2 or 3) places shard i on nodes
	// {i, i+1, …, i+R−1} mod nodes: each write then interrupts only R
	// machines instead of all of them, which is what lets aggregate
	// throughput grow with the node count — but a Client can only reach
	// shards its node hosts, and live resharding requires full
	// replication.
	Replication int
	// Nodes is the cluster's node count — the modulus of the placement
	// rule. Bootstrap fills it in; Join with bounded replication requires
	// it (with NodeIndex) to know which shards to host.
	Nodes int
	// NodeIndex is this node's placement slot in [0, Nodes). Bootstrap
	// fills it in; Join with bounded replication requires it (a
	// replacement node takes the slot of the node it replaces).
	NodeIndex int
	// VirtualNodes is the consistent-hash points per shard (default 64).
	VirtualNodes int
	// ResultWindow bounds the per-shard replicated result table
	// (default 65536 commands).
	ResultWindow int
	// DataDir, when set, makes every hosted shard durable: each replica
	// journals its deliveries to a write-ahead log under
	// DataDir/<store>/node-<n>/shard-<i> and checkpoints snapshots, so a
	// restart of every node at once — the failure replication cannot mask
	// — recovers all data and the command-id dedup state (retried
	// commands stay exactly-once across the restart). Requires Nodes and
	// NodeIndex (Bootstrap fills them in). Empty (the default) keeps the
	// paper's in-memory semantics.
	DataDir string
	// WALSync fsyncs every journal append: durability against power loss
	// rather than process crashes, at a throughput cost.
	WALSync bool
	// WALSyncDelay, with WALSync, coalesces fsyncs across delivery
	// bursts: an append marks the log dirty and the fsync runs at most
	// this long after it, so a slow disk batches group commits instead of
	// paying one rotation per burst. Zero syncs every append.
	WALSyncDelay time.Duration
	// WALFaultHook, when non-nil, is passed to every shard replica's log so
	// adversarial tests can inject disk-full and torn-tail failures mid-run;
	// the hook receives each log's directory, so one process-wide hook can
	// target a single replica (see wal.Options.FaultHook). Nil injects
	// nothing.
	WALFaultHook wal.FaultHook
	// CheckpointEvery is the number of journaled commands between
	// snapshot checkpoints per shard (default 1024).
	CheckpointEvery int
	// TxnRecoveryAfter is how long a transaction's prepare locks may sit
	// before the per-node janitor asks the home shard to arbitrate — the
	// coordinator client died mid-2PC (default 3s). Recovery is
	// idempotent, so a timid value only delays lock release and an eager
	// one only races (and loses to) a live coordinator's own resolve.
	TxnRecoveryAfter time.Duration
	// AuditEvery, when positive, runs the self-audit driver: every period
	// each hosted shard's sequencer submits a sequenced audit command, all
	// replicas digest their state at the same position in the total order,
	// and the node-local auditor (Group.Obs.Health) compares the digests —
	// flagging any divergence with its shard, audit seq, and key-range.
	// Zero (the default) disables the periodic driver; AuditNow still
	// works, and replicas still report digests for audits other nodes
	// submit.
	AuditEvery time.Duration
	// Leases enables sequencer-granted read leases on every shard group:
	// replicas holding a valid lease serve Get/MGet from local state —
	// linearizable without a group send — and every replica answers
	// Client.StaleGet at a bounded staleness. The price is on the write
	// path (acceptance waits for each live lease holder's stored-ack) and
	// on failover (the group pauses while old grants expire); see
	// amoeba.GroupOptions.LeaseDur. Defaults Group.LeaseDur to 2s and
	// Group.SyncInterval to 250ms when they are unset; setting
	// Group.LeaseDur directly works too.
	Leases bool
	// Group configures every shard group (resilience, method, history —
	// see amoeba.GroupOptions).
	Group amoeba.GroupOptions
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = defaultVirtualNodes
	}
	if o.ResultWindow <= 0 {
		o.ResultWindow = defaultResultWindow
	}
	if o.TxnRecoveryAfter <= 0 {
		o.TxnRecoveryAfter = 3 * time.Second
	}
	if o.Leases && o.Group.LeaseDur <= 0 {
		o.Group.LeaseDur = 2 * time.Second
	}
	if o.Group.LeaseDur > 0 {
		o.Leases = true
		if o.Group.SyncInterval <= 0 {
			// The default 500ms tick would leave little renewal headroom
			// under a 2s lease; grant on a tighter cadence.
			o.Group.SyncInterval = 250 * time.Millisecond
		}
	}
	return o
}

// shardGroupName names shard i's group. Group names are global on the
// network, so the store name namespaces them.
func shardGroupName(store string, i int) string {
	return fmt.Sprintf("kv/%s/shard-%d", store, i)
}

// shardDataDir is one replica's private log directory: per store, per node
// slot, per shard — two replicas must never share a log.
func shardDataDir(dataDir, store string, node, shard int) string {
	return filepath.Join(dataDir, store, fmt.Sprintf("node-%d", node), fmt.Sprintf("shard-%d", shard))
}

// hostsShard reports whether placement slot nodeIndex hosts shard i under
// the placement rule: shard i lives on nodes {i, i+1, …, i+repl−1} mod
// nodes. repl ≤ 0 means full replication.
func hostsShard(i, nodeIndex, nodes, repl int) bool {
	if repl <= 0 || repl >= nodes {
		return true
	}
	return (nodeIndex-i%nodes+nodes)%nodes < repl
}

// Store is one node's handle on a sharded store: a replica of every shard,
// hosted on a single kernel.
//
// A store self-heals: if one of its shard replicas is expelled — the group
// recovered while this node was too slow to vote, the paper's unreliable
// failure detector at work — a background watcher rejoins that shard with
// atomic state transfer and swaps the fresh replica in. Client operations
// in flight across the swap fail with ErrStopped internally and are retried
// against the new replica (commands are deduplicated by id, so a retry of an
// already-applied command is not re-executed).
//
// A store also follows the routing table: when a migrate-begin announcing
// new shard groups is applied by any hosted replica, a topology worker
// creates or joins the groups this node should host, and when an epoch flip
// retires shards (a merge), it leaves their groups and reclaims their logs.
// Every node converges on the table independently — the coordinator only
// drives the sequenced commands.
type Store struct {
	name   string
	opts   Options
	kernel *amoeba.Kernel

	// The node-local view of the replicated routing table: the highest
	// epoch any hosted replica has applied, plus the per-shard pending
	// (mid-handoff) tables still installed. pendingRt derives from
	// shardPending: it stays non-nil while ANY hosted shard still
	// carries a pending table — even after the store-level epoch already
	// flipped (a crash between per-shard commits leaves stragglers whose
	// freeze only the resume path can lift). Guarded by routeMu;
	// routeWake is closed and replaced on every change (see
	// RoutingWatch).
	routeMu      sync.RWMutex
	routing      Routing
	ring         *ring
	pendingRt    *Routing
	shardPending map[int]Routing
	routeWake    chan struct{}

	// idNonce + idSeq mint command ids for this store's own sequenced
	// commands (migration protocol).
	idNonce uint64
	idSeq   atomic.Uint64

	// reshardMu serialises coordinators on this node; coordinating marks
	// an active handoff driven from this node (it elects this node the
	// creator of in-memory split groups).
	reshardMu    sync.Mutex
	coordinating atomic.Bool

	mu     sync.RWMutex
	shards []*shared.Replica // index = shard id; grows on split
	closed bool

	// Read-path counters: how many reads each shortcut served and how many
	// fell back to the sequenced read marker. Exported as the
	// amoeba_kv_lease_* metric families.
	leaseServed   atomic.Uint64
	leaseFallback atomic.Uint64
	staleServed   atomic.Uint64
	staleFallback atomic.Uint64
	obsUnreg      func()

	ensureCh   chan struct{}
	healCtx    context.Context
	healCancel context.CancelFunc
	healWG     sync.WaitGroup
}

func newStore(name string, k *amoeba.Kernel, opts Options) *Store {
	ctx, cancel := context.WithCancel(context.Background())
	rt := Routing{Epoch: 0, Shards: opts.Shards, VNodes: opts.VirtualNodes}
	s := &Store{
		name:         name,
		opts:         opts,
		kernel:       k,
		routing:      rt,
		ring:         rt.ring(name),
		shardPending: make(map[int]Routing),
		routeWake:    make(chan struct{}),
		idNonce:      clientNonce(),
		shards:       make([]*shared.Replica, opts.Shards),
		ensureCh:     make(chan struct{}, 1),
		healCtx:      ctx,
		healCancel:   cancel,
	}
	s.obsUnreg = opts.Group.Obs.Registry().RegisterSource(func() []obs.Sample {
		return []obs.Sample{
			{Name: "amoeba_kv_lease_reads_total", Value: s.leaseServed.Load()},
			{Name: "amoeba_kv_lease_fallbacks_total", Value: s.leaseFallback.Load()},
			{Name: "amoeba_kv_stale_reads_total", Value: s.staleServed.Load()},
			{Name: "amoeba_kv_stale_fallbacks_total", Value: s.staleFallback.Load()},
		}
	})
	return s
}

// newShardSM builds shard i's state machine, wired to report routing changes
// back to this store.
func (s *Store) newShardSM(shard int) *mapSM {
	sm := newMapSM(s.name, shard, s.Routing(), s.opts.ResultWindow, s.noteRouting)
	if hub := s.opts.Group.Obs; hub != nil {
		sm.tracer = hub.Tracer()
		sm.flight = hub.Flight()
		aud, node := hub.Health(), auditNodeName(s.opts.NodeIndex)
		sm.onAudit = func(shard int, d obs.Digest) {
			aud.Report(auditScope(s.name, shard), node, d)
		}
	}
	return sm
}

// nextCmdID mints a command id for the store's own sequenced commands.
func (s *Store) nextCmdID() uint64 { return s.idNonce + s.idSeq.Add(1) }

// Routing returns the store's current routing table: the highest epoch any
// hosted replica has applied.
func (s *Store) Routing() Routing {
	s.routeMu.RLock()
	defer s.routeMu.RUnlock()
	return s.routing
}

// PendingRouting returns the mid-handoff table a migrate-begin announced, or
// nil when no handoff is in progress.
func (s *Store) PendingRouting() *Routing {
	s.routeMu.RLock()
	defer s.routeMu.RUnlock()
	if s.pendingRt == nil {
		return nil
	}
	rt := *s.pendingRt
	return &rt
}

// routingRing returns the current ring and table under one lock.
func (s *Store) routingRing() (*ring, Routing) {
	s.routeMu.RLock()
	defer s.routeMu.RUnlock()
	return s.ring, s.routing
}

// RoutingWatch returns a channel closed at the next routing change (epoch
// flip or handoff start). Re-call after each wakeup for the next one.
func (s *Store) RoutingWatch() <-chan struct{} {
	s.routeMu.RLock()
	defer s.routeMu.RUnlock()
	return s.routeWake
}

// noteRouting folds one replica's routing state into the node-local view.
// It is called by shard state machines under their replica lock (including
// during write-ahead-log recovery), so it must not call back into replicas;
// topology work happens on the worker goroutine it nudges.
func (s *Store) noteRouting(shard int, cur Routing, pending Routing, hasPending bool) {
	s.routeMu.Lock()
	changed := false
	if cur.Epoch > s.routing.Epoch || (cur.Epoch == s.routing.Epoch && cur.Shards != s.routing.Shards) {
		s.routing = cur
		s.ring = cur.ring(s.name)
		changed = true
	}
	if hasPending {
		if prev, ok := s.shardPending[shard]; !ok || prev != pending {
			s.shardPending[shard] = pending
			changed = true
		}
	} else if _, ok := s.shardPending[shard]; ok {
		delete(s.shardPending, shard)
		changed = true
	}
	// The derived pending view: the highest-epoch table any hosted shard
	// still carries. NOT gated on the store-level epoch — a straggler
	// whose siblings already committed must keep the handoff resumable.
	var best *Routing
	for _, p := range s.shardPending {
		if best == nil || p.Epoch > best.Epoch {
			p := p
			best = &p
		}
	}
	switch {
	case best == nil && s.pendingRt != nil,
		best != nil && (s.pendingRt == nil || *best != *s.pendingRt):
		s.pendingRt = best
		changed = true
	}
	if changed {
		close(s.routeWake)
		s.routeWake = make(chan struct{})
	}
	s.routeMu.Unlock()
	if changed {
		s.nudgeTopology()
	}
}

// nudgeTopology asks the topology worker to reconcile hosted shards with the
// routing table.
func (s *Store) nudgeTopology() {
	select {
	case s.ensureCh <- struct{}{}:
	default:
	}
}

// startSelfHeal launches the per-shard watchers and the topology worker;
// called once construction succeeded.
func (s *Store) startSelfHeal() {
	s.mu.RLock()
	n := len(s.shards)
	s.mu.RUnlock()
	for i := 0; i < n; i++ {
		if s.Replica(i) == nil {
			continue // not hosted under bounded replication
		}
		s.healWG.Add(1)
		go s.watchShard(i)
	}
	s.healWG.Add(1)
	go s.topologyWorker()
	s.healWG.Add(1)
	go s.txnJanitor(s.healCtx)
	if s.opts.AuditEvery > 0 && s.opts.Group.Obs != nil {
		s.healWG.Add(1)
		go s.auditDriver(s.healCtx)
	}
	s.nudgeTopology()
}

// flight returns the store's flight recorder (nil-safe: a nil hub records
// nothing).
func (s *Store) flight() *obs.Recorder {
	return s.opts.Group.Obs.Flight()
}

// watchShard rejoins shard i whenever its replica stops underneath us.
func (s *Store) watchShard(i int) {
	defer s.healWG.Done()
	for {
		s.mu.RLock()
		var r *shared.Replica
		if i < len(s.shards) {
			r = s.shards[i]
		}
		s.mu.RUnlock()
		if r == nil {
			return // retired (or never hosted)
		}
		// Block until the replica stops; the always-false predicate makes
		// Wait return only on ErrStopped (expelled or closed) or ctx end.
		err := r.Wait(s.healCtx, func(shared.StateMachine) bool { return false })
		if s.healCtx.Err() != nil || !errors.Is(err, shared.ErrStopped) {
			return
		}
		s.mu.RLock()
		closed := s.closed
		current := i < len(s.shards) && s.shards[i] == r
		s.mu.RUnlock()
		if closed || !current {
			return // store closing, or the shard was retired/swapped
		}
		if rt := s.Routing(); i >= rt.Shards && s.PendingRouting() == nil {
			return // shard retired by a merge: nothing to heal
		}
		r.Close() // release the expelled replica's transfer service (and log)
		rep, err := s.openShard(s.healCtx, i, false)
		if err != nil {
			if s.healCtx.Err() != nil {
				return
			}
			// Unexpected failure (e.g. a second expulsion raced the
			// rejoin in a way joinShard does not classify): back off
			// and keep trying — giving up would strand the shard on
			// this node forever.
			select {
			case <-s.healCtx.Done():
				return
			case <-time.After(time.Second):
			}
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			rep.Close()
			return
		}
		s.shards[i] = rep
		s.mu.Unlock()
	}
}

// topologyWorker reconciles the set of hosted shard replicas with the
// routing table: joining or creating the groups a pending split announced,
// and retiring the groups an epoch flip removed (merge). It is the half of
// the handoff every node runs independently; the coordinator only drives
// the sequenced migration commands.
func (s *Store) topologyWorker() {
	defer s.healWG.Done()
	for {
		select {
		case <-s.healCtx.Done():
			return
		case <-s.ensureCh:
		}
		s.reconcileTopology()
	}
}

func (s *Store) reconcileTopology() {
	s.routeMu.RLock()
	cur := s.routing
	pending := s.pendingRt
	s.routeMu.RUnlock()
	want := cur.Shards
	if pending != nil && pending.Shards > want {
		want = pending.Shards
	}
	nodes := s.opts.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	// Grow: open replicas for announced shards this node should host.
	for i := 0; i < want; i++ {
		if !hostsShard(i, s.opts.NodeIndex, nodes, s.opts.Replication) {
			continue
		}
		s.mu.Lock()
		for len(s.shards) < want {
			s.shards = append(s.shards, nil)
		}
		have := s.shards[i] != nil
		closed := s.closed
		s.mu.Unlock()
		if have || closed {
			continue
		}
		// Bound each attempt so one unreachable group cannot wedge the
		// worker; a failure re-arms a retry nudge.
		attemptCtx, cancel := context.WithTimeout(s.healCtx, 30*time.Second)
		rep, err := s.openNewShard(attemptCtx, i)
		cancel()
		if err != nil {
			if s.healCtx.Err() == nil {
				time.AfterFunc(250*time.Millisecond, s.nudgeTopology)
			}
			continue
		}
		s.mu.Lock()
		if s.closed || s.shards[i] != nil {
			s.mu.Unlock()
			rep.Close()
			continue
		}
		s.shards[i] = rep
		s.mu.Unlock()
		s.healWG.Add(1)
		go s.watchShard(i)
	}
	// Shrink: retire shards the committed table no longer contains.
	if pending == nil {
		s.mu.RLock()
		n := len(s.shards)
		s.mu.RUnlock()
		for i := cur.Shards; i < n; i++ {
			if r := s.Replica(i); r != nil {
				s.healWG.Add(1)
				go s.retireShard(i, r, cur.Epoch)
			}
		}
	}
}

// openNewShard obtains a replica of a shard announced by a pending split.
// Durable stores run the write-ahead-log path's cold-start election (virgin
// logs everywhere: the best candidate among the nodes that are UP creates,
// so a dead preferred rank cannot strand the shard). In-memory stores have
// no election machinery, so the handoff coordinator — alive by definition —
// creates the group and everyone else joins with retry; a fixed designated
// creator would deadlock the split if that node happened to be the one
// whose death the resharding is racing.
func (s *Store) openNewShard(ctx context.Context, i int) (*shared.Replica, error) {
	if s.opts.DataDir != "" {
		return s.openShard(ctx, i, false)
	}
	if s.coordinating.Load() {
		return shared.Create(ctx, s.kernel, shardGroupName(s.name, i), s.newShardSM(i), s.opts.Group)
	}
	return s.joinShard(ctx, i)
}

// retireShard removes a shard a merge deleted: wait until the local replica
// has applied its own epoch flip (so the departure is sequenced after the
// commit), leave the group in total order, and reclaim the log directory.
func (s *Store) retireShard(i int, r *shared.Replica, epoch uint64) {
	defer s.healWG.Done()
	err := r.Wait(s.healCtx, func(sm shared.StateMachine) bool {
		return sm.(*mapSM).routing.Epoch >= epoch
	})
	s.mu.Lock()
	if s.closed || i >= len(s.shards) || s.shards[i] != r {
		s.mu.Unlock()
		return
	}
	s.shards[i] = nil
	s.mu.Unlock()
	if err == nil {
		leaveCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = r.Leave(leaveCtx)
		cancel()
	}
	r.Close()
	if s.opts.DataDir != "" {
		// The shard's history now lives (merged) in the surviving shards'
		// logs; a leftover directory would only resurrect a zombie group
		// at the next restart.
		_ = os.RemoveAll(shardDataDir(s.opts.DataDir, s.name, s.opts.NodeIndex, i))
	}
}

// Bootstrap creates a store named name across the given kernels (one node
// per kernel) and returns a Store handle per node, in kernel order. Shard
// i's group is created by node i mod len(kernels) — spreading the
// sequencers, so with as many nodes as shards every node sequences exactly
// one shard — and joined by every other node.
//
// With Options.DataDir set the store is durable, and Bootstrap doubles as
// the restart path: when the store's directory already exists, every node
// recovers its shards from their write-ahead logs (including shards a past
// Resharding added — the shard count is discovered from the logs, not taken
// from Options) and the shards' groups are reformed from the longest
// surviving log each (see shared.Open) — so re-running Bootstrap after
// killing every node brings the store back with all data intact. A handoff
// the crash interrupted is resumed (or, if it had already committed
// anywhere, completed) before Bootstrap returns; see Store.Resharding.
//
// Group creation is not atomic (paper §5); Bootstrap assumes no concurrent
// store of the same name is being created on the same network.
func Bootstrap(ctx context.Context, kernels []*amoeba.Kernel, name string, opts Options) ([]*Store, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("kv: bootstrap of %q needs at least one kernel", name)
	}
	opts = opts.withDefaults()
	opts.Nodes = len(kernels)
	if opts.DataDir != "" {
		return bootstrapDurable(ctx, kernels, name, opts)
	}
	stores := make([]*Store, len(kernels))
	for n := range kernels {
		o := opts
		o.NodeIndex = n
		stores[n] = newStore(name, kernels[n], o)
	}
	fail := func(err error) ([]*Store, error) {
		for _, s := range stores {
			s.abandon()
		}
		return nil, err
	}
	for i := 0; i < opts.Shards; i++ {
		creator := i % len(kernels)
		group := shardGroupName(name, i)
		r, err := shared.Create(ctx, kernels[creator], group, stores[creator].newShardSM(i), opts.Group)
		if err != nil {
			return fail(fmt.Errorf("kv: creating %s: %w", group, err))
		}
		stores[creator].shards[i] = r
		// The remaining hosting nodes join concurrently; each join is a
		// group membership change plus a (tiny, empty-state) transfer.
		var wg sync.WaitGroup
		errs := make([]error, len(kernels))
		for n := range kernels {
			if n == creator || !hostsShard(i, n, len(kernels), opts.Replication) {
				continue
			}
			n := n
			wg.Add(1)
			go func() {
				defer wg.Done()
				rep, err := stores[n].joinShard(ctx, i)
				if err != nil {
					errs[n] = fmt.Errorf("kv: node %d joining %s: %w", n, group, err)
					return
				}
				stores[n].shards[i] = rep
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return fail(err)
			}
		}
	}
	for _, s := range stores {
		s.startSelfHeal()
	}
	return stores, nil
}

// discoverShardCount inspects one node's data directory for shard logs a
// past Resharding may have added beyond the configured bootstrap count.
func discoverShardCount(dataDir, store string, node, configured int) int {
	n := configured
	entries, err := os.ReadDir(filepath.Join(dataDir, store, fmt.Sprintf("node-%d", node)))
	if err != nil {
		return n
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || !strings.HasPrefix(name, "shard-") {
			continue
		}
		if i, err := strconv.Atoi(name[len("shard-"):]); err == nil && i+1 > n {
			n = i + 1
		}
	}
	return n
}

// bootstrapDurable boots (or restarts) a durable store: every node opens
// its hosted shards through the write-ahead-log path concurrently. A store
// directory that does not exist yet marks a genuine first boot, letting each
// shard's preferred creator skip the survivor probe; an existing directory
// is a restart, and every shard runs the full recover-join-or-elect path.
func bootstrapDurable(ctx context.Context, kernels []*amoeba.Kernel, name string, opts Options) ([]*Store, error) {
	_, err := os.Stat(filepath.Join(opts.DataDir, name))
	fresh := os.IsNotExist(err)
	shardCount := opts.Shards
	if !fresh {
		for n := range kernels {
			shardCount = discoverShardCount(opts.DataDir, name, n, shardCount)
		}
	}
	stores := make([]*Store, len(kernels))
	for n := range kernels {
		o := opts
		o.NodeIndex = n
		stores[n] = newStore(name, kernels[n], o)
		stores[n].mu.Lock()
		for len(stores[n].shards) < shardCount {
			stores[n].shards = append(stores[n].shards, nil)
		}
		stores[n].mu.Unlock()
	}
	// One shard failing must cancel its siblings: a joiner whose creator
	// never came up retries until its context ends, so without this a
	// single bad data directory would hang the whole boot.
	openCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for n := range kernels {
		for i := 0; i < shardCount; i++ {
			if !hostsShard(i, n, len(kernels), opts.Replication) {
				continue
			}
			n, i := n, i
			wg.Add(1)
			go func() {
				defer wg.Done()
				rep, err := stores[n].openShard(openCtx, i, fresh)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("kv: node %d opening %s: %w", n, shardGroupName(name, i), err)
					}
					mu.Unlock()
					cancel()
					return
				}
				stores[n].mu.Lock()
				stores[n].shards[i] = rep
				stores[n].mu.Unlock()
			}()
		}
	}
	wg.Wait()
	if firstErr != nil {
		for _, s := range stores {
			s.abandon()
		}
		return nil, firstErr
	}
	for _, s := range stores {
		s.startSelfHeal()
	}
	// A crash mid-handoff leaves pending routing in the recovered state;
	// finish the migration deterministically before handing the store out.
	if !fresh {
		if err := stores[0].resumeResharding(ctx); err != nil {
			for _, s := range stores {
				s.Close()
			}
			return nil, fmt.Errorf("kv: resuming interrupted resharding of %q: %w", name, err)
		}
		// Likewise for transactions a kill-all interrupted between prepare
		// and commit: the coordinators are certainly gone, so arbitrate
		// every in-doubt prepare now instead of waiting out the janitor.
		stores[0].recoverInDoubt(ctx, 0)
	}
	return stores, nil
}

// Open (re)starts one durable node of a store: every hosted shard is
// recovered from its write-ahead log and then rejoins its group — or, when
// the whole group is gone (a full-cluster restart), takes part in reforming
// it from the surviving logs. Options.DataDir, Nodes, and NodeIndex are
// required; use it when each node runs in its own process, or to re-admit a
// single restarted node (Bootstrap restarts whole single-process clusters).
func Open(ctx context.Context, k *amoeba.Kernel, name string, opts Options) (*Store, error) {
	if opts.DataDir == "" {
		return nil, fmt.Errorf("kv: opening %q requires Options.DataDir (use Join for in-memory stores)", name)
	}
	return Join(ctx, k, name, opts)
}

// Join adds a node to a running store: every shard group the node's
// placement slot hosts is joined with atomic state transfer, so when Join
// returns the node holds up-to-date replicas and serves reads and writes
// like any bootstrap node. With full replication (the default) that is every
// shard; with bounded replication, set Options.Nodes and Options.NodeIndex
// to the slot being (re)filled. Use it to grow a store or to re-admit a
// crashed node.
func Join(ctx context.Context, k *amoeba.Kernel, name string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.Replication > 0 && opts.Nodes <= 0 {
		return nil, fmt.Errorf("kv: joining %q with bounded replication requires Options.Nodes and Options.NodeIndex", name)
	}
	if opts.DataDir != "" && opts.Nodes <= 0 {
		return nil, fmt.Errorf("kv: joining %q durably requires Options.Nodes and Options.NodeIndex (the cold-start election needs the node's slot)", name)
	}
	shardCount := opts.Shards
	if opts.DataDir != "" {
		shardCount = discoverShardCount(opts.DataDir, name, opts.NodeIndex, shardCount)
	}
	s := newStore(name, k, opts)
	s.mu.Lock()
	for len(s.shards) < shardCount {
		s.shards = append(s.shards, nil)
	}
	s.mu.Unlock()
	var (
		wg   sync.WaitGroup
		errs = make([]error, shardCount)
	)
	for i := 0; i < shardCount; i++ {
		if !hostsShard(i, opts.NodeIndex, opts.Nodes, opts.Replication) {
			continue
		}
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := s.openShard(ctx, i, false)
			if err != nil {
				errs[i] = fmt.Errorf("kv: joining shard %d of %q: %w", i, name, err)
				return
			}
			s.mu.Lock()
			s.shards[i] = rep
			s.mu.Unlock()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			s.abandon()
			return nil, err
		}
	}
	s.startSelfHeal()
	return s, nil
}

// openShard obtains one shard replica over whichever path the options name:
// in-memory stores join with retry (joinShard); durable stores go through
// shared.Open — recover the write-ahead log, join the live group if one
// exists, otherwise elect the longest surviving log to reform it. bootstrap
// marks a declared first boot (see shared.Durability.Bootstrap).
func (s *Store) openShard(ctx context.Context, shard int, bootstrap bool) (*shared.Replica, error) {
	if s.opts.DataDir == "" {
		return s.joinShard(ctx, shard)
	}
	nodes := s.opts.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	dur := shared.Durability{
		Dir:             shardDataDir(s.opts.DataDir, s.name, s.opts.NodeIndex, shard),
		Sync:            s.opts.WALSync,
		SyncDelay:       s.opts.WALSyncDelay,
		CheckpointEvery: s.opts.CheckpointEvery,
		FaultHook:       s.opts.WALFaultHook,
		Rank:            s.opts.NodeIndex,
		Peers:           nodes,
		Preferred:       shard % nodes,
		Bootstrap:       bootstrap,
	}
	return shared.Open(ctx, s.kernel, shardGroupName(s.name, shard), s.newShardSM(shard), s.opts.Group, dur)
}

// joinShard joins one shard group, retrying the failures that a group in
// mid-recovery produces: ErrNoGroup (the sequencer died and the survivors
// have not rebuilt yet, or the join raced a reset), ErrTransferFailed (no
// member could donate a current snapshot in time), and ErrNotMember (a
// recovery excluded the half-joined member before the transfer finished).
// The caller's ctx bounds the retries; a group whose survivors never
// recover fails when ctx does.
func (s *Store) joinShard(ctx context.Context, shard int) (*shared.Replica, error) {
	group := shardGroupName(s.name, shard)
	for {
		rep, err := shared.Join(ctx, s.kernel, group, s.newShardSM(shard), s.opts.Group)
		if err == nil {
			return rep, nil
		}
		if !errors.Is(err, amoeba.ErrNoGroup) && !errors.Is(err, shared.ErrTransferFailed) &&
			!errors.Is(err, amoeba.ErrNotMember) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, err // the transient error names the stuck shard
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// abandon unwinds a partially constructed node (self-heal not started yet).
// Unlike Close (crash semantics), it leaves each joined shard group in total
// order, so a failed Bootstrap or Join does not plant dead members — which
// would otherwise inherit ack duty in resilient groups and stall the next
// attempt.
func (s *Store) abandon() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.healCancel()
	s.obsUnreg()
	var wg sync.WaitGroup
	for _, r := range s.snapshotShards() {
		if r == nil {
			continue
		}
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = r.Leave(ctx) // Leave falls back to Close internally
		}()
	}
	wg.Wait()
}

// Name returns the store's name.
func (s *Store) Name() string { return s.name }

// Shards returns the live shard count under the current routing table.
func (s *Store) Shards() int { return s.Routing().Shards }

// ShardFor returns the shard owning key under the current routing table.
func (s *Store) ShardFor(key string) int {
	r, _ := s.routingRing()
	return r.shard(key)
}

// HostsShard reports whether this node hosts a replica of shard i.
func (s *Store) HostsShard(i int) bool { return s.Replica(i) != nil }

// expectsShard reports whether this node's placement slot should host shard
// i under the current (or pending) table — true with a nil Replica means
// the topology worker is still opening it (mid-split), and local callers
// should wait rather than assume a remote owner.
func (s *Store) expectsShard(i int) bool {
	s.routeMu.RLock()
	want := s.routing.Shards
	if s.pendingRt != nil && s.pendingRt.Shards > want {
		want = s.pendingRt.Shards
	}
	s.routeMu.RUnlock()
	if i < 0 || i >= want {
		return false
	}
	nodes := s.opts.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	return hostsShard(i, s.opts.NodeIndex, nodes, s.opts.Replication)
}

// Replica exposes shard i's underlying replica, for group-level operations
// (Reset, Info, Applied) and advanced reads. After a self-heal the handle a
// caller holds may be the stopped predecessor; call Replica again for the
// current one.
func (s *Store) Replica(i int) *shared.Replica {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i < 0 || i >= len(s.shards) {
		return nil
	}
	return s.shards[i]
}

// leasesOn reports whether this store's shard groups grant read leases.
func (s *Store) leasesOn() bool { return s.opts.Group.LeaseDur > 0 }

// LeaseStats reports the store's read-path counters: reads served under a
// lease, lease attempts that fell back to the sequenced marker, bounded-stale
// reads served, and stale attempts that fell back.
func (s *Store) LeaseStats() (leased, leaseFallback, stale, staleFallback uint64) {
	return s.leaseServed.Load(), s.leaseFallback.Load(), s.staleServed.Load(), s.staleFallback.Load()
}

// leaseGet answers a single-shard multi-key read from shard's local replica
// under its read lease — linearizable with no group send. It fails (false)
// when the replica is absent or holds no valid lease, or when any requested
// key is frozen by a live handoff or locked by a prepared transaction; the
// caller then falls back to the sequenced read marker, whose Moved/locked
// handling is the one retry loop. Safe across a live reshard: the lease
// watermark covers every completed write, and a completed migrate-begin is
// itself lease-gated, so any key moving away is already frozen (serves()
// false) in the state a valid lease exposes.
func (s *Store) leaseGet(shard int, keys []string) (*Response, bool) {
	r := s.Replica(shard)
	if r == nil {
		return nil, false
	}
	resp := &Response{OK: true, ReadPath: ReadLease,
		Values: make([][]byte, len(keys)), Found: make([]bool, len(keys))}
	served := true
	ok := r.LeaseRead(func(sm shared.StateMachine) {
		m := sm.(*mapSM)
		for i, k := range keys {
			if !m.serves(k) || m.locked(k) {
				served = false
				return
			}
			if v, found := m.items[k]; found {
				resp.Values[i] = append([]byte(nil), v...)
				resp.Found[i] = true
			}
		}
	})
	if !ok || !served {
		s.leaseFallback.Add(1)
		return nil, false
	}
	s.leaseServed.Add(1)
	return resp, true
}

// staleGet answers a single-shard multi-key read from shard's local replica
// at a bounded staleness (no lease required — the follower-read path). The
// bound covers the total order, not the handoff freeze, so frozen or locked
// keys fall back like leaseGet's.
func (s *Store) staleGet(shard int, keys []string, maxStale time.Duration) (*Response, bool) {
	r := s.Replica(shard)
	if r == nil || maxStale <= 0 {
		return nil, false
	}
	resp := &Response{OK: true, ReadPath: ReadStale,
		Values: make([][]byte, len(keys)), Found: make([]bool, len(keys))}
	served := true
	bound, ok := r.StaleRead(maxStale, func(sm shared.StateMachine) {
		m := sm.(*mapSM)
		for i, k := range keys {
			if !m.serves(k) || m.locked(k) {
				served = false
				return
			}
			if v, found := m.items[k]; found {
				resp.Values[i] = append([]byte(nil), v...)
				resp.Found[i] = true
			}
		}
	})
	if !ok || !served {
		s.staleFallback.Add(1)
		return nil, false
	}
	resp.StaleFor = bound
	s.staleServed.Add(1)
	return resp, true
}

// isClosed reports whether Close or Leave has begun.
func (s *Store) isClosed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// snapshotShards copies the current replica set under the lock.
func (s *Store) snapshotShards() []*shared.Replica {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*shared.Replica(nil), s.shards...)
}

// Reset rebuilds every shard group after a node crash, requiring at least
// minAlive surviving members per shard; see amoeba.Group.Reset. This node
// becomes the sequencer of every shard it resets, so prefer calling Reset on
// different surviving nodes for different shards — or set
// Options.Group.AutoReset and skip manual recovery entirely.
func (s *Store) Reset(ctx context.Context, minAlive int) error {
	for i, r := range s.snapshotShards() {
		if r == nil {
			continue
		}
		if err := r.Reset(ctx, minAlive); err != nil {
			return fmt.Errorf("kv: resetting shard %d: %w", i, err)
		}
	}
	return nil
}

// Members reports the replica-set size of shard i (0 if this node does not
// host it).
func (s *Store) Members(i int) int {
	r := s.Replica(i)
	if r == nil {
		return 0
	}
	return r.Members()
}

// Close stops the node without protocol goodbye: to the rest of the store,
// this node has crashed. Surviving nodes recover with Reset (or AutoReset).
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	shards := append([]*shared.Replica(nil), s.shards...)
	s.mu.Unlock()
	s.healCancel()
	s.obsUnreg()
	var wg sync.WaitGroup
	for _, r := range shards {
		if r == nil {
			continue
		}
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Close()
		}()
	}
	wg.Wait()
	s.healWG.Wait()
}

// Leave departs every shard group in total order and stops the node.
func (s *Store) Leave(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	shards := append([]*shared.Replica(nil), s.shards...)
	s.mu.Unlock()
	s.healCancel()
	s.obsUnreg()
	s.healWG.Wait()
	var firstErr error
	for _, r := range shards {
		if r == nil {
			continue
		}
		if err := r.Leave(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
