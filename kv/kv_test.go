package kv

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"amoeba"
	"amoeba/shared"
)

func ctxT(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// newCluster bootstraps a store over fresh kernels and arranges cleanup.
func newCluster(t *testing.T, ctx context.Context, net *amoeba.MemoryNetwork, name string, nodes int, opts Options) []*Store {
	t.Helper()
	kernels := make([]*amoeba.Kernel, nodes)
	for i := range kernels {
		k, err := net.NewKernel(fmt.Sprintf("%s-node-%d", name, i))
		if err != nil {
			t.Fatalf("kernel %d: %v", i, err)
		}
		kernels[i] = k
	}
	stores, err := Bootstrap(ctx, kernels, name, opts)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	return stores
}

func TestBasicOps(t *testing.T) {
	ctx := ctxT(t, 30*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "basic", 2, Options{Shards: 4})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	cl := stores[0].NewClient()

	// Put / sequenced Get.
	if err := cl.Put(ctx, "alpha", []byte("1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, ok, err := cl.Get(ctx, "alpha")
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get alpha = %q %v %v", v, ok, err)
	}
	// Read-your-writes holds even on the local fast path, because Put
	// waits for the local apply.
	if v, ok := cl.LocalGet("alpha"); !ok || string(v) != "1" {
		t.Fatalf("LocalGet alpha = %q %v", v, ok)
	}
	if _, ok, _ := cl.Get(ctx, "missing"); ok {
		t.Fatal("Get of missing key reported found")
	}
	if _, ok := cl.LocalGet("missing"); ok {
		t.Fatal("LocalGet of missing key reported found")
	}

	// Delete reports prior existence.
	if existed, err := cl.Delete(ctx, "alpha"); err != nil || !existed {
		t.Fatalf("Delete alpha = %v %v", existed, err)
	}
	if existed, err := cl.Delete(ctx, "alpha"); err != nil || existed {
		t.Fatalf("second Delete alpha = %v %v", existed, err)
	}

	// CAS: create-if-absent, replace-if-equal, fail-if-different.
	if ok, err := cl.CAS(ctx, "cas", nil, []byte("first")); err != nil || !ok {
		t.Fatalf("CAS create = %v %v", ok, err)
	}
	if ok, err := cl.CAS(ctx, "cas", nil, []byte("again")); err != nil || ok {
		t.Fatalf("CAS create over existing = %v %v", ok, err)
	}
	if ok, err := cl.CAS(ctx, "cas", []byte("wrong"), []byte("x")); err != nil || ok {
		t.Fatalf("CAS wrong expect = %v %v", ok, err)
	}
	if ok, err := cl.CAS(ctx, "cas", []byte("first"), []byte("second")); err != nil || !ok {
		t.Fatalf("CAS replace = %v %v", ok, err)
	}
	if v, _, _ := cl.Get(ctx, "cas"); string(v) != "second" {
		t.Fatalf("cas = %q after swap", v)
	}
}

// TestBatchPutCoalescesAcrossShards bulk-loads through the write-coalescing
// path: pairs scatter to their owning shards, each shard's burst rides the
// group layer's batch requests, and every write must be readable afterwards
// — from another node — with the shard sequencers reporting actual
// multi-message batches.
func TestBatchPutCoalescesAcrossShards(t *testing.T) {
	ctx := ctxT(t, 30*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "batchput", 2, Options{Shards: 2})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()

	// Issue the batch from the node that does NOT sequence every shard, so
	// at least one shard's burst crosses the wire as batch requests.
	cl := stores[1].NewClient()
	const n = 64
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{Key: fmt.Sprintf("bulk-%03d", i), Val: []byte(fmt.Sprintf("v%d", i))}
	}
	if err := cl.BatchPut(ctx, pairs); err != nil {
		t.Fatalf("BatchPut: %v", err)
	}
	// Read-your-writes locally on the issuing node...
	for _, p := range pairs {
		if v, ok := cl.LocalGet(p.Key); !ok || !bytes.Equal(v, p.Val) {
			t.Fatalf("LocalGet %s = %q %v after BatchPut", p.Key, v, ok)
		}
	}
	// ...and sequenced reads from the other node agree.
	other := stores[0].NewClient()
	got, err := other.MGet(ctx, "bulk-000", "bulk-031", "bulk-063")
	if err != nil {
		t.Fatalf("MGet: %v", err)
	}
	for k, want := range map[string]string{"bulk-000": "v0", "bulk-031": "v31", "bulk-063": "v63"} {
		if string(got[k]) != want {
			t.Fatalf("MGet %s = %q, want %q", k, got[k], want)
		}
	}
	// The bursts must actually have coalesced somewhere.
	var batches uint64
	for _, s := range stores {
		for i := 0; i < s.Shards(); i++ {
			if r := s.Replica(i); r != nil {
				batches += r.Stats().OrderedBatches
			}
		}
	}
	if batches == 0 {
		t.Fatal("BatchPut produced no batch ordering requests")
	}
}

// TestBatchPutIsExactlyOnceUnderRetry checks the id-dedup contract the
// BatchPut retry loop depends on: re-submitting an already-committed batch
// must not re-execute it.
func TestBatchPutIsExactlyOnceUnderRetry(t *testing.T) {
	ctx := ctxT(t, 30*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "batchonce", 1, Options{Shards: 1})
	defer stores[0].Close()

	cl := stores[0].NewClient()
	ids := []uint64{cl.nextID(), cl.nextID()}
	cmds := [][]byte{encodePut(ids[0], "k", []byte("first")), encodePut(ids[1], "k", []byte("second"))}
	if err := stores[0].doBatch(ctx, 0, ids, cmds); err != nil {
		t.Fatalf("doBatch: %v", err)
	}
	if err := cl.Put(ctx, "k", []byte("third")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Replaying the original batch (a retry after a presumed-lost reply)
	// must be a no-op: the commands' ids already have results.
	if err := stores[0].doBatch(ctx, 0, ids, cmds); err != nil {
		t.Fatalf("doBatch replay: %v", err)
	}
	if v, ok := cl.LocalGet("k"); !ok || string(v) != "third" {
		t.Fatalf("k = %q %v: replayed batch re-executed", v, ok)
	}
}

func TestOperationsSpreadAcrossShards(t *testing.T) {
	ctx := ctxT(t, 30*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "spread", 2, Options{Shards: 4})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	cl := stores[0].NewClient()
	hit := make(map[int]bool)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("spread-%d", i)
		hit[stores[0].ShardFor(key)] = true
		if err := cl.Put(ctx, key, []byte{byte(i)}); err != nil {
			t.Fatalf("Put %s: %v", key, err)
		}
	}
	if len(hit) != 4 {
		t.Fatalf("64 keys hit only %d of 4 shards", len(hit))
	}
	// Each shard group really carries only its own keys: per-shard applied
	// watermarks are all well below the total operation count.
	for i := 0; i < stores[0].Shards(); i++ {
		if a := stores[0].Replica(i).Applied(); a >= 64 {
			t.Fatalf("shard %d applied %d commands; sharding not partitioning load", i, a)
		}
	}
}

func TestSequencedReadSeesOtherNodesWrite(t *testing.T) {
	ctx := ctxT(t, 30*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "seqread", 3, Options{Shards: 2})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	writer := stores[0].NewClient()
	reader := stores[2].NewClient()
	for i := 0; i < 20; i++ {
		want := []byte(fmt.Sprintf("v%d", i))
		if err := writer.Put(ctx, "shared-key", want); err != nil {
			t.Fatalf("Put: %v", err)
		}
		// The write completed before this Get began, so a linearizable
		// read through another node MUST observe it.
		got, ok, err := reader.Get(ctx, "shared-key")
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("iteration %d: Get = %q %v %v, want %q", i, got, ok, err, want)
		}
	}
}

func TestMGetScatterGather(t *testing.T) {
	ctx := ctxT(t, 30*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "mget", 2, Options{Shards: 4})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	cl := stores[1].NewClient()
	var keys []string
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("mget-%d", i)
		keys = append(keys, k)
		if err := cl.Put(ctx, k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Ask for all written keys plus some absent ones.
	got, err := cl.MGet(ctx, append(keys, "nope-1", "nope-2")...)
	if err != nil {
		t.Fatalf("MGet: %v", err)
	}
	if len(got) != len(keys) {
		t.Fatalf("MGet returned %d keys, want %d", len(got), len(keys))
	}
	for i, k := range keys {
		if string(got[k]) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("MGet[%s] = %q", k, got[k])
		}
	}
	if _, ok := got["nope-1"]; ok {
		t.Fatal("MGet invented a value for an absent key")
	}
}

func TestCASContention(t *testing.T) {
	ctx := ctxT(t, 30*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "cas", 3, Options{Shards: 2})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	// All nodes race to create the same key: the shard's total order must
	// admit exactly one winner.
	const racers = 6
	wins := make(chan int, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		i := i
		cl := stores[i%len(stores)].NewClient()
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, err := cl.CAS(ctx, "leader", nil, []byte(fmt.Sprintf("racer-%d", i)))
			if err != nil {
				t.Errorf("CAS racer %d: %v", i, err)
				return
			}
			if ok {
				wins <- i
			}
		}()
	}
	wg.Wait()
	close(wins)
	var winners []int
	for w := range wins {
		winners = append(winners, w)
	}
	if len(winners) != 1 {
		t.Fatalf("CAS race produced %d winners (%v), want exactly 1", len(winners), winners)
	}
	// Every node agrees on who won.
	want := []byte(fmt.Sprintf("racer-%d", winners[0]))
	for n, s := range stores {
		v, ok, err := s.NewClient().Get(ctx, "leader")
		if err != nil || !ok || !bytes.Equal(v, want) {
			t.Fatalf("node %d: leader = %q %v %v, want %q", n, v, ok, err, want)
		}
	}
}

// shardItems snapshots shard i's item map at node s.
func shardItems(s *Store, i int) map[string]string {
	out := make(map[string]string)
	s.Replica(i).Read(func(sm shared.StateMachine) {
		for k, v := range sm.(*mapSM).items {
			out[k] = string(v)
		}
	})
	return out
}

// waitShardSync blocks until every node has applied shard i through the
// highest watermark any node has seen.
func waitShardSync(t *testing.T, nodes []*Store, i int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		var hi uint32
		for _, s := range nodes {
			if a := s.Replica(i).Applied(); a > hi {
				hi = a
			}
		}
		synced := true
		for _, s := range nodes {
			if s.Replica(i).Applied() < hi {
				synced = false
			}
		}
		if synced {
			return
		}
		if time.Now().After(deadline) {
			var states []string
			for n, s := range nodes {
				r := s.Replica(i)
				states = append(states, fmt.Sprintf("node%d applied=%d [%s]", n, r.Applied(), r.Debug()))
			}
			t.Fatalf("shard %d never synced: %v", i, states)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrashRejoinUnderLoad is the end-to-end scenario from the issue: a node
// crashes mid-load, the shard groups recover (AutoReset), clients keep
// writing throughout, the crashed node's replacement rejoins via state
// transfer while traffic continues, and afterwards every acknowledged write
// is present on every node and all replicas are byte-identical.
func TestCrashRejoinUnderLoad(t *testing.T) {
	ctx := ctxT(t, 90*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	opts := Options{
		Shards: 4,
		Group: amoeba.GroupOptions{
			Resilience:   1,
			AutoReset:    true,
			MinSurvivors: 2,
		},
	}
	stores := newCluster(t, ctx, net, "scenario", 3, opts)
	closed := make([]bool, len(stores))
	defer func() {
		for i, s := range stores {
			if !closed[i] {
				s.Close()
			}
		}
	}()

	// Two writers on the surviving nodes hammer disjoint key ranges and
	// record every acknowledged write. A Put that errors (e.g. its shard
	// is mid-recovery) is retried with the same value.
	const writers = 2
	stop := make(chan struct{})
	acked := make([]map[string]string, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		acked[w] = make(map[string]string)
		cl := stores[w].NewClient()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%d-key-%d", w, n%40)
				val := fmt.Sprintf("w%d-val-%d", w, n)
				for {
					err := cl.Put(ctx, key, []byte(val))
					if err == nil {
						acked[w][key] = val // only the writer reads this until wg.Wait
						break
					}
					if ctx.Err() != nil {
						return
					}
					select {
					case <-stop:
						return
					case <-time.After(20 * time.Millisecond):
					}
				}
			}
		}()
	}

	// Let load build up, then crash node 2 — taking down its replica of
	// every shard AND the sequencer of the shards it was hosting.
	time.Sleep(300 * time.Millisecond)
	t.Log("crashing node 2")
	stores[2].Close()
	closed[2] = true

	// Writers keep going while the groups detect the failure and
	// AutoReset rebuilds each shard with the 2 survivors.
	time.Sleep(1 * time.Second)

	// A replacement node rejoins every shard via atomic state transfer —
	// with the writers still writing.
	t.Log("rejoining replacement node")
	k, err := net.NewKernel("scenario-node-2-reborn")
	if err != nil {
		t.Fatalf("replacement kernel: %v", err)
	}
	joinCtx, cancelJoin := context.WithTimeout(ctx, 30*time.Second)
	replacement, err := Join(joinCtx, k, "scenario", opts)
	cancelJoin()
	if err != nil {
		t.Fatalf("replacement never joined: %v", err)
	}
	defer replacement.Close()

	// Keep writing with the new node in place, then stop.
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	nodes := []*Store{stores[0], stores[1], replacement}

	// Every shard must settle on exactly the 3 live nodes. Expelling the
	// crashed node from a shard that never needed recovery takes history
	// pressure (the dead member pins the sequencer's floor until a probe
	// declares it dead), so keep a trickle of writes flowing while the
	// memberships converge — as any production store would.
	settle := stores[0].NewClient()
	settleDeadline := time.Now().Add(30 * time.Second)
	for {
		allThree := true
		for i := 0; i < opts.Shards; i++ {
			if replacement.Members(i) != 3 || stores[0].Members(i) != 3 {
				allThree = false
			}
		}
		if allThree {
			break
		}
		if time.Now().After(settleDeadline) {
			for i := 0; i < opts.Shards; i++ {
				t.Logf("shard %d: members=%d [%s]", i, replacement.Members(i), replacement.Replica(i).Debug())
			}
			t.Fatal("shards never settled on 3 members")
		}
		for j := 0; j < 16; j++ {
			// Errors are fine: a shard mid-recovery rejects writes.
			putCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
			_ = settle.Put(putCtx, fmt.Sprintf("settle-%d", j), []byte("x"))
			cancel()
		}
		time.Sleep(20 * time.Millisecond)
	}

	for i := 0; i < opts.Shards; i++ {
		waitShardSync(t, nodes, i)
	}
	// All replicas byte-identical, shard by shard.
	for i := 0; i < opts.Shards; i++ {
		want := shardItems(nodes[0], i)
		for n := 1; n < len(nodes); n++ {
			got := shardItems(nodes[n], i)
			if len(got) != len(want) {
				t.Fatalf("shard %d: node %d has %d items, node 0 has %d", i, n, len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("shard %d diverged at %q: node %d has %q, node 0 has %q", i, k, n, got[k], v)
				}
			}
		}
	}
	// Every acknowledged write survived the crash, the recovery, and the
	// rejoin — on every node, including the replacement (resilience 1:
	// one crash loses no completed Put).
	total := 0
	for w := 0; w < writers; w++ {
		total += len(acked[w])
		for key, val := range acked[w] {
			for n, s := range nodes {
				cl := s.NewClient()
				if got, ok := cl.LocalGet(key); !ok || string(got) != val {
					t.Fatalf("node %d lost acknowledged write %s=%s (has %q, found=%v)", n, key, val, got, ok)
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("writers acknowledged nothing; scenario proved nothing")
	}
	t.Logf("verified %d acknowledged keys across 3 nodes and %d shards", total, opts.Shards)
}

// TestJoinGrowsCluster covers planned growth (no crash): a 4th node joins a
// loaded 3-node store and immediately serves consistent local reads.
func TestJoinGrowsCluster(t *testing.T) {
	ctx := ctxT(t, 30*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "grow", 3, Options{Shards: 4})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	cl := stores[0].NewClient()
	for i := 0; i < 50; i++ {
		if err := cl.Put(ctx, fmt.Sprintf("g-%d", i), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	k, err := net.NewKernel("grow-node-3")
	if err != nil {
		t.Fatalf("kernel: %v", err)
	}
	s4, err := Join(ctx, k, "grow", Options{Shards: 4})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	defer s4.Close()
	// All pre-join state must have arrived by transfer.
	cl4 := s4.NewClient()
	for i := 0; i < 50; i++ {
		if v, ok := cl4.LocalGet(fmt.Sprintf("g-%d", i)); !ok || string(v) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("joiner missing g-%d (got %q, found=%v)", i, v, ok)
		}
	}
	// And post-join writes through the new node reach the old ones.
	if err := cl4.Put(ctx, "from-new-node", []byte("hi")); err != nil {
		t.Fatalf("Put via joiner: %v", err)
	}
	if v, ok, err := cl.Get(ctx, "from-new-node"); err != nil || !ok || string(v) != "hi" {
		t.Fatalf("old node Get = %q %v %v", v, ok, err)
	}
}

func TestBoundedReplicationPlacement(t *testing.T) {
	ctx := ctxT(t, 30*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	const nodes, shards, repl = 4, 4, 2
	kernels := make([]*amoeba.Kernel, nodes)
	for i := range kernels {
		kernels[i], _ = net.NewKernel(fmt.Sprintf("br-node-%d", i))
	}
	stores, err := Bootstrap(ctx, kernels, "bounded", Options{Shards: shards, Replication: repl})
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	// Shard i must live on exactly nodes {i, i+1} mod 4, with 2 members.
	for i := 0; i < shards; i++ {
		for n := 0; n < nodes; n++ {
			want := n == i || n == (i+1)%nodes
			if got := stores[n].HostsShard(i); got != want {
				t.Errorf("node %d hosts shard %d = %v, want %v", n, i, got, want)
			}
		}
		host := stores[i%nodes]
		if m := host.Members(i); m != repl {
			t.Errorf("shard %d has %d members, want %d", i, m, repl)
		}
	}
	// A client on a hosting node serves the shard; on a non-hosting node
	// it fails with a clear error rather than hanging.
	var key0 string
	for i := 0; ; i++ {
		key0 = fmt.Sprintf("probe-%d", i)
		if stores[0].ShardFor(key0) == 0 {
			break
		}
	}
	if err := stores[0].NewClient().Put(ctx, key0, []byte("v")); err != nil {
		t.Fatalf("Put on hosting node: %v", err)
	}
	if v, ok := stores[1].NewClient().LocalGet(key0); !ok || string(v) != "v" {
		// Node 1 hosts shard 0 too ((1-0)%4 < 2) — replica must converge.
		waitShardSync(t, []*Store{stores[0], stores[1]}, 0)
		if v, ok := stores[1].NewClient().LocalGet(key0); !ok || string(v) != "v" {
			t.Fatalf("replica on second host missing write: %q %v", v, ok)
		}
	}
	// Without a kv.Service anywhere, a non-hosting node's client has no
	// proxy to reach shard 0 through: the write must fail when its
	// context expires instead of blocking forever (the proxying path
	// itself is exercised in service_test.go).
	shortCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := stores[2].NewClient().Put(shortCtx, key0, []byte("x")); err == nil {
		t.Fatal("Put on non-hosting node with no service succeeded, want error")
	}
	if _, ok := stores[2].NewClient().LocalGet(key0); ok {
		t.Fatal("LocalGet on non-hosting node reported found")
	}
}
