package kv

import (
	"fmt"
	"testing"
	"time"

	"amoeba"
)

// TestDialAnycast: a client holding nothing but the store's NAME reaches the
// whole keyspace — every Service registers the store-wide anycast entry
// address in the FLIP name registry, so Dial needs no node address at all
// (the ROADMAP's "entry node must be told" follow-up). Killing the node that
// answered must not strand the client: retransmissions re-locate a survivor.
func TestDialAnycast(t *testing.T) {
	ctx := ctxT(t, 60*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "anycast", 3, Options{
		Shards: 4,
		Group:  amoeba.GroupOptions{AutoReset: true, MinSurvivors: 1},
	})
	closed := make([]bool, len(stores))
	defer func() {
		for i, s := range stores {
			if !closed[i] {
				s.Close()
			}
		}
	}()
	svcs := make([]*Service, len(stores))
	for i, s := range stores {
		svc, err := NewService(s)
		if err != nil {
			t.Fatalf("NewService: %v", err)
		}
		svcs[i] = svc
	}
	defer func() {
		for i, svc := range svcs {
			if !closed[i] {
				svc.Close()
			}
		}
	}()

	ext, err := net.NewKernel("anycast-client")
	if err != nil {
		t.Fatalf("client kernel: %v", err)
	}
	cl, err := Dial(ext, "anycast", DialOptions{Anycast: true})
	if err != nil {
		t.Fatalf("Dial anycast: %v", err)
	}
	defer cl.Close()

	for i := 0; i < 24; i++ {
		k := fmt.Sprintf("any-%03d", i)
		if err := cl.Put(ctx, k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put via anycast: %v", err)
		}
	}
	for i := 0; i < 24; i++ {
		k := fmt.Sprintf("any-%03d", i)
		if v, ok, err := cl.Get(ctx, k); err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get via anycast: %q %v %v", v, ok, err)
		}
	}
	if cl.Stats().RemoteOps == 0 {
		t.Fatal("anycast client performed no remote operations")
	}

	// Kill a node (service and store): the anycast address must re-locate
	// to a survivor.
	svcs[0].Close()
	stores[0].Close()
	closed[0] = true
	for i := 0; i < 24; i++ {
		k := fmt.Sprintf("any-%03d", i)
		if v, ok, err := cl.Get(ctx, k); err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get via anycast after node death: %q %v %v", v, ok, err)
		}
	}
}
