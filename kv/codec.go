package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format for shard commands. Every command travels through the shard
// group's total order and is applied by every replica, so the encoding must
// be deterministic and self-contained:
//
//	op(1) | id(8, big-endian) | op-specific payload
//
// Byte strings are uvarint-length-prefixed. The id correlates a command with
// the result its apply deposits in the state machine's result window; ids
// are unique per client operation (random client nonce + counter).
const (
	opPut byte = iota + 1
	opDelete
	opCAS
	opGet
)

var errBadCommand = errors.New("kv: malformed command")

// appendBytes appends a uvarint length prefix and the bytes.
func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// takeBytes consumes one length-prefixed byte string.
func takeBytes(src []byte) ([]byte, []byte, error) {
	n, w := binary.Uvarint(src)
	if w <= 0 || uint64(len(src)-w) < n {
		return nil, nil, errBadCommand
	}
	return src[w : w+int(n) : w+int(n)], src[w+int(n):], nil
}

func commandHeader(op byte, id uint64) []byte {
	dst := make([]byte, 9, 32)
	dst[0] = op
	binary.BigEndian.PutUint64(dst[1:], id)
	return dst
}

func encodePut(id uint64, key string, val []byte) []byte {
	dst := appendBytes(commandHeader(opPut, id), []byte(key))
	return appendBytes(dst, val)
}

func encodeDelete(id uint64, key string) []byte {
	return appendBytes(commandHeader(opDelete, id), []byte(key))
}

// encodeCAS encodes a compare-and-swap. expectPresent=false means the swap
// succeeds only if the key is absent (atomic create).
func encodeCAS(id uint64, key string, expectPresent bool, expect, val []byte) []byte {
	dst := appendBytes(commandHeader(opCAS, id), []byte(key))
	if expectPresent {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendBytes(dst, expect)
	return appendBytes(dst, val)
}

// encodeGet encodes a sequenced read of one or more keys on one shard. The
// read travels the total order like a write, so the values it captures are
// linearizable.
func encodeGet(id uint64, keys []string) []byte {
	dst := binary.AppendUvarint(commandHeader(opGet, id), uint64(len(keys)))
	for _, k := range keys {
		dst = appendBytes(dst, []byte(k))
	}
	return dst
}

// command is the decoded form of a wire command.
type command struct {
	op            byte
	id            uint64
	key           string
	val           []byte
	expectPresent bool
	expect        []byte
	keys          []string // opGet
}

func decodeCommand(b []byte) (command, error) {
	if len(b) < 9 {
		return command{}, errBadCommand
	}
	c := command{op: b[0], id: binary.BigEndian.Uint64(b[1:9])}
	rest := b[9:]
	var err error
	var raw []byte
	switch c.op {
	case opPut:
		if raw, rest, err = takeBytes(rest); err != nil {
			return command{}, err
		}
		c.key = string(raw)
		if c.val, _, err = takeBytes(rest); err != nil {
			return command{}, err
		}
	case opDelete:
		if raw, _, err = takeBytes(rest); err != nil {
			return command{}, err
		}
		c.key = string(raw)
	case opCAS:
		if raw, rest, err = takeBytes(rest); err != nil {
			return command{}, err
		}
		c.key = string(raw)
		if len(rest) < 1 {
			return command{}, errBadCommand
		}
		c.expectPresent = rest[0] != 0
		rest = rest[1:]
		if c.expect, rest, err = takeBytes(rest); err != nil {
			return command{}, err
		}
		if c.val, _, err = takeBytes(rest); err != nil {
			return command{}, err
		}
	case opGet:
		n, w := binary.Uvarint(rest)
		if w <= 0 || n > uint64(len(rest)) {
			return command{}, errBadCommand
		}
		rest = rest[w:]
		c.keys = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			if raw, rest, err = takeBytes(rest); err != nil {
				return command{}, err
			}
			c.keys = append(c.keys, string(raw))
		}
	default:
		return command{}, fmt.Errorf("kv: unknown op %d: %w", c.op, errBadCommand)
	}
	return c, nil
}
