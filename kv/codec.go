package kv

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Wire format for shard commands. Every command travels through the shard
// group's total order and is applied by every replica, so the encoding must
// be deterministic and self-contained:
//
//	op(1) | id(8, big-endian) | op-specific payload
//
// Byte strings are uvarint-length-prefixed. The id correlates a command with
// the result its apply deposits in the state machine's result window; ids
// are unique per client operation (random client nonce + counter).
//
// The migrate ops are the live-resharding handoff protocol: begin installs a
// pending routing table (freezing the ranges that move away), import streams
// a chunk of frozen pairs into their new owner, commit flips the epoch and
// deletes moved keys, abort rolls a pending handoff back. Because they are
// ordinary sequenced commands they are journaled by the write-ahead log like
// any write — a crash mid-handoff recovers the exact migration state.
//
// The txn ops are the sequenced-2PC participant protocol (see txn.go):
// prepare locks a transaction's local keys and captures its reads at one
// position in the shard's total order; resolve applies or discards the
// portion. Like the migrate ops they are ordinary sequenced commands, so an
// in-doubt transaction survives any crash the write-ahead log survives.
const (
	opPut byte = iota + 1
	opDelete
	opCAS
	opGet
	opMigrateBegin
	opMigrateCommit
	opMigrateAbort
	opMigrateImport
	opTxnPrepare
	opTxnResolve
	// opAudit is the sequenced self-audit: every replica computes a
	// range-partitioned digest of its replicated state at the command's
	// position in the total order and reports it to the node's auditor (see
	// audit.go). Riding the order like any op is what makes the digests
	// comparable — all replicas evaluate the identical state.
	opAudit
)

var errBadCommand = errors.New("kv: malformed command")

// appendBytes appends a uvarint length prefix and the bytes.
func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// takeBytes consumes one length-prefixed byte string.
func takeBytes(src []byte) ([]byte, []byte, error) {
	n, w := binary.Uvarint(src)
	if w <= 0 || uint64(len(src)-w) < n {
		return nil, nil, errBadCommand
	}
	return src[w : w+int(n) : w+int(n)], src[w+int(n):], nil
}

func commandHeader(op byte, id uint64) []byte {
	dst := make([]byte, 9, 32)
	dst[0] = op
	binary.BigEndian.PutUint64(dst[1:], id)
	return dst
}

func encodePut(id uint64, key string, val []byte) []byte {
	dst := appendBytes(commandHeader(opPut, id), []byte(key))
	return appendBytes(dst, val)
}

func encodeDelete(id uint64, key string) []byte {
	return appendBytes(commandHeader(opDelete, id), []byte(key))
}

// encodeAudit encodes a sequenced audit over ranges digest partitions.
func encodeAudit(id uint64, ranges int) []byte {
	return binary.AppendUvarint(commandHeader(opAudit, id), uint64(ranges))
}

// encodeCAS encodes a compare-and-swap. expectPresent=false means the swap
// succeeds only if the key is absent (atomic create).
func encodeCAS(id uint64, key string, expectPresent bool, expect, val []byte) []byte {
	dst := appendBytes(commandHeader(opCAS, id), []byte(key))
	if expectPresent {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendBytes(dst, expect)
	return appendBytes(dst, val)
}

// encodeGet encodes a sequenced read of one or more keys on one shard. The
// read travels the total order like a write, so the values it captures are
// linearizable.
func encodeGet(id uint64, keys []string) []byte {
	dst := binary.AppendUvarint(commandHeader(opGet, id), uint64(len(keys)))
	for _, k := range keys {
		dst = appendBytes(dst, []byte(k))
	}
	return dst
}

// appendRouting / takeRouting encode a routing table as three uvarints.
func appendRouting(dst []byte, rt Routing) []byte {
	dst = binary.AppendUvarint(dst, rt.Epoch)
	dst = binary.AppendUvarint(dst, uint64(rt.Shards))
	return binary.AppendUvarint(dst, uint64(rt.VNodes))
}

func takeRouting(src []byte) (Routing, []byte, error) {
	var rt Routing
	e, w := binary.Uvarint(src)
	if w <= 0 {
		return rt, nil, errBadCommand
	}
	src = src[w:]
	sh, w := binary.Uvarint(src)
	if w <= 0 || sh == 0 || sh > 1<<20 {
		return rt, nil, errBadCommand
	}
	src = src[w:]
	vn, w := binary.Uvarint(src)
	if w <= 0 || vn > 1<<20 {
		return rt, nil, errBadCommand
	}
	rt.Epoch, rt.Shards, rt.VNodes = e, int(sh), int(vn)
	return rt, src[w:], nil
}

// encodeMigrate encodes a begin, commit, or abort carrying the target table.
func encodeMigrate(op byte, id uint64, rt Routing) []byte {
	return appendRouting(commandHeader(op, id), rt)
}

// encodeMigrateImport encodes one chunk of pairs (and migrated dedup
// results and transaction portions) streamed into their new owner, tagged
// with the target epoch that gates its application.
func encodeMigrateImport(id uint64, rt Routing, chunk *importChunk) []byte {
	dst := appendRouting(commandHeader(opMigrateImport, id), rt)
	dst = binary.AppendUvarint(dst, uint64(len(chunk.Pairs)))
	for _, p := range chunk.Pairs {
		dst = appendBytes(dst, []byte(p.Key))
		dst = appendBytes(dst, p.Val)
	}
	dst = binary.AppendUvarint(dst, uint64(len(chunk.Results)))
	for _, r := range chunk.Results {
		dst = binary.BigEndian.AppendUint64(dst, r.ID)
		if r.OK {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendBytes(dst, []byte(r.Key))
	}
	// Transaction portions travel as their snapshot (JSON) form: they are
	// rare relative to pairs, and reusing the snapshot codec keeps the two
	// serialisations from drifting apart.
	dst = binary.AppendUvarint(dst, uint64(len(chunk.Txns)))
	for _, p := range chunk.Txns {
		blob, err := json.Marshal(p)
		if err != nil {
			blob = nil // unreachable: txnPortion has no unmarshalable fields
		}
		dst = appendBytes(dst, blob)
	}
	return dst
}

// appendTxnWrites / appendTxnConds encode a prepare's write and condition
// sets, shared between the shard command and the access protocol.
func appendTxnWrites(dst []byte, writes []TxnWrite) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(writes)))
	for _, w := range writes {
		dst = appendBytes(dst, []byte(w.Key))
		if w.Delete {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendBytes(dst, w.Val)
	}
	return dst
}

func takeTxnWrites(src []byte) ([]TxnWrite, []byte, error) {
	n, w := binary.Uvarint(src)
	if w <= 0 || n > uint64(len(src)) {
		return nil, nil, errBadCommand
	}
	src = src[w:]
	out := make([]TxnWrite, 0, n)
	for i := uint64(0); i < n; i++ {
		raw, rest, err := takeBytes(src)
		if err != nil {
			return nil, nil, err
		}
		tw := TxnWrite{Key: string(raw)}
		if len(rest) < 1 {
			return nil, nil, errBadCommand
		}
		tw.Delete = rest[0] != 0
		if tw.Val, src, err = takeBytes(rest[1:]); err != nil {
			return nil, nil, err
		}
		out = append(out, tw)
	}
	return out, src, nil
}

func appendTxnConds(dst []byte, conds []TxnCond) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(conds)))
	for _, c := range conds {
		dst = appendBytes(dst, []byte(c.Key))
		if c.ExpectPresent {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendBytes(dst, c.Expect)
	}
	return dst
}

func takeTxnConds(src []byte) ([]TxnCond, []byte, error) {
	n, w := binary.Uvarint(src)
	if w <= 0 || n > uint64(len(src)) {
		return nil, nil, errBadCommand
	}
	src = src[w:]
	out := make([]TxnCond, 0, n)
	for i := uint64(0); i < n; i++ {
		raw, rest, err := takeBytes(src)
		if err != nil {
			return nil, nil, err
		}
		tc := TxnCond{Key: string(raw)}
		if len(rest) < 1 {
			return nil, nil, errBadCommand
		}
		tc.ExpectPresent = rest[0] != 0
		if tc.Expect, src, err = takeBytes(rest[1:]); err != nil {
			return nil, nil, err
		}
		out = append(out, tc)
	}
	return out, src, nil
}

// appendKeys / takeKeys encode a key list.
func appendKeys(dst []byte, keys []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = appendBytes(dst, []byte(k))
	}
	return dst
}

func takeKeys(src []byte) ([]string, []byte, error) {
	n, w := binary.Uvarint(src)
	if w <= 0 || n > uint64(len(src)) {
		return nil, nil, errBadCommand
	}
	src = src[w:]
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		raw, rest, err := takeBytes(src)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, string(raw))
		src = rest
	}
	return out, src, nil
}

// encodeTxnPrepare encodes a transaction prepare: lock the local keys, check
// the conditions, capture the reads — all at one position in the shard's
// total order. The txn id is carried in the payload (distinct from the
// command id) so re-drives with fresh command ids still converge on one
// portion.
func encodeTxnPrepare(id, txnID uint64, homeKey string, allKeys, reads []string, writes []TxnWrite, conds []TxnCond) []byte {
	dst := commandHeader(opTxnPrepare, id)
	dst = binary.BigEndian.AppendUint64(dst, txnID)
	dst = appendBytes(dst, []byte(homeKey))
	dst = appendKeys(dst, allKeys)
	dst = appendKeys(dst, reads)
	dst = appendTxnWrites(dst, writes)
	return appendTxnConds(dst, conds)
}

// encodeTxnResolve encodes a transaction resolve (commit or abort). It
// carries the full key set so a shard that never saw the prepare can fence
// the decision for the keys it serves.
func encodeTxnResolve(id, txnID uint64, commit bool, homeKey string, allKeys []string) []byte {
	dst := commandHeader(opTxnResolve, id)
	dst = binary.BigEndian.AppendUint64(dst, txnID)
	if commit {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendBytes(dst, []byte(homeKey))
	return appendKeys(dst, allKeys)
}

// --- Access protocol (client ↔ service) --------------------------------------
//
// The shard-command codec above is what travels a shard group's total order;
// the access protocol below is what travels between a client and a node's
// Service over Amoeba RPC — and, re-rendered as text, over amoeba-kv's TCP
// line protocol — so the in-process client, the RPC proxy, and the external
// daemon speak one protocol. Requests are self-describing and versioned:
//
//	ver(1) | op(1) | flags(1) | budget-ms uvarint | epoch uvarint | id(8) | op payload
//
// and responses:
//
//	ver(1) | status(1) | status payload
//
// Command ids are chosen by the originating client and carried end to end
// (batch ops carry one id per element): replicas deduplicate applies by id,
// which is what keeps retries exactly-once across RPC retransmissions,
// ForwardRequest hops, shard failovers, and routing-epoch flips. The epoch
// is the routing table the client targeted the request with; a service at a
// different epoch still serves the request (under its own, newer-or-older
// table, forwarding misroutes), and attaches its table to the response so
// the client converges. A node receiving a request whose version it does not
// speak answers with an error response naming its own version instead of
// guessing.

// ProtoVersion is the access-protocol version this build speaks. Version 2
// added the routing epoch to requests and the routing table to responses;
// version 3 added the transaction ops and the txn outcome byte on responses;
// version 4 added the read-path flags (lease and bounded-staleness reads), a
// max-staleness bound on ReqGet, and the read-path and topology fields on
// responses (which path served the read, how stale it may be, and the node
// count and replication factor a fleet-shaped client steers reads with).
const ProtoVersion = 4

// Request ops.
const (
	// ReqGet is a sequenced (linearizable) read of Keys. Multi-key
	// requests may span shards; the serving node scatter-gathers.
	ReqGet byte = iota + 1
	// ReqPut stores Key = Val.
	ReqPut
	// ReqDelete removes Key, reporting whether it existed.
	ReqDelete
	// ReqCAS swaps Key to Val if its value equals Expect (ExpectPresent
	// false: only if absent).
	ReqCAS
	// ReqBatchPut writes Pairs, each deduplicated by its own id in IDs.
	ReqBatchPut
	// ReqTxnPrepare locks one shard's portion of a transaction (TxnID,
	// HomeKey, AllKeys; local reads in Keys, plus Writes and Conds) and
	// captures its reads. Issued by the 2PC coordinator in Client.Txn.
	ReqTxnPrepare
	// ReqTxnResolve commits (Commit true) or aborts one shard's portion of
	// TxnID. Key names a representative key the portion serves, so routing
	// follows the portion across reshardings.
	ReqTxnResolve
	// ReqTxn is a whole transaction (reads in Keys, plus Writes and Conds):
	// the form ring-less clients and the daemon's TXN verb send. A node (or
	// ring-aware client) receiving it runs the 2PC coordinator itself.
	ReqTxn
)

// Request flags.
const (
	// flagForwarded marks a request that already took a ForwardRequest
	// hop. A service must answer it — serve or fail — never forward
	// again: the loop bound should two nodes' rings ever disagree.
	flagForwarded byte = 1 << 0
	// flagLeaseRead invites the serving node to answer a ReqGet from local
	// state under its read lease instead of sequencing the read. The server
	// falls back to the sequenced path when it holds no valid lease (or any
	// key is frozen or locked), so the flag never weakens the result: either
	// way the read is linearizable.
	flagLeaseRead byte = 1 << 1
	// flagStaleRead permits a ReqGet to be served from any replica's local
	// state provided its staleness bound is within the request's MaxStale —
	// the follower-read path. Without a bound in budget the server falls
	// back to the sequenced path.
	flagStaleRead byte = 1 << 2
)

// Read paths a ReqGet response reports (Response.ReadPath).
const (
	// ReadSequenced: the read travelled the shard's total order.
	ReadSequenced byte = iota
	// ReadLease: served from local state under a valid read lease
	// (linearizable without sequencing).
	ReadLease
	// ReadStale: served from local state at a bounded staleness
	// (Response.StaleFor).
	ReadStale
)

var (
	errBadRequest = errors.New("kv: malformed request")
	// errVersion reports a request or response from a different protocol
	// version.
	errVersion = fmt.Errorf("kv: unsupported protocol version (this build speaks v%d)", ProtoVersion)
)

// Request is one decoded access-protocol operation.
type Request struct {
	Op    byte
	Flags byte
	// ID is the command id (single-command ops). The zero value asks the
	// client to assign one; it is always set on the wire.
	ID uint64
	// Budget is the caller's remaining time budget, carried across the
	// RPC hop so the serving node's context expires with the caller's.
	// Zero means "server default".
	Budget time.Duration
	// Epoch is the routing-table epoch the client targeted this request
	// with (0: no routing knowledge). A service whose table differs
	// answers with its own table attached, so stale clients converge.
	Epoch uint64
	// MaxStale bounds how stale a flagStaleRead ReqGet may be served
	// (zero: no stale serving). Ignored without the flag.
	MaxStale time.Duration

	Keys          []string // ReqGet; txn ops: the read set (local subset for ReqTxnPrepare)
	Key           string   // ReqPut, ReqDelete, ReqCAS; ReqTxnResolve: representative routing key
	Val           []byte   // ReqPut, ReqCAS
	ExpectPresent bool     // ReqCAS
	Expect        []byte   // ReqCAS
	Pairs         []Pair   // ReqBatchPut
	// IDs carries one command id per Pairs element, preserved verbatim
	// across splits and forwards so every node deduplicates identically.
	IDs []uint64 // ReqBatchPut

	// Transaction fields (ReqTxn, ReqTxnPrepare, ReqTxnResolve). TxnID is
	// the transaction's identity across every participant shard; HomeKey
	// names the home portion whose shard order arbitrates the outcome;
	// AllKeys is the full (sorted) key set, carried so any shard can fence
	// the decision for keys it serves.
	TxnID   uint64
	HomeKey string
	AllKeys []string
	Writes  []TxnWrite // ReqTxn, ReqTxnPrepare (local subset)
	Conds   []TxnCond  // ReqTxn, ReqTxnPrepare (local subset)
	Commit  bool       // ReqTxnResolve: the decision being applied
}

// EncodeRequest renders a request for the wire.
func EncodeRequest(r *Request) []byte {
	dst := make([]byte, 0, 64)
	dst = append(dst, ProtoVersion, r.Op, r.Flags)
	dst = binary.AppendUvarint(dst, uint64(r.Budget/time.Millisecond))
	dst = binary.AppendUvarint(dst, r.Epoch)
	dst = binary.BigEndian.AppendUint64(dst, r.ID)
	switch r.Op {
	case ReqGet:
		// v4: the staleness bound precedes the keys (always present).
		dst = binary.AppendUvarint(dst, uint64(r.MaxStale/time.Millisecond))
		dst = binary.AppendUvarint(dst, uint64(len(r.Keys)))
		for _, k := range r.Keys {
			dst = appendBytes(dst, []byte(k))
		}
	case ReqPut:
		dst = appendBytes(dst, []byte(r.Key))
		dst = appendBytes(dst, r.Val)
	case ReqDelete:
		dst = appendBytes(dst, []byte(r.Key))
	case ReqCAS:
		dst = appendBytes(dst, []byte(r.Key))
		if r.ExpectPresent {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendBytes(dst, r.Expect)
		dst = appendBytes(dst, r.Val)
	case ReqBatchPut:
		dst = binary.AppendUvarint(dst, uint64(len(r.Pairs)))
		for i, p := range r.Pairs {
			dst = binary.BigEndian.AppendUint64(dst, r.IDs[i])
			dst = appendBytes(dst, []byte(p.Key))
			dst = appendBytes(dst, p.Val)
		}
	case ReqTxnPrepare:
		dst = binary.BigEndian.AppendUint64(dst, r.TxnID)
		dst = appendBytes(dst, []byte(r.HomeKey))
		dst = appendKeys(dst, r.AllKeys)
		dst = appendKeys(dst, r.Keys)
		dst = appendTxnWrites(dst, r.Writes)
		dst = appendTxnConds(dst, r.Conds)
	case ReqTxnResolve:
		dst = binary.BigEndian.AppendUint64(dst, r.TxnID)
		if r.Commit {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendBytes(dst, []byte(r.Key))
		dst = appendBytes(dst, []byte(r.HomeKey))
		dst = appendKeys(dst, r.AllKeys)
	case ReqTxn:
		dst = appendKeys(dst, r.Keys)
		dst = appendTxnWrites(dst, r.Writes)
		dst = appendTxnConds(dst, r.Conds)
	}
	return dst
}

// DecodeRequest parses a wire request, rejecting unknown versions and ops.
func DecodeRequest(b []byte) (*Request, error) {
	if len(b) < 3 {
		return nil, errBadRequest
	}
	if b[0] != ProtoVersion {
		return nil, errVersion
	}
	r := &Request{Op: b[1], Flags: b[2]}
	rest := b[3:]
	ms, w := binary.Uvarint(rest)
	if w <= 0 {
		return nil, errBadRequest
	}
	r.Budget = time.Duration(ms) * time.Millisecond
	rest = rest[w:]
	epoch, w := binary.Uvarint(rest)
	if w <= 0 {
		return nil, errBadRequest
	}
	r.Epoch = epoch
	rest = rest[w:]
	if len(rest) < 8 {
		return nil, errBadRequest
	}
	r.ID = binary.BigEndian.Uint64(rest)
	rest = rest[8:]
	var raw []byte
	var err error
	switch r.Op {
	case ReqGet:
		stale, w := binary.Uvarint(rest)
		if w <= 0 {
			return nil, errBadRequest
		}
		r.MaxStale = time.Duration(stale) * time.Millisecond
		rest = rest[w:]
		n, w := binary.Uvarint(rest)
		if w <= 0 || n == 0 || n > uint64(len(rest)) {
			return nil, errBadRequest
		}
		rest = rest[w:]
		r.Keys = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			if raw, rest, err = takeBytes(rest); err != nil {
				return nil, errBadRequest
			}
			r.Keys = append(r.Keys, string(raw))
		}
	case ReqPut:
		if raw, rest, err = takeBytes(rest); err != nil {
			return nil, errBadRequest
		}
		r.Key = string(raw)
		if r.Val, _, err = takeBytes(rest); err != nil {
			return nil, errBadRequest
		}
	case ReqDelete:
		if raw, _, err = takeBytes(rest); err != nil {
			return nil, errBadRequest
		}
		r.Key = string(raw)
	case ReqCAS:
		if raw, rest, err = takeBytes(rest); err != nil {
			return nil, errBadRequest
		}
		r.Key = string(raw)
		if len(rest) < 1 {
			return nil, errBadRequest
		}
		r.ExpectPresent = rest[0] != 0
		rest = rest[1:]
		if r.Expect, rest, err = takeBytes(rest); err != nil {
			return nil, errBadRequest
		}
		if r.Val, _, err = takeBytes(rest); err != nil {
			return nil, errBadRequest
		}
	case ReqBatchPut:
		n, w := binary.Uvarint(rest)
		if w <= 0 || n == 0 || n > uint64(len(rest)) {
			return nil, errBadRequest
		}
		rest = rest[w:]
		r.Pairs = make([]Pair, 0, n)
		r.IDs = make([]uint64, 0, n)
		for i := uint64(0); i < n; i++ {
			if len(rest) < 8 {
				return nil, errBadRequest
			}
			r.IDs = append(r.IDs, binary.BigEndian.Uint64(rest))
			rest = rest[8:]
			if raw, rest, err = takeBytes(rest); err != nil {
				return nil, errBadRequest
			}
			key := string(raw)
			if raw, rest, err = takeBytes(rest); err != nil {
				return nil, errBadRequest
			}
			r.Pairs = append(r.Pairs, Pair{Key: key, Val: raw})
		}
	case ReqTxnPrepare:
		if len(rest) < 8 {
			return nil, errBadRequest
		}
		r.TxnID = binary.BigEndian.Uint64(rest)
		rest = rest[8:]
		if raw, rest, err = takeBytes(rest); err != nil {
			return nil, errBadRequest
		}
		r.HomeKey = string(raw)
		if r.AllKeys, rest, err = takeKeys(rest); err != nil {
			return nil, errBadRequest
		}
		if r.Keys, rest, err = takeKeys(rest); err != nil {
			return nil, errBadRequest
		}
		if r.Writes, rest, err = takeTxnWrites(rest); err != nil {
			return nil, errBadRequest
		}
		if r.Conds, _, err = takeTxnConds(rest); err != nil {
			return nil, errBadRequest
		}
	case ReqTxnResolve:
		if len(rest) < 9 {
			return nil, errBadRequest
		}
		r.TxnID = binary.BigEndian.Uint64(rest)
		r.Commit = rest[8] != 0
		rest = rest[9:]
		if raw, rest, err = takeBytes(rest); err != nil {
			return nil, errBadRequest
		}
		r.Key = string(raw)
		if raw, rest, err = takeBytes(rest); err != nil {
			return nil, errBadRequest
		}
		r.HomeKey = string(raw)
		if r.AllKeys, _, err = takeKeys(rest); err != nil {
			return nil, errBadRequest
		}
	case ReqTxn:
		if r.Keys, rest, err = takeKeys(rest); err != nil {
			return nil, errBadRequest
		}
		if r.Writes, rest, err = takeTxnWrites(rest); err != nil {
			return nil, errBadRequest
		}
		if r.Conds, _, err = takeTxnConds(rest); err != nil {
			return nil, errBadRequest
		}
	default:
		return nil, fmt.Errorf("kv: unknown request op %d: %w", r.Op, errBadRequest)
	}
	return r, nil
}

// Response statuses.
const (
	statusOK  byte = 1
	statusErr byte = 2
)

// Response is the decoded outcome of one Request, identical whether the
// request executed in process, across the RPC proxy, or behind a forward.
type Response struct {
	// OK reports mutation success: CAS swapped, Delete found the key.
	// Always true for Put, BatchPut, and Get responses.
	OK bool
	// Values and Found answer ReqGet, aligned with the request's Keys.
	Values [][]byte
	Found  []bool
	// Routing, when non-nil, is the serving node's routing table: attached
	// whenever the request's epoch differed from the server's, so a stale
	// client adopts the new table from any response — no config service.
	Routing *Routing
	// TxnState answers the txn ops: the portion's state after this request
	// applied (txnStatePrepared/Committed/Aborted), zero for non-txn ops.
	TxnState byte
	// Conflict reports a prepare that lost to a different live transaction
	// holding one of its keys; the coordinator retries with a fresh txn id.
	Conflict bool
	// CondFailed reports a prepare whose conditions did not hold; the
	// transaction aborts without retry, like a failed CAS.
	CondFailed bool
	// ReadPath reports which path served a ReqGet (ReadSequenced,
	// ReadLease, ReadStale); zero for non-read ops.
	ReadPath byte
	// StaleFor is the staleness bound of a ReadStale answer (how far
	// behind the total order the serving state may have been); zero
	// otherwise.
	StaleFor time.Duration
	// Nodes and Replication describe the serving store's topology (node
	// count and replicas per shard). A fleet-shaped client combines them
	// with the routing table to steer reads at the replicas hosting each
	// shard. Zero: not reported.
	Nodes       int
	Replication int
	// Err is a non-empty error description; all other fields are zero.
	Err string
}

// EncodeResponse renders a response for the wire.
func EncodeResponse(r *Response) []byte {
	dst := make([]byte, 0, 32)
	if r.Err != "" {
		dst = append(dst, ProtoVersion, statusErr)
		return appendBytes(dst, []byte(r.Err))
	}
	dst = append(dst, ProtoVersion, statusOK)
	if r.OK {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	// Txn outcome byte (v3): bits 0–1 TxnState, bit 2 Conflict, bit 3
	// CondFailed. Always present; zero for non-txn responses.
	txn := r.TxnState & 3
	if r.Conflict {
		txn |= 1 << 2
	}
	if r.CondFailed {
		txn |= 1 << 3
	}
	dst = append(dst, txn)
	// Read-path and topology fields (v4). Always present; zero when the
	// response is not a read or the server does not report topology.
	dst = append(dst, r.ReadPath)
	dst = binary.AppendUvarint(dst, uint64(r.StaleFor/time.Millisecond))
	dst = binary.AppendUvarint(dst, uint64(r.Nodes))
	dst = binary.AppendUvarint(dst, uint64(r.Replication))
	if r.Routing != nil {
		dst = append(dst, 1)
		dst = appendRouting(dst, *r.Routing)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(r.Values)))
	for i, v := range r.Values {
		if i < len(r.Found) && r.Found[i] {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendBytes(dst, v)
	}
	return dst
}

// DecodeResponse parses a wire response.
func DecodeResponse(b []byte) (*Response, error) {
	if len(b) < 2 {
		return nil, errBadRequest
	}
	if b[0] != ProtoVersion {
		return nil, errVersion
	}
	r := &Response{}
	rest := b[2:]
	switch b[1] {
	case statusErr:
		raw, _, err := takeBytes(rest)
		if err != nil {
			return nil, errBadRequest
		}
		r.Err = string(raw)
		if r.Err == "" {
			r.Err = "kv: unspecified remote error"
		}
		return r, nil
	case statusOK:
		if len(rest) < 3 {
			return nil, errBadRequest
		}
		r.OK = rest[0] != 0
		r.TxnState = rest[1] & 3
		r.Conflict = rest[1]&(1<<2) != 0
		r.CondFailed = rest[1]&(1<<3) != 0
		r.ReadPath = rest[2]
		rest = rest[3:]
		stale, w := binary.Uvarint(rest)
		if w <= 0 {
			return nil, errBadRequest
		}
		r.StaleFor = time.Duration(stale) * time.Millisecond
		rest = rest[w:]
		nodes, w := binary.Uvarint(rest)
		if w <= 0 || nodes > 1<<20 {
			return nil, errBadRequest
		}
		r.Nodes = int(nodes)
		rest = rest[w:]
		repl, w := binary.Uvarint(rest)
		if w <= 0 || repl > 1<<20 {
			return nil, errBadRequest
		}
		r.Replication = int(repl)
		rest = rest[w:]
		if len(rest) < 1 {
			return nil, errBadRequest
		}
		hasRouting := rest[0] != 0
		rest = rest[1:]
		if hasRouting {
			rt, tail, err := takeRouting(rest)
			if err != nil {
				return nil, errBadRequest
			}
			r.Routing = &rt
			rest = tail
		}
		n, w := binary.Uvarint(rest)
		if w <= 0 || n > uint64(len(rest)) {
			return nil, errBadRequest
		}
		rest = rest[w:]
		r.Values = make([][]byte, 0, n)
		r.Found = make([]bool, 0, n)
		for i := uint64(0); i < n; i++ {
			if len(rest) < 1 {
				return nil, errBadRequest
			}
			found := rest[0] != 0
			rest = rest[1:]
			raw, tail, err := takeBytes(rest)
			if err != nil {
				return nil, errBadRequest
			}
			rest = tail
			val := append([]byte(nil), raw...)
			if !found {
				val = nil
			}
			r.Values = append(r.Values, val)
			r.Found = append(r.Found, found)
		}
		return r, nil
	default:
		return nil, errBadRequest
	}
}

// command is the decoded form of a wire command.
type command struct {
	op            byte
	id            uint64
	key           string
	val           []byte
	expectPresent bool
	expect        []byte
	keys          []string       // opGet; opTxnPrepare: the read set
	routing       Routing        // migrate ops: the target table
	pairs         []Pair         // opMigrateImport
	impResults    []importResult // opMigrateImport: migrated dedup results
	txns          []*txnPortion  // opMigrateImport: migrated txn portions
	txnID         uint64         // txn ops
	txnCommit     bool           // opTxnResolve: the decision
	homeKey       string         // txn ops
	allKeys       []string       // txn ops
	writes        []TxnWrite     // opTxnPrepare
	conds         []TxnCond      // opTxnPrepare
	ranges        int            // opAudit: digest partition count
}

func decodeCommand(b []byte) (command, error) {
	if len(b) < 9 {
		return command{}, errBadCommand
	}
	c := command{op: b[0], id: binary.BigEndian.Uint64(b[1:9])}
	rest := b[9:]
	var err error
	var raw []byte
	switch c.op {
	case opPut:
		if raw, rest, err = takeBytes(rest); err != nil {
			return command{}, err
		}
		c.key = string(raw)
		if c.val, _, err = takeBytes(rest); err != nil {
			return command{}, err
		}
	case opDelete:
		if raw, _, err = takeBytes(rest); err != nil {
			return command{}, err
		}
		c.key = string(raw)
	case opCAS:
		if raw, rest, err = takeBytes(rest); err != nil {
			return command{}, err
		}
		c.key = string(raw)
		if len(rest) < 1 {
			return command{}, errBadCommand
		}
		c.expectPresent = rest[0] != 0
		rest = rest[1:]
		if c.expect, rest, err = takeBytes(rest); err != nil {
			return command{}, err
		}
		if c.val, _, err = takeBytes(rest); err != nil {
			return command{}, err
		}
	case opGet:
		n, w := binary.Uvarint(rest)
		if w <= 0 || n > uint64(len(rest)) {
			return command{}, errBadCommand
		}
		rest = rest[w:]
		c.keys = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			if raw, rest, err = takeBytes(rest); err != nil {
				return command{}, err
			}
			c.keys = append(c.keys, string(raw))
		}
	case opMigrateBegin, opMigrateCommit, opMigrateAbort:
		if c.routing, _, err = takeRouting(rest); err != nil {
			return command{}, err
		}
	case opMigrateImport:
		if c.routing, rest, err = takeRouting(rest); err != nil {
			return command{}, err
		}
		n, w := binary.Uvarint(rest)
		if w <= 0 || n > uint64(len(rest)) {
			return command{}, errBadCommand
		}
		rest = rest[w:]
		c.pairs = make([]Pair, 0, n)
		for i := uint64(0); i < n; i++ {
			if raw, rest, err = takeBytes(rest); err != nil {
				return command{}, err
			}
			key := string(raw)
			if raw, rest, err = takeBytes(rest); err != nil {
				return command{}, err
			}
			c.pairs = append(c.pairs, Pair{Key: key, Val: append([]byte(nil), raw...)})
		}
		n, w = binary.Uvarint(rest)
		if w <= 0 || n > uint64(len(rest)) {
			return command{}, errBadCommand
		}
		rest = rest[w:]
		c.impResults = make([]importResult, 0, n)
		for i := uint64(0); i < n; i++ {
			if len(rest) < 9 {
				return command{}, errBadCommand
			}
			ir := importResult{ID: binary.BigEndian.Uint64(rest), OK: rest[8] != 0}
			rest = rest[9:]
			if raw, rest, err = takeBytes(rest); err != nil {
				return command{}, err
			}
			ir.Key = string(raw)
			c.impResults = append(c.impResults, ir)
		}
		n, w = binary.Uvarint(rest)
		if w <= 0 || n > uint64(len(rest)) {
			return command{}, errBadCommand
		}
		rest = rest[w:]
		c.txns = make([]*txnPortion, 0, n)
		for i := uint64(0); i < n; i++ {
			if raw, rest, err = takeBytes(rest); err != nil {
				return command{}, err
			}
			p := &txnPortion{}
			if err := json.Unmarshal(raw, p); err != nil {
				return command{}, errBadCommand
			}
			c.txns = append(c.txns, p)
		}
	case opTxnPrepare:
		if len(rest) < 8 {
			return command{}, errBadCommand
		}
		c.txnID = binary.BigEndian.Uint64(rest)
		rest = rest[8:]
		if raw, rest, err = takeBytes(rest); err != nil {
			return command{}, err
		}
		c.homeKey = string(raw)
		if c.allKeys, rest, err = takeKeys(rest); err != nil {
			return command{}, err
		}
		if c.keys, rest, err = takeKeys(rest); err != nil {
			return command{}, err
		}
		if c.writes, rest, err = takeTxnWrites(rest); err != nil {
			return command{}, err
		}
		if c.conds, _, err = takeTxnConds(rest); err != nil {
			return command{}, err
		}
	case opTxnResolve:
		if len(rest) < 9 {
			return command{}, errBadCommand
		}
		c.txnID = binary.BigEndian.Uint64(rest)
		c.txnCommit = rest[8] != 0
		rest = rest[9:]
		if raw, rest, err = takeBytes(rest); err != nil {
			return command{}, err
		}
		c.homeKey = string(raw)
		if c.allKeys, _, err = takeKeys(rest); err != nil {
			return command{}, err
		}
	case opAudit:
		n, w := binary.Uvarint(rest)
		if w <= 0 || n == 0 || n > maxAuditRanges {
			return command{}, errBadCommand
		}
		c.ranges = int(n)
	default:
		return command{}, fmt.Errorf("kv: unknown op %d: %w", c.op, errBadCommand)
	}
	return c, nil
}
