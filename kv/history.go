package kv

import (
	"context"
	"sync"
	"time"
)

// This file is the measurement half of the adversarial harness (see the fuzz
// package): a client wrapper that records the complete concurrent operation
// history — what each client invoked, when, and what came back — in the form
// a linearizability checker consumes. Recording happens at the public-API
// boundary, so everything below it (routing, retries, forwards, dedup,
// resharding, recovery) is inside the system under test.

// HistoryOp is the operation kind of one recorded event.
type HistoryOp int

// Operation kinds. MGet records one OpGet event per key and BatchPut one
// OpPut per pair — per-key linearizability is the store's documented
// guarantee (cross-shard snapshots are not), so the checker works per key.
const (
	OpGet HistoryOp = iota
	OpPut
	OpDelete
	OpCAS
	// OpTxn is one multi-key atomic operation: a transaction's writes
	// (Writes, Committed) and/or its consistent snapshot reads (ReadKeys,
	// ReadVals, ReadFound). MGet records as a read-only OpTxn — the store
	// promises a cross-shard snapshot, so the history claims one and the
	// checker holds it to that.
	OpTxn
	// OpStaleGet is an opt-in bounded-staleness read (Client.StaleGet): the
	// observed value need not be current, but must have been the key's
	// value no earlier than Bound before the invocation. It is excluded
	// from the linearizability search and held to its own bounded-staleness
	// check instead.
	OpStaleGet
)

// String names an op for schedule dumps and checker diagnostics.
func (o HistoryOp) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpCAS:
		return "cas"
	case OpTxn:
		return "txn"
	case OpStaleGet:
		return "staleget"
	}
	return "?"
}

// HistoryEvent is one completed (or failed) client operation: the invocation
// window [Invoke, Return] in nanoseconds since the history's epoch, and the
// observed outcome. A failed operation (Err != "") has an UNKNOWN outcome —
// a write may or may not have taken effect (the command can still be applied
// after the client gave up), a read observed nothing; the checker must treat
// it accordingly.
type HistoryEvent struct {
	// Client identifies the recording client; within one client events do
	// not overlap (the wrapper serialises per client, like a real caller).
	Client int
	Op     HistoryOp
	Key    string
	// Val is the written value (put, cas) or the observed value (get;
	// nil when absent).
	Val []byte
	// Found reports presence for get, existed-for-delete, and success for
	// cas (the compare matched).
	Found bool
	// Expect/ExpectPresent carry a cas's compare operand.
	Expect        []byte
	ExpectPresent bool
	// Multi-key payload (OpTxn). ReadKeys/ReadVals/ReadFound are the
	// transaction's snapshot reads (parallel slices); Writes are the
	// writes it committed atomically — empty unless Committed. Committed
	// false with Err empty is a KNOWN abort (condition failed): the
	// writes certainly did not land.
	ReadKeys  []string
	ReadVals  [][]byte
	ReadFound []bool
	Writes    []TxnWrite
	Committed bool
	// Bound is an OpStaleGet's requested staleness bound, and StaleFor the
	// bound the server actually reported for the served value (0 when the
	// read fell back to the sequenced path).
	Bound    time.Duration
	StaleFor time.Duration
	// Invoke and Return bound the operation in nanoseconds since the
	// history's epoch. Return < 0 marks an operation that never returned
	// (client still blocked when the run ended) — linearizable anywhere
	// after Invoke.
	Invoke int64
	Return int64
	// Err is the operation's failure, empty on success.
	Err string
}

// Failed reports whether the event's outcome is unknown (errored or never
// returned).
func (e HistoryEvent) Failed() bool { return e.Err != "" || e.Return < 0 }

// History accumulates events from concurrent recording clients. Safe for
// concurrent use; the zero value is NOT ready — use NewHistory.
type History struct {
	epoch time.Time
	mu    sync.Mutex
	evs   []HistoryEvent
}

// NewHistory returns an empty history; event timestamps count from now.
func NewHistory() *History { return &History{epoch: time.Now()} }

// now is the history's clock: nanoseconds since the epoch.
func (h *History) now() int64 { return time.Since(h.epoch).Nanoseconds() }

// add records one completed event.
func (h *History) add(e HistoryEvent) {
	h.mu.Lock()
	h.evs = append(h.evs, e)
	h.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (h *History) Events() []HistoryEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HistoryEvent, len(h.evs))
	copy(out, h.evs)
	return out
}

// Len reports the number of recorded events.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.evs)
}

// RecordingClient wraps a Client so every operation lands in a shared
// History with its invocation window. One RecordingClient models one
// sequential caller: use several (each with its own id) for a concurrent
// workload. Methods mirror the Client's signatures.
type RecordingClient struct {
	c  *Client
	h  *History
	id int
}

// Record wraps c; id must be unique among the history's clients.
func Record(c *Client, h *History, id int) *RecordingClient {
	return &RecordingClient{c: c, h: h, id: id}
}

// finish stamps the return edge and records the event. A failed operation
// records Return < 0: the client stopped waiting, but a write's command may
// still commit later, so it stays linearizable anywhere after Invoke.
func (r *RecordingClient) finish(e HistoryEvent, err error) {
	e.Return = r.h.now()
	if err != nil {
		e.Err = err.Error()
		e.Return = -1
	}
	r.h.add(e)
}

// Get performs a sequenced read, recording the observed value.
func (r *RecordingClient) Get(ctx context.Context, key string) ([]byte, bool, error) {
	e := HistoryEvent{Client: r.id, Op: OpGet, Key: key, Invoke: r.h.now()}
	val, found, err := r.c.Get(ctx, key)
	e.Val, e.Found = copyVal(val), found
	r.finish(e, err)
	return val, found, err
}

// StaleGet performs the opt-in bounded-staleness read, recording the
// observed value together with the requested bound and the server-reported
// staleness — the claims the fuzz harness's bounded-staleness check holds
// the read to.
func (r *RecordingClient) StaleGet(ctx context.Context, key string, maxStale time.Duration) ([]byte, bool, time.Duration, error) {
	e := HistoryEvent{Client: r.id, Op: OpStaleGet, Key: key, Bound: maxStale, Invoke: r.h.now()}
	val, found, staleFor, err := r.c.StaleGet(ctx, key, maxStale)
	e.Val, e.Found, e.StaleFor = copyVal(val), found, staleFor
	r.finish(e, err)
	return val, found, staleFor, err
}

// Put stores key = val, recording the write.
func (r *RecordingClient) Put(ctx context.Context, key string, val []byte) error {
	e := HistoryEvent{Client: r.id, Op: OpPut, Key: key, Val: copyVal(val), Invoke: r.h.now()}
	err := r.c.Put(ctx, key, val)
	r.finish(e, err)
	return err
}

// Delete removes key, recording whether it existed.
func (r *RecordingClient) Delete(ctx context.Context, key string) (bool, error) {
	e := HistoryEvent{Client: r.id, Op: OpDelete, Key: key, Invoke: r.h.now()}
	existed, err := r.c.Delete(ctx, key)
	e.Found = existed
	r.finish(e, err)
	return existed, err
}

// CAS attempts the compare-and-swap, recording operands and outcome.
func (r *RecordingClient) CAS(ctx context.Context, key string, expect, val []byte) (bool, error) {
	e := HistoryEvent{Client: r.id, Op: OpCAS, Key: key,
		Val: copyVal(val), Expect: copyVal(expect), ExpectPresent: expect != nil,
		Invoke: r.h.now()}
	ok, err := r.c.CAS(ctx, key, expect, val)
	e.Found = ok
	r.finish(e, err)
	return ok, err
}

// MGet performs the multi-key read, recording one read-only OpTxn event:
// the store serves MGet as a consistent cross-shard snapshot (all keys
// captured under one set of transaction locks), and the history records
// exactly that claim — the atomicity checker refutes torn snapshots, and
// the per-key checker consumes the decomposed reads under the shared
// window.
func (r *RecordingClient) MGet(ctx context.Context, keys ...string) (map[string][]byte, error) {
	e := HistoryEvent{Client: r.id, Op: OpTxn, ReadKeys: append([]string(nil), keys...),
		Committed: true, Invoke: r.h.now()}
	out, err := r.c.MGet(ctx, keys...)
	if err == nil {
		for _, k := range keys {
			v, found := out[k]
			e.ReadVals = append(e.ReadVals, copyVal(v))
			e.ReadFound = append(e.ReadFound, found)
		}
	}
	r.finish(e, err)
	return out, err
}

// Txn executes the transaction, recording one OpTxn event: its snapshot
// reads, and — when it committed — its writes as one atomic multi-key
// update. A condition-failed abort records Committed false with no error
// (a known no-op); a transport failure records an unknown outcome, whose
// writes may still land later.
func (r *RecordingClient) Txn(ctx context.Context, op TxnOp) (*TxnResult, error) {
	e := HistoryEvent{Client: r.id, Op: OpTxn, Invoke: r.h.now()}
	for _, w := range op.Writes {
		e.Writes = append(e.Writes, TxnWrite{Key: w.Key, Val: copyVal(w.Val), Delete: w.Delete})
	}
	res, err := r.c.Txn(ctx, op)
	if err == nil {
		e.Committed = res.Committed
		if res.Committed { // a condition-failed abort captures no snapshot
			e.ReadKeys = append([]string(nil), op.Reads...)
			for i := range op.Reads {
				var v []byte
				var found bool
				if i < len(res.Values) {
					v, found = res.Values[i], res.Found[i]
				}
				e.ReadVals = append(e.ReadVals, copyVal(v))
				e.ReadFound = append(e.ReadFound, found)
			}
		}
	}
	r.finish(e, err)
	return res, err
}

// BatchPut writes the pairs, recording one OpPut event per pair under the
// batch's shared invocation window (writes to one shard apply in slice
// order, but each key's write is individually linearizable in the window —
// the per-key claim the checker verifies).
func (r *RecordingClient) BatchPut(ctx context.Context, pairs []Pair) error {
	invoke := r.h.now()
	err := r.c.BatchPut(ctx, pairs)
	ret := r.h.now()
	for _, p := range pairs {
		e := HistoryEvent{Client: r.id, Op: OpPut, Key: p.Key, Val: copyVal(p.Val),
			Invoke: invoke, Return: ret}
		if err != nil {
			e.Err = err.Error()
			e.Return = -1
		}
		r.h.add(e)
	}
	return err
}

// Close releases the wrapped client's resources.
func (r *RecordingClient) Close() { r.c.Close() }
