package kv

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	a := newRing("store", 8, 64)
	b := newRing("store", 8, 64)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if a.shard(k) != b.shard(k) {
			t.Fatalf("ring not deterministic for %q: %d vs %d", k, a.shard(k), b.shard(k))
		}
	}
	// A different store name must shard differently somewhere (the name
	// participates in the point hashes).
	c := newRing("other", 8, 64)
	same := 0
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if a.shard(k) == c.shard(k) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("distinct stores shard identically; name not hashed in")
	}
}

func TestRingCoversAllShardsRoughlyEvenly(t *testing.T) {
	const shards, keys = 8, 8000
	r := newRing("balance", shards, 64)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.shard(fmt.Sprintf("key-%d", i))]++
	}
	mean := keys / shards
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d owns no keys", s)
		}
		if n > 2*mean || n < mean/2 {
			t.Errorf("shard %d badly imbalanced: %d keys (mean %d)", s, n, mean)
		}
	}
}

func TestRingConsistency(t *testing.T) {
	// Growing 8 → 9 shards must remap roughly 1/9 of keys, not reshuffle
	// everything — the property a rebalancer will rely on.
	const keys = 8000
	r8 := newRing("grow", 8, 64)
	r9 := newRing("grow", 9, 64)
	moved := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		if r8.shard(k) != r9.shard(k) {
			moved++
		}
	}
	if moved > keys/3 {
		t.Fatalf("adding one shard moved %d/%d keys; not consistent hashing", moved, keys)
	}
	if moved == 0 {
		t.Fatal("adding a shard moved nothing; new shard owns no keys")
	}
}
