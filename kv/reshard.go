// Live resharding: the coordinated handoff that grows (split) or shrinks
// (merge) a running store's shard-group count with zero lost or duplicated
// keys, under client load.
//
// The unit of truth is the epoch-versioned Routing table, replicated inside
// every shard's state machine and changed only by sequenced migration
// commands — so the handoff inherits the total order's guarantees and, on
// durable stores, the write-ahead log's crash safety:
//
//	begin(E)    every shard (old and new) installs the pending table;
//	            ranges moving away from a shard freeze (reads and writes
//	            answer Moved and are retried by the client layer until the
//	            flip) — no moved key is ever served from two places
//	import(E)   each source shard's frozen moving pairs stream into their
//	            new owners, chunked under the group message limit; imports
//	            are epoch-gated so a re-driven chunk can never overwrite a
//	            post-flip client write
//	commit(E)   each shard flips to the new table and deletes moved keys;
//	            commits are issued only after EVERY import completed, which
//	            is the invariant the crash-resume path leans on: any shard
//	            observed at epoch E proves the import phase finished
//
// A crash mid-handoff (even of every node at once) recovers the exact
// migration state from the logs: Bootstrap finds the pending table and
// re-drives the handoff — re-exporting from still-frozen sources if nothing
// committed, or going straight to the remaining commits if anything did.
// Both paths are idempotent, so a dueling coordinator is safe, just wasted
// work.
package kv

import (
	"context"
	"errors"
	"fmt"
	"time"

	"amoeba/shared"
)

// maxImportChunk bounds one import command's payload, comfortably under the
// group layer's default 64 KiB message limit.
const maxImportChunk = 32 << 10

// ErrReshardPending reports a Resharding call that conflicts with a handoff
// already in progress (resume it by asking for the pending shard count).
var ErrReshardPending = errors.New("kv: a resharding is already in progress")

// Resharding changes the live store to newShards shard groups: a split
// (N→N+k) creates the new groups across the nodes and streams the key
// ranges they take over out of every old shard; a merge (N→N−k) streams the
// dying shards' keys into their surviving owners and retires the dead
// groups. The handoff runs under client load: operations on moving keys are
// held (retried internally) between freeze and flip, everything else
// proceeds, and when Resharding returns the whole keyspace is served under
// the new table — consistent hashing keeps the moved fraction near
// (|new−old|)/max(new,old) instead of a full rehash.
//
// Any node of the store can coordinate. If a previous handoff was
// interrupted (coordinator crash), calling Resharding with the pending
// shard count resumes it; any other count fails with ErrReshardPending.
// Live resharding requires full replication (Options.Replication 0).
func (s *Store) Resharding(ctx context.Context, newShards int) error {
	if newShards <= 0 {
		return fmt.Errorf("kv: resharding to %d shards", newShards)
	}
	if s.opts.Replication > 0 && s.opts.Nodes > 0 && s.opts.Replication < s.opts.Nodes {
		return fmt.Errorf("kv: live resharding requires full replication (replication is %d of %d nodes)",
			s.opts.Replication, s.opts.Nodes)
	}
	s.reshardMu.Lock()
	defer s.reshardMu.Unlock()
	cur := s.Routing()
	if pend := s.PendingRouting(); pend != nil {
		if newShards != pend.Shards {
			return fmt.Errorf("%w (to %d shards, epoch %d); call Resharding(%d) to resume it first",
				ErrReshardPending, pend.Shards, pend.Epoch, pend.Shards)
		}
		return s.reshardTo(ctx, *pend)
	}
	if newShards == cur.Shards {
		return nil
	}
	target := Routing{Epoch: cur.Epoch + 1, Shards: newShards, VNodes: cur.VNodes}
	return s.reshardTo(ctx, target)
}

// resumeResharding finishes a handoff a crash interrupted, if the recovered
// state holds one. Called by the durable bootstrap path before the store is
// handed out.
func (s *Store) resumeResharding(ctx context.Context) error {
	pend := s.PendingRouting()
	if pend == nil {
		return nil
	}
	s.reshardMu.Lock()
	defer s.reshardMu.Unlock()
	return s.reshardTo(ctx, *pend)
}

// reshardTo drives (or re-drives) the handoff to the target table. Every
// step is idempotent, so the same target can be driven again after any
// partial failure.
func (s *Store) reshardTo(ctx context.Context, target Routing) error {
	cur := s.Routing()
	if target.Epoch < cur.Epoch {
		return nil // superseded by a later table
	}
	s.coordinating.Store(true)
	defer s.coordinating.Store(false)
	flight := s.opts.Group.Obs.Flight()
	tag := "kv/" + s.name + "/coord"
	flight.Recordf(tag, "reshard: driving epoch %d (%d -> %d shards)",
		target.Epoch, cur.Shards, target.Shards)
	if target.Epoch == cur.Epoch {
		// The table already committed somewhere (that is how the store
		// epoch reached it), but straggler shards still carry the pending
		// freeze — a crash landed between per-shard commits. The import
		// phase provably finished before the first commit, so only the
		// remaining commits are owed.
		return s.commitAll(ctx, target)
	}
	oldN := cur.Shards
	maxN := oldN
	if target.Shards > maxN {
		maxN = target.Shards
	}
	// Resume detection: a shard already at the target epoch proves every
	// import completed before the crash — re-exporting would race post-flip
	// client writes, so skip straight to the remaining commits.
	committed, err := s.anyShardAtEpoch(ctx, maxN, target.Epoch)
	if err != nil {
		return err
	}
	if committed {
		flight.Recordf(tag, "reshard: epoch %d partially committed, resuming at flip", target.Epoch)
	}
	if !committed {
		// Phase 1: freeze. Every old shard installs the pending table; the
		// ranges it loses stop serving until its commit.
		for i := 0; i < oldN; i++ {
			if err := s.migrate(ctx, i, encodeMigrate(opMigrateBegin, s.nextCmdID(), target)); err != nil {
				return fmt.Errorf("kv: migrate-begin on shard %d: %w", i, err)
			}
		}
		// Phase 2: topology. The begins just applied nudge every node's
		// topology worker to create/join the announced groups (the shard's
		// designated creator creates, everyone else joins) — wait until
		// this node hosts them all.
		if target.Shards > oldN {
			if err := s.waitHosted(ctx, oldN, target.Shards); err != nil {
				return err
			}
			for i := oldN; i < target.Shards; i++ {
				if err := s.migrate(ctx, i, encodeMigrate(opMigrateBegin, s.nextCmdID(), target)); err != nil {
					return fmt.Errorf("kv: migrate-begin on new shard %d: %w", i, err)
				}
			}
		}
		// Phase 3: stream. Export every old shard's frozen moving pairs
		// into their new owners through the owners' total order.
		next := target.ring(s.name)
		for src := 0; src < oldN; src++ {
			if err := s.exportShard(ctx, src, next, target); err != nil {
				return err
			}
		}
		flight.Recordf(tag, "reshard: epoch %d streamed, flipping", target.Epoch)
	} else if target.Shards > oldN {
		if err := s.waitHosted(ctx, oldN, target.Shards); err != nil {
			return err
		}
	}
	// Phase 4: flip.
	if err := s.commitAll(ctx, target); err != nil {
		return err
	}
	flight.Recordf(tag, "reshard: epoch %d committed (%d shards)", target.Epoch, target.Shards)
	return nil
}

// commitAll drives migrate-commit through every shard that could still be
// pre-flip: sources delete their moved keys, frozen ranges thaw at their
// new owners. Commits are idempotent, so driving an already-committed shard
// is a no-op. A merged-away shard may already have been retired by the
// topology worker (retirement waits for that shard's own flip, so a missing
// replica proves its commit applied) — racing a retire is success.
func (s *Store) commitAll(ctx context.Context, target Routing) error {
	n := len(s.snapshotShards())
	if target.Shards > n {
		n = target.Shards
	}
	retired := func(i int) bool { return i >= target.Shards && s.Replica(i) == nil }
	for i := 0; i < n; i++ {
		if retired(i) {
			continue
		}
		if err := s.migrate(ctx, i, encodeMigrate(opMigrateCommit, s.nextCmdID(), target)); err != nil {
			if retired(i) {
				continue
			}
			return fmt.Errorf("kv: migrate-commit on shard %d: %w", i, err)
		}
	}
	// The topology worker retires merged-away shards on every node as the
	// flip is observed; nothing to wait for here.
	return nil
}

// exportShard streams the pairs shard src loses under next into their new
// owners, chunked to stay under the group message limit. The source is
// frozen (begin applied before the export read), so the chunks are a
// consistent cut however often they are re-driven.
func (s *Store) exportShard(ctx context.Context, src int, next *ring, target Routing) error {
	r := s.Replica(src)
	if r == nil {
		return fmt.Errorf("kv: exporting shard %d: not hosted on this node", src)
	}
	var chunks map[int][]*importChunk
	r.Read(func(sm shared.StateMachine) {
		chunks = sm.(*mapSM).exportChunks(next, maxImportChunk)
	})
	for dest, list := range chunks {
		for _, chunk := range list {
			cmd := encodeMigrateImport(s.nextCmdID(), target, chunk)
			if err := s.migrate(ctx, dest, cmd); err != nil {
				return fmt.Errorf("kv: importing %d pairs from shard %d into shard %d: %w",
					len(chunk.Pairs), src, dest, err)
			}
		}
	}
	return nil
}

// migrate submits one migration command through shard i's total order and
// waits for its replicated result. A Moved result (an import landing after
// the target already flipped — possible only when a second coordinator
// finished the handoff first) counts as success: the flip it lost to
// subsumes it. A rejected begin (OK false: the shard carries a CONFLICTING
// pending table) is an error — exporting an unfrozen shard would lose the
// writes that raced the export, so the coordinator must stop.
func (s *Store) migrate(ctx context.Context, shard int, cmd []byte) error {
	c, err := decodeCommand(cmd)
	if err != nil {
		return err
	}
	res, err := s.do(ctx, shard, c.id, cmd)
	if err != nil {
		if errors.Is(err, errMoved) {
			return nil
		}
		return err
	}
	if !res.OK && c.op == opMigrateBegin {
		return fmt.Errorf("kv: shard %d rejected migrate-begin for epoch %d (conflicting handoff in progress?)", shard, c.routing.Epoch)
	}
	return nil
}

// anyShardAtEpoch reports whether any hosted shard in [0, n) has already
// committed the given epoch.
func (s *Store) anyShardAtEpoch(ctx context.Context, n int, epoch uint64) (bool, error) {
	for i := 0; i < n; i++ {
		r := s.Replica(i)
		if r == nil {
			continue
		}
		at := false
		r.Read(func(sm shared.StateMachine) {
			at = sm.(*mapSM).routing.Epoch >= epoch
		})
		if at {
			return true, nil
		}
	}
	return false, ctx.Err()
}

// waitHosted blocks until this node hosts replicas of shards [lo, hi) — the
// topology worker joins/creates them once the begins propagate.
func (s *Store) waitHosted(ctx context.Context, lo, hi int) error {
	s.nudgeTopology()
	for {
		missing := -1
		for i := lo; i < hi; i++ {
			if s.Replica(i) == nil {
				missing = i
				break
			}
		}
		if missing < 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("kv: waiting for new shard %d to come up: %w", missing, ctx.Err())
		case <-time.After(25 * time.Millisecond):
			s.nudgeTopology()
		}
	}
}
