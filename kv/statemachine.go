package kv

import (
	"encoding/json"
	"fmt"

	"amoeba/obs"
	"amoeba/shared"
)

// defaultResultWindow bounds the replicated result table. A result is
// evicted after this many further commands apply, so a client has that much
// slack between its command applying locally and its Wait observing the
// result — far more than any realistic scheduling delay.
const defaultResultWindow = 65536

// result is the replicated outcome of one command, keyed by command id. It
// is part of the state machine (every replica computes the identical table),
// which is what lets a client read its CAS outcome or sequenced-get values
// from its local replica.
type result struct {
	// OK reports mutation success: CAS swapped, Delete found the key.
	OK bool `json:"ok"`
	// Values and Found carry sequenced-read results, aligned with the
	// command's key list.
	Values [][]byte `json:"values,omitempty"`
	Found  []bool   `json:"found,omitempty"`
	// Key is the mutated key (write ops only). It lets a resharding
	// migrate the result alongside the data: a command retried after the
	// epoch flip routes to the key's NEW owner, and only if the result
	// moved with the key does the dedup window still answer it there —
	// exactly-once across reshardings. (Sequenced reads carry no key;
	// re-executing a read under a retry is just a later linearizable
	// read.)
	Key string `json:"key,omitempty"`
	// Moved reports that the command touched a key this shard does not
	// serve at the command's position in the total order: either the key
	// range is frozen mid-handoff (owned now, but moving under the pending
	// routing) or it already moved (a stale client's routing lags the
	// epoch). The command was NOT executed; the caller re-resolves the
	// owner and retries — and because a Moved result does not arm the
	// dedup suppression, the retried id executes normally wherever it
	// lands.
	Moved bool `json:"moved,omitempty"`
}

// mapSM is the per-shard replicated state machine: the key-value items, a
// bounded FIFO window of command results, and the routing table the shard
// operates under. Apply is deterministic; shared serialises all access.
type mapSM struct {
	items   map[string][]byte
	results map[uint64]result
	order   []uint64 // result ids, oldest first, for deterministic eviction
	window  int

	// Identity (constructor-set, not part of the replicated state: every
	// replica of one shard is built with the same values).
	store string
	shard int
	// onRouting, when non-nil, is nudged after any apply or restore that
	// changed routing or pending — the hook the hosting Store uses to keep
	// its node-local routing view current. It runs under the replica lock
	// and must not call back into the replica.
	onRouting func(shard int, cur Routing, pending Routing, hasPending bool)

	// routing is the epoch table this shard currently serves under;
	// pending, when non-nil, is the next table a migrate-begin announced
	// (the shard is mid-handoff: keys moving away are frozen). Both are
	// replicated state, changed only by sequenced migration commands.
	routing Routing
	pending *Routing
	// curRing/pendRing are derived from routing/pending (deterministic
	// function of the replicated state; rebuilt on restore).
	curRing  *ring
	pendRing *ring

	// Observability (node-local, never replicated; nil = no-op). tracer
	// stamps "applied@seq" spans for sampled command ids, flight records
	// migrate phase transitions; seq is the sequence number of the command
	// currently applying, set by ApplySeq for the duration of one Apply.
	tracer *obs.Tracer
	flight *obs.Recorder
	seq    uint32
}

var _ shared.StateMachine = (*mapSM)(nil)
var _ shared.SeqApplier = (*mapSM)(nil)

func newMapSM(store string, shard int, rt Routing, window int, onRouting func(int, Routing, Routing, bool)) *mapSM {
	if window <= 0 {
		window = defaultResultWindow
	}
	s := &mapSM{
		items:     make(map[string][]byte),
		results:   make(map[uint64]result),
		window:    window,
		store:     store,
		shard:     shard,
		onRouting: onRouting,
		routing:   rt,
	}
	if rt.Shards > 0 {
		s.curRing = rt.ring(store)
	}
	return s
}

func (s *mapSM) setResult(id uint64, r result) {
	if _, dup := s.results[id]; !dup {
		s.order = append(s.order, id)
	}
	s.results[id] = r
	for len(s.order) > s.window {
		delete(s.results, s.order[0])
		s.order = s.order[1:]
	}
}

// serves reports whether this shard serves key at this point in the total
// order: the key must be owned under the current table AND not be mid-move
// under a pending one. A key moving away is frozen from migrate-begin until
// this shard's migrate-commit — reads too, so a moved key is never served
// stale from the source while the target may already have accepted a newer
// write (linearizability across the epoch flip).
func (s *mapSM) serves(key string) bool {
	if s.curRing == nil {
		return true // no routing installed: single-table legacy shard
	}
	if s.curRing.shard(key) != s.shard {
		return false
	}
	if s.pendRing != nil && s.pendRing.shard(key) != s.shard {
		return false
	}
	return true
}

// notifyRouting nudges the hosting store after a routing/pending change.
func (s *mapSM) notifyRouting() {
	if s.onRouting == nil {
		return
	}
	var pend Routing
	if s.pending != nil {
		pend = *s.pending
	}
	s.onRouting(s.shard, s.routing, pend, s.pending != nil)
}

// ApplySeq is Apply with the command's sequence number alongside — the
// shared.SeqApplier extension. The sequence number is not state: it only
// feeds the "applied@seq" trace span for sampled command ids.
func (s *mapSM) ApplySeq(seq uint32, cmd []byte) {
	s.seq = seq
	s.Apply(cmd)
	s.seq = 0
}

// Apply executes one committed command. Malformed commands are ignored (a
// byzantine client must not be able to diverge or crash the replicas), and a
// command whose id already has a real result is not re-executed: clients
// retry across replica swaps and routing epochs, and a retried CAS must not
// observe its own first execution. Moved results do not suppress the retry —
// the command never executed, and the total order decides afresh whether the
// shard serves the key by then.
func (s *mapSM) Apply(cmd []byte) {
	c, err := decodeCommand(cmd)
	if err != nil {
		return
	}
	if prev, done := s.results[c.id]; done && !prev.Moved {
		s.tracer.Addf(c.id, "dedup hit at shard %d (seq %d)", s.shard, s.seq)
		return
	}
	s.tracer.Addf(c.id, "applied@seq %d op=%d shard=%d", s.seq, c.op, s.shard)
	switch c.op {
	case opPut:
		if !s.serves(c.key) {
			s.setResult(c.id, result{Moved: true})
			return
		}
		s.items[c.key] = c.val
		s.setResult(c.id, result{OK: true, Key: c.key})
	case opDelete:
		if !s.serves(c.key) {
			s.setResult(c.id, result{Moved: true})
			return
		}
		_, existed := s.items[c.key]
		delete(s.items, c.key)
		s.setResult(c.id, result{OK: existed, Key: c.key})
	case opCAS:
		if !s.serves(c.key) {
			s.setResult(c.id, result{Moved: true})
			return
		}
		cur, present := s.items[c.key]
		ok := present == c.expectPresent && (!present || string(cur) == string(c.expect))
		if ok {
			s.items[c.key] = c.val
		}
		s.setResult(c.id, result{OK: ok, Key: c.key})
	case opGet:
		for _, k := range c.keys {
			if !s.serves(k) {
				s.setResult(c.id, result{Moved: true})
				return
			}
		}
		r := result{
			OK:     true,
			Values: make([][]byte, len(c.keys)),
			Found:  make([]bool, len(c.keys)),
		}
		for i, k := range c.keys {
			if v, ok := s.items[k]; ok {
				r.Values[i] = v
				r.Found[i] = true
			}
		}
		s.setResult(c.id, r)
	case opMigrateBegin:
		s.applyMigrateBegin(c)
	case opMigrateCommit:
		s.applyMigrateCommit(c)
	case opMigrateAbort:
		s.applyMigrateAbort(c)
	case opMigrateImport:
		s.applyMigrateImport(c)
	}
}

// applyMigrateBegin installs the pending routing table, freezing the key
// ranges that move away from this shard. Begins are idempotent, and a begin
// for an epoch the shard already reached (or passed) is a no-op — the retry
// of a completed handoff must not re-freeze anything.
func (s *mapSM) applyMigrateBegin(c command) {
	ok := false
	switch {
	case c.routing.Epoch <= s.routing.Epoch:
		// Already at (or past) that epoch: the handoff completed.
		ok = true
	case s.pending != nil && *s.pending == c.routing:
		ok = true // duplicate begin of the handoff in progress
	case s.pending == nil && c.routing.Epoch == s.routing.Epoch+1:
		rt := c.routing
		s.pending = &rt
		s.pendRing = rt.ring(s.store)
		ok = true
		s.flight.Recordf(s.flightTag(), "migrate begin: epoch %d -> %d (%d -> %d shards)",
			s.routing.Epoch, rt.Epoch, s.routing.Shards, rt.Shards)
		s.notifyRouting()
	}
	s.setResult(c.id, result{OK: ok})
}

// flightTag labels this shard's flight-recorder events.
func (s *mapSM) flightTag() string {
	return fmt.Sprintf("kv/%s/%d", s.store, s.shard)
}

// applyMigrateCommit flips the shard to the new routing table: moved keys
// (exported to their new owners before the commit was sequenced) are
// deleted, the freeze lifts, and from this position in the total order the
// shard serves exactly the ranges the new table assigns it.
func (s *mapSM) applyMigrateCommit(c command) {
	if c.routing.Epoch <= s.routing.Epoch {
		s.setResult(c.id, result{OK: true}) // duplicate commit
		return
	}
	s.routing = c.routing
	s.curRing = c.routing.ring(s.store)
	s.pending = nil
	s.pendRing = nil
	dropped := 0
	for k := range s.items {
		if s.curRing.shard(k) != s.shard {
			delete(s.items, k)
			dropped++
		}
	}
	s.flight.Recordf(s.flightTag(), "migrate commit: epoch %d, %d moved keys dropped, %d kept",
		c.routing.Epoch, dropped, len(s.items))
	s.setResult(c.id, result{OK: true})
	s.notifyRouting()
}

// applyMigrateAbort rolls a pending handoff back: the freeze lifts and the
// shard keeps serving under its current table. Only the exact pending epoch
// can be aborted, and never after the shard committed it.
func (s *mapSM) applyMigrateAbort(c command) {
	ok := false
	if s.pending != nil && s.pending.Epoch == c.routing.Epoch {
		s.pending = nil
		s.pendRing = nil
		ok = true
		s.flight.Recordf(s.flightTag(), "migrate abort: epoch %d rolled back, serving epoch %d",
			c.routing.Epoch, s.routing.Epoch)
		s.notifyRouting()
	}
	s.setResult(c.id, result{OK: ok})
}

// applyMigrateImport installs a chunk of keys (and the dedup results that
// travel with them) streamed out of a source shard. Imports are epoch-gated:
// they apply only while this shard has not yet committed the target epoch —
// after the flip clients may write the moved ranges here, and a late
// (re-driven) import must never overwrite a newer client write with the
// source's frozen value.
func (s *mapSM) applyMigrateImport(c command) {
	if s.routing.Epoch >= c.routing.Epoch {
		s.setResult(c.id, result{Moved: true}) // late chunk: already flipped
		return
	}
	for _, p := range c.pairs {
		s.items[p.Key] = p.Val
	}
	for _, r := range c.impResults {
		s.setResult(r.ID, result{OK: r.OK, Key: r.Key})
	}
	s.setResult(c.id, result{OK: true})
}

// snapshotState is the wire form of a shard snapshot. Results travel in FIFO
// order so the joiner rebuilds the identical eviction queue.
type snapshotState struct {
	Items   map[string][]byte `json:"items"`
	Results []savedResult     `json:"results"`
	Window  int               `json:"window"`
	Routing Routing           `json:"routing"`
	Pending *Routing          `json:"pending,omitempty"`
}

type savedResult struct {
	ID uint64 `json:"id"`
	result
}

// Snapshot serialises the shard for atomic state transfer to a joiner.
func (s *mapSM) Snapshot() ([]byte, error) {
	st := snapshotState{
		Items:   s.items,
		Results: make([]savedResult, 0, len(s.order)),
		Window:  s.window,
		Routing: s.routing,
		Pending: s.pending,
	}
	for _, id := range s.order {
		st.Results = append(st.Results, savedResult{ID: id, result: s.results[id]})
	}
	return json.Marshal(st)
}

// Restore replaces the shard state with a snapshot.
func (s *mapSM) Restore(snap []byte) error {
	var st snapshotState
	if err := json.Unmarshal(snap, &st); err != nil {
		return err
	}
	s.items = st.Items
	if s.items == nil {
		s.items = make(map[string][]byte)
	}
	s.results = make(map[uint64]result, len(st.Results))
	s.order = make([]uint64, 0, len(st.Results))
	for _, r := range st.Results {
		s.order = append(s.order, r.ID)
		s.results[r.ID] = r.result
	}
	if st.Window > 0 {
		s.window = st.Window
	}
	if st.Routing.Shards > 0 {
		s.routing = st.Routing
		s.curRing = st.Routing.ring(s.store)
	}
	s.pending = st.Pending
	s.pendRing = nil
	if s.pending != nil {
		s.pendRing = s.pending.ring(s.store)
	}
	s.notifyRouting()
	return nil
}

// migrationView is a consistent read of the shard's routing state, for the
// handoff coordinator and the resume path.
type migrationView struct {
	Routing Routing
	Pending *Routing
	Keys    int
}

// importChunk is one migrate-import command's cargo: moved key/value pairs
// plus the dedup results whose keys move with them (tombstoned deletes
// included — their result must follow the key even though the item is gone).
type importChunk struct {
	Pairs   []Pair
	Results []importResult
}

// importResult is one migrated dedup-window entry.
type importResult struct {
	ID  uint64
	OK  bool
	Key string
}

// exportChunks enumerates everything this shard loses under next — items
// and keyed results — grouped by destination shard and chunked to stay
// under maxBytes per chunk (at least one element per chunk). Caller must
// hold the replica lock (Read).
func (s *mapSM) exportChunks(next *ring, maxBytes int) map[int][]*importChunk {
	out := make(map[int][]*importChunk)
	size := make(map[int]int)
	chunkFor := func(dest, need int) *importChunk {
		chunks := out[dest]
		if len(chunks) == 0 || size[dest]+need > maxBytes {
			chunks = append(chunks, &importChunk{})
			out[dest] = chunks
			size[dest] = 0
		}
		size[dest] += need
		return chunks[len(chunks)-1]
	}
	for k, v := range s.items {
		dest := next.shard(k)
		if dest == s.shard {
			continue
		}
		ch := chunkFor(dest, len(k)+len(v)+16)
		ch.Pairs = append(ch.Pairs, Pair{Key: k, Val: append([]byte(nil), v...)})
	}
	for _, id := range s.order {
		r := s.results[id]
		if r.Key == "" {
			continue // reads and migration markers stay behind
		}
		dest := next.shard(r.Key)
		if dest == s.shard {
			continue
		}
		ch := chunkFor(dest, len(r.Key)+16)
		ch.Results = append(ch.Results, importResult{ID: id, OK: r.OK, Key: r.Key})
	}
	return out
}
