package kv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"amoeba/obs"
	"amoeba/shared"
)

// defaultResultWindow bounds the replicated result table. A result is
// evicted after this many further commands apply, so a client has that much
// slack between its command applying locally and its Wait observing the
// result — far more than any realistic scheduling delay.
const defaultResultWindow = 65536

// result is the replicated outcome of one command, keyed by command id. It
// is part of the state machine (every replica computes the identical table),
// which is what lets a client read its CAS outcome or sequenced-get values
// from its local replica.
type result struct {
	// OK reports mutation success: CAS swapped, Delete found the key.
	OK bool `json:"ok"`
	// Values and Found carry sequenced-read results, aligned with the
	// command's key list.
	Values [][]byte `json:"values,omitempty"`
	Found  []bool   `json:"found,omitempty"`
	// Key is the mutated key (write ops only). It lets a resharding
	// migrate the result alongside the data: a command retried after the
	// epoch flip routes to the key's NEW owner, and only if the result
	// moved with the key does the dedup window still answer it there —
	// exactly-once across reshardings. (Sequenced reads carry no key;
	// re-executing a read under a retry is just a later linearizable
	// read.)
	Key string `json:"key,omitempty"`
	// Moved reports that the command touched a key this shard does not
	// serve at the command's position in the total order: either the key
	// range is frozen mid-handoff (owned now, but moving under the pending
	// routing) or it already moved (a stale client's routing lags the
	// epoch). The command was NOT executed; the caller re-resolves the
	// owner and retries — and because a Moved result does not arm the
	// dedup suppression, the retried id executes normally wherever it
	// lands. Ordinary writes to a prepare-locked key answer Moved too: the
	// command did not execute and the client retries after the lock clears.
	Moved bool `json:"moved,omitempty"`
	// TxnState, Conflict, and CondFailed answer the txn ops (see txn.go):
	// the portion's state after the command, a prepare that lost its keys
	// to another live transaction, and a prepare whose conditions failed.
	TxnState   byte `json:"txn,omitempty"`
	Conflict   bool `json:"conflict,omitempty"`
	CondFailed bool `json:"condFailed,omitempty"`
}

// Transaction portion states (see txn.go for the 2PC protocol).
const (
	txnStatePrepared  byte = 1
	txnStateCommitted byte = 2
	txnStateAborted   byte = 3
)

// txnTombstoneWindow bounds resolved transaction portions kept for
// idempotent re-answers, FIFO like the result window. A transaction
// re-driven after its tombstones evicted everywhere is presumed resolved —
// the same horizon the result window already imposes on plain retries.
const txnTombstoneWindow = 8192

// txnPortion is one shard's slice of a cross-shard transaction: the local
// reads (with the values captured when the prepare sequenced), writes held
// back until the decision, and conditions. It is replicated state — created
// by opTxnPrepare, resolved by opTxnResolve, carried in snapshots and
// migrated with its keys during resharding. After resolution the portion
// stays as a tombstone (writes and conds trimmed) so re-driven prepares and
// resolves re-answer the decision instead of re-executing.
type txnPortion struct {
	TxnID   uint64     `json:"id"`
	HomeKey string     `json:"home"`
	AllKeys []string   `json:"all"`
	State   byte       `json:"state"`
	Reads   []string   `json:"reads,omitempty"`
	Writes  []TxnWrite `json:"writes,omitempty"`
	Conds   []TxnCond  `json:"conds,omitempty"`
	Values  [][]byte   `json:"values,omitempty"`
	Found   []bool     `json:"found,omitempty"`
}

// localKeys is the deduplicated union of the portion's read, write, and
// condition keys — the keys this shard locks for the transaction.
func (p *txnPortion) localKeys() []string {
	seen := make(map[string]bool, len(p.Reads)+len(p.Writes)+len(p.Conds))
	out := make([]string, 0, len(p.Reads)+len(p.Writes)+len(p.Conds))
	add := func(k string) {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for _, k := range p.Reads {
		add(k)
	}
	for _, w := range p.Writes {
		add(w.Key)
	}
	for _, c := range p.Conds {
		add(c.Key)
	}
	return out
}

func (p *txnPortion) clone() *txnPortion {
	cp := *p
	cp.AllKeys = append([]string(nil), p.AllKeys...)
	cp.Reads = append([]string(nil), p.Reads...)
	cp.Writes = append([]TxnWrite(nil), p.Writes...)
	cp.Conds = append([]TxnCond(nil), p.Conds...)
	cp.Values = append([][]byte(nil), p.Values...)
	cp.Found = append([]bool(nil), p.Found...)
	return &cp
}

// mergeReads folds t's captured reads into p (keys p lacks only).
func (p *txnPortion) mergeReads(t *txnPortion) {
	have := make(map[string]bool, len(p.Reads))
	for _, k := range p.Reads {
		have[k] = true
	}
	for i, k := range t.Reads {
		if have[k] {
			continue
		}
		have[k] = true
		p.Reads = append(p.Reads, k)
		var v []byte
		var f bool
		if i < len(t.Values) {
			v = t.Values[i]
		}
		if i < len(t.Found) {
			f = t.Found[i]
		}
		p.Values = append(p.Values, v)
		p.Found = append(p.Found, f)
	}
}

// mergeOps folds t's reads, writes, and conds into p (same transaction,
// disjoint or identical per key — dedup by key).
func (p *txnPortion) mergeOps(t *txnPortion) {
	p.mergeReads(t)
	haveW := make(map[string]bool, len(p.Writes))
	for _, w := range p.Writes {
		haveW[w.Key] = true
	}
	for _, w := range t.Writes {
		if !haveW[w.Key] {
			haveW[w.Key] = true
			p.Writes = append(p.Writes, w)
		}
	}
	haveC := make(map[string]bool, len(p.Conds))
	for _, c := range p.Conds {
		haveC[c.Key] = true
	}
	for _, c := range t.Conds {
		if !haveC[c.Key] {
			haveC[c.Key] = true
			p.Conds = append(p.Conds, c)
		}
	}
}

// subPortion extracts the slice of p covering keys, for migration to the
// keys' new owner.
func (p *txnPortion) subPortion(keys []string) *txnPortion {
	in := make(map[string]bool, len(keys))
	for _, k := range keys {
		in[k] = true
	}
	sub := &txnPortion{TxnID: p.TxnID, HomeKey: p.HomeKey, AllKeys: p.AllKeys, State: p.State}
	for i, k := range p.Reads {
		if !in[k] {
			continue
		}
		sub.Reads = append(sub.Reads, k)
		var v []byte
		var f bool
		if i < len(p.Values) {
			v = p.Values[i]
		}
		if i < len(p.Found) {
			f = p.Found[i]
		}
		sub.Values = append(sub.Values, v)
		sub.Found = append(sub.Found, f)
	}
	for _, w := range p.Writes {
		if in[w.Key] {
			sub.Writes = append(sub.Writes, w)
		}
	}
	for _, c := range p.Conds {
		if in[c.Key] {
			sub.Conds = append(sub.Conds, c)
		}
	}
	return sub
}

// mapSM is the per-shard replicated state machine: the key-value items, a
// bounded FIFO window of command results, and the routing table the shard
// operates under. Apply is deterministic; shared serialises all access.
type mapSM struct {
	items   map[string][]byte
	results map[uint64]result
	order   []uint64 // result ids, oldest first, for deterministic eviction
	window  int
	// resultSums/dedupSum maintain the audit digest of the result window
	// incrementally: per-entry folds (see resultSum in audit.go) combined
	// with a wrapping sum, added on insert and subtracted on eviction, so
	// digesting the window is O(1) instead of a 64Ki-entry walk per audit.
	// Derived from results — rebuilt on restore, never snapshotted.
	resultSums map[uint64]uint64
	dedupSum   uint64

	// Transaction state (replicated): portions keyed by txn id, the FIFO
	// eviction queue of RESOLVED portion ids (prepared portions never
	// evict), and the prepare locks derived from the prepared portions.
	txns     map[uint64]*txnPortion
	txnOrder []uint64
	locks    map[string]uint64 // key -> txn id holding its prepare lock

	// lockSeen is node-local (never replicated): when this replica last saw
	// each prepared portion, feeding the in-doubt recovery janitor's age
	// check. Stamped at prepare apply, restore, and import.
	lockSeen map[uint64]time.Time

	// Identity (constructor-set, not part of the replicated state: every
	// replica of one shard is built with the same values). initRouting is
	// the constructor's routing table, kept so Restore(nil) can reset to
	// the same state a fresh replica boots with.
	store       string
	shard       int
	initRouting Routing
	// onRouting, when non-nil, is nudged after any apply or restore that
	// changed routing or pending — the hook the hosting Store uses to keep
	// its node-local routing view current. It runs under the replica lock
	// and must not call back into the replica.
	onRouting func(shard int, cur Routing, pending Routing, hasPending bool)

	// routing is the epoch table this shard currently serves under;
	// pending, when non-nil, is the next table a migrate-begin announced
	// (the shard is mid-handoff: keys moving away are frozen). Both are
	// replicated state, changed only by sequenced migration commands.
	routing Routing
	pending *Routing
	// curRing/pendRing are derived from routing/pending (deterministic
	// function of the replicated state; rebuilt on restore).
	curRing  *ring
	pendRing *ring

	// Observability (node-local, never replicated; nil = no-op). tracer
	// stamps "applied@seq" spans for sampled command ids, flight records
	// migrate phase transitions; seq is the sequence number of the command
	// currently applying, set by ApplySeq for the duration of one Apply.
	tracer *obs.Tracer
	flight *obs.Recorder
	seq    uint32
	// onAudit, when non-nil, receives the digest this replica computed for
	// each applied audit command (see audit.go). Node-local like onRouting:
	// it runs under the replica lock and must not call back into replicas.
	onAudit func(shard int, d obs.Digest)
}

var _ shared.StateMachine = (*mapSM)(nil)
var _ shared.SeqApplier = (*mapSM)(nil)

func newMapSM(store string, shard int, rt Routing, window int, onRouting func(int, Routing, Routing, bool)) *mapSM {
	if window <= 0 {
		window = defaultResultWindow
	}
	s := &mapSM{
		items:       make(map[string][]byte),
		results:     make(map[uint64]result),
		resultSums:  make(map[uint64]uint64),
		window:      window,
		txns:        make(map[uint64]*txnPortion),
		locks:       make(map[string]uint64),
		lockSeen:    make(map[uint64]time.Time),
		store:       store,
		shard:       shard,
		initRouting: rt,
		onRouting:   onRouting,
		routing:     rt,
	}
	if rt.Shards > 0 {
		s.curRing = rt.ring(store)
	}
	return s
}

func (s *mapSM) setResult(id uint64, r result) {
	if _, dup := s.results[id]; !dup {
		s.order = append(s.order, id)
	} else {
		s.dedupSum -= s.resultSums[id]
	}
	s.results[id] = r
	h := resultSum(id, r)
	s.resultSums[id] = h
	s.dedupSum += h
	for len(s.order) > s.window {
		old := s.order[0]
		s.dedupSum -= s.resultSums[old]
		delete(s.resultSums, old)
		delete(s.results, old)
		s.order = s.order[1:]
	}
}

// serves reports whether this shard serves key at this point in the total
// order: the key must be owned under the current table AND not be mid-move
// under a pending one. A key moving away is frozen from migrate-begin until
// this shard's migrate-commit — reads too, so a moved key is never served
// stale from the source while the target may already have accepted a newer
// write (linearizability across the epoch flip).
func (s *mapSM) serves(key string) bool {
	if s.curRing == nil {
		return true // no routing installed: single-table legacy shard
	}
	if s.curRing.shard(key) != s.shard {
		return false
	}
	if s.pendRing != nil && s.pendRing.shard(key) != s.shard {
		return false
	}
	return true
}

// notifyRouting nudges the hosting store after a routing/pending change.
func (s *mapSM) notifyRouting() {
	if s.onRouting == nil {
		return
	}
	var pend Routing
	if s.pending != nil {
		pend = *s.pending
	}
	s.onRouting(s.shard, s.routing, pend, s.pending != nil)
}

// ApplySeq is Apply with the command's sequence number alongside — the
// shared.SeqApplier extension. The sequence number is not state: it only
// feeds the "applied@seq" trace span for sampled command ids.
func (s *mapSM) ApplySeq(seq uint32, cmd []byte) {
	s.seq = seq
	s.Apply(cmd)
	s.seq = 0
}

// Apply executes one committed command. Malformed commands are ignored (a
// byzantine client must not be able to diverge or crash the replicas), and a
// command whose id already has a real result is not re-executed: clients
// retry across replica swaps and routing epochs, and a retried CAS must not
// observe its own first execution. Moved results do not suppress the retry —
// the command never executed, and the total order decides afresh whether the
// shard serves the key by then.
func (s *mapSM) Apply(cmd []byte) {
	c, err := decodeCommand(cmd)
	if err != nil {
		return
	}
	if prev, done := s.results[c.id]; done && !prev.Moved {
		s.tracer.Addf(c.id, "dedup hit at shard %d (seq %d)", s.shard, s.seq)
		return
	}
	s.tracer.Addf(c.id, "applied@seq %d op=%d shard=%d", s.seq, c.op, s.shard)
	switch c.op {
	case opPut:
		if !s.serves(c.key) || s.locked(c.key) {
			s.setResult(c.id, result{Moved: true})
			return
		}
		s.items[c.key] = c.val
		s.setResult(c.id, result{OK: true, Key: c.key})
	case opDelete:
		if !s.serves(c.key) || s.locked(c.key) {
			s.setResult(c.id, result{Moved: true})
			return
		}
		_, existed := s.items[c.key]
		delete(s.items, c.key)
		s.setResult(c.id, result{OK: existed, Key: c.key})
	case opCAS:
		if !s.serves(c.key) || s.locked(c.key) {
			s.setResult(c.id, result{Moved: true})
			return
		}
		cur, present := s.items[c.key]
		ok := present == c.expectPresent && (!present || string(cur) == string(c.expect))
		if ok {
			s.items[c.key] = c.val
		}
		s.setResult(c.id, result{OK: ok, Key: c.key})
	case opGet:
		for _, k := range c.keys {
			if !s.serves(k) || s.locked(k) {
				s.setResult(c.id, result{Moved: true})
				return
			}
		}
		r := result{
			OK:     true,
			Values: make([][]byte, len(c.keys)),
			Found:  make([]bool, len(c.keys)),
		}
		for i, k := range c.keys {
			if v, ok := s.items[k]; ok {
				r.Values[i] = v
				r.Found[i] = true
			}
		}
		s.setResult(c.id, r)
	case opMigrateBegin:
		s.applyMigrateBegin(c)
	case opMigrateCommit:
		s.applyMigrateCommit(c)
	case opMigrateAbort:
		s.applyMigrateAbort(c)
	case opMigrateImport:
		s.applyMigrateImport(c)
	case opTxnPrepare:
		s.applyTxnPrepare(c)
	case opTxnResolve:
		s.applyTxnResolve(c)
	case opAudit:
		s.applyAudit(c)
	}
}

// locked reports whether key is held by a prepared transaction. Ordinary
// commands on a locked key answer Moved (not executed, retried by the
// client) — a write slipping between a transaction's prepare and its commit
// would break the transaction's atomicity (its conditions were checked and
// its reads captured at prepare; its writes land at resolve).
func (s *mapSM) locked(key string) bool {
	_, held := s.locks[key]
	return held
}

// touchLock stamps the node-local last-seen time for a prepared portion.
func (s *mapSM) touchLock(txnID uint64) {
	s.lockSeen[txnID] = time.Now()
}

// txnPrepareResultFor renders a prepare answer from a portion, aligning the
// captured read values to the REQUESTED read set (a merged or migrated
// portion may hold a superset).
func (s *mapSM) txnPrepareResultFor(p *txnPortion, reads []string) result {
	r := result{TxnState: p.State, OK: p.State == txnStatePrepared || p.State == txnStateCommitted}
	if len(reads) == 0 {
		return r
	}
	idx := make(map[string]int, len(p.Reads))
	for i, k := range p.Reads {
		idx[k] = i
	}
	r.Values = make([][]byte, len(reads))
	r.Found = make([]bool, len(reads))
	for i, k := range reads {
		if j, ok := idx[k]; ok {
			if j < len(p.Values) {
				r.Values[i] = p.Values[j]
			}
			if j < len(p.Found) {
				r.Found[i] = p.Found[j]
			}
		}
	}
	return r
}

// applyTxnPrepare locks this shard's slice of a transaction and captures its
// reads, all at one position in the total order. Prepares are idempotent and
// accretive: a re-drive after a routing flip may split the same attempt
// along different shard boundaries, so a request against an existing
// prepared portion merges its ops in (validating only the keys it adds)
// rather than demanding byte equality. A resolved portion answers its
// decision — a late prepare must never relock after the outcome.
func (s *mapSM) applyTxnPrepare(c command) {
	p := s.txns[c.txnID]
	if p != nil && p.State != txnStatePrepared {
		s.setResult(c.id, s.txnPrepareResultFor(p, c.keys))
		return
	}
	resident := make(map[string]bool)
	if p != nil {
		for _, k := range p.localKeys() {
			resident[k] = true
		}
	}
	var fresh []string
	seen := make(map[string]bool)
	addFresh := func(k string) {
		if !resident[k] && !seen[k] {
			seen[k] = true
			fresh = append(fresh, k)
		}
	}
	for _, k := range c.keys {
		addFresh(k)
	}
	for _, w := range c.writes {
		addFresh(w.Key)
	}
	for _, cc := range c.conds {
		addFresh(cc.Key)
	}
	for _, k := range fresh {
		if !s.serves(k) {
			s.setResult(c.id, result{Moved: true})
			return
		}
	}
	for _, k := range fresh {
		if owner, held := s.locks[k]; held && owner != c.txnID {
			s.setResult(c.id, result{Conflict: true})
			return
		}
	}
	// Conditions for already-resident keys were checked when they first
	// prepared and their values cannot have changed since (the lock blocks
	// writes), so re-evaluating everything against items is equivalent.
	for _, cc := range c.conds {
		cur, present := s.items[cc.Key]
		if present != cc.ExpectPresent || (present && !bytes.Equal(cur, cc.Expect)) {
			s.setResult(c.id, result{CondFailed: true})
			return
		}
	}
	if p == nil {
		p = &txnPortion{TxnID: c.txnID, HomeKey: c.homeKey, AllKeys: c.allKeys, State: txnStatePrepared}
		s.txns[c.txnID] = p
		s.flight.Recordf(s.flightTag(), "txn %016x prepared: %d reads %d writes %d conds",
			c.txnID, len(c.keys), len(c.writes), len(c.conds))
	}
	haveRead := make(map[string]bool, len(p.Reads))
	for _, k := range p.Reads {
		haveRead[k] = true
	}
	for _, k := range c.keys {
		if haveRead[k] {
			continue
		}
		haveRead[k] = true
		p.Reads = append(p.Reads, k)
		v, found := s.items[k]
		if found {
			p.Values = append(p.Values, append([]byte(nil), v...))
		} else {
			p.Values = append(p.Values, nil)
		}
		p.Found = append(p.Found, found)
	}
	p.mergeOps(&txnPortion{Writes: c.writes, Conds: c.conds})
	for _, k := range fresh {
		s.locks[k] = c.txnID
	}
	s.touchLock(c.txnID)
	s.setResult(c.id, s.txnPrepareResultFor(p, c.keys))
}

// resolvePortion applies the decision to a prepared portion: commit lands
// the held-back writes, abort discards them; either way the locks clear and
// the portion becomes a tombstone (payloads trimmed, reads kept for
// idempotent re-answers).
func (s *mapSM) resolvePortion(p *txnPortion, commit bool) {
	if p.State != txnStatePrepared {
		return
	}
	for _, k := range p.localKeys() {
		if s.locks[k] == p.TxnID {
			delete(s.locks, k)
		}
	}
	if commit {
		for _, w := range p.Writes {
			if w.Delete {
				delete(s.items, w.Key)
			} else {
				s.items[w.Key] = w.Val
			}
		}
		p.State = txnStateCommitted
	} else {
		p.State = txnStateAborted
	}
	p.Writes = nil
	p.Conds = nil
	delete(s.lockSeen, p.TxnID)
	s.txnOrder = append(s.txnOrder, p.TxnID)
	s.evictTxns()
	s.flight.Recordf(s.flightTag(), "txn %016x resolved: state=%d", p.TxnID, p.State)
}

// applyTxnResolve applies a commit/abort decision to this shard's portion.
// The home shard (owner of HomeKey) arbitrates: the first resolve to
// sequence against its prepared portion fixes the transaction's outcome,
// and every later resolve or prepare re-answers it. A portion whose keys
// are frozen mid-reshard answers Moved — the portion migrates with its keys
// and the decision chases it to the new owner, which is what guarantees a
// reshard serializes entirely before or after the commit.
func (s *mapSM) applyTxnResolve(c command) {
	if p := s.txns[c.txnID]; p != nil {
		if p.State == txnStatePrepared {
			for _, k := range p.localKeys() {
				if !s.serves(k) {
					s.setResult(c.id, result{Moved: true})
					return
				}
			}
			s.resolvePortion(p, c.txnCommit)
		}
		s.setResult(c.id, result{OK: p.State == txnStateCommitted, TxnState: p.State})
		return
	}
	// No portion: this shard never saw the prepare, or already evicted the
	// tombstone. It must at least own one of the transaction's keys —
	// otherwise the decision belongs elsewhere (stale routing) and the
	// caller re-resolves.
	owned := s.curRing == nil
	for _, k := range c.allKeys {
		if owned {
			break
		}
		owned = s.curRing.shard(k) == s.shard
	}
	if !owned {
		s.setResult(c.id, result{Moved: true})
		return
	}
	if c.txnCommit {
		// Presumed resolved: a commit decision exists only if the prepare
		// phase finished everywhere, so re-answering success is safe even
		// past the tombstone horizon.
		s.setResult(c.id, result{OK: true, TxnState: txnStateCommitted})
		return
	}
	// Abort with no portion: plant a fence so a straggling prepare re-drive
	// cannot lock keys after the decision (presumed abort).
	f := &txnPortion{TxnID: c.txnID, HomeKey: c.homeKey, AllKeys: c.allKeys, State: txnStateAborted}
	s.txns[c.txnID] = f
	s.txnOrder = append(s.txnOrder, c.txnID)
	s.evictTxns()
	s.flight.Recordf(s.flightTag(), "txn %016x fenced aborted", c.txnID)
	s.setResult(c.id, result{TxnState: txnStateAborted})
}

// evictTxns trims resolved portions past the tombstone window.
func (s *mapSM) evictTxns() {
	for len(s.txnOrder) > txnTombstoneWindow {
		id := s.txnOrder[0]
		s.txnOrder = s.txnOrder[1:]
		if p, ok := s.txns[id]; ok && p.State != txnStatePrepared {
			delete(s.txns, id)
		}
	}
}

// applyMigrateBegin installs the pending routing table, freezing the key
// ranges that move away from this shard. Begins are idempotent, and a begin
// for an epoch the shard already reached (or passed) is a no-op — the retry
// of a completed handoff must not re-freeze anything.
func (s *mapSM) applyMigrateBegin(c command) {
	ok := false
	switch {
	case c.routing.Epoch <= s.routing.Epoch:
		// Already at (or past) that epoch: the handoff completed.
		ok = true
	case s.pending != nil && *s.pending == c.routing:
		ok = true // duplicate begin of the handoff in progress
	case s.pending == nil && c.routing.Epoch == s.routing.Epoch+1:
		rt := c.routing
		s.pending = &rt
		s.pendRing = rt.ring(s.store)
		ok = true
		s.flight.Recordf(s.flightTag(), "migrate begin: epoch %d -> %d (%d -> %d shards)",
			s.routing.Epoch, rt.Epoch, s.routing.Shards, rt.Shards)
		s.notifyRouting()
	}
	s.setResult(c.id, result{OK: ok})
}

// flightTag labels this shard's flight-recorder events.
func (s *mapSM) flightTag() string {
	return fmt.Sprintf("kv/%s/%d", s.store, s.shard)
}

// applyMigrateCommit flips the shard to the new routing table: moved keys
// (exported to their new owners before the commit was sequenced) are
// deleted, the freeze lifts, and from this position in the total order the
// shard serves exactly the ranges the new table assigns it.
func (s *mapSM) applyMigrateCommit(c command) {
	if c.routing.Epoch <= s.routing.Epoch {
		s.setResult(c.id, result{OK: true}) // duplicate commit
		return
	}
	s.routing = c.routing
	s.curRing = c.routing.ring(s.store)
	s.pending = nil
	s.pendRing = nil
	dropped := 0
	for k := range s.items {
		if s.curRing.shard(k) != s.shard {
			delete(s.items, k)
			dropped++
		}
	}
	// Transaction portions follow their keys: shrink each to the keys this
	// shard still owns (the moved slices were exported as sub-portions
	// before the commit sequenced) and drop portions with nothing left
	// here. Locks are rederived from what remains.
	for id, p := range s.txns {
		if p.State == txnStatePrepared {
			var keep []string
			for _, k := range p.localKeys() {
				if s.curRing.shard(k) == s.shard {
					keep = append(keep, k)
				}
			}
			if len(keep) == 0 {
				delete(s.txns, id)
				delete(s.lockSeen, id)
				continue
			}
			s.txns[id] = p.subPortion(keep)
			continue
		}
		anyOwned := false
		for _, k := range p.AllKeys {
			if s.curRing.shard(k) == s.shard {
				anyOwned = true
				break
			}
		}
		if !anyOwned {
			delete(s.txns, id) // txnOrder entry left behind; evict tolerates it
		}
	}
	s.locks = make(map[string]uint64)
	for id, p := range s.txns {
		if p.State == txnStatePrepared {
			for _, k := range p.localKeys() {
				s.locks[k] = id
			}
		}
	}
	s.flight.Recordf(s.flightTag(), "migrate commit: epoch %d, %d moved keys dropped, %d kept",
		c.routing.Epoch, dropped, len(s.items))
	s.setResult(c.id, result{OK: true})
	s.notifyRouting()
}

// applyMigrateAbort rolls a pending handoff back: the freeze lifts and the
// shard keeps serving under its current table. Only the exact pending epoch
// can be aborted, and never after the shard committed it.
func (s *mapSM) applyMigrateAbort(c command) {
	ok := false
	if s.pending != nil && s.pending.Epoch == c.routing.Epoch {
		s.pending = nil
		s.pendRing = nil
		ok = true
		s.flight.Recordf(s.flightTag(), "migrate abort: epoch %d rolled back, serving epoch %d",
			c.routing.Epoch, s.routing.Epoch)
		s.notifyRouting()
	}
	s.setResult(c.id, result{OK: ok})
}

// applyMigrateImport installs a chunk of keys (and the dedup results that
// travel with them) streamed out of a source shard. Imports are epoch-gated:
// they apply only while this shard has not yet committed the target epoch —
// after the flip clients may write the moved ranges here, and a late
// (re-driven) import must never overwrite a newer client write with the
// source's frozen value.
func (s *mapSM) applyMigrateImport(c command) {
	if s.routing.Epoch >= c.routing.Epoch {
		s.setResult(c.id, result{Moved: true}) // late chunk: already flipped
		return
	}
	for _, p := range c.pairs {
		s.items[p.Key] = p.Val
	}
	for _, r := range c.impResults {
		s.setResult(r.ID, result{OK: r.OK, Key: r.Key})
	}
	for _, t := range c.txns {
		s.importPortion(t)
	}
	s.setResult(c.id, result{OK: true})
}

// importPortion merges one migrated transaction sub-portion into this
// shard's state. The interesting cases arise when this shard already holds
// a portion for the same transaction (it was a participant too, or earlier
// chunks arrived first): the resident and incoming states must converge on
// one outcome with every write applied exactly once.
func (s *mapSM) importPortion(t *txnPortion) {
	ex, ok := s.txns[t.TxnID]
	if !ok {
		cp := t.clone()
		s.txns[t.TxnID] = cp
		if cp.State == txnStatePrepared {
			for _, k := range cp.localKeys() {
				s.locks[k] = cp.TxnID
			}
			s.touchLock(cp.TxnID)
		} else {
			cp.Writes = nil
			cp.Conds = nil
			s.txnOrder = append(s.txnOrder, cp.TxnID)
			s.evictTxns()
		}
		return
	}
	switch {
	case ex.State == txnStatePrepared && t.State == txnStatePrepared:
		ex.mergeOps(t)
		for _, k := range t.localKeys() {
			s.locks[k] = ex.TxnID
		}
		s.touchLock(ex.TxnID)
	case ex.State == txnStatePrepared:
		// The transaction resolved elsewhere while this slice was in
		// flight: land the decision on the resident portion too.
		s.resolvePortion(ex, t.State == txnStateCommitted)
		ex.mergeReads(t)
	case ex.State == txnStateCommitted && t.State == txnStatePrepared:
		// Resident tombstone says committed, but the incoming keys' writes
		// were still held back on their source when it froze: apply them
		// here, exactly once — this is the only place they can ever land.
		for _, w := range t.Writes {
			if w.Delete {
				delete(s.items, w.Key)
			} else {
				s.items[w.Key] = w.Val
			}
		}
		ex.mergeReads(t)
	default:
		// Aborted + prepared (writes discarded), or both resolved.
		ex.mergeReads(t)
	}
}

// snapshotState is the wire form of a shard snapshot. Results travel in FIFO
// order so the joiner rebuilds the identical eviction queue.
type snapshotState struct {
	Items    map[string][]byte `json:"items"`
	Results  []savedResult     `json:"results"`
	Window   int               `json:"window"`
	Routing  Routing           `json:"routing"`
	Pending  *Routing          `json:"pending,omitempty"`
	Txns     []*txnPortion     `json:"txns,omitempty"`
	TxnOrder []uint64          `json:"txnOrder,omitempty"`
}

type savedResult struct {
	ID uint64 `json:"id"`
	result
}

// Snapshot serialises the shard for atomic state transfer to a joiner.
func (s *mapSM) Snapshot() ([]byte, error) {
	st := snapshotState{
		Items:   s.items,
		Results: make([]savedResult, 0, len(s.order)),
		Window:  s.window,
		Routing: s.routing,
		Pending: s.pending,
	}
	for _, id := range s.order {
		st.Results = append(st.Results, savedResult{ID: id, result: s.results[id]})
	}
	txnIDs := make([]uint64, 0, len(s.txns))
	for id := range s.txns {
		txnIDs = append(txnIDs, id)
	}
	sort.Slice(txnIDs, func(i, j int) bool { return txnIDs[i] < txnIDs[j] })
	for _, id := range txnIDs {
		st.Txns = append(st.Txns, s.txns[id])
	}
	st.TxnOrder = s.txnOrder
	return json.Marshal(st)
}

// Restore replaces the shard state with a snapshot. A nil snapshot resets
// the shard to its zero state — the wal recovery path uses this when every
// digest-stamped checkpoint was refused and replay must start from scratch
// (see wal.Log.RecoverVerified).
func (s *mapSM) Restore(snap []byte) error {
	if snap == nil {
		s.items = make(map[string][]byte)
		s.results = make(map[uint64]result)
		s.resultSums = make(map[uint64]uint64)
		s.dedupSum = 0
		s.order = nil
		s.txns = make(map[uint64]*txnPortion)
		s.txnOrder = nil
		s.locks = make(map[string]uint64)
		s.lockSeen = make(map[uint64]time.Time)
		s.routing = s.initRouting
		s.curRing = nil
		if s.routing.Shards > 0 {
			s.curRing = s.routing.ring(s.store)
		}
		s.pending = nil
		s.pendRing = nil
		s.notifyRouting()
		return nil
	}
	var st snapshotState
	if err := json.Unmarshal(snap, &st); err != nil {
		return err
	}
	s.items = st.Items
	if s.items == nil {
		s.items = make(map[string][]byte)
	}
	s.results = make(map[uint64]result, len(st.Results))
	s.resultSums = make(map[uint64]uint64, len(st.Results))
	s.dedupSum = 0
	s.order = make([]uint64, 0, len(st.Results))
	for _, r := range st.Results {
		s.order = append(s.order, r.ID)
		s.results[r.ID] = r.result
		h := resultSum(r.ID, r.result)
		s.resultSums[r.ID] = h
		s.dedupSum += h
	}
	if st.Window > 0 {
		s.window = st.Window
	}
	if st.Routing.Shards > 0 {
		s.routing = st.Routing
		s.curRing = st.Routing.ring(s.store)
	}
	s.pending = st.Pending
	s.pendRing = nil
	if s.pending != nil {
		s.pendRing = s.pending.ring(s.store)
	}
	s.txns = make(map[uint64]*txnPortion, len(st.Txns))
	s.locks = make(map[string]uint64)
	s.lockSeen = make(map[uint64]time.Time)
	for _, p := range st.Txns {
		s.txns[p.TxnID] = p
		if p.State == txnStatePrepared {
			for _, k := range p.localKeys() {
				s.locks[k] = p.TxnID
			}
			s.touchLock(p.TxnID)
		}
	}
	s.txnOrder = st.TxnOrder
	s.notifyRouting()
	return nil
}

// migrationView is a consistent read of the shard's routing state, for the
// handoff coordinator and the resume path.
type migrationView struct {
	Routing Routing
	Pending *Routing
	Keys    int
}

// importChunk is one migrate-import command's cargo: moved key/value pairs
// plus the dedup results whose keys move with them (tombstoned deletes
// included — their result must follow the key even though the item is gone)
// and the transaction sub-portions covering the moved keys.
type importChunk struct {
	Pairs   []Pair
	Results []importResult
	Txns    []*txnPortion
}

// importResult is one migrated dedup-window entry.
type importResult struct {
	ID  uint64
	OK  bool
	Key string
}

// exportChunks enumerates everything this shard loses under next — items
// and keyed results — grouped by destination shard and chunked to stay
// under maxBytes per chunk (at least one element per chunk). Caller must
// hold the replica lock (Read).
func (s *mapSM) exportChunks(next *ring, maxBytes int) map[int][]*importChunk {
	out := make(map[int][]*importChunk)
	size := make(map[int]int)
	chunkFor := func(dest, need int) *importChunk {
		chunks := out[dest]
		if len(chunks) == 0 || size[dest]+need > maxBytes {
			chunks = append(chunks, &importChunk{})
			out[dest] = chunks
			size[dest] = 0
		}
		size[dest] += need
		return chunks[len(chunks)-1]
	}
	for k, v := range s.items {
		dest := next.shard(k)
		if dest == s.shard {
			continue
		}
		ch := chunkFor(dest, len(k)+len(v)+16)
		ch.Pairs = append(ch.Pairs, Pair{Key: k, Val: append([]byte(nil), v...)})
	}
	for _, id := range s.order {
		r := s.results[id]
		if r.Key == "" {
			continue // reads and migration markers stay behind
		}
		dest := next.shard(r.Key)
		if dest == s.shard {
			continue
		}
		ch := chunkFor(dest, len(r.Key)+16)
		ch.Results = append(ch.Results, importResult{ID: id, OK: r.OK, Key: r.Key})
	}
	// Transaction portions follow their keys: a prepared portion's slice
	// moves wherever its locked keys go (the held-back writes included, so
	// an in-flight transaction survives the reshard); a tombstone's slice
	// follows its AllKeys so re-drives keep finding the decision.
	for _, p := range s.txns {
		var keys []string
		if p.State == txnStatePrepared {
			keys = p.localKeys()
		} else {
			for _, k := range p.AllKeys {
				if s.curRing == nil || s.curRing.shard(k) == s.shard {
					keys = append(keys, k)
				}
			}
		}
		byDest := make(map[int][]string)
		for _, k := range keys {
			if d := next.shard(k); d != s.shard {
				byDest[d] = append(byDest[d], k)
			}
		}
		for dest, moved := range byDest {
			sub := p.subPortion(moved)
			need := 64
			for _, w := range sub.Writes {
				need += len(w.Key) + len(w.Val) + 8
			}
			for i, k := range sub.Reads {
				need += len(k) + 8
				if i < len(sub.Values) {
					need += len(sub.Values[i])
				}
			}
			ch := chunkFor(dest, need)
			ch.Txns = append(ch.Txns, sub)
		}
	}
	return out
}
