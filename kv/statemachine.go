package kv

import (
	"encoding/json"

	"amoeba/shared"
)

// defaultResultWindow bounds the replicated result table. A result is
// evicted after this many further commands apply, so a client has that much
// slack between its command applying locally and its Wait observing the
// result — far more than any realistic scheduling delay.
const defaultResultWindow = 65536

// result is the replicated outcome of one command, keyed by command id. It
// is part of the state machine (every replica computes the identical table),
// which is what lets a client read its CAS outcome or sequenced-get values
// from its local replica.
type result struct {
	// OK reports mutation success: CAS swapped, Delete found the key.
	OK bool `json:"ok"`
	// Values and Found carry sequenced-read results, aligned with the
	// command's key list.
	Values [][]byte `json:"values,omitempty"`
	Found  []bool   `json:"found,omitempty"`
}

// mapSM is the per-shard replicated state machine: the key-value items plus
// a bounded FIFO window of command results. Apply is deterministic; shared
// serialises all access.
type mapSM struct {
	items   map[string][]byte
	results map[uint64]result
	order   []uint64 // result ids, oldest first, for deterministic eviction
	window  int
}

var _ shared.StateMachine = (*mapSM)(nil)

func newMapSM(window int) *mapSM {
	if window <= 0 {
		window = defaultResultWindow
	}
	return &mapSM{
		items:   make(map[string][]byte),
		results: make(map[uint64]result),
		window:  window,
	}
}

func (s *mapSM) setResult(id uint64, r result) {
	if _, dup := s.results[id]; !dup {
		s.order = append(s.order, id)
	}
	s.results[id] = r
	for len(s.order) > s.window {
		delete(s.results, s.order[0])
		s.order = s.order[1:]
	}
}

// Apply executes one committed command. Malformed commands are ignored (a
// byzantine client must not be able to diverge or crash the replicas), and a
// command whose id already has a result is not re-executed: clients retry
// across replica swaps, and a retried CAS must not observe its own first
// execution.
func (s *mapSM) Apply(cmd []byte) {
	c, err := decodeCommand(cmd)
	if err != nil {
		return
	}
	if _, done := s.results[c.id]; done {
		return
	}
	switch c.op {
	case opPut:
		s.items[c.key] = c.val
		s.setResult(c.id, result{OK: true})
	case opDelete:
		_, existed := s.items[c.key]
		delete(s.items, c.key)
		s.setResult(c.id, result{OK: existed})
	case opCAS:
		cur, present := s.items[c.key]
		ok := present == c.expectPresent && (!present || string(cur) == string(c.expect))
		if ok {
			s.items[c.key] = c.val
		}
		s.setResult(c.id, result{OK: ok})
	case opGet:
		r := result{
			OK:     true,
			Values: make([][]byte, len(c.keys)),
			Found:  make([]bool, len(c.keys)),
		}
		for i, k := range c.keys {
			if v, ok := s.items[k]; ok {
				r.Values[i] = v
				r.Found[i] = true
			}
		}
		s.setResult(c.id, r)
	}
}

// snapshotState is the wire form of a shard snapshot. Results travel in FIFO
// order so the joiner rebuilds the identical eviction queue.
type snapshotState struct {
	Items   map[string][]byte `json:"items"`
	Results []savedResult     `json:"results"`
	Window  int               `json:"window"`
}

type savedResult struct {
	ID uint64 `json:"id"`
	result
}

// Snapshot serialises the shard for atomic state transfer to a joiner.
func (s *mapSM) Snapshot() ([]byte, error) {
	st := snapshotState{
		Items:   s.items,
		Results: make([]savedResult, 0, len(s.order)),
		Window:  s.window,
	}
	for _, id := range s.order {
		st.Results = append(st.Results, savedResult{ID: id, result: s.results[id]})
	}
	return json.Marshal(st)
}

// Restore replaces the shard state with a snapshot.
func (s *mapSM) Restore(snap []byte) error {
	var st snapshotState
	if err := json.Unmarshal(snap, &st); err != nil {
		return err
	}
	s.items = st.Items
	if s.items == nil {
		s.items = make(map[string][]byte)
	}
	s.results = make(map[uint64]result, len(st.Results))
	s.order = make([]uint64, 0, len(st.Results))
	for _, r := range st.Results {
		s.order = append(s.order, r.ID)
		s.results[r.ID] = r.result
	}
	if st.Window > 0 {
		s.window = st.Window
	}
	return nil
}
