package kv

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"amoeba"
)

// This file measures cross-shard transactions: what sequenced 2PC costs as
// the participant count grows, against the single-shard batch write the
// store could use when atomicity across shards is not needed. Each txn case
// commits W writes spread over W distinct shards (so participants = writes);
// its paired baseline commits the same W writes as one BatchPut on one
// shard — one sequenced command instead of prepare+resolve per participant.
// Like the proxied, durable, and reshard benches it runs on the live
// in-memory fabric in real time, so absolute ops/s vary by host; the
// txn-vs-batch RATIO at each width is the measurement. cmd/amoeba-bench
// renders it as the "txn" experiment and CI commits it as BENCH_txn.json.

// TxnBenchCase is one measured configuration.
type TxnBenchCase struct {
	// Name is "txn" or "batch"; Participants the shards one commit spans
	// (always 1 for batch), Writes the keys it writes.
	Name         string `json:"name"`
	Participants int    `json:"participants"`
	Writes       int    `json:"writes"`

	Ops       uint64  `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	MeanMs    float64 `json:"mean_ms"`
	P99Ms     float64 `json:"p99_ms"`
	// VsBatch is this case's throughput over its same-width batch baseline
	// (1.0 for the baselines themselves).
	VsBatch float64 `json:"vs_batch"`
}

// TxnBenchResult is the machine-readable result for BENCH_txn.json.
type TxnBenchResult struct {
	Nodes   int            `json:"nodes"`
	Shards  int            `json:"shards"`
	Clients int            `json:"clients"`
	Cases   []TxnBenchCase `json:"cases"`
	// Conflicts counts internal txn attempt retries across the run (the
	// workers write disjoint keys, so this should stay 0 — nonzero means
	// the bench itself is contending).
	Conflicts uint64 `json:"conflicts"`
}

// MeasureTxn runs the 2PC-width measurement: committed txns/s and commit
// latency at 1, 2, and 4 participant shards, each against a single-shard
// batch of the same write count.
func MeasureTxn() (*TxnBenchResult, error) {
	const (
		nodes   = 4
		shards  = 4
		clients = 4
		window  = 700 * time.Millisecond
		name    = "txn-bench"
	)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	kernels := make([]*amoeba.Kernel, nodes)
	for i := range kernels {
		k, err := net.NewKernel(fmt.Sprintf("txn-node-%d", i))
		if err != nil {
			return nil, err
		}
		kernels[i] = k
	}
	stores, err := Bootstrap(ctx, kernels, name, Options{Shards: shards})
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()

	// Bucket generated keys by owning shard so a case can pick exactly the
	// shard spread it wants. Each worker owns one key per shard (reused
	// every iteration with fresh values), so concurrent commits never
	// conflict — the bench measures protocol cost, not lock contention.
	ring := Routing{Shards: shards, VNodes: defaultVirtualNodes}.ring(name)
	keysByShard := make([][]string, shards)
	for i := 0; len(keysByShard[0]) < clients+1 || len(keysByShard[1]) < clients ||
		len(keysByShard[2]) < clients || len(keysByShard[3]) < clients; i++ {
		k := fmt.Sprintf("txn-bench-%05d", i)
		s := ring.shard(k)
		keysByShard[s] = append(keysByShard[s], k)
	}

	// One long-lived client per worker; measurement runs reuse them.
	cls := make([]*Client, clients)
	for c := range cls {
		cls[c] = stores[c%nodes].NewClient()
	}
	defer func() {
		for _, cl := range cls {
			cl.Close()
		}
	}()

	measure := func(name string, participants, writes int,
		commit func(ctx context.Context, cl *Client, worker, iter int) error) (TxnBenchCase, error) {
		var (
			mu   sync.Mutex
			lats []time.Duration
			wg   sync.WaitGroup
			errc = make(chan error, clients)
		)
		// The window is a stop SIGNAL checked between iterations, not a
		// deadline on the operations: an in-flight commit finishes under the
		// parent ctx. Cancelling a txn mid-2PC would orphan its prepare, and
		// the locks it holds (until the janitor arbitrates) would stall the
		// next case's first ops on the same keys for seconds.
		// A short unmeasured warmup absorbs cold paths (route caches, first
		// allocations) and the tail of the previous case's load.
		for w := 0; w < clients; w++ {
			if err := commit(ctx, cls[w], w, -1); err != nil {
				return TxnBenchCase{}, fmt.Errorf("%s worker %d warmup: %w", name, w, err)
			}
		}
		runCtx, stop := context.WithTimeout(ctx, window)
		defer stop()
		start := time.Now()
		for w := 0; w < clients; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				var mine []time.Duration
				for i := 0; runCtx.Err() == nil; i++ {
					t0 := time.Now()
					if err := commit(ctx, cls[w], w, i); err != nil {
						errc <- fmt.Errorf("%s worker %d: %w", name, w, err)
						return
					}
					mine = append(mine, time.Since(t0))
				}
				mu.Lock()
				lats = append(lats, mine...)
				mu.Unlock()
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errc:
			return TxnBenchCase{}, err
		default:
		}
		c := TxnBenchCase{Name: name, Participants: participants, Writes: writes,
			Ops: uint64(len(lats))}
		if len(lats) == 0 {
			return c, fmt.Errorf("%s: no commits completed in the window", name)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, d := range lats {
			sum += d
		}
		c.OpsPerSec = float64(len(lats)) / elapsed.Seconds()
		c.MeanMs = float64((sum / time.Duration(len(lats))).Microseconds()) / 1000
		c.P99Ms = float64(lats[len(lats)*99/100].Microseconds()) / 1000
		return c, nil
	}

	val := func(worker, iter int) []byte { return []byte(fmt.Sprintf("w%d-i%d", worker, iter)) }
	res := &TxnBenchResult{Nodes: nodes, Shards: shards, Clients: clients}
	conflicts0 := txnConflictTotal(cls)
	for _, width := range []int{1, 2, 4} {
		width := width
		batch, err := measure("batch", 1, width,
			func(ctx context.Context, cl *Client, w, i int) error {
				// width keys, all on shard 0: worker w owns indices
				// [w*width, w*width+width) — pregenerated above only up to
				// clients+1 keys for shard 0, so take them modulo and offset
				// by worker to stay disjoint.
				pairs := make([]Pair, width)
				for j := range pairs {
					pairs[j] = Pair{Key: shardKey(keysByShard, 0, w, j, width), Val: val(w, i)}
				}
				return cl.BatchPut(ctx, pairs)
			})
		if err != nil {
			return nil, err
		}
		batch.VsBatch = 1
		txn, err := measure("txn", width, width,
			func(ctx context.Context, cl *Client, w, i int) error {
				writes := make([]TxnWrite, width)
				for j := range writes {
					writes[j] = TxnWrite{Key: keysByShard[j][w], Val: val(w, i)}
				}
				r, err := cl.Txn(ctx, TxnOp{Writes: writes})
				if err != nil {
					return err
				}
				if !r.Committed {
					return fmt.Errorf("unconditional txn aborted")
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
		if batch.OpsPerSec > 0 {
			txn.VsBatch = txn.OpsPerSec / batch.OpsPerSec
		}
		res.Cases = append(res.Cases, batch, txn)
	}
	res.Conflicts = txnConflictTotal(cls) - conflicts0

	// Sanity: the last iteration's writes are all readable via one snapshot.
	var keys []string
	for j := 0; j < shards; j++ {
		keys = append(keys, keysByShard[j][0])
	}
	snap, err := cls[0].MGet(ctx, keys...)
	if err != nil {
		return nil, fmt.Errorf("post-bench snapshot: %w", err)
	}
	for _, k := range keys {
		if _, ok := snap[k]; !ok {
			return nil, fmt.Errorf("post-bench snapshot missing %q", k)
		}
	}
	return res, nil
}

// shardKey picks worker w's j-th key (of width per worker) on the shard,
// wrapping modulo the bucket so the bench never indexes past what was
// generated. Wrapping can alias two workers onto one key only when the
// bucket is smaller than clients*width; the generator above sizes buckets
// past that for the widths measured.
func shardKey(byShard [][]string, shard, w, j, width int) string {
	b := byShard[shard]
	return b[(w*width+j)%len(b)]
}

// txnConflictTotal sums internal attempt retries across the bench clients.
func txnConflictTotal(cls []*Client) uint64 {
	var n uint64
	for _, cl := range cls {
		n += cl.txnConflicts.Load()
	}
	return n
}

// TxnJSON renders the measurement for BENCH_txn.json.
func TxnJSON(res *TxnBenchResult) ([]byte, error) {
	out := struct {
		Experiment string          `json:"experiment"`
		Unit       string          `json:"unit"`
		Note       string          `json:"note"`
		Result     *TxnBenchResult `json:"result"`
	}{
		Experiment: "txn",
		Unit:       "committed ops/s and per-commit latency, live in-memory fabric (host-dependent; compare each vs_batch ratio)",
		Note:       "sequenced 2PC at 1/2/4 participant shards vs a single-shard BatchPut of the same write count; disjoint keys, so conflicts must be 0",
		Result:     res,
	}
	return json.MarshalIndent(out, "", "  ")
}
