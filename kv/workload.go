package kv

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"amoeba"
	"amoeba/obs"
)

// LoadOptions configures a self-contained load run: an in-process store on a
// memory network, hammered by concurrent clients. This is the sharded
// workload behind `amoeba-bench -experiment sharded` and the load mode of
// cmd/amoeba-kv.
type LoadOptions struct {
	// Shards is the shard-group count (default 4).
	Shards int
	// Nodes is the node count (default 4). With Replication 0 every node
	// replicates every shard.
	Nodes int
	// Replication bounds the per-shard replica count (see
	// Options.Replication). When set (and Proxied is not), each load
	// client is pinned to one shard and runs on a node hosting it,
	// writing only that shard's keys — the access pattern of a
	// shard-aware production client.
	Replication int
	// Proxied runs the load through the service/proxy path instead:
	// every node starts a kv.Service, and each client holds nothing but
	// one node's address (kv.Dial, no ring), so every operation enters at
	// that node and reaches foreign shards via ForwardRequest — the
	// whole-keyspace-through-one-address access pattern. The report's
	// Forwarded counter shows the proxy actually being exercised.
	Proxied bool
	// Clients is the number of concurrent clients, spread round-robin
	// across nodes (default 2 per node).
	Clients int
	// Duration bounds the measured phase (default 1s).
	Duration time.Duration
	// ValueSize is the written value size in bytes (default 64).
	ValueSize int
	// Keys is the keyspace size (default 1024).
	Keys int
	// ReadFraction is the fraction of operations that are reads, 0 to 1
	// inclusive (0, the zero value, is a pure-write workload); the rest
	// are puts.
	ReadFraction float64
	// LocalReads makes the read fraction use LocalGet instead of
	// sequenced Get.
	LocalReads bool
	// Seed drives each client's key/op choice.
	Seed int64
	// AuditEvery enables the periodic sequenced state audit on every node
	// (see Options.AuditEvery); zero leaves it off.
	AuditEvery time.Duration
	// Group configures the shard groups.
	Group amoeba.GroupOptions
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Nodes <= 0 {
		o.Nodes = 4
	}
	if o.Clients <= 0 {
		o.Clients = 2 * o.Nodes
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.ValueSize <= 0 {
		o.ValueSize = 64
	}
	if o.Keys <= 0 {
		o.Keys = 1024
	}
	if o.ReadFraction < 0 || o.ReadFraction > 1 {
		o.ReadFraction = 0.2
	}
	return o
}

// LoadReport summarises one load run.
type LoadReport struct {
	Shards, Nodes, Clients int
	Ops                    uint64
	Errors                 uint64
	Elapsed                time.Duration

	// Batch amortisation across the shard sequencers during the run:
	// multi-message ordering batches, the messages they carried, and the
	// largest batch (see amoeba.GroupStats).
	OrderedBatches uint64
	BatchedMsgs    uint64
	MaxBatchMsgs   uint64

	// Proxy-path counters (Proxied runs): requests the node services
	// forwarded to an owning node, and operations that left their client
	// over RPC.
	Forwarded uint64
	RemoteOps uint64

	// Client-observed per-operation latency quantiles in nanoseconds
	// (power-of-two bucket upper bounds, exact to a factor of two).
	LatencyP50 uint64 `json:"latency_p50_ns"`
	LatencyP90 uint64 `json:"latency_p90_ns"`
	LatencyP99 uint64 `json:"latency_p99_ns"`
	LatencyMax uint64 `json:"latency_max_ns"`
}

// OpsPerSec is the aggregate throughput across all shards.
func (r LoadReport) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

func (r LoadReport) String() string {
	s := fmt.Sprintf("kv load: %d shards × %d nodes, %d clients: %d ops in %v = %.0f ops/s (%d errors); batches=%d",
		r.Shards, r.Nodes, r.Clients, r.Ops, r.Elapsed.Round(time.Millisecond), r.OpsPerSec(), r.Errors, r.OrderedBatches)
	if r.OrderedBatches > 0 {
		s += fmt.Sprintf(" avg=%.1f max=%d msgs",
			float64(r.BatchedMsgs)/float64(r.OrderedBatches), r.MaxBatchMsgs)
	}
	if r.RemoteOps > 0 || r.Forwarded > 0 {
		s += fmt.Sprintf("; proxied: remote=%d forwarded=%d", r.RemoteOps, r.Forwarded)
	}
	if r.LatencyP50 > 0 {
		s += fmt.Sprintf("; latency p50=%v p99=%v max=%v",
			time.Duration(r.LatencyP50).Round(time.Microsecond),
			time.Duration(r.LatencyP99).Round(time.Microsecond),
			time.Duration(r.LatencyMax).Round(time.Microsecond))
	}
	return s
}

// RunLoad builds a store and drives it, returning the aggregate throughput.
// Because each shard group has its own sequencer and Bootstrap spreads them
// across nodes, the reported ops/s grows with Shards (up to Nodes) — the
// multi-group scaling this package exists for.
func RunLoad(ctx context.Context, o LoadOptions) (LoadReport, error) {
	o = o.withDefaults()
	net := amoeba.NewMemoryNetwork()
	defer net.Close()

	kernels := make([]*amoeba.Kernel, o.Nodes)
	for i := range kernels {
		k, err := net.NewKernel(fmt.Sprintf("load-node-%d", i))
		if err != nil {
			return LoadReport{}, fmt.Errorf("kv: load kernel %d: %w", i, err)
		}
		kernels[i] = k
	}
	stores, err := Bootstrap(ctx, kernels, "loadgen", Options{
		Shards:      o.Shards,
		Replication: o.Replication,
		AuditEvery:  o.AuditEvery,
		Group:       o.Group,
	})
	if err != nil {
		return LoadReport{}, err
	}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	var svcs []*Service
	if o.Proxied {
		for _, s := range stores {
			svc, err := NewService(s)
			if err != nil {
				return LoadReport{}, fmt.Errorf("kv: load service: %w", err)
			}
			svcs = append(svcs, svc)
		}
		defer func() {
			for _, svc := range svcs {
				svc.Close()
			}
		}()
	}
	return driveLoad(ctx, stores, svcs, o)
}

// driveLoad runs the measured phase against an existing set of nodes.
func driveLoad(ctx context.Context, stores []*Store, svcs []*Service, o LoadOptions) (LoadReport, error) {
	o = o.withDefaults()
	var (
		ops, errs uint64
		wg        sync.WaitGroup
	)
	value := make([]byte, o.ValueSize)
	// latH captures client-observed per-op latency. When the run carries a
	// hub the histogram joins its registry (visible on the metrics endpoint
	// during the run); otherwise it is standalone and only feeds the report.
	latH := o.Group.Obs.Histogram("amoeba_kv_load_op_ns")
	if latH == nil {
		latH = obs.NewHistogram("amoeba_kv_load_op_ns")
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	start := time.Now()
	timer := time.AfterFunc(o.Duration, cancel)
	defer timer.Stop()

	// With bounded replication and no proxying, a client can only reach
	// shards its node hosts: pin each client to one shard, run it on that
	// shard's first host, and draw keys owned by that shard.
	var shardKeys [][]string
	if o.Replication > 0 && !o.Proxied {
		// Use the store's own ring so client pinning matches placement.
		shardKeys = make([][]string, o.Shards)
		need := o.Keys/o.Shards + 1
		for i, filled := 0, 0; filled < o.Shards; i++ {
			key := fmt.Sprintf("key-%06d", i)
			s := stores[0].ShardFor(key)
			if len(shardKeys[s]) >= need {
				continue
			}
			shardKeys[s] = append(shardKeys[s], key)
			if len(shardKeys[s]) == need {
				filled++
			}
		}
	}

	clients := make([]*Client, 0, o.Clients)
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	for i := 0; i < o.Clients; i++ {
		var (
			cl   *Client
			keys []string
		)
		switch {
		case o.Proxied:
			// Each client holds one node's address and nothing else;
			// the node proxies the rest of the keyspace.
			node := i % len(stores)
			var err error
			cl, err = Dial(stores[node].kernel, stores[node].name, DialOptions{Node: node, Obs: o.Group.Obs})
			if err != nil {
				return LoadReport{}, fmt.Errorf("kv: load dial: %w", err)
			}
		case o.Replication > 0:
			shard := i % o.Shards
			cl = stores[shard%len(stores)].NewClient()
			keys = shardKeys[shard]
		default:
			cl = stores[i%len(stores)].NewClient()
		}
		clients = append(clients, cl)
		rng := rand.New(rand.NewSource(o.Seed + int64(i)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for runCtx.Err() == nil {
				var key string
				if keys != nil {
					key = keys[rng.Intn(len(keys))]
				} else {
					key = fmt.Sprintf("key-%06d", rng.Intn(o.Keys))
				}
				var err error
				t0 := time.Now()
				if rng.Float64() < o.ReadFraction {
					if o.LocalReads {
						cl.LocalGet(key)
					} else {
						_, _, err = cl.Get(runCtx, key)
					}
				} else {
					err = cl.Put(runCtx, key, value)
				}
				switch {
				case err == nil:
					latH.Observe(time.Since(t0))
					atomic.AddUint64(&ops, 1)
				case runCtx.Err() != nil:
					return // cancellation, not a workload error
				default:
					atomic.AddUint64(&errs, 1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return LoadReport{}, err
	}
	rep := LoadReport{
		Shards:  o.Shards,
		Nodes:   o.Nodes,
		Clients: o.Clients,
		Ops:     atomic.LoadUint64(&ops),
		Errors:  atomic.LoadUint64(&errs),
		Elapsed: elapsed,
	}
	// Batch counters are sequencer-side, so summing every replica of every
	// store counts each shard group once.
	for _, s := range stores {
		for _, r := range s.snapshotShards() {
			if r == nil {
				continue
			}
			st := r.Stats()
			rep.OrderedBatches += st.OrderedBatches
			rep.BatchedMsgs += st.BatchedMsgs
			if st.MaxBatchMsgs > rep.MaxBatchMsgs {
				rep.MaxBatchMsgs = st.MaxBatchMsgs
			}
		}
	}
	for _, svc := range svcs {
		rep.Forwarded += svc.Stats().Forwarded
	}
	for _, cl := range clients {
		rep.RemoteOps += cl.Stats().RemoteOps
	}
	if snap := latH.Snapshot(); snap.Count > 0 {
		rep.LatencyP50 = snap.Quantile(0.50)
		rep.LatencyP90 = snap.Quantile(0.90)
		rep.LatencyP99 = snap.Quantile(0.99)
		rep.LatencyMax = snap.Max
	}
	return rep, nil
}
