// Service is the node-side half of the kv access protocol: the split that
// turns every node into a full proxy for the whole keyspace, completing the
// paper's Table 1 surface — group communication orders the writes, and RPC
// with ForwardRequest carries the requests to wherever the data lives.

package kv

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"amoeba"
)

// ShardAddr returns the well-known RPC address at which every node hosting
// shard i of the named store serves the access protocol. The address
// identifies the service, not a machine (FLIP's defining property): with
// several hosts registered, a request reaches whichever answers — and when
// one dies, retransmissions re-locate a survivor.
func ShardAddr(store string, shard int) amoeba.Addr {
	return amoeba.AddrForName(fmt.Sprintf("kv/%s/%d", store, shard))
}

// NodeAddr returns the well-known RPC address of one node's service entry
// point: the single address a Dial'd client needs to reach the whole store.
func NodeAddr(store string, node int) amoeba.Addr {
	return amoeba.AddrForName(fmt.Sprintf("kv/%s/node/%d", store, node))
}

// ServiceStats counts what a node's service did with the requests it
// received.
type ServiceStats struct {
	// Served counts requests this node executed (over the in-process
	// fast path or by proxying parts onward itself).
	Served uint64
	// Forwarded counts misrouted single-shard requests answered with a
	// ForwardRequest to an owning node instead of an error — the client
	// sees only the reply, from wherever the request landed.
	Forwarded uint64
	// Scattered counts multi-shard requests (a client with no or stale
	// ring knowledge) this node split and scatter-gathered itself.
	Scattered uint64
	// Errors counts requests answered with an error response.
	Errors uint64
}

// Service serves the kv access protocol for one node of a store: one RPC
// server per hosted shard group at ShardAddr, plus the node's entry point at
// NodeAddr. Requests for hosted shards execute in process (sequenced reads
// run the read marker through the local replica — linearizable); misroutes —
// a client with a stale ring, a shard mid-rebalance, a Dial'd client that
// knows nothing but this node — are answered with a ForwardRequest to an
// owning node, so a client holding one address reaches every key.
type Service struct {
	store  *Store
	client *Client
	srvs   []*amoeba.RPCServer

	served    atomic.Uint64
	forwarded atomic.Uint64
	scattered atomic.Uint64
	errors    atomic.Uint64

	// defaultBudget bounds requests that carry no caller budget;
	// maxBudget caps even explicit ones, so a client that vanished
	// mid-call cannot pin a handler goroutine forever (the RPC hop
	// carries deadlines forward but not cancellations).
	defaultBudget time.Duration
	maxBudget     time.Duration
}

// NewService starts serving this node's shards. Close the service before
// closing the store.
func NewService(s *Store) (*Service, error) {
	svc := &Service{
		store:         s,
		client:        s.NewClient(),
		defaultBudget: 10 * time.Second,
		maxBudget:     2 * time.Minute,
	}
	fail := func(err error) (*Service, error) {
		svc.Close()
		return nil, err
	}
	srv, err := s.kernel.NewRPCServerWith(NodeAddr(s.name, s.opts.NodeIndex), svc.handle,
		amoeba.RPCServerOptions{Concurrent: true})
	if err != nil {
		return fail(fmt.Errorf("kv: serving node entry point: %w", err))
	}
	svc.srvs = append(svc.srvs, srv)
	for i := 0; i < s.opts.Shards; i++ {
		if !hostsShard(i, s.opts.NodeIndex, s.opts.Nodes, s.opts.Replication) {
			continue
		}
		srv, err := s.kernel.NewRPCServerWith(ShardAddr(s.name, i), svc.handle,
			amoeba.RPCServerOptions{Concurrent: true})
		if err != nil {
			return fail(fmt.Errorf("kv: serving shard %d: %w", i, err))
		}
		svc.srvs = append(svc.srvs, srv)
	}
	return svc, nil
}

// Stats returns a snapshot of the service's request counters.
func (svc *Service) Stats() ServiceStats {
	return ServiceStats{
		Served:    svc.served.Load(),
		Forwarded: svc.forwarded.Load(),
		Scattered: svc.scattered.Load(),
		Errors:    svc.errors.Load(),
	}
}

// Close stops serving. In-flight requests fail at their clients' RPC layer
// and are retried against surviving nodes.
func (svc *Service) Close() {
	for _, srv := range svc.srvs {
		srv.Close()
	}
	svc.srvs = nil
	svc.client.Close()
}

// handle serves one access-protocol request. It runs on its own goroutine
// (concurrent RPC server), so it may block on the group layer.
func (svc *Service) handle(raw []byte) (reply []byte, forward amoeba.Addr) {
	req, err := DecodeRequest(raw)
	if err != nil {
		svc.errors.Add(1)
		return EncodeResponse(&Response{Err: err.Error()}), 0
	}
	shards := svc.shardsOf(req)
	if len(shards) == 1 && svc.store.Replica(shards[0]) == nil {
		// Misroute: the one shard this request needs lives elsewhere.
		if req.Flags&flagForwarded != 0 {
			// Already forwarded once; rings disagree. Answer rather
			// than bounce the request around.
			svc.errors.Add(1)
			return EncodeResponse(&Response{Err: fmt.Sprintf(
				"shard %d not hosted at forward target (ring mismatch?)", shards[0])}), 0
		}
		svc.forwarded.Add(1)
		fwd := *req
		fwd.Flags |= flagForwarded
		return EncodeRequest(&fwd), ShardAddr(svc.store.name, shards[0])
	}
	if len(shards) > 1 {
		// A client with no (or stale) ring knowledge packed several
		// shards' keys into one request: this node re-scatters it, local
		// parts in process and remote parts over RPC — the full proxy.
		svc.scattered.Add(1)
	}
	svc.served.Add(1)
	budget := req.Budget
	if budget <= 0 {
		budget = svc.defaultBudget
	}
	if budget > svc.maxBudget {
		budget = svc.maxBudget
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	// Sub-requests the client issues for re-scattered parts are fresh
	// requests (no forwarded flag), targeted by this node's ring.
	resp, err := svc.client.Do(ctx, req)
	if err != nil {
		svc.errors.Add(1)
		return EncodeResponse(&Response{Err: err.Error()}), 0
	}
	return EncodeResponse(resp), 0
}

// shardsOf lists the distinct shards a request touches, under this node's
// ring.
func (svc *Service) shardsOf(req *Request) []int {
	seen := make(map[int]bool)
	var out []int
	add := func(key string) {
		s := svc.store.ring.shard(key)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	switch req.Op {
	case ReqGet:
		for _, k := range req.Keys {
			add(k)
		}
	case ReqBatchPut:
		for _, p := range req.Pairs {
			add(p.Key)
		}
	default:
		add(req.Key)
	}
	return out
}
