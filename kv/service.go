// Service is the node-side half of the kv access protocol: the split that
// turns every node into a full proxy for the whole keyspace, completing the
// paper's Table 1 surface — group communication orders the writes, and RPC
// with ForwardRequest carries the requests to wherever the data lives.

package kv

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"amoeba"
	"amoeba/obs"
)

// ShardAddr returns the well-known RPC address at which every node hosting
// shard i of the named store serves the access protocol. The address
// identifies the service, not a machine (FLIP's defining property): with
// several hosts registered, a request reaches whichever answers — and when
// one dies, retransmissions re-locate a survivor.
func ShardAddr(store string, shard int) amoeba.Addr {
	return amoeba.AddrForName(fmt.Sprintf("kv/%s/%d", store, shard))
}

// NodeAddr returns the well-known RPC address of one node's service entry
// point: the single address a Dial'd client needs to reach the whole store.
func NodeAddr(store string, node int) amoeba.Addr {
	return amoeba.AddrForName(fmt.Sprintf("kv/%s/node/%d", store, node))
}

// StoreAddr returns the store-wide anycast entry address: every node's
// Service registers it in the FLIP name registry, so a client needs nothing
// but the store's name (DialOptions.Anycast) — FLIP's locate finds
// whichever node answers, and retransmissions re-locate a survivor when
// that node dies.
func StoreAddr(store string) amoeba.Addr {
	return amoeba.AddrForName(fmt.Sprintf("kv/%s/entry", store))
}

// ServiceStats counts what a node's service did with the requests it
// received.
type ServiceStats struct {
	// Served counts requests this node executed (over the in-process
	// fast path or by proxying parts onward itself).
	Served uint64
	// Forwarded counts misrouted single-shard requests answered with a
	// ForwardRequest to an owning node instead of an error — the client
	// sees only the reply, from wherever the request landed.
	Forwarded uint64
	// Scattered counts multi-shard requests (a client with no or stale
	// ring knowledge) this node split and scatter-gathered itself.
	Scattered uint64
	// StaleEpochs counts requests whose routing epoch differed from this
	// node's; each was served under the node's table and answered with
	// that table attached, converging the client.
	StaleEpochs uint64
	// Errors counts requests answered with an error response.
	Errors uint64
}

// Service serves the kv access protocol for one node of a store: one RPC
// server per hosted shard group at ShardAddr, plus the node's entry point at
// NodeAddr and the store-wide anycast entry at StoreAddr. Requests for
// hosted shards execute in process (sequenced reads run the read marker
// through the local replica — linearizable); misroutes — a client with a
// stale routing table, a shard mid-rebalance, a Dial'd client that knows
// nothing but this node — are answered with a ForwardRequest to an owning
// node, so a client holding one address reaches every key.
//
// The service follows the routing table: when a resharding commits, servers
// for new shard groups are registered and servers for retired ones close,
// and responses to requests from another epoch carry the node's table so
// the requester converges.
type Service struct {
	store  *Store
	client *Client

	mu        sync.Mutex
	srvs      []*amoeba.RPCServer // fixed entries: node + store anycast
	shardSrvs map[int]*amoeba.RPCServer
	closed    bool
	watchDone chan struct{}

	served      atomic.Uint64
	forwarded   atomic.Uint64
	scattered   atomic.Uint64
	staleEpochs atomic.Uint64
	errors      atomic.Uint64

	// defaultBudget bounds requests that carry no caller budget;
	// maxBudget caps even explicit ones, so a client that vanished
	// mid-call cannot pin a handler goroutine forever (the RPC hop
	// carries deadlines forward but not cancellations).
	defaultBudget time.Duration
	maxBudget     time.Duration

	obsUnreg func() // detaches the stats source from the hub registry
}

// NewService starts serving this node's shards. Close the service before
// closing the store.
func NewService(s *Store) (*Service, error) {
	svc := &Service{
		store:         s,
		client:        s.NewClient(),
		shardSrvs:     make(map[int]*amoeba.RPCServer),
		watchDone:     make(chan struct{}),
		defaultBudget: 10 * time.Second,
		maxBudget:     2 * time.Minute,
	}
	fail := func(err error) (*Service, error) {
		close(svc.watchDone) // watcher never started
		svc.watchDone = nil
		svc.Close()
		return nil, err
	}
	srv, err := s.kernel.NewRPCServerWith(NodeAddr(s.name, s.opts.NodeIndex), svc.handle,
		amoeba.RPCServerOptions{Concurrent: true})
	if err != nil {
		return fail(fmt.Errorf("kv: serving node entry point: %w", err))
	}
	svc.srvs = append(svc.srvs, srv)
	srv, err = s.kernel.NewRPCServerWith(StoreAddr(s.name), svc.handle,
		amoeba.RPCServerOptions{Concurrent: true})
	if err != nil {
		return fail(fmt.Errorf("kv: serving store anycast entry: %w", err))
	}
	svc.srvs = append(svc.srvs, srv)
	if err := svc.reconcileShards(); err != nil {
		return fail(err)
	}
	if reg := s.opts.Group.Obs.Registry(); reg != nil {
		svc.obsUnreg = reg.RegisterSource(func() []obs.Sample {
			return []obs.Sample{
				{Name: "amoeba_kv_service_served_total", Value: svc.served.Load()},
				{Name: "amoeba_kv_service_forwarded_total", Value: svc.forwarded.Load()},
				{Name: "amoeba_kv_service_scattered_total", Value: svc.scattered.Load()},
				{Name: "amoeba_kv_service_stale_epochs_total", Value: svc.staleEpochs.Load()},
				{Name: "amoeba_kv_service_errors_total", Value: svc.errors.Load()},
			}
		})
	}
	go svc.watchRouting()
	return svc, nil
}

// reconcileShards aligns the per-shard RPC servers with the shards this
// node currently hosts under the routing table.
func (svc *Service) reconcileShards() error {
	s := svc.store
	rt := s.Routing()
	want := rt.Shards
	if pend := s.PendingRouting(); pend != nil && pend.Shards > want {
		want = pend.Shards
	}
	svc.mu.Lock()
	defer svc.mu.Unlock()
	if svc.closed {
		return nil
	}
	for i, srv := range svc.shardSrvs {
		if i >= want || s.Replica(i) == nil {
			srv.Close()
			delete(svc.shardSrvs, i)
		}
	}
	for i := 0; i < want; i++ {
		if svc.shardSrvs[i] != nil || s.Replica(i) == nil {
			continue
		}
		srv, err := s.kernel.NewRPCServerWith(ShardAddr(s.name, i), svc.handle,
			amoeba.RPCServerOptions{Concurrent: true})
		if err != nil {
			return fmt.Errorf("kv: serving shard %d: %w", i, err)
		}
		svc.shardSrvs[i] = srv
	}
	return nil
}

// watchRouting re-registers shard servers whenever the routing table (or
// the hosted replica set) changes — the service half of live resharding.
func (svc *Service) watchRouting() {
	defer close(svc.watchDone)
	for {
		wake := svc.store.RoutingWatch()
		svc.mu.Lock()
		closed := svc.closed
		svc.mu.Unlock()
		if closed {
			return
		}
		select {
		case <-wake:
		case <-svc.store.healCtx.Done():
			return
		case <-time.After(time.Second):
			// Periodic sweep: replica creation lags the routing nudge, so
			// re-check hosted shards even without a table change.
		}
		_ = svc.reconcileShards() // transient failures retried next sweep
	}
}

// Stats returns a snapshot of the service's request counters.
func (svc *Service) Stats() ServiceStats {
	return ServiceStats{
		Served:      svc.served.Load(),
		Forwarded:   svc.forwarded.Load(),
		Scattered:   svc.scattered.Load(),
		StaleEpochs: svc.staleEpochs.Load(),
		Errors:      svc.errors.Load(),
	}
}

// Close stops serving. In-flight requests fail at their clients' RPC layer
// and are retried against surviving nodes.
func (svc *Service) Close() {
	svc.mu.Lock()
	if svc.closed {
		svc.mu.Unlock()
		return
	}
	svc.closed = true
	srvs := svc.srvs
	svc.srvs = nil
	for _, srv := range svc.shardSrvs {
		srvs = append(srvs, srv)
	}
	svc.shardSrvs = map[int]*amoeba.RPCServer{}
	done := svc.watchDone
	svc.mu.Unlock()
	for _, srv := range srvs {
		srv.Close()
	}
	svc.client.Close()
	if done != nil {
		<-done
	}
	if svc.obsUnreg != nil {
		svc.obsUnreg()
	}
}

// handle serves one access-protocol request. It runs on its own goroutine
// (concurrent RPC server), so it may block on the group layer.
func (svc *Service) handle(raw []byte) (reply []byte, forward amoeba.Addr) {
	req, err := DecodeRequest(raw)
	if err != nil {
		svc.errors.Add(1)
		return EncodeResponse(&Response{Err: err.Error()}), 0
	}
	rt := svc.store.Routing()
	stale := req.Epoch != rt.Epoch
	if stale {
		svc.staleEpochs.Add(1)
	}
	// attach teaches the requester this node's table whenever the epochs
	// disagreed (re-read at answer time: the handoff may have flipped the
	// epoch while the request executed), and always carries the node/replica
	// topology so fleet clients can steer flagged reads at lease holders.
	attach := func(resp *Response) []byte {
		if now := svc.store.Routing(); req.Epoch != now.Epoch {
			resp.Routing = &now
		}
		resp.Nodes = svc.store.opts.Nodes
		resp.Replication = svc.store.opts.Replication
		return EncodeResponse(resp)
	}
	shards := svc.shardsOf(req)
	if len(shards) == 1 && svc.store.Replica(shards[0]) == nil {
		// Misroute: the one shard this request needs lives elsewhere.
		if req.Flags&flagForwarded != 0 {
			// Already forwarded once; routing tables disagree. Answer
			// rather than bounce the request around.
			svc.errors.Add(1)
			return attach(&Response{Err: fmt.Sprintf(
				"shard %d not hosted at forward target (routing mismatch?)", shards[0])}), 0
		}
		svc.forwarded.Add(1)
		svc.client.tracer.Addf(req.ID, "forwarded to shard %d", shards[0])
		fwd := *req
		fwd.Flags |= flagForwarded
		fwd.Epoch = rt.Epoch // forward under this node's (newer) table
		return EncodeRequest(&fwd), ShardAddr(svc.store.name, shards[0])
	}
	if len(shards) > 1 {
		// A client with no (or stale) routing knowledge packed several
		// shards' keys into one request: this node re-scatters it, local
		// parts in process and remote parts over RPC — the full proxy.
		svc.scattered.Add(1)
	}
	svc.served.Add(1)
	budget := req.Budget
	if budget <= 0 {
		budget = svc.defaultBudget
	}
	if budget > svc.maxBudget {
		budget = svc.maxBudget
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	// Sub-requests the client issues for re-scattered parts are fresh
	// requests (no forwarded flag), targeted by this node's routing.
	resp, err := svc.client.Do(ctx, req)
	if err != nil {
		svc.errors.Add(1)
		return attach(&Response{Err: err.Error()}), 0
	}
	return attach(resp), 0
}

// shardsOf lists the distinct shards a request touches, under this node's
// current routing table.
func (svc *Service) shardsOf(req *Request) []int {
	ring, _ := svc.store.routingRing()
	seen := make(map[int]bool)
	var out []int
	add := func(key string) {
		s := ring.shard(key)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	switch req.Op {
	case ReqGet:
		for _, k := range req.Keys {
			add(k)
		}
	case ReqBatchPut:
		for _, p := range req.Pairs {
			add(p.Key)
		}
	case ReqTxn, ReqTxnPrepare:
		// Every key the transaction touches: a multi-shard transaction is
		// re-scattered here (this node coordinates it in process), a
		// single-shard one can be forwarded to its owner like any write.
		// ReqTxnResolve routes by its representative Key (default case).
		for _, k := range req.Keys {
			add(k)
		}
		for _, w := range req.Writes {
			add(w.Key)
		}
		for _, cc := range req.Conds {
			add(cc.Key)
		}
	default:
		add(req.Key)
	}
	return out
}
