package kv

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"amoeba"
)

// TestHistoryRecordsConcurrentClientsCompletely drives many concurrent
// recording clients and verifies the history is complete and well-formed: no
// lost or duplicated invoke-return pairs, windows ordered, per-client events
// sequential. The checker's verdicts are only as good as this bookkeeping.
func TestHistoryRecordsConcurrentClientsCompletely(t *testing.T) {
	ctx := ctxT(t, 60*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	stores := newCluster(t, ctx, net, "hist", 2, Options{Shards: 2})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()

	const (
		clients = 6
		opsEach = 40
	)
	h := NewHistory()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		rc := Record(stores[c%len(stores)].NewClient(), h, c)
		wg.Add(1)
		go func(c int, rc *RecordingClient) {
			defer wg.Done()
			defer rc.Close()
			key := fmt.Sprintf("k%d", c%3) // contend across clients
			for i := 0; i < opsEach; i++ {
				switch i % 5 {
				case 0:
					_ = rc.Put(ctx, key, []byte(fmt.Sprintf("c%d-%d", c, i)))
				case 1:
					_, _, _ = rc.Get(ctx, key)
				case 2:
					_, _ = rc.CAS(ctx, key, nil, []byte("create"))
				case 3:
					_, _ = rc.MGet(ctx, "k0", "k1") // one OpTxn event
				case 4:
					_, _ = rc.Delete(ctx, key)
				}
			}
		}(c, rc)
	}
	wg.Wait()

	evs := h.Events()
	// Every arm records exactly one event: MGet is one OpTxn snapshot, not
	// per-key gets.
	want := clients * opsEach
	if len(evs) != want {
		t.Fatalf("recorded %d events, want %d", len(evs), want)
	}
	perClient := make(map[int][]HistoryEvent)
	for _, e := range evs {
		if e.Invoke < 0 {
			t.Fatalf("event with negative invoke: %+v", e)
		}
		if e.Return >= 0 && e.Return < e.Invoke {
			t.Fatalf("event returns before it invokes: %+v", e)
		}
		if e.Err != "" && e.Return >= 0 {
			t.Fatalf("failed event with a definite return: %+v", e)
		}
		perClient[e.Client] = append(perClient[e.Client], e)
	}
	if len(perClient) != clients {
		t.Fatalf("events from %d clients, want %d", len(perClient), clients)
	}
	for c, ces := range perClient {
		if len(ces) != opsEach {
			t.Fatalf("client %d recorded %d events, want %d", c, len(ces), opsEach)
		}
	}
}
