package kv

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"amoeba/obs"
)

// This file measures what the self-audit costs: the same sharded workload
// with the periodic sequenced audit off and on, in the observed-bench's
// mirrored ABBA schedule so host warm-up drift cancels. Both modes run with
// the obs hub attached — the audit rides on top of the instrumentation, so
// the comparison isolates the audit itself: the extra sequenced commands,
// the per-replica digest scans, and the cross-replica comparisons.
// cmd/amoeba-bench renders it as the "audit" experiment and CI commits it as
// BENCH_audit.json.

// auditBenchPeriod is the audit period the enabled runs use — the default a
// production deployment would start from (10 digests/s per shard).
const auditBenchPeriod = 100 * time.Millisecond

// auditSchedule doubles the observed-bench ABBA layout with its mirror
// image. The audit's true cost is small — a digest scan is linear in a
// shard's state, and one extra sequenced command per period is noise against
// thousands of ordered ops — so the measurement needs better drift
// cancellation than the effect-sized observed bench: 16 runs per mode, and
// each mode occupies the same average position in time at two block scales.
const auditSchedule = observedSchedule + "EDDEDEEDDEEDEDDE"

// AuditBenchResult is the machine-readable output for BENCH_audit.json.
type AuditBenchResult struct {
	// Trials is the number of runs per mode in the ABBA schedule.
	Trials int `json:"trials"`
	// AuditEveryMS is the audit period the enabled runs used.
	AuditEveryMS int64 `json:"audit_every_ms"`
	// DisabledOpsPerSec / EnabledOpsPerSec are the aggregate ordered-op
	// throughputs without and with the audit driver running.
	DisabledOpsPerSec float64 `json:"disabled_ops_per_sec"`
	EnabledOpsPerSec  float64 `json:"enabled_ops_per_sec"`
	// OverheadPercent is (1 − enabled/disabled)·100 — negative means the
	// audited runs were faster (noise floor).
	OverheadPercent float64 `json:"overhead_percent"`
	// Audits is the number of cross-replica digest comparisons the enabled
	// runs completed; zero would mean the "enabled" side measured nothing.
	Audits uint64 `json:"audits"`
	// Divergences must be zero: an honest workload digesting differently
	// on different replicas is a bug, not overhead.
	Divergences int `json:"divergences"`
}

// MeasureAudit runs the audit-on-vs-off comparison on the mirrored ABBA
// schedule (see observedSchedule for why) and returns the throughput delta.
func MeasureAudit() (*AuditBenchResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	base := LoadOptions{
		Shards:       4,
		Nodes:        4,
		Clients:      16,
		Duration:     time.Second,
		ReadFraction: 0.2,
		Seed:         1,
	}
	// One hub for both modes: the audit toggles, the instrumentation does
	// not, so the delta is the audit alone.
	hub := obs.NewHub(obs.Options{Node: "bench", TraceMod: 1024})
	base.Group.Obs = hub
	var dOps, eOps uint64
	var dTime, eTime time.Duration
	for _, mode := range auditSchedule {
		o := base
		if mode == 'E' {
			o.AuditEvery = auditBenchPeriod
		}
		rep, err := RunLoad(ctx, o)
		if err != nil {
			return nil, err
		}
		if mode == 'E' {
			eOps += rep.Ops
			eTime += rep.Elapsed
		} else {
			dOps += rep.Ops
			dTime += rep.Elapsed
		}
	}
	res := &AuditBenchResult{
		Trials:            len(auditSchedule) / 2,
		AuditEveryMS:      auditBenchPeriod.Milliseconds(),
		DisabledOpsPerSec: float64(dOps) / dTime.Seconds(),
		EnabledOpsPerSec:  float64(eOps) / eTime.Seconds(),
		Divergences:       len(hub.Health().Divergences()),
	}
	res.OverheadPercent = (1 - res.EnabledOpsPerSec/res.DisabledOpsPerSec) * 100
	for _, c := range hub.Registry().Counters() {
		if c.Name == "amoeba_health_audits_total" {
			res.Audits = c.Value
		}
	}
	if res.Audits == 0 {
		return nil, fmt.Errorf("kv: audit bench ran no digest comparisons — the enabled side measured nothing")
	}
	if res.Divergences != 0 {
		return nil, fmt.Errorf("kv: audit bench found %d divergences on an honest workload: %v",
			res.Divergences, hub.Health().Divergences()[0])
	}
	return res, nil
}

// AuditJSON renders the result for BENCH_audit.json.
func AuditJSON(res *AuditBenchResult) ([]byte, error) {
	out := struct {
		Experiment string `json:"experiment"`
		Unit       string `json:"unit"`
		Note       string `json:"note"`
		*AuditBenchResult
	}{
		Experiment:       "audit",
		Unit:             "ops/s (throughput)",
		Note:             "self-audit cost: same sharded workload with the periodic sequenced state audit off vs on (digest scan + sequenced audit command + cross-replica comparison); obs hub attached in both modes, mirrored ABBA run schedule",
		AuditBenchResult: res,
	}
	return json.MarshalIndent(out, "", "  ")
}
