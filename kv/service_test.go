package kv

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"amoeba"
)

// TestAccessCodecRoundTrip pins the access-protocol wire format: every op
// survives encode/decode, and foreign versions are rejected loudly.
func TestAccessCodecRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Op: ReqGet, ID: 7, Budget: 1500 * time.Millisecond, Keys: []string{"a", "b", ""}},
		{Op: ReqPut, ID: 8, Key: "k", Val: []byte("v")},
		{Op: ReqPut, ID: 9, Key: "empty", Val: nil},
		{Op: ReqDelete, ID: 10, Key: "gone"},
		{Op: ReqCAS, ID: 11, Key: "c", ExpectPresent: true, Expect: []byte("old"), Val: []byte("new")},
		{Op: ReqCAS, ID: 12, Key: "c", ExpectPresent: false, Val: []byte("fresh")},
		{Op: ReqBatchPut, IDs: []uint64{13, 14}, Pairs: []Pair{{Key: "x", Val: []byte("1")}, {Key: "y", Val: nil}}, Flags: flagForwarded},
	}
	for _, want := range reqs {
		got, err := DecodeRequest(EncodeRequest(want))
		if err != nil {
			t.Fatalf("op %d: decode: %v", want.Op, err)
		}
		if got.Op != want.Op || got.Flags != want.Flags || got.ID != want.ID ||
			got.Budget != want.Budget || got.Key != want.Key ||
			!bytes.Equal(got.Val, want.Val) || got.ExpectPresent != want.ExpectPresent ||
			!bytes.Equal(got.Expect, want.Expect) ||
			len(got.Keys) != len(want.Keys) || len(got.Pairs) != len(want.Pairs) ||
			len(got.IDs) != len(want.IDs) {
			t.Fatalf("op %d: round trip mismatch:\n got %+v\nwant %+v", want.Op, got, want)
		}
		for i := range want.Keys {
			if got.Keys[i] != want.Keys[i] {
				t.Fatalf("op %d: key %d = %q, want %q", want.Op, i, got.Keys[i], want.Keys[i])
			}
		}
		for i := range want.Pairs {
			if got.Pairs[i].Key != want.Pairs[i].Key || !bytes.Equal(got.Pairs[i].Val, want.Pairs[i].Val) ||
				got.IDs[i] != want.IDs[i] {
				t.Fatalf("op %d: pair %d mismatch", want.Op, i)
			}
		}
	}
	resps := []*Response{
		{OK: true},
		{OK: false},
		{OK: true, Values: [][]byte{[]byte("v"), nil, {}}, Found: []bool{true, false, true}},
		{Err: "kaboom"},
	}
	for i, want := range resps {
		got, err := DecodeResponse(EncodeResponse(want))
		if err != nil {
			t.Fatalf("resp %d: decode: %v", i, err)
		}
		if got.OK != want.OK || got.Err != want.Err || len(got.Values) != len(want.Values) {
			t.Fatalf("resp %d: round trip mismatch: got %+v want %+v", i, got, want)
		}
		for j := range want.Values {
			if got.Found[j] != want.Found[j] || !bytes.Equal(got.Values[j], want.Values[j]) {
				t.Fatalf("resp %d: value %d mismatch", i, j)
			}
		}
	}
	// Foreign versions are refused, not misparsed.
	bad := EncodeRequest(reqs[0])
	bad[0] = ProtoVersion + 1
	if _, err := DecodeRequest(bad); err == nil {
		t.Fatal("decoded a request from a future protocol version")
	}
	badResp := EncodeResponse(resps[0])
	badResp[0] = ProtoVersion + 1
	if _, err := DecodeResponse(badResp); err == nil {
		t.Fatal("decoded a response from a future protocol version")
	}
}

// startServices starts one Service per store and arranges cleanup.
func startServices(t *testing.T, stores []*Store) []*Service {
	t.Helper()
	svcs := make([]*Service, len(stores))
	for i, s := range stores {
		svc, err := NewService(s)
		if err != nil {
			t.Fatalf("service %d: %v", i, err)
		}
		svcs[i] = svc
		t.Cleanup(svc.Close)
	}
	return svcs
}

// keyOnShard finds a key owned by the wanted shard.
func keyOnShard(s *Store, shard int, tag string) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("%s-%d", tag, i)
		if s.ShardFor(k) == shard {
			return k
		}
	}
}

// TestProxyThroughSingleNodeAddress is the acceptance scenario: a client
// holding nothing but one node's address performs every operation against
// keys on every shard. The entry node serves what it hosts and answers
// misroutes with a ForwardRequest — observable in its forward counter — and
// sequenced reads stay linearizable across the hop.
func TestProxyThroughSingleNodeAddress(t *testing.T) {
	ctx := ctxT(t, 60*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	const nodes, shards = 3, 4
	stores := newCluster(t, ctx, net, "proxy", nodes, Options{
		Shards:      shards,
		Replication: 1, // every shard on exactly one node: most ops must proxy
	})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	svcs := startServices(t, stores)

	// The client lives on its own kernel — a pure consumer machine — and
	// knows only node 0's address. No ring, no shard count.
	ext, err := net.NewKernel("proxy-client")
	if err != nil {
		t.Fatalf("client kernel: %v", err)
	}
	cl, err := Dial(ext, "proxy", DialOptions{Node: 0})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	// One key per shard, so every shard is exercised through the one
	// address.
	keys := make([]string, shards)
	for i := range keys {
		keys[i] = keyOnShard(stores[0], i, fmt.Sprintf("via0-s%d", i))
		if err := cl.Put(ctx, keys[i], []byte("v-"+keys[i])); err != nil {
			t.Fatalf("Put %s: %v", keys[i], err)
		}
		v, ok, err := cl.Get(ctx, keys[i])
		if err != nil || !ok || string(v) != "v-"+keys[i] {
			t.Fatalf("Get %s = %q %v %v", keys[i], v, ok, err)
		}
	}
	// CAS through the proxy: create, conflict, swap.
	casKey := keyOnShard(stores[0], (stores[0].ShardFor(keys[0])+1)%shards, "cas")
	if ok, err := cl.CAS(ctx, casKey, nil, []byte("one")); err != nil || !ok {
		t.Fatalf("CAS create = %v %v", ok, err)
	}
	if ok, err := cl.CAS(ctx, casKey, []byte("wrong"), []byte("nope")); err != nil || ok {
		t.Fatalf("CAS wrong-expect = %v %v, want false", ok, err)
	}
	if ok, err := cl.CAS(ctx, casKey, []byte("one"), []byte("two")); err != nil || !ok {
		t.Fatalf("CAS swap = %v %v", ok, err)
	}
	// Delete through the proxy reports presence.
	if existed, err := cl.Delete(ctx, keys[0]); err != nil || !existed {
		t.Fatalf("Delete = %v %v", existed, err)
	}
	if _, ok, err := cl.Get(ctx, keys[0]); err != nil || ok {
		t.Fatalf("Get after delete: found=%v err=%v", ok, err)
	}
	// BatchPut spanning every shard in one request: the entry node
	// re-scatters it.
	var pairs []Pair
	for i := 0; i < shards; i++ {
		pairs = append(pairs, Pair{Key: keyOnShard(stores[0], i, fmt.Sprintf("bulk-s%d", i)), Val: []byte{byte(i)}})
	}
	if err := cl.BatchPut(ctx, pairs); err != nil {
		t.Fatalf("BatchPut: %v", err)
	}
	// MGet spanning every shard in one request.
	var mkeys []string
	for _, p := range pairs {
		mkeys = append(mkeys, p.Key)
	}
	got, err := cl.MGet(ctx, mkeys...)
	if err != nil {
		t.Fatalf("MGet: %v", err)
	}
	for i, p := range pairs {
		if !bytes.Equal(got[p.Key], []byte{byte(i)}) {
			t.Fatalf("MGet %s = %v, want %v", p.Key, got[p.Key], []byte{byte(i)})
		}
	}
	// Linearizability across the hop: a write through the proxy is visible
	// to a subsequent sequenced read on a hosting node's own client, and
	// vice versa.
	hot := keyOnShard(stores[0], 1, "linz") // shard 1 lives on node 1 only
	if err := cl.Put(ctx, hot, []byte("from-proxy")); err != nil {
		t.Fatalf("Put %s: %v", hot, err)
	}
	if v, ok, err := stores[1].NewClient().Get(ctx, hot); err != nil || !ok || string(v) != "from-proxy" {
		t.Fatalf("owner Get after proxied Put = %q %v %v", v, ok, err)
	}
	if err := stores[1].NewClient().Put(ctx, hot, []byte("from-owner")); err != nil {
		t.Fatalf("owner Put: %v", err)
	}
	if v, ok, err := cl.Get(ctx, hot); err != nil || !ok || string(v) != "from-owner" {
		t.Fatalf("proxied Get after owner Put = %q %v %v", v, ok, err)
	}

	// The entry node must have forwarded misroutes (single-shard requests
	// for shards it does not host) and re-scattered the multi-shard ones.
	st := svcs[0].Stats()
	if st.Forwarded == 0 {
		t.Fatalf("entry node forwarded nothing: %+v", st)
	}
	if st.Scattered == 0 {
		t.Fatalf("entry node re-scattered nothing: %+v", st)
	}
	// Forward targets actually served (no silent fallbacks to errors).
	var served uint64
	for _, svc := range svcs {
		served += svc.Stats().Served
	}
	if served == 0 {
		t.Fatal("no service served anything")
	}
}

// TestStoreClientReachesUnhostedShards: a node-bound client on a
// bounded-replication store transparently reaches shards its node does not
// host — the local fast path for hosted shards, direct RPC to the owners'
// well-known shard addresses for the rest.
func TestStoreClientReachesUnhostedShards(t *testing.T) {
	ctx := ctxT(t, 60*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	const nodes, shards = 3, 3
	stores := newCluster(t, ctx, net, "reach", nodes, Options{Shards: shards, Replication: 1})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	startServices(t, stores)

	cl := stores[0].NewClient()
	defer cl.Close()
	for i := 0; i < shards; i++ {
		k := keyOnShard(stores[0], i, fmt.Sprintf("reach-s%d", i))
		if err := cl.Put(ctx, k, []byte("r")); err != nil {
			t.Fatalf("Put shard %d: %v", i, err)
		}
		if v, ok, err := cl.Get(ctx, k); err != nil || !ok || string(v) != "r" {
			t.Fatalf("Get shard %d = %q %v %v", i, v, ok, err)
		}
	}
	st := cl.Stats()
	if st.LocalOps == 0 {
		t.Fatalf("no local fast-path ops: %+v", st)
	}
	if st.RemoteOps == 0 {
		t.Fatalf("no remote ops despite unhosted shards: %+v", st)
	}
}

// TestProxyUnderChurn drives every shard through one node's address over a
// lossy network while a remote shard group loses the node that sequences it.
// Retries cross RPC retransmissions, re-located forwards, and a group
// failover — and must stay exactly-once: every atomic create reports
// success exactly as if executed once, because replicas deduplicate by
// command id.
func TestProxyUnderChurn(t *testing.T) {
	ctx := ctxT(t, 180*time.Second)
	net := amoeba.NewMemoryNetworkWithFaults(amoeba.MemoryNetworkConfig{
		DropRate: 0.01,
		Seed:     7,
	})
	defer net.Close()
	const nodes, shards = 4, 4
	stores := newCluster(t, ctx, net, "churn", nodes, Options{
		Shards:      shards,
		Replication: 2, // shard i on nodes {i, i+1}: node 1 hosts shards 0 and 1
		Group: amoeba.GroupOptions{
			Resilience:   1,
			AutoReset:    true,
			MinSurvivors: 1,
		},
	})
	closed := make([]bool, nodes)
	defer func() {
		for i, s := range stores {
			if !closed[i] {
				s.Close()
			}
		}
	}()
	svcs := startServices(t, stores)

	ext, err := net.NewKernel("churn-client")
	if err != nil {
		t.Fatalf("client kernel: %v", err)
	}
	cl, err := Dial(ext, "churn", DialOptions{Node: 0})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	const ops = 120
	kill := ops / 3 // crash mid-run
	for i := 0; i < ops; i++ {
		if i == kill {
			// Crash node 1: it sequences shard 1 (Bootstrap puts shard
			// i's sequencer on node i) and serves shard addresses 0 and
			// 1. Its kernel goes silent — services, replicas, and all —
			// so in-flight requests to those addresses must re-locate
			// the surviving hosts while the groups fail over.
			svcs[1].Close()
			stores[1].Close()
			closed[1] = true
		}
		key := fmt.Sprintf("churn-%03d", i)
		ok, err := cl.CAS(ctx, key, nil, []byte(key))
		if err != nil {
			t.Fatalf("op %d: CAS create %s: %v", i, key, err)
		}
		if !ok {
			t.Fatalf("op %d: CAS create %s reported conflict: a retry re-executed (id dedup broken)", i, key)
		}
	}
	// Every write is readable, linearizably, through the same single
	// address.
	for i := 0; i < ops; i += 7 {
		key := fmt.Sprintf("churn-%03d", i)
		v, ok, err := cl.Get(ctx, key)
		if err != nil || !ok || string(v) != key {
			t.Fatalf("Get %s = %q %v %v", key, v, ok, err)
		}
	}
	if st := svcs[0].Stats(); st.Forwarded == 0 {
		t.Fatalf("entry node forwarded nothing under churn: %+v", st)
	}
}

// TestDialWithRingGoesDirect: a Dial'd client given the shard count routes
// straight to shard addresses — no forwarding at any node — while a stale
// shard count still works via ForwardRequest.
func TestDialWithRingGoesDirect(t *testing.T) {
	ctx := ctxT(t, 60*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	const nodes, shards = 3, 3
	stores := newCluster(t, ctx, net, "direct", nodes, Options{Shards: shards, Replication: 1})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	svcs := startServices(t, stores)
	ext, err := net.NewKernel("direct-client")
	if err != nil {
		t.Fatalf("client kernel: %v", err)
	}

	// Correct ring: one hop, zero forwards.
	direct, err := Dial(ext, "direct", DialOptions{Node: 0, Shards: shards})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer direct.Close()
	for i := 0; i < shards; i++ {
		k := keyOnShard(stores[0], i, fmt.Sprintf("direct-s%d", i))
		if err := direct.Put(ctx, k, []byte("d")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for i, svc := range svcs {
		if f := svc.Stats().Forwarded; f != 0 {
			t.Fatalf("node %d forwarded %d requests despite correct client ring", i, f)
		}
	}

	// Stale ring (wrong shard count): misroutes are forwarded, not
	// errored, and the operations still land.
	stale, err := Dial(ext, "direct", DialOptions{Node: 0, Shards: shards + 2})
	if err != nil {
		t.Fatalf("Dial stale: %v", err)
	}
	defer stale.Close()
	var forwardedBefore uint64
	for _, svc := range svcs {
		forwardedBefore += svc.Stats().Forwarded
	}
	for i := 0; i < 12; i++ {
		k := fmt.Sprintf("stale-%d", i)
		if err := stale.Put(ctx, k, []byte("s")); err != nil {
			t.Fatalf("stale Put %s: %v", k, err)
		}
		if v, ok, err := stale.Get(ctx, k); err != nil || !ok || string(v) != "s" {
			t.Fatalf("stale Get %s = %q %v %v", k, v, ok, err)
		}
	}
	var forwardedAfter uint64
	for _, svc := range svcs {
		forwardedAfter += svc.Stats().Forwarded
	}
	if forwardedAfter == forwardedBefore {
		t.Fatal("stale-ring client triggered no forwards (all routes accidentally correct?)")
	}
}
