package kv

import (
	"context"
	"fmt"
	"sort"
	"time"

	"amoeba/obs"
	"amoeba/shared"
)

// Sequenced state-digest audits.
//
// An audit is an ordinary command riding the shard's total order: the
// sequencer (or any member) submits opAudit, every replica applies it at the
// same sequence number, and each replica hashes its replicated state at that
// exact point in the order. Because the state machine is deterministic, the
// digests MUST agree — any mismatch is corruption (bit rot, a heisenbug in
// apply, a torn snapshot) and the per-node obs.Auditor localizes it to the
// (shard, audit seq, key-range) where the replicas first disagree.
//
// The digest is range-partitioned: keys hash into defaultAuditRanges buckets
// and each bucket folds its items with an order-independent wrapping sum, so
// two replicas' digests can be diffed bucket-by-bucket without shipping the
// state. Everything replicated participates — items, the dedup result
// window, routing epoch and pending table, transaction portions — while
// node-local fields (lockSeen, rings, trace hooks) are excluded by
// construction. The same fold (collapsed to one range) stamps WAL
// checkpoints via shared.Digester, so cold-start recovery verifies the state
// it restores.

const (
	// defaultAuditRanges is the key-range partition count the audit driver
	// requests: fine enough to localize a divergence to ~1/16th of the key
	// space, coarse enough that a digest report is a few hundred bytes.
	defaultAuditRanges = 16
	// maxAuditRanges bounds the partition count a decoded audit command may
	// request — a byzantine client must not make replicas allocate
	// unbounded digest vectors.
	maxAuditRanges = 4096
)

// FNV-64a, inlined so the digest needs no hasher allocation per fold.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// fnvAdd folds one 64-bit word, byte by byte big-endian.
func fnvAdd(h, v uint64) uint64 {
	for shift := 56; shift >= 0; shift -= 8 {
		h = (h ^ (v >> shift & 0xff)) * fnvPrime64
	}
	return h
}

// resultSum folds one dedup-window entry: id, outcome flags, key, and the
// SHAPE of read results — lengths and found bits; the values themselves are
// derived from items at apply time, and hashing lengths keeps the fold
// cheap. setResult maintains the wrapping sum of these across the window
// (mapSM.dedupSum) so digestState reads the whole window in O(1).
func resultSum(id uint64, r result) uint64 {
	var flags uint64
	if r.OK {
		flags |= 1
	}
	if r.Moved {
		flags |= 1 << 1
	}
	if r.Conflict {
		flags |= 1 << 2
	}
	if r.CondFailed {
		flags |= 1 << 3
	}
	flags |= uint64(r.TxnState) << 4
	h := fnvAdd(fnvOffset64, id)
	h = fnvAdd(h, flags)
	h = fnvStr(h, r.Key)
	h = fnvAdd(h, uint64(len(r.Values)))
	for i, v := range r.Values {
		h = fnvAdd(h, uint64(len(v)))
		if i < len(r.Found) && r.Found[i] {
			h = fnvAdd(h, 1)
		} else {
			h = fnvAdd(h, 0)
		}
	}
	return h
}

// digestState hashes the replicated state into n key-range digests plus a
// meta digest. It is a pure function of the replicated state: every replica
// of one shard computes the identical result at the same position in the
// total order, and a replica restored from a snapshot (nil vs empty slices
// normalised by the JSON round-trip) computes the same value as the replica
// that took it.
func (s *mapSM) digestState(n int) obs.Digest {
	if n <= 0 {
		n = 1
	}
	d := obs.Digest{
		Epoch:  s.routing.Epoch,
		Keys:   len(s.items),
		Ranges: make([]uint64, n),
	}
	// Items: per-key fold, bucketed by key hash, combined with a wrapping
	// sum so map iteration order cannot matter.
	for k, v := range s.items {
		h := fnvAdd(fnvOffset64, uint64(len(k)))
		h = fnvStr(h, k)
		h = fnvAdd(h, uint64(len(v)))
		h = fnvBytes(h, v)
		bucket := fnvStr(fnvOffset64, k) % uint64(n)
		d.Ranges[bucket] += h
	}
	// Meta: the dedup window as its incrementally-maintained wrapping sum
	// of per-entry folds (see resultSum; setResult keeps dedupSum current),
	// plus the entry count. The sum is order-independent, but honest
	// replicas apply the same total order and so hold the same FIFO — a
	// membership difference is what divergence looks like, and walking a
	// 64Ki-entry window on every audit is what the sum avoids. Then
	// routing, pending, and transaction state.
	m := uint64(fnvOffset64)
	m = fnvAdd(m, uint64(len(s.order)))
	m = fnvAdd(m, s.dedupSum)
	m = fnvAdd(m, s.routing.Epoch)
	m = fnvAdd(m, uint64(s.routing.Shards))
	m = fnvAdd(m, uint64(s.routing.VNodes))
	if s.pending != nil {
		m = fnvAdd(m, s.pending.Epoch)
		m = fnvAdd(m, uint64(s.pending.Shards))
		m = fnvAdd(m, uint64(s.pending.VNodes))
	}
	// Transaction portions, sorted by id for determinism, folded fully —
	// an in-flight portion's held-back writes are replicated state too.
	txnIDs := make([]uint64, 0, len(s.txns))
	for id := range s.txns {
		txnIDs = append(txnIDs, id)
	}
	sort.Slice(txnIDs, func(i, j int) bool { return txnIDs[i] < txnIDs[j] })
	m = fnvAdd(m, uint64(len(txnIDs)))
	for _, id := range txnIDs {
		p := s.txns[id]
		m = fnvAdd(m, p.TxnID)
		m = fnvAdd(m, uint64(p.State))
		m = fnvStr(m, p.HomeKey)
		m = fnvAdd(m, uint64(len(p.AllKeys)))
		for _, k := range p.AllKeys {
			m = fnvStr(m, k)
		}
		m = fnvAdd(m, uint64(len(p.Reads)))
		for i, k := range p.Reads {
			m = fnvStr(m, k)
			if i < len(p.Values) {
				m = fnvAdd(m, uint64(len(p.Values[i])))
				m = fnvBytes(m, p.Values[i])
			}
			if i < len(p.Found) && p.Found[i] {
				m = fnvAdd(m, 1)
			} else {
				m = fnvAdd(m, 0)
			}
		}
		m = fnvAdd(m, uint64(len(p.Writes)))
		for _, w := range p.Writes {
			m = fnvStr(m, w.Key)
			m = fnvBytes(m, w.Val)
			if w.Delete {
				m = fnvAdd(m, 1)
			} else {
				m = fnvAdd(m, 0)
			}
		}
		m = fnvAdd(m, uint64(len(p.Conds)))
		for _, cc := range p.Conds {
			m = fnvStr(m, cc.Key)
			m = fnvBytes(m, cc.Expect)
			if cc.ExpectPresent {
				m = fnvAdd(m, 1)
			} else {
				m = fnvAdd(m, 0)
			}
		}
	}
	m = fnvAdd(m, uint64(len(s.txnOrder)))
	for _, id := range s.txnOrder {
		m = fnvAdd(m, id)
	}
	d.Meta = m
	// Sum folds the meta and every range into one word — the value a WAL
	// checkpoint is stamped with.
	sum := fnvAdd(fnvOffset64, m)
	for _, r := range d.Ranges {
		sum = fnvAdd(sum, r)
	}
	d.Sum = sum
	return d
}

// StateDigest implements shared.Digester: the single-range collapse of the
// audit digest, stamped onto WAL checkpoints so recovery can verify the
// snapshot it restores (see wal.Log.RecoverVerified).
func (s *mapSM) StateDigest() uint64 {
	return s.digestState(1).Sum
}

var _ shared.Digester = (*mapSM)(nil)

// applyAudit evaluates one sequenced audit: hash the state as it stands at
// this position in the order (BEFORE recording the audit's own result), hand
// the digest to the node-local auditor hook, and record an OK result so the
// submitter's Wait completes. Dedup suppresses re-execution of a retried
// audit id, so one id yields at most one report per replica per timeline;
// WAL replay re-reporting an id recomputes the identical digest — harmless.
func (s *mapSM) applyAudit(c command) {
	if s.onAudit != nil {
		d := s.digestState(c.ranges)
		d.ID = c.id
		d.Seq = s.seq
		s.onAudit(s.shard, d)
	}
	s.setResult(c.id, result{OK: true})
}

// auditScope names one shard's audit stream — the same label the shard's
// flight-recorder events use, so a divergence dump and the shard's recent
// history line up.
func auditScope(store string, shard int) string {
	return fmt.Sprintf("kv/%s/%d", store, shard)
}

// auditNodeName labels this node's reports in the auditor.
func auditNodeName(nodeIndex int) string {
	return fmt.Sprintf("node-%d", nodeIndex)
}

// auditDriver periodically submits audit commands and reports apply
// progress. Every hosting node runs a driver (reporting its replicas'
// applied seq each tick, which feeds the apply-lag gauge), but only the
// shard's sequencer submits the audit command — one audit per shard per
// period, not one per replica.
func (s *Store) auditDriver(ctx context.Context) {
	defer s.healWG.Done()
	t := time.NewTicker(s.opts.AuditEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.auditTick(ctx)
		}
	}
}

// auditTick runs one audit period: progress reports for every hosted
// replica, plus an audit submission for each shard this node sequences.
func (s *Store) auditTick(ctx context.Context) {
	aud := s.opts.Group.Obs.Health()
	node := auditNodeName(s.opts.NodeIndex)
	for i, r := range s.snapshotShards() {
		if r == nil {
			continue
		}
		aud.Progress(auditScope(s.name, i), node, r.Applied())
		info := r.Info()
		if !info.IsSequencer {
			continue
		}
		cmd := encodeAudit(s.nextCmdID(), defaultAuditRanges)
		sctx, cancel := context.WithTimeout(ctx, s.opts.AuditEvery)
		err := r.Submit(sctx, cmd)
		cancel()
		if err != nil && ctx.Err() == nil {
			s.flight().Recordf(auditScope(s.name, i), "audit submit failed: %v", err)
		}
	}
}

// AuditNow submits one audit to every hosted shard and waits for each to
// apply locally, regardless of whether a periodic driver is running. Tests
// and the wire-protocol HEALTH path use it to force a fresh comparison.
func (s *Store) AuditNow(ctx context.Context) error {
	aud := s.opts.Group.Obs.Health()
	node := auditNodeName(s.opts.NodeIndex)
	for i, r := range s.snapshotShards() {
		if r == nil {
			continue
		}
		id := s.nextCmdID()
		if err := r.Submit(ctx, encodeAudit(id, defaultAuditRanges)); err != nil {
			return fmt.Errorf("kv: audit shard %d: %w", i, err)
		}
		err := r.Wait(ctx, func(sm shared.StateMachine) bool {
			_, done := sm.(*mapSM).results[id]
			return done
		})
		if err != nil {
			return fmt.Errorf("kv: audit shard %d: %w", i, err)
		}
		aud.Progress(auditScope(s.name, i), node, r.Applied())
	}
	return nil
}

// CorruptShard bit-flips one byte of one value in shard i's LOCAL replica —
// silent single-replica state corruption, exactly what the audit tier
// exists to catch. It reports the damaged key. Test hook: the fuzz
// harness's planted-divergence self-test and the kv regression test use it
// to prove a divergence is detected and localized.
func (s *Store) CorruptShard(i int) (string, bool) {
	r := s.Replica(i)
	if r == nil {
		return "", false
	}
	var key string
	var ok bool
	r.Read(func(m shared.StateMachine) {
		sm := m.(*mapSM)
		keys := make([]string, 0, len(sm.items))
		for k := range sm.items {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if len(sm.items[k]) == 0 {
				continue
			}
			nv := append([]byte(nil), sm.items[k]...)
			nv[0] ^= 0x80
			sm.items[k] = nv
			key, ok = k, true
			return
		}
		// Only empty values: corrupt by growing one instead.
		for _, k := range keys {
			sm.items[k] = []byte{0xff}
			key, ok = k, true
			return
		}
	})
	return key, ok
}
