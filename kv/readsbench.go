package kv

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"amoeba"
)

// This file measures what read leases buy: per-shard throughput of a 95/5
// read-heavy mix over the three read paths —
//
//	sequenced  every Get runs a read marker through the total order
//	leased     Gets served from the local replica under a valid lease
//	stale      opt-in bounded-staleness Gets (Client.StaleGet)
//
// The sequenced baseline runs on a leases-off cluster and the other two on a
// leases-on cluster, so the comparison is honest about the lease tax on the
// mix's writes (acceptance waits for lease holders' stored-acks). Like the
// other live-fabric benches, absolute numbers vary by host; the RATIOS are
// the measurement. cmd/amoeba-bench renders it as the "reads" experiment and
// CI commits it as BENCH_reads.json.

// ReadShardResult is one shard's throughput over the three paths.
type ReadShardResult struct {
	Shard        int     `json:"shard"`
	SequencedOps float64 `json:"sequenced_ops_per_sec"`
	LeasedOps    float64 `json:"leased_ops_per_sec"`
	StaleOps     float64 `json:"stale_ops_per_sec"`
	LeasedX      float64 `json:"leased_speedup"`
	StaleX       float64 `json:"stale_speedup"`
}

// ReadsReport is the whole experiment in machine-readable form for
// BENCH_reads.json.
type ReadsReport struct {
	Mix        string            `json:"mix"`
	Nodes      int               `json:"nodes"`
	Shards     []ReadShardResult `json:"shards"`
	MinLeasedX float64           `json:"min_leased_speedup"`
	LeaseReads uint64            `json:"lease_reads_served"`
	StaleReads uint64            `json:"stale_reads_served"`
}

const (
	readsBenchNodes  = 3
	readsBenchShards = 4
	readsMixDur      = 250 * time.Millisecond
	readsKeysPerShrd = 16
)

// readsMix drives the 95/5 mix against one shard's keys for readsMixDur and
// reports ops/sec: every 20th operation is a Put, the rest are reads through
// the supplied path.
func readsMix(ctx context.Context, cl *Client, keys []string, read func(key string) error) (float64, error) {
	val := []byte("mix-value")
	op := func(i int) error {
		k := keys[i%len(keys)]
		if i%20 == 19 {
			return cl.Put(ctx, k, val)
		}
		return read(k)
	}
	for i := 0; i < 40; i++ { // warm routes, locates, lease counters
		if err := op(i); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	deadline := start.Add(readsMixDur)
	ops := 0
	for i := 0; time.Now().Before(deadline); i++ {
		if err := op(i); err != nil {
			return 0, err
		}
		ops++
	}
	return float64(ops) / time.Since(start).Seconds(), nil
}

// readsCluster builds one fully-replicated cluster for the experiment and
// returns its stores, a bound client on node 0, per-shard key sets, and a
// teardown closure.
func readsCluster(ctx context.Context, net *amoeba.MemoryNetwork, name string, leases bool) (
	stores []*Store, cl *Client, keys map[int][]string, down func(), err error) {
	kernels := make([]*amoeba.Kernel, readsBenchNodes)
	for i := range kernels {
		if kernels[i], err = net.NewKernel(fmt.Sprintf("%s-node-%d", name, i)); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	stores, err = Bootstrap(ctx, kernels, name, Options{Shards: readsBenchShards, Leases: leases})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	cl = stores[0].NewClient()
	down = func() {
		cl.Close()
		for _, s := range stores {
			s.Close()
		}
	}
	keys = make(map[int][]string, readsBenchShards)
	for i := 0; len(keys[readsBenchShards-1]) < readsKeysPerShrd; i++ {
		k := fmt.Sprintf("reads-%d", i)
		s := stores[0].ShardFor(k)
		if len(keys[s]) < readsKeysPerShrd {
			keys[s] = append(keys[s], k)
		}
	}
	for _, ks := range keys {
		for _, k := range ks {
			if err := cl.Put(ctx, k, []byte("seed")); err != nil {
				down()
				return nil, nil, nil, nil, err
			}
		}
	}
	return stores, cl, keys, down, nil
}

// MeasureReads runs the experiment: a leases-off cluster for the sequenced
// baseline, a leases-on cluster for the leased and stale paths, the same
// 95/5 mix per shard on each. It fails if any shard's leased path beats the
// sequenced baseline by less than 5x, or if the leased/stale paths did not
// actually serve from leases.
func MeasureReads() (*ReadsReport, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	net := amoeba.NewMemoryNetwork()
	defer net.Close()

	_, seqCl, seqKeys, seqDown, err := readsCluster(ctx, net, "reads-seq", false)
	if err != nil {
		return nil, fmt.Errorf("sequenced cluster: %w", err)
	}
	defer seqDown()
	leaseStores, leaseCl, leaseKeys, leaseDown, err := readsCluster(ctx, net, "reads-lease", true)
	if err != nil {
		return nil, fmt.Errorf("leased cluster: %w", err)
	}
	defer leaseDown()

	// Leases establish on sync ticks; wait until every shard serves one.
	deadline := time.Now().Add(15 * time.Second)
	for shard := 0; shard < readsBenchShards; shard++ {
		for {
			if _, ok := leaseStores[0].leaseGet(shard, leaseKeys[shard][:1]); ok {
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("shard %d: lease never established", shard)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	plainGet := func(cl *Client) func(string) error {
		return func(k string) error {
			_, ok, err := cl.Get(ctx, k)
			if err == nil && !ok {
				err = fmt.Errorf("key %q vanished", k)
			}
			return err
		}
	}
	staleGet := func(k string) error {
		_, ok, _, err := leaseCl.StaleGet(ctx, k, time.Second)
		if err == nil && !ok {
			err = fmt.Errorf("key %q vanished", k)
		}
		return err
	}

	rep := &ReadsReport{
		Mix:        "95% Get / 5% Put, single client, fully replicated",
		Nodes:      readsBenchNodes,
		MinLeasedX: -1,
	}
	for shard := 0; shard < readsBenchShards; shard++ {
		seqOps, err := readsMix(ctx, seqCl, seqKeys[shard], plainGet(seqCl))
		if err != nil {
			return nil, fmt.Errorf("shard %d sequenced: %w", shard, err)
		}
		leasedOps, err := readsMix(ctx, leaseCl, leaseKeys[shard], plainGet(leaseCl))
		if err != nil {
			return nil, fmt.Errorf("shard %d leased: %w", shard, err)
		}
		staleOps, err := readsMix(ctx, leaseCl, leaseKeys[shard], staleGet)
		if err != nil {
			return nil, fmt.Errorf("shard %d stale: %w", shard, err)
		}
		r := ReadShardResult{
			Shard: shard, SequencedOps: seqOps, LeasedOps: leasedOps, StaleOps: staleOps,
			LeasedX: leasedOps / seqOps, StaleX: staleOps / seqOps,
		}
		if rep.MinLeasedX < 0 || r.LeasedX < rep.MinLeasedX {
			rep.MinLeasedX = r.LeasedX
		}
		rep.Shards = append(rep.Shards, r)
	}
	leased, _, stale, _ := leaseStores[0].LeaseStats()
	rep.LeaseReads, rep.StaleReads = leased, stale
	if leased == 0 {
		return nil, fmt.Errorf("leased path never served from a lease")
	}
	if stale == 0 {
		return nil, fmt.Errorf("stale path never served a bounded-staleness read")
	}
	if rep.MinLeasedX < 5 {
		return nil, fmt.Errorf("leased speedup %.1fx below the 5x bar", rep.MinLeasedX)
	}
	return rep, nil
}

// ReadsJSON renders the comparison for BENCH_reads.json.
func ReadsJSON(rep *ReadsReport) ([]byte, error) {
	out := struct {
		Experiment string       `json:"experiment"`
		Unit       string       `json:"unit"`
		Note       string       `json:"note"`
		Report     *ReadsReport `json:"report"`
	}{
		Experiment: "reads",
		Unit:       "mixed ops/sec per shard, live in-memory fabric (host-dependent; compare ratios)",
		Note:       "sequenced = read marker on the total order (leases off); leased = local replica reads under a sequencer lease; stale = Client.StaleGet with a 1s bound",
		Report:     rep,
	}
	return json.MarshalIndent(out, "", "  ")
}
