package kv

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"amoeba"
)

// This file measures what the service/client split costs: the latency of a
// sequenced Get over each access path —
//
//	local      the shard is hosted on the client's node (in-process)
//	direct     one RPC hop to the shard's well-known address
//	forwarded  an entry node answers the misroute with a ForwardRequest
//
// Unlike the paper-reproduction experiments (internal/experiments) it runs
// on the live in-memory fabric in real time, so absolute numbers vary by
// host; the RATIOS — what one RPC hop and one forward hop add over the
// in-process path — are the measurement. cmd/amoeba-bench renders it as the
// "proxied" experiment and CI commits it as BENCH_proxied.json.

// AccessPathResult is one access path's latency measurement, in
// machine-readable form for BENCH_proxied.json.
type AccessPathResult struct {
	Path       string  `json:"path"`
	MedianUs   float64 `json:"median_us"`
	P90Us      float64 `json:"p90_us"`
	VsLocal    float64 `json:"vs_local"`
	Forwarded  uint64  `json:"forwarded_requests,omitempty"`
	SampleSize int     `json:"samples"`
}

// accessPathSamples is the per-path sample count.
const accessPathSamples = 300

// MeasureAccessPaths builds a bounded-replication cluster with one Service
// per node and times sequenced Gets over the three access paths.
func MeasureAccessPaths() ([]AccessPathResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	const nodes, shards = 4, 4
	kernels := make([]*amoeba.Kernel, nodes)
	for i := range kernels {
		k, err := net.NewKernel(fmt.Sprintf("prox-node-%d", i))
		if err != nil {
			return nil, err
		}
		kernels[i] = k
	}
	stores, err := Bootstrap(ctx, kernels, "prox", Options{Shards: shards, Replication: 1})
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	svcs := make([]*Service, nodes)
	for i, s := range stores {
		if svcs[i], err = NewService(s); err != nil {
			return nil, err
		}
		defer svcs[i].Close()
	}

	// One key hosted on node 0 (the local path) and one hosted elsewhere
	// (the remote paths). Replication 1 puts shard i on node i exactly.
	keyOn := func(shard int) string {
		for i := 0; ; i++ {
			k := fmt.Sprintf("lat-%d-%d", shard, i)
			if stores[0].ShardFor(k) == shard {
				return k
			}
		}
	}
	localKey, remoteKey := keyOn(0), keyOn(2)

	// Clients: node-bound (local fast path + direct shard RPC), and a
	// ring-less Dial'd client whose every remote request enters node 0 and
	// is forwarded.
	bound := stores[0].NewClient()
	defer bound.Close()
	ext, err := net.NewKernel("prox-client")
	if err != nil {
		return nil, err
	}
	dialed, err := Dial(ext, "prox", DialOptions{Node: 0})
	if err != nil {
		return nil, err
	}
	defer dialed.Close()

	for _, k := range []string{localKey, remoteKey} {
		if err := bound.Put(ctx, k, []byte("x")); err != nil {
			return nil, err
		}
	}
	measure := func(get func() error) ([]float64, error) {
		for i := 0; i < accessPathSamples/10; i++ { // warm locates, routes, caches
			if err := get(); err != nil {
				return nil, err
			}
		}
		lats := make([]float64, 0, accessPathSamples)
		for i := 0; i < accessPathSamples; i++ {
			start := time.Now()
			if err := get(); err != nil {
				return nil, err
			}
			lats = append(lats, float64(time.Since(start).Microseconds()))
		}
		sort.Float64s(lats)
		return lats, nil
	}
	get := func(cl *Client, key string) func() error {
		return func() error {
			_, ok, err := cl.Get(ctx, key)
			if err == nil && !ok {
				err = fmt.Errorf("key %q vanished", key)
			}
			return err
		}
	}

	paths := []struct {
		name string
		fn   func() error
	}{
		{"local", get(bound, localKey)},
		{"direct", get(bound, remoteKey)},
		{"forwarded", get(dialed, remoteKey)},
	}
	results := make([]AccessPathResult, 0, len(paths))
	var localMedian float64
	for _, p := range paths {
		lats, err := measure(p.fn)
		if err != nil {
			return nil, fmt.Errorf("%s path: %w", p.name, err)
		}
		r := AccessPathResult{
			Path:       p.name,
			MedianUs:   lats[len(lats)/2],
			P90Us:      lats[len(lats)*9/10],
			SampleSize: accessPathSamples,
		}
		if p.name == "local" {
			localMedian = r.MedianUs
		}
		if localMedian > 0 {
			r.VsLocal = r.MedianUs / localMedian
		}
		results = append(results, r)
	}
	// The forwarded path must actually have forwarded.
	st := svcs[0].Stats()
	if st.Forwarded == 0 {
		return nil, fmt.Errorf("forwarded path produced no forwards (stats %+v)", st)
	}
	results[len(results)-1].Forwarded = st.Forwarded
	return results, nil
}

// AccessPathsJSON renders the comparison for BENCH_proxied.json.
func AccessPathsJSON(results []AccessPathResult) ([]byte, error) {
	out := struct {
		Experiment string             `json:"experiment"`
		Unit       string             `json:"unit"`
		Note       string             `json:"note"`
		Results    []AccessPathResult `json:"results"`
	}{
		Experiment: "proxied",
		Unit:       "sequenced Get latency, µs, live in-memory fabric (host-dependent; compare ratios)",
		Note:       "local = in-process fast path; direct = one RPC hop to the shard address; forwarded = entry node + ForwardRequest hop",
		Results:    results,
	}
	return json.MarshalIndent(out, "", "  ")
}
