package kv

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVirtualNodes is the number of ring points per shard. 64 points per
// shard keeps the maximum-to-mean key imbalance under ~20% for the shard
// counts this package targets.
const defaultVirtualNodes = 64

// Routing is the store's epoch-versioned shard routing table: everything a
// party needs to map keys onto shard groups, small enough to travel in every
// request and response. It is a first-class replicated object — each shard's
// state machine carries the routing it operates under, updated only by
// sequenced migration commands through the shard's total order, so every
// replica (and every write-ahead log) agrees on which epoch owns which keys.
//
// The Epoch strictly increases with every completed resharding. Two tables
// with the same Epoch are identical; a party holding the higher Epoch holds
// the newer truth. Clients stamp their epoch on requests, and a service
// answering a stale epoch attaches its own table to the response — in-flight
// clients converge on the new routing without any config service.
type Routing struct {
	// Epoch is the table's version; 0 is the bootstrap table.
	Epoch uint64
	// Shards is the shard-group count under this table.
	Shards int
	// VNodes is the consistent-hash points per shard.
	VNodes int
}

// ring materialises a Routing for key lookups.
func (rt Routing) ring(store string) *ring {
	return newRing(store, rt.Shards, rt.VNodes)
}

// ring maps keys to shards by consistent hashing: each shard owns
// virtualNodes points on a 64-bit circle and a key belongs to the shard
// owning the first point at or after the key's hash. Adding a shard moves
// only the keys that land on its new points, which is what keeps live
// resharding's data movement proportional to (new−old)/new instead of the
// (new−1)/new a naive rehash would move.
type ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// hash64 is FNV-1a with a 64-bit finalizer mix. Raw FNV of strings that
// differ only in a few trailing digits (shard/vnode labels, sequential keys)
// clusters in the high bits, which would bunch each shard's points into one
// arc of the circle; the fmix64 avalanche spreads them uniformly.
func hash64(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// newRing builds the ring for a named store. The store name participates in
// the point hashes so distinct stores shard the same keys differently.
func newRing(store string, shards, virtualNodes int) *ring {
	if virtualNodes <= 0 {
		virtualNodes = defaultVirtualNodes
	}
	r := &ring{
		points: make([]ringPoint, 0, shards*virtualNodes),
		shards: shards,
	}
	for s := 0; s < shards; s++ {
		for v := 0; v < virtualNodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(fmt.Sprintf("%s/shard-%d#%d", store, s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// shard returns the shard owning key.
func (r *ring) shard(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].shard
}

// owns reports whether shard s owns key under this ring.
func (r *ring) owns(s int, key string) bool { return r.shard(key) == s }
