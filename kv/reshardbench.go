package kv

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"amoeba"
)

// This file measures live resharding: what a 4→8 split costs a store under
// continuous client load (ops/s before, during, and after the handoff) and
// how much data it moves — the consistent-hash ring's (new−old)/new against
// the (new−1)/new an assignment that ignores placement would move. Like the
// proxied and durable benches it runs on the live in-memory fabric in real
// time, so absolute ops/s vary by host; the during/before RATIO and the
// moved fraction are the measurement. cmd/amoeba-bench renders it as the
// "reshard" experiment and CI commits it as BENCH_reshard.json.

// ReshardPhase is one load window's throughput.
type ReshardPhase struct {
	Phase      string  `json:"phase"` // before | during | after
	Ops        uint64  `json:"ops"`
	DurationMs float64 `json:"duration_ms"`
	OpsPerSec  float64 `json:"ops_per_sec"`
}

// ReshardBenchResult is the machine-readable result for BENCH_reshard.json.
type ReshardBenchResult struct {
	OldShards int `json:"old_shards"`
	NewShards int `json:"new_shards"`
	Nodes     int `json:"nodes"`
	Keys      int `json:"keys"`

	Phases []ReshardPhase `json:"phases"`
	// DuringVsBefore is the throughput retained while the handoff ran.
	DuringVsBefore float64 `json:"during_vs_before"`
	// ReshardMs is the wall-clock duration of Resharding under load.
	ReshardMs float64 `json:"reshard_ms"`

	// MovedKeys/MovedRatio: keys whose owner changed under the new table
	// (consistent hashing: ≈ (new−old)/new). NaiveRatio is the fraction an
	// independent reassignment of the same keys moves (≈ (new−1)/new) —
	// the rehash a placement-oblivious scheme would pay.
	MovedKeys  int     `json:"moved_keys"`
	MovedRatio float64 `json:"moved_ratio"`
	NaiveRatio float64 `json:"naive_ratio"`

	// Errors counts client operations that failed during the whole run
	// (must be 0: the handoff holds, it does not fail).
	Errors uint64 `json:"errors"`
}

// MeasureReshard runs the split-under-load measurement.
func MeasureReshard() (*ReshardBenchResult, error) {
	const (
		nodes     = 4
		oldShards = 4
		newShards = 8
		keys      = 2000
		clients   = 8
		window    = 700 * time.Millisecond
	)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	kernels := make([]*amoeba.Kernel, nodes)
	for i := range kernels {
		k, err := net.NewKernel(fmt.Sprintf("reshard-node-%d", i))
		if err != nil {
			return nil, err
		}
		kernels[i] = k
	}
	stores, err := Bootstrap(ctx, kernels, "reshard-bench", Options{Shards: oldShards})
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()

	// Seed the keyspace and precompute the movement ratios.
	seed := stores[0].NewClient()
	pairs := make([]Pair, keys)
	allKeys := make([]string, keys)
	for i := range pairs {
		k := fmt.Sprintf("bench-%05d", i)
		pairs[i] = Pair{Key: k, Val: []byte(fmt.Sprintf("v%05d", i))}
		allKeys[i] = k
	}
	if err := seed.BatchPut(ctx, pairs); err != nil {
		return nil, fmt.Errorf("seeding: %w", err)
	}
	seed.Close()
	oldRing := Routing{Shards: oldShards, VNodes: defaultVirtualNodes}.ring("reshard-bench")
	newRing := Routing{Shards: newShards, VNodes: defaultVirtualNodes}.ring("reshard-bench")
	moved, naiveMoved := 0, 0
	for _, k := range allKeys {
		if oldRing.shard(k) != newRing.shard(k) {
			moved++
		}
		// An independent reassignment keeps a key only by the 1/new
		// chance that the fresh placement lands where it already was.
		if int(hash64(k+"#independent-rehash")%uint64(newShards)) != oldRing.shard(k) {
			naiveMoved++
		}
	}

	// Continuous load for the whole run; phase boundaries are sampled from
	// the shared counter.
	var (
		ops               atomic.Uint64
		errs              atomic.Uint64
		wg                sync.WaitGroup
		loadCtx, stopLoad = context.WithCancel(ctx)
	)
	defer stopLoad()
	for c := 0; c < clients; c++ {
		cl := stores[c%nodes].NewClient()
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cl.Close()
			for i := 0; loadCtx.Err() == nil; i++ {
				k := allKeys[(c*31+i)%len(allKeys)]
				var err error
				if i%5 == 0 {
					_, _, err = cl.Get(loadCtx, k)
				} else {
					err = cl.Put(loadCtx, k, []byte("w"))
				}
				switch {
				case err == nil:
					ops.Add(1)
				case loadCtx.Err() != nil:
					return
				default:
					errs.Add(1)
				}
			}
		}()
	}

	phase := func(name string, run func() error) (ReshardPhase, error) {
		startOps, start := ops.Load(), time.Now()
		err := run()
		d, n := time.Since(start), ops.Load()-startOps
		return ReshardPhase{
			Phase:      name,
			Ops:        n,
			DurationMs: float64(d.Microseconds()) / 1000,
			OpsPerSec:  float64(n) / d.Seconds(),
		}, err
	}
	sleep := func() error {
		select {
		case <-time.After(window):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	res := &ReshardBenchResult{
		OldShards: oldShards, NewShards: newShards, Nodes: nodes, Keys: keys,
		MovedKeys:  moved,
		MovedRatio: float64(moved) / keys,
		NaiveRatio: float64(naiveMoved) / keys,
	}
	before, err := phase("before", sleep)
	if err != nil {
		return nil, err
	}
	during, err := phase("during", func() error { return stores[1].Resharding(ctx, newShards) })
	if err != nil {
		return nil, fmt.Errorf("resharding under load: %w", err)
	}
	after, err := phase("after", sleep)
	if err != nil {
		return nil, err
	}
	stopLoad()
	wg.Wait()
	res.Phases = []ReshardPhase{before, during, after}
	res.ReshardMs = during.DurationMs
	if before.OpsPerSec > 0 {
		res.DuringVsBefore = during.OpsPerSec / before.OpsPerSec
	}
	res.Errors = errs.Load()
	if res.Errors > 0 {
		return nil, fmt.Errorf("%d client operations failed during the handoff", res.Errors)
	}
	// Sanity: the final table must serve every key exactly once.
	check := stores[2].NewClient()
	defer check.Close()
	for i := 0; i < keys; i += 97 {
		if _, ok, err := check.Get(ctx, allKeys[i]); err != nil || !ok {
			return nil, fmt.Errorf("key %q after split: found=%v err=%v", allKeys[i], ok, err)
		}
	}
	return res, nil
}

// ReshardJSON renders the measurement for BENCH_reshard.json.
func ReshardJSON(res *ReshardBenchResult) ([]byte, error) {
	out := struct {
		Experiment string              `json:"experiment"`
		Unit       string              `json:"unit"`
		Note       string              `json:"note"`
		Result     *ReshardBenchResult `json:"result"`
	}{
		Experiment: "reshard",
		Unit:       "aggregate client ops/s, live in-memory fabric (host-dependent; compare the during/before ratio)",
		Note:       "live 4→8 split under continuous load; moved_ratio is the consistent-hash movement (≈1/2 for doubling) vs naive_ratio for an independent rehash (≈7/8)",
		Result:     res,
	}
	return json.MarshalIndent(out, "", "  ")
}
