package kv

import (
	"context"
	"encoding/json"
	"time"

	"amoeba/obs"
)

// This file measures the observability layer itself: what the compiled-in
// instrumentation costs when enabled, and the per-stage latency breakdown it
// produces. It runs the sharded workload repeatedly — with no hub (every
// instrument is the nil no-op sink) and with a full hub (histograms,
// counters, tracer, flight recorder all live) — in a mirrored ABBA schedule
// so host warm-up drift cancels instead of biasing either side.
// cmd/amoeba-bench renders it as the "observed" experiment and CI commits it
// as BENCH_observed.json.

// ObservedBenchResult is the machine-readable output for
// BENCH_observed.json: the enabled-vs-disabled throughput comparison plus
// the per-stage latency quantiles the enabled run collected.
type ObservedBenchResult struct {
	// Trials is the number of runs per mode in the ABBA schedule.
	Trials int `json:"trials"`
	// DisabledOpsPerSec / EnabledOpsPerSec are the aggregate ordered-op
	// throughputs (total ops over total measured time) without and with
	// the hub attached.
	DisabledOpsPerSec float64 `json:"disabled_ops_per_sec"`
	EnabledOpsPerSec  float64 `json:"enabled_ops_per_sec"`
	// OverheadPercent is (1 − enabled/disabled)·100 — negative means the
	// enabled runs were faster (noise floor).
	OverheadPercent float64 `json:"overhead_percent"`
	// Stages is every pipeline stage the enabled runs observed — sequencer
	// append/multicast, delivery wait, replica apply, client paths — with
	// p50/p90/p99/max in power-of-two-ns bucket bounds.
	Stages []obs.StageQuantiles `json:"stages"`
}

// observedSchedule is the run order: D = hub detached, E = hub attached.
// The host's throughput drifts slowly (warm-up, background load) by more
// than the effect measured, so runs are laid out in mirrored ABBA blocks —
// DEED then EDDE — which cancel any linear drift component exactly: both
// modes occupy the same average position in time.
const observedSchedule = "DEEDEDDEEDDEDEED"

// MeasureObserved runs the enabled-vs-disabled comparison and returns the
// throughput delta plus the enabled runs' stage summary.
func MeasureObserved() (*ObservedBenchResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	base := LoadOptions{
		Shards:       4,
		Nodes:        4,
		Clients:      16,
		Duration:     time.Second,
		ReadFraction: 0.2,
		Seed:         1,
	}
	// One hub across every enabled run: the stage summary aggregates all
	// enabled observations.
	hub := obs.NewHub(obs.Options{Node: "bench", TraceMod: 1024})
	var dOps, eOps uint64
	var dTime, eTime time.Duration
	for _, mode := range observedSchedule {
		o := base
		if mode == 'E' {
			o.Group.Obs = hub
		}
		rep, err := RunLoad(ctx, o)
		if err != nil {
			return nil, err
		}
		if mode == 'E' {
			eOps += rep.Ops
			eTime += rep.Elapsed
		} else {
			dOps += rep.Ops
			dTime += rep.Elapsed
		}
	}
	res := &ObservedBenchResult{
		Trials:            len(observedSchedule) / 2,
		DisabledOpsPerSec: float64(dOps) / dTime.Seconds(),
		EnabledOpsPerSec:  float64(eOps) / eTime.Seconds(),
		Stages:            hub.Registry().StageSummary(),
	}
	res.OverheadPercent = (1 - res.EnabledOpsPerSec/res.DisabledOpsPerSec) * 100
	return res, nil
}

// ObservedJSON renders the result for BENCH_observed.json.
func ObservedJSON(res *ObservedBenchResult) ([]byte, error) {
	out := struct {
		Experiment string `json:"experiment"`
		Unit       string `json:"unit"`
		Note       string `json:"note"`
		*ObservedBenchResult
	}{
		Experiment:          "observed",
		Unit:                "ops/s (throughput), ns (stage quantiles, power-of-two bucket bounds)",
		Note:                "instrumentation cost: same sharded workload with the obs hub detached (nil no-op sinks) vs attached (histograms+tracer+flight live); mirrored ABBA run schedule, aggregate throughput per mode",
		ObservedBenchResult: res,
	}
	return json.MarshalIndent(out, "", "  ")
}
