package kv

import (
	"fmt"
	"testing"
	"time"

	"amoeba"
	"amoeba/obs"
)

// TestDigestDeterministicAcrossSnapshotRestore: a replica restored from a
// snapshot must digest identically to the one that took it — otherwise every
// state transfer would flag a false divergence, and checkpoint verification
// would refuse every valid checkpoint.
func TestDigestDeterministicAcrossSnapshotRestore(t *testing.T) {
	rt := Routing{Epoch: 0, Shards: 1, VNodes: 8}
	a := newMapSM("dig", 0, rt, 64, nil)
	for i := 0; i < 50; i++ {
		a.Apply(encodePut(uint64(1000+i), fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("val-%d", i))))
	}
	a.Apply(encodeDelete(2000, "key-3"))
	a.Apply(encodeGet(2001, []string{"key-1", "missing"}))
	a.Apply(encodeCAS(2002, "key-5", true, []byte("val-5"), []byte("swapped")))

	snap, err := a.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	b := newMapSM("dig", 0, rt, 64, nil)
	if err := b.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	da, db := a.digestState(defaultAuditRanges), b.digestState(defaultAuditRanges)
	if da.Sum != db.Sum || da.Meta != db.Meta {
		t.Fatalf("digest changed across snapshot/restore: %x/%x vs %x/%x",
			da.Sum, da.Meta, db.Sum, db.Meta)
	}
	for i := range da.Ranges {
		if da.Ranges[i] != db.Ranges[i] {
			t.Fatalf("range %d differs: %x vs %x", i, da.Ranges[i], db.Ranges[i])
		}
	}
	if a.StateDigest() != b.StateDigest() {
		t.Fatal("StateDigest differs across snapshot/restore")
	}

	// And the digest actually discriminates: flip one value byte.
	b.items["key-7"] = []byte("vAl-7")
	if a.digestState(defaultAuditRanges).Sum == b.digestState(defaultAuditRanges).Sum {
		t.Fatal("digest blind to a value mutation")
	}
}

// TestAuditDetectsPlantedDivergence is the tentpole regression: bit-flip one
// value on one replica — silent state corruption replication cannot catch,
// because the replica still answers protocol messages correctly — and the
// periodic sequenced audit must flag it, localized to the right shard and
// key-range, with the flight recorder dumped at detection.
func TestAuditDetectsPlantedDivergence(t *testing.T) {
	ctx := ctxT(t, 60*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	hub := obs.NewHub(obs.Options{Node: "audit-test"})
	const period = 50 * time.Millisecond
	stores := newCluster(t, ctx, net, "aud", 3, Options{
		Shards:     2,
		AuditEvery: period,
		Group:      amoeba.GroupOptions{Obs: hub},
	})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	cl := stores[0].NewClient()
	for i := 0; i < 64; i++ {
		if err := cl.Put(ctx, fmt.Sprintf("k-%d", i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}

	// A clean cluster audits to ok first.
	aud := hub.Health()
	deadline := time.Now().Add(20 * period)
	for aud.Rollup("kv/aud/") != obs.VerdictOK {
		if time.Now().After(deadline) {
			t.Fatalf("clean cluster never audited ok: %s", aud.Summary("kv/aud/"))
		}
		time.Sleep(period / 5)
	}

	// Plant the corruption on a non-submitting replica of shard 1.
	const shard = 1
	key, ok := stores[1].CorruptShard(shard)
	if !ok {
		t.Fatal("CorruptShard found nothing to damage")
	}
	planted := time.Now()

	for aud.Rollup("kv/aud/") != obs.VerdictDiverged {
		if time.Now().After(planted.Add(40 * period)) {
			t.Fatalf("planted corruption never detected: %s", aud.Summary("kv/aud/"))
		}
		time.Sleep(period / 5)
	}
	detected := time.Since(planted)

	divs := aud.Divergences()
	if len(divs) == 0 {
		t.Fatal("diverged verdict with no divergence record")
	}
	div := divs[0]
	if div.Scope != auditScope("aud", shard) {
		t.Fatalf("divergence localized to %q, want %q", div.Scope, auditScope("aud", shard))
	}
	if div.Seq == 0 || div.ID == 0 {
		t.Fatalf("divergence missing order position: seq=%d id=%d", div.Seq, div.ID)
	}
	wantRange := int(fnvStr(fnvOffset64, key) % defaultAuditRanges)
	foundRange := false
	for _, r := range div.Ranges {
		if r == wantRange {
			foundRange = true
		}
	}
	if !foundRange {
		t.Fatalf("divergence ranges %v do not include corrupted key %q's range %d",
			div.Ranges, key, wantRange)
	}
	if div.FlightDump == "" {
		t.Fatal("divergence did not capture a flight-recorder dump")
	}
	if len(div.Nodes) < 2 {
		t.Fatalf("divergence names %v, want the disagreeing replicas", div.Nodes)
	}
	// Detection rode the periodic audit, not some slow scan: well within a
	// handful of periods (one period nominal; slack for scheduling).
	if detected > 30*period {
		t.Fatalf("detection took %v, want within a few %v audit periods", detected, period)
	}

	// The healthy shard's scope must NOT be flagged.
	for _, sh := range aud.Snapshot("kv/aud/") {
		if sh.Scope == auditScope("aud", 1-shard) && sh.Verdict == obs.VerdictDiverged {
			t.Fatalf("healthy shard flagged diverged: %+v", sh)
		}
	}
}

// TestAuditNowForcesComparison: with no periodic driver configured,
// AuditNow still runs one sequenced audit per hosted shard and the auditor
// reaches a verdict.
func TestAuditNowForcesComparison(t *testing.T) {
	ctx := ctxT(t, 30*time.Second)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	hub := obs.NewHub(obs.Options{Node: "auditnow-test"})
	stores := newCluster(t, ctx, net, "anow", 2, Options{
		Shards: 2,
		Group:  amoeba.GroupOptions{Obs: hub},
	})
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	cl := stores[0].NewClient()
	for i := 0; i < 16; i++ {
		if err := cl.Put(ctx, fmt.Sprintf("n-%d", i), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := stores[0].AuditNow(ctx); err != nil {
		t.Fatalf("AuditNow: %v", err)
	}
	aud := hub.Health()
	// Both replicas of each shard applied the same sequenced audit; the
	// remote replica's report may trail the submitter's Wait by one apply
	// notification, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for aud.Rollup("kv/anow/") != obs.VerdictOK {
		if time.Now().After(deadline) {
			t.Fatalf("AuditNow never converged to ok: %s", aud.Summary("kv/anow/"))
		}
		time.Sleep(10 * time.Millisecond)
	}
}
