package kv

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"amoeba"
	"amoeba/obs"
	"amoeba/shared"
)

// errMoved reports a command that reached a shard which does not serve the
// key at that point in the total order: the range is frozen mid-handoff or
// already moved to another shard. The caller re-resolves the owner under
// the (possibly updated) routing table and retries; command ids keep the
// retry exactly-once.
var errMoved = errors.New("kv: key range moved or frozen by resharding")

// movedRetryDelay spaces retries of operations held by a frozen range while
// the handoff completes.
const movedRetryDelay = 20 * time.Millisecond

// Client issues key-value operations against a store. Methods are safe for
// concurrent use; create several clients for independent command streams.
//
// A client is transport-agnostic: every operation is a Request routed to the
// shard owning its key, and each shard is reached over whichever access path
// is available —
//
//   - local fast path: the shard is hosted on the node the client is bound
//     to (Store.NewClient); the command goes straight into the in-process
//     replica, no wire protocol involved;
//   - direct RPC: the client knows the routing table, so it calls the
//     shard's well-known address (ShardAddr), served by every hosting node;
//   - proxied: the client holds only an entry node's address (Dial) — or
//     just the store's name (DialOptions.Anycast); the entry node serves
//     shards it hosts and answers misroutes with a ForwardRequest to an
//     owning node — the reply comes back from wherever the request lands.
//
// All three speak the same versioned codec (see EncodeRequest), and command
// ids chosen here are deduplicated by the replicas, so retries across paths,
// forwards, failovers, and routing epochs stay exactly-once. Sequenced reads
// run the read marker through the total order on whichever replica serves
// them, so Get and MGet are linearizable over every path.
//
// Requests carry the client's routing epoch; a serving node at a different
// epoch answers with its own table attached, and the client adopts it — so
// a client that dialed a 4-shard store keeps working, without any config
// service, while the store resplits to 8.
type Client struct {
	s       *Store // local binding; nil for Dial'd clients
	kernel  *amoeba.Kernel
	cluster string
	entry   amoeba.Addr // entry-node address; 0: direct shard addressing only
	anycast bool        // fall back to the store-wide anycast entry address
	nonce   uint64
	seq     atomic.Uint64

	// Dial'd clients with ring knowledge cache their own routing view,
	// refreshed from responses; bound clients read the store's.
	rtMu  sync.RWMutex
	rt    Routing
	cring *ring // nil: no ring knowledge, everything goes via entry

	// The RPC connection pool, one client per shard (key -1: the entry
	// path). Per-shard pooling keeps a slow shard's in-flight calls from
	// head-of-line blocking reads bound for its siblings, which is what
	// lets a fleet-shaped reader drive every shard's lease holders at once.
	rpcMu   sync.Mutex
	rpcPool map[int]*amoeba.RPCClient
	closed  bool

	// Topology learned from v4 responses (bound clients read the store's
	// options instead): node count and replication factor, which combined
	// with the placement rule name the nodes hosting each shard — the
	// targets lease-read distribution rotates over.
	topoNodes atomic.Int64
	topoRepl  atomic.Int64
	readSeq   atomic.Uint64 // lease-read rotation cursor

	localOps  atomic.Uint64
	remoteOps atomic.Uint64
	rtUpdates atomic.Uint64
	// Read-path counters: reads served under a lease or at bounded
	// staleness (locally or reported by a remote ReadPath), and reads that
	// fell back to the sequenced marker.
	leaseReads atomic.Uint64
	staleReads atomic.Uint64

	// Observability (nil = no-op): submit→reply latency split by access
	// path, plus the op tracer keyed by command ids.
	localH   *obs.Histogram // amoeba_kv_client_local_ns
	directH  *obs.Histogram // amoeba_kv_client_direct_ns
	fwdH     *obs.Histogram // amoeba_kv_client_forwarded_ns
	tracer   *obs.Tracer
	obsUnreg func() // detaches the stats source from the hub registry

	// Transaction instrumentation (see txn.go).
	txnPrepH     *obs.Histogram // amoeba_kv_txn_prepare_ns
	txnResH      *obs.Histogram // amoeba_kv_txn_resolve_ns
	txnTotalH    *obs.Histogram // amoeba_kv_txn_total_ns
	txnCommitted atomic.Uint64
	txnAborted   atomic.Uint64
	txnConflicts atomic.Uint64
}

// wireObs resolves the client's instruments from a hub (nil hub = no-op).
func (c *Client) wireObs(hub *obs.Hub) {
	c.localH = hub.Histogram("amoeba_kv_client_local_ns")
	c.directH = hub.Histogram("amoeba_kv_client_direct_ns")
	c.fwdH = hub.Histogram("amoeba_kv_client_forwarded_ns")
	c.txnPrepH = hub.Histogram("amoeba_kv_txn_prepare_ns")
	c.txnResH = hub.Histogram("amoeba_kv_txn_resolve_ns")
	c.txnTotalH = hub.Histogram("amoeba_kv_txn_total_ns")
	c.tracer = hub.Tracer()
	if reg := hub.Registry(); reg != nil {
		c.obsUnreg = reg.RegisterSource(func() []obs.Sample {
			return []obs.Sample{
				{Name: "amoeba_kv_client_local_ops_total", Value: c.localOps.Load()},
				{Name: "amoeba_kv_client_remote_ops_total", Value: c.remoteOps.Load()},
				{Name: "amoeba_kv_client_routing_updates_total", Value: c.rtUpdates.Load()},
				{Name: "amoeba_kv_client_lease_reads_total", Value: c.leaseReads.Load()},
				{Name: "amoeba_kv_client_stale_reads_total", Value: c.staleReads.Load()},
				{Name: "amoeba_kv_client_txn_committed_total", Value: c.txnCommitted.Load()},
				{Name: "amoeba_kv_client_txn_aborted_total", Value: c.txnAborted.Load()},
				{Name: "amoeba_kv_client_txn_conflict_retries_total", Value: c.txnConflicts.Load()},
			}
		})
	}
}

// ClientStats counts which access paths a client's operations took.
type ClientStats struct {
	// LocalOps counts operations (or per-shard parts of multi-shard
	// operations) served by the in-process fast path.
	LocalOps uint64
	// RemoteOps counts parts that left the client over RPC (direct to a
	// shard's address or via the entry node).
	RemoteOps uint64
	// RoutingUpdates counts routing tables adopted from responses (a
	// server at a different epoch taught the client the new table).
	RoutingUpdates uint64
	// LeaseReads counts reads served from a replica's state under a read
	// lease (locally or remotely) instead of a sequenced marker.
	LeaseReads uint64
	// StaleReads counts reads served at a bounded staleness (StaleGet's
	// fast path).
	StaleReads uint64
}

// Stats returns a snapshot of the client's access-path counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		LocalOps:       c.localOps.Load(),
		RemoteOps:      c.remoteOps.Load(),
		RoutingUpdates: c.rtUpdates.Load(),
		LeaseReads:     c.leaseReads.Load(),
		StaleReads:     c.staleReads.Load(),
	}
}

// NewClient returns a client bound to this node: shards hosted here are
// served in process, and — when the store runs with bounded replication —
// shards hosted elsewhere are reached over RPC through their well-known
// addresses, provided the hosting nodes run a Service. The client shares
// the node's routing table, so it follows reshardings as they commit.
func (s *Store) NewClient() *Client {
	c := &Client{
		s:       s,
		kernel:  s.kernel,
		cluster: s.name,
		nonce:   clientNonce(),
	}
	c.topoNodes.Store(int64(s.opts.Nodes))
	c.topoRepl.Store(int64(s.opts.Replication))
	c.wireObs(s.opts.Group.Obs)
	return c
}

// DialOptions configures Dial.
type DialOptions struct {
	// Node is the entry node's placement slot: requests enter the store at
	// NodeAddr(cluster, Node). Ignored when Addr is set.
	Node int
	// Addr overrides Node with an explicit entry address — any node's
	// NodeAddr, or any address answering the kv access protocol.
	Addr amoeba.Addr
	// Anycast enters the store through its store-wide anycast address
	// (StoreAddr) instead of a specific node: every node's Service
	// registers it, so the client needs nothing but the store name — FLIP
	// locates whichever node answers, and retransmissions re-locate a
	// survivor when that node dies. Overrides Node; Addr still wins.
	Anycast bool
	// Shards, when non-zero, gives the client ring knowledge: requests go
	// straight to the owning shard's well-known address (one hop) instead
	// of through the entry node. It should match the store's bootstrap
	// shard count; a stale value still works — the service answers
	// misroutes with a ForwardRequest and attaches its routing table, so
	// the client converges after one hop.
	Shards int
	// VirtualNodes matches Options.VirtualNodes (default 64). Meaningful
	// only with Shards.
	VirtualNodes int
	// Obs wires the client into an observability hub: access-path latency
	// histograms, op counters, and trace spans for sampled command ids.
	// Nil (the default) is the no-op sink.
	Obs *obs.Hub
}

// Dial returns a client that reaches the named store over RPC only: it holds
// nothing but an entry address (and, optionally, ring knowledge), yet serves
// the whole keyspace — the entry node proxies or forwards whatever it does
// not host. The kernel is the caller's network attachment; it need not host
// any part of the store.
func Dial(k *amoeba.Kernel, cluster string, o DialOptions) (*Client, error) {
	if k == nil {
		return nil, fmt.Errorf("kv: dialing %q: kernel is required", cluster)
	}
	c := &Client{
		kernel:  k,
		cluster: cluster,
		entry:   o.Addr,
		anycast: o.Anycast,
		nonce:   clientNonce(),
	}
	if c.entry == 0 {
		if o.Anycast {
			c.entry = StoreAddr(cluster)
		} else {
			c.entry = NodeAddr(cluster, o.Node)
		}
	}
	if o.Shards > 0 {
		vn := o.VirtualNodes
		if vn <= 0 {
			vn = defaultVirtualNodes
		}
		c.rt = Routing{Epoch: 0, Shards: o.Shards, VNodes: vn}
		c.cring = c.rt.ring(cluster)
	}
	c.wireObs(o.Obs)
	return c, nil
}

// clientNonce draws the random base for this client's command ids.
func clientNonce() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("kv: reading client nonce: %v", err))
	}
	return binary.BigEndian.Uint64(b[:])
}

// nextID returns a command id unique across clients and operations: a random
// 64-bit client nonce perturbed by a per-client counter.
func (c *Client) nextID() uint64 { return c.nonce + c.seq.Add(1) }

// routingRing returns the routing view the client targets requests with:
// the bound store's live table, the Dial'd client's cached table, or
// (nil, zero table) for ring-less clients.
func (c *Client) routingRing() (*ring, Routing) {
	if c.s != nil {
		return c.s.routingRing()
	}
	c.rtMu.RLock()
	defer c.rtMu.RUnlock()
	return c.cring, c.rt
}

// adoptRouting installs a newer table a response carried (Dial'd clients
// with ring knowledge; bound clients follow their store instead).
func (c *Client) adoptRouting(rt Routing) {
	if c.s != nil || rt.Shards <= 0 {
		return
	}
	c.rtMu.Lock()
	if c.cring != nil && rt.Epoch > c.rt.Epoch {
		c.rt = rt
		c.cring = rt.ring(c.cluster)
		c.rtUpdates.Add(1)
	}
	c.rtMu.Unlock()
}

// Routing returns the table the client currently routes by (zero value for
// ring-less clients).
func (c *Client) Routing() Routing {
	_, rt := c.routingRing()
	return rt
}

// Close releases the client's RPC resources, if any were created. Operations
// that never left the node need no Close.
func (c *Client) Close() {
	c.rpcMu.Lock()
	defer c.rpcMu.Unlock()
	c.closed = true
	for shard, cl := range c.rpcPool {
		cl.Close()
		delete(c.rpcPool, shard)
	}
	if c.obsUnreg != nil {
		c.obsUnreg()
		c.obsUnreg = nil
	}
}

// rpcClient returns shard's pooled RPC client, creating it on first use
// (shard -1: the entry path's connection).
func (c *Client) rpcClient(shard int) (*amoeba.RPCClient, error) {
	if shard < 0 {
		shard = -1
	}
	c.rpcMu.Lock()
	defer c.rpcMu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("kv: client closed")
	}
	if c.rpcPool == nil {
		c.rpcPool = make(map[int]*amoeba.RPCClient)
	}
	if cl, ok := c.rpcPool[shard]; ok {
		return cl, nil
	}
	cl, err := c.kernel.NewRPCClient()
	if err != nil {
		return nil, fmt.Errorf("kv: creating RPC client: %w", err)
	}
	c.rpcPool[shard] = cl
	return cl, nil
}

// sleepCtx pauses between retries of operations held by a frozen range.
func sleepCtx(ctx context.Context, d time.Duration) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// --- The generic entry point -------------------------------------------------

// Do executes one access-protocol request: the single entry every public
// method, the amoeba-kv daemon, and the Service proxy route through. Command
// ids are assigned here if the request does not carry them; multi-shard
// requests (ReqGet over several keys, ReqBatchPut) are split by the routing
// table and scatter-gathered, each part over its own best path. Operations
// that land on a range mid-handoff are held and retried internally until
// the epoch flips — the ids make the retries exactly-once.
//
// The caller's Request is never modified: ids assigned for one execution
// live on an internal copy, so a Request value can be rebuilt or reused
// without a stale id silently deduplicating the next operation away.
func (c *Client) Do(ctx context.Context, caller *Request) (*Response, error) {
	cp := *caller
	req := &cp
	switch req.Op {
	case ReqPut, ReqDelete, ReqCAS:
		if req.ID == 0 {
			req.ID = c.nextID()
		}
		c.tracer.Addf(req.ID, "submitted op=%d key=%q", req.Op, req.Key)
		resp, err := c.doShard(ctx, c.shardFor(req.Key), req)
		if err != nil {
			c.tracer.Addf(req.ID, "failed: %v", err)
		} else {
			c.tracer.Add(req.ID, "replied")
		}
		return resp, err
	case ReqGet:
		if len(req.Keys) == 0 {
			return nil, fmt.Errorf("kv: get of zero keys")
		}
		if req.ID == 0 {
			req.ID = c.nextID()
		}
		// Invite lease serving: a bound client knows whether its store
		// grants leases; a Dial'd client cannot know, and the flag is free
		// when the server holds none. Not combined with stale reads — the
		// staleness bound is the weaker, cheaper contract.
		if req.Flags&flagStaleRead == 0 && (c.s == nil || c.s.leasesOn()) {
			req.Flags |= flagLeaseRead
		}
		c.tracer.Addf(req.ID, "submitted op=get keys=%d", len(req.Keys))
		for {
			resp, err := c.doGet(ctx, req)
			if !errors.Is(err, errMoved) {
				if err == nil {
					c.tracer.Add(req.ID, "replied")
				}
				return resp, err
			}
			c.tracer.Add(req.ID, "moved, retrying")
			if err := sleepCtx(ctx, movedRetryDelay); err != nil {
				return nil, err
			}
		}
	case ReqBatchPut:
		if len(req.Pairs) == 0 {
			return &Response{OK: true}, nil
		}
		if len(req.IDs) != len(req.Pairs) {
			req.IDs = make([]uint64, len(req.Pairs))
			for i := range req.IDs {
				req.IDs[i] = c.nextID()
			}
		}
		for {
			resp, err := c.doBatchPut(ctx, req)
			if !errors.Is(err, errMoved) {
				return resp, err
			}
			if err := sleepCtx(ctx, movedRetryDelay); err != nil {
				return nil, err
			}
		}
	case ReqTxn:
		if req.ID == 0 {
			req.ID = c.nextID()
		}
		if r, _ := c.routingRing(); r == nil {
			// Ring-less client: the entry node's coordinator runs the 2PC.
			return c.remoteCall(ctx, -1, req)
		}
		return c.txnExecute(ctx, req)
	case ReqTxnPrepare:
		if req.ID == 0 {
			req.ID = c.nextID()
		}
		return c.doTxnPrepare(ctx, req)
	case ReqTxnResolve:
		if req.ID == 0 {
			req.ID = c.nextID()
		}
		// Routed by the representative key; a Moved answer retries in place
		// (doShard), chasing the portion across the epoch flip.
		return c.doShard(ctx, c.shardFor(req.Key), req)
	default:
		return nil, fmt.Errorf("kv: unknown request op %d", req.Op)
	}
}

// shardFor maps a key onto its owning shard, or -1 when the client has no
// ring knowledge (the entry node routes instead).
func (c *Client) shardFor(key string) int {
	r, _ := c.routingRing()
	if r == nil {
		return -1
	}
	return r.shard(key)
}

// doGet executes a sequenced read, splitting multi-shard key sets under the
// current routing table. errMoved bubbles up when the table changed under a
// sub-read; the caller re-splits and retries.
func (c *Client) doGet(ctx context.Context, req *Request) (*Response, error) {
	r, rt := c.routingRing()
	if r == nil {
		return c.doShard(ctx, -1, req)
	}
	req.Epoch = rt.Epoch
	byShard := make(map[int][]int) // shard -> indices into req.Keys
	for i, k := range req.Keys {
		s := r.shard(k)
		byShard[s] = append(byShard[s], i)
	}
	if len(byShard) == 1 {
		for s := range byShard {
			return c.doShard(ctx, s, req)
		}
	}
	out := &Response{OK: true, Values: make([][]byte, len(req.Keys)), Found: make([]bool, len(req.Keys))}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
		paths []byte
	)
	for s, idx := range byShard {
		s, idx := s, idx
		keys := make([]string, len(idx))
		for j, i := range idx {
			keys[j] = req.Keys[i]
		}
		// Sub-reads take fresh ids: reads are idempotent, and a node
		// re-splitting a forwarded multi-shard read must be free to do
		// the same. Flags and the staleness bound travel with each part.
		sub := &Request{Op: ReqGet, Flags: req.Flags, ID: c.nextID(), Budget: req.Budget,
			Epoch: rt.Epoch, MaxStale: req.MaxStale, Keys: keys}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.doShard(ctx, s, sub)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				// A real error beats errMoved: the retry loop only helps
				// the moved case, and must not mask a persistent failure.
				if first == nil || errors.Is(first, errMoved) && !errors.Is(err, errMoved) {
					first = err
				}
				return
			}
			for j, i := range idx {
				out.Values[i] = resp.Values[j]
				out.Found[i] = resp.Found[j]
			}
			paths = append(paths, resp.ReadPath)
			if resp.StaleFor > out.StaleFor {
				out.StaleFor = resp.StaleFor
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	out.ReadPath = mergeReadPaths(paths)
	return out, nil
}

// mergeReadPaths folds per-shard read paths into one report: any stale part
// makes the whole answer stale; all-lease stays lease; anything mixed with a
// sequenced part reports sequenced (the strongest contract all parts met is
// still linearizable either way).
func mergeReadPaths(paths []byte) byte {
	if len(paths) == 0 {
		return ReadSequenced
	}
	merged := paths[0]
	for _, p := range paths[1:] {
		switch {
		case p == ReadStale || merged == ReadStale:
			return ReadStale
		case p != merged:
			merged = ReadSequenced
		}
	}
	return merged
}

// doBatchPut executes a bulk write, splitting multi-shard pair sets. Per-pair
// ids travel with their pairs, so however the batch is split — here, at the
// entry node, or after a forward — every replica deduplicates identically,
// and a re-split after an epoch flip re-executes only the pairs the first
// pass could not place.
func (c *Client) doBatchPut(ctx context.Context, req *Request) (*Response, error) {
	r, rt := c.routingRing()
	if r == nil {
		return c.doShard(ctx, -1, req)
	}
	req.Epoch = rt.Epoch
	byShard := make(map[int][]int)
	for i, p := range req.Pairs {
		s := r.shard(p.Key)
		byShard[s] = append(byShard[s], i)
	}
	if len(byShard) == 1 {
		for s := range byShard {
			return c.doShard(ctx, s, req)
		}
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for s, idx := range byShard {
		s, idx := s, idx
		sub := &Request{Op: ReqBatchPut, Budget: req.Budget, Epoch: rt.Epoch,
			Pairs: make([]Pair, len(idx)), IDs: make([]uint64, len(idx))}
		for j, i := range idx {
			sub.Pairs[j] = req.Pairs[i]
			sub.IDs[j] = req.IDs[i]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.doShard(ctx, s, sub); err != nil {
				mu.Lock()
				if first == nil || errors.Is(first, errMoved) && !errors.Is(err, errMoved) {
					first = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	return &Response{OK: true}, nil
}

// doShard executes a single-shard request (shard -1: unknown, entry decides)
// over the best available path. A Moved outcome on the local path — the key
// range is frozen mid-handoff or flipped to a new owner — re-resolves the
// shard and retries single-key ops in place; multi-element ops bubble
// errMoved up for a full re-split.
func (c *Client) doShard(ctx context.Context, shard int, req *Request) (*Response, error) {
	for {
		if c.s == nil || shard < 0 || c.s.Replica(shard) == nil {
			// A shard this node SHOULD host but does not yet is being
			// opened by the topology worker (a split in flight): wait for
			// the local replica instead of assuming a remote owner.
			if c.s != nil && shard >= 0 && c.s.expectsShard(shard) && !c.s.isClosed() {
				if req.Op == ReqGet || req.Op == ReqBatchPut || req.Op == ReqTxnPrepare {
					return nil, errMoved // re-split at the Do level
				}
				if err := sleepCtx(ctx, movedRetryDelay); err != nil {
					return nil, err
				}
				shard = c.shardFor(req.Key)
				continue
			}
			return c.remoteCall(ctx, shard, req)
		}
		if req.Op == ReqGet {
			if resp, ok := c.localFastRead(shard, req); ok {
				return resp, nil
			}
		}
		c.localOps.Add(1)
		_, rt := c.routingRing()
		req.Epoch = rt.Epoch
		var t0 time.Time
		if c.localH != nil {
			t0 = time.Now()
		}
		resp, err := c.s.execLocal(ctx, shard, req)
		if !errors.Is(err, errMoved) {
			if err == nil && c.localH != nil {
				c.localH.Observe(time.Since(t0))
			}
			return resp, err
		}
		c.tracer.Addf(req.ID, "moved at shard %d, retrying", shard)
		if req.Op == ReqGet || req.Op == ReqBatchPut || req.Op == ReqTxnPrepare {
			return nil, err // re-split at the Do level
		}
		if err := sleepCtx(ctx, movedRetryDelay); err != nil {
			return nil, err
		}
		shard = c.shardFor(req.Key)
	}
}

// localFastRead tries the read shortcuts against this node's replica of
// shard: a bounded-stale read when the request permits one, then a
// lease-covered linearizable read. False means no shortcut applies — the
// replica holds no valid lease (or freshness bound), or a key is frozen or
// locked — and the caller runs the sequenced read marker as before.
func (c *Client) localFastRead(shard int, req *Request) (*Response, bool) {
	var t0 time.Time
	if c.localH != nil {
		t0 = time.Now()
	}
	if req.Flags&flagStaleRead != 0 && req.MaxStale > 0 {
		if resp, ok := c.s.staleGet(shard, req.Keys, req.MaxStale); ok {
			c.localOps.Add(1)
			c.staleReads.Add(1)
			if c.localH != nil {
				c.localH.Observe(time.Since(t0))
			}
			c.tracer.Addf(req.ID, "served locally at staleness ≤%v", resp.StaleFor)
			return resp, true
		}
	}
	// A lease read trivially satisfies a staleness bound (it is current),
	// so stale requests may ride it too when the bound path fails.
	if req.Flags&(flagLeaseRead|flagStaleRead) != 0 && c.s.leasesOn() {
		if resp, ok := c.s.leaseGet(shard, req.Keys); ok {
			c.localOps.Add(1)
			c.leaseReads.Add(1)
			if c.localH != nil {
				c.localH.Observe(time.Since(t0))
			}
			c.tracer.Add(req.ID, "served locally under lease")
			return resp, true
		}
	}
	return nil, false
}

// remoteCall sends a request over RPC, retrying across targets while the
// context allows: the shard's well-known address first (when the routing is
// known), then the entry node, then the store-wide anycast entry. Timeouts
// alternate targets — a shard address mid-failover re-locates to a surviving
// host (the RPC layer forgets silent routes), and an entry node can always
// forward. Command ids make the retries exactly-once, and a response from a
// node at a different routing epoch carries the new table, which the client
// adopts before any further routing.
func (c *Client) remoteCall(ctx context.Context, shard int, req *Request) (*Response, error) {
	cl, err := c.rpcClient(shard)
	if err != nil {
		return nil, err
	}
	var targets []amoeba.Addr
	holder := c.readTarget(shard, req)
	if holder != 0 {
		targets = append(targets, holder)
	}
	if shard >= 0 {
		targets = append(targets, ShardAddr(c.cluster, shard))
	}
	if c.entry != 0 {
		targets = append(targets, c.entry)
	}
	if sa := StoreAddr(c.cluster); c.anycast && c.entry != sa {
		targets = append(targets, sa)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("kv: shard %d is not hosted on this node and the client has no remote path (start a kv.Service on the hosting nodes)", shard)
	}
	_, rt := c.routingRing()
	req.Epoch = rt.Epoch
	// Without a caller deadline, bound the attempts so a store with no
	// services running fails with a clear error instead of spinning.
	attempts := 8
	if _, ok := ctx.Deadline(); ok {
		attempts = 1 << 30
	}
	var lastErr error
	for try := 0; try < attempts; try++ {
		if err := ctx.Err(); err != nil {
			return nil, c.remoteErr(shard, err)
		}
		if d, ok := ctx.Deadline(); ok {
			req.Budget = time.Until(d)
			if req.Budget <= 0 {
				return nil, c.remoteErr(shard, context.DeadlineExceeded)
			}
		}
		target := targets[try%len(targets)]
		c.remoteOps.Add(1)
		// Direct = the shard's own well-known address or a steered lease
		// holder (one hop); anything else enters through a proxy node that
		// may forward.
		direct := shard >= 0 && target == ShardAddr(c.cluster, shard) ||
			holder != 0 && target == holder
		pathH := c.fwdH
		if direct {
			pathH = c.directH
		}
		if direct {
			c.tracer.Addf(req.ID, "sent direct to shard %d", shard)
		} else {
			c.tracer.Addf(req.ID, "sent via entry %v", target)
		}
		var t0 time.Time
		if pathH != nil {
			t0 = time.Now()
		}
		reply, err := cl.Call(ctx, target, EncodeRequest(req))
		if err != nil {
			lastErr = err
			if errors.Is(err, amoeba.ErrRPCTimeout) {
				continue // next target (or the same one, re-located)
			}
			return nil, c.remoteErr(shard, err)
		}
		resp, err := DecodeResponse(reply)
		if err != nil {
			return nil, c.remoteErr(shard, err)
		}
		if pathH != nil {
			pathH.Observe(time.Since(t0))
		}
		if resp.Routing != nil {
			c.adoptRouting(*resp.Routing)
		}
		if resp.Nodes > 0 {
			// Learn the topology: with it, subsequent lease reads steer
			// straight at the nodes hosting each shard.
			c.topoNodes.Store(int64(resp.Nodes))
			c.topoRepl.Store(int64(resp.Replication))
		}
		if resp.Err != "" {
			return nil, fmt.Errorf("kv: remote: %s", resp.Err)
		}
		switch resp.ReadPath {
		case ReadLease:
			c.leaseReads.Add(1)
		case ReadStale:
			c.staleReads.Add(1)
		}
		// Trust nothing about arity: well-known addresses are reachable by
		// any process on the network, and a short reply must surface as an
		// error, not an index panic in the caller.
		if req.Op == ReqGet && (len(resp.Values) != len(req.Keys) || len(resp.Found) != len(req.Keys)) {
			return nil, c.remoteErr(shard, fmt.Errorf("kv: remote answered %d of %d requested keys", len(resp.Values), len(req.Keys)))
		}
		return resp, nil
	}
	return nil, c.remoteErr(shard, lastErr)
}

// readTarget picks the node a flagged read should try first: one of the
// nodes hosting shard under the placement rule, rotated per read so a fleet
// of clients spreads its reads across every replica lease holder instead of
// converging on the shard's well-known address (whichever single host the
// RPC layer last located). Zero when steering does not apply — a write, an
// unflagged read, or topology not yet learned from a response.
func (c *Client) readTarget(shard int, req *Request) amoeba.Addr {
	if shard < 0 || req.Op != ReqGet || req.Flags&(flagLeaseRead|flagStaleRead) == 0 {
		return 0
	}
	nodes := int(c.topoNodes.Load())
	if nodes <= 1 {
		return 0
	}
	repl := int(c.topoRepl.Load())
	hosts := make([]int, 0, nodes)
	for j := 0; j < nodes; j++ {
		if hostsShard(shard, j, nodes, repl) {
			hosts = append(hosts, j)
		}
	}
	if len(hosts) == 0 {
		return 0
	}
	return NodeAddr(c.cluster, hosts[c.readSeq.Add(1)%uint64(len(hosts))])
}

func (c *Client) remoteErr(shard int, err error) error {
	if shard >= 0 {
		return fmt.Errorf("kv: shard %d (via RPC): %w", shard, err)
	}
	return fmt.Errorf("kv: via %v: %w", c.entry, err)
}

// --- The public operations ---------------------------------------------------

// Put stores key = val. When Put returns, the write is totally ordered on
// its shard and applied on the replica that served it.
func (c *Client) Put(ctx context.Context, key string, val []byte) error {
	_, err := c.Do(ctx, &Request{Op: ReqPut, Key: key, Val: val})
	return err
}

// Pair is one key/value pair for BatchPut.
type Pair struct {
	Key string
	Val []byte
}

// BatchPut writes several pairs as one coalesced burst: pairs are grouped by
// owning shard, each shard's writes are submitted together (the group layer
// packs them into batch ordering requests, paying the sequencer's
// per-request cost once per batch), and the per-shard bursts run in
// parallel — locally or across the RPC proxy. When BatchPut returns nil,
// every write is totally ordered on its shard. Writes to one shard apply in
// slice order; ordering across shards is independent, as for any multi-shard
// operation.
func (c *Client) BatchPut(ctx context.Context, pairs []Pair) error {
	if len(pairs) == 0 {
		return nil
	}
	_, err := c.Do(ctx, &Request{Op: ReqBatchPut, Pairs: pairs})
	return err
}

// Delete removes key, reporting whether it existed at the delete's position
// in the total order.
func (c *Client) Delete(ctx context.Context, key string) (bool, error) {
	resp, err := c.Do(ctx, &Request{Op: ReqDelete, Key: key})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// CAS atomically replaces key's value with val if its current value equals
// expect. expect == nil means "key must be absent" (atomic create); to
// compare against a stored empty value, pass a non-nil empty slice. The
// outcome is decided by the shard's total order, so concurrent CAS calls on
// one key serialise identically on every node — and retries are deduplicated
// by command id, so a CAS never observes its own first execution.
func (c *Client) CAS(ctx context.Context, key string, expect, val []byte) (bool, error) {
	resp, err := c.Do(ctx, &Request{Op: ReqCAS, Key: key,
		ExpectPresent: expect != nil, Expect: expect, Val: val})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// Get performs a sequenced (linearizable) read: a read marker travels the
// shard's total order and the returned value is the one at the marker's
// position, identical at every node — whichever access path served it. It
// reports false if the key is absent.
func (c *Client) Get(ctx context.Context, key string) ([]byte, bool, error) {
	resp, err := c.Do(ctx, &Request{Op: ReqGet, Keys: []string{key}})
	if err != nil {
		return nil, false, err
	}
	return resp.Values[0], resp.Found[0], nil
}

// StaleGet reads key accepting results up to maxStale behind the total
// order — the opt-in follower read. Any replica that has heard a recent
// sequencer tick serves it from local state with no group send, so it is the
// read that survives lease churn and scales with the replica count. The
// returned staleness is the proven bound the serving state satisfied (zero
// when the read was served fresh — under a lease or by the sequenced marker,
// the fallback when no replica can prove the bound). maxStale <= 0 degrades
// to a plain linearizable Get.
func (c *Client) StaleGet(ctx context.Context, key string, maxStale time.Duration) ([]byte, bool, time.Duration, error) {
	if maxStale <= 0 {
		v, found, err := c.Get(ctx, key)
		return v, found, 0, err
	}
	resp, err := c.Do(ctx, &Request{Op: ReqGet, Flags: flagStaleRead, MaxStale: maxStale, Keys: []string{key}})
	if err != nil {
		return nil, false, 0, err
	}
	return resp.Values[0], resp.Found[0], resp.StaleFor, nil
}

// copyVal detaches a value from the state machine's storage: callers own
// what they get back, and mutating it must not corrupt the local replica.
func copyVal(v []byte) []byte {
	if v == nil {
		return nil
	}
	return append([]byte(nil), v...)
}

// LocalGet reads key from this node's replica without any network traffic —
// the fast path for read-heavy workloads. The value reflects every command
// this node has applied, which may trail the total order by in-flight
// messages; this client's own completed operations are always visible. It
// reports false for keys whose shard this node does not host — including
// every key on a Dial'd client, which has no local replicas at all (use
// Store.HostsShard to tell the cases apart, or Get for a read that follows
// the proxy).
func (c *Client) LocalGet(key string) ([]byte, bool) {
	if c.s == nil {
		return nil, false
	}
	r := c.s.Replica(c.s.ShardFor(key))
	if r == nil {
		return nil, false
	}
	var (
		val   []byte
		found bool
	)
	r.Read(func(sm shared.StateMachine) {
		val, found = sm.(*mapSM).items[key]
	})
	return copyVal(val), found
}

// MGet performs a consistent multi-key read: the result maps each found key
// to its value (absent keys omitted), and the combined view is an atomic
// snapshot — no concurrent transaction or batch is ever observed
// half-applied. Keys on one shard are served by a single sequenced read
// marker; keys spanning shards run as a read-only transaction on the
// prepare machinery (every key briefly locked, values captured while all
// locks are held — see txn.go), which is what makes the cross-shard
// snapshot atomic.
func (c *Client) MGet(ctx context.Context, keys ...string) (map[string][]byte, error) {
	if len(keys) == 0 {
		return map[string][]byte{}, nil
	}
	if r, _ := c.routingRing(); r != nil {
		single := true
		s0 := r.shard(keys[0])
		for _, k := range keys[1:] {
			if r.shard(k) != s0 {
				single = false
				break
			}
		}
		if single {
			resp, err := c.Do(ctx, &Request{Op: ReqGet, Keys: keys})
			if err != nil {
				return nil, err
			}
			out := make(map[string][]byte, len(keys))
			for i, k := range keys {
				if resp.Found[i] {
					out[k] = resp.Values[i]
				}
			}
			return out, nil
		}
	}
	// Multi-shard (or ring-less, where the serving node decides): a
	// read-only transaction captures all keys under one set of locks.
	res, err := c.Txn(ctx, TxnOp{Reads: keys})
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(keys))
	for i, k := range keys {
		if i < len(res.Found) && res.Found[i] {
			out[k] = res.Values[i]
		}
	}
	return out, nil
}

// --- Local execution (the in-process fast path) ------------------------------

// execLocal runs a single-shard request against this node's replica,
// translating it into deduplicated shard commands. It is the shared
// execution path of node-bound clients and the Service. It returns errMoved
// when the replica does not serve (all of) the request's keys at the
// command's position in the total order — mid-handoff freeze or a completed
// flip — and the caller re-resolves and retries.
func (s *Store) execLocal(ctx context.Context, shard int, req *Request) (*Response, error) {
	switch req.Op {
	case ReqPut:
		_, err := s.do(ctx, shard, req.ID, encodePut(req.ID, req.Key, req.Val))
		if err != nil {
			return nil, err
		}
		return &Response{OK: true}, nil
	case ReqDelete:
		res, err := s.do(ctx, shard, req.ID, encodeDelete(req.ID, req.Key))
		if err != nil {
			return nil, err
		}
		return &Response{OK: res.OK}, nil
	case ReqCAS:
		cmd := encodeCAS(req.ID, req.Key, req.ExpectPresent, req.Expect, req.Val)
		res, err := s.do(ctx, shard, req.ID, cmd)
		if err != nil {
			return nil, err
		}
		return &Response{OK: res.OK}, nil
	case ReqGet:
		res, err := s.do(ctx, shard, req.ID, encodeGet(req.ID, req.Keys))
		if err != nil {
			return nil, err
		}
		out := &Response{OK: true, Values: make([][]byte, len(req.Keys)), Found: make([]bool, len(req.Keys))}
		for i := range req.Keys {
			out.Values[i] = copyVal(res.Values[i])
			out.Found[i] = res.Found[i]
		}
		return out, nil
	case ReqBatchPut:
		cmds := make([][]byte, len(req.Pairs))
		for i, p := range req.Pairs {
			cmds[i] = encodePut(req.IDs[i], p.Key, p.Val)
		}
		if err := s.doBatch(ctx, shard, req.IDs, cmds); err != nil {
			return nil, err
		}
		return &Response{OK: true}, nil
	case ReqTxnPrepare:
		cmd := encodeTxnPrepare(req.ID, req.TxnID, req.HomeKey, req.AllKeys, req.Keys, req.Writes, req.Conds)
		res, err := s.do(ctx, shard, req.ID, cmd)
		if err != nil {
			return nil, err
		}
		out := &Response{OK: res.OK, TxnState: res.TxnState, Conflict: res.Conflict, CondFailed: res.CondFailed,
			Values: make([][]byte, len(res.Values)), Found: append([]bool(nil), res.Found...)}
		for i, v := range res.Values {
			out.Values[i] = copyVal(v)
		}
		return out, nil
	case ReqTxnResolve:
		res, err := s.do(ctx, shard, req.ID, encodeTxnResolve(req.ID, req.TxnID, req.Commit, req.HomeKey, req.AllKeys))
		if err != nil {
			return nil, err
		}
		return &Response{OK: res.OK, TxnState: res.TxnState}, nil
	default:
		return nil, fmt.Errorf("kv: unknown request op %d", req.Op)
	}
}

// do submits cmd to shard and waits until its result lands in the local
// replica's result window — i.e. until the command has been totally ordered
// AND applied locally, which gives read-your-writes even for LocalGet. A
// Moved result surfaces as errMoved for the caller to re-route.
//
// If the local replica stops mid-operation (expelled by a recovery this node
// missed), do retries against the replacement the store's self-heal swaps
// in. Retrying is safe: commands are deduplicated by id in the replicated
// state machine, and if the first attempt did commit, the rejoined replica's
// transferred state already holds its result.
func (s *Store) do(ctx context.Context, shard int, id uint64, cmd []byte) (result, error) {
	for {
		r := s.Replica(shard)
		if r == nil {
			return result{}, fmt.Errorf("kv: shard %d is not hosted on this node (replication %d)", shard, s.opts.Replication)
		}
		err := r.Submit(ctx, cmd)
		if err == nil {
			var res result
			err = r.Wait(ctx, func(sm shared.StateMachine) bool {
				v, ok := sm.(*mapSM).results[id]
				if ok {
					res = v
				}
				return ok
			})
			if err == nil {
				if res.Moved {
					return res, errMoved
				}
				return res, nil
			}
		}
		// ErrStopped: the replica stopped under us. ErrNotMember: an
		// in-flight Submit was aborted by the expulsion itself. Both mean
		// "this replica is gone"; wait for the self-heal watcher to swap
		// in a fresh one — unless the whole store is closed.
		if !errors.Is(err, shared.ErrStopped) && !errors.Is(err, amoeba.ErrNotMember) {
			return result{}, fmt.Errorf("kv: shard %d: %w", shard, err)
		}
		if s.isClosed() {
			return result{}, fmt.Errorf("kv: shard %d: %w", shard, shared.ErrStopped)
		}
		select {
		case <-ctx.Done():
			return result{}, fmt.Errorf("kv: shard %d: %w", shard, err)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// doBatch submits one shard's command burst and waits until every result
// lands in the local replica's result window, with the same
// replica-swap-and-retry semantics as do (commands are deduplicated by id,
// so retrying a partially committed batch is safe and exactly-once). If any
// command answered Moved — the batch straddled an epoch flip — errMoved is
// returned and the caller re-splits; only the moved pairs re-execute.
func (s *Store) doBatch(ctx context.Context, shard int, ids []uint64, cmds [][]byte) error {
	for {
		r := s.Replica(shard)
		if r == nil {
			return fmt.Errorf("kv: shard %d is not hosted on this node (replication %d)", shard, s.opts.Replication)
		}
		err := r.SubmitBatch(ctx, cmds)
		if err == nil {
			moved := false
			err = r.Wait(ctx, func(sm shared.StateMachine) bool {
				results := sm.(*mapSM).results
				moved = false
				for _, id := range ids {
					res, ok := results[id]
					if !ok {
						return false
					}
					if res.Moved {
						moved = true
					}
				}
				return true
			})
			if err == nil {
				if moved {
					return errMoved
				}
				return nil
			}
		}
		if !errors.Is(err, shared.ErrStopped) && !errors.Is(err, amoeba.ErrNotMember) {
			return fmt.Errorf("kv: shard %d: %w", shard, err)
		}
		if s.isClosed() {
			return fmt.Errorf("kv: shard %d: %w", shard, shared.ErrStopped)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("kv: shard %d: %w", shard, err)
		case <-time.After(50 * time.Millisecond):
		}
	}
}
