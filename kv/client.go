package kv

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"amoeba"
	"amoeba/shared"
)

// Client issues key-value operations against one node of a store. Methods
// are safe for concurrent use; create several clients for independent
// command streams. Each operation is routed to the shard owning its key, so
// operations on different shards proceed in parallel through different
// sequencers.
type Client struct {
	s     *Store
	nonce uint64
	seq   atomic.Uint64
}

// NewClient returns a client bound to this node.
func (s *Store) NewClient() *Client {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("kv: reading client nonce: %v", err))
	}
	return &Client{s: s, nonce: binary.BigEndian.Uint64(b[:])}
}

// nextID returns a command id unique across clients and operations: a random
// 64-bit client nonce perturbed by a per-client counter.
func (c *Client) nextID() uint64 { return c.nonce + c.seq.Add(1) }

// do submits cmd to shard and waits until its result lands in the local
// replica's result window — i.e. until the command has been totally ordered
// AND applied locally, which gives read-your-writes even for LocalGet.
//
// If the local replica stops mid-operation (expelled by a recovery this node
// missed), do retries against the replacement the store's self-heal swaps
// in. Retrying is safe: commands are deduplicated by id in the replicated
// state machine, and if the first attempt did commit, the rejoined replica's
// transferred state already holds its result.
func (c *Client) do(ctx context.Context, shard int, id uint64, cmd []byte) (result, error) {
	for {
		r := c.s.Replica(shard)
		if r == nil {
			return result{}, fmt.Errorf("kv: shard %d is not hosted on this node (replication %d): create the client on a hosting node", shard, c.s.opts.Replication)
		}
		err := r.Submit(ctx, cmd)
		if err == nil {
			var res result
			err = r.Wait(ctx, func(sm shared.StateMachine) bool {
				v, ok := sm.(*mapSM).results[id]
				if ok {
					res = v
				}
				return ok
			})
			if err == nil {
				return res, nil
			}
		}
		// ErrStopped: the replica stopped under us. ErrNotMember: an
		// in-flight Submit was aborted by the expulsion itself. Both mean
		// "this replica is gone"; wait for the self-heal watcher to swap
		// in a fresh one — unless the whole store is closed.
		if !errors.Is(err, shared.ErrStopped) && !errors.Is(err, amoeba.ErrNotMember) {
			return result{}, fmt.Errorf("kv: shard %d: %w", shard, err)
		}
		if c.s.isClosed() {
			return result{}, fmt.Errorf("kv: shard %d: %w", shard, shared.ErrStopped)
		}
		select {
		case <-ctx.Done():
			return result{}, fmt.Errorf("kv: shard %d: %w", shard, err)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Put stores key = val. When Put returns, the write is totally ordered on
// its shard and applied to this node's replica.
func (c *Client) Put(ctx context.Context, key string, val []byte) error {
	id := c.nextID()
	_, err := c.do(ctx, c.s.ring.shard(key), id, encodePut(id, key, val))
	return err
}

// Pair is one key/value pair for BatchPut.
type Pair struct {
	Key string
	Val []byte
}

// BatchPut writes several pairs as one coalesced burst: pairs are grouped by
// owning shard, each shard's writes are submitted together (the group layer
// packs them into batch ordering requests, paying the sequencer's
// per-request cost once per batch), and the per-shard bursts run in
// parallel. When BatchPut returns nil, every write is totally ordered on its
// shard and applied to this node's replicas. Writes to one shard apply in
// slice order; ordering across shards is independent, as for any multi-shard
// operation.
func (c *Client) BatchPut(ctx context.Context, pairs []Pair) error {
	if len(pairs) == 0 {
		return nil
	}
	type shardBatch struct {
		ids  []uint64
		cmds [][]byte
	}
	byShard := make(map[int]*shardBatch)
	for _, p := range pairs {
		shard := c.s.ring.shard(p.Key)
		b := byShard[shard]
		if b == nil {
			b = &shardBatch{}
			byShard[shard] = b
		}
		id := c.nextID()
		b.ids = append(b.ids, id)
		b.cmds = append(b.cmds, encodePut(id, p.Key, p.Val))
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for shard, b := range byShard {
		shard, b := shard, b
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.doBatch(ctx, shard, b.ids, b.cmds); err != nil {
				mu.Lock()
				if first == nil {
					first = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return first
}

// doBatch submits one shard's command burst and waits until every result
// lands in the local replica's result window, with the same
// replica-swap-and-retry semantics as do (commands are deduplicated by id,
// so retrying a partially committed batch is safe and exactly-once).
func (c *Client) doBatch(ctx context.Context, shard int, ids []uint64, cmds [][]byte) error {
	for {
		r := c.s.Replica(shard)
		if r == nil {
			return fmt.Errorf("kv: shard %d is not hosted on this node (replication %d): create the client on a hosting node", shard, c.s.opts.Replication)
		}
		err := r.SubmitBatch(ctx, cmds)
		if err == nil {
			err = r.Wait(ctx, func(sm shared.StateMachine) bool {
				results := sm.(*mapSM).results
				for _, id := range ids {
					if _, ok := results[id]; !ok {
						return false
					}
				}
				return true
			})
			if err == nil {
				return nil
			}
		}
		if !errors.Is(err, shared.ErrStopped) && !errors.Is(err, amoeba.ErrNotMember) {
			return fmt.Errorf("kv: shard %d: %w", shard, err)
		}
		if c.s.isClosed() {
			return fmt.Errorf("kv: shard %d: %w", shard, shared.ErrStopped)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("kv: shard %d: %w", shard, err)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Delete removes key, reporting whether it existed at the delete's position
// in the total order.
func (c *Client) Delete(ctx context.Context, key string) (bool, error) {
	id := c.nextID()
	res, err := c.do(ctx, c.s.ring.shard(key), id, encodeDelete(id, key))
	return res.OK, err
}

// CAS atomically replaces key's value with val if its current value equals
// expect. expect == nil means "key must be absent" (atomic create); to
// compare against a stored empty value, pass a non-nil empty slice. The
// outcome is decided by the shard's total order, so concurrent CAS calls on
// one key serialise identically on every node.
func (c *Client) CAS(ctx context.Context, key string, expect, val []byte) (bool, error) {
	id := c.nextID()
	cmd := encodeCAS(id, key, expect != nil, expect, val)
	res, err := c.do(ctx, c.s.ring.shard(key), id, cmd)
	return res.OK, err
}

// Get performs a sequenced (linearizable) read: a read marker travels the
// shard's total order and the returned value is the one at the marker's
// position, identical at every node. It reports false if the key is absent.
func (c *Client) Get(ctx context.Context, key string) ([]byte, bool, error) {
	id := c.nextID()
	res, err := c.do(ctx, c.s.ring.shard(key), id, encodeGet(id, []string{key}))
	if err != nil {
		return nil, false, err
	}
	return copyVal(res.Values[0]), res.Found[0], nil
}

// copyVal detaches a value from the state machine's storage: callers own
// what they get back, and mutating it must not corrupt the local replica.
func copyVal(v []byte) []byte {
	if v == nil {
		return nil
	}
	return append([]byte(nil), v...)
}

// LocalGet reads key from this node's replica without any network traffic —
// the fast path for read-heavy workloads. The value reflects every command
// this node has applied, which may trail the total order by in-flight
// messages; this client's own completed operations are always visible. On a
// store with bounded replication it reports false for keys whose shard this
// node does not host (use Store.HostsShard to tell the cases apart).
func (c *Client) LocalGet(key string) ([]byte, bool) {
	r := c.s.Replica(c.s.ring.shard(key))
	if r == nil {
		return nil, false
	}
	var (
		val   []byte
		found bool
	)
	r.Read(func(sm shared.StateMachine) {
		val, found = sm.(*mapSM).items[key]
	})
	return copyVal(val), found
}

// MGet performs sequenced reads of several keys, scatter-gathered across
// their shards: keys are grouped by owning shard, each shard receives one
// read marker for its whole key subset, and the shard reads run in parallel.
// The result maps each found key to its value; absent keys are omitted. The
// per-shard reads are linearizable; the combined snapshot is not a global
// cross-shard atomic read (shards order independently — the price of
// multi-group scaling).
func (c *Client) MGet(ctx context.Context, keys ...string) (map[string][]byte, error) {
	byShard := make(map[int][]string)
	for _, k := range keys {
		shard := c.s.ring.shard(k)
		byShard[shard] = append(byShard[shard], k)
	}
	var (
		mu   sync.Mutex
		out  = make(map[string][]byte, len(keys))
		wg   sync.WaitGroup
		errs = make([]error, 0, 1)
	)
	for shard, subset := range byShard {
		shard, subset := shard, subset
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := c.nextID()
			res, err := c.do(ctx, shard, id, encodeGet(id, subset))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			for i, k := range subset {
				if res.Found[i] {
					out[k] = copyVal(res.Values[i])
				}
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return out, nil
}
