package kv

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"amoeba/shared"
)

// Cross-shard transactions: sequenced two-phase commit on the total order.
//
// Each shard already has everything a transaction participant needs — a
// total order, exactly-once command dedup, a write-ahead log, and
// epoch-gated routing — so the commit protocol is built entirely out of
// ordinary sequenced commands:
//
//	prepare(txnID, reads, writes, conds)   one per participant shard
//	resolve(txnID, commit|abort)           one per participant shard
//
// A prepare locks the transaction's local keys, checks its conditions, and
// captures its reads, all at one position in the shard's order; ordinary
// writes to a locked key answer Moved and retry after the lock clears. The
// home shard — the owner of the lexicographically first key — arbitrates:
// the first resolve to sequence against its prepared portion fixes the
// outcome, and every later resolve or prepare re-answers that decision from
// the portion tombstone. The coordinator (any Client) therefore:
//
//	phase 1: prepare every participant in parallel
//	phase 2: resolve the home portion with commit=true — the commit point
//	phase 3: echo the home's answered decision to the other participants
//
// Because prepares and resolves are journaled like any command, an
// interrupted transaction is crash-resumable exactly the way an interrupted
// reshard handoff is: a shard that logged its resolve re-answers it, a shard
// still prepared holds its locks until recovery — the boot pass and a
// janitor goroutine on every node — asks the home shard to arbitrate
// (resolve with commit=false: presumed abort if the home is still prepared,
// the recorded decision otherwise) and echoes the answer. Prepared portions
// migrate with their keys during live resharding, so a reshard serializes
// entirely before or after the commit, never through it.

// TxnWrite is one write in a transaction: set Key to Val, or remove it.
type TxnWrite struct {
	Key    string
	Val    []byte
	Delete bool
}

// TxnCond is one precondition: Key's value must equal Expect
// (ExpectPresent true) or the key must be absent (ExpectPresent false).
// Any failing condition aborts the transaction without retry.
type TxnCond struct {
	Key           string
	ExpectPresent bool
	Expect        []byte
}

// TxnOp describes one transaction: the keys to read, the writes to apply
// atomically, and the conditions gating the commit. Keys may repeat and
// overlap freely across the three sets.
type TxnOp struct {
	Reads  []string
	Writes []TxnWrite
	Conds  []TxnCond
}

// TxnResult is a transaction's outcome. Values and Found align with the
// TxnOp's Reads and were captured while every key was locked — a consistent
// cross-shard snapshot whether or not the transaction committed its writes.
type TxnResult struct {
	Committed  bool
	CondFailed bool
	Values     [][]byte
	Found      []bool
}

// Txn executes one multi-key read-write transaction atomically across
// however many shards its keys span: either every write lands or none does,
// conditions are checked against the same locked snapshot the reads
// observe, and no other operation sees a half-applied state. Conflicts with
// concurrent transactions retry internally with fresh attempt ids;
// CondFailed aborts are final, like a failed CAS.
func (c *Client) Txn(ctx context.Context, op TxnOp) (*TxnResult, error) {
	resp, err := c.Do(ctx, &Request{Op: ReqTxn, Keys: op.Reads, Writes: op.Writes, Conds: op.Conds})
	if err != nil {
		return nil, err
	}
	return &TxnResult{
		Committed:  resp.OK,
		CondFailed: resp.CondFailed,
		Values:     resp.Values,
		Found:      resp.Found,
	}, nil
}

// txnAttemptStride derives attempt n's transaction id from the request id:
// id + n*stride (the 64-bit golden ratio, so chains from different requests
// do not collide). Attempt 0 uses the request id itself, which is what makes
// a RETRIED coordinator request idempotent: the retry re-drives the same
// attempt chain, and every portion it touches re-answers instead of
// re-executing.
const txnAttemptStride = 0x9E3779B97F4A7C15

func txnAttemptID(base uint64, attempt int) uint64 {
	return base + uint64(attempt)*txnAttemptStride
}

// maxTxnAttempts bounds conflict retries before surfacing an error.
const maxTxnAttempts = 64

// txnExecute is the coordinator loop behind ReqTxn: drive attempts until one
// decides (committed, aborted-by-condition) or the attempt budget runs out.
func (c *Client) txnExecute(ctx context.Context, req *Request) (*Response, error) {
	allKeys := txnKeys(req)
	if len(allKeys) == 0 {
		return &Response{OK: true, TxnState: txnStateCommitted}, nil
	}
	var t0 time.Time
	if c.txnTotalH != nil {
		t0 = time.Now()
	}
	for n := 0; n < maxTxnAttempts; n++ {
		txnID := txnAttemptID(req.ID, n)
		res, retry, err := c.txnAttempt(ctx, txnID, allKeys, req)
		if err != nil {
			return nil, err
		}
		if retry {
			c.txnConflicts.Add(1)
			c.tracer.Addf(txnID, "txn conflict, retrying (attempt %d)", n+1)
			// Jittered backoff so colliding coordinators separate.
			d := time.Duration(n+1) * 2 * time.Millisecond
			d += time.Duration(rand.Int63n(int64(d)))
			if err := sleepCtx(ctx, d); err != nil {
				return nil, err
			}
			continue
		}
		if c.txnTotalH != nil {
			c.txnTotalH.Observe(time.Since(t0))
		}
		out := &Response{OK: res.Committed, CondFailed: res.CondFailed, Values: res.Values, Found: res.Found}
		if res.Committed {
			c.txnCommitted.Add(1)
			out.TxnState = txnStateCommitted
		} else {
			c.txnAborted.Add(1)
			out.TxnState = txnStateAborted
		}
		return out, nil
	}
	return nil, fmt.Errorf("kv: transaction %016x: too much contention (%d attempts)", req.ID, maxTxnAttempts)
}

// txnKeys is the sorted, deduplicated union of a transaction's keys. Its
// first element is the home key.
func txnKeys(req *Request) []string {
	seen := make(map[string]bool)
	keys := make([]string, 0, len(req.Keys)+len(req.Writes)+len(req.Conds))
	add := func(k string) {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for _, k := range req.Keys {
		add(k)
	}
	for _, w := range req.Writes {
		add(w.Key)
	}
	for _, cc := range req.Conds {
		add(cc.Key)
	}
	sort.Strings(keys)
	return keys
}

// txnAttempt drives one attempt of the 2PC. It reports (result, retry, err):
// retry true means the attempt lost a race (conflict, or recovery aborted
// it) and the caller should try again under a fresh attempt id. A transport
// error leaves the attempt in doubt — the janitor (or a retry of the same
// request id) resolves it.
func (c *Client) txnAttempt(ctx context.Context, txnID uint64, allKeys []string, req *Request) (*TxnResult, bool, error) {
	homeKey := allKeys[0]
	c.tracer.Addf(txnID, "txn prepare: %d keys, home %q", len(allKeys), homeKey)

	// Phase 1: prepare every participant. One request covering the whole
	// transaction; doTxnPrepare splits it per shard under the live table
	// and merges the answers (re-splitting across epoch flips as needed).
	var prepT0 time.Time
	if c.txnPrepH != nil {
		prepT0 = time.Now()
	}
	prep, err := c.Do(ctx, &Request{
		Op: ReqTxnPrepare, TxnID: txnID, HomeKey: homeKey, AllKeys: allKeys,
		Keys: req.Keys, Writes: req.Writes, Conds: req.Conds,
	})
	if err != nil {
		return nil, false, fmt.Errorf("kv: txn %016x prepare: %w", txnID, err)
	}
	if c.txnPrepH != nil {
		c.txnPrepH.Observe(time.Since(prepT0))
	}
	mkResult := func(committed bool) *TxnResult {
		return &TxnResult{Committed: committed, Values: prep.Values, Found: prep.Found}
	}
	switch {
	case prep.TxnState == txnStateCommitted:
		// A prior drive of this same attempt already committed (we are a
		// retried request): make sure the echo finished and re-answer. A
		// commit decision exists only via a sequenced resolve at the home,
		// so the home portion is already resolved.
		if err := c.txnResolveEcho(ctx, txnID, true, homeKey, allKeys, true); err != nil {
			return nil, false, err
		}
		return mkResult(true), false, nil
	case prep.Conflict || prep.TxnState == txnStateAborted:
		// Lost a key to another live transaction, or recovery already
		// aborted this attempt: release whatever we locked, try afresh.
		c.txnResolveEcho(ctx, txnID, false, homeKey, allKeys, false)
		return nil, true, nil
	case prep.CondFailed:
		c.txnResolveEcho(ctx, txnID, false, homeKey, allKeys, false)
		return &TxnResult{CondFailed: true}, false, nil
	}

	// All portions prepared. A read-only transaction is done: the captured
	// values are a consistent snapshot (every key was locked when the last
	// prepare sequenced); the locks just need releasing.
	if len(req.Writes) == 0 {
		if err := c.txnResolveEcho(ctx, txnID, false, homeKey, allKeys, false); err != nil {
			return nil, false, err
		}
		return mkResult(true), false, nil
	}

	// Phase 2: resolve the home portion — the commit point. The home's
	// sequenced answer IS the decision, whatever we asked for: if recovery
	// aborted the home first, it answers aborted and we retry.
	var resT0 time.Time
	if c.txnResH != nil {
		resT0 = time.Now()
	}
	home, err := c.Do(ctx, &Request{
		Op: ReqTxnResolve, TxnID: txnID, Commit: true,
		Key: homeKey, HomeKey: homeKey, AllKeys: allKeys,
	})
	if err != nil {
		return nil, false, fmt.Errorf("kv: txn %016x commit: %w", txnID, err)
	}
	committed := home.TxnState == txnStateCommitted
	c.tracer.Addf(txnID, "txn home decided: committed=%v", committed)

	// Phase 3: echo the decision to every participant except the home —
	// phase 2's resolve already settled the home shard's whole portion.
	if err := c.txnResolveEcho(ctx, txnID, committed, homeKey, allKeys, true); err != nil {
		return nil, false, err
	}
	if c.txnResH != nil {
		c.txnResH.Observe(time.Since(resT0))
	}
	if !committed {
		return nil, true, nil
	}
	return mkResult(true), false, nil
}

// txnResolveEcho delivers a decision to every shard serving any of the
// transaction's keys: one resolve per shard group, in parallel, repeated
// until a full round completes at a stable routing epoch (a reshard mid-echo
// can split a group across new shards — the repeat covers the splinters).
//
// homeDone says the home shard's portion was already resolved by the caller
// (phase 2's commit point, or recovery's arbitration), so the first round
// skips the home key's group instead of re-resolving it — on the common
// two-shard transaction that halves the echo. The skip applies only to the
// first round: a repeat round means the epoch flipped mid-echo, and after a
// reshard the home key's group may hold migrated-in keys whose portions the
// phase-2 resolve never saw, so repeats cover every group (resolves
// re-answer idempotently).
func (c *Client) txnResolveEcho(ctx context.Context, txnID uint64, commit bool, homeKey string, allKeys []string, homeDone bool) error {
	for {
		r, rt := c.routingRing()
		if r == nil {
			return fmt.Errorf("kv: txn %016x: resolve echo needs ring knowledge", txnID)
		}
		groups := make(map[int][]string)
		for _, k := range allKeys {
			s := r.shard(k)
			groups[s] = append(groups[s], k)
		}
		if homeDone {
			homeDone = false
			delete(groups, r.shard(homeKey))
			if len(groups) == 0 {
				// Single-shard transaction: phase 2 resolved everything.
				if _, rt2 := c.routingRing(); rt2.Epoch == rt.Epoch {
					return nil
				}
				continue
			}
			c.tracer.Addf(txnID, "txn echo: home shard skipped (already resolved)")
		}
		var (
			wg    sync.WaitGroup
			mu    sync.Mutex
			first error
		)
		for _, keys := range groups {
			keys := keys
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := c.Do(ctx, &Request{
					Op: ReqTxnResolve, TxnID: txnID, Commit: commit,
					Key: keys[0], HomeKey: homeKey, AllKeys: allKeys,
				})
				if err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if first != nil {
			return fmt.Errorf("kv: txn %016x resolve echo: %w", txnID, first)
		}
		if _, rt2 := c.routingRing(); rt2.Epoch == rt.Epoch {
			return nil
		}
	}
}

// doTxnPrepare executes one prepare request, splitting it per shard under
// the live routing table. Moved answers (a frozen or flipped range) re-split
// under the refreshed table — a single attempt's content may end up
// partitioned differently across re-drives, which the state machine's
// accretive prepare merge absorbs.
func (c *Client) doTxnPrepare(ctx context.Context, req *Request) (*Response, error) {
	for {
		r, rt := c.routingRing()
		if r == nil {
			return c.remoteCall(ctx, -1, req)
		}
		req.Epoch = rt.Epoch
		shards := make(map[int]bool)
		for _, k := range req.Keys {
			shards[r.shard(k)] = true
		}
		for _, w := range req.Writes {
			shards[r.shard(w.Key)] = true
		}
		for _, cc := range req.Conds {
			shards[r.shard(cc.Key)] = true
		}
		var resp *Response
		var err error
		if len(shards) <= 1 {
			shard := -1
			for s := range shards {
				shard = s
			}
			resp, err = c.doShard(ctx, shard, req)
		} else {
			resp, err = c.txnPrepareSplit(ctx, r, rt, req)
		}
		if !errors.Is(err, errMoved) {
			return resp, err
		}
		if err := sleepCtx(ctx, movedRetryDelay); err != nil {
			return nil, err
		}
	}
}

// txnPrepareSplit fans a prepare out as per-shard sub-prepares of the same
// transaction (fresh command ids, same txn id) and merges the answers back
// into one response aligned with the request's read set.
func (c *Client) txnPrepareSplit(ctx context.Context, r *ring, rt Routing, req *Request) (*Response, error) {
	parts := make(map[int]*Request)
	part := func(s int) *Request {
		p := parts[s]
		if p == nil {
			p = &Request{Op: ReqTxnPrepare, Budget: req.Budget, Epoch: rt.Epoch,
				TxnID: req.TxnID, HomeKey: req.HomeKey, AllKeys: req.AllKeys}
			parts[s] = p
		}
		return p
	}
	for _, k := range req.Keys {
		p := part(r.shard(k))
		p.Keys = append(p.Keys, k)
	}
	for _, w := range req.Writes {
		p := part(r.shard(w.Key))
		p.Writes = append(p.Writes, w)
	}
	for _, cc := range req.Conds {
		p := part(r.shard(cc.Key))
		p.Conds = append(p.Conds, cc)
	}
	list := make([]*Request, 0, len(parts))
	for _, p := range parts {
		list = append(list, p)
	}
	answers := make([]*Response, len(list))
	errs := make([]error, len(list))
	var wg sync.WaitGroup
	for i := range list {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			answers[i], errs[i] = c.Do(ctx, list[i])
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergePrepareAnswers(req, list, answers), nil
}

// mergePrepareAnswers folds per-shard prepare answers into one response:
// the most decided state wins (aborted > committed > prepared), conflict and
// condition failures accumulate, and read values re-align to the request's
// key order.
func mergePrepareAnswers(req *Request, parts []*Request, answers []*Response) *Response {
	out := &Response{TxnState: txnStatePrepared}
	vals := make(map[string][]byte)
	fnd := make(map[string]bool)
	for i, resp := range answers {
		if resp.Conflict {
			out.Conflict = true
		}
		if resp.CondFailed {
			out.CondFailed = true
		}
		switch resp.TxnState {
		case txnStateAborted:
			out.TxnState = txnStateAborted
		case txnStateCommitted:
			if out.TxnState != txnStateAborted {
				out.TxnState = txnStateCommitted
			}
		}
		for j, k := range parts[i].Keys {
			if j < len(resp.Values) {
				vals[k] = resp.Values[j]
			}
			if j < len(resp.Found) {
				fnd[k] = resp.Found[j]
			}
		}
	}
	out.OK = !out.Conflict && !out.CondFailed && out.TxnState != txnStateAborted
	if len(req.Keys) > 0 {
		out.Values = make([][]byte, len(req.Keys))
		out.Found = make([]bool, len(req.Keys))
		for i, k := range req.Keys {
			out.Values[i] = vals[k]
			out.Found[i] = fnd[k]
		}
	}
	return out
}

// --- In-doubt recovery --------------------------------------------------------

// recoverTxn resolves one in-doubt transaction from the participant side,
// used when the coordinator client died between prepare and resolve. The
// home shard arbitrates: a resolve with commit=false aborts a still-prepared
// home portion (presumed abort — the coordinator cannot have committed
// without the home's sequenced decision) or re-answers the recorded
// decision; either way the answered state is echoed everywhere.
func (c *Client) recoverTxn(ctx context.Context, p *txnPortion) error {
	resp, err := c.Do(ctx, &Request{
		Op: ReqTxnResolve, TxnID: p.TxnID, Commit: false,
		Key: p.HomeKey, HomeKey: p.HomeKey, AllKeys: p.AllKeys,
	})
	if err != nil {
		return err
	}
	commit := resp.TxnState == txnStateCommitted
	c.tracer.Addf(p.TxnID, "txn recovery: home arbitrated committed=%v", commit)
	return c.txnResolveEcho(ctx, p.TxnID, commit, p.HomeKey, p.AllKeys, true)
}

// inDoubtTxns lists prepared portions held by this node's replicas whose
// locks have been visible for at least minAge (minAge <= 0: all of them).
// Only identity fields are returned — recovery needs the home and key set,
// not the payload.
func (s *Store) inDoubtTxns(minAge time.Duration) []*txnPortion {
	cutoff := time.Now().Add(-minAge)
	all := minAge <= 0
	seen := make(map[uint64]bool)
	var out []*txnPortion
	for _, r := range s.snapshotShards() {
		if r == nil {
			continue
		}
		r.Read(func(m shared.StateMachine) {
			sm := m.(*mapSM)
			for id, p := range sm.txns {
				if p.State != txnStatePrepared || seen[id] {
					continue
				}
				if !all {
					if t, ok := sm.lockSeen[id]; ok && t.After(cutoff) {
						continue
					}
				}
				seen[id] = true
				out = append(out, &txnPortion{
					TxnID:   p.TxnID,
					HomeKey: p.HomeKey,
					AllKeys: append([]string(nil), p.AllKeys...),
				})
			}
		})
	}
	return out
}

// recoverInDoubt drives every in-doubt transaction at least minAge old to
// resolution, best effort (failures stay prepared; the janitor or the next
// boot pass retries). Used at durable-bootstrap time with minAge 0 — after a
// kill-all crash the coordinators are certainly gone — and periodically by
// the janitor with Options.TxnRecoveryAfter.
func (s *Store) recoverInDoubt(ctx context.Context, minAge time.Duration) int {
	pending := s.inDoubtTxns(minAge)
	if len(pending) == 0 {
		return 0
	}
	c := s.NewClient()
	defer c.Close()
	resolved := 0
	for _, p := range pending {
		rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		err := c.recoverTxn(rctx, p)
		cancel()
		if err != nil {
			s.flight().Recordf("kv/"+s.name, "txn %016x recovery failed: %v", p.TxnID, err)
			continue
		}
		resolved++
		s.flight().Recordf("kv/"+s.name, "txn %016x recovered", p.TxnID)
	}
	return resolved
}

// txnJanitor periodically resolves transactions whose prepare locks outlived
// Options.TxnRecoveryAfter — the coordinator died mid-2PC. Runs on every
// node; recovery is idempotent, so concurrent janitors (and a returning
// coordinator) converge on the home shard's one decision.
func (s *Store) txnJanitor(ctx context.Context) {
	defer s.healWG.Done()
	after := s.opts.TxnRecoveryAfter
	interval := after / 4
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if s.isClosed() {
			return
		}
		s.recoverInDoubt(ctx, after)
	}
}
