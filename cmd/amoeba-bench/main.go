// Command amoeba-bench regenerates the tables and figures of Kaashoek &
// Tanenbaum, "An Evaluation of the Amoeba Group Communication System"
// (ICDCS 1996), by running the group protocols over the calibrated
// discrete-event model of the paper's hardware (30 × 20-MHz MC68030,
// 10 Mbit/s Ethernet, Lance interfaces).
//
// Usage:
//
//	amoeba-bench                      # run everything
//	amoeba-bench -experiment fig4     # one experiment
//	amoeba-bench -experiment batched -json BENCH_batched.json
//	amoeba-bench -list                # list experiment ids
//
// Experiment ids: table3, fig1, fig3, fig4, fig5, fig6, fig7, fig8, rpc, cm,
// userspace, placement, processing, sharded, batched, proxied, durable,
// reshard, observed, txn, audit, reads.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"amoeba/internal/experiments"
	"amoeba/internal/netsim"
	"amoeba/kv"
	"amoeba/shared"
)

// proxiedTable renders the kv access-path latency measurement — the one
// experiment that runs on the live fabric instead of the simulator (the kv
// layer sits above the simulator's reach), so it lives in the kv package.
func proxiedTable(results []kv.AccessPathResult) *experiments.Table {
	t := &experiments.Table{
		ID:        "Proxied KV access",
		Title:     "sequenced Get latency by access path (4 nodes, 4 shards, replication 1, live in-memory fabric)",
		PaperNote: "Table 1's ForwardRequest in use: a misrouted request is handed to an owning node; the reply returns from wherever it lands",
		Columns:   []string{"path", "median (µs)", "p90 (µs)", "vs local", "forwards"},
	}
	for _, r := range results {
		fw := ""
		if r.Forwarded > 0 {
			fw = fmt.Sprintf("%d", r.Forwarded)
		}
		t.Rows = append(t.Rows, []string{
			r.Path,
			fmt.Sprintf("%.0f", r.MedianUs),
			fmt.Sprintf("%.0f", r.P90Us),
			fmt.Sprintf("%.2fx", r.VsLocal),
			fw,
		})
	}
	return t
}

// durableTable renders the durable-history measurement — like the proxied
// experiment it runs on the live fabric (and a real disk), so it lives with
// the layer it measures (shared.MeasureDurable).
func durableTable(res *shared.DurableBenchResult) *experiments.Table {
	t := &experiments.Table{
		ID:        "Durable history",
		Title:     "write-ahead log: ordered throughput by journaling mode, and cold-start recovery time vs log size (live fabric + real disk)",
		PaperNote: "the paper's history is in-memory only (r crashes lose nothing, a whole-cluster power loss everything); the WAL extends the fault-tolerance-for-performance trade to full restarts",
		Columns:   []string{"case", "result", "note"},
	}
	for _, r := range res.Throughput {
		t.Rows = append(t.Rows, []string{
			"ordered throughput, " + r.Mode,
			fmt.Sprintf("%.0f cmds/s", r.CmdsPerSec),
			fmt.Sprintf("%.2fx in-memory", r.VsMemory),
		})
	}
	for _, r := range res.Recovery {
		label := fmt.Sprintf("recovery, %d entries", r.Entries)
		if r.Checkpointed {
			label += " + checkpoint"
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%.2f ms", r.RecoverMs),
			fmt.Sprintf("%d KiB log, %d replayed", r.LogBytes/1024, r.Replayed),
		})
	}
	return t
}

// reshardTable renders the live-resharding measurement — like the proxied
// experiment it runs on the live fabric, so it lives in the kv package.
func reshardTable(res *kv.ReshardBenchResult) *experiments.Table {
	t := &experiments.Table{
		ID:    "Live resharding",
		Title: fmt.Sprintf("%d→%d split under continuous load (%d nodes, %d keys, live in-memory fabric)", res.OldShards, res.NewShards, res.Nodes, res.Keys),
		PaperNote: "the paper's applications added groups under load; the epoch-versioned routing table turns that into a first-class store operation " +
			"(sequenced migrate-begin/chunk/commit through each group's total order)",
		Columns: []string{"measure", "result", "note"},
	}
	for _, p := range res.Phases {
		t.Rows = append(t.Rows, []string{
			"ops/s " + p.Phase,
			fmt.Sprintf("%.0f", p.OpsPerSec),
			fmt.Sprintf("%d ops / %.0f ms", p.Ops, p.DurationMs),
		})
	}
	t.Rows = append(t.Rows,
		[]string{"throughput retained during handoff", fmt.Sprintf("%.2fx", res.DuringVsBefore), fmt.Sprintf("handoff took %.0f ms", res.ReshardMs)},
		[]string{"keys moved (consistent hash)", fmt.Sprintf("%.1f%%", 100*res.MovedRatio), fmt.Sprintf("%d of %d", res.MovedKeys, res.Keys)},
		[]string{"keys an independent rehash would move", fmt.Sprintf("%.1f%%", 100*res.NaiveRatio), "≈ (new−1)/new"},
	)
	return t
}

// observedTable renders the instrumentation-cost experiment. Like the other
// live-fabric experiments it measures real time on the host, so the
// per-stage numbers vary by machine; the overhead percentage is the claim.
func observedTable(res *kv.ObservedBenchResult) *experiments.Table {
	t := &experiments.Table{
		ID:    "Observed",
		Title: "pipeline instrumentation: per-stage latency and enabled-vs-disabled cost",
		PaperNote: fmt.Sprintf("overhead %.2f%% (disabled %.0f ops/s, enabled %.0f ops/s, %d runs per mode, mirrored schedule)",
			res.OverheadPercent, res.DisabledOpsPerSec, res.EnabledOpsPerSec, res.Trials),
		Columns: []string{"stage", "count", "p50", "p90", "p99", "max"},
	}
	ns := func(v uint64) string {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	for _, s := range res.Stages {
		p50, p90, p99, max := ns(s.P50), ns(s.P90), ns(s.P99), ns(s.Max)
		if strings.HasSuffix(s.Stage, "_fill") {
			// Unitless histogram (batch occupancy), not a duration.
			p50 = fmt.Sprintf("%d", s.P50)
			p90 = fmt.Sprintf("%d", s.P90)
			p99 = fmt.Sprintf("%d", s.P99)
			max = fmt.Sprintf("%d", s.Max)
		}
		t.Rows = append(t.Rows, []string{
			s.Stage, fmt.Sprintf("%d", s.Count), p50, p90, p99, max,
		})
	}
	return t
}

// auditTable renders the self-audit cost experiment. Like the other
// live-fabric experiments it measures real time on the host; the overhead
// percentage is the claim.
func auditTable(res *kv.AuditBenchResult) *experiments.Table {
	t := &experiments.Table{
		ID:    "Audit",
		Title: "self-audit: sequenced state-digest audits on vs off (4 nodes, 4 shards, live in-memory fabric)",
		PaperNote: fmt.Sprintf("every replica digests its state at the same sequence number every %dms; a divergent replica is localized to (shard, seq, key-range)",
			res.AuditEveryMS),
		Columns: []string{"measure", "result", "note"},
	}
	t.Rows = append(t.Rows,
		[]string{"ops/s, audit off", fmt.Sprintf("%.0f", res.DisabledOpsPerSec), fmt.Sprintf("%d runs, mirrored schedule", res.Trials)},
		[]string{"ops/s, audit on", fmt.Sprintf("%.0f", res.EnabledOpsPerSec), fmt.Sprintf("period %dms", res.AuditEveryMS)},
		[]string{"overhead", fmt.Sprintf("%.2f%%", res.OverheadPercent), "negative = noise floor"},
		[]string{"digest comparisons", fmt.Sprintf("%d", res.Audits), fmt.Sprintf("%d divergences (must be 0)", res.Divergences)},
	)
	return t
}

// readsTable renders the read-lease experiment. Like the other live-fabric
// experiments it measures real time on the host; the speedups are the claim.
func readsTable(res *kv.ReadsReport) *experiments.Table {
	t := &experiments.Table{
		ID:    "Reads",
		Title: fmt.Sprintf("read paths under a 95/5 mix (%d nodes, fully replicated, live in-memory fabric)", res.Nodes),
		PaperNote: fmt.Sprintf("sequencer leases piggybacked on sync ticks let replicas answer reads locally; %d lease reads, %d stale reads served",
			res.LeaseReads, res.StaleReads),
		Columns: []string{"shard", "sequenced ops/s", "leased ops/s", "stale ops/s", "leased vs seq", "stale vs seq"},
	}
	for _, r := range res.Shards {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Shard),
			fmt.Sprintf("%.0f", r.SequencedOps),
			fmt.Sprintf("%.0f", r.LeasedOps),
			fmt.Sprintf("%.0f", r.StaleOps),
			fmt.Sprintf("%.1fx", r.LeasedX),
			fmt.Sprintf("%.1fx", r.StaleX),
		})
	}
	return t
}

// txnTable renders the 2PC-width experiment. Like the other live-fabric
// experiments it measures real time on the host, so absolute ops/s vary by
// machine; each width's txn-vs-batch ratio is the claim.
func txnTable(res *kv.TxnBenchResult) *experiments.Table {
	t := &experiments.Table{
		ID:    "Txn",
		Title: "cross-shard transactions: sequenced 2PC at 1/2/4 participant shards vs same-width single-shard batches",
		PaperNote: fmt.Sprintf("%d nodes, %d shards, %d clients on disjoint keys (%d conflict retries)",
			res.Nodes, res.Shards, res.Clients, res.Conflicts),
		Columns: []string{"commit", "shards", "writes", "ops/s", "mean", "p99", "vs batch"},
	}
	for _, c := range res.Cases {
		t.Rows = append(t.Rows, []string{
			c.Name,
			fmt.Sprintf("%d", c.Participants),
			fmt.Sprintf("%d", c.Writes),
			fmt.Sprintf("%.0f", c.OpsPerSec),
			fmt.Sprintf("%.2fms", c.MeanMs),
			fmt.Sprintf("%.2fms", c.P99Ms),
			fmt.Sprintf("%.2fx", c.VsBatch),
		})
	}
	return t
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		which   = flag.String("experiment", "all", "experiment id to run, or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		jsonOut = flag.String("json", "", "write machine-readable results here, for experiments that support it (e.g. batched → BENCH_batched.json)")
	)
	flag.Parse()

	model := netsim.DefaultCostModel()
	// An experiment renders a table; some additionally render a
	// machine-readable form for -json (perf trajectory files).
	type experiment struct {
		run  func(netsim.CostModel) (*experiments.Table, error)
		json func(netsim.CostModel) (*experiments.Table, []byte, error)
	}
	tableOnly := func(f func(netsim.CostModel) (*experiments.Table, error)) experiment {
		return experiment{run: f}
	}
	exps := map[string]experiment{
		"table3":     tableOnly(experiments.Table3),
		"fig1":       tableOnly(experiments.Fig1),
		"fig3":       tableOnly(experiments.Fig3),
		"fig4":       tableOnly(experiments.Fig4),
		"fig5":       tableOnly(experiments.Fig5),
		"fig6":       tableOnly(experiments.Fig6),
		"fig7":       tableOnly(experiments.Fig7),
		"fig8":       tableOnly(experiments.Fig8),
		"rpc":        tableOnly(experiments.RPCComparison),
		"cm":         tableOnly(experiments.CMComparison),
		"userspace":  tableOnly(experiments.UserSpaceAblation),
		"placement":  tableOnly(experiments.SequencerPlacement),
		"processing": tableOnly(experiments.ProcessingScaling),
		"sharded":    tableOnly(experiments.ShardedKV),
		"batched": {
			run: experiments.Batched,
			json: func(m netsim.CostModel) (*experiments.Table, []byte, error) {
				results, err := experiments.BatchedResults(m)
				if err != nil {
					return nil, nil, err
				}
				buf, err := experiments.BatchedJSON(results)
				return experiments.BatchedTable(results), buf, err
			},
		},
		"proxied": {
			run: func(netsim.CostModel) (*experiments.Table, error) {
				results, err := kv.MeasureAccessPaths()
				if err != nil {
					return nil, err
				}
				return proxiedTable(results), nil
			},
			json: func(netsim.CostModel) (*experiments.Table, []byte, error) {
				results, err := kv.MeasureAccessPaths()
				if err != nil {
					return nil, nil, err
				}
				buf, err := kv.AccessPathsJSON(results)
				return proxiedTable(results), buf, err
			},
		},
		"durable": {
			run: func(netsim.CostModel) (*experiments.Table, error) {
				res, err := shared.MeasureDurable()
				if err != nil {
					return nil, err
				}
				return durableTable(res), nil
			},
			json: func(netsim.CostModel) (*experiments.Table, []byte, error) {
				res, err := shared.MeasureDurable()
				if err != nil {
					return nil, nil, err
				}
				buf, err := shared.DurableBenchJSON(res)
				return durableTable(res), buf, err
			},
		},
		"reshard": {
			run: func(netsim.CostModel) (*experiments.Table, error) {
				res, err := kv.MeasureReshard()
				if err != nil {
					return nil, err
				}
				return reshardTable(res), nil
			},
			json: func(netsim.CostModel) (*experiments.Table, []byte, error) {
				res, err := kv.MeasureReshard()
				if err != nil {
					return nil, nil, err
				}
				buf, err := kv.ReshardJSON(res)
				return reshardTable(res), buf, err
			},
		},
		"observed": {
			run: func(netsim.CostModel) (*experiments.Table, error) {
				res, err := kv.MeasureObserved()
				if err != nil {
					return nil, err
				}
				return observedTable(res), nil
			},
			json: func(netsim.CostModel) (*experiments.Table, []byte, error) {
				res, err := kv.MeasureObserved()
				if err != nil {
					return nil, nil, err
				}
				buf, err := kv.ObservedJSON(res)
				return observedTable(res), buf, err
			},
		},
		"txn": {
			run: func(netsim.CostModel) (*experiments.Table, error) {
				res, err := kv.MeasureTxn()
				if err != nil {
					return nil, err
				}
				return txnTable(res), nil
			},
			json: func(netsim.CostModel) (*experiments.Table, []byte, error) {
				res, err := kv.MeasureTxn()
				if err != nil {
					return nil, nil, err
				}
				buf, err := kv.TxnJSON(res)
				return txnTable(res), buf, err
			},
		},
		"reads": {
			run: func(netsim.CostModel) (*experiments.Table, error) {
				res, err := kv.MeasureReads()
				if err != nil {
					return nil, err
				}
				return readsTable(res), nil
			},
			json: func(netsim.CostModel) (*experiments.Table, []byte, error) {
				res, err := kv.MeasureReads()
				if err != nil {
					return nil, nil, err
				}
				buf, err := kv.ReadsJSON(res)
				return readsTable(res), buf, err
			},
		},
		"audit": {
			run: func(netsim.CostModel) (*experiments.Table, error) {
				res, err := kv.MeasureAudit()
				if err != nil {
					return nil, err
				}
				return auditTable(res), nil
			},
			json: func(netsim.CostModel) (*experiments.Table, []byte, error) {
				res, err := kv.MeasureAudit()
				if err != nil {
					return nil, nil, err
				}
				buf, err := kv.AuditJSON(res)
				return auditTable(res), buf, err
			},
		},
	}
	order := []string{"table3", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"rpc", "cm", "userspace", "placement", "processing", "sharded", "batched", "proxied", "durable", "reshard", "observed", "txn", "audit", "reads"}

	if *list {
		ids := make([]string, 0, len(exps))
		for id := range exps {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println(strings.Join(ids, "\n"))
		return 0
	}

	var ids []string
	if *which == "all" {
		ids = order
	} else {
		if _, ok := exps[*which]; !ok {
			fmt.Fprintf(os.Stderr, "amoeba-bench: unknown experiment %q (try -list)\n", *which)
			return 2
		}
		ids = []string{*which}
	}
	if *jsonOut != "" && len(ids) != 1 {
		// Several experiments would each overwrite the same file; make the
		// user pick one instead of silently keeping only the last.
		fmt.Fprintf(os.Stderr, "amoeba-bench: -json needs a single -experiment (e.g. -experiment batched)\n")
		return 2
	}

	for _, id := range ids {
		ex := exps[id]
		if *jsonOut != "" && ex.json != nil {
			// Run the sweep once and emit both renderings.
			table, buf, err := ex.json(model)
			if err != nil {
				fmt.Fprintf(os.Stderr, "amoeba-bench: %s: %v\n", id, err)
				return 1
			}
			fmt.Println(table.String())
			if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "amoeba-bench: writing %s: %v\n", *jsonOut, err)
				return 1
			}
			continue
		}
		table, err := ex.run(model)
		if err != nil {
			fmt.Fprintf(os.Stderr, "amoeba-bench: %s: %v\n", id, err)
			return 1
		}
		fmt.Println(table.String())
	}
	return 0
}
