// Command amoeba-bench regenerates the tables and figures of Kaashoek &
// Tanenbaum, "An Evaluation of the Amoeba Group Communication System"
// (ICDCS 1996), by running the group protocols over the calibrated
// discrete-event model of the paper's hardware (30 × 20-MHz MC68030,
// 10 Mbit/s Ethernet, Lance interfaces).
//
// Usage:
//
//	amoeba-bench                      # run everything
//	amoeba-bench -experiment fig4     # one experiment
//	amoeba-bench -list                # list experiment ids
//
// Experiment ids: table3, fig1, fig3, fig4, fig5, fig6, fig7, fig8, rpc, cm,
// userspace.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"amoeba/internal/experiments"
	"amoeba/internal/netsim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		which = flag.String("experiment", "all", "experiment id to run, or 'all'")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	model := netsim.DefaultCostModel()
	exps := map[string]func(netsim.CostModel) (*experiments.Table, error){
		"table3":     experiments.Table3,
		"fig1":       experiments.Fig1,
		"fig3":       experiments.Fig3,
		"fig4":       experiments.Fig4,
		"fig5":       experiments.Fig5,
		"fig6":       experiments.Fig6,
		"fig7":       experiments.Fig7,
		"fig8":       experiments.Fig8,
		"rpc":        experiments.RPCComparison,
		"cm":         experiments.CMComparison,
		"userspace":  experiments.UserSpaceAblation,
		"placement":  experiments.SequencerPlacement,
		"processing": experiments.ProcessingScaling,
		"sharded":    experiments.ShardedKV,
	}
	order := []string{"table3", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"rpc", "cm", "userspace", "placement", "processing", "sharded"}

	if *list {
		ids := make([]string, 0, len(exps))
		for id := range exps {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println(strings.Join(ids, "\n"))
		return 0
	}

	var ids []string
	if *which == "all" {
		ids = order
	} else {
		if _, ok := exps[*which]; !ok {
			fmt.Fprintf(os.Stderr, "amoeba-bench: unknown experiment %q (try -list)\n", *which)
			return 2
		}
		ids = []string{*which}
	}

	for _, id := range ids {
		table, err := exps[id](model)
		if err != nil {
			fmt.Fprintf(os.Stderr, "amoeba-bench: %s: %v\n", id, err)
			return 1
		}
		fmt.Println(table.String())
	}
	return 0
}
