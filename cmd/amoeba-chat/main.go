// Command amoeba-chat demonstrates total ordering interactively: it runs a
// configurable number of chat participants as group members on one in-memory
// network, has them talk concurrently, and prints each participant's view of
// the conversation — which total ordering makes identical, down to the
// sequence number, at every member.
//
// Usage:
//
//	amoeba-chat                 # 4 participants, 3 lines each
//	amoeba-chat -members 6 -lines 5
//	amoeba-chat -crash          # crash the sequencer mid-conversation
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"amoeba"
)

func main() {
	var (
		members = flag.Int("members", 4, "chat participants")
		lines   = flag.Int("lines", 3, "messages each participant sends")
		crash   = flag.Bool("crash", false, "crash the sequencer mid-conversation and recover")
	)
	flag.Parse()
	if *members < 2 {
		fmt.Fprintln(os.Stderr, "amoeba-chat: need at least 2 members")
		os.Exit(2)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	network := amoeba.NewMemoryNetwork()
	defer network.Close()

	names := []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"}
	groups := make([]*amoeba.Group, *members)
	for i := 0; i < *members; i++ {
		name := names[i%len(names)]
		k, err := network.NewKernel(name)
		if err != nil {
			log.Fatalf("kernel %s: %v", name, err)
		}
		if i == 0 {
			groups[i], err = k.CreateGroup(ctx, "chatroom", amoeba.GroupOptions{})
		} else {
			groups[i], err = k.JoinGroup(ctx, "chatroom", amoeba.GroupOptions{})
		}
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	// Everyone chats at once.
	var wg sync.WaitGroup
	half := make(chan struct{})
	for i, g := range groups {
		i, g := i, g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < *lines; n++ {
				if i == 1 && n == *lines/2 {
					close(half) // signal the crash point
				}
				msg := fmt.Sprintf("%s says line %d", names[i%len(names)], n)
				if err := g.Send(ctx, []byte(msg)); err != nil {
					// The sequencer crashing mid-send is expected
					// in -crash mode; recovery retries handle it.
					if !*crash {
						log.Fatalf("send: %v", err)
					}
					return
				}
			}
		}()
	}

	if *crash {
		<-half
		fmt.Println("*** crashing the sequencer ***")
		groups[0].Close()
		if err := groups[1].Reset(ctx, *members-1); err != nil {
			log.Fatalf("reset: %v", err)
		}
		fmt.Printf("*** recovered: member %d now sequences ***\n", groups[1].Info().Self)
	}
	wg.Wait()

	// Print each survivor's transcript; they must agree line for line.
	start := 1
	if *crash {
		start = 1 // member 0 is gone; compare the rest
	} else {
		start = 0
	}
	var reference []string
	for i := start; i < *members; i++ {
		g := groups[i]
		var transcript []string
		collect := func() bool {
			rctx, rcancel := context.WithTimeout(ctx, 500*time.Millisecond)
			defer rcancel()
			m, err := g.Receive(rctx)
			if err != nil {
				return false
			}
			switch m.Kind {
			case amoeba.Data:
				transcript = append(transcript, fmt.Sprintf("#%d %s", m.Seq, m.Payload))
			case amoeba.Join:
				transcript = append(transcript, fmt.Sprintf("#%d * member %d joined", m.Seq, m.Sender))
			case amoeba.Reset:
				transcript = append(transcript, fmt.Sprintf("#%d * group rebuilt (%d members)", m.Seq, m.Members))
			}
			return true
		}
		for collect() {
		}
		if reference == nil {
			reference = transcript
			fmt.Printf("\n=== transcript as seen by member %d ===\n", g.Info().Self)
			for _, line := range transcript {
				fmt.Println(line)
			}
			continue
		}
		// Verify the common suffix agrees (later joiners start later).
		offset := len(reference) - len(transcript)
		agree := offset >= 0
		if agree {
			for j, line := range transcript {
				if reference[offset+j] != line {
					agree = false
					break
				}
			}
		}
		if agree {
			fmt.Printf("member %d sees the identical conversation (%d entries)\n",
				g.Info().Self, len(transcript))
		} else {
			fmt.Printf("member %d DIVERGED — total order violated!\n", g.Info().Self)
			os.Exit(1)
		}
	}
}
