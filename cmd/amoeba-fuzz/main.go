// Command amoeba-fuzz drives the adversarial harness: seeded fault
// schedules fuzzed against a live in-process kv cluster, with a
// linearizability checker deciding each run and a shrinker reducing
// failures to replayable minima.
//
// Usage:
//
//	amoeba-fuzz                                # default sweep: seeds 1..8
//	amoeba-fuzz -seeds 100-150 -timebox 60s    # CI sweep, time-boxed
//	amoeba-fuzz -families crash,partition      # restrict the fault pool
//	amoeba-fuzz -replay 'seed=7 events=[crash(1)@400ms restart(1)@1.2s]'
//
// Every run is deterministic in its seed: the seed generates the schedule,
// seeds the network's fault injection, and seeds the workload's op streams.
// A failing run prints one replay line; feed it back through -replay to
// reproduce, or pin it in a regression test.
//
// Exit status: 0 when every run verdicts linearizable, 1 on any failure or
// harness error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"amoeba/fuzz"
)

var familyByName = map[string]fuzz.Family{
	"crash":     fuzz.FamCrash,
	"restart":   fuzz.FamRestart,
	"partition": fuzz.FamPartition,
	"loss":      fuzz.FamLoss,
	"disk":      fuzz.FamDisk,
	"reshard":   fuzz.FamReshard,
}

func main() {
	var (
		seeds    = flag.String("seeds", "1-8", "seed list: comma-separated values and lo-hi ranges, e.g. 3,10-14")
		families = flag.String("families", "", "fault families to draw from (crash,restart,partition,loss,disk,reshard); empty = all")
		events   = flag.Int("events", 6, "events per generated schedule")
		horizon  = flag.Duration("horizon", 3*time.Second, "schedule horizon (events land inside it)")
		nodes    = flag.Int("nodes", 3, "cluster size")
		shards   = flag.Int("shards", 2, "bootstrap shard count")
		clients  = flag.Int("clients", 4, "concurrent workload clients")
		keys     = flag.Int("keys", 4, "distinct contended keys")
		accounts = flag.Int("accounts", 4, "bank accounts the transactional workload transfers between")
		minSurv  = flag.Int("min-survivors", 0, "recovery quorum (0 = majority; 1 reproduces quorum-less split brain)")
		leases   = flag.Bool("leases", false, "enable sequencer read leases: Gets ride the lease-serve path and the workload mixes in bounded-staleness StaleGets")
		timebox  = flag.Duration("timebox", 0, "stop starting new seeds after this long (0 = run all)")
		replay   = flag.String("replay", "", "replay one schedule line (seed=N events=[...]) instead of sweeping")
		noShrink = flag.Bool("no-shrink", false, "skip shrinking failing schedules")
		verbose  = flag.Bool("v", false, "log schedule events as they fire")
	)
	flag.Parse()

	cfg := fuzz.Config{Nodes: *nodes, Shards: *shards, Clients: *clients, Keys: *keys,
		Accounts: *accounts, MinSurvivors: *minSurv, Leases: *leases}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		}
	}

	if *replay != "" {
		sched, err := fuzz.ParseSchedule(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "amoeba-fuzz: %v\n", err)
			os.Exit(2)
		}
		res := fuzz.Run(cfg, sched)
		fmt.Println(res)
		if !res.Ok() {
			if res.Flight != "" {
				fmt.Fprintf(os.Stderr, "flight recorder:\n%s\n", res.Flight)
			}
			os.Exit(1)
		}
		return
	}

	seedList, err := parseSeeds(*seeds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "amoeba-fuzz: %v\n", err)
		os.Exit(2)
	}
	profile := fuzz.Profile{
		Nodes:   *nodes,
		Shards:  *shards,
		Horizon: *horizon,
		Events:  *events,
	}
	if *families != "" {
		for _, name := range strings.Split(*families, ",") {
			f, ok := familyByName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "amoeba-fuzz: unknown family %q\n", name)
				os.Exit(2)
			}
			profile.Families = append(profile.Families, f)
		}
	}

	start := time.Now()
	ran, failed := 0, 0
	for _, seed := range seedList {
		if *timebox > 0 && time.Since(start) > *timebox {
			fmt.Printf("timebox reached after %d seeds\n", ran)
			break
		}
		sched := fuzz.Generate(seed, profile)
		fmt.Printf("seed %d: %d events… ", seed, len(sched.Events))
		res := fuzz.Run(cfg, sched)
		fmt.Println(res)
		ran++
		if res.Ok() {
			continue
		}
		failed++
		if res.Err == nil && !*noShrink {
			fmt.Println("shrinking…")
			shrunk := fuzz.Shrink(sched, func(s fuzz.Schedule) bool {
				r := fuzz.Run(cfg, s)
				return r.Err == nil && (!r.Check.Linearizable || !r.Atomic.Ok() || !r.Stale.Ok())
			})
			fmt.Printf("MINIMAL REPLAY: %s\n", shrunk)
		} else {
			fmt.Printf("REPLAY: %s\n", sched)
		}
		if res.Flight != "" {
			fmt.Fprintf(os.Stderr, "flight recorder:\n%s\n", res.Flight)
		}
	}
	fmt.Printf("%d seeds run, %d failed, %s elapsed\n", ran, failed, time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		os.Exit(1)
	}
}

// parseSeeds expands "3,10-14" into [3 10 11 12 13 14].
func parseSeeds(spec string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.ParseInt(lo, 10, 64)
			b, err2 := strconv.ParseInt(hi, 10, 64)
			if err1 != nil || err2 != nil || b < a {
				return nil, fmt.Errorf("bad seed range %q", part)
			}
			for s := a; s <= b; s++ {
				out = append(out, s)
			}
			continue
		}
		s, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", part)
		}
		out = append(out, s)
	}
	return out, nil
}
