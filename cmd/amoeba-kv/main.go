// Command amoeba-kv runs the sharded, replicated key-value service and a
// matching load generator.
//
// Serve mode boots an in-process cluster — N nodes on a memory network, the
// keyspace consistent-hashed across S shard groups, each group a replicated
// state machine with its own sequencer, every node running a kv.Service —
// and exposes it over TCP with a line protocol. Each line is parsed into the
// same versioned kv.Request the in-process client and the RPC proxy speak,
// executed through kv.Client.Do, and the kv.Response rendered back as text —
// the daemon is a codec transcoder, not a second protocol. With -replication
// bounding the replica count, a connection's node proxies foreign shards
// over Amoeba RPC (misroutes answered by ForwardRequest; see STATS):
//
//	PUT <key> <value>            -> OK
//	GET <key>                    -> VALUE <value> | NOTFOUND   (linearizable; served
//	                                from a read lease with -leases, sequenced otherwise)
//	LGET <key>                   -> VALUE <value> | NOTFOUND   (local read)
//	SGET <key> <max-stale>       -> VALUE <value> stale-for=<d> | NOTFOUND stale-for=<d>
//	                                (bounded-staleness read, e.g. SGET k 500ms)
//	DEL <key>                    -> OK true|false              (existed?)
//	CAS <key> <old|-> <new>      -> OK true|false              ("-" = expect absent)
//	MGET <key> <key> ...         -> VALUE <k>=<v> ...
//	TXN [GET k] [PUT k v]
//	    [DEL k] [IF k v|-] ...   -> COMMITTED <k>=<v> ... | ABORTED   (atomic cross-shard txn)
//	RESHARD <n>                  -> OK epoch=<e> shards=<n>            (live split/merge)
//	STATS                        -> shards, epoch, members, proxy counters
//	METRICS                      -> Prometheus text, terminated by END
//	TRACE <id>                   -> a sampled op's cross-node timeline, terminated by END
//	TRACES                       -> retained trace ids, terminated by END
//	QUIT                         -> closes the connection
//
// The same metrics are served over HTTP with -metrics-addr: GET /metrics is
// the Prometheus scrape target, GET /flight dumps the flight recorder's
// recent protocol events, GET /trace?id=N one sampled op's timeline.
//
// Keys and values are single whitespace-free tokens; values may be quoted Go
// strings (e.g. "two words") and replies quote values that need it.
//
// Load mode connects over TCP and hammers the server with a PUT/GET mix,
// reporting aggregate ops/s. Selftest mode runs the in-process workload
// (kv.RunLoad) without any TCP, sweeping shard counts.
//
// With -data-dir the store is durable: every shard replica journals its
// deliveries to a write-ahead log under <data-dir>/<store>/node-<n>/shard-<i>
// and checkpoints snapshots, so killing the daemon and re-running the same
// command brings every key AND the command-id dedup state back — a command
// retried across the restart stays exactly-once. Without it the store is
// in-memory, as in the paper.
//
// Usage:
//
//	amoeba-kv -serve :7070 -shards 4 -nodes 3 -resilience 1 -replication 2
//	amoeba-kv -serve :7070 -data-dir /var/lib/amoeba-kv
//	amoeba-kv -load -addr :7070 -clients 8 -duration 5s
//	amoeba-kv -selftest
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"amoeba"
	"amoeba/kv"
	"amoeba/obs"
)

func main() {
	var (
		serveAddr    = flag.String("serve", "", "serve the store on this TCP address (e.g. :7070)")
		load         = flag.Bool("load", false, "run the TCP load generator against -addr")
		selftest     = flag.Bool("selftest", false, "run the in-process load sweep and exit")
		addr         = flag.String("addr", "127.0.0.1:7070", "server address for -load")
		shards       = flag.Int("shards", 4, "shard-group count")
		nodes        = flag.Int("nodes", 3, "replica nodes")
		resilience   = flag.Int("resilience", 1, "per-shard resilience degree r")
		replication  = flag.Int("replication", 0, "replicas per shard (0 = every node); bounded values exercise the RPC proxy")
		dataDir      = flag.String("data-dir", "", "durable mode: write-ahead logs + checkpoints under this directory (restart recovers all data)")
		walSync      = flag.Bool("wal-sync", false, "fsync every journal append (power-loss durability; slower)")
		walSyncDelay = flag.Duration("wal-sync-delay", 0, "with -wal-sync: coalesce fsyncs across delivery bursts, syncing at most this long after an append")
		clients      = flag.Int("clients", 8, "concurrent load connections")
		duration     = flag.Duration("duration", 5*time.Second, "load duration")
		valueSize    = flag.Int("value-size", 64, "load value size in bytes")
		readFrac     = flag.Float64("read-fraction", 0.2, "fraction of load ops that are GETs")
		leases       = flag.Bool("leases", false, "sequencer read leases: replicas serve linearizable GETs locally with no ordering round; enables SGET bounded-staleness reads")
		metricsAddr  = flag.String("metrics-addr", "", "serve /metrics (Prometheus text), /health, /flight, and /trace?id=N over HTTP on this address")
		traceMod     = flag.Uint64("trace-mod", 1024, "trace every Nth command id (1 traces everything)")
		auditEvery   = flag.Duration("audit", time.Second, "sequenced state-audit period (0 disables the self-audit driver)")
	)
	flag.Parse()

	switch {
	case *selftest:
		os.Exit(runSelftest(*nodes, *resilience, *duration, *metricsAddr))
	case *load:
		os.Exit(runLoad(*addr, *clients, *duration, *valueSize, *readFrac))
	default:
		if *serveAddr == "" {
			*serveAddr = ":7070"
		}
		os.Exit(serve(*serveAddr, *shards, *nodes, *resilience, *replication, *dataDir, *walSync, *walSyncDelay, *leases, *metricsAddr, *traceMod, *auditEvery))
	}
}

// newHub builds the process-wide observability hub and, when metricsAddr is
// set, starts the HTTP exporter on it. The whole in-process cluster shares
// one hub: every node's stage histograms and counters land in one registry
// (gauges are delta-updated, so sharing is coherent), which is exactly the
// per-process scrape surface Prometheus wants.
func newHub(node string, traceMod uint64, metricsAddr string) *obs.Hub {
	hub := obs.NewHub(obs.Options{Node: node, TraceMod: traceMod})
	if metricsAddr == "" {
		return hub
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = hub.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprint(w, hub.Flight().Format())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		id, err := strconv.ParseUint(r.URL.Query().Get("id"), 0, 64)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprintf(w, "bad id: %v\n", err)
			return
		}
		fmt.Fprint(w, obs.FormatTrace(id, hub.Tracer().Trace(id)))
	})
	mux.HandleFunc("/health", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		aud := hub.Health()
		// Rolled-up verdict decides the status code, so a probe needs no
		// parsing: 200 healthy, 503 diverged or degraded.
		if v := aud.Rollup(""); v == obs.VerdictDiverged || v == obs.VerdictDegraded {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprint(w, aud.Summary(""))
		fmt.Fprint(w, aud.Format(""))
	})
	ln, err := net.Listen("tcp", metricsAddr)
	if err != nil {
		log.Printf("amoeba-kv: metrics listen %s: %v", metricsAddr, err)
		return hub
	}
	log.Printf("amoeba-kv: metrics on http://%s/metrics", ln.Addr())
	go func() { _ = http.Serve(ln, mux) }()
	return hub
}

// serve boots the cluster — recovering it from the write-ahead logs when
// -data-dir names an existing deployment — and answers line-protocol
// connections forever.
func serve(addr string, shards, nodes, resilience, replication int, dataDir string, walSync bool, walSyncDelay time.Duration, leases bool, metricsAddr string, traceMod uint64, auditEvery time.Duration) int {
	ctx := context.Background()
	network := amoeba.NewMemoryNetwork()
	defer network.Close()
	hub := newHub("amoeba-kv", traceMod, metricsAddr)
	kernels := make([]*amoeba.Kernel, nodes)
	for i := range kernels {
		k, err := network.NewKernel(fmt.Sprintf("kv-node-%d", i))
		if err != nil {
			log.Printf("amoeba-kv: kernel %d: %v", i, err)
			return 1
		}
		k.RegisterObs(hub)
		kernels[i] = k
	}
	opts := kv.Options{Shards: shards, Replication: replication,
		DataDir: dataDir, WALSync: walSync, WALSyncDelay: walSyncDelay,
		AuditEvery: auditEvery, Leases: leases,
		Group: amoeba.GroupOptions{
			Resilience:   resilience,
			AutoReset:    true,
			MinSurvivors: 1,
			Obs:          hub,
		}}
	if dataDir != "" {
		log.Printf("amoeba-kv: durable store under %s (wal-sync=%v)", dataDir, walSync)
	}
	stores, err := kv.Bootstrap(ctx, kernels, "amoeba-kv", opts)
	if err != nil {
		log.Printf("amoeba-kv: bootstrap: %v", err)
		return 1
	}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	// Every node serves the access protocol: with bounded replication a
	// connection's node reaches foreign shards through the other nodes'
	// services (direct shard RPC, or ForwardRequest on misroutes).
	services := make([]*kv.Service, len(stores))
	for i, s := range stores {
		svc, err := kv.NewService(s)
		if err != nil {
			log.Printf("amoeba-kv: service %d: %v", i, err)
			return 1
		}
		services[i] = svc
		defer svc.Close()
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Printf("amoeba-kv: listen: %v", err)
		return 1
	}
	defer ln.Close()
	repl := replication
	if repl <= 0 {
		repl = nodes
	}
	log.Printf("amoeba-kv: %d shards × %d nodes (r=%d, %d replicas/shard) serving on %s", shards, nodes, resilience, repl, ln.Addr())

	var next atomic.Uint64
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("amoeba-kv: accept: %v", err)
			return 1
		}
		// Spread connections across nodes, as a shard-aware proxy would.
		n := next.Add(1) % uint64(len(stores))
		go handleConn(ctx, conn, stores[n], services, hub)
	}
}

// token renders a value for the wire: quoted only when needed.
func token(v []byte) string {
	s := string(v)
	if s == "" || strings.ContainsAny(s, " \t\"\\") || !strconv.CanBackquote(s) {
		return strconv.Quote(s)
	}
	return s
}

// splitLine tokenizes a protocol line, keeping quoted strings (values with
// spaces) as single tokens.
func splitLine(line string) ([]string, error) {
	var out []string
	for i := 0; i < len(line); {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			j := i + 1
			for j < len(line) && line[j] != '"' {
				if line[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated quoted string")
			}
			out = append(out, line[i:j+1])
			i = j + 1
			continue
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		out = append(out, line[i:j])
		i = j
	}
	return out, nil
}

// untoken parses a wire token back into a value.
func untoken(tok string) ([]byte, error) {
	if strings.HasPrefix(tok, `"`) {
		s, err := strconv.Unquote(tok)
		if err != nil {
			return nil, err
		}
		return []byte(s), nil
	}
	return []byte(tok), nil
}

func handleConn(ctx context.Context, conn net.Conn, s *kv.Store, services []*kv.Service, hub *obs.Hub) {
	defer conn.Close()
	cl := s.NewClient()
	defer cl.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	w := bufio.NewWriter(conn)
	reply := func(format string, args ...any) bool {
		fmt.Fprintf(w, format+"\n", args...)
		return w.Flush() == nil
	}
	for sc.Scan() {
		fields, err := splitLine(sc.Text())
		if err != nil {
			if !reply("ERR %v", err) {
				return
			}
			continue
		}
		if len(fields) == 0 {
			continue
		}
		opCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
		ok := dispatch(opCtx, cl, s, services, hub, fields, reply)
		cancel()
		if !ok {
			return
		}
	}
}

// parseRequest translates one protocol line into the access-protocol
// Request the whole system speaks. LGET, STATS, and QUIT are connection-local
// and handled by dispatch directly.
func parseRequest(fields []string) (*kv.Request, error) {
	switch strings.ToUpper(fields[0]) {
	case "PUT":
		if len(fields) != 3 {
			return nil, fmt.Errorf("usage: PUT key value")
		}
		val, err := untoken(fields[2])
		if err != nil {
			return nil, err
		}
		return &kv.Request{Op: kv.ReqPut, Key: fields[1], Val: val}, nil
	case "GET":
		if len(fields) != 2 {
			return nil, fmt.Errorf("usage: GET key")
		}
		return &kv.Request{Op: kv.ReqGet, Keys: []string{fields[1]}}, nil
	case "MGET":
		if len(fields) < 2 {
			return nil, fmt.Errorf("usage: MGET key ...")
		}
		return &kv.Request{Op: kv.ReqGet, Keys: fields[1:]}, nil
	case "DEL":
		if len(fields) != 2 {
			return nil, fmt.Errorf("usage: DEL key")
		}
		return &kv.Request{Op: kv.ReqDelete, Key: fields[1]}, nil
	case "CAS":
		if len(fields) != 4 {
			return nil, fmt.Errorf("usage: CAS key old|- new")
		}
		req := &kv.Request{Op: kv.ReqCAS, Key: fields[1]}
		if fields[2] != "-" {
			expect, err := untoken(fields[2])
			if err != nil {
				return nil, err
			}
			if expect == nil {
				expect = []byte{}
			}
			req.ExpectPresent = true
			req.Expect = expect
		}
		val, err := untoken(fields[3])
		if err != nil {
			return nil, err
		}
		req.Val = val
		return req, nil
	case "TXN":
		// One atomic multi-key transaction: any mix of clauses, evaluated
		// against one locked cross-shard snapshot.
		//
		//	TXN [GET key]... [PUT key value]... [DEL key]... [IF key value|-]...
		//
		// IF key - requires the key to be absent; IF key value requires
		// equality. Any failing IF aborts the whole transaction (ABORTED);
		// otherwise every PUT/DEL lands atomically and the GETs answer the
		// snapshot (COMMITTED k=v ...).
		req := &kv.Request{Op: kv.ReqTxn}
		for i := 1; i < len(fields); {
			switch strings.ToUpper(fields[i]) {
			case "GET":
				if i+1 >= len(fields) {
					return nil, fmt.Errorf("TXN GET needs a key")
				}
				req.Keys = append(req.Keys, fields[i+1])
				i += 2
			case "PUT":
				if i+2 >= len(fields) {
					return nil, fmt.Errorf("TXN PUT needs key and value")
				}
				val, err := untoken(fields[i+2])
				if err != nil {
					return nil, err
				}
				req.Writes = append(req.Writes, kv.TxnWrite{Key: fields[i+1], Val: val})
				i += 3
			case "DEL":
				if i+1 >= len(fields) {
					return nil, fmt.Errorf("TXN DEL needs a key")
				}
				req.Writes = append(req.Writes, kv.TxnWrite{Key: fields[i+1], Delete: true})
				i += 2
			case "IF":
				if i+2 >= len(fields) {
					return nil, fmt.Errorf("TXN IF needs key and value (or - for absent)")
				}
				cond := kv.TxnCond{Key: fields[i+1]}
				if fields[i+2] != "-" {
					expect, err := untoken(fields[i+2])
					if err != nil {
						return nil, err
					}
					if expect == nil {
						expect = []byte{}
					}
					cond.ExpectPresent = true
					cond.Expect = expect
				}
				req.Conds = append(req.Conds, cond)
				i += 3
			default:
				return nil, fmt.Errorf("TXN: unknown clause %q (want GET, PUT, DEL, or IF)", fields[i])
			}
		}
		if len(req.Keys)+len(req.Writes)+len(req.Conds) == 0 {
			return nil, fmt.Errorf("usage: TXN [GET k] [PUT k v] [DEL k] [IF k v|-] ...")
		}
		return req, nil
	default:
		return nil, fmt.Errorf("unknown command %q", fields[0])
	}
}

// renderResponse translates a Response back into the line protocol. verb is
// the request's line-protocol command: GET and MGET share ReqGet on the
// wire but render differently (a single-key MGET still answers k=v pairs).
func renderResponse(verb string, req *kv.Request, resp *kv.Response, reply func(string, ...any) bool) bool {
	switch req.Op {
	case kv.ReqPut:
		return reply("OK")
	case kv.ReqDelete, kv.ReqCAS:
		return reply("OK %v", resp.OK)
	case kv.ReqGet:
		if verb == "GET" {
			if !resp.Found[0] {
				return reply("NOTFOUND")
			}
			return reply("VALUE %s", token(resp.Values[0]))
		}
		parts := make([]string, 0, len(req.Keys))
		for i, k := range req.Keys {
			if resp.Found[i] {
				parts = append(parts, fmt.Sprintf("%s=%s", k, token(resp.Values[i])))
			}
		}
		return reply("VALUE %s", strings.Join(parts, " "))
	case kv.ReqTxn:
		if resp.CondFailed {
			return reply("ABORTED")
		}
		if !resp.OK {
			return reply("ERR transaction did not commit")
		}
		parts := make([]string, 0, len(req.Keys))
		for i, k := range req.Keys {
			if i < len(resp.Found) && resp.Found[i] {
				parts = append(parts, fmt.Sprintf("%s=%s", k, token(resp.Values[i])))
			}
		}
		if len(parts) == 0 {
			return reply("COMMITTED")
		}
		return reply("COMMITTED %s", strings.Join(parts, " "))
	default:
		return reply("ERR unrenderable op %d", req.Op)
	}
}

func dispatch(ctx context.Context, cl *kv.Client, s *kv.Store, services []*kv.Service, hub *obs.Hub, fields []string, reply func(string, ...any) bool) bool {
	// multiline streams a multi-line body over the single-line protocol,
	// terminated by END so a scripted client knows where the dump stops.
	multiline := func(body string) bool {
		for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
			if !reply("%s", line) {
				return false
			}
		}
		return reply("END")
	}
	switch strings.ToUpper(fields[0]) {
	case "METRICS":
		var b strings.Builder
		if err := hub.Registry().WritePrometheus(&b); err != nil {
			return reply("ERR %v", err)
		}
		return multiline(b.String())
	case "TRACE":
		if len(fields) != 2 {
			return reply("ERR usage: TRACE id")
		}
		id, err := strconv.ParseUint(fields[1], 0, 64)
		if err != nil {
			return reply("ERR bad trace id %q", fields[1])
		}
		return multiline(obs.FormatTrace(id, hub.Tracer().Trace(id)))
	case "TRACES":
		var b strings.Builder
		for _, id := range hub.Tracer().IDs() {
			fmt.Fprintf(&b, "%d\n", id)
		}
		return multiline(b.String())
	case "FLIGHT":
		return multiline(hub.Flight().Format())
	case "HEALTH":
		return multiline(hub.Health().Summary(""))
	case "TOP":
		return multiline(hub.Health().Summary("") + hub.Health().Format(""))
	case "SGET":
		if len(fields) != 3 {
			return reply("ERR usage: SGET key max-staleness")
		}
		bound, err := time.ParseDuration(fields[2])
		if err != nil || bound <= 0 {
			return reply("ERR bad staleness bound %q", fields[2])
		}
		v, found, staleFor, err := cl.StaleGet(ctx, fields[1], bound)
		if err != nil {
			return reply("ERR %v", err)
		}
		if !found {
			return reply("NOTFOUND stale-for=%s", staleFor.Round(time.Millisecond))
		}
		return reply("VALUE %s stale-for=%s", token(v), staleFor.Round(time.Millisecond))
	case "LGET":
		if len(fields) != 2 {
			return reply("ERR usage: LGET key")
		}
		v, found := cl.LocalGet(fields[1])
		if !found {
			return reply("NOTFOUND")
		}
		return reply("VALUE %s", token(v))
	case "RESHARD":
		if len(fields) != 2 {
			return reply("ERR usage: RESHARD shard-count")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n <= 0 {
			return reply("ERR bad shard count %q", fields[1])
		}
		// A handoff can outlast one op budget: give it its own.
		rctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		err = s.Resharding(rctx, n)
		cancel()
		if err != nil {
			return reply("ERR %v", err)
		}
		rt := s.Routing()
		return reply("OK epoch=%d shards=%d", rt.Epoch, rt.Shards)
	case "STATS":
		rt := s.Routing()
		members := make([]string, s.Shards())
		for i := range members {
			members[i] = strconv.Itoa(s.Members(i))
		}
		var served, forwarded, scattered uint64
		for _, svc := range services {
			st := svc.Stats()
			served += st.Served
			forwarded += st.Forwarded
			scattered += st.Scattered
		}
		cs := cl.Stats()
		return reply("STATS shards=%d epoch=%d members=[%s] served=%d forwarded=%d scattered=%d local=%d remote=%d",
			s.Shards(), rt.Epoch, strings.Join(members, " "), served, forwarded, scattered, cs.LocalOps, cs.RemoteOps)
	case "QUIT":
		reply("BYE")
		return false
	}
	req, err := parseRequest(fields)
	if err != nil {
		return reply("ERR %v", err)
	}
	resp, err := cl.Do(ctx, req)
	if err != nil {
		return reply("ERR %v", err)
	}
	return renderResponse(strings.ToUpper(fields[0]), req, resp, reply)
}

// runLoad drives a running server over TCP.
func runLoad(addr string, clients int, duration time.Duration, valueSize int, readFrac float64) int {
	value := token(make([]byte, valueSize))
	var (
		ops  atomic.Uint64
		errs atomic.Uint64
		wg   sync.WaitGroup
	)
	stop := time.Now().Add(duration)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				log.Printf("amoeba-kv: client %d: %v", c, err)
				errs.Add(1)
				return
			}
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			w := bufio.NewWriter(conn)
			n := 0
			for time.Now().Before(stop) {
				key := fmt.Sprintf("load-%d-%04d", c, n%512)
				var cmd string
				if float64(n%100)/100 < readFrac {
					cmd = "GET " + key
				} else {
					cmd = "PUT " + key + " " + value
				}
				fmt.Fprintln(w, cmd)
				if err := w.Flush(); err != nil || !sc.Scan() {
					errs.Add(1)
					return
				}
				line := sc.Text()
				if strings.HasPrefix(line, "ERR") {
					errs.Add(1)
				} else {
					ops.Add(1)
				}
				n++
			}
		}()
	}
	wg.Wait()
	total := ops.Load()
	fmt.Printf("amoeba-kv load: %d clients, %v: %d ops = %.0f ops/s (%d errors)\n",
		clients, duration, total, float64(total)/duration.Seconds(), errs.Load())
	if total == 0 {
		return 1
	}
	return 0
}

// runSelftest sweeps shard counts with the in-process workload, then drives
// the same workload through the RPC proxy path: bounded replication, every
// client holding one node's address, foreign shards reached by forwarding.
// The whole run feeds one observability hub (served over HTTP when
// -metrics-addr is set), and the selftest fails if any required metric
// family is missing from the export — the pipeline instrumentation is part
// of what is being self-tested.
func runSelftest(nodes, resilience int, duration time.Duration, metricsAddr string) int {
	if duration <= 0 || duration > 2*time.Second {
		duration = time.Second
	}
	ctx := context.Background()
	hub := newHub("selftest", 64, metricsAddr)
	group := amoeba.GroupOptions{
		Resilience:   resilience,
		AutoReset:    true,
		MinSurvivors: 1,
		Obs:          hub,
	}
	fmt.Println("in-process load sweep (aggregate ops/s; single host, so this measures protocol overhead):")
	for _, shards := range []int{1, 2, 4, 8} {
		rep, err := kv.RunLoad(ctx, kv.LoadOptions{
			Shards: shards,
			Nodes:  nodes,
			// Enough concurrency per node to fill the send window and
			// exercise write coalescing (see the batches= counters).
			Clients:  8 * nodes,
			Duration: duration,
			Group:    group,
		})
		if err != nil {
			log.Printf("amoeba-kv: selftest shards=%d: %v", shards, err)
			return 1
		}
		fmt.Printf("  %s\n", rep)
	}
	fmt.Println("proxied sweep (bounded replication; clients hold one node address, foreign shards via RPC proxy / ForwardRequest):")
	proxNodes := nodes
	if proxNodes < 2 {
		proxNodes = 2
	}
	rep, err := kv.RunLoad(ctx, kv.LoadOptions{
		Shards:      proxNodes,
		Nodes:       proxNodes,
		Replication: 1,
		Proxied:     true,
		Clients:     4 * proxNodes,
		Duration:    duration,
		Group:       group,
	})
	if err != nil {
		log.Printf("amoeba-kv: selftest proxied: %v", err)
		return 1
	}
	fmt.Printf("  %s\n", rep)
	if rep.Forwarded == 0 {
		log.Printf("amoeba-kv: selftest proxied: no requests were forwarded — the proxy path went unexercised")
		return 1
	}
	if rc := runReshardSelftest(nodes, resilience, hub); rc != 0 {
		return rc
	}
	if rc := runDurableSelftest(nodes, resilience, hub); rc != 0 {
		return rc
	}
	if rc := runTxnSelftest(nodes, resilience, duration, hub); rc != 0 {
		return rc
	}
	if rc := runLeaseSelftest(nodes, resilience, duration, hub); rc != 0 {
		return rc
	}
	if rc := runHealthSelftest(nodes, resilience, hub); rc != 0 {
		return rc
	}
	return checkMetrics(hub)
}

// checkMetrics renders the hub's Prometheus export and fails if any metric
// family the pipeline instrumentation is supposed to populate is absent —
// a regression guard on the observability layer itself.
func checkMetrics(hub *obs.Hub) int {
	var b strings.Builder
	if err := hub.Registry().WritePrometheus(&b); err != nil {
		log.Printf("amoeba-kv: selftest metrics: render: %v", err)
		return 1
	}
	out := b.String()
	required := []string{
		// Sequencer pipeline stages.
		"amoeba_seq_append_ns",
		"amoeba_seq_multicast_ns",
		"amoeba_seq_batch_fill",
		// Delivery and apply.
		"amoeba_group_deliver_wait_ns",
		"amoeba_replica_apply_ns",
		// Durable tier (populated by the durable sweep).
		"amoeba_wal_append_ns",
		"amoeba_wal_appends_total",
		// Core protocol counters.
		"amoeba_core_sent_total",
		"amoeba_core_ordered_total",
		"amoeba_core_delivered_total",
		// Access tier.
		"amoeba_kv_client_local_ops_total",
		"amoeba_kv_client_remote_ops_total",
		"amoeba_kv_service_served_total",
		"amoeba_kv_service_forwarded_total",
		"amoeba_kv_load_op_ns",
		// Transaction tier (populated by the txn sweep).
		"amoeba_kv_txn_prepare_ns",
		"amoeba_kv_txn_resolve_ns",
		"amoeba_kv_txn_total_ns",
		"amoeba_kv_client_txn_committed_total",
		"amoeba_kv_client_txn_conflict_retries_total",
		// Read-lease tier (populated by the lease sweep).
		"amoeba_kv_lease_reads_total",
		"amoeba_kv_lease_fallbacks_total",
		"amoeba_kv_stale_reads_total",
		"amoeba_kv_stale_fallbacks_total",
		"amoeba_kv_client_lease_reads_total",
		"amoeba_kv_client_stale_reads_total",
		"amoeba_core_lease_grants_total",
		"amoeba_core_lease_renewals_total",
		// Self-audit tier (populated by the health sweep).
		"amoeba_health_reports_total",
		"amoeba_health_audits_total",
		"amoeba_health_divergence_total",
		"amoeba_health_apply_lag",
		"amoeba_health_audit_staleness_ms",
		"amoeba_health_diverged",
		"amoeba_wal_checkpoints_rejected_total",
	}
	missing := 0
	for _, name := range required {
		if !strings.Contains(out, name+"{") && !strings.Contains(out, name+" ") {
			log.Printf("amoeba-kv: selftest metrics: required family %s missing from export", name)
			missing++
		}
	}
	if missing > 0 {
		return 1
	}
	fmt.Printf("metrics export: all %d required families present (%d bytes of Prometheus text)\n",
		len(required), len(out))
	return 0
}

// runReshardSelftest splits a live store 4→8 and merges it back 8→4 under a
// background writer: every key must survive both handoffs exactly once, the
// epoch must advance twice, and no client operation may fail.
func runReshardSelftest(nodes, resilience int, hub *obs.Hub) int {
	fmt.Println("reshard sweep (live 4→8 split and 8→4 merge under load):")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if nodes < 2 {
		nodes = 2
	}
	network := amoeba.NewMemoryNetwork()
	defer network.Close()
	kernels := make([]*amoeba.Kernel, nodes)
	for i := range kernels {
		k, err := network.NewKernel(fmt.Sprintf("reshard-node-%d", i))
		if err != nil {
			log.Printf("amoeba-kv: selftest reshard: %v", err)
			return 1
		}
		kernels[i] = k
	}
	stores, err := kv.Bootstrap(ctx, kernels, "selftest-reshard", kv.Options{
		Shards: 4,
		Group: amoeba.GroupOptions{
			Resilience:   resilience,
			AutoReset:    true,
			MinSurvivors: 1,
			Obs:          hub,
		},
	})
	if err != nil {
		log.Printf("amoeba-kv: selftest reshard bootstrap: %v", err)
		return 1
	}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()

	const keys = 300
	cl := stores[0].NewClient()
	defer cl.Close()
	pairs := make([]kv.Pair, keys)
	for i := range pairs {
		pairs[i] = kv.Pair{Key: fmt.Sprintf("reshard-%04d", i), Val: []byte(fmt.Sprintf("v%04d", i))}
	}
	if err := cl.BatchPut(ctx, pairs); err != nil {
		log.Printf("amoeba-kv: selftest reshard seed: %v", err)
		return 1
	}

	// Background writer across both handoffs.
	loadCtx, stopLoad := context.WithCancel(ctx)
	defer stopLoad()
	loadErr := make(chan error, 1)
	go func() {
		wcl := stores[nodes-1].NewClient()
		defer wcl.Close()
		for i := 0; ; i++ {
			if loadCtx.Err() != nil {
				loadErr <- nil
				return
			}
			if err := wcl.Put(loadCtx, fmt.Sprintf("reshard-live-%03d", i%64), []byte("w")); err != nil && loadCtx.Err() == nil {
				loadErr <- err
				return
			}
		}
	}()

	verify := func(tag string, wantShards int, wantEpoch uint64) bool {
		rt := stores[0].Routing()
		if rt.Shards != wantShards || rt.Epoch != wantEpoch {
			log.Printf("amoeba-kv: selftest reshard %s: routing %+v, want %d shards at epoch %d", tag, rt, wantShards, wantEpoch)
			return false
		}
		for _, p := range pairs {
			v, ok, err := cl.Get(ctx, p.Key)
			if err != nil || !ok || string(v) != string(p.Val) {
				log.Printf("amoeba-kv: selftest reshard %s: key %q = %q %v %v, want %q", tag, p.Key, v, ok, err, p.Val)
				return false
			}
		}
		return true
	}
	start := time.Now()
	if err := stores[0].Resharding(ctx, 8); err != nil {
		log.Printf("amoeba-kv: selftest reshard split: %v", err)
		return 1
	}
	splitTime := time.Since(start)
	if !verify("after split", 8, 1) {
		return 1
	}
	start = time.Now()
	if err := stores[0].Resharding(ctx, 4); err != nil {
		log.Printf("amoeba-kv: selftest reshard merge: %v", err)
		return 1
	}
	mergeTime := time.Since(start)
	if !verify("after merge", 4, 2) {
		return 1
	}
	stopLoad()
	if err := <-loadErr; err != nil {
		log.Printf("amoeba-kv: selftest reshard: background writer failed: %v", err)
		return 1
	}
	fmt.Printf("  %d keys survived 4→8→4 under load (split %v, merge %v, epoch 2)\n",
		keys, splitTime.Round(time.Millisecond), mergeTime.Round(time.Millisecond))
	return 0
}

// runDurableSelftest kills and restarts a whole durable cluster: every key
// must come back from the write-ahead logs, and a command retried across
// the restart must stay exactly-once (its dedup state recovered too).
func runDurableSelftest(nodes, resilience int, hub *obs.Hub) int {
	fmt.Println("durable sweep (write, kill every node, recover from the write-ahead logs):")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	dataDir, err := os.MkdirTemp("", "amoeba-kv-selftest-")
	if err != nil {
		log.Printf("amoeba-kv: selftest durable: %v", err)
		return 1
	}
	defer os.RemoveAll(dataDir)
	if nodes < 2 {
		nodes = 2
	}
	opts := kv.Options{
		Shards:          nodes,
		DataDir:         dataDir,
		CheckpointEvery: 64,
		Group: amoeba.GroupOptions{
			Resilience:   resilience,
			AutoReset:    true,
			MinSurvivors: 1,
			Obs:          hub,
		},
	}
	boot := func(gen int) ([]*kv.Store, *amoeba.MemoryNetwork, error) {
		network := amoeba.NewMemoryNetwork()
		kernels := make([]*amoeba.Kernel, nodes)
		for i := range kernels {
			k, err := network.NewKernel(fmt.Sprintf("durable-g%d-node-%d", gen, i))
			if err != nil {
				network.Close()
				return nil, nil, err
			}
			kernels[i] = k
		}
		stores, err := kv.Bootstrap(ctx, kernels, "selftest-durable", opts)
		if err != nil {
			network.Close()
			return nil, nil, err
		}
		return stores, network, nil
	}

	const keys = 200
	stores, network, err := boot(0)
	if err != nil {
		log.Printf("amoeba-kv: selftest durable boot: %v", err)
		return 1
	}
	cl := stores[0].NewClient()
	pairs := make([]kv.Pair, keys)
	for i := range pairs {
		pairs[i] = kv.Pair{Key: fmt.Sprintf("durable-%04d", i), Val: []byte(fmt.Sprintf("v%04d", i))}
	}
	start := time.Now()
	if err := cl.BatchPut(ctx, pairs); err != nil {
		log.Printf("amoeba-kv: selftest durable put: %v", err)
		return 1
	}
	writeTime := time.Since(start)
	const casID = 0xCAFE_D00D
	casReq := &kv.Request{Op: kv.ReqCAS, Key: "durable-lock", Val: []byte("holder"), ID: casID}
	if resp, err := cl.Do(ctx, casReq); err != nil || !resp.OK {
		log.Printf("amoeba-kv: selftest durable CAS: %+v, %v", resp, err)
		return 1
	}
	cl.Close()
	// Kill every node — no Leave, no goodbye — and the whole network.
	for _, s := range stores {
		s.Close()
	}
	network.Close()

	start = time.Now()
	stores2, network2, err := boot(1)
	if err != nil {
		log.Printf("amoeba-kv: selftest durable restart: %v", err)
		return 1
	}
	recoveryTime := time.Since(start)
	defer network2.Close()
	defer func() {
		for _, s := range stores2 {
			s.Close()
		}
	}()
	cl2 := stores2[nodes-1].NewClient()
	defer cl2.Close()
	for _, p := range pairs {
		v, ok, err := cl2.Get(ctx, p.Key)
		if err != nil || !ok || string(v) != string(p.Val) {
			log.Printf("amoeba-kv: selftest durable: key %q = %q %v %v after restart, want %q", p.Key, v, ok, err, p.Val)
			return 1
		}
	}
	// The retried command (same id) must answer its original result, not
	// re-execute; a genuinely new create must fail against the recovered
	// value.
	if resp, err := cl2.Do(ctx, &kv.Request{Op: kv.ReqCAS, Key: "durable-lock", Val: []byte("holder"), ID: casID}); err != nil || !resp.OK {
		log.Printf("amoeba-kv: selftest durable: retried CAS = %+v, %v (dedup state lost?)", resp, err)
		return 1
	}
	if ok, err := cl2.CAS(ctx, "durable-lock", nil, []byte("usurper")); err != nil || ok {
		log.Printf("amoeba-kv: selftest durable: fresh CAS create = %v, %v (recovered store lost the lock)", ok, err)
		return 1
	}
	fmt.Printf("  %d keys + dedup state survived a full-cluster restart (write %v, recover %v)\n",
		keys, writeTime.Round(time.Millisecond), recoveryTime.Round(time.Millisecond))
	return 0
}

// runHealthSelftest exercises the self-audit loop end to end: a cluster
// auditing on a short period must roll up ok, degrade when one node is
// killed without a goodbye (its replicas go silent and their audit reports
// stale out), and recover to ok after the node rejoins with state transfer —
// all without a single divergence, since every replica's state is honest.
func runHealthSelftest(nodes, resilience int, hub *obs.Hub) int {
	fmt.Println("health sweep (audit to ok, kill a node, degrade, rejoin, recover):")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if nodes < 3 {
		nodes = 3
	}
	const period = 100 * time.Millisecond
	aud := hub.Health()
	aud.SetStaleAfter(6 * period)
	network := amoeba.NewMemoryNetwork()
	defer network.Close()
	kernels := make([]*amoeba.Kernel, nodes)
	for i := range kernels {
		k, err := network.NewKernel(fmt.Sprintf("health-node-%d", i))
		if err != nil {
			log.Printf("amoeba-kv: selftest health: %v", err)
			return 1
		}
		kernels[i] = k
	}
	opts := kv.Options{
		Shards:     2,
		AuditEvery: period,
		Group: amoeba.GroupOptions{
			Resilience:   resilience,
			AutoReset:    true,
			MinSurvivors: 1,
			Obs:          hub,
		},
	}
	stores, err := kv.Bootstrap(ctx, kernels, "selftest-health", opts)
	if err != nil {
		log.Printf("amoeba-kv: selftest health boot: %v", err)
		return 1
	}
	closed := make([]bool, nodes)
	defer func() {
		for i, s := range stores {
			if !closed[i] {
				s.Close()
			}
		}
	}()
	cl := stores[0].NewClient()
	for i := 0; i < 32; i++ {
		if err := cl.Put(ctx, fmt.Sprintf("health-%04d", i), []byte("v")); err != nil {
			log.Printf("amoeba-kv: selftest health put: %v", err)
			return 1
		}
	}
	cl.Close()

	const prefix = "kv/selftest-health/"
	waitVerdict := func(want, phase string, timeout time.Duration) bool {
		deadline := time.Now().Add(timeout)
		for aud.Rollup(prefix) != want {
			if time.Now().After(deadline) {
				log.Printf("amoeba-kv: selftest health: %s: rollup stuck at %q, want %q\n%s",
					phase, aud.Rollup(prefix), want, aud.Format(prefix))
				return false
			}
			time.Sleep(period / 4)
		}
		return true
	}
	if !waitVerdict(obs.VerdictOK, "initial audit", 30*time.Second) {
		return 1
	}

	// Kill the last node — no Leave, no goodbye. Its replicas stop reporting,
	// the audit staleness clock runs out, and the rollup must degrade.
	victim := nodes - 1
	stores[victim].Close()
	closed[victim] = true
	degradeStart := time.Now()
	if !waitVerdict(obs.VerdictDegraded, "post-kill", 30*time.Second) {
		return 1
	}
	degradeTime := time.Since(degradeStart)

	// Rejoin the same slot with a fresh kernel: state transfer catches the
	// replicas up, their audit reports resume, and the rollup must heal.
	k, err := network.NewKernel(fmt.Sprintf("health-node-%d-rejoin", victim))
	if err != nil {
		log.Printf("amoeba-kv: selftest health rejoin kernel: %v", err)
		return 1
	}
	rejoinOpts := opts
	rejoinOpts.NodeIndex = victim
	recoverStart := time.Now()
	rejoined, err := kv.Join(ctx, k, "selftest-health", rejoinOpts)
	if err != nil {
		log.Printf("amoeba-kv: selftest health rejoin: %v", err)
		return 1
	}
	stores[victim] = rejoined
	closed[victim] = false
	if !waitVerdict(obs.VerdictOK, "post-rejoin", 30*time.Second) {
		return 1
	}
	recoverTime := time.Since(recoverStart)

	if divs := aud.Divergences(); len(divs) != 0 {
		log.Printf("amoeba-kv: selftest health: honest cluster reported divergence: %v", divs[0])
		return 1
	}
	fmt.Printf("  verdict ok -> degraded %v after kill -> ok %v after rejoin (audit period %v, no divergence)\n",
		degradeTime.Round(time.Millisecond), recoverTime.Round(time.Millisecond), period)
	return 0
}

// runTxnSelftest hammers the cross-shard transaction path: concurrent
// conditional transfers between bank accounts spread over every shard, a
// conserved-sum invariant read through consistent snapshots (MGET-as-txn),
// and a pinned-id retry that must answer the original commit instead of
// re-executing — the same exactly-once discipline the durable sweep pins
// for CAS, here across a whole 2PC.
func runTxnSelftest(nodes, resilience int, duration time.Duration, hub *obs.Hub) int {
	fmt.Println("txn sweep (concurrent cross-shard transfers + snapshot sum + pinned-id retry):")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if nodes < 2 {
		nodes = 2
	}
	network := amoeba.NewMemoryNetwork()
	defer network.Close()
	kernels := make([]*amoeba.Kernel, nodes)
	for i := range kernels {
		k, err := network.NewKernel(fmt.Sprintf("txn-node-%d", i))
		if err != nil {
			log.Printf("amoeba-kv: selftest txn: %v", err)
			return 1
		}
		kernels[i] = k
	}
	stores, err := kv.Bootstrap(ctx, kernels, "selftest-txn", kv.Options{
		Shards: 4,
		Group: amoeba.GroupOptions{
			Resilience:   resilience,
			AutoReset:    true,
			MinSurvivors: 1,
			Obs:          hub,
		},
	})
	if err != nil {
		log.Printf("amoeba-kv: selftest txn boot: %v", err)
		return 1
	}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()

	const (
		accounts = 8
		balance  = 100
	)
	acct := func(i int) string { return fmt.Sprintf("txn-acct-%d", i) }
	seed := stores[0].NewClient()
	pairs := make([]kv.Pair, accounts)
	for i := range pairs {
		pairs[i] = kv.Pair{Key: acct(i), Val: []byte(strconv.Itoa(balance))}
	}
	if err := seed.BatchPut(ctx, pairs); err != nil {
		seed.Close()
		log.Printf("amoeba-kv: selftest txn seed: %v", err)
		return 1
	}
	seed.Close()

	// Concurrent transfers: snapshot two accounts, move 1 conditionally on
	// both observed balances. A CondFailed abort means another transfer got
	// there first — reread and retry, like any CAS loop.
	var (
		commits   atomic.Uint64
		condFails atomic.Uint64
		wg        sync.WaitGroup
		failed    atomic.Bool
	)
	deadline := time.Now().Add(duration)
	for w := 0; w < 2*nodes; w++ {
		w := w
		cl := stores[w%nodes].NewClient()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cl.Close()
			for i := 0; time.Now().Before(deadline); i++ {
				a, b := acct((w+i)%accounts), acct((w+i+1+w%3)%accounts)
				if a == b {
					continue
				}
				snap, err := cl.MGet(ctx, a, b)
				if err != nil {
					log.Printf("amoeba-kv: selftest txn snapshot: %v", err)
					failed.Store(true)
					return
				}
				ba, _ := strconv.Atoi(string(snap[a]))
				bb, _ := strconv.Atoi(string(snap[b]))
				if ba < 1 {
					continue
				}
				res, err := cl.Txn(ctx, kv.TxnOp{
					Conds: []kv.TxnCond{
						{Key: a, ExpectPresent: true, Expect: snap[a]},
						{Key: b, ExpectPresent: true, Expect: snap[b]},
					},
					Writes: []kv.TxnWrite{
						{Key: a, Val: []byte(strconv.Itoa(ba - 1))},
						{Key: b, Val: []byte(strconv.Itoa(bb + 1))},
					},
				})
				if err != nil {
					log.Printf("amoeba-kv: selftest txn transfer: %v", err)
					failed.Store(true)
					return
				}
				if res.Committed {
					commits.Add(1)
				} else {
					condFails.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		return 1
	}
	if commits.Load() == 0 {
		log.Printf("amoeba-kv: selftest txn: no transfer committed — the txn path went unexercised")
		return 1
	}

	// The invariant: one consistent snapshot over all accounts sums to the
	// seeded total, however the transfers interleaved.
	cl := stores[nodes-1].NewClient()
	defer cl.Close()
	keys := make([]string, accounts)
	for i := range keys {
		keys[i] = acct(i)
	}
	snap, err := cl.MGet(ctx, keys...)
	if err != nil {
		log.Printf("amoeba-kv: selftest txn sum snapshot: %v", err)
		return 1
	}
	sum := 0
	for _, k := range keys {
		v, ok := snap[k]
		if !ok {
			log.Printf("amoeba-kv: selftest txn: account %s missing from snapshot", k)
			return 1
		}
		n, err := strconv.Atoi(string(v))
		if err != nil {
			log.Printf("amoeba-kv: selftest txn: account %s = %q unparseable", k, v)
			return 1
		}
		sum += n
	}
	if sum != accounts*balance {
		log.Printf("amoeba-kv: selftest txn: accounts sum to %d, want %d — a transfer tore", sum, accounts*balance)
		return 1
	}

	// Exactly-once: a retried coordinator request (same pinned id) must
	// answer the original commit from the recorded decision. Re-execution
	// would fail the condition (the balance already moved) and answer
	// ABORTED instead.
	const txnID = 0xCAFE_2BC0
	v0 := snap[acct(0)]
	n0, _ := strconv.Atoi(string(v0))
	req := &kv.Request{Op: kv.ReqTxn, ID: txnID,
		Conds: []kv.TxnCond{{Key: acct(0), ExpectPresent: true, Expect: v0}},
		Writes: []kv.TxnWrite{
			{Key: acct(0), Val: []byte(strconv.Itoa(n0 - 1))},
			{Key: acct(1), Val: append([]byte(nil), snap[acct(1)]...)},
		}}
	resp, err := cl.Do(ctx, req)
	if err != nil || !resp.OK {
		log.Printf("amoeba-kv: selftest txn pinned commit: %+v, %v", resp, err)
		return 1
	}
	resp, err = cl.Do(ctx, req)
	if err != nil || !resp.OK || resp.CondFailed {
		log.Printf("amoeba-kv: selftest txn retried commit: %+v, %v (re-executed instead of re-answered?)", resp, err)
		return 1
	}
	if v, _, err := cl.Get(ctx, acct(0)); err != nil || string(v) != strconv.Itoa(n0-1) {
		log.Printf("amoeba-kv: selftest txn: account 0 = %q %v after retry, want %d applied exactly once", v, err, n0-1)
		return 1
	}
	fmt.Printf("  %d transfers committed (%d conflict aborts retried), sum conserved at %d, pinned-id retry answered the original commit\n",
		commits.Load(), condFails.Load(), accounts*balance)
	return 0
}

// runLeaseSelftest drives the read-lease paths: a leased cluster under a
// read-heavy mix where every write is immediately read back through the
// lease-serve path (write gating makes that linearizable — a stale serve
// would return the older value), plus bounded-staleness StaleGets whose
// reported staleness must honor the requested bound. The sweep fails if the
// lease path never actually serves — silent fallback to sequenced reads
// would pass every correctness check while voiding the optimization.
func runLeaseSelftest(nodes, resilience int, duration time.Duration, hub *obs.Hub) int {
	fmt.Println("lease sweep (lease-served reads + read-your-writes + bounded-staleness gets):")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if nodes < 2 {
		nodes = 2
	}
	network := amoeba.NewMemoryNetwork()
	defer network.Close()
	kernels := make([]*amoeba.Kernel, nodes)
	for i := range kernels {
		k, err := network.NewKernel(fmt.Sprintf("lease-node-%d", i))
		if err != nil {
			log.Printf("amoeba-kv: selftest lease: %v", err)
			return 1
		}
		kernels[i] = k
	}
	stores, err := kv.Bootstrap(ctx, kernels, "selftest-lease", kv.Options{
		Shards: 4,
		Leases: true,
		Group: amoeba.GroupOptions{
			Resilience:   resilience,
			AutoReset:    true,
			MinSurvivors: 1,
			Obs:          hub,
		},
	})
	if err != nil {
		log.Printf("amoeba-kv: selftest lease boot: %v", err)
		return 1
	}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()

	// Leases ride sync ticks; give every shard time to arm before timing
	// the mix (reads before that fall back to the sequenced path, which is
	// correct but not what this sweep exists to exercise).
	seed := stores[0].NewClient()
	for i := 0; i < 16; i++ {
		if err := seed.Put(ctx, fmt.Sprintf("lease-key-%d", i), []byte("0")); err != nil {
			seed.Close()
			log.Printf("amoeba-kv: selftest lease seed: %v", err)
			return 1
		}
	}
	armed := time.Now().Add(10 * time.Second)
	for {
		for i := 0; i < 16; i++ {
			if _, _, err := seed.Get(ctx, fmt.Sprintf("lease-key-%d", i)); err != nil {
				seed.Close()
				log.Printf("amoeba-kv: selftest lease probe: %v", err)
				return 1
			}
		}
		if leased, _, _, _ := stores[0].LeaseStats(); leased > 0 {
			break
		}
		if time.Now().After(armed) {
			seed.Close()
			log.Printf("amoeba-kv: selftest lease: leases never armed")
			return 1
		}
		time.Sleep(25 * time.Millisecond)
	}
	seed.Close()

	var (
		wg     sync.WaitGroup
		failed atomic.Bool
		reads  atomic.Uint64
	)
	deadline := time.Now().Add(duration)
	for w := 0; w < 2*nodes; w++ {
		w := w
		cl := stores[w%nodes].NewClient()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cl.Close()
			own := fmt.Sprintf("lease-own-%d", w)
			for i := 0; time.Now().Before(deadline); i++ {
				if i%20 == 19 {
					// Write, then read-your-write through the lease path:
					// write gating means the read MUST observe it.
					want := strconv.Itoa(i)
					if err := cl.Put(ctx, own, []byte(want)); err != nil {
						log.Printf("amoeba-kv: selftest lease put: %v", err)
						failed.Store(true)
						return
					}
					got, _, err := cl.Get(ctx, own)
					if err != nil || string(got) != want {
						log.Printf("amoeba-kv: selftest lease: read-your-write %s = %q %v, want %q", own, got, err, want)
						failed.Store(true)
						return
					}
				} else if i%7 == 3 {
					const bound = time.Second
					_, _, staleFor, err := cl.StaleGet(ctx, fmt.Sprintf("lease-key-%d", i%16), bound)
					if err != nil {
						log.Printf("amoeba-kv: selftest lease staleget: %v", err)
						failed.Store(true)
						return
					}
					if staleFor > bound {
						log.Printf("amoeba-kv: selftest lease: StaleGet reported %v staleness over the %v bound", staleFor, bound)
						failed.Store(true)
						return
					}
				} else {
					if _, _, err := cl.Get(ctx, fmt.Sprintf("lease-key-%d", i%16)); err != nil {
						log.Printf("amoeba-kv: selftest lease get: %v", err)
						failed.Store(true)
						return
					}
				}
				reads.Add(1)
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		return 1
	}
	var leased, fallbacks, stale uint64
	for _, s := range stores {
		l, f, st, _ := s.LeaseStats()
		leased, fallbacks, stale = leased+l, fallbacks+f, stale+st
	}
	if leased == 0 {
		log.Printf("amoeba-kv: selftest lease: no read was served from a lease — the path went unexercised")
		return 1
	}
	if stale == 0 {
		log.Printf("amoeba-kv: selftest lease: no bounded-staleness read was served")
		return 1
	}
	fmt.Printf("  %d ops: %d lease-served reads (%d fallbacks), %d stale-served, read-your-writes held\n",
		reads.Load(), leased, fallbacks, stale)
	return 0
}
