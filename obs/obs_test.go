package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the power-of-two bucketing: bucket i spans
// (2^(i-1), 2^i], bucket 0 holds 0 and 1.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1024, 10}, {1025, 11}, {1 << 40, 40}, {1<<40 + 1, 41}, {^uint64(0), 64 - 1 + 1 - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must land in a bucket whose upper bound is ≥ the value
	// and whose predecessor's bound is < the value.
	for _, v := range []uint64{1, 2, 3, 100, 1 << 20, 1<<62 + 7} {
		b := bucketOf(v)
		if upper := bucketUpper(b); upper < v {
			t.Errorf("value %d in bucket %d but upper bound %d < value", v, b, upper)
		}
		if b > 0 && bucketUpper(b-1) >= v {
			t.Errorf("value %d in bucket %d but fits bucket %d", v, b, b-1)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Nanosecond) // bucket (64,128]
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Microsecond) // bucket (8192,16384]
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if p50 := s.Quantile(0.50); p50 != 128 {
		t.Errorf("p50 = %d, want 128", p50)
	}
	if p99 := s.Quantile(0.99); p99 != 10000 {
		// Last populated bucket: Max is the tighter bound.
		t.Errorf("p99 = %d, want 10000 (the max)", p99)
	}
	if s.Max != 10000 {
		t.Errorf("max = %d, want 10000", s.Max)
	}
}

// TestHistogramConcurrent hammers one histogram from many writers under
// -race and checks nothing is lost.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const writers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveValue(uint64(w*per + i))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*per {
		t.Fatalf("count = %d, want %d", s.Count, writers*per)
	}
	if s.Max != writers*per-1 {
		t.Fatalf("max = %d, want %d", s.Max, writers*per-1)
	}
	var sum uint64
	for _, c := range s.Buckets {
		sum += c
	}
	if sum != writers*per {
		t.Fatalf("bucket total = %d, want %d", sum, writers*per)
	}
}

// TestNilSink checks the whole no-op surface: a nil hub and nil instruments
// must absorb every call.
func TestNilSink(t *testing.T) {
	var hub *Hub
	hub.Histogram("x").Observe(time.Second)
	hub.Gauge("y").Add(1)
	hub.Tracer().Add(42, "ev")
	hub.Flight().Record("scope", "ev")
	hub.Registry().RegisterSource(func() []Sample { return nil })
	if hub.Registry().WritePrometheus(nil) != nil {
		t.Fatal("nil registry WritePrometheus must be a no-op")
	}
	if hub.Tracer().Sampled(0) {
		t.Fatal("nil tracer must sample nothing")
	}
	var h *Histogram
	h.Observe(time.Second)
	if h.Snapshot().Count != 0 {
		t.Fatal("nil histogram snapshot must be empty")
	}
}

// TestFlightWraparound fills the ring past capacity and checks the dump
// keeps only the newest events, in record order.
func TestFlightWraparound(t *testing.T) {
	r := newRecorder(64) // 8 per stripe
	const total = 1000
	for i := 0; i < total; i++ {
		r.Recordf("test", "event-%d", i)
	}
	evs := r.Dump()
	if len(evs) != 64 {
		t.Fatalf("dump kept %d events, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("dump out of order at %d: %d after %d", i, evs[i].Seq, evs[i-1].Seq)
		}
	}
	// Only the tail survives: every retained seq is from the last ~64
	// records per stripe.
	if evs[0].Seq < total-8*64 {
		t.Fatalf("dump retained ancient event seq=%d", evs[0].Seq)
	}
	if !strings.Contains(evs[len(evs)-1].Event, fmt.Sprint(total-1)) {
		t.Fatalf("newest event missing: %+v", evs[len(evs)-1])
	}
}

// TestFlightConcurrent exercises the striped ring under -race.
func TestFlightConcurrent(t *testing.T) {
	r := newRecorder(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record("w", "ev")
			}
		}()
	}
	wg.Wait()
	if got := len(r.Dump()); got == 0 || got > 128 {
		t.Fatalf("dump size %d, want (0,128]", got)
	}
}

func TestTracerSamplingAndEviction(t *testing.T) {
	tr := newTracer("n0", 10, 2)
	if tr.Sampled(0) {
		t.Fatal("id 0 must never be sampled")
	}
	if tr.Sampled(7) {
		t.Fatal("7 % 10 != 0 must not be sampled")
	}
	tr.Add(10, "a")
	tr.Add(20, "b")
	tr.Add(30, "c") // evicts 10
	if got := tr.Trace(10); got != nil {
		t.Fatalf("trace 10 should be evicted, got %v", got)
	}
	if got := tr.Trace(30); len(got) != 1 || got[0].Event != "c" {
		t.Fatalf("trace 30 = %v", got)
	}
}

func TestMergeTraces(t *testing.T) {
	a, b := newTracer("node-a", 1, 16), newTracer("node-b", 1, 16)
	a.Add(5, "submitted")
	b.Add(5, "sequenced@3")
	a.Add(5, "replied")
	merged := MergeTraces(5, a, b)
	if len(merged) != 3 {
		t.Fatalf("merged %d spans, want 3", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].At.Before(merged[i-1].At) {
			t.Fatal("merged spans out of time order")
		}
	}
	out := FormatTrace(5, merged)
	for _, want := range []string{"trace 5", "node-a", "node-b", "sequenced@3"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted trace missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryPrometheus(t *testing.T) {
	hub := NewHub(Options{Node: "n1"})
	hub.Histogram("amoeba_test_ns").Observe(3 * time.Microsecond)
	hub.Gauge("amoeba_test_depth").Add(4)
	hub.Registry().RegisterSource(func() []Sample {
		return []Sample{{Name: "amoeba_test_total", Value: 7}}
	})
	hub.Registry().RegisterSource(func() []Sample {
		return []Sample{{Name: "amoeba_test_total", Value: 5}} // summed with above
	})
	var b strings.Builder
	if err := hub.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`amoeba_test_total{node="n1"} 12`,
		`amoeba_test_depth{node="n1"} 4`,
		`amoeba_test_ns{node="n1",quantile="0.5"}`,
		"amoeba_test_ns_count{node=\"n1\"} 1",
		"# TYPE amoeba_test_ns summary",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeDeltas(t *testing.T) {
	hub := NewHub(Options{})
	g := hub.Gauge("g")
	if g2 := hub.Gauge("g"); g2 != g {
		t.Fatal("same name must return the same gauge")
	}
	g.Add(5)
	g.Add(-2)
	if v := g.Value(); v != 3 {
		t.Fatalf("gauge = %d, want 3", v)
	}
}

// TestHistogramQuantileEdges pins the quantile contract at the boundaries:
// zero observations, a single sample (including a zero-valued one), and
// values at the top of the range where the recorded max tightens the last
// bucket's bound.
func TestHistogramQuantileEdges(t *testing.T) {
	empty := NewHistogram("empty").Snapshot()
	for _, q := range []float64{0.001, 0.5, 0.99, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}

	// A single zero-valued sample lands in bucket 0 (span [0,1]); every
	// quantile answers that bucket's upper bound.
	zero := NewHistogram("zero")
	zero.ObserveValue(0)
	zs := zero.Snapshot()
	for _, q := range []float64{0.001, 0.5, 1} {
		if got := zs.Quantile(q); got != 1 {
			t.Fatalf("single-zero Quantile(%v) = %d, want bucket-0 bound 1", q, got)
		}
	}

	// A single mid-bucket sample: the bucket bound (8 for value 7) exceeds
	// the recorded max, so the max is the tighter answer.
	one := NewHistogram("one")
	one.ObserveValue(7)
	os := one.Snapshot()
	for _, q := range []float64{0.001, 0.5, 1} {
		if got := os.Quantile(q); got != 7 {
			t.Fatalf("single-sample Quantile(%v) = %d, want max 7", q, got)
		}
	}

	// The largest representable value clamps into the last bucket and
	// comes back out intact.
	top := NewHistogram("top")
	top.ObserveValue(^uint64(0))
	ts := top.Snapshot()
	if got := ts.Quantile(1); got != ^uint64(0) {
		t.Fatalf("max-value Quantile(1) = %d, want MaxUint64", got)
	}
	if got := ts.Quantile(0.5); got != ^uint64(0) {
		t.Fatalf("max-value Quantile(0.5) = %d, want MaxUint64 (only sample)", got)
	}

	// A vanishing quantile still ranks at least one observation: with
	// samples in two buckets, q→0 answers the first bucket, q=1 the last.
	two := NewHistogram("two")
	two.ObserveValue(1)
	two.ObserveValue(1000)
	tw := two.Snapshot()
	if got := tw.Quantile(0.0001); got != 1 {
		t.Fatalf("tiny-q Quantile = %d, want first bucket bound 1", got)
	}
	if got := tw.Quantile(1); got != 1000 {
		t.Fatalf("Quantile(1) = %d, want max 1000", got)
	}
}

// TestMergeTracesSkewedClocks reassembles one operation's timeline from two
// hubs whose wall clocks disagree. The merge orders by timestamp — with
// skew, an event that causally followed can sort first — and the contract
// is: the output is globally sorted by At, ties are stable in tracer
// argument order, and no span is lost or duplicated.
func TestMergeTracesSkewedClocks(t *testing.T) {
	const id = 42
	a := newTracer("node-a", 1, 16)
	b := newTracer("node-b", 1, 16)
	a.Add(id, "submitted")
	b.Add(id, "sequenced")
	a.Add(id, "delivered")

	// Skew node-b three seconds into the future: its sequenced event now
	// timestamps AFTER node-a's delivery even though it happened between
	// the two.
	base := time.Unix(1000, 0)
	a.mu.Lock()
	a.traces[id][0].At = base
	a.traces[id][1].At = base.Add(2 * time.Millisecond)
	a.mu.Unlock()
	b.mu.Lock()
	b.traces[id][0].At = base.Add(3 * time.Second)
	b.mu.Unlock()

	merged := MergeTraces(id, a, b)
	if len(merged) != 3 {
		t.Fatalf("%d spans, want 3", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].At.Before(merged[i-1].At) {
			t.Fatalf("merged spans not sorted at %d: %v then %v", i, merged[i-1].At, merged[i].At)
		}
	}
	// The skewed node's span sorts last despite its causal position.
	if merged[2].Node != "node-b" || merged[2].Event != "sequenced" {
		t.Fatalf("last span = %s/%s, want skewed node-b/sequenced", merged[2].Node, merged[2].Event)
	}

	// Exact-tie timestamps: stable sort keeps tracer argument order, so
	// reversing the arguments reverses the tied pair.
	tie := base.Add(time.Hour)
	a.mu.Lock()
	a.traces[id] = []Span{{Node: "node-a", Event: "tied", At: tie}}
	a.mu.Unlock()
	b.mu.Lock()
	b.traces[id] = []Span{{Node: "node-b", Event: "tied", At: tie}}
	b.mu.Unlock()
	ab := MergeTraces(id, a, b)
	ba := MergeTraces(id, b, a)
	if ab[0].Node != "node-a" || ba[0].Node != "node-b" {
		t.Fatalf("tie order ab=%s ba=%s, want stable argument order", ab[0].Node, ba[0].Node)
	}

	// FormatTrace offsets from the first (earliest) span even when a
	// skewed clock produced it.
	out := FormatTrace(id, ab)
	if !strings.Contains(out, "+0") || !strings.Contains(out, "node-a") {
		t.Fatalf("FormatTrace output missing zero offset or node: %q", out)
	}
}
