package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timestamped event in a sampled operation's cross-node
// timeline: which node saw the op reach which pipeline stage.
type Span struct {
	Node  string
	Event string
	At    time.Time
}

// Tracer collects span events for sampled operations. The command ids that
// already flow end-to-end (kv dedup ids, per-pair batch ids) are the trace
// keys: every node applies the same id % mod == 0 sampling rule, so all
// nodes trace the same operations with no coordination, and a trace is
// reassembled by merging each node's spans for one id. A nil *Tracer is the
// no-op sink.
type Tracer struct {
	node string
	mod  uint64
	keep int

	mu     sync.Mutex
	traces map[uint64][]Span
	order  []uint64 // insertion order, oldest first, for eviction
}

func newTracer(node string, mod uint64, keep int) *Tracer {
	return &Tracer{node: node, mod: mod, keep: keep, traces: make(map[uint64][]Span)}
}

// Sampled reports whether operations with this id are traced. Id 0 is
// never sampled: it is the "no id assigned yet" sentinel at several call
// sites and would otherwise always satisfy the modulus.
func (t *Tracer) Sampled(id uint64) bool {
	return t != nil && id != 0 && id%t.mod == 0
}

// Add appends a span event for id, if sampled, stamped with this tracer's
// node and the wall clock.
func (t *Tracer) Add(id uint64, event string) {
	if !t.Sampled(id) {
		return
	}
	now := time.Now()
	t.mu.Lock()
	if _, ok := t.traces[id]; !ok {
		t.order = append(t.order, id)
		for len(t.order) > t.keep {
			delete(t.traces, t.order[0])
			t.order = t.order[1:]
		}
	}
	t.traces[id] = append(t.traces[id], Span{Node: t.node, Event: event, At: now})
	t.mu.Unlock()
}

// Addf is Add with a formatted event, evaluated only when id is sampled so
// unsampled hot paths pay no formatting cost.
func (t *Tracer) Addf(id uint64, format string, args ...any) {
	if !t.Sampled(id) {
		return
	}
	t.Add(id, fmt.Sprintf(format, args...))
}

// Trace returns this node's spans for id (copy), nil if not retained.
func (t *Tracer) Trace(id uint64) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.traces[id]...)
}

// IDs lists the retained trace ids, oldest first.
func (t *Tracer) IDs() []uint64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]uint64(nil), t.order...)
}

// MergeTraces reassembles one operation's cross-node timeline from several
// nodes' tracers, sorted by timestamp (stable on ties, so same-node
// ordering survives clock granularity).
func MergeTraces(id uint64, tracers ...*Tracer) []Span {
	var out []Span
	for _, t := range tracers {
		out = append(out, t.Trace(id)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// FormatTrace renders a merged timeline, one span per line with the offset
// from the first event:
//
//	trace 4096
//	  +0        node-0  submitted op=put key=k1
//	  +312µs    node-1  sequenced@17
func FormatTrace(id uint64, spans []Span) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d\n", id)
	if len(spans) == 0 {
		b.WriteString("  (no spans retained)\n")
		return b.String()
	}
	t0 := spans[0].At
	for _, s := range spans {
		fmt.Fprintf(&b, "  +%-10v %-12s %s\n", s.At.Sub(t0).Round(time.Microsecond), s.Node, s.Event)
	}
	return b.String()
}
