package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Digest is one replica's range-partitioned digest of its replicated state,
// computed while applying a sequenced audit command — so every replica of a
// scope digests the identical prefix of the total order. Ranges partitions
// the key space by hash so a mismatch localizes to a key-range, not just
// "something differs"; Meta folds the non-item replicated state (dedup
// window, routing epoch, transaction portions).
type Digest struct {
	ID     uint64   // audit command id: the comparison key across replicas
	Seq    uint32   // position in the scope's total order (0 during WAL replay)
	Epoch  uint64   // routing epoch at the audit point
	Keys   int      // items covered
	Ranges []uint64 // per-key-range digests, hash-partitioned
	Meta   uint64   // digest of dedup window + routing + txn state
	Sum    uint64   // fold of Ranges and Meta
}

// Divergence pinpoints a replica-state mismatch: which scope, at which audit
// seq, which key-ranges differ, and which replicas disagreed. FlightDump is
// the flight recorder's contents captured at detection time.
type Divergence struct {
	Scope      string
	ID         uint64
	Seq        uint32
	Ranges     []int // indices of differing key-ranges; -1 marks the meta digest
	Nodes      []string
	At         time.Time
	FlightDump string
}

func (d Divergence) String() string {
	return fmt.Sprintf("divergence scope=%s seq=%d audit=%d ranges=%v nodes=%v",
		d.Scope, d.Seq, d.ID, d.Ranges, d.Nodes)
}

// Health verdicts, worst first.
const (
	VerdictDiverged = "diverged" // replicas disagree on replicated state
	VerdictDegraded = "degraded" // a replica is stale (no report within StaleAfter)
	VerdictUnknown  = "unknown"  // no audit observed yet
	VerdictOK       = "ok"
)

// auditKeep bounds how many in-flight audit ids are retained per scope while
// waiting for lagging replicas to report.
const auditKeep = 8

// Auditor collects audit digests and apply-progress reports from every
// replica that shares this Hub, compares digests across replicas of the same
// scope (same audit id ⇒ same position in that scope's total order ⇒ the
// digests must be identical), and maintains a health verdict per scope. On
// the first mismatch it localizes the divergence to (scope, seq, key-ranges),
// captures a flight-recorder dump, and flips the scope's verdict to
// "diverged" — which sticks until Forget. A nil *Auditor is the no-op sink.
type Auditor struct {
	flight *Recorder
	reg    *Registry

	mu          sync.Mutex
	scopes      map[string]*scopeAudit
	staleAfter  time.Duration
	audits      uint64 // digest comparisons completed (≥2 replicas agreed)
	reports     uint64 // digest reports received
	divergences []Divergence
	lagGauge    *Gauge // amoeba_health_apply_lag: max apply-lag across replicas
	staleGauge  *Gauge // amoeba_health_audit_staleness_ms: oldest scope's audit age
	divGauge    *Gauge // amoeba_health_diverged: 0/1
}

type scopeAudit struct {
	verdict  string
	lastSeq  uint32    // seq of the newest compared audit
	lastAt   time.Time // when the newest audit report arrived
	pending  map[uint64]map[string]Digest
	order    []uint64 // pending audit ids, oldest first
	replicas map[string]*replicaAudit
	diverged *Divergence
}

type replicaAudit struct {
	applied  uint32
	lastSeen time.Time
}

func newAuditor(reg *Registry, flight *Recorder) *Auditor {
	a := &Auditor{
		flight:     flight,
		reg:        reg,
		scopes:     make(map[string]*scopeAudit),
		staleAfter: 5 * time.Second,
		lagGauge:   reg.gauge("amoeba_health_apply_lag"),
		staleGauge: reg.gauge("amoeba_health_audit_staleness_ms"),
		divGauge:   reg.gauge("amoeba_health_diverged"),
	}
	reg.RegisterSource(func() []Sample {
		a.mu.Lock()
		defer a.mu.Unlock()
		return []Sample{
			{Name: "amoeba_health_reports_total", Value: a.reports},
			{Name: "amoeba_health_audits_total", Value: a.audits},
			{Name: "amoeba_health_divergence_total", Value: uint64(len(a.divergences))},
		}
	})
	return a
}

// SetStaleAfter sets how long a replica may go without any report before the
// rollup degrades. The default is 5s; tests and fast-audit clusters lower it.
func (a *Auditor) SetStaleAfter(d time.Duration) {
	if a == nil || d <= 0 {
		return
	}
	a.mu.Lock()
	a.staleAfter = d
	a.mu.Unlock()
}

func (a *Auditor) scope(name string) *scopeAudit {
	sc := a.scopes[name]
	if sc == nil {
		sc = &scopeAudit{
			verdict:  VerdictUnknown,
			pending:  make(map[uint64]map[string]Digest),
			replicas: make(map[string]*replicaAudit),
		}
		a.scopes[name] = sc
	}
	return sc
}

// Report records one replica's digest for an audit. The audit command id —
// not the seq — keys the comparison: a group reformed from an older log can
// reuse seq numbers, but an audit id is ordered at most once per timeline.
// Safe to call from an apply loop (never calls back into replicas).
func (a *Auditor) Report(scope, node string, d Digest) {
	if a == nil || d.ID == 0 {
		return
	}
	a.mu.Lock()
	a.reports++
	sc := a.scope(scope)
	rep := sc.replica(node)
	rep.lastSeen = time.Now()
	if d.Seq > 0 {
		sc.lastSeq = d.Seq
		sc.lastAt = rep.lastSeen
		if d.Seq > rep.applied {
			rep.applied = d.Seq
		}
	}
	peers, ok := sc.pending[d.ID]
	if !ok {
		peers = make(map[string]Digest)
		sc.pending[d.ID] = peers
		sc.order = append(sc.order, d.ID)
		for len(sc.order) > auditKeep {
			delete(sc.pending, sc.order[0])
			sc.order = sc.order[1:]
		}
	}
	peers[node] = d
	var div *Divergence
	compared := len(peers) >= 2
	if compared {
		a.audits++
		div = compareDigests(scope, peers)
	}
	if div != nil && sc.diverged == nil {
		div.At = time.Now()
		div.FlightDump = a.flight.Format()
		sc.diverged = div
		sc.verdict = VerdictDiverged
		a.divergences = append(a.divergences, *div)
		a.divGauge.Add(1 - a.divGauge.Value())
		a.flight.Recordf("health", "%s", div.String())
	} else if compared && sc.diverged == nil {
		// A verdict needs an actual comparison: a lone replica's report
		// proves nothing, so the scope stays unknown until a peer echoes
		// the same audit.
		sc.verdict = VerdictOK
	}
	a.refreshGaugesLocked()
	a.mu.Unlock()
}

// Progress records a replica's applied seq so the auditor can compute
// apply-lag (distance behind the most advanced replica of the scope) and
// notice replicas that stop making progress.
func (a *Auditor) Progress(scope, node string, applied uint32) {
	if a == nil {
		return
	}
	a.mu.Lock()
	sc := a.scope(scope)
	rep := sc.replica(node)
	rep.lastSeen = time.Now()
	if applied > rep.applied {
		rep.applied = applied
	}
	a.refreshGaugesLocked()
	a.mu.Unlock()
}

func (sc *scopeAudit) replica(node string) *replicaAudit {
	rep := sc.replicas[node]
	if rep == nil {
		rep = &replicaAudit{}
		sc.replicas[node] = rep
	}
	return rep
}

// compareDigests checks all reported digests for one audit against each
// other and, on mismatch, localizes the differing key-ranges (index -1 for
// the meta digest). Returns nil when all replicas agree.
func compareDigests(scope string, peers map[string]Digest) *Divergence {
	var ref Digest
	var refNode string
	first := true
	for node, d := range peers {
		if first || node < refNode {
			// Deterministic reference: the lexically-smallest node.
			ref, refNode, first = d, node, false
		}
	}
	var badNodes []string
	badRanges := make(map[int]bool)
	for node, d := range peers {
		if node == refNode || d.Sum == ref.Sum {
			continue
		}
		badNodes = append(badNodes, node)
		if d.Meta != ref.Meta {
			badRanges[-1] = true
		}
		n := len(d.Ranges)
		if len(ref.Ranges) < n {
			n = len(ref.Ranges)
		}
		for i := 0; i < n; i++ {
			if d.Ranges[i] != ref.Ranges[i] {
				badRanges[i] = true
			}
		}
		if len(d.Ranges) != len(ref.Ranges) {
			badRanges[-1] = true
		}
	}
	if len(badNodes) == 0 {
		return nil
	}
	badNodes = append(badNodes, refNode)
	sort.Strings(badNodes)
	ranges := make([]int, 0, len(badRanges))
	for i := range badRanges {
		ranges = append(ranges, i)
	}
	sort.Ints(ranges)
	return &Divergence{Scope: scope, ID: ref.ID, Seq: ref.Seq, Ranges: ranges, Nodes: badNodes}
}

func (a *Auditor) refreshGaugesLocked() {
	var maxLag int64
	var oldest time.Time
	for _, sc := range a.scopes {
		var top uint32
		for _, rep := range sc.replicas {
			if rep.applied > top {
				top = rep.applied
			}
		}
		for _, rep := range sc.replicas {
			if lag := int64(top) - int64(rep.applied); lag > maxLag {
				maxLag = lag
			}
		}
		if !sc.lastAt.IsZero() && (oldest.IsZero() || sc.lastAt.Before(oldest)) {
			oldest = sc.lastAt
		}
	}
	a.lagGauge.Add(maxLag - a.lagGauge.Value())
	var staleMS int64
	if !oldest.IsZero() {
		staleMS = time.Since(oldest).Milliseconds()
	}
	a.staleGauge.Add(staleMS - a.staleGauge.Value())
}

// ReplicaHealth is one replica's row in a scope's health snapshot.
type ReplicaHealth struct {
	Node    string
	Applied uint32
	Lag     uint32
	Stale   bool
}

// ScopeHealth is the health snapshot of one audited scope.
type ScopeHealth struct {
	Scope     string
	Verdict   string
	LastSeq   uint32
	LastAudit time.Time
	Replicas  []ReplicaHealth
	Diverged  *Divergence
}

// Snapshot returns per-scope health, sorted by scope name, restricted to
// scopes whose name starts with prefix ("" for all).
func (a *Auditor) Snapshot(prefix string) []ScopeHealth {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	now := time.Now()
	out := make([]ScopeHealth, 0, len(a.scopes))
	for name, sc := range a.scopes {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		sh := ScopeHealth{Scope: name, Verdict: sc.verdict, LastSeq: sc.lastSeq, LastAudit: sc.lastAt}
		if sc.diverged != nil {
			d := *sc.diverged
			sh.Diverged = &d
		}
		var top uint32
		for _, rep := range sc.replicas {
			if rep.applied > top {
				top = rep.applied
			}
		}
		for node, rep := range sc.replicas {
			sh.Replicas = append(sh.Replicas, ReplicaHealth{
				Node:    node,
				Applied: rep.applied,
				Lag:     top - rep.applied,
				Stale:   now.Sub(rep.lastSeen) > a.staleAfter,
			})
		}
		sort.Slice(sh.Replicas, func(i, j int) bool { return sh.Replicas[i].Node < sh.Replicas[j].Node })
		if sh.Verdict != VerdictDiverged {
			for _, rep := range sh.Replicas {
				if rep.Stale {
					sh.Verdict = VerdictDegraded
					break
				}
			}
		}
		out = append(out, sh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Scope < out[j].Scope })
	return out
}

// Rollup folds the matching scopes' verdicts into one: diverged beats
// degraded beats ok; no audited scope at all is "unknown".
func (a *Auditor) Rollup(prefix string) string {
	scopes := a.Snapshot(prefix)
	if len(scopes) == 0 {
		return VerdictUnknown
	}
	verdict := VerdictOK
	for _, sc := range scopes {
		switch sc.Verdict {
		case VerdictDiverged:
			return VerdictDiverged
		case VerdictDegraded:
			verdict = VerdictDegraded
		case VerdictUnknown:
			if verdict == VerdictOK {
				verdict = VerdictUnknown
			}
		}
	}
	return verdict
}

// Divergences returns every divergence recorded so far.
func (a *Auditor) Divergences() []Divergence {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Divergence(nil), a.divergences...)
}

// Forget drops all state for scopes matching prefix — used when a cluster is
// torn down but its hub lives on (selftest sweeps, benches).
func (a *Auditor) Forget(prefix string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	for name := range a.scopes {
		if strings.HasPrefix(name, prefix) {
			delete(a.scopes, name)
		}
	}
	a.refreshGaugesLocked()
	a.mu.Unlock()
}

// Summary renders the one-line rollup plus any divergence details — the
// HEALTH wire verb and the top of /health.
func (a *Auditor) Summary(prefix string) string {
	if a == nil {
		return "health: unknown (no auditor)\n"
	}
	scopes := a.Snapshot(prefix)
	var b strings.Builder
	fmt.Fprintf(&b, "health: %s (%d scopes audited)\n", a.Rollup(prefix), len(scopes))
	for _, sc := range scopes {
		if sc.Diverged != nil {
			fmt.Fprintf(&b, "  %s\n", sc.Diverged.String())
		}
	}
	return b.String()
}

// Format renders the live per-scope table — the TOP wire verb:
//
//	SCOPE                 VERDICT   SEQ     LAST-AUDIT  REPLICAS (node applied lag)
//	kv/amoeba-kv/0        ok        1234    118ms       node-0:1234+0 node-1:1230+4
func (a *Auditor) Format(prefix string) string {
	if a == nil {
		return "health: unknown (no auditor)\n"
	}
	scopes := a.Snapshot(prefix)
	if len(scopes) == 0 {
		return "health: no scopes audited\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-9s %-7s %-11s %s\n", "SCOPE", "VERDICT", "SEQ", "LAST-AUDIT", "REPLICAS (node applied lag)")
	for _, sc := range scopes {
		age := "never"
		if !sc.LastAudit.IsZero() {
			age = time.Since(sc.LastAudit).Round(time.Millisecond).String()
		}
		var reps []string
		for _, rep := range sc.Replicas {
			mark := ""
			if rep.Stale {
				mark = "!stale"
			}
			reps = append(reps, fmt.Sprintf("%s:%d+%d%s", rep.Node, rep.Applied, rep.Lag, mark))
		}
		fmt.Fprintf(&b, "%-22s %-9s %-7d %-11s %s\n", sc.Scope, sc.Verdict, sc.LastSeq, age, strings.Join(reps, " "))
	}
	return b.String()
}
