package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count: bucket i holds observations v with
// 2^(i-1) < v ≤ 2^i (bucket 0 holds 0 and 1). 63 buckets cover every
// uint64, so nanosecond latencies from 1ns to ~292 years land somewhere.
const histBuckets = 64

// Histogram is a fixed-bucket power-of-two histogram safe for concurrent
// writers: one atomic add on the hot path, no locks, no allocation. The
// zero-cost no-op sink is a nil *Histogram — every method nil-checks.
//
// Buckets are powers of two in nanoseconds, which makes quantiles exact to
// a factor of two — plenty for "where does a p99 Put spend its time" and
// cheap enough to leave compiled into the sequencer's ordering path.
type Histogram struct {
	name    string
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// NewHistogram returns a standalone histogram attached to no registry — for
// ad-hoc measurement (e.g. the kv load driver's per-op latencies).
func NewHistogram(name string) *Histogram { return &Histogram{name: name} }

// bucketOf maps a value to its bucket index: the position of the highest
// set bit, so bucket i spans (2^(i-1), 2^i].
func bucketOf(v uint64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(v - 1)
	if b >= histBuckets {
		b = histBuckets - 1 // v > 2^63: clamp into the last bucket
	}
	return b
}

// bucketUpper is the inclusive upper bound of bucket i.
func bucketUpper(i int) uint64 {
	if i >= 63 {
		return ^uint64(0)
	}
	return uint64(1) << uint(i)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil || d < 0 {
		return
	}
	h.ObserveValue(uint64(d))
}

// ObserveValue records one unitless value (queue depth, batch fill).
func (h *Histogram) ObserveValue(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// HistSnapshot is a point-in-time read of a histogram.
type HistSnapshot struct {
	Name  string
	Count uint64
	Sum   uint64
	Max   uint64
	// Buckets[i] counts observations in (2^(i-1), 2^i].
	Buckets [histBuckets]uint64
}

// Snapshot reads the histogram. Concurrent writers may tear count vs
// buckets by a few observations; quantiles are bucket-granular anyway.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Name: h.name, Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile returns the upper bound of the bucket containing quantile q
// (0 < q ≤ 1) — exact to a factor of two. Zero observations yield 0.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range s.Buckets {
		seen += c
		if seen >= rank {
			u := bucketUpper(i)
			if u > s.Max && s.Max > 0 {
				return s.Max // last bucket: the max is a tighter bound
			}
			return u
		}
	}
	return s.Max
}

// Mean is the arithmetic mean of all observations.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Gauge is a concurrent counter-style gauge (current value, not monotonic).
// Every writer applies deltas, never absolute sets, so several shard groups
// on one node can share a node-level gauge (total queue depth) without
// clobbering each other. A nil *Gauge is the no-op sink.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Add applies a delta.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
