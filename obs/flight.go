package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// flightStripes spreads concurrent recorders across locks; events carry a
// global sequence so a dump re-interleaves them in record order.
const flightStripes = 8

// FlightEvent is one recorded protocol event.
type FlightEvent struct {
	Seq   uint64 // global record order across stripes
	At    time.Time
	Scope string // who recorded it: "core/<group>", "wal", "kv/shard-3", …
	Event string
}

// Recorder is the flight recorder: a bounded, lock-striped ring buffer of
// recent protocol events (membership changes, expulsions, NAKs,
// retransmissions, migrate phases, WAL degradations). Writers pay one
// striped mutex and no allocation beyond the formatted string; the ring
// overwrites oldest-first, so a dump after a failure shows the last N
// events that led up to it. A nil *Recorder is the no-op sink.
type Recorder struct {
	seq     atomic.Uint64
	stripes [flightStripes]struct {
		mu   sync.Mutex
		ring []FlightEvent
		next int
		full bool
	}
	size int // per-stripe capacity
}

func newRecorder(size int) *Recorder {
	r := &Recorder{size: (size + flightStripes - 1) / flightStripes}
	if r.size < 8 {
		r.size = 8
	}
	return r
}

// Record appends one event.
func (r *Recorder) Record(scope, event string) {
	if r == nil {
		return
	}
	seq := r.seq.Add(1)
	s := &r.stripes[seq%flightStripes]
	ev := FlightEvent{Seq: seq, At: time.Now(), Scope: scope, Event: event}
	s.mu.Lock()
	if s.ring == nil {
		s.ring = make([]FlightEvent, r.size)
	}
	s.ring[s.next] = ev
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// Recordf is Record with formatting.
func (r *Recorder) Recordf(scope, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(scope, fmt.Sprintf(format, args...))
}

// Dump returns the retained events in record order.
func (r *Recorder) Dump() []FlightEvent {
	if r == nil {
		return nil
	}
	var out []FlightEvent
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		if s.full {
			out = append(out, s.ring[s.next:]...)
			out = append(out, s.ring[:s.next]...)
		} else {
			out = append(out, s.ring[:s.next]...)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Format renders a dump, one event per line.
func (r *Recorder) Format() string {
	evs := r.Dump()
	if len(evs) == 0 {
		return "flight recorder: empty\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder: last %d events\n", len(evs))
	t0 := evs[0].At
	for _, e := range evs {
		fmt.Fprintf(&b, "  #%-6d +%-10v %-16s %s\n", e.Seq, e.At.Sub(t0).Round(time.Microsecond), e.Scope, e.Event)
	}
	return b.String()
}

// failer is the slice of *testing.T the recorder needs — a local interface
// so obs does not import testing into production binaries.
type failer interface {
	Failed() bool
	Logf(format string, args ...any)
	Cleanup(func())
}

// DumpOnFailure arranges for the recorder's ring to be logged when the test
// fails, turning "it failed, rerun with prints" into a postmortem artifact.
// Call it once at test setup; safe on a nil recorder.
func (r *Recorder) DumpOnFailure(t failer) {
	if r == nil || t == nil {
		return
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("%s", r.Format())
		}
	})
}
