// Package obs is the unified observability layer: stage-latency histograms,
// cross-node operation tracing, and a flight recorder of recent protocol
// events, exported through one registry as Prometheus text or structured
// dumps.
//
// The paper's core contribution is measurement — Kaashoek & Tanenbaum
// evaluated the Amoeba group system by breaking protocol cost down per stage
// (request → sequencer → multicast → delivery) on real hardware. This
// package gives the reproduction the same per-stage decomposition as a live
// facility: every pipeline tier records its latencies into fixed-bucket
// histograms, sampled operations accumulate timestamped span events keyed by
// the command ids that already flow end-to-end, and a bounded ring of recent
// protocol events turns a failed churn test into a postmortem artifact.
//
// Everything is nil-safe: a nil *Hub (and every instrument vended by one) is
// the no-op sink, so instrumentation is compiled into the hot paths
// unconditionally and costs a nil check when observability is off.
package obs

// Hub is one node's observability root: a metric registry, an op tracer,
// and a flight recorder. A nil Hub is the no-op sink — every method is safe
// to call and vends nil instruments whose operations are no-ops.
type Hub struct {
	reg    *Registry
	tracer *Tracer
	flight *Recorder
	health *Auditor
}

// Options configures a Hub. Zero values are sensible.
type Options struct {
	// Node labels every exported metric and span with the owning node's
	// name.
	Node string
	// TraceMod samples operations whose id satisfies id % TraceMod == 0
	// (default 1024). Because the modulus is applied to the same id on
	// every node, all nodes sample the same operations without
	// coordination. 1 traces everything; use it only in tests.
	TraceMod uint64
	// TraceKeep bounds the number of retained traces (default 256,
	// oldest evicted first).
	TraceKeep int
	// FlightSize bounds the flight recorder's per-stripe event count
	// (default 256 events across 8 stripes).
	FlightSize int
}

// NewHub builds a live observability hub.
func NewHub(o Options) *Hub {
	if o.TraceMod == 0 {
		o.TraceMod = 1024
	}
	if o.TraceKeep <= 0 {
		o.TraceKeep = 256
	}
	if o.FlightSize <= 0 {
		o.FlightSize = 256
	}
	h := &Hub{
		reg:    newRegistry(o.Node),
		tracer: newTracer(o.Node, o.TraceMod, o.TraceKeep),
		flight: newRecorder(o.FlightSize),
	}
	h.health = newAuditor(h.reg, h.flight)
	return h
}

// Health returns the hub's state auditor (nil on a nil hub). Replicas of a
// scope report sequenced state digests and apply progress into it; it
// compares digests across replicas and maintains the health verdict.
func (h *Hub) Health() *Auditor {
	if h == nil {
		return nil
	}
	return h.health
}

// Registry returns the hub's metric registry (nil on a nil hub).
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// Tracer returns the hub's op tracer (nil on a nil hub).
func (h *Hub) Tracer() *Tracer {
	if h == nil {
		return nil
	}
	return h.tracer
}

// Flight returns the hub's flight recorder (nil on a nil hub).
func (h *Hub) Flight() *Recorder {
	if h == nil {
		return nil
	}
	return h.flight
}

// Histogram returns the named histogram, registering it on first use.
// Returns nil (the no-op histogram) on a nil hub.
func (h *Hub) Histogram(name string) *Histogram {
	if h == nil {
		return nil
	}
	return h.reg.histogram(name)
}

// Gauge returns the named gauge, registering it on first use. Returns nil
// (the no-op gauge) on a nil hub.
func (h *Hub) Gauge(name string) *Gauge {
	if h == nil {
		return nil
	}
	return h.reg.gauge(name)
}
