package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Sample is one exported counter value. Sources report their counters as
// samples; same-named samples from different sources (several shard groups'
// cores on one node) are summed at render time.
type Sample struct {
	Name  string
	Value uint64
}

// Registry holds one node's metric instruments and counter sources, and
// renders them all as Prometheus text. Histograms and gauges live in the
// registry (created on first use); counters stay where they already are —
// the existing per-package Stats structs — and are pulled through
// registered source functions, which is what unifies the eight ad-hoc
// Stats structs behind one consistently-named export without moving their
// storage.
type Registry struct {
	node string

	mu      sync.Mutex
	hists   map[string]*Histogram
	gauges  map[string]*Gauge
	sources map[int]func() []Sample
	nextSrc int
	// retired holds the final samples of unregistered sources, so counters
	// stay monotonic on the endpoint after the component behind them closes.
	retired map[string]uint64
}

func newRegistry(node string) *Registry {
	return &Registry{
		node:    node,
		hists:   make(map[string]*Histogram),
		gauges:  make(map[string]*Gauge),
		sources: make(map[int]func() []Sample),
		retired: make(map[string]uint64),
	}
}

func (r *Registry) histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

func (r *Registry) gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// RegisterSource adds a counter source: a function returning the current
// value of named counters, called at every render. Safe on a nil registry.
// The returned handle unregisters the source; components must call it when
// they close, or the registry's reference keeps them (and everything their
// closure reaches — replicas, histories, state machines) alive forever.
// Unregistering folds the source's final samples into a retained total, so
// exported counters never go backwards when a component closes.
func (r *Registry) RegisterSource(src func() []Sample) (unregister func()) {
	if r == nil || src == nil {
		return func() {}
	}
	r.mu.Lock()
	id := r.nextSrc
	r.nextSrc++
	r.sources[id] = src
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		if _, ok := r.sources[id]; ok {
			delete(r.sources, id)
			r.mu.Unlock()
			final := src() // outside the lock: sources may take component locks
			r.mu.Lock()
			for _, s := range final {
				r.retired[s.Name] += s.Value
			}
		}
		r.mu.Unlock()
	}
}

// Histograms snapshots every registered histogram, sorted by name.
func (r *Registry) Histograms() []HistSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hs := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hs = append(hs, h)
	}
	r.mu.Unlock()
	out := make([]HistSnapshot, 0, len(hs))
	for _, h := range hs {
		out = append(out, h.Snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counters sums every source's samples by name, sorted by name.
func (r *Registry) Counters() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	srcs := make([]func() []Sample, 0, len(r.sources))
	for _, src := range r.sources {
		srcs = append(srcs, src)
	}
	sums := make(map[string]uint64, len(r.retired))
	for name, v := range r.retired {
		sums[name] = v
	}
	r.mu.Unlock()
	for _, src := range srcs {
		for _, s := range src() {
			sums[s.Name] += s.Value
		}
	}
	out := make([]Sample, 0, len(sums))
	for name, v := range sums {
		out = append(out, Sample{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Gauges snapshots every registered gauge, sorted by name.
func (r *Registry) Gauges() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	gs := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gs = append(gs, g)
	}
	r.mu.Unlock()
	out := make([]Sample, 0, len(gs))
	for _, g := range gs {
		v := g.Value()
		if v < 0 {
			v = 0 // close-time decrements can transiently undershoot
		}
		out = append(out, Sample{Name: g.name, Value: uint64(v)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// quantiles exported per histogram, matching the paper's percentile tables.
var exportQuantiles = []float64{0.50, 0.90, 0.99}

// WritePrometheus renders the registry in Prometheus text exposition
// format: counters and gauges as untyped samples, histograms as summaries
// with quantile labels plus _count/_sum/_max series. Every series carries a
// node label. Safe on a nil registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	label := func(extra string) string {
		parts := make([]string, 0, 2)
		if r.node != "" {
			parts = append(parts, fmt.Sprintf("node=%q", r.node))
		}
		if extra != "" {
			parts = append(parts, extra)
		}
		if len(parts) == 0 {
			return ""
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
	for _, s := range r.Counters() {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", s.Name, s.Name, label(""), s.Value); err != nil {
			return err
		}
	}
	for _, s := range r.Gauges() {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %d\n", s.Name, s.Name, label(""), s.Value); err != nil {
			return err
		}
	}
	for _, h := range r.Histograms() {
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", h.Name); err != nil {
			return err
		}
		for _, q := range exportQuantiles {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", h.Name, label(fmt.Sprintf("quantile=%q", fmt.Sprintf("%g", q))), h.Quantile(q)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n%s_sum%s %d\n%s_max%s %d\n",
			h.Name, label(""), h.Count, h.Name, label(""), h.Sum, h.Name, label(""), h.Max); err != nil {
			return err
		}
	}
	return nil
}

// StageQuantiles is the compact per-stage latency summary benches commit:
// p50/p90/p99/max (bucket upper bounds, ns) plus the observation count.
type StageQuantiles struct {
	Stage string  `json:"stage"`
	Count uint64  `json:"count"`
	P50   uint64  `json:"p50_ns"`
	P90   uint64  `json:"p90_ns"`
	P99   uint64  `json:"p99_ns"`
	Max   uint64  `json:"max_ns"`
	Mean  float64 `json:"mean_ns"`
}

// StageSummary summarises every non-empty histogram for a bench report.
func (r *Registry) StageSummary() []StageQuantiles {
	var out []StageQuantiles
	for _, h := range r.Histograms() {
		if h.Count == 0 {
			continue
		}
		out = append(out, StageQuantiles{
			Stage: h.Name, Count: h.Count,
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
			Max: h.Max, Mean: h.Mean(),
		})
	}
	return out
}
