package obs

import (
	"strings"
	"testing"
	"time"
)

func digestWith(id uint64, seq uint32, ranges []uint64, meta uint64) Digest {
	d := Digest{ID: id, Seq: seq, Ranges: ranges, Meta: meta}
	sum := uint64(fnvTestOffset)
	for _, r := range ranges {
		sum = sum*31 + r
	}
	d.Sum = sum*31 + meta
	return d
}

const fnvTestOffset = 1469598103934665603

func TestAuditorAgreementIsOK(t *testing.T) {
	h := NewHub(Options{Node: "test"})
	a := h.Health()
	d := digestWith(100, 7, []uint64{1, 2, 3}, 42)
	a.Report("kv/s/0", "node-0", d)
	if got := a.Rollup("kv/s/"); got != VerdictUnknown {
		t.Fatalf("verdict with one report = %q, want unknown (nothing to compare)", got)
	}
	a.Report("kv/s/0", "node-1", d)
	a.Report("kv/s/0", "node-2", d)
	if got := a.Rollup("kv/s/"); got != VerdictOK {
		t.Fatalf("verdict = %q, want ok", got)
	}
	if len(a.Divergences()) != 0 {
		t.Fatalf("divergences on agreement: %v", a.Divergences())
	}
	snaps := a.Snapshot("kv/s/")
	if len(snaps) != 1 || snaps[0].LastSeq != 7 || len(snaps[0].Replicas) != 3 {
		t.Fatalf("snapshot %+v, want one scope @seq 7 with 3 replicas", snaps)
	}
}

func TestAuditorLocalizesDivergence(t *testing.T) {
	h := NewHub(Options{Node: "test"})
	a := h.Health()
	h.Flight().Record("kv/s/1", "some earlier protocol event")

	good := digestWith(200, 31, []uint64{10, 20, 30, 40}, 5)
	bad := good
	bad.Ranges = append([]uint64(nil), good.Ranges...)
	bad.Ranges[2] ^= 0xff // corrupt key-range 2 on one replica
	bad.Sum ^= 1

	a.Report("kv/s/1", "node-0", good)
	a.Report("kv/s/1", "node-1", bad)
	if got := a.Rollup("kv/s/"); got != VerdictDiverged {
		t.Fatalf("verdict = %q, want diverged", got)
	}
	divs := a.Divergences()
	if len(divs) != 1 {
		t.Fatalf("%d divergences, want 1", len(divs))
	}
	div := divs[0]
	if div.Scope != "kv/s/1" || div.ID != 200 || div.Seq != 31 {
		t.Fatalf("divergence %+v, want scope kv/s/1 id 200 seq 31", div)
	}
	if len(div.Ranges) != 1 || div.Ranges[0] != 2 {
		t.Fatalf("localized ranges %v, want [2]", div.Ranges)
	}
	if len(div.Nodes) != 2 {
		t.Fatalf("nodes %v, want both replicas named", div.Nodes)
	}
	if !strings.Contains(div.FlightDump, "some earlier protocol event") {
		t.Fatal("divergence did not capture the flight recorder")
	}

	// The verdict is sticky: a later clean audit does not clear it — the
	// state diverged at some seq and only an operator (Forget) resets it.
	clean := digestWith(201, 33, []uint64{1, 1, 1, 1}, 9)
	a.Report("kv/s/1", "node-0", clean)
	a.Report("kv/s/1", "node-1", clean)
	if got := a.Rollup("kv/s/"); got != VerdictDiverged {
		t.Fatalf("verdict after clean audit = %q, want still diverged", got)
	}
	a.Forget("kv/s/")
	if got := a.Rollup("kv/s/"); got != VerdictUnknown {
		t.Fatalf("verdict after Forget = %q, want unknown", got)
	}
}

func TestAuditorMetaMismatchMarksMinusOne(t *testing.T) {
	h := NewHub(Options{Node: "test"})
	a := h.Health()
	good := digestWith(300, 5, []uint64{7, 7}, 100)
	bad := good
	bad.Meta = 101
	bad.Sum ^= 2
	a.Report("kv/m/0", "node-0", good)
	a.Report("kv/m/0", "node-1", bad)
	divs := a.Divergences()
	if len(divs) != 1 || len(divs[0].Ranges) != 1 || divs[0].Ranges[0] != -1 {
		t.Fatalf("divergence %+v, want meta marker [-1]", divs)
	}
}

func TestAuditorStaleReplicaDegrades(t *testing.T) {
	h := NewHub(Options{Node: "test"})
	a := h.Health()
	a.SetStaleAfter(5 * time.Millisecond)
	d := digestWith(400, 9, []uint64{1}, 2)
	a.Report("kv/d/0", "node-0", d)
	a.Report("kv/d/0", "node-1", d)
	if got := a.Rollup("kv/d/"); got != VerdictOK {
		t.Fatalf("verdict = %q, want ok before staleness", got)
	}
	time.Sleep(15 * time.Millisecond)
	a.Progress("kv/d/0", "node-0", 12) // node-1 stays silent past staleAfter
	if got := a.Rollup("kv/d/"); got != VerdictDegraded {
		t.Fatalf("verdict = %q, want degraded (node-1 stale)", got)
	}
	snaps := a.Snapshot("kv/d/")
	staleSeen := false
	for _, rep := range snaps[0].Replicas {
		if rep.Node == "node-1" && rep.Stale {
			staleSeen = true
		}
	}
	if !staleSeen {
		t.Fatalf("snapshot %+v does not mark node-1 stale", snaps)
	}
	// The silent replica reporting again recovers the verdict.
	a.Progress("kv/d/0", "node-1", 12)
	if got := a.Rollup("kv/d/"); got != VerdictOK {
		t.Fatalf("verdict = %q, want ok after recovery", got)
	}
}

func TestAuditorPrefixIsolation(t *testing.T) {
	h := NewHub(Options{Node: "test"})
	a := h.Health()
	good := digestWith(500, 3, []uint64{1}, 1)
	bad := good
	bad.Meta, bad.Sum = 9, good.Sum^4
	a.Report("kv/alpha/0", "node-0", good)
	a.Report("kv/alpha/0", "node-1", bad)
	a.Report("kv/beta/0", "node-0", good)
	a.Report("kv/beta/0", "node-1", good)
	if got := a.Rollup("kv/alpha/"); got != VerdictDiverged {
		t.Fatalf("alpha verdict = %q, want diverged", got)
	}
	if got := a.Rollup("kv/beta/"); got != VerdictOK {
		t.Fatalf("beta verdict = %q, want ok (isolated from alpha)", got)
	}
	if got := a.Rollup(""); got != VerdictDiverged {
		t.Fatalf("global rollup = %q, want diverged", got)
	}
	if sum := a.Summary("kv/beta/"); strings.Contains(sum, "alpha") {
		t.Fatalf("beta summary leaks alpha divergence: %q", sum)
	}
}

func TestAuditorApplyLagGauge(t *testing.T) {
	h := NewHub(Options{Node: "test"})
	a := h.Health()
	a.Progress("kv/l/0", "node-0", 100)
	a.Progress("kv/l/0", "node-1", 60)
	var lag uint64
	for _, g := range h.Registry().Gauges() {
		if g.Name == "amoeba_health_apply_lag" {
			lag = g.Value
		}
	}
	if lag != 40 {
		t.Fatalf("apply-lag gauge = %d, want 40", lag)
	}
	a.Progress("kv/l/0", "node-1", 100)
	for _, g := range h.Registry().Gauges() {
		if g.Name == "amoeba_health_apply_lag" && g.Value != 0 {
			t.Fatalf("apply-lag gauge = %d after catch-up, want 0", g.Value)
		}
	}
}

func TestAuditorNilSafe(t *testing.T) {
	var a *Auditor
	a.Report("s", "n", Digest{ID: 1})
	a.Progress("s", "n", 1)
	a.SetStaleAfter(time.Second)
	a.Forget("")
	if a.Rollup("") != VerdictUnknown {
		t.Fatal("nil auditor rollup not unknown")
	}
	if a.Snapshot("") != nil || a.Divergences() != nil {
		t.Fatal("nil auditor returned data")
	}
	if a.Summary("") == "" || a.Format("") == "" {
		t.Fatal("nil auditor summary/format empty")
	}
	var h *Hub
	if h.Health() != nil {
		t.Fatal("nil hub vended a non-nil auditor")
	}
}
