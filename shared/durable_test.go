package shared

import (
	"context"
	"encoding/binary"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"amoeba"
)

// counter is the durable tests' state machine: every command increments it,
// so the recovered value counts exactly the commands that survived.
type counter struct {
	value int
}

func newCounter() *counter { return &counter{} }

func (c *counter) Apply([]byte) { c.value++ }

func (c *counter) Snapshot() ([]byte, error) {
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, uint64(c.value))
	return out, nil
}

func (c *counter) Restore(snap []byte) error {
	if len(snap) < 8 {
		return fmt.Errorf("short counter snapshot")
	}
	c.value = int(binary.BigEndian.Uint64(snap))
	return nil
}

func openT(t *testing.T, k *amoeba.Kernel, name string, dur Durability) *Replica {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	r, err := Open(ctx, k, name, newCounter(), amoeba.GroupOptions{}, dur)
	if err != nil {
		t.Fatalf("Open rank %d: %v", dur.Rank, err)
	}
	return r
}

// submitAndSettle pushes n increments through r and waits for them locally.
func submitAndSettle(t *testing.T, r *Replica, n int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var before int
	r.Read(func(sm StateMachine) { before = sm.(*counter).value })
	for i := 0; i < n; i++ {
		if err := r.Submit(ctx, []byte{1}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if err := r.Wait(ctx, func(sm StateMachine) bool {
		return sm.(*counter).value >= before+n
	}); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func counterValue(r *Replica) int {
	var v int
	r.Read(func(sm StateMachine) { v = sm.(*counter).value })
	return v
}

// TestDurableSoloRestart: one durable replica, killed and cold-restarted —
// state must come back from the log with no other member to transfer from.
func TestDurableSoloRestart(t *testing.T) {
	dir := t.TempDir()
	dur := Durability{Dir: filepath.Join(dir, "r0"), Peers: 1, Bootstrap: true}

	net := amoeba.NewMemoryNetwork()
	k, err := net.NewKernel("solo")
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	r := openT(t, k, "durable-solo", dur)
	submitAndSettle(t, r, 25)
	applied := r.Applied()
	st := r.DurabilityStats()
	if !st.Enabled || st.Log.Entries != 25 {
		t.Fatalf("durability stats = %+v, want 25 journaled entries", st)
	}
	r.Close() // crash: no leave, no goodbye
	net.Close()

	// Cold restart on a fresh network: nothing to join, only the log.
	net2 := amoeba.NewMemoryNetwork()
	defer net2.Close()
	k2, err := net2.NewKernel("solo-reborn")
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	r2 := openT(t, k2, "durable-solo", dur)
	defer r2.Close()
	if got := counterValue(r2); got != 25 {
		t.Fatalf("recovered counter = %d, want 25", got)
	}
	// The reformed sequence space continues past the recovered history.
	if r2.Applied() < applied {
		t.Fatalf("recovered Applied = %d, want >= %d", r2.Applied(), applied)
	}
	// And the replica still works.
	submitAndSettle(t, r2, 5)
	if got := counterValue(r2); got != 30 {
		t.Fatalf("counter after restart writes = %d, want 30", got)
	}
}

// TestDurableColdStartHighestSeqWins: a whole-cluster restart where the
// members' logs end at different points. The member with the longest log
// must win the election and re-create the group; the shorter one must join
// and state-transfer up to the longer history.
func TestDurableColdStartHighestSeqWins(t *testing.T) {
	dir := t.TempDir()
	durs := []Durability{
		{Dir: filepath.Join(dir, "r0"), Rank: 0, Peers: 2, Bootstrap: true},
		{Dir: filepath.Join(dir, "r1"), Rank: 1, Peers: 2, Bootstrap: true},
	}

	net := amoeba.NewMemoryNetwork()
	k0, _ := net.NewKernel("n0")
	k1, _ := net.NewKernel("n1")
	r0 := openT(t, k0, "durable-pair", durs[0])
	joined := make(chan *Replica, 1)
	go func() { joined <- openT(t, k1, "durable-pair", durs[1]) }()
	r1 := <-joined
	submitAndSettle(t, r0, 10)
	waitCount(t, r1, 10)

	// Crash rank 1 first, then write more so rank 0's log runs ahead.
	r1.Close()
	submitAndSettle(t, r0, 7) // rank 0 now at 17, rank 1's log stops at 10
	r0.Close()
	net.Close()

	// Cold restart both on a fresh network, concurrently, rank 1 first so
	// the election genuinely has to prefer the longer log over arrival
	// order and tie-break preference (Preferred defaults to rank 0 — which
	// must STILL lose to rank 0's higher seq... so flip preference to rank
	// 1 to prove seq beats preference).
	durs[0].Preferred, durs[1].Preferred = 1, 1
	net2 := amoeba.NewMemoryNetwork()
	defer net2.Close()
	k0b, _ := net2.NewKernel("n0-reborn")
	k1b, _ := net2.NewKernel("n1-reborn")
	res := make(chan *Replica, 2)
	go func() { res <- openT(t, k1b, "durable-pair", durs[1]) }()
	go func() { res <- openT(t, k0b, "durable-pair", durs[0]) }()
	ra, rb := <-res, <-res
	defer ra.Close()
	defer rb.Close()

	for _, r := range []*Replica{ra, rb} {
		if got := counterValue(r); got != 17 {
			t.Fatalf("recovered counter = %d, want 17 (the longer log)", got)
		}
	}
	// The longer log's owner must be the sequencer of the reformed group.
	var seqOwner *Replica
	for _, r := range []*Replica{ra, rb} {
		if r.Info().IsSequencer {
			seqOwner = r
		}
	}
	if seqOwner == nil {
		t.Fatal("no replica sequences the reformed group")
	}
	if got := seqOwner.DurabilityStats(); got.LastSeq == 0 {
		t.Fatalf("sequencer has no durable history: %+v", got)
	}
	// Identify by kernel: rank 0 ran on k0b. The sequencer must be rank 0
	// (recovered seq 17 beats rank 1's 10 despite rank 1 being preferred).
	if seqOwner.kernel != k0b {
		t.Fatal("election winner is not the member with the longest log")
	}
	// The pair still replicates.
	submitAndSettle(t, seqOwner, 3)
	for _, r := range []*Replica{ra, rb} {
		waitCount(t, r, 20)
	}
}

// TestDurableRejoinLiveGroup: a durable replica crashes while the group
// survives; on reopen it must join the live group and reset its log to the
// transferred snapshot — the authoritative state — rather than replaying a
// dead timeline.
func TestDurableRejoinLiveGroup(t *testing.T) {
	dir := t.TempDir()
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	k0, _ := net.NewKernel("n0")
	k1, _ := net.NewKernel("n1")

	dur0 := Durability{Dir: filepath.Join(dir, "r0"), Rank: 0, Peers: 2, Bootstrap: true}
	dur1 := Durability{Dir: filepath.Join(dir, "r1"), Rank: 1, Peers: 2, Bootstrap: true}
	r0 := openT(t, k0, "durable-rejoin", dur0)
	defer r0.Close()
	res := make(chan *Replica, 1)
	go func() { res <- openT(t, k1, "durable-rejoin", dur1) }()
	r1 := <-res
	submitAndSettle(t, r0, 8)
	waitCount(t, r1, 8)

	r1.Close() // crash one member; the group lives on
	submitAndSettle(t, r0, 4)

	k1b, _ := net.NewKernel("n1-reborn")
	r1b := openT(t, k1b, "durable-rejoin", dur1)
	defer r1b.Close()
	if got := counterValue(r1b); got != 12 {
		t.Fatalf("rejoined counter = %d, want 12", got)
	}
	st := r1b.DurabilityStats()
	if !st.Enabled || st.CheckpointSeq == 0 {
		t.Fatalf("rejoin did not reset the log to the transfer point: %+v", st)
	}
	// New traffic is journaled on the new timeline.
	submitAndSettle(t, r0, 2)
	waitCount(t, r1b, 14)
	if got := r1b.DurabilityStats(); got.Log.Entries == 0 {
		t.Fatalf("no entries journaled after rejoin: %+v", got)
	}
}

// TestDurableCheckpointBoundsReplay: checkpoints must be written at the
// configured cadence and recovery must restore through them.
func TestDurableCheckpointCadence(t *testing.T) {
	dir := t.TempDir()
	dur := Durability{Dir: filepath.Join(dir, "r0"), Peers: 1, Bootstrap: true, CheckpointEvery: 10}

	net := amoeba.NewMemoryNetwork()
	k, _ := net.NewKernel("ckpt")
	r := openT(t, k, "durable-ckpt", dur)
	submitAndSettle(t, r, 35)
	st := r.DurabilityStats()
	// Bursty delivery coalesces cadence boundaries, but 35 entries at
	// cadence 10 must checkpoint at least twice.
	if st.Log.Checkpoints < 2 {
		t.Fatalf("checkpoints = %d after 35 entries at cadence 10, want >= 2", st.Log.Checkpoints)
	}
	if st.CheckpointSeq == 0 {
		t.Fatalf("no checkpoint seq recorded: %+v", st)
	}
	r.Close()
	net.Close()

	net2 := amoeba.NewMemoryNetwork()
	defer net2.Close()
	k2, _ := net2.NewKernel("ckpt-reborn")
	r2 := openT(t, k2, "durable-ckpt", dur)
	defer r2.Close()
	if got := counterValue(r2); got != 35 {
		t.Fatalf("recovered counter = %d, want 35", got)
	}
	// Replay was bounded: only the suffix past the newest checkpoint, not
	// the whole history.
	if st2 := r2.DurabilityStats(); st2.Log.RecoveredEntries >= 35 {
		t.Fatalf("replayed %d entries despite checkpoints", st2.Log.RecoveredEntries)
	}
}

func waitCount(t *testing.T, r *Replica, want int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Wait(ctx, func(sm StateMachine) bool {
		return sm.(*counter).value >= want
	}); err != nil {
		t.Fatalf("waiting for value %d (have %d): %v", want, counterValue(r), err)
	}
}

// assertNoCrossTalk guards the beacon namespace: two groups' beacons must
// not collide.
func TestBeaconAddressesDistinct(t *testing.T) {
	a := beaconAddr("g1", 0)
	b := beaconAddr("g2", 0)
	c := beaconAddr("g1", 1)
	if a == b || a == c || b == c {
		t.Fatalf("beacon addresses collide: %v %v %v", a, b, c)
	}
	_ = fmt.Sprintf("%v", a)
}
