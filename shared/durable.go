// Durable replicas: a write-ahead log under the replicated state machine,
// and a cold-start path that reforms a group from the surviving logs.
//
// A Replica opened with a Durability config journals every delivered command
// (see wal) and checkpoints snapshots, so its state survives the failure the
// group protocol cannot mask: every member going down at once. On restart,
// Open rebuilds the local state from the log, then picks one of two paths —
//
//   - the group is still running (other members survived): join it with
//     atomic state transfer, exactly as a fresh joiner would. The transfer
//     is authoritative; the log is reset to the transferred snapshot.
//   - the group is gone (whole-cluster restart): the restarting members
//     elect the one whose log recovered the highest sequence number — ties
//     broken toward a preferred rank — and that member re-creates the group
//     with its sequence space seeded past the recovered history
//     (GroupOptions.FirstSeq); the rest join it and state-transfer as today.
//
// The election runs over a per-member recovery beacon: a tiny RPC service at
// a well-known address derived from (group, rank) answering "I recovered up
// to seq S" — or "the group exists, join it" once its owner is a member.
// Like group creation itself (paper §5), the election is not atomic: a
// candidate that boots long after the survivors decided simply finds the
// reformed group and joins it. The election can only weigh the logs of
// members that are up: a longer log that boots after the group reformed
// joins like anyone else, and the suffix it held beyond the transfer point
// is discarded (observable as wal.Stats.ResetDiscarded in
// DurabilityStats) — the price of recovering availability without waiting
// for every last member.
package shared

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"amoeba"
	"amoeba/wal"
)

// Durability configures a replica's write-ahead log and its place in the
// cold-start election. Dir is required; the zero values of everything else
// are sensible.
type Durability struct {
	// Dir is the replica's private log directory. Required; two replicas
	// must never share one.
	Dir string
	// SegmentSize is the log's segment rotation size (default 1 MiB).
	SegmentSize int
	// CheckpointEvery is the number of journaled entries between snapshot
	// checkpoints (default 1024). Smaller values bound replay time,
	// larger ones amortise Snapshot cost.
	CheckpointEvery int
	// Sync fsyncs every journal append record, extending the journal's
	// durability from process crashes to power loss, at a throughput
	// cost (see the amoeba-bench "durable" experiment). Replicas journal
	// at apply time, so this covers everything the replica has applied;
	// see the wal package's durability contract for the bound.
	Sync bool
	// SyncDelay, with Sync, coalesces fsyncs across delivery bursts: an
	// append marks the log dirty and the fsync runs at most this long
	// after it, so a slow disk pays one rotation for many group commits.
	// The power-loss window widens by at most SyncDelay; zero syncs every
	// append record (see wal.Options.SyncDelay).
	SyncDelay time.Duration
	// FaultHook, when non-nil, is passed to the log so tests and the fuzz
	// harness can inject disk-full and torn-tail failures mid-run (see
	// wal.Options.FaultHook). Nil injects nothing.
	FaultHook wal.FaultHook

	// Rank is this replica's slot among the group's durable hosts, in
	// [0, Peers); it names the replica's recovery beacon.
	Rank int
	// Peers is the number of durable hosts (and beacons) of this group.
	// 0 or 1 means the replica recovers alone: no election, just
	// join-else-create.
	Peers int
	// Preferred is the rank that wins cold-start ties (equal recovered
	// seqs — including a fresh cluster, where everyone recovered 0). Use
	// it to spread reformed sequencers across nodes, as kv does.
	Preferred int
	// Bootstrap declares a brand-new deployment: a replica whose log is
	// virgin (never recorded anything) creates the group immediately when
	// Rank == Preferred instead of probing for survivors first, making a
	// first boot as fast as the non-durable path. A log that has recorded
	// anything ignores the flag — a restart is never a bootstrap.
	Bootstrap bool
}

func (d Durability) withDefaults() Durability {
	if d.CheckpointEvery <= 0 {
		d.CheckpointEvery = 1024
	}
	return d
}

// electionPollTimeout bounds one beacon probe; electionWins is how many
// consecutive winning rounds a candidate needs before re-creating the group
// (two, so a beacon that comes up between rounds gets a vote).
const (
	electionPollTimeout = 250 * time.Millisecond
	electionWins        = 2
)

// beaconAddr is the well-known address of a durable replica's recovery
// beacon.
func beaconAddr(group string, rank int) amoeba.Addr {
	return amoeba.AddrForName(fmt.Sprintf("wal-beacon/%s/%d", group, rank))
}

// Beacon wire format: state(1) | recovered seq(4).
const (
	beaconCandidate byte = 0
	beaconMember    byte = 1
)

// beacon serves a replica's recovery state to its peers' elections.
type beacon struct {
	srv *amoeba.RPCServer
	// word packs state<<32 | seq, updated as the owner's recovery
	// progresses.
	word atomic.Uint64
}

func startBeacon(k *amoeba.Kernel, group string, rank int, seq uint32) (*beacon, error) {
	b := &beacon{}
	b.word.Store(uint64(seq))
	srv, err := k.NewRPCServer(beaconAddr(group, rank), func([]byte) ([]byte, amoeba.Addr) {
		w := b.word.Load()
		out := make([]byte, 5)
		out[0] = byte(w >> 32)
		binary.BigEndian.PutUint32(out[1:], uint32(w))
		return out, 0
	})
	if err != nil {
		return nil, fmt.Errorf("shared: starting recovery beacon: %w", err)
	}
	b.srv = srv
	return b, nil
}

func (b *beacon) setMember() {
	b.word.Store(uint64(beaconMember)<<32 | uint64(uint32(b.word.Load())))
}

func (b *beacon) Close() { b.srv.Close() }

// betterCandidate reports whether candidate a (seq, rank) beats b in the
// cold-start election: higher recovered seq wins — no surviving log may be
// discarded in favour of a shorter one — and ties go to the rank closest
// (cyclically) to the preferred creator.
func betterCandidate(aSeq uint32, aRank int, bSeq uint32, bRank int, preferred, peers int) bool {
	if aSeq != bSeq {
		return aSeq > bSeq
	}
	if peers <= 0 {
		peers = 1
	}
	da := (aRank - preferred%peers + peers) % peers
	db := (bRank - preferred%peers + peers) % peers
	return da < db
}

// pollPeers probes every other rank's beacon once, in parallel, and reports
// the best candidate seen (starting from self) and whether any peer already
// reached membership — in which case the group exists and the caller must
// join, not create.
func pollPeers(ctx context.Context, cl *amoeba.RPCClient, group string, dur Durability, selfSeq uint32) (bestSeq uint32, bestRank int, memberSeen bool) {
	bestSeq, bestRank = selfSeq, dur.Rank
	type answer struct {
		rank  int
		seq   uint32
		state byte
	}
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		ans []answer
	)
	for rank := 0; rank < dur.Peers; rank++ {
		if rank == dur.Rank {
			continue
		}
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			callCtx, cancel := context.WithTimeout(ctx, electionPollTimeout)
			defer cancel()
			reply, err := cl.Call(callCtx, beaconAddr(group, rank), nil)
			if err != nil || len(reply) < 5 {
				return // peer still down (or not a durable host): no vote
			}
			mu.Lock()
			ans = append(ans, answer{rank: rank, seq: binary.BigEndian.Uint32(reply[1:]), state: reply[0]})
			mu.Unlock()
		}()
	}
	wg.Wait()
	for _, a := range ans {
		if a.state == beaconMember {
			memberSeen = true
		}
		if betterCandidate(a.seq, a.rank, bestSeq, bestRank, dur.Preferred, dur.Peers) {
			bestSeq, bestRank = a.seq, a.rank
		}
	}
	return bestSeq, bestRank, memberSeen
}

// Open starts a durable replica: the state machine is rebuilt from the
// write-ahead log in dur.Dir (newest checkpoint plus the journal suffix),
// and the replica then joins its group — or, when the whole group is gone,
// takes part in the cold-start election and either re-creates the group from
// its recovered history or joins whoever did. When Open returns, sm is
// current with the group's total order and every subsequent delivery is
// journaled. ctx bounds the whole recovery, including waiting out peers that
// are still rebooting.
func Open(ctx context.Context, k *amoeba.Kernel, name string, sm StateMachine, opts amoeba.GroupOptions, dur Durability) (*Replica, error) {
	if dur.Dir == "" {
		return nil, errors.New("shared: Durability.Dir is required")
	}
	dur = dur.withDefaults()
	log, err := wal.Open(dur.Dir, wal.Options{SegmentSize: dur.SegmentSize, Sync: dur.Sync, SyncDelay: dur.SyncDelay, Obs: opts.Obs, FaultHook: dur.FaultHook})
	if err != nil {
		return nil, fmt.Errorf("shared: opening log for %q: %w", name, err)
	}
	// A state machine that can digest itself gets verified recovery: each
	// restored checkpoint's digest is recomputed and compared against the
	// stamp, and a checkpoint that does not round-trip is refused in favour
	// of an older one plus a longer replay.
	var verify func(seq uint32, digest uint64) bool
	if dg, ok := sm.(Digester); ok {
		verify = func(seq uint32, digest uint64) bool { return dg.StateDigest() == digest }
	}
	recovered, err := log.RecoverVerified(
		func(snap []byte, seq uint32) error { return sm.Restore(snap) },
		func(e wal.Entry) error { sm.Apply(e.Payload); return nil },
		verify,
	)
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("shared: recovering %q from %s: %w", name, dur.Dir, err)
	}

	// Declared bootstrap of a never-used log: the preferred rank creates
	// immediately; everyone else falls through to the join loop.
	if dur.Bootstrap && log.Virgin() && dur.Rank == dur.Preferred%max(dur.Peers, 1) {
		r, err := createSeeded(ctx, k, name, sm, opts, log, dur, recovered)
		if err != nil {
			return nil, err
		}
		if b, berr := startBeacon(k, name, dur.Rank, recovered); berr == nil {
			b.setMember()
			r.beacon = b
		}
		return r, nil
	}

	beacon, err := startBeacon(k, name, dur.Rank, recovered)
	if err != nil {
		log.Close()
		return nil, err
	}
	cl, err := k.NewRPCClient()
	if err != nil {
		beacon.Close()
		log.Close()
		return nil, fmt.Errorf("shared: election client: %w", err)
	}
	defer cl.Close()
	fail := func(err error) (*Replica, error) {
		beacon.Close()
		log.Close()
		return nil, err
	}

	wins := 0
	for {
		r, err := joinWithLog(ctx, k, name, sm, opts, log, dur)
		if err == nil {
			beacon.setMember()
			r.beacon = beacon
			return r, nil
		}
		if ctx.Err() != nil {
			return fail(err)
		}
		switch {
		case errors.Is(err, amoeba.ErrNoGroup):
			if dur.Peers <= 1 {
				// Recovering alone: nothing to elect against.
				r, err := createSeeded(ctx, k, name, sm, opts, log, dur, recovered)
				if err != nil {
					return fail(err)
				}
				beacon.setMember()
				r.beacon = beacon
				return r, nil
			}
			if dur.Bootstrap && log.Virgin() {
				// Fresh log in a declared bootstrap: the preferred rank
				// is creating; just keep trying to join it.
				wins = 0
				continue
			}
			_, bestRank, memberSeen := pollPeers(ctx, cl, name, dur, recovered)
			if memberSeen || bestRank != dur.Rank {
				// Someone else reformed the group, or holds (or ties
				// ahead with) a longer log and will: go back to joining.
				wins = 0
				continue
			}
			wins++
			if wins < electionWins {
				continue // one more join round, in case a peer is racing up
			}
			r, err := createSeeded(ctx, k, name, sm, opts, log, dur, recovered)
			if err != nil {
				return fail(err)
			}
			beacon.setMember()
			r.beacon = beacon
			return r, nil
		case errors.Is(err, ErrTransferFailed), errors.Is(err, amoeba.ErrNotMember):
			// The group is there but mid-churn; retry the join.
			wins = 0
		default:
			return fail(err)
		}
	}
}

// createSeeded re-creates (or first-creates) the group from this replica's
// recovered history: the new sequence space starts past everything the log
// knows, and a checkpoint of the recovered state marks the log non-virgin
// and bounds the next recovery's replay.
func createSeeded(ctx context.Context, k *amoeba.Kernel, name string, sm StateMachine, opts amoeba.GroupOptions, log *wal.Log, dur Durability, recovered uint32) (*Replica, error) {
	opts.FirstSeq = recovered
	g, err := k.CreateGroup(ctx, name, opts)
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("shared: re-creating %q: %w", name, err)
	}
	r := newReplica(k, g, name, sm, opts.Obs)
	r.lastApplied = recovered
	r.log = log
	r.dur = dur
	r.durable = true
	snap, err := sm.Snapshot()
	if err == nil {
		var digest uint64
		if r.digester != nil {
			digest = r.digester.StateDigest()
		}
		err = log.CheckpointDigest(recovered, digest, snap)
	}
	if err != nil {
		g.Close()
		log.Close()
		return nil, fmt.Errorf("shared: checkpointing recovered state of %q: %w", name, err)
	}
	if err := r.serveTransfers(); err != nil {
		g.Close()
		log.Close()
		return nil, err
	}
	r.start()
	return r, nil
}
