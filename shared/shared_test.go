package shared

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"amoeba"
)

// kvSM is a simple replicated map used by the tests.
type kvSM struct {
	M map[string]string
}

func newKV() *kvSM { return &kvSM{M: make(map[string]string)} }

func (s *kvSM) Apply(cmd []byte) {
	var op [2]string
	if err := json.Unmarshal(cmd, &op); err != nil {
		return
	}
	if op[1] == "" {
		delete(s.M, op[0])
		return
	}
	s.M[op[0]] = op[1]
}

func (s *kvSM) Snapshot() ([]byte, error) { return json.Marshal(s.M) }

func (s *kvSM) Restore(snap []byte) error {
	m := make(map[string]string)
	if err := json.Unmarshal(snap, &m); err != nil {
		return err
	}
	s.M = m
	return nil
}

func set(k, v string) []byte {
	b, _ := json.Marshal([2]string{k, v})
	return b
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// waitApplied blocks until the replica has applied through seq.
func waitApplied(t *testing.T, r *Replica, seq uint32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for r.Applied() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %d, want %d", r.Applied(), seq)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// get reads one key.
func get(r *Replica, k string) string {
	var v string
	r.Read(func(sm StateMachine) { v = sm.(*kvSM).M[k] })
	return v
}

// waitValue blocks until key k reads v at replica r.
func waitValue(t *testing.T, r *Replica, k, v string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for get(r, k) != v {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %q, want %q", k, get(r, k), v)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestReplicasConverge(t *testing.T) {
	ctx := ctxT(t)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	k1, _ := net.NewKernel("r1")
	k2, _ := net.NewKernel("r2")
	r1, err := Create(ctx, k1, "conv", newKV(), amoeba.GroupOptions{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer r1.Close()
	r2, err := Join(ctx, k2, "conv", newKV(), amoeba.GroupOptions{})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	defer r2.Close()

	if err := r1.Submit(ctx, set("a", "1")); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := r2.Submit(ctx, set("b", "2")); err != nil {
		t.Fatalf("submit: %v", err)
	}
	for _, r := range []*Replica{r1, r2} {
		waitValue(t, r, "a", "1")
		waitValue(t, r, "b", "2")
	}
}

func maxSeq(rs ...*Replica) uint32 {
	var hi uint32
	for _, r := range rs {
		if s := r.Applied(); s > hi {
			hi = s
		}
	}
	return hi
}

func TestJoinerReceivesStateTransfer(t *testing.T) {
	ctx := ctxT(t)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	k1, _ := net.NewKernel("r1")
	r1, err := Create(ctx, k1, "xfer", newKV(), amoeba.GroupOptions{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer r1.Close()

	// Build up state BEFORE the joiner exists; a joiner only receives
	// post-join messages, so this state can arrive only by transfer.
	for i := 0; i < 20; i++ {
		if err := r1.Submit(ctx, set(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	waitApplied(t, r1, r1.Applied())

	k2, _ := net.NewKernel("r2")
	r2, err := Join(ctx, k2, "xfer", newKV(), amoeba.GroupOptions{})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	defer r2.Close()
	for i := 0; i < 20; i++ {
		if got := get(r2, fmt.Sprintf("k%d", i)); got != fmt.Sprintf("v%d", i) {
			t.Fatalf("joiner missing pre-join state: k%d = %q", i, got)
		}
	}
	// And post-join commands still apply on top.
	if err := r1.Submit(ctx, set("k0", "overwritten")); err != nil {
		t.Fatalf("submit: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for get(r2, "k0") != "overwritten" {
		if time.Now().After(deadline) {
			t.Fatalf("post-join update lost: k0 = %q", get(r2, "k0"))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestJoinDuringActiveTraffic(t *testing.T) {
	ctx := ctxT(t)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	k1, _ := net.NewKernel("r1")
	r1, err := Create(ctx, k1, "busy", newKV(), amoeba.GroupOptions{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer r1.Close()

	// A writer hammers the state machine while the joiner transfers.
	stop := make(chan struct{})
	var wrote int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := r1.Submit(ctx, set("counter", fmt.Sprintf("%d", wrote))); err != nil {
				return
			}
			wrote++
		}
	}()

	k2, _ := net.NewKernel("r2")
	r2, err := Join(ctx, k2, "busy", newKV(), amoeba.GroupOptions{})
	if err != nil {
		t.Fatalf("Join during traffic: %v", err)
	}
	defer r2.Close()
	close(stop)
	wg.Wait()

	hi := maxSeq(r1, r2)
	waitApplied(t, r1, hi)
	waitApplied(t, r2, hi)
	if get(r1, "counter") != get(r2, "counter") {
		t.Fatalf("replicas diverge after concurrent join: %q vs %q",
			get(r1, "counter"), get(r2, "counter"))
	}
	if wrote == 0 {
		t.Fatal("writer made no progress; test proved nothing")
	}
}

func TestReplicaSurvivesSequencerCrash(t *testing.T) {
	ctx := ctxT(t)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	k1, _ := net.NewKernel("r1")
	k2, _ := net.NewKernel("r2")
	k3, _ := net.NewKernel("r3")
	r1, err := Create(ctx, k1, "ft", newKV(), amoeba.GroupOptions{Resilience: 1})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	r2, err := Join(ctx, k2, "ft", newKV(), amoeba.GroupOptions{Resilience: 1})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	defer r2.Close()
	r3, err := Join(ctx, k3, "ft", newKV(), amoeba.GroupOptions{Resilience: 1})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	defer r3.Close()

	if err := r2.Submit(ctx, set("before", "crash")); err != nil {
		t.Fatalf("submit: %v", err)
	}
	r1.Close() // sequencer dies
	if err := r2.Reset(ctx, 2); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if err := r3.Submit(ctx, set("after", "recovery")); err != nil {
		t.Fatalf("post-recovery submit: %v", err)
	}
	for _, r := range []*Replica{r2, r3} {
		waitValue(t, r, "before", "crash")
		waitValue(t, r, "after", "recovery")
	}
	if r2.Members() != 2 {
		t.Fatalf("members = %d", r2.Members())
	}
}

func TestLeaveStopsReplica(t *testing.T) {
	ctx := ctxT(t)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	k1, _ := net.NewKernel("r1")
	k2, _ := net.NewKernel("r2")
	r1, err := Create(ctx, k1, "lv", newKV(), amoeba.GroupOptions{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer r1.Close()
	r2, err := Join(ctx, k2, "lv", newKV(), amoeba.GroupOptions{})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if err := r2.Leave(ctx); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if err := r2.Submit(ctx, set("x", "y")); err == nil {
		t.Fatal("submit after leave succeeded")
	}
	// The survivor keeps going.
	if err := r1.Submit(ctx, set("still", "here")); err != nil {
		t.Fatalf("survivor submit: %v", err)
	}
}

func TestThreeWayConvergenceUnderConcurrency(t *testing.T) {
	ctx := ctxT(t)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	replicas := make([]*Replica, 3)
	for i := range replicas {
		k, _ := net.NewKernel(fmt.Sprintf("c%d", i))
		var err error
		if i == 0 {
			replicas[i], err = Create(ctx, k, "threeway", newKV(), amoeba.GroupOptions{})
		} else {
			replicas[i], err = Join(ctx, k, "threeway", newKV(), amoeba.GroupOptions{})
		}
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		defer replicas[i].Close()
	}
	var wg sync.WaitGroup
	for i, r := range replicas {
		i, r := i, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 15; n++ {
				// All replicas fight over the same key: total order
				// decides, identically everywhere.
				if err := r.Submit(ctx, set("contested", fmt.Sprintf("r%d-%d", i, n))); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	hi := maxSeq(replicas...)
	for _, r := range replicas {
		waitApplied(t, r, hi)
	}
	want := get(replicas[0], "contested")
	for i, r := range replicas[1:] {
		if got := get(r, "contested"); got != want {
			t.Fatalf("replica %d: contested = %q, replica 0 has %q", i+1, got, want)
		}
	}
}
