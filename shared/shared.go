// Package shared provides replicated state machines with atomic state
// transfer on top of the group communication system.
//
// The paper's §5 reports that building fault-tolerant applications on the
// raw group primitives was harder than expected for exactly two reasons: no
// support for atomic group creation, and no support for a process
// (re)joining a running group — "a library for atomic state transfer as
// provided in Isis would have simplified building these fault-tolerant
// programs". This package is that library.
//
// A Replica binds an application StateMachine to a group. Commands submitted
// through any replica are totally ordered by the group and applied to every
// copy in the same sequence, so the copies never diverge. A replica that
// joins a running group performs state transfer before applying anything:
// it fetches a snapshot from an existing member over RPC, tagged with the
// sequence number it reflects, installs it, discards the already-reflected
// prefix of its delivery stream, and applies the rest — joining atomically
// at a well-defined point in the total order.
package shared

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"amoeba"
	"amoeba/obs"
	"amoeba/wal"
)

// StateMachine is the replicated application state. Apply must be
// deterministic: given the same command sequence, every copy must reach the
// same state. The package serialises all calls; implementations need no
// internal locking.
type StateMachine interface {
	// Apply executes one committed command.
	Apply(cmd []byte)
	// Snapshot serialises the current state for transfer to a joiner.
	Snapshot() ([]byte, error)
	// Restore replaces the state with a snapshot.
	Restore(snapshot []byte) error
}

// SeqApplier is an optional StateMachine extension: a state machine that
// wants the sequence number alongside each command (e.g. to stamp
// "applied@seq" span events into an op trace) implements ApplySeq, and the
// replica calls it instead of Apply. The two must be behaviourally
// identical.
type SeqApplier interface {
	ApplySeq(seq uint32, cmd []byte)
}

// Digester is an optional StateMachine extension: a state machine that can
// fold its replicated state into one deterministic 64-bit digest. Durable
// replicas stamp every WAL checkpoint with the digest, and cold-start
// recovery verifies the restored state against the stamp — a checkpoint
// whose bytes survived (CRC-clean) but whose state does not round-trip is
// refused, falling back to the previous checkpoint and a longer replay (see
// wal.Log.RecoverVerified). The digest must be a pure function of replicated
// state only, so every replica of a group computes the same value at the
// same position in the total order.
type Digester interface {
	StateDigest() uint64
}

// Errors returned by the package.
var (
	// ErrStopped reports use of a closed or expelled replica.
	ErrStopped = errors.New("shared: replica stopped")
	// ErrTransferFailed reports that no member could supply a usable
	// snapshot.
	ErrTransferFailed = errors.New("shared: state transfer failed")
)

// Replica is one copy of the replicated state: a group membership plus the
// state machine it drives.
type Replica struct {
	group  *amoeba.Group
	kernel *amoeba.Kernel
	name   string
	xfer   *amoeba.RPCServer
	beacon *beacon // durable replicas advertise their recovery state

	mu          sync.Mutex
	sm          StateMachine
	lastApplied uint32
	members     int
	stopped     bool
	closed      bool
	// applyWake is closed and replaced after every apply (and on stop), so
	// Wait callers can sleep until the state machine may have changed.
	applyWake chan struct{}

	// Durability (nil log: in-memory replica, the paper's semantics). The
	// apply loop journals delivered entries before applying them and
	// checkpoints every dur.CheckpointEvery entries; see Open. durable is
	// immutable after construction (the apply loop reads it without the
	// lock); log can drop to nil under the lock if the disk fails.
	durable   bool
	log       *wal.Log
	dur       Durability
	sinceCkpt int
	walErr    error

	// Observability (all nil-safe no-ops when the group carries no hub).
	seqApply   SeqApplier     // sm, when it implements SeqApplier
	digester   Digester       // sm, when it implements Digester
	applyH     *obs.Histogram // amoeba_replica_apply_ns (1-in-8 sampled)
	applyCount uint64         // applies since start, for the sampling rule
	flight     *obs.Recorder

	done   chan struct{}
	cancel context.CancelFunc
}

// Create starts the first replica of a named state machine. The calling
// process becomes the group's sequencer.
func Create(ctx context.Context, k *amoeba.Kernel, name string, sm StateMachine, opts amoeba.GroupOptions) (*Replica, error) {
	g, err := k.CreateGroup(ctx, name, opts)
	if err != nil {
		return nil, fmt.Errorf("shared: creating %q: %w", name, err)
	}
	r := newReplica(k, g, name, sm, opts.Obs)
	if err := r.serveTransfers(); err != nil {
		g.Close()
		return nil, err
	}
	r.start()
	return r, nil
}

// Join adds a replica to a running state machine, performing state transfer:
// when Join returns, sm holds the state as of this replica's position in the
// total order, and subsequent commands apply on top.
func Join(ctx context.Context, k *amoeba.Kernel, name string, sm StateMachine, opts amoeba.GroupOptions) (*Replica, error) {
	return joinWithLog(ctx, k, name, sm, opts, nil, Durability{})
}

// joinWithLog is Join with an optional write-ahead log: when log is non-nil
// the transferred snapshot resets the log (the transfer is authoritative —
// entries journaled on the replica's previous timeline must not resurface)
// and the replica journals from there on. If the log held entries beyond the
// transfer point — this member recovered more than the reformed group did
// but arrived after the cold-start election — that suffix is given up, and
// wal.Stats.ResetDiscarded records how much.
func joinWithLog(ctx context.Context, k *amoeba.Kernel, name string, sm StateMachine, opts amoeba.GroupOptions, log *wal.Log, dur Durability) (*Replica, error) {
	g, err := k.JoinGroup(ctx, name, opts)
	if err != nil {
		return nil, fmt.Errorf("shared: joining %q: %w", name, err)
	}
	r := newReplica(k, g, name, sm, opts.Obs)

	// The first delivery is our own join at seq J: nothing before J will
	// ever be delivered to us, so the snapshot must reflect at least J.
	first, err := g.Receive(ctx)
	if err != nil {
		g.Close()
		return nil, fmt.Errorf("shared: joining %q: %w", name, err)
	}
	joinSeq := first.Seq

	// Fetch a snapshot from an existing member while buffering whatever
	// the group delivers meanwhile.
	var buffered []amoeba.Message
	snapSeq, snapshot, err := r.fetchSnapshot(ctx, joinSeq, func() error {
		// Drain without blocking so the receive queue cannot pin the
		// sender side while we wait on RPC.
		for {
			drainCtx, cancel := context.WithTimeout(ctx, time.Millisecond)
			m, err := g.Receive(drainCtx)
			cancel()
			if err != nil {
				return nil // queue momentarily empty
			}
			buffered = append(buffered, m)
		}
	})
	if err != nil {
		g.Close()
		return nil, err
	}
	if err := sm.Restore(snapshot); err != nil {
		g.Close()
		return nil, fmt.Errorf("shared: restoring snapshot: %w", err)
	}
	r.lastApplied = snapSeq
	r.members = first.Members
	if log != nil {
		var digest uint64
		if r.digester != nil {
			digest = r.digester.StateDigest()
		}
		if err := log.Reset(snapSeq, digest, snapshot); err != nil {
			g.Close()
			return nil, fmt.Errorf("shared: resetting log to transfer point: %w", err)
		}
		r.log = log
		r.dur = dur
		r.durable = true
	}
	// Apply the buffered suffix beyond the snapshot (journaled, when
	// durable — these entries are already part of this replica's history).
	for _, m := range buffered {
		r.apply(m)
	}
	if err := r.serveTransfers(); err != nil {
		g.Close()
		return nil, err
	}
	r.start()
	return r, nil
}

func newReplica(k *amoeba.Kernel, g *amoeba.Group, name string, sm StateMachine, hub *obs.Hub) *Replica {
	r := &Replica{
		group:     g,
		kernel:    k,
		name:      name,
		sm:        sm,
		applyWake: make(chan struct{}),
		done:      make(chan struct{}),
	}
	r.seqApply, _ = sm.(SeqApplier)
	r.digester, _ = sm.(Digester)
	if hub != nil {
		r.applyH = hub.Histogram("amoeba_replica_apply_ns")
		r.flight = hub.Flight()
	}
	return r
}

// transferAddr is the well-known RPC address of a member's snapshot service.
func transferAddr(group string, member int) amoeba.Addr {
	return amoeba.AddrForName(fmt.Sprintf("shared-xfer/%s/%d", group, member))
}

// serveTransfers starts this replica's snapshot service.
func (r *Replica) serveTransfers() error {
	self := r.group.Info().Self
	srv, err := r.kernel.NewRPCServer(transferAddr(r.name, self), func(req []byte) ([]byte, amoeba.Addr) {
		r.mu.Lock()
		defer r.mu.Unlock()
		snap, err := r.sm.Snapshot()
		if err != nil {
			return nil, 0 // empty reply: the joiner tries another member
		}
		out := make([]byte, 4+len(snap))
		binary.BigEndian.PutUint32(out, r.lastApplied)
		copy(out[4:], snap)
		return out, 0
	})
	if err != nil {
		return fmt.Errorf("shared: starting transfer service: %w", err)
	}
	r.xfer = srv
	return nil
}

// fetchSnapshot asks existing members for a snapshot reflecting at least
// minSeq, retrying (members may not have applied our join yet). drain is
// called between attempts to keep the delivery queue flowing.
func (r *Replica) fetchSnapshot(ctx context.Context, minSeq uint32, drain func() error) (uint32, []byte, error) {
	cl, err := r.kernel.NewRPCClient()
	if err != nil {
		return 0, nil, fmt.Errorf("shared: transfer client: %w", err)
	}
	defer cl.Close()

	info := r.group.Info()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, member := range info.MemberIDs {
			if member == info.Self {
				continue
			}
			callCtx, cancel := context.WithTimeout(ctx, time.Second)
			reply, err := cl.Call(callCtx, transferAddr(r.name, member), nil)
			cancel()
			if err != nil || len(reply) < 4 {
				continue
			}
			snapSeq := binary.BigEndian.Uint32(reply)
			if snapSeq < minSeq {
				continue // donor has not applied our join yet; retry
			}
			return snapSeq, reply[4:], nil
		}
		if err := drain(); err != nil {
			return 0, nil, err
		}
		select {
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
	return 0, nil, ErrTransferFailed
}

// maxJournalBurst bounds the deliveries coalesced into one journal record
// (and, with Durability.Sync, one fsync).
const maxJournalBurst = 128

// start launches the apply loop. A durable replica coalesces the queued
// deliveries behind each blocking receive into one burst, journaling the
// whole run as a single log record before applying it — group commit at the
// replica, mirroring the sequencer's batch amortisation on the wire.
func (r *Replica) start() {
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	// A pre-cancelled context makes Receive a non-blocking poll: it returns
	// a queued message if one is present and the context error otherwise.
	pollCtx, pollCancel := context.WithCancel(context.Background())
	pollCancel()
	go func() {
		defer close(r.done)
		for {
			m, err := r.group.Receive(ctx)
			if err != nil {
				r.mu.Lock()
				r.stopped = true
				r.wakeLocked()
				r.mu.Unlock()
				return
			}
			if !r.durable {
				r.apply(m)
				continue
			}
			burst := []amoeba.Message{m}
			for len(burst) < maxJournalBurst {
				m2, err := r.group.Receive(pollCtx)
				if err != nil {
					break // queue momentarily empty
				}
				burst = append(burst, m2)
			}
			r.applyBurst(burst)
		}
	}()
}

// wakeLocked wakes every Wait caller; r.mu must be held.
func (r *Replica) wakeLocked() {
	close(r.applyWake)
	r.applyWake = make(chan struct{})
}

// apply folds one delivery into the state machine.
func (r *Replica) apply(m amoeba.Message) {
	r.applyBurst([]amoeba.Message{m})
}

// applyBurst journals then applies a run of deliveries under one lock hold:
// the data entries land in the write-ahead log as a single record (one
// write, one optional fsync) before any of them mutates the state machine,
// so a crash never leaves applied-but-unjournaled state behind.
func (r *Replica) applyBurst(ms []amoeba.Message) {
	r.mu.Lock()
	if r.log != nil {
		var entries []wal.Entry
		last := r.lastApplied
		for i := range ms {
			if ms[i].Kind == amoeba.Data && ms[i].Seq > last {
				entries = append(entries, wal.Entry{Seq: ms[i].Seq, Payload: ms[i].Payload})
				last = ms[i].Seq
			}
		}
		if len(entries) > 0 {
			if err := r.log.Append(entries); err != nil {
				r.walFailLocked(err)
			} else {
				r.sinceCkpt += len(entries)
			}
		}
	}
	for i := range ms {
		r.applyLocked(ms[i])
	}
	log, seq, digest, snap := r.prepareCheckpointLocked()
	r.wakeLocked()
	r.mu.Unlock()
	if log == nil {
		return
	}
	// The checkpoint's disk I/O runs on the log's own mutex, not the
	// replica lock: Read/Wait callers are not stalled behind a snapshot
	// fsync every CheckpointEvery entries. The apply loop is the only
	// appender, and it is here — nothing appends concurrently, so the
	// checkpoint still covers exactly the entries journaled so far.
	if err := log.CheckpointDigest(seq, digest, snap); err != nil {
		r.mu.Lock()
		// The log may have been retired (or swapped by Close) meanwhile;
		// only degrade the one that failed.
		if r.log == log {
			r.walFailLocked(err)
		}
		r.mu.Unlock()
	}
}

// prepareCheckpointLocked decides whether a checkpoint is due and, if so,
// serialises the snapshot — and its state digest, when the state machine is
// a Digester — under the lock (the consistent read) and resets the
// countdown, returning the log to checkpoint into. The disk write itself
// happens at the caller, outside r.mu.
func (r *Replica) prepareCheckpointLocked() (*wal.Log, uint32, uint64, []byte) {
	if r.log == nil || r.sinceCkpt < r.dur.CheckpointEvery {
		return nil, 0, 0, nil
	}
	snap, err := r.sm.Snapshot()
	if err != nil {
		return nil, 0, 0, nil // not fatal: try again after the next burst
	}
	var digest uint64
	if r.digester != nil {
		digest = r.digester.StateDigest()
	}
	r.sinceCkpt = 0
	return r.log, r.lastApplied, digest, snap
}

// applyLocked folds one delivery into the state machine; r.mu must be held.
func (r *Replica) applyLocked(m amoeba.Message) {
	switch m.Kind {
	case amoeba.Data:
		if m.Seq <= r.lastApplied {
			return // already reflected by the snapshot
		}
		// Sample 1-in-8 applies: a median apply is ~1µs, so stamping the
		// wall clock around every one costs more than the work measured.
		var t0 time.Time
		timed := r.applyH != nil && r.applyCount&7 == 0
		r.applyCount++
		if timed {
			t0 = time.Now()
		}
		if r.seqApply != nil {
			r.seqApply.ApplySeq(m.Seq, m.Payload)
		} else {
			r.sm.Apply(m.Payload)
		}
		if timed {
			r.applyH.Observe(time.Since(t0))
		}
		r.lastApplied = m.Seq
	case amoeba.Join, amoeba.Leave, amoeba.Reset:
		r.members = m.Members
		if m.Seq > r.lastApplied {
			r.lastApplied = m.Seq
		}
	case amoeba.Expelled:
		r.stopped = true
	}
}

// walFailLocked retires a failing log: the replica stays live (the group
// still replicates in memory, and state transfer can heal a restart), but
// durability is lost and reported through DurabilityStats.
func (r *Replica) walFailLocked(err error) {
	if r.walErr == nil {
		r.walErr = err
	}
	r.flight.Recordf("replica/"+r.name, "wal degraded, running in memory only: %v", err)
	r.log.Close()
	r.log = nil
}

// Submit routes a command through the group; when it returns, the command is
// totally ordered (and, with resilience, stored by r other members). The
// local state reflects it once the apply loop catches up — use Read for
// read-your-writes patterns.
func (r *Replica) Submit(ctx context.Context, cmd []byte) error {
	r.mu.Lock()
	stopped := r.stopped
	r.mu.Unlock()
	if stopped {
		return ErrStopped
	}
	return r.group.Send(ctx, cmd)
}

// SubmitBatch routes several commands through the group as one pipelined
// burst: each command is ordered and applied individually (in slice order
// relative to this replica's other submissions), but the group coalesces
// them into batch ordering requests, amortising the sequencer's per-request
// work — the write-coalescing fast path for bulk loads. It returns the first
// error encountered.
func (r *Replica) SubmitBatch(ctx context.Context, cmds [][]byte) error {
	r.mu.Lock()
	stopped := r.stopped
	r.mu.Unlock()
	if stopped {
		return ErrStopped
	}
	return r.group.SendBatch(ctx, cmds)
}

// Stats exposes the underlying group's protocol counters, including the
// sequencer-side batch amortisation counters.
func (r *Replica) Stats() amoeba.GroupStats { return r.group.Stats() }

// Read runs fn with exclusive, consistent access to the state machine.
func (r *Replica) Read(fn func(sm StateMachine)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(r.sm)
}

// Lease returns the replica's read-lease snapshot (see
// amoeba.GroupOptions.LeaseDur).
func (r *Replica) Lease() amoeba.LeaseInfo { return r.group.Lease() }

// LeaseRead runs fn with consistent access to the state machine if — and only
// if — a linearizable local read is permitted right now: the replica holds a
// valid read lease and has applied every delivery through the lease
// watermark. It reports whether fn ran; on false the caller must fall back to
// an ordered read (Submit a read marker, or route to another replica).
//
// Linearizability argument: the read's linearization point is the Lease()
// snapshot. At that instant the lease was valid, so (write gating) every
// write completed before it was stored here — and stored entries are below
// the watermark, which the state was verified to have applied through.
// Anything newer the read happens to observe was already accepted by the
// sequencer, i.e. its effect point precedes the observation.
func (r *Replica) LeaseRead(fn func(sm StateMachine)) bool {
	li := r.group.Lease()
	if !li.Held {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped || r.lastApplied < li.Watermark {
		return false
	}
	fn(r.sm)
	return true
}

// StaleRead runs fn against local state if its staleness is provably within
// maxStale: every write completed more than the returned bound ago (plus one
// network transit) is reflected in what fn observes. It reports the bound and
// whether fn ran; on false the caller falls back to a linearizable path.
// Unlike LeaseRead this needs no lease — any replica that has heard a recent
// sequencer tick can serve — so it is the read path that survives lease
// churn, at the price of bounded (not zero) staleness.
func (r *Replica) StaleRead(maxStale time.Duration, fn func(sm StateMachine)) (time.Duration, bool) {
	r.mu.Lock()
	applied := r.lastApplied
	stopped := r.stopped
	r.mu.Unlock()
	if stopped {
		return 0, false
	}
	bound, ok := r.group.FreshAt(applied)
	if !ok || bound > maxStale {
		return bound, false
	}
	// State only advances between the bound computation and the read, so
	// fn observes something at least as fresh as the bound promises.
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return bound, false
	}
	fn(r.sm)
	return bound, true
}

// Wait blocks until pred (evaluated with the same exclusive access as Read)
// returns true, rechecking after every applied command. It returns ErrStopped
// if the replica stops first, or ctx.Err() on cancellation. Use it to wait
// for a submitted command's effect to reach the local copy.
func (r *Replica) Wait(ctx context.Context, pred func(sm StateMachine) bool) error {
	for {
		r.mu.Lock()
		if pred(r.sm) {
			r.mu.Unlock()
			return nil
		}
		stopped := r.stopped
		wake := r.applyWake
		r.mu.Unlock()
		if stopped {
			return ErrStopped
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Applied reports the sequence number of the last applied command.
func (r *Replica) Applied() uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastApplied
}

// Members reports the current replica-set size.
func (r *Replica) Members() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.members
}

// Info exposes the underlying group state.
func (r *Replica) Info() amoeba.GroupInfo { return r.group.Info() }

// Reset rebuilds the replica set after failures; see amoeba.Group.Reset.
func (r *Replica) Reset(ctx context.Context, minAlive int) error {
	return r.group.Reset(ctx, minAlive)
}

// Leave departs the replica set in total order and stops the replica.
func (r *Replica) Leave(ctx context.Context) error {
	err := r.group.Leave(ctx)
	r.Close()
	return err
}

// Close stops the replica without protocol goodbye (a crash, to the rest of
// the replica set). It also releases the resources of a replica that already
// stopped on its own (e.g. one expelled by a recovery it missed).
func (r *Replica) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.stopped = true
	r.wakeLocked()
	r.mu.Unlock()
	if r.cancel != nil {
		r.cancel()
	}
	r.group.Close()
	if r.xfer != nil {
		r.xfer.Close()
	}
	<-r.done
	// The apply loop has exited; the log is safe to flush and close.
	r.mu.Lock()
	if r.log != nil {
		r.log.Close()
		r.log = nil
	}
	r.mu.Unlock()
	if r.beacon != nil {
		r.beacon.Close()
	}
}

// DurabilityStats reports the state of a replica's write-ahead log.
type DurabilityStats struct {
	// Enabled reports whether the replica was opened with durability.
	Enabled bool
	// Log carries the journal's counters.
	Log wal.Stats
	// LastSeq is the highest journaled or checkpointed sequence number.
	LastSeq uint32
	// CheckpointSeq is the newest checkpoint's sequence number.
	CheckpointSeq uint32
	// Err is a non-empty description if the log failed and was retired
	// (the replica keeps running in memory).
	Err string
}

// DurabilityStats returns a snapshot of the replica's durability state.
func (r *Replica) DurabilityStats() DurabilityStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := DurabilityStats{Enabled: r.durable}
	if r.walErr != nil {
		st.Err = r.walErr.Error()
	}
	if r.log != nil {
		st.Log = r.log.Stats()
		st.LastSeq = r.log.LastSeq()
		st.CheckpointSeq = r.log.CheckpointSeq()
	}
	return st
}

// Debug renders the replica's group-protocol state for diagnostics. The
// format is unstable; log it, do not parse it.
func (r *Replica) Debug() string { return r.group.Debug() }
