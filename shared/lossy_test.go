package shared

import (
	"fmt"
	"testing"
	"time"

	"amoeba"
)

// lossyNet returns a memory network that drops and duplicates frames, so the
// protocol's NAK/retransmission and the transfer RPC's retries all fire.
func lossyNet(drop, dup float64, seed int64) *amoeba.MemoryNetwork {
	return amoeba.NewMemoryNetworkWithFaults(amoeba.MemoryNetworkConfig{
		DropRate: drop,
		DupRate:  dup,
		Seed:     seed,
	})
}

// TestStateTransferOverLossyNetwork checks the §5 claim end to end under
// packet loss: a replica that joins a running group over an unreliable
// network must still converge to exactly the seeds' state.
func TestStateTransferOverLossyNetwork(t *testing.T) {
	for _, tc := range []struct {
		name      string
		drop, dup float64
		seed      int64
	}{
		{"drop2", 0.02, 0, 7},
		{"drop5dup2", 0.05, 0.02, 11},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ctx := ctxT(t)
			net := lossyNet(tc.drop, tc.dup, tc.seed)
			defer net.Close()

			k1, _ := net.NewKernel("seed-1")
			k2, _ := net.NewKernel("seed-2")
			r1, err := Create(ctx, k1, "lossy", newKV(), amoeba.GroupOptions{})
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			defer r1.Close()
			r2, err := Join(ctx, k2, "lossy", newKV(), amoeba.GroupOptions{})
			if err != nil {
				t.Fatalf("Join seed-2: %v", err)
			}
			defer r2.Close()

			// Pre-join state: only state transfer can hand this to the
			// joiner, and every Submit here already battles frame loss.
			const n = 30
			for i := 0; i < n; i++ {
				if err := r1.Submit(ctx, set(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))); err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
			}

			k3, _ := net.NewKernel("joiner")
			r3, err := Join(ctx, k3, "lossy", newKV(), amoeba.GroupOptions{})
			if err != nil {
				t.Fatalf("Join over lossy network: %v", err)
			}
			defer r3.Close()

			// Post-join traffic through the joiner itself.
			if err := r3.Submit(ctx, set("after", "join")); err != nil {
				t.Fatalf("joiner submit: %v", err)
			}

			hi := maxSeq(r1, r2, r3)
			for _, r := range []*Replica{r1, r2, r3} {
				waitApplied(t, r, hi)
			}
			// All three copies must be identical despite drops and dups.
			deadline := time.Now().Add(5 * time.Second)
			for {
				equal := true
				for i := 0; i < n; i++ {
					k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
					if get(r3, k) != v || get(r2, k) != v {
						equal = false
						break
					}
				}
				if equal && get(r3, "after") == "join" {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("replicas did not converge over lossy network")
				}
				time.Sleep(5 * time.Millisecond)
			}
		})
	}
}

// TestWaitObservesApply covers the exported Wait hook: it must block until a
// submitted command is applied locally, not merely sequenced.
func TestWaitObservesApply(t *testing.T) {
	ctx := ctxT(t)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	k1, _ := net.NewKernel("w1")
	k2, _ := net.NewKernel("w2")
	r1, err := Create(ctx, k1, "wait", newKV(), amoeba.GroupOptions{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer r1.Close()
	r2, err := Join(ctx, k2, "wait", newKV(), amoeba.GroupOptions{})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	defer r2.Close()

	if err := r1.Submit(ctx, set("x", "42")); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Wait on the NON-submitting replica: the value arrives only via the
	// ordered stream.
	if err := r2.Wait(ctx, func(sm StateMachine) bool {
		return sm.(*kvSM).M["x"] == "42"
	}); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := get(r2, "x"); got != "42" {
		t.Fatalf("x = %q after Wait", got)
	}
	// Wait fails with ErrStopped once the replica closes.
	r2.Close()
	if err := r2.Wait(ctx, func(StateMachine) bool { return false }); err != ErrStopped {
		t.Fatalf("Wait on closed replica: %v, want ErrStopped", err)
	}
}
