package shared

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"amoeba"
)

// lossyNet returns a memory network that drops and duplicates frames, so the
// protocol's NAK/retransmission and the transfer RPC's retries all fire.
func lossyNet(drop, dup float64, seed int64) *amoeba.MemoryNetwork {
	return amoeba.NewMemoryNetworkWithFaults(amoeba.MemoryNetworkConfig{
		DropRate: drop,
		DupRate:  dup,
		Seed:     seed,
	})
}

// TestStateTransferOverLossyNetwork checks the §5 claim end to end under
// packet loss: a replica that joins a running group over an unreliable
// network must still converge to exactly the seeds' state.
func TestStateTransferOverLossyNetwork(t *testing.T) {
	for _, tc := range []struct {
		name      string
		drop, dup float64
		seed      int64
	}{
		{"drop2", 0.02, 0, 7},
		{"drop5dup2", 0.05, 0.02, 11},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ctx := ctxT(t)
			net := lossyNet(tc.drop, tc.dup, tc.seed)
			defer net.Close()

			k1, _ := net.NewKernel("seed-1")
			k2, _ := net.NewKernel("seed-2")
			r1, err := Create(ctx, k1, "lossy", newKV(), amoeba.GroupOptions{})
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			defer r1.Close()
			r2, err := Join(ctx, k2, "lossy", newKV(), amoeba.GroupOptions{})
			if err != nil {
				t.Fatalf("Join seed-2: %v", err)
			}
			defer r2.Close()

			// Pre-join state: only state transfer can hand this to the
			// joiner, and every Submit here already battles frame loss.
			const n = 30
			for i := 0; i < n; i++ {
				if err := r1.Submit(ctx, set(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))); err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
			}

			k3, _ := net.NewKernel("joiner")
			r3, err := Join(ctx, k3, "lossy", newKV(), amoeba.GroupOptions{})
			if err != nil {
				t.Fatalf("Join over lossy network: %v", err)
			}
			defer r3.Close()

			// Post-join traffic through the joiner itself.
			if err := r3.Submit(ctx, set("after", "join")); err != nil {
				t.Fatalf("joiner submit: %v", err)
			}

			hi := maxSeq(r1, r2, r3)
			for _, r := range []*Replica{r1, r2, r3} {
				waitApplied(t, r, hi)
			}
			// All three copies must be identical despite drops and dups.
			deadline := time.Now().Add(5 * time.Second)
			for {
				equal := true
				for i := 0; i < n; i++ {
					k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
					if get(r3, k) != v || get(r2, k) != v {
						equal = false
						break
					}
				}
				if equal && get(r3, "after") == "join" {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("replicas did not converge over lossy network")
				}
				time.Sleep(5 * time.Millisecond)
			}
		})
	}
}

// logSM records applied commands in order — the probe for per-sender FIFO
// and exactly-once under pipelining.
type logSM struct {
	Log []string `json:"log"`
}

func (s *logSM) Apply(cmd []byte) { s.Log = append(s.Log, string(cmd)) }
func (s *logSM) Snapshot() ([]byte, error) {
	return json.Marshal(s)
}
func (s *logSM) Restore(snap []byte) error {
	return json.Unmarshal(snap, s)
}

// TestPipelinedFIFOAcrossFailoverOnLossyNetwork is the end-to-end guarantee
// check for SendWindow > 1: several workers stream numbered commands through
// one replica over a dropping, duplicating network; the sequencer process is
// killed mid-stream and AutoReset rebuilds the group. Every command whose
// Submit succeeded must appear in every survivor's log exactly once and in
// each worker's submission order — pipelining and batching must change the
// economics, never the semantics.
func TestPipelinedFIFOAcrossFailoverOnLossyNetwork(t *testing.T) {
	ctx := ctxT(t)
	net := lossyNet(0.03, 0.02, 23)
	defer net.Close()

	opts := amoeba.GroupOptions{
		Resilience:   1,
		AutoReset:    true,
		MinSurvivors: 2,
		SendWindow:   4,
		MaxBatch:     8,
	}
	k1, _ := net.NewKernel("seq")
	k2, _ := net.NewKernel("worker-host")
	k3, _ := net.NewKernel("observer")
	r1, err := Create(ctx, k1, "pipefail", &logSM{}, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer r1.Close()
	r2, err := Join(ctx, k2, "pipefail", &logSM{}, opts)
	if err != nil {
		t.Fatalf("Join r2: %v", err)
	}
	defer r2.Close()
	r3, err := Join(ctx, k3, "pipefail", &logSM{}, opts)
	if err != nil {
		t.Fatalf("Join r3: %v", err)
	}
	defer r3.Close()

	// Workers share r2's replica handle: their streams interleave, but each
	// worker's own commands must stay in order (per-sender FIFO is per
	// group handle, and the handle pipelines all of them).
	const workers, perWorker = 3, 40
	okSubmits := make([][]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		okSubmits[w] = make([]bool, perWorker)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				cmd := []byte(fmt.Sprintf("w%d-%03d", w, i))
				if err := r2.Submit(ctx, cmd); err == nil {
					okSubmits[w][i] = true
				}
			}
		}()
	}
	// Kill the sequencer once the stream is flowing; the workers' retries
	// trigger AutoReset and the window re-homes on the new sequencer.
	for r2.Applied() < 10 {
		time.Sleep(2 * time.Millisecond)
	}
	r1.Close()
	wg.Wait()

	// A final marker flushes the stream, then both survivors must agree.
	if err := r2.Submit(ctx, []byte("fin")); err != nil {
		t.Fatalf("final submit: %v", err)
	}
	hi := maxSeq(r2, r3)
	defer func() {
		if t.Failed() {
			t.Logf("r2: %s", r2.Debug())
			t.Logf("r3: %s", r3.Debug())
		}
	}()
	waitApplied(t, r2, hi)
	waitApplied(t, r3, hi)

	logs := map[string][]string{}
	for name, r := range map[string]*Replica{"r2": r2, "r3": r3} {
		var snapshot []string
		r.Read(func(sm StateMachine) {
			snapshot = append([]string(nil), sm.(*logSM).Log...)
		})
		logs[name] = snapshot
	}
	if fmt.Sprint(logs["r2"]) != fmt.Sprint(logs["r3"]) {
		t.Fatalf("survivor logs diverge:\nr2=%v\nr3=%v", logs["r2"], logs["r3"])
	}
	// Exactly-once and per-worker FIFO on the agreed log.
	count := map[string]int{}
	nextPerWorker := make([]int, workers)
	for _, cmd := range logs["r2"] {
		count[cmd]++
		var w, i int
		if n, _ := fmt.Sscanf(cmd, "w%d-%d", &w, &i); n == 2 {
			// Applied commands from one worker must appear in
			// submission order; skipped indices are only legal for
			// failed submits.
			for next := nextPerWorker[w]; next < i; next++ {
				if okSubmits[w][next] {
					t.Fatalf("worker %d: command %03d applied before %03d (FIFO violated)", w, i, next)
				}
			}
			if i < nextPerWorker[w] {
				t.Fatalf("worker %d: command %03d applied out of order", w, i)
			}
			nextPerWorker[w] = i + 1
		}
	}
	for cmd, n := range count {
		if n != 1 {
			t.Fatalf("command %q applied %d times", cmd, n)
		}
	}
	// Every successful submit made it.
	for w := 0; w < workers; w++ {
		for i, ok := range okSubmits[w] {
			if ok && count[fmt.Sprintf("w%d-%03d", w, i)] == 0 {
				t.Fatalf("worker %d: successful submit %03d missing from log", w, i)
			}
		}
	}
}

// TestWaitObservesApply covers the exported Wait hook: it must block until a
// submitted command is applied locally, not merely sequenced.
func TestWaitObservesApply(t *testing.T) {
	ctx := ctxT(t)
	net := amoeba.NewMemoryNetwork()
	defer net.Close()
	k1, _ := net.NewKernel("w1")
	k2, _ := net.NewKernel("w2")
	r1, err := Create(ctx, k1, "wait", newKV(), amoeba.GroupOptions{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer r1.Close()
	r2, err := Join(ctx, k2, "wait", newKV(), amoeba.GroupOptions{})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	defer r2.Close()

	if err := r1.Submit(ctx, set("x", "42")); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Wait on the NON-submitting replica: the value arrives only via the
	// ordered stream.
	if err := r2.Wait(ctx, func(sm StateMachine) bool {
		return sm.(*kvSM).M["x"] == "42"
	}); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := get(r2, "x"); got != "42" {
		t.Fatalf("x = %q after Wait", got)
	}
	// Wait fails with ErrStopped once the replica closes.
	r2.Close()
	if err := r2.Wait(ctx, func(StateMachine) bool { return false }); err != ErrStopped {
		t.Fatalf("Wait on closed replica: %v, want ErrStopped", err)
	}
}
