package shared

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"amoeba"
	"amoeba/wal"
)

// This file measures what the durable history costs and buys: ordered
// throughput through a replicated state machine with journaling off, on, and
// fsynced, and cold-start recovery time against log size. Unlike the
// paper-reproduction experiments (internal/experiments) it runs on the live
// in-memory fabric and a real disk in real time, so absolute numbers vary by
// host; the RATIOS are the measurement. cmd/amoeba-bench renders it as the
// "durable" experiment and CI commits it as BENCH_durable.json.

// DurableBenchThroughput is one journaling mode's ordered-throughput point.
type DurableBenchThroughput struct {
	// Mode is "memory" (no log), "wal" (journal, OS-buffered), or
	// "wal+fsync" (journal, fsync per record).
	Mode       string  `json:"mode"`
	CmdsPerSec float64 `json:"cmds_per_sec"`
	// VsMemory is the ratio against the in-memory baseline.
	VsMemory float64 `json:"vs_memory"`
}

// DurableBenchRecovery is one cold-start recovery timing.
type DurableBenchRecovery struct {
	// Entries is the journaled entry count at crash time.
	Entries int `json:"entries"`
	// Checkpointed reports whether a snapshot checkpoint covered the
	// whole log (replay then handles only the empty suffix).
	Checkpointed bool `json:"checkpointed"`
	// LogBytes is the on-disk log size recovered from.
	LogBytes int64 `json:"log_bytes"`
	// RecoverMs is the wall time of open + restore + replay.
	RecoverMs float64 `json:"recover_ms"`
	// Replayed counts entries actually replayed (after the checkpoint).
	Replayed uint64 `json:"replayed"`
}

// DurableBenchResult is the full durable experiment.
type DurableBenchResult struct {
	Throughput []DurableBenchThroughput `json:"throughput"`
	Recovery   []DurableBenchRecovery   `json:"recovery"`
}

// benchSM is a minimal state machine for the measurement: apply counts
// commands, snapshots are 8 bytes.
type benchSM struct{ n uint64 }

func (s *benchSM) Apply([]byte) { s.n++ }
func (s *benchSM) Snapshot() ([]byte, error) {
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, s.n)
	return out, nil
}
func (s *benchSM) Restore(snap []byte) error {
	if len(snap) >= 8 {
		s.n = binary.BigEndian.Uint64(snap)
	}
	return nil
}

const (
	durableBenchMembers = 3
	durableBenchCmds    = 4000
	durableBenchBurst   = 32
	durableBenchPayload = 64
)

// durableThroughputPoint measures ordered commands/s through a 3-member
// replicated state machine in the given journaling mode.
func durableThroughputPoint(mode string) (float64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	network := amoeba.NewMemoryNetwork()
	defer network.Close()

	var dir string
	if mode != "memory" {
		d, err := os.MkdirTemp("", "amoeba-durable-bench-")
		if err != nil {
			return 0, err
		}
		dir = d
		defer os.RemoveAll(dir)
	}

	name := "durable-bench-" + mode
	reps := make([]*Replica, 0, durableBenchMembers)
	defer func() {
		for _, r := range reps {
			r.Close()
		}
	}()
	for i := 0; i < durableBenchMembers; i++ {
		k, err := network.NewKernel(fmt.Sprintf("bench-%s-%d", mode, i))
		if err != nil {
			return 0, err
		}
		var r *Replica
		switch {
		case mode == "memory" && i == 0:
			r, err = Create(ctx, k, name, &benchSM{}, amoeba.GroupOptions{})
		case mode == "memory":
			r, err = Join(ctx, k, name, &benchSM{}, amoeba.GroupOptions{})
		default:
			r, err = Open(ctx, k, name, &benchSM{}, amoeba.GroupOptions{}, Durability{
				Dir:       filepath.Join(dir, fmt.Sprintf("r%d", i)),
				Sync:      mode == "wal+fsync",
				Rank:      i,
				Peers:     durableBenchMembers,
				Bootstrap: true,
			})
		}
		if err != nil {
			return 0, fmt.Errorf("member %d (%s): %w", i, mode, err)
		}
		reps = append(reps, r)
	}

	payload := make([]byte, durableBenchPayload)
	burst := make([][]byte, durableBenchBurst)
	for i := range burst {
		burst[i] = payload
	}
	submit := func(total int) error {
		for sent := 0; sent < total; sent += len(burst) {
			if err := reps[0].SubmitBatch(ctx, burst); err != nil {
				return err
			}
		}
		return nil
	}
	applied := func() uint64 {
		var n uint64
		reps[0].Read(func(sm StateMachine) { n = sm.(*benchSM).n })
		return n
	}
	// Warm up, then measure until the submitting member has applied all.
	if err := submit(10 * durableBenchBurst); err != nil {
		return 0, err
	}
	base := applied()
	start := time.Now()
	if err := submit(durableBenchCmds); err != nil {
		return 0, err
	}
	err := reps[0].Wait(ctx, func(sm StateMachine) bool {
		return sm.(*benchSM).n >= base+durableBenchCmds
	})
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	return float64(durableBenchCmds) / elapsed.Seconds(), nil
}

// durableRecoveryPoint journals entries (128-byte payloads, 16-entry batch
// records), optionally checkpoints the whole history, then times a cold
// open + restore + replay.
func durableRecoveryPoint(entries int, checkpointed bool) (DurableBenchRecovery, error) {
	res := DurableBenchRecovery{Entries: entries, Checkpointed: checkpointed}
	dir, err := os.MkdirTemp("", "amoeba-durable-recovery-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)

	log, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return res, err
	}
	payload := make([]byte, 128)
	batch := make([]wal.Entry, 0, 16)
	for seq := uint32(1); seq <= uint32(entries); seq++ {
		batch = append(batch, wal.Entry{Seq: seq, Payload: payload})
		if len(batch) == cap(batch) || seq == uint32(entries) {
			if err := log.Append(batch); err != nil {
				return res, err
			}
			batch = batch[:0]
		}
	}
	if checkpointed {
		if err := log.Checkpoint(uint32(entries), payload); err != nil {
			return res, err
		}
	}
	if err := log.Close(); err != nil {
		return res, err
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		return res, err
	}
	for _, de := range files {
		if info, err := de.Info(); err == nil {
			res.LogBytes += info.Size()
		}
	}

	start := time.Now()
	l2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return res, err
	}
	defer l2.Close()
	var sm benchSM
	if _, err := l2.Recover(
		func(snap []byte, seq uint32) error { return sm.Restore(snap) },
		func(e wal.Entry) error { sm.Apply(e.Payload); return nil },
	); err != nil {
		return res, err
	}
	res.RecoverMs = float64(time.Since(start).Microseconds()) / 1000
	res.Replayed = l2.Stats().RecoveredEntries
	return res, nil
}

// MeasureDurable runs the full durable experiment.
func MeasureDurable() (*DurableBenchResult, error) {
	out := &DurableBenchResult{}
	var base float64
	for _, mode := range []string{"memory", "wal", "wal+fsync"} {
		cps, err := durableThroughputPoint(mode)
		if err != nil {
			return nil, fmt.Errorf("durable throughput (%s): %w", mode, err)
		}
		r := DurableBenchThroughput{Mode: mode, CmdsPerSec: cps}
		if base == 0 {
			base = cps
		}
		if base > 0 {
			r.VsMemory = cps / base
		}
		out.Throughput = append(out.Throughput, r)
	}
	for _, p := range []struct {
		entries int
		ckpt    bool
	}{{1000, false}, {10000, false}, {50000, false}, {50000, true}} {
		r, err := durableRecoveryPoint(p.entries, p.ckpt)
		if err != nil {
			return nil, fmt.Errorf("durable recovery (%d entries): %w", p.entries, err)
		}
		out.Recovery = append(out.Recovery, r)
	}
	return out, nil
}

// DurableBenchJSON renders the experiment for BENCH_durable.json.
func DurableBenchJSON(res *DurableBenchResult) ([]byte, error) {
	out := struct {
		Experiment string              `json:"experiment"`
		Unit       string              `json:"unit"`
		Results    *DurableBenchResult `json:"results"`
	}{
		Experiment: "durable",
		Unit:       "ordered cmds/sec (3-member replicated SM, 64 B cmds, live in-memory fabric) and recovery wall-ms (128 B entries, real disk)",
		Results:    res,
	}
	return json.MarshalIndent(out, "", "  ")
}
