package fuzz

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"amoeba/kv"
)

// ev builds a history event tersely for synthetic histories.
func ev(client int, op kv.HistoryOp, key, val string, found bool, invoke, ret int64) kv.HistoryEvent {
	e := kv.HistoryEvent{Client: client, Op: op, Key: key, Found: found, Invoke: invoke, Return: ret}
	if val != "" {
		e.Val = []byte(val)
	}
	return e
}

func mustLinearizable(t *testing.T, evs []kv.HistoryEvent) {
	t.Helper()
	res := Check(evs, time.Minute)
	if !res.Linearizable || res.Timeout {
		t.Fatalf("history should be linearizable, got %s", res)
	}
}

func mustViolate(t *testing.T, evs []kv.HistoryEvent) {
	t.Helper()
	res := Check(evs, time.Minute)
	if res.Linearizable {
		t.Fatalf("history should NOT be linearizable, got %s", res)
	}
}

func TestCheckSequentialHistory(t *testing.T) {
	mustLinearizable(t, []kv.HistoryEvent{
		ev(0, kv.OpGet, "k", "", false, 0, 10), // absent before any write
		ev(0, kv.OpPut, "k", "a", false, 20, 30),
		ev(0, kv.OpGet, "k", "a", true, 40, 50),
		ev(0, kv.OpDelete, "k", "", true, 60, 70), // existed
		ev(0, kv.OpGet, "k", "", false, 80, 90),
	})
}

func TestCheckStaleReadViolates(t *testing.T) {
	mustViolate(t, []kv.HistoryEvent{
		ev(0, kv.OpPut, "k", "a", false, 0, 10),
		ev(0, kv.OpPut, "k", "b", false, 20, 30),
		ev(1, kv.OpGet, "k", "a", true, 40, 50), // stale: b overwrote a
	})
}

func TestCheckLostWriteViolates(t *testing.T) {
	// The read observes a value nothing wrote.
	mustViolate(t, []kv.HistoryEvent{
		ev(0, kv.OpPut, "k", "a", false, 0, 10),
		ev(1, kv.OpGet, "k", "ghost", true, 20, 30),
	})
}

func TestCheckConcurrentWritesEitherOrder(t *testing.T) {
	// Two overlapping puts: a later read may see either, but a pair of
	// sequential reads must not see them flip-flop.
	base := []kv.HistoryEvent{
		ev(0, kv.OpPut, "k", "a", false, 0, 100),
		ev(1, kv.OpPut, "k", "b", false, 0, 100),
	}
	mustLinearizable(t, append(append([]kv.HistoryEvent(nil), base...),
		ev(2, kv.OpGet, "k", "a", true, 200, 210)))
	mustLinearizable(t, append(append([]kv.HistoryEvent(nil), base...),
		ev(2, kv.OpGet, "k", "b", true, 200, 210)))
	mustViolate(t, append(append([]kv.HistoryEvent(nil), base...),
		ev(2, kv.OpGet, "k", "a", true, 200, 210),
		ev(2, kv.OpGet, "k", "b", true, 220, 230),
		ev(2, kv.OpGet, "k", "a", true, 240, 250))) // b..a..b..a impossible
}

func TestCheckCASSemantics(t *testing.T) {
	casEv := func(client int, key, expect, val string, expectPresent, ok bool, inv, ret int64) kv.HistoryEvent {
		e := ev(client, kv.OpCAS, key, val, ok, inv, ret)
		if expect != "" || expectPresent {
			e.Expect = []byte(expect)
		}
		e.ExpectPresent = expectPresent
		return e
	}
	// Atomic create succeeds once, the second create fails.
	mustLinearizable(t, []kv.HistoryEvent{
		casEv(0, "k", "", "a", false, true, 0, 10),
		casEv(1, "k", "", "b", false, false, 20, 30),
		ev(0, kv.OpGet, "k", "a", true, 40, 50),
	})
	// Both creates claiming success cannot linearize.
	mustViolate(t, []kv.HistoryEvent{
		casEv(0, "k", "", "a", false, true, 0, 10),
		casEv(1, "k", "", "b", false, true, 20, 30),
		ev(0, kv.OpGet, "k", "a", true, 40, 50),
		ev(0, kv.OpGet, "k", "a", true, 60, 70),
	})
	// Successful swap is visible.
	mustLinearizable(t, []kv.HistoryEvent{
		ev(0, kv.OpPut, "k", "a", false, 0, 10),
		casEv(1, "k", "a", "b", true, true, 20, 30),
		ev(0, kv.OpGet, "k", "b", true, 40, 50),
	})
	// A CAS that reported failure must not have taken effect.
	mustViolate(t, []kv.HistoryEvent{
		ev(0, kv.OpPut, "k", "a", false, 0, 10),
		casEv(1, "k", "a", "b", true, false, 20, 30),
		ev(0, kv.OpGet, "k", "b", true, 40, 50),
	})
}

func TestCheckFailedWriteMayOrMayNotApply(t *testing.T) {
	// A write with unknown outcome (Return < 0) can linearize late —
	// explaining a read that sees it…
	mustLinearizable(t, []kv.HistoryEvent{
		ev(0, kv.OpPut, "k", "a", false, 0, 10),
		{Client: 1, Op: kv.OpPut, Key: "k", Val: []byte("b"), Invoke: 20, Return: -1, Err: "timeout"},
		ev(2, kv.OpGet, "k", "b", true, 30, 40),
	})
	// …or never apply at all.
	mustLinearizable(t, []kv.HistoryEvent{
		ev(0, kv.OpPut, "k", "a", false, 0, 10),
		{Client: 1, Op: kv.OpPut, Key: "k", Val: []byte("b"), Invoke: 20, Return: -1, Err: "timeout"},
		ev(2, kv.OpGet, "k", "a", true, 30, 40),
		ev(2, kv.OpGet, "k", "a", true, 50, 60),
	})
	// But it cannot apply BEFORE its invocation.
	mustViolate(t, []kv.HistoryEvent{
		ev(0, kv.OpPut, "k", "a", false, 0, 10),
		ev(2, kv.OpGet, "k", "b", true, 12, 14), // reads b before b was ever invoked
		{Client: 1, Op: kv.OpPut, Key: "k", Val: []byte("b"), Invoke: 20, Return: -1, Err: "timeout"},
	})
}

func TestCheckFailedReadsDropped(t *testing.T) {
	mustLinearizable(t, []kv.HistoryEvent{
		ev(0, kv.OpPut, "k", "a", false, 0, 10),
		{Client: 1, Op: kv.OpGet, Key: "k", Invoke: 20, Return: -1, Err: "timeout"},
		ev(0, kv.OpGet, "k", "a", true, 30, 40),
	})
}

func TestCheckKeysIndependent(t *testing.T) {
	// A violation on one key is found even among clean traffic on others.
	mustViolate(t, []kv.HistoryEvent{
		ev(0, kv.OpPut, "x", "1", false, 0, 10),
		ev(0, kv.OpGet, "x", "1", true, 20, 30),
		ev(1, kv.OpPut, "y", "2", false, 0, 10),
		ev(1, kv.OpGet, "y", "ghost", true, 20, 30),
	})
	res := Check([]kv.HistoryEvent{
		ev(0, kv.OpPut, "x", "1", false, 0, 10),
		ev(1, kv.OpPut, "y", "2", false, 0, 10),
		ev(1, kv.OpGet, "y", "ghost", true, 20, 30),
	}, time.Minute)
	if res.Linearizable || res.Key != "y" {
		t.Fatalf("violation should be attributed to key y, got %s", res)
	}
}

func TestCheckPlantedCorruptionsAreCaught(t *testing.T) {
	// The harness's planted-bug corruptions, applied to a clean synthetic
	// history, must flip the verdict — the checker's self-test.
	clean := []kv.HistoryEvent{
		ev(0, kv.OpPut, "k", "a", false, 0, 10),
		ev(1, kv.OpGet, "k", "a", true, 20, 30),
		ev(0, kv.OpPut, "k", "b", false, 40, 50),
		ev(1, kv.OpGet, "k", "b", true, 60, 70),
	}
	mustLinearizable(t, clean)
	mustViolate(t, plantStaleRead(append([]kv.HistoryEvent(nil), clean...)))
	mustViolate(t, plantLostWrite(append([]kv.HistoryEvent(nil), clean...)))
}

// refLinearizable is a brute-force reference: plain exponential DFS with
// the textbook O(n) minimality scan and no memoisation. Cross-validating
// Check against it on many small random histories guards the optimised
// search (two-smallest-returns minimality, memo keys) against drift.
func refLinearizable(evs []kv.HistoryEvent) bool {
	n := len(evs)
	inv := make([]int64, n)
	ret := make([]int64, n)
	for i, e := range evs {
		inv[i] = e.Invoke
		ret[i] = e.Return
		if ret[i] < 0 {
			ret[i] = math.MaxInt64
		}
	}
	used := make([]bool, n)
	var dfs func(s regState, placed int) bool
	dfs = func(s regState, placed int) bool {
		if placed == n {
			return true
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			minimal := true
			for j := 0; j < n; j++ {
				if j == i || used[j] {
					continue
				}
				if ret[j] < inv[i] {
					minimal = false
					break
				}
			}
			if !minimal {
				continue
			}
			next, ok := apply(s, evs[i])
			if !ok {
				continue
			}
			used[i] = true
			if dfs(next, placed+1) {
				return true
			}
			used[i] = false
		}
		return false
	}
	return dfs(regState{}, 0)
}

// TestCheckMatchesBruteForce fuzzes the checker itself: random small
// single-key histories (both pure-random and derived-from-a-real-register
// with widened windows, so linearizable and violating cases both occur in
// quantity) must get the same verdict from Check and the reference DFS.
func TestCheckMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	vals := []string{"a", "b", "c"}
	agree := map[bool]int{}
	for trial := 0; trial < 600; trial++ {
		n := 3 + rng.Intn(5)
		evs := make([]kv.HistoryEvent, 0, n)
		if trial%2 == 0 {
			// Pure random: windows, ops, and outputs all arbitrary.
			for i := 0; i < n; i++ {
				invk := int64(rng.Intn(60))
				e := kv.HistoryEvent{
					Client: i, Key: "k",
					Op:     kv.HistoryOp(rng.Intn(4)),
					Val:    []byte(vals[rng.Intn(len(vals))]),
					Found:  rng.Intn(2) == 0,
					Invoke: invk, Return: invk + 1 + int64(rng.Intn(30)),
				}
				if e.Op == kv.OpCAS && rng.Intn(2) == 0 {
					e.Expect = []byte(vals[rng.Intn(len(vals))])
					e.ExpectPresent = true
				}
				evs = append(evs, e)
			}
		} else {
			// Derived: run ops sequentially against a real register, then
			// widen windows (always legal) — mostly linearizable histories.
			var s regState
			at := int64(0)
			for i := 0; i < n; i++ {
				e := kv.HistoryEvent{
					Client: i, Key: "k",
					Op:  kv.HistoryOp(rng.Intn(4)),
					Val: []byte(vals[rng.Intn(len(vals))]),
				}
				if e.Op == kv.OpCAS && rng.Intn(2) == 0 {
					e.Expect = []byte(vals[rng.Intn(len(vals))])
					e.ExpectPresent = true
				}
				switch e.Op {
				case kv.OpGet:
					e.Found, e.Val = s.present, append([]byte(nil), s.val...)
				case kv.OpPut:
					s = regState{present: true, val: e.Val}
				case kv.OpDelete:
					e.Found = s.present
					s = regState{}
				case kv.OpCAS:
					matched := false
					if e.ExpectPresent {
						matched = s.present && string(s.val) == string(e.Expect)
					} else {
						matched = !s.present
					}
					e.Found = matched
					if matched {
						s = regState{present: true, val: e.Val}
					}
				}
				e.Invoke = at - int64(rng.Intn(3))
				e.Return = at + int64(rng.Intn(3))
				at += 2
				evs = append(evs, e)
			}
		}
		want := refLinearizable(evs)
		got := Check(evs, time.Minute)
		if got.Timeout {
			t.Fatalf("trial %d: budget exhausted on a %d-op history", trial, n)
		}
		if got.Linearizable != want {
			t.Fatalf("trial %d: Check=%v reference=%v for history %+v", trial, got.Linearizable, want, evs)
		}
		agree[want]++
	}
	if agree[true] == 0 || agree[false] == 0 {
		t.Fatalf("degenerate trial mix: %d linearizable, %d violating", agree[true], agree[false])
	}
}
