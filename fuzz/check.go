// Package fuzz is the adversarial harness of the repository: deterministic,
// seeded fault schedules driven against a live kv cluster under a concurrent
// recorded workload, with a linearizability checker deciding the verdict and
// a shrinker reducing failing schedules to replayable minima.
//
// The paper evaluates the group protocol's fault tolerance by argument and
// by targeted experiments; this package turns that into a machine check.
// A Schedule (schedule.go) is a pure function of its seed: crashes, restarts
// from the write-ahead log, partitions, message loss/reordering/duplication,
// disk-full and torn-tail log faults, reshardings, sequencer kills — all at
// fixed offsets. Harness.Run (harness.go) replays the schedule against a
// cluster while recording every client operation's invocation window
// (kv.History); Check (this file) searches the recorded history for a
// per-key linearization; Shrink (shrink.go) reduces a failing schedule while
// it still fails, and the result prints as one replayable line.
package fuzz

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"amoeba/kv"
)

// The checker implements the Wing & Gong linearizability search with
// Lowe-style memoisation (the algorithm behind porcupine and knossos),
// specialised to the store's per-key register model:
//
//	get          → (value, found) at the op's linearization point
//	put          → value := v
//	delete       → found := false; returns whether the key existed
//	cas(e, v)    → if current matches e: value := v, returns true
//	              (expect absent = atomic create); else returns false
//
// Per-key checking is sound because per-key linearizability is the store's
// documented guarantee: every key lives on exactly one shard at any routing
// epoch, and each shard's total order linearizes its keys. Cross-key
// operations (MGet, BatchPut) decompose into per-key events at recording
// time with shared windows — exactly the claim the API documents.
//
// Failed operations have unknown outcomes: a failed write (Return < 0) may
// commit at any later point, so its window extends to infinity and its
// output is unconstrained; a failed read observed nothing and is dropped.

// CheckResult is the checker's verdict over one history.
type CheckResult struct {
	// Linearizable reports that every key's subhistory has a valid
	// linearization (or the search timed out before refuting one).
	Linearizable bool
	// Timeout reports the search hit its time budget: the history was NOT
	// proven linearizable, but no violation was found either.
	Timeout bool
	// Key is the first key whose subhistory has no linearization (empty
	// when Linearizable).
	Key string
	// Ops counts the events checked (after dropping failed reads).
	Ops int
}

func (r CheckResult) String() string {
	switch {
	case r.Timeout:
		return fmt.Sprintf("undecided (search timeout) over %d ops", r.Ops)
	case r.Linearizable:
		return fmt.Sprintf("linearizable over %d ops", r.Ops)
	default:
		return fmt.Sprintf("NOT linearizable: key %q has no valid linearization (%d ops checked)", r.Key, r.Ops)
	}
}

// Check searches the history for a per-key linearization, spending at most
// budget on the search (0 means a generous default). The search is
// worst-case exponential; the budget turns a pathological history into an
// undecided verdict instead of a hang.
func Check(events []kv.HistoryEvent, budget time.Duration) CheckResult {
	if budget <= 0 {
		budget = 30 * time.Second
	}
	deadline := time.Now().Add(budget)
	byKey := make(map[string][]kv.HistoryEvent)
	ops := 0
	for _, e := range decompose(events) {
		if e.Op == kv.OpGet && e.Failed() {
			continue // observed nothing; constrains nothing
		}
		if e.Op == kv.OpStaleGet {
			// Bounded-staleness reads opt out of linearizability by
			// definition; CheckStale holds them to their own bound.
			continue
		}
		byKey[e.Key] = append(byKey[e.Key], e)
		ops++
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic verdicts and failure attribution
	for _, k := range keys {
		ok, timedOut := checkKey(byKey[k], deadline)
		if timedOut {
			return CheckResult{Linearizable: true, Timeout: true, Ops: ops}
		}
		if !ok {
			return CheckResult{Key: k, Ops: ops}
		}
	}
	return CheckResult{Linearizable: true, Ops: ops}
}

// decompose flattens multi-key OpTxn events into the per-key events the
// register-model search consumes. The per-key claims are sound projections
// of the transactional ones: a committed transaction's write to key k is a
// put on k somewhere in the transaction's window, and each snapshot read is
// a get in the same window. What the projection deliberately drops — that
// the writes share ONE linearization point — is the atomicity claim, which
// CheckAtomic verifies separately over the undecomposed events.
func decompose(events []kv.HistoryEvent) []kv.HistoryEvent {
	out := make([]kv.HistoryEvent, 0, len(events))
	for _, e := range events {
		if e.Op != kv.OpTxn {
			out = append(out, e)
			continue
		}
		if e.Failed() {
			// Unknown outcome: the writes may land at any later point
			// (open window), the reads observed nothing.
			for _, w := range e.Writes {
				out = append(out, kv.HistoryEvent{Client: e.Client, Op: kv.OpPut,
					Key: w.Key, Val: w.Val, Invoke: e.Invoke, Return: -1, Err: e.Err})
			}
			continue
		}
		for i, k := range e.ReadKeys {
			out = append(out, kv.HistoryEvent{Client: e.Client, Op: kv.OpGet, Key: k,
				Val: e.ReadVals[i], Found: e.ReadFound[i], Invoke: e.Invoke, Return: e.Return})
		}
		if !e.Committed {
			continue // known abort: no write landed
		}
		for _, w := range e.Writes {
			pe := kv.HistoryEvent{Client: e.Client, Key: w.Key, Invoke: e.Invoke, Return: e.Return}
			if w.Delete {
				// The txn API reports no per-key existed-before bit, so
				// the delete's output is unobserved: mark the outcome
				// unknown (the weaker, still-sound constraint).
				pe.Op, pe.Err, pe.Return = kv.OpDelete, "txn delete: output unobserved", -1
			} else {
				pe.Op, pe.Val = kv.OpPut, w.Val
			}
			out = append(out, pe)
		}
	}
	return out
}

// StaleResult is the bounded-staleness verdict over a history's OpStaleGet
// reads.
type StaleResult struct {
	// Bounded reports that every examined stale read observed a value that
	// was plausibly the key's value at some instant no earlier than its
	// bound (plus slack) before the invocation.
	Bounded bool
	// Violation describes the first read that observed a value provably
	// older than its bound, or a value no write produced (empty if none).
	Violation string
	// Reads counts the successful stale reads examined.
	Reads int
}

// Ok reports a clean verdict.
func (r StaleResult) Ok() bool { return r.Bounded }

func (r StaleResult) String() string {
	if !r.Bounded {
		return "STALE BOUND VIOLATED: " + r.Violation
	}
	return fmt.Sprintf("stale bound held (%d stale reads)", r.Reads)
}

// CheckStale verifies every OpStaleGet against its bound: the observed value
// must have been the key's value at some instant t in the window
// [Invoke − Bound − slack, Return]. With (near-)unique write values the test
// is exact: the value's producing write w must have invoked by the window's
// end, and no later write (one invoked after w returned) may have completed
// before t — a completed successor proves the value was already replaced.
// Values produced by failed writes pass (their landing time is unknowable),
// and absence observations are not checked (absence has no producing write
// to date). slack absorbs the grant/tick granularity the server's
// conservative freshness accounting already includes.
func CheckStale(events []kv.HistoryEvent, slack time.Duration) StaleResult {
	flat := decompose(events)
	// Per-key writes: value producers and overwrite refuters.
	type write struct {
		val            []byte
		invoke, ret    int64
		failed, erases bool
	}
	writes := make(map[string][]write)
	for _, e := range flat {
		switch e.Op {
		case kv.OpPut:
			writes[e.Key] = append(writes[e.Key], write{val: e.Val, invoke: e.Invoke, ret: e.Return, failed: e.Failed()})
		case kv.OpCAS:
			if e.Failed() || e.Found { // a known-failed compare wrote nothing
				writes[e.Key] = append(writes[e.Key], write{val: e.Val, invoke: e.Invoke, ret: e.Return, failed: e.Failed()})
			}
		case kv.OpDelete:
			writes[e.Key] = append(writes[e.Key], write{invoke: e.Invoke, ret: e.Return, failed: e.Failed(), erases: true})
		}
	}
	res := StaleResult{Bounded: true}
	for _, e := range events {
		if e.Op != kv.OpStaleGet || e.Failed() || !e.Found {
			continue
		}
		res.Reads++
		t0 := e.Invoke - int64(e.Bound+slack)
		plausible := false
		sawProducer := false
		for _, w := range writes[e.Key] {
			if w.erases || string(w.val) != string(e.Val) {
				continue
			}
			sawProducer = true
			if w.failed {
				// The write's landing time is unknown: it may have applied
				// moments before the read. Cannot refute.
				plausible = true
				break
			}
			if w.invoke > e.Return {
				continue // value from the future: not this producer
			}
			t := t0
			if w.invoke > t {
				t = w.invoke // value fresh as of its own write: within bound
			}
			replaced := false
			for _, w2 := range writes[e.Key] {
				if !w2.failed && w2.invoke >= w.ret && w2.ret <= t {
					replaced = true // a successor completed before t
					break
				}
			}
			if !replaced {
				plausible = true
				break
			}
		}
		if !plausible {
			res.Bounded = false
			what := "provably replaced before the bound window"
			if !sawProducer {
				what = "a value no write produced"
			}
			res.Violation = fmt.Sprintf("client %d staleget %q observed %q (bound %s): %s",
				e.Client, e.Key, e.Val, e.Bound, what)
			return res
		}
	}
	return res
}

// BankSpec names the bank-account keys the workload maintains by balance-
// conserving transfers, and the sum every consistent snapshot of all of
// them must observe. Values encode the balance as a decimal prefix
// terminated by '|' (the suffix keeps writes globally unique).
type BankSpec struct {
	Keys  []string
	Total int64
}

// bankBalance parses the balance prefix of a bank value.
func bankBalance(val []byte) (int64, bool) {
	s := string(val)
	if i := strings.IndexByte(s, '|'); i >= 0 {
		s = s[:i]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	return n, err == nil
}

// AtomicResult is the multi-key atomicity verdict over a history's
// transactions and snapshots.
type AtomicResult struct {
	// Atomic reports that no torn transaction and no bank-invariant
	// violation was found.
	Atomic bool
	// Torn describes the first snapshot observed to contain a partially
	// applied committed transaction (empty if none).
	Torn string
	// BankViolation describes the first full-coverage snapshot whose
	// balances do not sum to the spec total (empty if none).
	BankViolation string
	// Snapshots counts the successful multi-key snapshots examined.
	Snapshots int
}

// Ok reports a clean verdict.
func (r AtomicResult) Ok() bool { return r.Atomic }

func (r AtomicResult) String() string {
	switch {
	case r.Torn != "":
		return "TORN TRANSACTION: " + r.Torn
	case r.BankViolation != "":
		return "BANK INVARIANT VIOLATED: " + r.BankViolation
	default:
		return fmt.Sprintf("atomic over %d snapshots", r.Snapshots)
	}
}

// CheckAtomic verifies the multi-key claims the per-key search cannot see:
//
//   - No torn transactions: a snapshot that observes SOME of a committed
//     transaction's writes must not, for another key the transaction wrote,
//     observe a value that certainly predates the transaction (its writer
//     returned before the transaction was invoked). Real-time certainty
//     makes the test sound under concurrency — overlapping writers are
//     never flagged.
//   - The bank invariant: every successful snapshot covering all of
//     spec.Keys sums to spec.Total. Transfers move balance between
//     accounts atomically, so any other sum is a torn or lost update.
//
// spec may be nil to skip the bank check.
func CheckAtomic(events []kv.HistoryEvent, spec *BankSpec) AtomicResult {
	// writers pins every unique written value to its event, for the
	// predates-the-transaction test.
	writers := make(map[string]kv.HistoryEvent)
	note := func(val []byte, e kv.HistoryEvent) {
		if len(val) > 0 {
			writers[string(val)] = e
		}
	}
	var snaps, txns []kv.HistoryEvent
	for _, e := range events {
		switch e.Op {
		case kv.OpPut:
			note(e.Val, e)
		case kv.OpCAS:
			if !e.Failed() && e.Found {
				note(e.Val, e)
			}
		case kv.OpTxn:
			if e.Failed() {
				continue
			}
			if e.Committed {
				for _, w := range e.Writes {
					if !w.Delete {
						note(w.Val, e)
					}
				}
				if len(e.Writes) >= 2 {
					txns = append(txns, e)
				}
			}
			if len(e.ReadKeys) > 0 {
				snaps = append(snaps, e)
			}
		}
	}

	res := AtomicResult{Atomic: true, Snapshots: len(snaps)}
	for _, s := range snaps {
		obs := make(map[string]int, len(s.ReadKeys))
		for i, k := range s.ReadKeys {
			obs[k] = i
		}
		for _, t := range txns {
			var covered, seen []string
			for _, w := range t.Writes {
				i, ok := obs[w.Key]
				if !ok || w.Delete {
					continue
				}
				covered = append(covered, w.Key)
				if s.ReadFound[i] && bytes.Equal(s.ReadVals[i], w.Val) {
					seen = append(seen, w.Key)
				}
			}
			if len(covered) < 2 || len(seen) == 0 || len(seen) == len(covered) {
				continue
			}
			// Partial observation: torn only if an unseen key's observed
			// value certainly predates the transaction. An absent key is
			// never flagged here — a later delete explains it (the bank
			// check separately rejects absent accounts).
			for _, k := range covered {
				i := obs[k]
				if bytesContains(seen, k) || !s.ReadFound[i] {
					continue
				}
				w, ok := writers[string(s.ReadVals[i])]
				if ok && !w.Failed() && w.Return < t.Invoke {
					res.Atomic = false
					res.Torn = fmt.Sprintf(
						"snapshot by client %d at [%d,%d] observes txn (client %d at [%d,%d]) write to %q but a pre-txn value for %q",
						s.Client, s.Invoke, s.Return, t.Client, t.Invoke, t.Return, seen[0], k)
					return res
				}
			}
		}
	}

	if spec != nil {
		for _, s := range snaps {
			obs := make(map[string]int, len(s.ReadKeys))
			for i, k := range s.ReadKeys {
				obs[k] = i
			}
			sum, full := int64(0), true
			for _, k := range spec.Keys {
				i, ok := obs[k]
				if !ok {
					full = false
					break
				}
				if !s.ReadFound[i] {
					res.Atomic = false
					res.BankViolation = fmt.Sprintf(
						"snapshot by client %d at [%d,%d] finds account %q absent", s.Client, s.Invoke, s.Return, k)
					return res
				}
				b, ok2 := bankBalance(s.ReadVals[i])
				if !ok2 {
					full = false
					break
				}
				sum += b
			}
			if full && sum != spec.Total {
				res.Atomic = false
				res.BankViolation = fmt.Sprintf(
					"snapshot by client %d at [%d,%d] sums to %d, want %d", s.Client, s.Invoke, s.Return, sum, spec.Total)
				return res
			}
		}
	}
	return res
}

// bytesContains reports whether list contains k.
func bytesContains(list []string, k string) bool {
	for _, s := range list {
		if s == k {
			return true
		}
	}
	return false
}

// regState is one key's state: the value, or absence.
type regState struct {
	present bool
	val     []byte
}

// apply linearizes e against s, reporting whether e's recorded output is
// consistent and the post-state. Transitions are deterministic in the
// pre-state; failed ops (unknown output) skip the output check.
func apply(s regState, e kv.HistoryEvent) (regState, bool) {
	unknown := e.Failed()
	switch e.Op {
	case kv.OpGet:
		if !unknown {
			if e.Found != s.present {
				return s, false
			}
			if s.present && !bytes.Equal(e.Val, s.val) {
				return s, false
			}
		}
		return s, true
	case kv.OpPut:
		return regState{present: true, val: e.Val}, true
	case kv.OpDelete:
		if !unknown && e.Found != s.present {
			return s, false
		}
		return regState{}, true
	case kv.OpCAS:
		matched := false
		if e.ExpectPresent {
			matched = s.present && bytes.Equal(s.val, e.Expect)
		} else {
			matched = !s.present
		}
		if !unknown && e.Found != matched {
			return s, false
		}
		if matched {
			return regState{present: true, val: e.Val}, true
		}
		return s, true
	}
	return s, false
}

// checkKey runs the linearization search over one key's events. Reports
// (linearizable, timedOut); timedOut true means the search gave up.
func checkKey(evs []kv.HistoryEvent, deadline time.Time) (bool, bool) {
	n := len(evs)
	if n == 0 {
		return true, false
	}
	inv := make([]int64, n)
	ret := make([]int64, n)
	order := make([]int, n)
	for i := range evs {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return evs[order[a]].Invoke < evs[order[b]].Invoke })
	sorted := make([]kv.HistoryEvent, n)
	for i, idx := range order {
		sorted[i] = evs[idx]
		inv[i] = sorted[i].Invoke
		ret[i] = sorted[i].Return
		if ret[i] < 0 { // never returned / outcome unknown: window open-ended
			ret[i] = math.MaxInt64
		}
	}

	// retOrder lists op indices by ascending return time; the minimality
	// test below needs only the two smallest returns among remaining ops.
	retOrder := make([]int, n)
	for i := range retOrder {
		retOrder[i] = i
	}
	sort.SliceStable(retOrder, func(a, b int) bool { return ret[retOrder[a]] < ret[retOrder[b]] })

	words := (n + 63) / 64
	done := make([]uint64, words)
	// seen memoises refuted (linearized-set, state) configurations.
	seen := make(map[string]bool)
	type frame struct {
		state regState
		// next is the candidate index to try at this depth.
		next int
		// chosen is the op linearized to descend from this frame.
		chosen int
	}
	stack := make([]frame, 1, n+1)
	stack[0] = frame{state: regState{}, chosen: -1}
	linearized := 0
	checks := 0

	memoKey := func(s regState) string {
		b := make([]byte, 0, words*8+1+len(s.val))
		for _, w := range done {
			b = binary.LittleEndian.AppendUint64(b, w)
		}
		if s.present {
			b = append(b, '=')
			b = append(b, s.val...)
		}
		return string(b)
	}

	for {
		if checks++; checks&1023 == 0 && time.Now().After(deadline) {
			return true, true
		}
		if linearized == n {
			return true, false
		}
		top := &stack[len(stack)-1]
		// The two earliest returns among remaining ops: candidate i is a
		// legal first op iff no OTHER remaining op returned before i
		// invoked, i.e. the earliest remaining return excluding i is not
		// before inv[i]. The done set is fixed for the whole candidate
		// scan, so two values cover every candidate in O(1).
		min1, min2 := int64(math.MaxInt64), int64(math.MaxInt64)
		min1idx := -1
		for _, idx := range retOrder {
			if done[idx/64]&(1<<(idx%64)) != 0 {
				continue
			}
			if min1idx < 0 {
				min1, min1idx = ret[idx], idx
				continue
			}
			min2 = ret[idx]
			break
		}
		advanced := false
		for i := top.next; i < n; i++ {
			if done[i/64]&(1<<(i%64)) != 0 {
				continue
			}
			minOther := min1
			if i == min1idx {
				minOther = min2
			}
			if minOther < inv[i] {
				continue
			}
			next, ok := apply(top.state, sorted[i])
			if !ok {
				continue
			}
			done[i/64] |= 1 << (i % 64)
			key := memoKey(next)
			if seen[key] {
				done[i/64] &^= 1 << (i % 64)
				continue
			}
			top.next = i + 1
			top.chosen = i
			linearized++
			stack = append(stack, frame{state: next, chosen: -1})
			advanced = true
			break
		}
		if advanced {
			continue
		}
		// Dead end: every remaining choice refuted. Record and backtrack.
		seen[memoKey(top.state)] = true
		if len(stack) == 1 {
			return false, false
		}
		stack = stack[:len(stack)-1]
		parent := &stack[len(stack)-1]
		i := parent.chosen
		done[i/64] &^= 1 << (i % 64)
		linearized--
		parent.chosen = -1
	}
}
