package fuzz

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind names one schedulable fault or reconfiguration.
type Kind int

// The event vocabulary. Node arguments are placement slots (kv node
// indices); rates are probabilities in [0,1).
const (
	// EvCrash crashes node A: its store and kernel close with no protocol
	// goodbye. Its write-ahead logs survive.
	EvCrash Kind = iota
	// EvRestart restarts crashed node A from its logs (kv.Open): recover,
	// rejoin live groups, state-transfer what the logs missed.
	EvRestart
	// EvKillAll crashes every live node — the whole-cluster power cut
	// replication cannot mask.
	EvKillAll
	// EvRestartAll restarts every crashed node; when the whole cluster is
	// down this is the cold start: recovery beacons, longest-log election,
	// group reformation from the WAL.
	EvRestartAll
	// EvPartition cuts the link between nodes A and B (both keep talking
	// to everyone else — the split that drives conflicting suspicions).
	EvPartition
	// EvHeal removes every pairwise partition.
	EvHeal
	// EvLoss sets the network frame-loss probability to Rate.
	EvLoss
	// EvReorder sets the frame-reordering probability to Rate.
	EvReorder
	// EvDuplicate sets the frame-duplication probability to Rate.
	EvDuplicate
	// EvNetClean zeroes loss, reorder, and duplication.
	EvNetClean
	// EvDiskFull makes node A's next B write-ahead-log appends fail with
	// ENOSPC (clean failures; the logs stay usable).
	EvDiskFull
	// EvTornWrite tears node A's next log append mid-record: the replica's
	// log poisons itself and the replica degrades to in-memory operation —
	// the path a real torn tail exercises at the next reboot.
	EvTornWrite
	// EvReshard resplits the store to A shard groups through the routing
	// epoch protocol, live.
	EvReshard
	// EvCrashSequencer crashes whichever node currently sequences shard
	// A's group — the targeted kill that forces a sequencer handoff via
	// group recovery.
	EvCrashSequencer
)

var kindNames = map[Kind]string{
	EvCrash: "crash", EvRestart: "restart", EvKillAll: "killall",
	EvRestartAll: "restartall", EvPartition: "partition", EvHeal: "heal",
	EvLoss: "loss", EvReorder: "reorder", EvDuplicate: "dup",
	EvNetClean: "netclean", EvDiskFull: "diskfull", EvTornWrite: "torn",
	EvReshard: "reshard", EvCrashSequencer: "crashseq",
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// Event is one scheduled fault: Kind's action with arguments A, B, Rate,
// fired At after the run starts.
type Event struct {
	At   time.Duration
	Kind Kind
	A, B int
	Rate float64
}

// String renders one event in the replay grammar: kind[(args)]@offset.
func (e Event) String() string {
	name := kindNames[e.Kind]
	switch e.Kind {
	case EvCrash, EvRestart, EvTornWrite, EvReshard, EvCrashSequencer:
		return fmt.Sprintf("%s(%d)@%s", name, e.A, e.At)
	case EvDiskFull, EvPartition:
		return fmt.Sprintf("%s(%d,%d)@%s", name, e.A, e.B, e.At)
	case EvLoss, EvReorder, EvDuplicate:
		return fmt.Sprintf("%s(%g)@%s", name, e.Rate, e.At)
	default: // killall, restartall, heal, netclean
		return fmt.Sprintf("%s@%s", name, e.At)
	}
}

// Schedule is a deterministic fault plan: the seed reproduces both the
// network's fault-injection randomness and the workload's key/value choices,
// and the events fire at fixed offsets. Same seed + same schedule + same
// binary ⇒ same run, which is what makes a failure a bug report.
type Schedule struct {
	Seed   int64
	Events []Event
}

// String renders the schedule as one replayable line, parseable by
// ParseSchedule and accepted by cmd/amoeba-fuzz's -replay flag:
//
//	seed=7 events=[crash(1)@200ms restart(1)@1.2s heal@2s]
func (s Schedule) String() string {
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return fmt.Sprintf("seed=%d events=[%s]", s.Seed, strings.Join(parts, " "))
}

// ParseSchedule parses the String form back into a schedule.
func ParseSchedule(line string) (Schedule, error) {
	var s Schedule
	line = strings.TrimSpace(line)
	rest, ok := strings.CutPrefix(line, "seed=")
	if !ok {
		return s, fmt.Errorf("fuzz: schedule must start with seed=: %q", line)
	}
	seedStr, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return s, fmt.Errorf("fuzz: schedule missing events=[...]: %q", line)
	}
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return s, fmt.Errorf("fuzz: bad seed %q: %v", seedStr, err)
	}
	s.Seed = seed
	rest = strings.TrimSpace(rest)
	body, ok := strings.CutPrefix(rest, "events=[")
	if !ok || !strings.HasSuffix(body, "]") {
		return s, fmt.Errorf("fuzz: schedule missing events=[...]: %q", line)
	}
	body = strings.TrimSuffix(body, "]")
	for _, tok := range strings.Fields(body) {
		e, err := parseEvent(tok)
		if err != nil {
			return s, err
		}
		s.Events = append(s.Events, e)
	}
	return s, nil
}

func parseEvent(tok string) (Event, error) {
	var e Event
	head, offStr, ok := strings.Cut(tok, "@")
	if !ok {
		return e, fmt.Errorf("fuzz: event %q missing @offset", tok)
	}
	off, err := time.ParseDuration(offStr)
	if err != nil {
		return e, fmt.Errorf("fuzz: event %q: bad offset: %v", tok, err)
	}
	e.At = off
	name := head
	var args []string
	if i := strings.IndexByte(head, '('); i >= 0 {
		if !strings.HasSuffix(head, ")") {
			return e, fmt.Errorf("fuzz: event %q: unclosed args", tok)
		}
		name = head[:i]
		args = strings.Split(head[i+1:len(head)-1], ",")
	}
	kind, ok := kindByName[name]
	if !ok {
		return e, fmt.Errorf("fuzz: unknown event kind %q", name)
	}
	e.Kind = kind
	atoi := func(s string) (int, error) { return strconv.Atoi(strings.TrimSpace(s)) }
	switch kind {
	case EvCrash, EvRestart, EvTornWrite, EvReshard, EvCrashSequencer:
		if len(args) != 1 {
			return e, fmt.Errorf("fuzz: event %q wants 1 argument", tok)
		}
		if e.A, err = atoi(args[0]); err != nil {
			return e, fmt.Errorf("fuzz: event %q: %v", tok, err)
		}
	case EvDiskFull, EvPartition:
		if len(args) != 2 {
			return e, fmt.Errorf("fuzz: event %q wants 2 arguments", tok)
		}
		if e.A, err = atoi(args[0]); err != nil {
			return e, fmt.Errorf("fuzz: event %q: %v", tok, err)
		}
		if e.B, err = atoi(args[1]); err != nil {
			return e, fmt.Errorf("fuzz: event %q: %v", tok, err)
		}
	case EvLoss, EvReorder, EvDuplicate:
		if len(args) != 1 {
			return e, fmt.Errorf("fuzz: event %q wants 1 argument", tok)
		}
		if e.Rate, err = strconv.ParseFloat(strings.TrimSpace(args[0]), 64); err != nil {
			return e, fmt.Errorf("fuzz: event %q: %v", tok, err)
		}
	default:
		if len(args) != 0 {
			return e, fmt.Errorf("fuzz: event %q wants no arguments", tok)
		}
	}
	return e, nil
}

// Profile shapes schedule generation: which fault families Generate draws
// from, over what horizon, against what cluster.
type Profile struct {
	// Nodes is the cluster size the schedule targets (default 3).
	Nodes int
	// Shards is the store's bootstrap shard count (default 2), bounding
	// reshard and crash-sequencer arguments.
	Shards int
	// Horizon is the schedule's length (default 3s); events land in
	// [Horizon/10, Horizon).
	Horizon time.Duration
	// Events is how many events to draw (default 6).
	Events int
	// Families selects the fault families to draw from; nil means all.
	Families []Family
}

// Family groups event kinds for profile selection.
type Family int

// Fault families. A family contributes its kinds to the generator's pool;
// recovery events (restart, heal, netclean) ride with their faults so
// generated schedules tend to let the cluster limp back.
const (
	// FamCrash: crash, restart, crash-sequencer.
	FamCrash Family = iota
	// FamRestart: whole-cluster kill and cold restart.
	FamRestart
	// FamPartition: pairwise partitions and heals.
	FamPartition
	// FamLoss: message loss, reordering, duplication, and the cleanup.
	FamLoss
	// FamDisk: WAL disk-full and torn-tail injection.
	FamDisk
	// FamReshard: live resharding.
	FamReshard
)

var familyKinds = map[Family][]Kind{
	FamCrash:     {EvCrash, EvRestart, EvRestart, EvCrashSequencer},
	FamRestart:   {EvKillAll, EvRestartAll, EvRestartAll},
	FamPartition: {EvPartition, EvHeal},
	FamLoss:      {EvLoss, EvReorder, EvDuplicate, EvNetClean},
	FamDisk:      {EvDiskFull, EvTornWrite},
	FamReshard:   {EvReshard},
}

func (p Profile) withDefaults() Profile {
	if p.Nodes <= 0 {
		p.Nodes = 3
	}
	if p.Shards <= 0 {
		p.Shards = 2
	}
	if p.Horizon <= 0 {
		p.Horizon = 3 * time.Second
	}
	if p.Events <= 0 {
		p.Events = 6
	}
	if len(p.Families) == 0 {
		p.Families = []Family{FamCrash, FamRestart, FamPartition, FamLoss, FamDisk, FamReshard}
	}
	return p
}

// Generate draws a schedule deterministically from the seed: the same seed
// and profile always produce the same schedule. The generator is seeded
// separately from the run (the schedule's Seed feeds the network and
// workload), so regenerating a schedule never perturbs its replay.
func Generate(seed int64, p Profile) Schedule {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	var pool []Kind
	for _, f := range p.Families {
		pool = append(pool, familyKinds[f]...)
	}
	s := Schedule{Seed: seed}
	lo := p.Horizon / 10
	span := p.Horizon - lo
	for i := 0; i < p.Events; i++ {
		e := Event{
			At:   lo + time.Duration(rng.Int63n(int64(span))),
			Kind: pool[rng.Intn(len(pool))],
		}
		switch e.Kind {
		case EvCrash, EvRestart, EvTornWrite:
			e.A = rng.Intn(p.Nodes)
		case EvDiskFull:
			e.A = rng.Intn(p.Nodes)
			e.B = 1 + rng.Intn(8) // appends to fail
		case EvPartition:
			if p.Nodes < 2 {
				e.Kind = EvHeal // nothing to cut on a single node
				break
			}
			e.A = rng.Intn(p.Nodes)
			e.B = (e.A + 1 + rng.Intn(p.Nodes-1)) % p.Nodes
		case EvLoss:
			e.Rate = 0.05 + 0.25*rng.Float64()
		case EvReorder, EvDuplicate:
			e.Rate = 0.05 + 0.35*rng.Float64()
		case EvReshard:
			// Split or merge around the bootstrap count, never to zero.
			opts := []int{1, 2, p.Shards + 1, p.Shards * 2}
			e.A = opts[rng.Intn(len(opts))]
		case EvCrashSequencer:
			e.A = rng.Intn(p.Shards)
		}
		s.Events = append(s.Events, e)
	}
	sort.SliceStable(s.Events, func(a, b int) bool { return s.Events[a].At < s.Events[b].At })
	return s
}
