package fuzz

import (
	"strings"
	"testing"
	"time"
)

// TestHarnessCleanRunLinearizable: no faults at all — the baseline. A
// failure here is a harness or checker bug, not a protocol bug.
func TestHarnessCleanRunLinearizable(t *testing.T) {
	cfg := Config{Clients: 3, Keys: 3, Tail: 400 * time.Millisecond, Logf: t.Logf}
	res := Run(cfg, Schedule{Seed: 1})
	if res.Err != nil {
		t.Fatalf("harness error: %v", res.Err)
	}
	if !res.Check.Linearizable || res.Check.Timeout {
		t.Fatalf("clean run not linearizable: %s\nflight:\n%s", res, res.Flight)
	}
	if res.Ops == 0 {
		t.Fatal("clean run recorded no operations")
	}
}

// TestHarnessPlantedBugsCaught: the same clean run with history corruption
// planted must verdict non-linearizable — the end-to-end checker self-test
// the acceptance criteria demand.
func TestHarnessPlantedBugsCaught(t *testing.T) {
	for _, mode := range []string{"stale-read", "lost-write"} {
		cfg := Config{Clients: 2, Keys: 2, Tail: 300 * time.Millisecond}
		cfg.PlantStaleRead = mode == "stale-read"
		cfg.PlantLostWrite = mode == "lost-write"
		res := Run(cfg, Schedule{Seed: 2})
		if res.Err != nil {
			t.Fatalf("%s: harness error: %v", mode, res.Err)
		}
		if res.Check.Linearizable {
			t.Fatalf("%s: planted corruption not caught: %s", mode, res)
		}
		if res.Flight == "" {
			t.Fatalf("%s: failing run should capture a flight dump", mode)
		}
	}
}

// TestHarnessTxnWorkloadAtomic: the transactional half of the workload —
// bank transfers and full snapshots — must verdict atomic on a clean run,
// and must have actually exercised snapshots (the bank ops fire often
// enough that a run recording none is a workload regression).
func TestHarnessTxnWorkloadAtomic(t *testing.T) {
	cfg := Config{Clients: 3, Keys: 3, Accounts: 3, Tail: 500 * time.Millisecond, Logf: t.Logf}
	res := Run(cfg, Schedule{Seed: 4})
	if res.Err != nil {
		t.Fatalf("harness error: %v", res.Err)
	}
	if !res.Ok() {
		t.Fatalf("clean txn run not clean: %s\nflight:\n%s", res, res.Flight)
	}
	if res.Atomic.Snapshots == 0 {
		t.Fatal("txn workload recorded no snapshots")
	}
}

// TestHarnessPlantedTornTxnCaught: a clean run with a torn-transaction
// observation planted into a recorded snapshot must fail the atomicity
// verdict — the checker self-test for the multi-key model.
func TestHarnessPlantedTornTxnCaught(t *testing.T) {
	for attempt := 0; ; attempt++ {
		cfg := Config{Clients: 3, Keys: 3, Accounts: 3, Tail: 500 * time.Millisecond, PlantTornTxn: true}
		res := Run(cfg, Schedule{Seed: int64(5 + attempt)})
		if res.Err != nil {
			t.Fatalf("harness error: %v", res.Err)
		}
		if res.Atomic.Torn != "" {
			return // caught, as demanded
		}
		// The plant needs a committed transfer plus a covering snapshot in
		// the history; a sparse run may lack one. Retry a fresh seed.
		if attempt >= 2 {
			t.Fatalf("planted torn transaction not caught: %s", res)
		}
	}
}

// TestHarnessLeaseWorkloadClean: leases on, no faults — lease-served reads
// feed the linearizability checker as ordinary reads and the mixed-in
// StaleGets pass the bounded-staleness check, with both paths demonstrably
// exercised (reads actually served from leases / within bounds).
func TestHarnessLeaseWorkloadClean(t *testing.T) {
	cfg := Config{Clients: 3, Keys: 3, Leases: true, Tail: 800 * time.Millisecond, Logf: t.Logf}
	res := Run(cfg, Schedule{Seed: 14})
	if res.Err != nil {
		t.Fatalf("harness error: %v", res.Err)
	}
	if !res.Ok() {
		t.Fatalf("clean lease run not clean: %s\nflight:\n%s", res, res.Flight)
	}
	if res.Stale.Reads == 0 {
		t.Fatal("lease workload recorded no stale reads")
	}
	if res.LeaseReads == 0 {
		t.Fatal("no reads were served from a lease (lease path never engaged)")
	}
	t.Logf("lease run: %d lease-served, %d stale-served, %d stale reads checked",
		res.LeaseReads, res.StaleReads, res.Stale.Reads)
}

// TestHarnessPlantedStaleServeCaught: a clean lease run with an over-stale
// serve planted into a recorded StaleGet must fail the bounded-staleness
// verdict — the self-test that keeps CheckStale honest.
func TestHarnessPlantedStaleServeCaught(t *testing.T) {
	for attempt := 0; ; attempt++ {
		cfg := Config{Clients: 3, Keys: 3, Leases: true, Tail: 800 * time.Millisecond,
			PlantStaleServe: true}
		res := Run(cfg, Schedule{Seed: int64(15 + attempt)})
		if res.Stale.Reads > 0 && !res.Stale.Ok() {
			if res.Flight == "" {
				t.Fatal("failing run should capture a flight dump")
			}
			return // caught, as demanded
		}
		// The plant needs at least one successful stale read in the
		// history; a sparse run may lack one. Retry a fresh seed.
		if attempt >= 2 {
			t.Fatalf("planted stale serve not caught: %s (err %v)", res, res.Err)
		}
	}
}

// TestHarnessFaultScheduleRun: a real schedule — crash+restart, a
// partition+heal, message loss, and a disk fault — must complete with a
// linearizable history (full resilience plus the WAL make every injected
// fault maskable).
func TestHarnessFaultScheduleRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fault schedule")
	}
	sched := Schedule{Seed: 3, Events: []Event{
		{At: 200 * time.Millisecond, Kind: EvLoss, Rate: 0.10},
		{At: 400 * time.Millisecond, Kind: EvCrash, A: 1},
		{At: 600 * time.Millisecond, Kind: EvPartition, A: 0, B: 2},
		{At: 900 * time.Millisecond, Kind: EvHeal},
		{At: 1000 * time.Millisecond, Kind: EvNetClean},
		{At: 1100 * time.Millisecond, Kind: EvDiskFull, A: 0, B: 3},
		{At: 1200 * time.Millisecond, Kind: EvRestart, A: 1},
	}}
	res := Run(Config{Clients: 3, Keys: 3, Tail: 1500 * time.Millisecond, Logf: t.Logf}, sched)
	if res.Err != nil {
		t.Fatalf("harness error: %v", res.Err)
	}
	if !res.Check.Linearizable {
		t.Fatalf("fault schedule broke linearizability: %s\nflight:\n%s", res, res.Flight)
	}
	if res.Applied != len(sched.Events) {
		t.Fatalf("applied %d of %d events", res.Applied, len(sched.Events))
	}
}

// TestHarnessQuorumlessSplitBrainRegression pins the harness's first real
// find, shrunk by the shrinker from generated seed 7: kill shard 1's
// sequencer, partition the remaining pair, crash the third node. Under
// quorum-less recovery (MinSurvivors 1) both partition sides complete the
// reset protocol independently — two sequencers, two divergent total
// orders, a non-linearizable history. The majority default masks the same
// schedule. The fault is timing-dependent enough that a single quorum-less
// run occasionally recovers cleanly, so the violating half retries.
func TestHarnessQuorumlessSplitBrainRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fault schedule")
	}
	const line = "seed=7 events=[crashseq(1)@1.604329618s partition(2,0)@1.736733952s crash(1)@2.172117713s]"
	sched, err := ParseSchedule(line)
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}

	caught := false
	for attempt := 0; attempt < 3 && !caught; attempt++ {
		res := Run(Config{MinSurvivors: -1}, sched)
		if res.Err != nil {
			t.Fatalf("harness error: %v", res.Err)
		}
		caught = !res.Check.Linearizable && !res.Check.Timeout
	}
	if !caught {
		t.Fatalf("quorum-less recovery under %s should split-brain", line)
	}

	res := Run(Config{}, sched) // majority quorum: the default masks it
	if res.Err != nil {
		t.Fatalf("harness error: %v", res.Err)
	}
	if !res.Check.Linearizable {
		t.Fatalf("majority quorum should mask the schedule: %s\nflight:\n%s", res, res.Flight)
	}
}

// TestHarnessPlantedDivergenceCaught: bit-flip one value in one replica's
// live state — corruption the recorded history cannot see, because the
// replica still answers the protocol correctly — and the always-on
// sequenced auditor must flip the verdict, localized to an audit seq.
func TestHarnessPlantedDivergenceCaught(t *testing.T) {
	cfg := Config{
		Clients:         2,
		Keys:            3,
		Tail:            1500 * time.Millisecond,
		AuditEvery:      50 * time.Millisecond,
		PlantDivergence: true,
		Logf:            t.Logf,
	}
	res := Run(cfg, Schedule{Seed: 11})
	if res.Err != nil {
		t.Fatalf("harness error: %v", res.Err)
	}
	if len(res.Divergences) == 0 {
		t.Fatalf("planted state corruption not detected (%d audits ran): %s", res.Audits, res)
	}
	if res.Ok() {
		t.Fatalf("verdict did not flip on divergence: %s", res)
	}
	div := res.Divergences[0]
	if div.Seq == 0 || div.ID == 0 || len(div.Ranges) == 0 {
		t.Fatalf("divergence not localized: %+v", div)
	}
	if !strings.Contains(res.String(), "divergence") || !strings.Contains(res.String(), "seed=") {
		t.Fatalf("failure line does not report the divergence with the replay seed: %s", res)
	}
	if res.Flight == "" {
		t.Fatal("divergent run should capture a flight dump")
	}
}

// TestHarnessAuditorLiveDuringSchedules: a clean run with the default config
// must actually have audited — comparisons happened and no divergence was
// found. This pins the auditor as always-on during sweeps, not an opt-in.
func TestHarnessAuditorLiveDuringSchedules(t *testing.T) {
	cfg := Config{Clients: 2, Keys: 2, Tail: 600 * time.Millisecond, Logf: t.Logf}
	res := Run(cfg, Schedule{Seed: 12})
	if res.Err != nil {
		t.Fatalf("harness error: %v", res.Err)
	}
	if res.Audits == 0 {
		t.Fatal("no cross-replica digest comparisons ran during the schedule")
	}
	if len(res.Divergences) != 0 {
		t.Fatalf("clean run reported divergence: %+v", res.Divergences)
	}
}
