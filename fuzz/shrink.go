package fuzz

// Shrinking: a failing schedule is rarely minimal — six faults fired, one
// broke the protocol. Shrink reduces the schedule while the failure still
// reproduces, so the replay line that lands in a bug report (and in the
// regression suite as a pinned seed) is the smallest trigger we can find.
//
// The predicate re-runs the harness, so shrinking an expensive failure costs
// a handful of re-runs: prefix truncation is a binary search (O(log n)
// runs), event dropping one pass of O(n) runs, repeated until a fixed point.

// Shrink returns the smallest schedule it can derive from s that still
// satisfies fails. fails must be true for s itself (callers pass the
// schedule that just failed); if it is not, s is returned unchanged. The
// seed is never altered — determinism ties the failure to it.
func Shrink(s Schedule, fails func(Schedule) bool) Schedule {
	if !fails(s) {
		return s
	}
	for {
		before := len(s.Events)
		s = shrinkPrefix(s, fails)
		s = shrinkDrop(s, fails)
		if len(s.Events) >= before {
			return s
		}
	}
}

// shrinkPrefix binary-searches the shortest failing prefix: events after the
// trigger are noise by construction.
func shrinkPrefix(s Schedule, fails func(Schedule) bool) Schedule {
	lo, hi := 0, len(s.Events) // invariant: prefix of hi fails; prefix of lo unknown-or-passes
	for lo < hi {
		mid := (lo + hi) / 2
		cand := Schedule{Seed: s.Seed, Events: s.Events[:mid]}
		if fails(cand) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return Schedule{Seed: s.Seed, Events: s.Events[:hi]}
}

// shrinkDrop removes events one at a time, keeping each removal that still
// fails. One left-to-right pass; the fixed-point loop in Shrink reruns it
// after truncation exposes new droppables.
func shrinkDrop(s Schedule, fails func(Schedule) bool) Schedule {
	for i := 0; i < len(s.Events); {
		cand := Schedule{Seed: s.Seed, Events: make([]Event, 0, len(s.Events)-1)}
		cand.Events = append(cand.Events, s.Events[:i]...)
		cand.Events = append(cand.Events, s.Events[i+1:]...)
		if fails(cand) {
			s = cand
			continue // same index now names the next event
		}
		i++
	}
	return s
}
