package fuzz

import (
	"reflect"
	"testing"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	p := Profile{Nodes: 3, Shards: 2, Events: 12}
	a := Generate(42, p)
	b := Generate(42, p)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%s\n%s", a, b)
	}
	c := Generate(43, p)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatalf("different seeds produced identical schedules: %s", a)
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].At < a.Events[i-1].At {
			t.Fatalf("events not sorted by offset: %s", a)
		}
	}
}

func TestScheduleStringRoundtrip(t *testing.T) {
	s := Schedule{Seed: 7, Events: []Event{
		{At: 200 * time.Millisecond, Kind: EvCrash, A: 1},
		{At: 300 * time.Millisecond, Kind: EvLoss, Rate: 0.25},
		{At: 400 * time.Millisecond, Kind: EvPartition, A: 0, B: 2},
		{At: 500 * time.Millisecond, Kind: EvDiskFull, A: 2, B: 6},
		{At: 700 * time.Millisecond, Kind: EvHeal},
		{At: 900 * time.Millisecond, Kind: EvKillAll},
		{At: 1200 * time.Millisecond, Kind: EvRestartAll},
		{At: 1500 * time.Millisecond, Kind: EvReshard, A: 4},
		{At: 1800 * time.Millisecond, Kind: EvCrashSequencer, A: 1},
		{At: 2 * time.Second, Kind: EvTornWrite, A: 0},
		{At: 2200 * time.Millisecond, Kind: EvReorder, Rate: 0.1},
		{At: 2400 * time.Millisecond, Kind: EvDuplicate, Rate: 0.3},
		{At: 2600 * time.Millisecond, Kind: EvNetClean},
		{At: 2800 * time.Millisecond, Kind: EvRestart, A: 1},
	}}
	line := s.String()
	got, err := ParseSchedule(line)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", line, err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("roundtrip mismatch:\n in: %#v\nout: %#v", s, got)
	}
	// Generated schedules roundtrip too.
	g := Generate(99, Profile{Events: 20})
	got, err = ParseSchedule(g.String())
	if err != nil {
		t.Fatalf("ParseSchedule(generated): %v", err)
	}
	if !reflect.DeepEqual(g, got) {
		t.Fatalf("generated roundtrip mismatch:\n in: %s\nout: %s", g, got)
	}
}

func TestParseScheduleRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"events=[crash(1)@1s]",
		"seed=x events=[]",
		"seed=1 events=[wat@1s]",
		"seed=1 events=[crash@1s]",      // missing arg
		"seed=1 events=[crash(1,2)@1s]", // too many args
		"seed=1 events=[crash(1)]",      // missing offset
		"seed=1 events=[heal(3)@1s]",    // arg on no-arg kind
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("ParseSchedule(%q) should fail", bad)
		}
	}
}

// TestShrinkFindsMinimalTrigger: a synthetic failure predicate that needs
// exactly two specific events (the 3rd and the 7th) must shrink to just
// those two — prefix truncation plus event dropping, at a fixed point.
func TestShrinkFindsMinimalTrigger(t *testing.T) {
	full := Generate(5, Profile{Events: 10})
	trigger := []Event{full.Events[2], full.Events[6]}
	contains := func(s Schedule, e Event) bool {
		for _, x := range s.Events {
			if x == e {
				return true
			}
		}
		return false
	}
	runs := 0
	fails := func(s Schedule) bool {
		runs++
		return contains(s, trigger[0]) && contains(s, trigger[1])
	}
	got := Shrink(full, fails)
	if len(got.Events) != 2 || got.Events[0] != trigger[0] || got.Events[1] != trigger[1] {
		t.Fatalf("shrunk to %s, want exactly the two trigger events", got)
	}
	if got.Seed != full.Seed {
		t.Fatalf("shrinking changed the seed: %d != %d", got.Seed, full.Seed)
	}
	if runs > 100 {
		t.Fatalf("shrinker used %d runs for a 10-event schedule", runs)
	}
}

// TestShrinkKeepsUnshrinkable: when every event is needed, Shrink returns
// the schedule intact; when the predicate never fails, it returns the input.
func TestShrinkKeepsUnshrinkable(t *testing.T) {
	s := Generate(11, Profile{Events: 4})
	all := func(c Schedule) bool { return len(c.Events) == 4 }
	if got := Shrink(s, all); !reflect.DeepEqual(got, s) {
		t.Fatalf("unshrinkable schedule changed: %s -> %s", s, got)
	}
	never := func(Schedule) bool { return false }
	if got := Shrink(s, never); !reflect.DeepEqual(got, s) {
		t.Fatalf("non-failing schedule changed: %s -> %s", s, got)
	}
}
