package fuzz

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"amoeba"
	"amoeba/kv"
	"amoeba/obs"
	"amoeba/wal"
)

// Config shapes one harness run. The zero value is a usable 3-node,
// 2-shard cluster under 4 clients.
type Config struct {
	// Nodes is the cluster size (default 3). Every node hosts every shard
	// (full replication), so restarts always have live donors.
	Nodes int
	// Shards is the bootstrap shard count (default 2).
	Shards int
	// Clients is the number of concurrent recording workload clients
	// (default 4).
	Clients int
	// Keys is the number of distinct keys the workload contends on
	// (default 4). Fewer keys = more contention = stronger histories.
	Keys int
	// Accounts is the number of bank-account keys the transactional half
	// of the workload transfers balance between (default 4). The accounts
	// are seeded before the workload starts; every transfer conserves the
	// total, and CheckAtomic holds every full snapshot to it.
	Accounts int
	// Balance is each account's seeded starting balance (default 100).
	Balance int64
	// Resilience is the shard groups' resilience degree r. 0 (the
	// default) means Nodes-1 — no completed write is lost to any crash
	// short of the whole cluster, which the write-ahead logs cover; a
	// clean run is then expected to verdict linearizable. Negative values
	// mean a literal r = 0, the paper's performance configuration, whose
	// documented crash window the checker WILL catch.
	Resilience int
	// MinSurvivors gates group recovery: a reset only completes when at
	// least this many members answer. 0 (the default) means a majority,
	// Nodes/2+1 — without it, a partition that also kills the sequencer
	// lets BOTH sides reform independently and diverge (split brain; the
	// quorum-less config is pinned as a failing regression schedule in
	// the tests). Negative values mean a literal 1: recovery with no
	// quorum at all.
	MinSurvivors int
	// Tail extends the workload past the last scheduled event (default
	// 500ms) so post-fault recovery is itself observed.
	Tail time.Duration
	// OpTimeout bounds one client operation (default 2s): ops stuck
	// behind a dead cluster give up and record an unknown outcome.
	OpTimeout time.Duration
	// CheckBudget bounds the linearizability search (default 30s).
	CheckBudget time.Duration
	// DataDir hosts the nodes' write-ahead logs. Empty (the default)
	// uses a fresh temp directory, removed when the run ends.
	DataDir string
	// Leases enables sequencer read leases on the cluster: plain Gets ride
	// the lease-serve path wherever a lease is held (recorded and checked
	// as ordinary linearizable reads), and the workload mixes in opt-in
	// StaleGet reads, each held to the bounded-staleness check.
	Leases bool
	// PlantStaleServe corrupts the recorded history before checking: one
	// successful bounded-staleness read is rewritten to observe a value
	// provably replaced before its bound window (or, when the history has
	// no such candidate, a value no write produced). The run's stale-bound
	// verdict MUST fail — the self-test that keeps CheckStale honest.
	PlantStaleServe bool
	// PlantStaleRead corrupts the recorded history before checking: one
	// successful read is rewritten to observe a value no write ever
	// produced. The run's verdict MUST be non-linearizable — the
	// self-test that keeps the checker honest.
	PlantStaleRead bool
	// PlantLostWrite corrupts the recorded history before checking: the
	// write that produced some successfully-read value is deleted, as if
	// the system had invented the value. The verdict MUST be
	// non-linearizable.
	PlantLostWrite bool
	// PlantTornTxn corrupts the recorded history before checking: one
	// successful snapshot is rewritten to observe a committed
	// transaction's write to one key alongside a pre-transaction value
	// for another — a torn transaction. The atomicity verdict MUST fail.
	PlantTornTxn bool
	// PlantDivergence bit-flips one value in one replica's LIVE state
	// machine shortly after the workload starts — silent single-replica
	// corruption the protocol cannot see, planted through the state (not
	// the history), so only the sequenced audit tier can catch it. The
	// run's verdict MUST report a divergence.
	PlantDivergence bool
	// AuditEvery is the sequenced state-audit period (default 100ms;
	// negative disables). The auditor runs during every schedule, so any
	// replica-state divergence a fault sequence provokes is reported at
	// the audit seq where the replicas first disagree.
	AuditEvery time.Duration
	// Logf, when non-nil, receives progress lines (schedule events as
	// they fire, verdicts). Nil is silent.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Keys <= 0 {
		c.Keys = 4
	}
	if c.Accounts <= 0 {
		c.Accounts = 4
	}
	if c.Balance <= 0 {
		c.Balance = 100
	}
	if c.Resilience == 0 {
		c.Resilience = c.Nodes - 1
	} else if c.Resilience < 0 {
		c.Resilience = 0
	}
	if c.MinSurvivors == 0 {
		c.MinSurvivors = c.Nodes/2 + 1
	} else if c.MinSurvivors < 0 {
		c.MinSurvivors = 1
	}
	if c.Tail <= 0 {
		c.Tail = 500 * time.Millisecond
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 2 * time.Second
	}
	if c.CheckBudget <= 0 {
		c.CheckBudget = 30 * time.Second
	}
	if c.AuditEvery == 0 {
		c.AuditEvery = 100 * time.Millisecond
	} else if c.AuditEvery < 0 {
		c.AuditEvery = 0
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Result is one run's outcome.
type Result struct {
	// Schedule is the schedule that ran (for the replay line).
	Schedule Schedule
	// Check is the linearizability verdict over the recorded history.
	Check CheckResult
	// Atomic is the multi-key atomicity verdict: no torn transactions, and
	// every full bank snapshot sums to the seeded total.
	Atomic AtomicResult
	// Stale is the bounded-staleness verdict over the run's StaleGet reads
	// (trivially clean when the workload recorded none).
	Stale StaleResult
	// Ops counts recorded history events; Failed counts the subset whose
	// outcome is unknown (errored or timed out).
	Ops    int
	Failed int
	// Applied counts schedule events that fired.
	Applied int
	// LeaseReads and StaleReads count the reads the cluster's stores served
	// from a lease / within a staleness bound during the run — proof the
	// lease paths were actually in play, not silently falling back.
	LeaseReads uint64
	StaleReads uint64
	// Err reports a harness-level failure (bootstrap or restart machinery
	// broke) — distinct from a checker verdict.
	Err error
	// Divergences are the replica-state mismatches the sequenced auditor
	// caught during the run, each localized to (shard scope, audit seq,
	// key-ranges). Replicated state machines must never diverge, so any
	// entry is a failure regardless of the history verdicts.
	Divergences []obs.Divergence
	// Audits counts completed cross-replica digest comparisons — proof
	// the auditor was actually live during the schedule.
	Audits int
	// Flight is the cluster's flight-recorder dump, captured when the
	// verdict failed (empty otherwise): the postmortem to read first.
	Flight string
}

// Ok reports a fully clean run: harness intact, history linearizable, every
// multi-key claim atomic, and no replica-state divergence.
func (r Result) Ok() bool {
	return r.Err == nil && r.Check.Linearizable && r.Atomic.Ok() && r.Stale.Ok() && len(r.Divergences) == 0
}

// String renders the result as the one-line report the CLI prints.
func (r Result) String() string {
	if r.Err != nil {
		return fmt.Sprintf("HARNESS ERROR: %v [replay: %s]", r.Err, r.Schedule)
	}
	if len(r.Divergences) > 0 {
		return fmt.Sprintf("FAIL: %s over %d ops (%d unknown) [replay: %s]",
			r.Divergences[0], r.Ops, r.Failed, r.Schedule)
	}
	if !r.Atomic.Ok() {
		return fmt.Sprintf("FAIL: %s over %d ops (%d unknown) [replay: %s]",
			r.Atomic, r.Ops, r.Failed, r.Schedule)
	}
	if !r.Stale.Ok() {
		return fmt.Sprintf("FAIL: %s over %d ops (%d unknown) [replay: %s]",
			r.Stale, r.Ops, r.Failed, r.Schedule)
	}
	if !r.Check.Linearizable {
		return fmt.Sprintf("FAIL: %s over %d ops (%d unknown) [replay: %s]",
			r.Check, r.Ops, r.Failed, r.Schedule)
	}
	if r.Check.Timeout {
		return fmt.Sprintf("UNDECIDED: %s (%d recorded, %d unknown outcome), %d/%d events applied [replay: %s]",
			r.Check, r.Ops, r.Failed, r.Applied, len(r.Schedule.Events), r.Schedule)
	}
	return fmt.Sprintf("ok: %s, %s (%d recorded, %d unknown outcome), %d/%d events applied",
		r.Check, r.Atomic, r.Ops, r.Failed, r.Applied, len(r.Schedule.Events))
}

// walController routes schedule-injected log faults to the right replica
// logs: one process-wide hook, targeted by the node index embedded in each
// log's directory path.
type walController struct {
	mu       sync.Mutex
	diskFull map[int]int  // node -> remaining appends to fail ENOSPC
	torn     map[int]bool // node -> tear the next append
}

func newWALController() *walController {
	return &walController{diskFull: make(map[int]int), torn: make(map[int]bool)}
}

func (w *walController) injectDiskFull(node, appends int) {
	w.mu.Lock()
	w.diskFull[node] += appends
	w.mu.Unlock()
}

func (w *walController) injectTorn(node int) {
	w.mu.Lock()
	w.torn[node] = true
	w.mu.Unlock()
}

// hook implements wal.FaultHook. Only appends are targeted: sync and
// checkpoint failures exercise the same degradation paths with less
// schedule-visible effect.
func (w *walController) hook(dir string, op wal.FaultOp) wal.InjectedFault {
	if op != wal.FaultAppend {
		return wal.NoFault
	}
	node, ok := nodeOfDir(dir)
	if !ok {
		return wal.NoFault
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.torn[node] {
		delete(w.torn, node)
		return wal.TornWrite
	}
	if w.diskFull[node] > 0 {
		w.diskFull[node]--
		return wal.DiskFull
	}
	return wal.NoFault
}

// nodeOfDir extracts the node index from a shard log directory
// (…/node-<n>/shard-<i>).
func nodeOfDir(dir string) (int, bool) {
	i := strings.LastIndex(dir, "/node-")
	if i < 0 {
		return 0, false
	}
	rest := dir[i+len("/node-"):]
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		rest = rest[:j]
	}
	var n int
	if _, err := fmt.Sscanf(rest, "%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// cluster is the harness's mutable view of the nodes: which are alive,
// their kernels, and the machinery to crash and restart them.
type cluster struct {
	cfg     Config
	net     *amoeba.MemoryNetwork
	name    string
	opts    kv.Options
	hub     *obs.Hub
	baseCtx context.Context

	mu      sync.Mutex
	stores  []*kv.Store
	kernels []*amoeba.Kernel
	booting map[int]bool // restarts in flight
	gen     int          // kernel-name generation counter
	wg      sync.WaitGroup
}

// live returns a running store, preferring node pref, or nil when the whole
// cluster is down.
func (c *cluster) live(pref int) *kv.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < len(c.stores); i++ {
		if s := c.stores[(pref+i)%len(c.stores)]; s != nil {
			return s
		}
	}
	return nil
}

// crash closes node n's store and kernel with no protocol goodbye.
func (c *cluster) crash(n int) {
	c.mu.Lock()
	s, k := c.stores[n], c.kernels[n]
	c.stores[n], c.kernels[n] = nil, nil
	c.mu.Unlock()
	if s != nil {
		s.Close()
	}
	if k != nil {
		k.Close()
	}
}

// restart brings node n back from its write-ahead logs, asynchronously (a
// rejoin can take a while under concurrent faults; the scheduler must keep
// pace). No-op while the node is alive or already booting.
func (c *cluster) restart(n int) {
	c.mu.Lock()
	if c.stores[n] != nil || c.booting[n] {
		c.mu.Unlock()
		return
	}
	c.booting[n] = true
	c.gen++
	gen := c.gen
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer func() {
			c.mu.Lock()
			delete(c.booting, n)
			c.mu.Unlock()
		}()
		k, err := c.net.NewKernel(fmt.Sprintf("%s-node-%d-g%d", c.name, n, gen))
		if err != nil {
			c.cfg.logf("restart(%d): kernel: %v", n, err)
			return
		}
		o := c.opts
		o.NodeIndex = n
		s, err := kv.Open(c.baseCtx, k, c.name, o)
		if err != nil {
			c.cfg.logf("restart(%d): %v", n, err)
			k.Close()
			return
		}
		c.mu.Lock()
		dead := c.baseCtx.Err() != nil
		if !dead {
			c.stores[n], c.kernels[n] = s, k
		}
		c.mu.Unlock()
		if dead { // the run ended while we were booting
			s.Close()
			k.Close()
		} else {
			c.cfg.logf("restart(%d): rejoined", n)
		}
	}()
}

// restartAll restarts every dead node. When the whole cluster is down this
// is the cold start: each node recovers its logs independently and the
// beacon election reforms each shard group from the longest log.
func (c *cluster) restartAll() {
	c.mu.Lock()
	var dead []int
	for n, s := range c.stores {
		if s == nil && !c.booting[n] {
			dead = append(dead, n)
		}
	}
	c.mu.Unlock()
	for _, n := range dead {
		c.restart(n)
	}
}

// crashSequencer crashes whichever live node currently sequences shard's
// group (no-op if no live node does — mid-recovery, say).
func (c *cluster) crashSequencer(shard int) {
	c.mu.Lock()
	victim := -1
	for n, s := range c.stores {
		if s == nil {
			continue
		}
		r := s.Replica(shard)
		if r != nil && r.Info().IsSequencer {
			victim = n
			break
		}
	}
	c.mu.Unlock()
	if victim >= 0 {
		c.cfg.logf("crashseq(%d): sequencer is node %d", shard, victim)
		c.crash(victim)
	}
}

// apply fires one schedule event against the cluster.
func (c *cluster) apply(e Event, walCtl *walController) {
	c.cfg.logf("event %s", e)
	switch e.Kind {
	case EvCrash:
		c.crash(e.A % c.cfg.Nodes)
	case EvRestart:
		c.restart(e.A % c.cfg.Nodes)
	case EvKillAll:
		for n := 0; n < c.cfg.Nodes; n++ {
			c.crash(n)
		}
	case EvRestartAll:
		c.restartAll()
	case EvPartition:
		c.mu.Lock()
		a, b := c.kernels[e.A%c.cfg.Nodes], c.kernels[e.B%c.cfg.Nodes]
		c.mu.Unlock()
		c.net.Partition(a, b) // nil-safe: dead ends are already cut
	case EvHeal:
		c.net.Heal()
	case EvLoss:
		c.net.SetDropRate(e.Rate)
	case EvReorder:
		c.net.SetReorderRate(e.Rate)
	case EvDuplicate:
		c.net.SetDuplicateRate(e.Rate)
	case EvNetClean:
		c.net.SetDropRate(0)
		c.net.SetReorderRate(0)
		c.net.SetDuplicateRate(0)
	case EvDiskFull:
		c.walCtlInject(walCtl, e)
	case EvTornWrite:
		walCtl.injectTorn(e.A % c.cfg.Nodes)
	case EvReshard:
		s := c.live(0)
		if s == nil || e.A <= 0 {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			if err := s.Resharding(c.baseCtx, e.A); err != nil {
				c.cfg.logf("reshard(%d): %v", e.A, err)
			}
		}()
	case EvCrashSequencer:
		c.crashSequencer(e.A % c.cfg.Shards)
	}
}

func (c *cluster) walCtlInject(walCtl *walController, e Event) {
	n := e.B
	if n <= 0 {
		n = 4
	}
	walCtl.injectDiskFull(e.A%c.cfg.Nodes, n)
}

// closeAll tears the cluster down and waits for stragglers.
func (c *cluster) closeAll() {
	c.wg.Wait() // restarts and reshards first: they hold kernels
	c.mu.Lock()
	stores := append([]*kv.Store(nil), c.stores...)
	c.mu.Unlock()
	for _, s := range stores {
		if s != nil {
			s.Close()
		}
	}
	c.net.Close() // closes the kernels too
}

// Run replays one schedule against a fresh durable cluster under the
// recording workload and checks the history. Fault injection, the workload's
// op stream, and the schedule are all pure functions of sched.Seed, so the
// same seed and schedule reproduce the same run.
func Run(cfg Config, sched Schedule) Result {
	cfg = cfg.withDefaults()
	res := Result{Schedule: sched}

	dataDir := cfg.DataDir
	if dataDir == "" {
		d, err := os.MkdirTemp("", "amoeba-fuzz-")
		if err != nil {
			res.Err = fmt.Errorf("fuzz: temp data dir: %w", err)
			return res
		}
		defer os.RemoveAll(d)
		dataDir = d
	}

	hub := obs.NewHub(obs.Options{Node: "fuzz"})
	walCtl := newWALController()
	net := amoeba.NewMemoryNetworkWithFaults(amoeba.MemoryNetworkConfig{Seed: sched.Seed})

	horizon := cfg.Tail
	for _, e := range sched.Events {
		if e.At+cfg.Tail > horizon {
			horizon = e.At + cfg.Tail
		}
	}
	runCtx, cancelRun := context.WithTimeout(context.Background(), horizon+60*time.Second)
	defer cancelRun()

	opts := kv.Options{
		Shards:          cfg.Shards,
		Nodes:           cfg.Nodes,
		Leases:          cfg.Leases,
		DataDir:         dataDir,
		CheckpointEvery: 32, // small cadence: restarts exercise snapshot + suffix replay
		WALFaultHook:    walCtl.hook,
		AuditEvery:      cfg.AuditEvery,
		Group: amoeba.GroupOptions{
			Resilience:   cfg.Resilience,
			AutoReset:    true,
			MinSurvivors: cfg.MinSurvivors,
			Obs:          hub,
		},
	}
	kernels := make([]*amoeba.Kernel, cfg.Nodes)
	for i := range kernels {
		k, err := net.NewKernel(fmt.Sprintf("fuzz-node-%d", i))
		if err != nil {
			res.Err = fmt.Errorf("fuzz: kernel %d: %w", i, err)
			net.Close()
			return res
		}
		kernels[i] = k
	}
	stores, err := kv.Bootstrap(runCtx, kernels, "fuzz", opts)
	if err != nil {
		res.Err = fmt.Errorf("fuzz: bootstrap: %w", err)
		net.Close()
		return res
	}
	cl := &cluster{
		cfg: cfg, net: net, name: "fuzz", opts: opts, hub: hub,
		baseCtx: runCtx, stores: stores, kernels: kernels,
		booting: make(map[int]bool),
	}

	// Seed the bank accounts before any client runs: transfers conserve
	// the total from here on, and the seed writes are recorded (client id
	// cfg.Clients) so the checker can explain every observed balance.
	hist := kv.NewHistory()
	{
		seedCl := stores[0].NewClient()
		rc := kv.Record(seedCl, hist, cfg.Clients)
		pairs := make([]kv.Pair, cfg.Accounts)
		for i := range pairs {
			pairs[i] = kv.Pair{Key: bankKey(i), Val: bankVal(cfg.Balance, "s", 0, i)}
		}
		seedCtx, cancelSeed := context.WithTimeout(runCtx, 10*time.Second)
		err := rc.BatchPut(seedCtx, pairs)
		cancelSeed()
		seedCl.Close()
		if err != nil {
			res.Err = fmt.Errorf("fuzz: seeding bank accounts: %w", err)
			cl.closeAll()
			return res
		}
	}

	// The workload: cfg.Clients recording clients, each a deterministic op
	// stream drawn from the seed, rebinding to a live node when its node
	// crashes.
	wlCtx, cancelWL := context.WithCancel(context.Background())
	var wl sync.WaitGroup
	for ci := 0; ci < cfg.Clients; ci++ {
		wl.Add(1)
		go func(ci int) {
			defer wl.Done()
			runClient(wlCtx, cfg, cl, hist, sched.Seed, ci)
		}(ci)
	}

	// Plant the state corruption after the workload has populated some
	// keys, before the schedule starts: the corruption is in the replica
	// state, invisible to the recorded history, and the sequenced audit
	// must flag it.
	if cfg.PlantDivergence {
		time.Sleep(250 * time.Millisecond)
		planted := false
		for n := 0; n < cfg.Nodes && !planted; n++ {
			s := cl.live(n)
			if s == nil {
				continue
			}
			for sh := 0; sh < cfg.Shards && !planted; sh++ {
				if key, ok := s.CorruptShard(sh); ok {
					cfg.logf("planted state corruption: shard %d key %q", sh, key)
					planted = true
				}
			}
		}
		if !planted {
			res.Err = fmt.Errorf("fuzz: no shard had state to corrupt")
			cancelWL()
			wl.Wait()
			cl.closeAll()
			return res
		}
	}

	// The scheduler: fire events at their offsets.
	start := time.Now()
	for _, e := range sched.Events {
		if d := time.Until(start.Add(e.At)); d > 0 {
			time.Sleep(d)
		}
		cl.apply(e, walCtl)
		res.Applied++
	}
	if d := time.Until(start.Add(horizon)); d > 0 {
		time.Sleep(d)
	}

	cancelWL()
	wl.Wait()
	cancelRun()
	for n := 0; n < cfg.Nodes; n++ {
		if s := cl.live(n); s != nil {
			leased, _, stale, _ := s.LeaseStats()
			res.LeaseReads += leased
			res.StaleReads += stale
		}
	}
	cl.closeAll()

	events := hist.Events()
	if cfg.PlantStaleRead {
		events = plantStaleRead(events)
	}
	if cfg.PlantStaleServe {
		events = plantStaleServe(events)
	}
	if cfg.PlantLostWrite {
		events = plantLostWrite(events)
	}
	if cfg.PlantTornTxn {
		events = plantTornTxn(events)
	}
	res.Ops = len(events)
	for _, e := range events {
		if e.Failed() {
			res.Failed++
		}
	}
	spec := &BankSpec{Total: cfg.Balance * int64(cfg.Accounts)}
	for i := 0; i < cfg.Accounts; i++ {
		spec.Keys = append(spec.Keys, bankKey(i))
	}
	res.Atomic = CheckAtomic(events, spec)
	res.Check = Check(events, cfg.CheckBudget)
	res.Stale = CheckStale(events, fuzzStaleSlack)
	if cfg.PlantStaleServe && res.Stale.Ok() && res.Err == nil {
		res.Err = fmt.Errorf("fuzz: planted stale serve escaped the bound check (%d stale reads)", res.Stale.Reads)
	}
	res.Divergences = hub.Health().Divergences()
	for _, c := range hub.Registry().Counters() {
		if c.Name == "amoeba_health_audits_total" {
			res.Audits = int(c.Value)
		}
	}
	if cfg.PlantDivergence && len(res.Divergences) == 0 && res.Err == nil {
		res.Err = fmt.Errorf("fuzz: planted state corruption escaped the auditor (%d audits ran)", res.Audits)
	}
	if !res.Ok() {
		res.Flight = hub.Flight().Format()
	}
	cfg.logf("%s", res)
	return res
}

// bankKey names account i.
func bankKey(i int) string { return fmt.Sprintf("acct-%d", i) }

// bankVal encodes a balance with a globally unique suffix, the format
// bankBalance parses.
func bankVal(balance int64, who string, ci, opn int) []byte {
	return []byte(fmt.Sprintf("%d|%s%d-%d", balance, who, ci, opn))
}

// runClient is one workload client: a deterministic stream of contended
// operations with globally unique write values (uniqueness is what lets the
// checker pin every observed value to exactly one write).
func runClient(ctx context.Context, cfg Config, cl *cluster, hist *kv.History, seed int64, ci int) {
	rng := rand.New(rand.NewSource(seed*1000003 + int64(ci)))
	var cur *kv.Client
	var curStore *kv.Store
	defer func() {
		if cur != nil {
			cur.Close()
		}
	}()
	for opn := 0; ; opn++ {
		if ctx.Err() != nil {
			return
		}
		s := cl.live(ci % cfg.Nodes)
		if s == nil {
			// Whole cluster down: nothing to invoke against. (rng is
			// drawn per op below, so the stream stays aligned with opn.)
			select {
			case <-ctx.Done():
				return
			case <-time.After(25 * time.Millisecond):
			}
			continue
		}
		if s != curStore {
			if cur != nil {
				cur.Close()
			}
			cur, curStore = s.NewClient(), s
		}
		rc := kv.Record(cur, hist, ci)
		key := fmt.Sprintf("key-%d", rng.Intn(cfg.Keys))
		val := []byte(fmt.Sprintf("c%d-%d", ci, opn))
		opCtx, cancel := context.WithTimeout(ctx, cfg.OpTimeout)
		switch r := rng.Intn(100); {
		case r < 25:
			_ = rc.Put(opCtx, key, val)
		case r < 50:
			if cfg.Leases && r >= 42 {
				// Opt-in bounded-staleness read: held to CheckStale, not
				// the linearizability search.
				_, _, _, _ = rc.StaleGet(opCtx, key, fuzzStaleBound)
			} else {
				_, _, _ = rc.Get(opCtx, key)
			}
		case r < 62:
			// CAS against the last value observed by a quick read —
			// contended enough to exercise both outcomes.
			if v, ok, err := rc.Get(opCtx, key); err == nil {
				if ok {
					_, _ = rc.CAS(opCtx, key, v, val)
				} else {
					_, _ = rc.CAS(opCtx, key, nil, val)
				}
			}
		case r < 70:
			_, _ = rc.Delete(opCtx, key)
		case r < 78:
			k2 := fmt.Sprintf("key-%d", rng.Intn(cfg.Keys))
			_, _ = rc.MGet(opCtx, key, k2)
		case r < 85:
			k2 := fmt.Sprintf("key-%d", rng.Intn(cfg.Keys))
			_ = rc.BatchPut(opCtx, []kv.Pair{
				{Key: key, Val: val},
				{Key: k2, Val: []byte(fmt.Sprintf("c%d-%db", ci, opn))},
			})
		case r < 95:
			// Bank transfer: move balance between two accounts with a
			// conditional cross-shard transaction — the atomicity
			// workload. A concurrent transfer changes a balance under
			// us: the conditions fail, which is a recorded known abort.
			a := rng.Intn(cfg.Accounts)
			b := (a + 1 + rng.Intn(cfg.Accounts-1)) % cfg.Accounts
			amt := int64(1 + rng.Intn(5))
			ka, kb := bankKey(a), bankKey(b)
			m, err := rc.MGet(opCtx, ka, kb)
			if err != nil || m[ka] == nil || m[kb] == nil {
				break
			}
			ba, ok1 := bankBalance(m[ka])
			bb, ok2 := bankBalance(m[kb])
			if !ok1 || !ok2 || ba < amt {
				break
			}
			_, _ = rc.Txn(opCtx, kv.TxnOp{
				Conds: []kv.TxnCond{
					{Key: ka, ExpectPresent: true, Expect: m[ka]},
					{Key: kb, ExpectPresent: true, Expect: m[kb]},
				},
				Writes: []kv.TxnWrite{
					{Key: ka, Val: bankVal(ba-amt, "c", ci, opn)},
					{Key: kb, Val: bankVal(bb+amt, "c", ci, opn+1000000)},
				},
			})
		default:
			// Full-bank snapshot: the observation the bank invariant is
			// checked against.
			keys := make([]string, cfg.Accounts)
			for i := range keys {
				keys[i] = bankKey(i)
			}
			_, _ = rc.MGet(opCtx, keys...)
		}
		cancel()
	}
}

// fuzzStaleBound is the staleness budget the workload's StaleGet reads
// request; reads the server cannot bound that tightly fall back to the
// sequenced path (still recorded as stale events, trivially within bound).
const fuzzStaleBound = 500 * time.Millisecond

// fuzzStaleSlack pads the bound during checking: the server's freshness
// accounting is tick-granular and strictly conservative, so a legitimate
// serve is always well inside bound+slack.
const fuzzStaleSlack = 250 * time.Millisecond

// plantStaleServe corrupts the history for checker self-validation: the last
// successful bounded-staleness read is rewritten to observe a value that was
// provably replaced before its bound window opened — the exact over-stale
// serve CheckStale exists to refute. When the history offers no replaced
// value old enough, the read observes a value no write produced, which the
// checker must flag just the same.
func plantStaleServe(events []kv.HistoryEvent) []kv.HistoryEvent {
	for i := len(events) - 1; i >= 0; i-- {
		e := events[i]
		if e.Op != kv.OpStaleGet || e.Failed() || !e.Found {
			continue
		}
		t0 := e.Invoke - int64(e.Bound+fuzzStaleSlack)
		// An old value of this key: a successful put whose successor (a
		// later successful put) completed before the read's bound window.
		for _, w := range events {
			if w.Op != kv.OpPut || w.Failed() || w.Key != e.Key {
				continue
			}
			for _, w2 := range events {
				if w2.Op == kv.OpPut && !w2.Failed() && w2.Key == e.Key &&
					w2.Invoke >= w.Return && w2.Return <= t0 {
					events[i].Val = append([]byte(nil), w.Val...)
					return events
				}
			}
		}
		events[i].Val = []byte("__planted-stale-serve__")
		return events
	}
	return events
}

// plantStaleRead corrupts the history for checker self-validation: the last
// successful read that found a value is rewritten to observe a value no
// write ever produced — the purest stale read. A checker that passes this
// history is broken.
func plantStaleRead(events []kv.HistoryEvent) []kv.HistoryEvent {
	for i := len(events) - 1; i >= 0; i-- {
		e := events[i]
		if e.Op == kv.OpGet && !e.Failed() && e.Found {
			events[i].Val = []byte("__planted-stale-read__")
			return events
		}
	}
	return events
}

// plantTornTxn corrupts a recorded snapshot to observe a committed
// transaction's write to its first key alongside a certainly-pre-transaction
// value for its second — the exact half-applied state the atomicity checker
// exists to refute. A checker that passes this history is broken.
func plantTornTxn(events []kv.HistoryEvent) []kv.HistoryEvent {
	for i := len(events) - 1; i >= 0; i-- {
		t := events[i]
		if t.Op != kv.OpTxn || t.Failed() || !t.Committed || len(t.Writes) < 2 {
			continue
		}
		ka, kb := t.Writes[0].Key, t.Writes[1].Key
		// A value for kb whose writer certainly returned before t began.
		var pre []byte
		for _, w := range events {
			if w.Failed() || w.Return >= t.Invoke {
				continue
			}
			switch {
			case w.Op == kv.OpPut && w.Key == kb:
				pre = w.Val
			case w.Op == kv.OpTxn && w.Committed:
				for _, tw := range w.Writes {
					if tw.Key == kb && !tw.Delete {
						pre = tw.Val
					}
				}
			}
		}
		if pre == nil {
			continue
		}
		for j, s := range events {
			if s.Op != kv.OpTxn || s.Failed() || len(s.ReadKeys) == 0 {
				continue
			}
			ia, ib := -1, -1
			for k, rk := range s.ReadKeys {
				if rk == ka {
					ia = k
				}
				if rk == kb {
					ib = k
				}
			}
			if ia < 0 || ib < 0 {
				continue
			}
			events[j].ReadVals[ia], events[j].ReadFound[ia] = t.Writes[0].Val, true
			events[j].ReadVals[ib], events[j].ReadFound[ib] = pre, true
			return events
		}
	}
	return events
}

// plantLostWrite corrupts the history the other way: the write whose value
// some successful read observed is deleted, leaving the read unexplainable —
// as if the store had invented the value.
func plantLostWrite(events []kv.HistoryEvent) []kv.HistoryEvent {
	for i := len(events) - 1; i >= 0; i-- {
		e := events[i]
		if e.Op == kv.OpGet && !e.Failed() && e.Found {
			for j, w := range events {
				if w.Op == kv.OpPut && w.Key == e.Key && string(w.Val) == string(e.Val) {
					return append(events[:j:j], events[j+1:]...)
				}
			}
		}
	}
	return events
}
