// Package cost defines the per-layer CPU accounting hooks that let the same
// protocol code run natively (costs ignored) and under the calibrated
// simulator (costs charged to the station's virtual CPU).
//
// The paper's Table 3 breaks the critical path of a SendToGroup into time
// spent per layer (user, group, FLIP, Ethernet) on each machine. The protocol
// implementations in internal/flip and internal/core declare *where* work
// happens by charging a Kind at each layer boundary; the simulator's cost
// model decides *how long* that work takes on a 20-MHz MC68030. Native
// transports install NopMeter and pay nothing.
package cost

// Kind labels a unit of protocol processing for the cost model.
type Kind uint8

// Charge kinds, one per layer boundary on the paper's critical path.
const (
	// UserSend is the context switch and system-call entry from the user
	// thread into the kernel, plus copying the user's payload bytes into
	// kernel space.
	UserSend Kind = iota + 1
	// GroupOut is group-protocol output processing: building a Request,
	// Broadcast, or BBData message and inserting into the history buffer.
	GroupOut
	// GroupIn is group-protocol input processing of a full data message:
	// sequence-number handling, history insertion, delivery queueing.
	GroupIn
	// CtrlIn is group-protocol input processing of a short control
	// message (ack, accept, retransmission request, status). Control
	// frames are cheaper than data frames; the paper measures ≈600 µs
	// per resilience acknowledgement including interrupt and driver.
	CtrlIn
	// FLIPOut is FLIP output processing, charged per packet (fragment).
	FLIPOut
	// FLIPIn is FLIP input processing, charged per packet (fragment).
	FLIPIn
	// UserDeliver is waking the user thread blocked in ReceiveFromGroup
	// (or the sender blocked in SendToGroup), the context switch, and
	// copying the payload bytes from the history buffer to user space.
	UserDeliver
	// UserDeliverNext is a follow-on message handed to the user in the
	// same wakeup: when an ordered batch arrives in one packet, the
	// receiver is woken (and context-switched) once for the first
	// message; the rest are popped from the already-drained delivery
	// queue and pay only queue handling plus the payload copy. This is
	// the receive-side half of batch amortisation.
	UserDeliverNext
)

// Meter receives per-layer charges. bytes is the number of payload bytes
// copied at that boundary (zero for pure protocol processing).
type Meter interface {
	Charge(k Kind, bytes int)
}

// NopMeter ignores all charges; native transports use it.
type NopMeter struct{}

var _ Meter = NopMeter{}

// Charge implements Meter by doing nothing.
func (NopMeter) Charge(Kind, int) {}
