package flip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"amoeba/internal/netw"
)

// HeaderSize is the encoded FLIP header size in bytes, matching the 40-byte
// FLIP header the paper counts in its 116 bytes of per-packet protocol
// overhead.
const HeaderSize = 40

// MaxFragmentPayload is the largest FLIP payload carried in one link frame.
const MaxFragmentPayload = netw.MTU - HeaderSize

// MaxMessageSize bounds a single FLIP message (fragment count is a uint16).
const MaxMessageSize = MaxFragmentPayload * 1024

// packetType discriminates FLIP packets.
type packetType uint8

const (
	ptData   packetType = iota + 1 // unicast or multicast data fragment
	ptLocate                       // broadcast "who owns this address?"
	ptHere                         // unicast answer to a locate
)

const headerVersion = 1

// header is the wire header of every FLIP packet.
//
// Layout (40 bytes):
//
//	off size field
//	0   1    version
//	1   1    type
//	2   2    reserved flags
//	4   8    src address
//	12  8    dst address
//	20  4    message id (per-sender, for reassembly)
//	24  2    fragment index
//	26  2    fragment count
//	28  4    total message length
//	32  4    CRC32 over header (checksum field zeroed) + payload
//	36  4    reserved
type header struct {
	typ       packetType
	src, dst  Address
	msgID     uint32
	fragIndex uint16
	fragCount uint16
	totalLen  uint32
}

// Errors surfaced by packet decoding.
var (
	errShortPacket  = errors.New("flip: packet shorter than header")
	errBadVersion   = errors.New("flip: unknown header version")
	errBadChecksum  = errors.New("flip: checksum mismatch (garbled packet)")
	errBadFragment  = errors.New("flip: inconsistent fragment fields")
	errTooLarge     = errors.New("flip: message exceeds maximum size")
	errZeroAddress  = errors.New("flip: zero address")
	errStackClosed  = errors.New("flip: stack closed")
	errUnregistered = errors.New("flip: source address not registered")
)

// encodePacket renders a header and payload into a frame buffer.
func encodePacket(h header, payload []byte) []byte {
	buf := make([]byte, HeaderSize+len(payload))
	buf[0] = headerVersion
	buf[1] = byte(h.typ)
	binary.BigEndian.PutUint64(buf[4:], uint64(h.src))
	binary.BigEndian.PutUint64(buf[12:], uint64(h.dst))
	binary.BigEndian.PutUint32(buf[20:], h.msgID)
	binary.BigEndian.PutUint16(buf[24:], h.fragIndex)
	binary.BigEndian.PutUint16(buf[26:], h.fragCount)
	binary.BigEndian.PutUint32(buf[28:], h.totalLen)
	copy(buf[HeaderSize:], payload)
	// Checksum with the checksum field zeroed.
	sum := crc32.ChecksumIEEE(buf)
	binary.BigEndian.PutUint32(buf[32:], sum)
	return buf
}

// decodePacket parses and validates a frame buffer. The returned payload
// aliases buf.
func decodePacket(buf []byte) (header, []byte, error) {
	if len(buf) < HeaderSize {
		return header{}, nil, errShortPacket
	}
	if buf[0] != headerVersion {
		return header{}, nil, fmt.Errorf("%w: %d", errBadVersion, buf[0])
	}
	sum := binary.BigEndian.Uint32(buf[32:])
	binary.BigEndian.PutUint32(buf[32:], 0)
	actual := crc32.ChecksumIEEE(buf)
	binary.BigEndian.PutUint32(buf[32:], sum)
	if actual != sum {
		return header{}, nil, errBadChecksum
	}
	h := header{
		typ:       packetType(buf[1]),
		src:       Address(binary.BigEndian.Uint64(buf[4:])),
		dst:       Address(binary.BigEndian.Uint64(buf[12:])),
		msgID:     binary.BigEndian.Uint32(buf[20:]),
		fragIndex: binary.BigEndian.Uint16(buf[24:]),
		fragCount: binary.BigEndian.Uint16(buf[26:]),
		totalLen:  binary.BigEndian.Uint32(buf[28:]),
	}
	if h.fragCount == 0 || h.fragIndex >= h.fragCount {
		return header{}, nil, errBadFragment
	}
	return h, buf[HeaderSize:], nil
}
