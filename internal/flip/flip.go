// Package flip implements the Fast Local Internet Protocol, the connectionless
// datagram substrate beneath Amoeba's group communication and RPC layers.
//
// FLIP's defining property — the one the paper calls out against IP — is that
// addresses identify processes and groups of processes, not hosts. A stack
// learns where an address lives by broadcasting a locate request and caching
// the answer, so processes can move and groups can span machines without the
// upper layers knowing. Multicast is treated as an optimisation over n
// point-to-point messages: group addresses map onto link-layer multicast
// channels when the network has them.
//
// The stack fragments messages to the link MTU, reassembles with a per-sender
// message id, and discards garbled packets by CRC32 checksum — the "lost,
// garbled, and duplicate messages" the group protocol above recovers from.
package flip

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"amoeba/internal/cost"
	"amoeba/internal/netw"
	"amoeba/internal/sim"
)

// Address identifies a process endpoint or a group of processes.
type Address uint64

// String renders the address for diagnostics.
func (a Address) String() string { return fmt.Sprintf("flip:%016x", uint64(a)) }

// AddressForName derives a stable group address from a human-readable name,
// the way Amoeba derives ports from service names.
func AddressForName(name string) Address {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	a := Address(h.Sum64())
	if a == 0 {
		a = 1
	}
	return a
}

// Message is a fully reassembled FLIP datagram delivered to a handler.
type Message struct {
	// Src is the sending process address.
	Src Address
	// Dst is the local address (process or group) the message arrived on.
	Dst Address
	// Payload is the message body; the receiver owns it.
	Payload []byte
	// SrcNode is the link-layer station the message arrived from, usable
	// as a routing hint.
	SrcNode netw.NodeID
}

// Handler receives reassembled messages. Handlers run on the stack's
// delivery context (the simulation goroutine or the transport's delivery
// goroutine) and may call back into the stack.
type Handler func(Message)

// LocateChannel is the well-known multicast channel every stack subscribes
// to for address location broadcasts.
const LocateChannel netw.ChannelID = 1

// channelFor maps a group address onto a link multicast channel. Channel
// space is 32-bit; fold the address onto it, avoiding the reserved locate
// channel.
func channelFor(a Address) netw.ChannelID {
	ch := netw.ChannelID(uint32(a) ^ uint32(a>>32))
	if ch == LocateChannel {
		ch = ^LocateChannel
	}
	return ch
}

// Config assembles a Stack.
type Config struct {
	// Station is the link attachment. Required.
	Station netw.Station
	// Clock drives locate retries and reassembly purging. Required.
	Clock sim.Clock
	// Meter accounts per-packet processing; nil means no accounting.
	Meter cost.Meter
	// LocateInterval is the retry spacing for unanswered locates
	// (default 20 ms).
	LocateInterval time.Duration
	// LocateAttempts bounds locate retries before queued messages are
	// dropped (default 5).
	LocateAttempts int
	// ReassemblyTimeout purges incomplete fragment sets (default 500 ms).
	ReassemblyTimeout time.Duration
}

// Stats counts stack-level events, all monotonically increasing.
type Stats struct {
	PacketsOut        uint64 // fragments transmitted
	PacketsIn         uint64 // fragments received and accepted
	Garbled           uint64 // packets dropped by checksum or decode error
	MessagesDelivered uint64
	LocatesSent       uint64
	LocateFailures    uint64 // queued messages dropped: address never found
	ReassemblyDrops   uint64 // fragment sets purged by timeout
	NoHandler         uint64 // packets for addresses not registered here
}

// Stack is one machine's FLIP endpoint.
type Stack struct {
	station netw.Station
	clock   sim.Clock
	meter   cost.Meter
	cfg     Config

	mu        sync.Mutex
	closed    bool
	nextAddr  uint64
	nextMsgID uint32
	local     map[Address]Handler // process endpoints registered here
	groups    map[Address]Handler // group addresses joined here
	routes    map[Address]netw.NodeID
	pending   map[Address]*locateState
	reasm     map[reasmKey]*reasmBuf
	stats     Stats
}

type locateState struct {
	queued   [][]byte // encoded, unfragmented payloads awaiting a route
	srcs     []Address
	attempts int
	timer    sim.Timer
}

type reasmKey struct {
	src   Address
	msgID uint32
}

type reasmBuf struct {
	frags    [][]byte
	have     int
	total    int
	dst      Address
	srcNode  netw.NodeID
	deadline time.Duration
}

// NewStack attaches a FLIP stack to a station.
func NewStack(cfg Config) *Stack {
	if cfg.Meter == nil {
		cfg.Meter = cost.NopMeter{}
	}
	if cfg.LocateInterval <= 0 {
		cfg.LocateInterval = 20 * time.Millisecond
	}
	if cfg.LocateAttempts <= 0 {
		cfg.LocateAttempts = 5
	}
	if cfg.ReassemblyTimeout <= 0 {
		cfg.ReassemblyTimeout = 500 * time.Millisecond
	}
	st := &Stack{
		station: cfg.Station,
		clock:   cfg.Clock,
		meter:   cfg.Meter,
		cfg:     cfg,
		local:   make(map[Address]Handler),
		groups:  make(map[Address]Handler),
		routes:  make(map[Address]netw.NodeID),
		pending: make(map[Address]*locateState),
		reasm:   make(map[reasmKey]*reasmBuf),
	}
	st.station.Subscribe(LocateChannel)
	st.station.SetHandler(st.onFrame)
	return st
}

// Node returns the underlying link station id.
func (st *Stack) Node() netw.NodeID { return st.station.ID() }

// Stats returns a snapshot of the stack counters.
func (st *Stack) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// AllocAddress returns a fresh process address unique to this stack:
// (station+1) in the high word, a counter in the low word. Deterministic, so
// simulations replay exactly.
func (st *Stack) AllocAddress() Address {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.nextAddr++
	return Address(uint64(st.station.ID()+1)<<32 | st.nextAddr)
}

// Register installs h as the receiver for process address a on this stack.
func (st *Stack) Register(a Address, h Handler) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.local[a] = h
}

// Unregister removes a process address.
func (st *Stack) Unregister(a Address) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.local, a)
}

// Forget drops the cached route for an address, forcing the next send to
// re-locate it. Callers use it when a destination has gone silent: a
// well-known address registered by several kernels (an anycast service) may
// have failed over to a survivor, and the cached route still points at the
// corpse — FLIP's process addressing makes the address itself stay valid.
func (st *Stack) Forget(a Address) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.routes, a)
}

// JoinGroup subscribes this stack to group address a, delivering its
// multicasts to h.
func (st *Stack) JoinGroup(a Address, h Handler) {
	st.mu.Lock()
	st.groups[a] = h
	st.mu.Unlock()
	st.station.Subscribe(channelFor(a))
}

// LeaveGroup unsubscribes from group address a.
func (st *Stack) LeaveGroup(a Address) {
	st.mu.Lock()
	delete(st.groups, a)
	st.mu.Unlock()
	st.station.Unsubscribe(channelFor(a))
}

// Close shuts the stack down. Pending locates are abandoned.
func (st *Stack) Close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.closed = true
	for _, p := range st.pending {
		if p.timer != nil {
			p.timer.Stop()
		}
	}
	st.pending = make(map[Address]*locateState)
}

// Send transmits payload from src to the process address dst. Delivery is
// unreliable datagram service; an error reports only local problems.
func (st *Stack) Send(src, dst Address, payload []byte) error {
	if src == 0 || dst == 0 {
		return errZeroAddress
	}
	if len(payload) > MaxMessageSize {
		return fmt.Errorf("%w: %d bytes", errTooLarge, len(payload))
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return errStackClosed
	}
	if _, ok := st.local[src]; !ok {
		st.mu.Unlock()
		return fmt.Errorf("%w: %v", errUnregistered, src)
	}
	// Local destination: loop back without touching the network.
	if _, ok := st.local[dst]; ok {
		msgID := st.nextMsgID
		st.nextMsgID++
		st.mu.Unlock()
		st.meter.Charge(cost.FLIPOut, 0)
		st.loopback(src, dst, payload, msgID)
		return nil
	}
	node, ok := st.routes[dst]
	if !ok {
		st.queueForLocate(src, dst, payload)
		st.mu.Unlock()
		return nil
	}
	msgID := st.nextMsgID
	st.nextMsgID++
	st.mu.Unlock()
	st.sendFragments(src, dst, payload, msgID, func(pkt []byte) error {
		return st.station.Send(node, pkt)
	})
	return nil
}

// Multicast transmits payload from src to every member of group dst,
// including a member on this stack (delivered by loopback, as the Lance
// never interrupts its own machine).
func (st *Stack) Multicast(src, dst Address, payload []byte) error {
	if src == 0 || dst == 0 {
		return errZeroAddress
	}
	if len(payload) > MaxMessageSize {
		return fmt.Errorf("%w: %d bytes", errTooLarge, len(payload))
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return errStackClosed
	}
	if _, ok := st.local[src]; !ok {
		st.mu.Unlock()
		return fmt.Errorf("%w: %v", errUnregistered, src)
	}
	msgID := st.nextMsgID
	st.nextMsgID++
	_, joined := st.groups[dst]
	st.mu.Unlock()

	ch := channelFor(dst)
	st.sendFragments(src, dst, payload, msgID, func(pkt []byte) error {
		return st.station.Multicast(ch, pkt)
	})
	if joined {
		st.loopbackGroup(src, dst, payload)
	}
	return nil
}

// sendFragments splits payload and pushes each fragment through send.
func (st *Stack) sendFragments(src, dst Address, payload []byte, msgID uint32, send func([]byte) error) {
	count := (len(payload) + MaxFragmentPayload - 1) / MaxFragmentPayload
	if count == 0 {
		count = 1
	}
	for i := 0; i < count; i++ {
		lo := i * MaxFragmentPayload
		hi := lo + MaxFragmentPayload
		if hi > len(payload) {
			hi = len(payload)
		}
		h := header{
			typ:       ptData,
			src:       src,
			dst:       dst,
			msgID:     msgID,
			fragIndex: uint16(i),
			fragCount: uint16(count),
			totalLen:  uint32(len(payload)),
		}
		st.meter.Charge(cost.FLIPOut, 0)
		pkt := encodePacket(h, payload[lo:hi])
		if err := send(pkt); err != nil {
			return // link closed or frame invalid: datagram semantics
		}
		st.mu.Lock()
		st.stats.PacketsOut++
		st.mu.Unlock()
	}
}

// loopback delivers a unicast message to a local address. Local handoff
// bypasses FLIP input processing (no packet to decode), so no FLIPIn charge.
func (st *Stack) loopback(src, dst Address, payload []byte, _ uint32) {
	st.mu.Lock()
	h := st.local[dst]
	if h == nil {
		st.stats.NoHandler++
		st.mu.Unlock()
		return
	}
	st.stats.MessagesDelivered++
	st.mu.Unlock()
	p := make([]byte, len(payload))
	copy(p, payload)
	h(Message{Src: src, Dst: dst, Payload: p, SrcNode: st.station.ID()})
}

// loopbackGroup delivers a multicast to the local group member; like
// loopback, it is a kernel-internal handoff with no FLIP input cost.
func (st *Stack) loopbackGroup(src, dst Address, payload []byte) {
	st.mu.Lock()
	h := st.groups[dst]
	if h == nil {
		st.mu.Unlock()
		return
	}
	st.stats.MessagesDelivered++
	st.mu.Unlock()
	p := make([]byte, len(payload))
	copy(p, payload)
	h(Message{Src: src, Dst: dst, Payload: p, SrcNode: st.station.ID()})
}

// queueForLocate buffers a payload until dst is located. Caller holds st.mu.
func (st *Stack) queueForLocate(src, dst Address, payload []byte) {
	p := make([]byte, len(payload))
	copy(p, payload)
	ls := st.pending[dst]
	if ls == nil {
		ls = &locateState{}
		st.pending[dst] = ls
		st.sendLocateLocked(dst, ls)
	}
	ls.queued = append(ls.queued, p)
	ls.srcs = append(ls.srcs, src)
}

// sendLocateLocked broadcasts a locate for dst and arms the retry timer.
// Caller holds st.mu.
func (st *Stack) sendLocateLocked(dst Address, ls *locateState) {
	ls.attempts++
	st.stats.LocatesSent++
	pkt := encodePacket(header{typ: ptLocate, dst: dst, fragCount: 1}, nil)
	// Transmit outside the lock is preferable, but locate is rare and the
	// station send path does not call back into the stack.
	_ = st.station.Multicast(LocateChannel, pkt)
	ls.timer = st.clock.AfterFunc(st.cfg.LocateInterval, func() { st.locateRetry(dst) })
}

func (st *Stack) locateRetry(dst Address) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ls := st.pending[dst]
	if ls == nil || st.closed {
		return
	}
	if ls.attempts >= st.cfg.LocateAttempts {
		st.stats.LocateFailures += uint64(len(ls.queued))
		delete(st.pending, dst)
		return
	}
	st.sendLocateLocked(dst, ls)
}

// onFrame is the link-layer upcall: one interrupt's worth of packet.
func (st *Stack) onFrame(f netw.Frame) {
	st.meter.Charge(cost.FLIPIn, 0)
	h, payload, err := decodePacket(f.Payload)
	if err != nil {
		st.mu.Lock()
		st.stats.Garbled++
		st.mu.Unlock()
		return
	}
	switch h.typ {
	case ptLocate:
		st.handleLocate(h, f.Src)
	case ptHere:
		st.handleHere(h, f.Src)
	case ptData:
		st.handleData(h, payload, f.Src)
	default:
		st.mu.Lock()
		st.stats.Garbled++
		st.mu.Unlock()
	}
}

func (st *Stack) handleLocate(h header, from netw.NodeID) {
	st.mu.Lock()
	_, here := st.local[h.dst]
	st.mu.Unlock()
	if !here {
		return
	}
	reply := encodePacket(header{typ: ptHere, src: h.dst, fragCount: 1}, nil)
	_ = st.station.Send(from, reply)
}

func (st *Stack) handleHere(h header, from netw.NodeID) {
	st.mu.Lock()
	st.routes[h.src] = from
	ls := st.pending[h.src]
	delete(st.pending, h.src)
	if ls != nil && ls.timer != nil {
		ls.timer.Stop()
	}
	st.mu.Unlock()
	if ls == nil {
		return
	}
	for i, payload := range ls.queued {
		src := ls.srcs[i]
		st.mu.Lock()
		msgID := st.nextMsgID
		st.nextMsgID++
		st.mu.Unlock()
		st.sendFragments(src, h.src, payload, msgID, func(pkt []byte) error {
			return st.station.Send(from, pkt)
		})
	}
}

func (st *Stack) handleData(h header, payload []byte, from netw.NodeID) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.stats.PacketsIn++
	// Learn the route back to the sender for free.
	if h.src != 0 {
		st.routes[h.src] = from
	}
	var deliver Handler
	if hdl, ok := st.local[h.dst]; ok {
		deliver = hdl
	} else if hdl, ok := st.groups[h.dst]; ok {
		deliver = hdl
	}
	if deliver == nil {
		st.stats.NoHandler++
		st.mu.Unlock()
		return
	}

	if h.fragCount == 1 {
		st.stats.MessagesDelivered++
		st.mu.Unlock()
		p := make([]byte, len(payload))
		copy(p, payload)
		deliver(Message{Src: h.src, Dst: h.dst, Payload: p, SrcNode: from})
		return
	}

	// Multi-fragment: stash and deliver on completion.
	key := reasmKey{src: h.src, msgID: h.msgID}
	buf := st.reasm[key]
	if buf == nil {
		buf = &reasmBuf{
			frags:   make([][]byte, h.fragCount),
			total:   int(h.fragCount),
			dst:     h.dst,
			srcNode: from,
		}
		st.reasm[key] = buf
		st.clock.AfterFunc(st.cfg.ReassemblyTimeout, func() { st.purgeReasm(key) })
	}
	if int(h.fragCount) != buf.total || int(h.fragIndex) >= buf.total {
		st.stats.Garbled++
		st.mu.Unlock()
		return
	}
	if buf.frags[h.fragIndex] == nil {
		p := make([]byte, len(payload))
		copy(p, payload)
		buf.frags[h.fragIndex] = p
		buf.have++
	}
	if buf.have < buf.total {
		st.mu.Unlock()
		return
	}
	delete(st.reasm, key)
	st.stats.MessagesDelivered++
	st.mu.Unlock()

	full := make([]byte, 0, h.totalLen)
	for _, frag := range buf.frags {
		full = append(full, frag...)
	}
	deliver(Message{Src: h.src, Dst: h.dst, Payload: full, SrcNode: from})
}

func (st *Stack) purgeReasm(key reasmKey) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.reasm[key]; ok {
		delete(st.reasm, key)
		st.stats.ReassemblyDrops++
	}
}
