package flip

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"amoeba/internal/netw/memnet"
	"amoeba/internal/sim"
)

// rig wires n FLIP stacks onto one memnet network.
type rig struct {
	net    *memnet.Network
	stacks []*Stack
}

func newRig(t *testing.T, n int, cfg memnet.Config) *rig {
	t.Helper()
	r := &rig{net: memnet.New(cfg)}
	clock := sim.NewRealClock()
	for i := 0; i < n; i++ {
		st, err := r.net.Attach("node")
		if err != nil {
			t.Fatalf("Attach: %v", err)
		}
		r.stacks = append(r.stacks, NewStack(Config{
			Station:        st,
			Clock:          clock,
			LocateInterval: 5 * time.Millisecond,
		}))
	}
	t.Cleanup(r.net.Close)
	return r
}

// inbox collects messages for one registered address.
type inbox struct {
	mu   sync.Mutex
	msgs []Message
	ch   chan struct{}
}

func newInbox() *inbox { return &inbox{ch: make(chan struct{}, 1024)} }

func (in *inbox) handler() Handler {
	return func(m Message) {
		in.mu.Lock()
		in.msgs = append(in.msgs, m)
		in.mu.Unlock()
		select {
		case in.ch <- struct{}{}:
		default:
		}
	}
}

func (in *inbox) wait(t *testing.T, n int) []Message {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		in.mu.Lock()
		if len(in.msgs) >= n {
			out := make([]Message, len(in.msgs))
			copy(out, in.msgs)
			in.mu.Unlock()
			return out
		}
		in.mu.Unlock()
		select {
		case <-in.ch:
		case <-deadline:
			in.mu.Lock()
			got := len(in.msgs)
			in.mu.Unlock()
			t.Fatalf("timeout waiting for %d messages, have %d", n, got)
		}
	}
}

func (in *inbox) count() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.msgs)
}

func TestUnicastWithLocate(t *testing.T) {
	r := newRig(t, 2, memnet.Config{})
	a, b := r.stacks[0], r.stacks[1]
	addrA, addrB := a.AllocAddress(), b.AllocAddress()
	in := newInbox()
	a.Register(addrA, func(Message) {})
	b.Register(addrB, in.handler())

	// No route for addrB yet: the stack must locate it first.
	if err := a.Send(addrA, addrB, []byte("payload")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	msgs := in.wait(t, 1)
	if msgs[0].Src != addrA || msgs[0].Dst != addrB {
		t.Fatalf("message addressing = %+v", msgs[0])
	}
	if !bytes.Equal(msgs[0].Payload, []byte("payload")) {
		t.Fatalf("payload = %q", msgs[0].Payload)
	}
	if a.Stats().LocatesSent == 0 {
		t.Fatal("no locate was sent")
	}
}

func TestSecondSendUsesCachedRoute(t *testing.T) {
	r := newRig(t, 2, memnet.Config{})
	a, b := r.stacks[0], r.stacks[1]
	addrA, addrB := a.AllocAddress(), b.AllocAddress()
	in := newInbox()
	a.Register(addrA, func(Message) {})
	b.Register(addrB, in.handler())

	_ = a.Send(addrA, addrB, []byte("1"))
	in.wait(t, 1)
	locates := a.Stats().LocatesSent
	_ = a.Send(addrA, addrB, []byte("2"))
	in.wait(t, 2)
	if a.Stats().LocatesSent != locates {
		t.Fatal("second send re-located a cached address")
	}
}

func TestLocateFailureDropsQueued(t *testing.T) {
	r := newRig(t, 1, memnet.Config{})
	a := r.stacks[0]
	addrA := a.AllocAddress()
	a.Register(addrA, func(Message) {})
	// Destination exists nowhere.
	if err := a.Send(addrA, AddressForName("ghost"), []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	deadline := time.After(2 * time.Second)
	for a.Stats().LocateFailures == 0 {
		select {
		case <-deadline:
			t.Fatal("locate never gave up")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestMulticastDeliversToAllMembersIncludingSender(t *testing.T) {
	r := newRig(t, 3, memnet.Config{})
	group := AddressForName("team")
	inboxes := make([]*inbox, 3)
	addrs := make([]Address, 3)
	for i, st := range r.stacks {
		inboxes[i] = newInbox()
		addrs[i] = st.AllocAddress()
		st.Register(addrs[i], func(Message) {})
		st.JoinGroup(group, inboxes[i].handler())
	}
	if err := r.stacks[0].Multicast(addrs[0], group, []byte("all")); err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	for i := range inboxes {
		msgs := inboxes[i].wait(t, 1)
		if msgs[0].Src != addrs[0] || msgs[0].Dst != group {
			t.Fatalf("member %d got %+v", i, msgs[0])
		}
	}
}

func TestMulticastSkipsNonMembers(t *testing.T) {
	r := newRig(t, 3, memnet.Config{})
	group := AddressForName("club")
	a, b, c := r.stacks[0], r.stacks[1], r.stacks[2]
	addrA := a.AllocAddress()
	a.Register(addrA, func(Message) {})
	inB, inC := newInbox(), newInbox()
	b.JoinGroup(group, inB.handler())
	_ = c // c never joins
	cIn := newInbox()
	c.Register(c.AllocAddress(), cIn.handler())

	_ = a.Multicast(addrA, group, []byte("m"))
	inB.wait(t, 1)
	time.Sleep(20 * time.Millisecond)
	if inC.count() != 0 || cIn.count() != 0 {
		t.Fatal("non-member received multicast")
	}
}

func TestLeaveGroupStopsDelivery(t *testing.T) {
	r := newRig(t, 2, memnet.Config{})
	group := AddressForName("g")
	a, b := r.stacks[0], r.stacks[1]
	addrA := a.AllocAddress()
	a.Register(addrA, func(Message) {})
	in := newInbox()
	b.JoinGroup(group, in.handler())
	_ = a.Multicast(addrA, group, []byte("1"))
	in.wait(t, 1)
	b.LeaveGroup(group)
	_ = a.Multicast(addrA, group, []byte("2"))
	time.Sleep(20 * time.Millisecond)
	if in.count() != 1 {
		t.Fatalf("got %d messages after leave, want 1", in.count())
	}
}

func TestLocalLoopbackUnicast(t *testing.T) {
	r := newRig(t, 1, memnet.Config{})
	a := r.stacks[0]
	src, dst := a.AllocAddress(), a.AllocAddress()
	in := newInbox()
	a.Register(src, func(Message) {})
	a.Register(dst, in.handler())
	if err := a.Send(src, dst, []byte("loop")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	msgs := in.wait(t, 1)
	if !bytes.Equal(msgs[0].Payload, []byte("loop")) {
		t.Fatalf("payload = %q", msgs[0].Payload)
	}
}

func TestFragmentationRoundTrip(t *testing.T) {
	r := newRig(t, 2, memnet.Config{})
	a, b := r.stacks[0], r.stacks[1]
	addrA, addrB := a.AllocAddress(), b.AllocAddress()
	in := newInbox()
	a.Register(addrA, func(Message) {})
	b.Register(addrB, in.handler())

	sizes := []int{0, 1, MaxFragmentPayload - 1, MaxFragmentPayload,
		MaxFragmentPayload + 1, 4096, 8000, 3 * MaxFragmentPayload}
	for _, size := range sizes {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		if err := a.Send(addrA, addrB, payload); err != nil {
			t.Fatalf("Send(%d): %v", size, err)
		}
	}
	msgs := in.wait(t, len(sizes))
	for i, size := range sizes {
		if len(msgs[i].Payload) != size {
			t.Fatalf("message %d: got %d bytes, want %d", i, len(msgs[i].Payload), size)
		}
		for j, v := range msgs[i].Payload {
			if v != byte(j*7) {
				t.Fatalf("message %d corrupted at byte %d", i, j)
			}
		}
	}
}

func TestOversizeMessageRejected(t *testing.T) {
	r := newRig(t, 1, memnet.Config{})
	a := r.stacks[0]
	src := a.AllocAddress()
	a.Register(src, func(Message) {})
	if err := a.Send(src, AddressForName("x"), make([]byte, MaxMessageSize+1)); err == nil {
		t.Fatal("oversize send accepted")
	}
	if err := a.Multicast(src, AddressForName("x"), make([]byte, MaxMessageSize+1)); err == nil {
		t.Fatal("oversize multicast accepted")
	}
}

func TestZeroAddressRejected(t *testing.T) {
	r := newRig(t, 1, memnet.Config{})
	a := r.stacks[0]
	if err := a.Send(0, 1, nil); err == nil {
		t.Fatal("zero src accepted")
	}
	if err := a.Send(1, 0, nil); err == nil {
		t.Fatal("zero dst accepted")
	}
}

func TestUnregisteredSourceRejected(t *testing.T) {
	r := newRig(t, 1, memnet.Config{})
	if err := r.stacks[0].Send(42, 43, nil); err == nil {
		t.Fatal("send from unregistered source accepted")
	}
}

func TestGarbledPacketsRejectedByChecksum(t *testing.T) {
	r := newRig(t, 2, memnet.Config{CorruptRate: 1.0, Seed: 3})
	a, b := r.stacks[0], r.stacks[1]
	addrA, addrB := a.AllocAddress(), b.AllocAddress()
	in := newInbox()
	a.Register(addrA, func(Message) {})
	b.Register(addrB, in.handler())
	for i := 0; i < 10; i++ {
		_ = a.Send(addrA, addrB, []byte("data"))
	}
	deadline := time.After(2 * time.Second)
	for b.Stats().Garbled == 0 {
		select {
		case <-deadline:
			t.Fatal("no garbled packets detected despite CorruptRate=1")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if in.count() != 0 {
		t.Fatal("corrupted packet was delivered")
	}
}

func TestClosedStackRejectsSends(t *testing.T) {
	r := newRig(t, 1, memnet.Config{})
	a := r.stacks[0]
	src := a.AllocAddress()
	a.Register(src, func(Message) {})
	a.Close()
	if err := a.Send(src, AddressForName("x"), nil); err == nil {
		t.Fatal("send on closed stack accepted")
	}
}

func TestAllocAddressUniqueAndDeterministic(t *testing.T) {
	r := newRig(t, 2, memnet.Config{})
	a, b := r.stacks[0], r.stacks[1]
	seen := map[Address]bool{}
	for i := 0; i < 100; i++ {
		for _, st := range []*Stack{a, b} {
			addr := st.AllocAddress()
			if addr == 0 || seen[addr] {
				t.Fatalf("duplicate or zero address %v", addr)
			}
			seen[addr] = true
		}
	}
}

func TestAddressForNameStable(t *testing.T) {
	if AddressForName("abc") != AddressForName("abc") {
		t.Fatal("AddressForName not deterministic")
	}
	if AddressForName("abc") == AddressForName("abd") {
		t.Fatal("trivial collision")
	}
	if AddressForName("") == 0 {
		t.Fatal("empty name mapped to zero address")
	}
}

func TestHeaderCodecRoundTrip(t *testing.T) {
	f := func(src, dst uint64, msgID uint32, idx, cnt uint16, body []byte) bool {
		if cnt == 0 {
			cnt = 1
		}
		idx %= cnt
		if len(body) > MaxFragmentPayload {
			body = body[:MaxFragmentPayload]
		}
		h := header{
			typ: ptData, src: Address(src), dst: Address(dst),
			msgID: msgID, fragIndex: idx, fragCount: cnt,
			totalLen: uint32(len(body)),
		}
		pkt := encodePacket(h, body)
		got, payload, err := decodePacket(pkt)
		if err != nil {
			return false
		}
		return got == h && bytes.Equal(payload, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	f := func(flip uint8, pos uint16, body []byte) bool {
		if len(body) > 64 {
			body = body[:64]
		}
		h := header{typ: ptData, src: 1, dst: 2, fragCount: 1, totalLen: uint32(len(body))}
		pkt := encodePacket(h, body)
		if flip == 0 {
			flip = 1
		}
		pkt[int(pos)%len(pkt)] ^= flip
		_, _, err := decodePacket(pkt)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsShortAndBadVersion(t *testing.T) {
	if _, _, err := decodePacket([]byte{1, 2, 3}); err == nil {
		t.Fatal("short packet accepted")
	}
	pkt := encodePacket(header{typ: ptData, fragCount: 1}, nil)
	pkt[0] = 99
	if _, _, err := decodePacket(pkt); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReassemblyTimeoutPurges(t *testing.T) {
	// Drop ~half the fragments so some messages never complete; the
	// reassembly buffers must be purged rather than leak.
	r := newRigWithTimeout(t, memnet.Config{DropRate: 0.5, Seed: 11}, 30*time.Millisecond)
	a, b := r.stacks[0], r.stacks[1]
	addrA, addrB := a.AllocAddress(), b.AllocAddress()
	in := newInbox()
	a.Register(addrA, func(Message) {})
	b.Register(addrB, in.handler())

	payload := make([]byte, 4*MaxFragmentPayload)
	for i := 0; i < 40; i++ {
		_ = a.Send(addrA, addrB, payload)
	}
	deadline := time.After(2 * time.Second)
	for b.Stats().ReassemblyDrops == 0 {
		select {
		case <-deadline:
			t.Fatal("incomplete reassemblies never purged")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func newRigWithTimeout(t *testing.T, cfg memnet.Config, reasm time.Duration) *rig {
	t.Helper()
	r := &rig{net: memnet.New(cfg)}
	clock := sim.NewRealClock()
	for i := 0; i < 2; i++ {
		st, err := r.net.Attach("node")
		if err != nil {
			t.Fatalf("Attach: %v", err)
		}
		r.stacks = append(r.stacks, NewStack(Config{
			Station:           st,
			Clock:             clock,
			LocateInterval:    5 * time.Millisecond,
			ReassemblyTimeout: reasm,
		}))
	}
	t.Cleanup(r.net.Close)
	return r
}

func TestDuplicateFragmentsIgnored(t *testing.T) {
	r := newRig(t, 2, memnet.Config{DupRate: 1.0, Seed: 5})
	a, b := r.stacks[0], r.stacks[1]
	addrA, addrB := a.AllocAddress(), b.AllocAddress()
	in := newInbox()
	a.Register(addrA, func(Message) {})
	b.Register(addrB, in.handler())
	payload := make([]byte, 3*MaxFragmentPayload)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := a.Send(addrA, addrB, payload); err != nil {
		t.Fatalf("Send: %v", err)
	}
	msgs := in.wait(t, 1)
	if !bytes.Equal(msgs[0].Payload, payload) {
		t.Fatal("payload corrupted by duplicate fragments")
	}
}

func TestSimModeDeterministic(t *testing.T) {
	run := func() time.Duration {
		engine := sim.NewEngine(17)
		clock := sim.NewEngineClock(engine)
		// Build two stacks over the simulated Ethernet.
		net := newSimNet(engine)
		a := NewStack(Config{Station: net.station(0), Clock: clock})
		b := NewStack(Config{Station: net.station(1), Clock: clock})
		addrA, addrB := a.AllocAddress(), b.AllocAddress()
		a.Register(addrA, func(Message) {})
		var deliveredAt time.Duration
		b.Register(addrB, func(Message) { deliveredAt = engine.Now() })
		engine.After(0, func() { _ = a.Send(addrA, addrB, []byte("sim")) })
		engine.Run()
		if deliveredAt == 0 {
			t.Fatal("not delivered in sim mode")
		}
		return deliveredAt
	}
	if run() != run() {
		t.Fatal("sim-mode delivery time not deterministic")
	}
}
