package flip

import (
	"amoeba/internal/netsim"
	"amoeba/internal/netw"
	"amoeba/internal/sim"
)

// simNet is a tiny helper exposing netsim stations for FLIP's sim-mode tests.
type simNet struct {
	net      *netsim.Network
	stations []*netsim.Station
}

func newSimNet(engine *sim.Engine) *simNet {
	n := netsim.New(engine, netsim.DefaultCostModel())
	s := &simNet{net: n}
	for i := 0; i < 2; i++ {
		s.stations = append(s.stations, n.AttachStation("node"))
	}
	return s
}

func (s *simNet) station(i int) netw.Station { return s.stations[i] }
