package cm

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"amoeba/internal/flip"
	"amoeba/internal/netw/memnet"
	"amoeba/internal/sim"
)

const testTimeout = 10 * time.Second

type ring struct {
	t    *testing.T
	net  *memnet.Network
	eps  []*Endpoint
	recv []*recorder
}

type recorder struct {
	mu     sync.Mutex
	ds     []Delivery
	notify chan struct{}
}

func (r *recorder) on(d Delivery) {
	r.mu.Lock()
	r.ds = append(r.ds, d)
	r.mu.Unlock()
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

func (r *recorder) wait(t *testing.T, n int) []Delivery {
	t.Helper()
	deadline := time.After(testTimeout)
	for {
		r.mu.Lock()
		if len(r.ds) >= n {
			out := make([]Delivery, len(r.ds))
			copy(out, r.ds)
			r.mu.Unlock()
			return out
		}
		r.mu.Unlock()
		select {
		case <-r.notify:
		case <-deadline:
			r.mu.Lock()
			got := len(r.ds)
			r.mu.Unlock()
			t.Fatalf("timeout waiting for %d deliveries, have %d", n, got)
		}
	}
}

func newRing(t *testing.T, n int, netCfg memnet.Config) *ring {
	t.Helper()
	r := &ring{t: t, net: memnet.New(netCfg)}
	t.Cleanup(r.net.Close)
	group := flip.AddressForName("cm-group")
	stacks := make([]*flip.Stack, n)
	members := make([]flip.Address, n)
	for i := 0; i < n; i++ {
		st, err := r.net.Attach("node")
		if err != nil {
			t.Fatalf("Attach: %v", err)
		}
		stacks[i] = flip.NewStack(flip.Config{
			Station:        st,
			Clock:          sim.NewRealClock(),
			LocateInterval: 5 * time.Millisecond,
		})
		members[i] = stacks[i].AllocAddress()
	}
	for i := 0; i < n; i++ {
		rec := &recorder{notify: make(chan struct{}, 1024)}
		r.recv = append(r.recv, rec)
		ep, err := New(Config{
			Group:         group,
			Self:          members[i],
			Members:       members,
			Stack:         stacks[i],
			Clock:         sim.NewRealClock(),
			RetryInterval: 20 * time.Millisecond,
			NakDelay:      2 * time.Millisecond,
			OnDeliver:     rec.on,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		r.eps = append(r.eps, ep)
	}
	return r
}

func (r *ring) send(i int, payload []byte) error {
	r.t.Helper()
	done := make(chan error, 1)
	r.eps[i].Send(payload, func(e error) { done <- e })
	select {
	case e := <-done:
		return e
	case <-time.After(testTimeout):
		r.t.Fatalf("send from %d timed out", i)
		return nil
	}
}

func TestSingleSenderTotalOrder(t *testing.T) {
	r := newRing(t, 3, memnet.Config{})
	for i := 0; i < 10; i++ {
		if err := r.send(0, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for n, rec := range r.recv {
		ds := rec.wait(t, 10)
		for i := 0; i < 10; i++ {
			if string(ds[i].Payload) != fmt.Sprintf("m%d", i) {
				t.Fatalf("member %d delivery %d = %q", n, i, ds[i].Payload)
			}
			if ds[i].Seq != uint32(i+1) {
				t.Fatalf("member %d delivery %d seq %d", n, i, ds[i].Seq)
			}
		}
	}
}

func TestTokenRotatesAcrossMembers(t *testing.T) {
	r := newRing(t, 3, memnet.Config{})
	const msgs = 9
	for i := 0; i < msgs; i++ {
		if err := r.send(i%3, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	r.recv[0].wait(t, msgs)
	ackers := 0
	for _, ep := range r.eps {
		if ep.Stats().Acked > 0 {
			ackers++
		}
	}
	if ackers < 2 {
		t.Fatalf("token never rotated: %d members acked", ackers)
	}
}

func TestConcurrentSendersAgreeOnOrder(t *testing.T) {
	r := newRing(t, 3, memnet.Config{})
	const per = 10
	var wg sync.WaitGroup
	errs := make(chan error, 3*per)
	for s := 0; s < 3; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				done := make(chan error, 1)
				r.eps[s].Send([]byte(fmt.Sprintf("s%d-%d", s, i)), func(e error) { done <- e })
				errs <- <-done
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	ref := r.recv[0].wait(t, 3*per)
	for n := 1; n < 3; n++ {
		ds := r.recv[n].wait(t, 3*per)
		for i := range ref {
			if ds[i].Seq != ref[i].Seq || string(ds[i].Payload) != string(ref[i].Payload) {
				t.Fatalf("member %d diverges at %d: %q vs %q", n, i, ds[i].Payload, ref[i].Payload)
			}
		}
	}
}

func TestRecoveryUnderLoss(t *testing.T) {
	r := newRing(t, 3, memnet.Config{DropRate: 0.15, Seed: 21})
	const msgs = 15
	for i := 0; i < msgs; i++ {
		if err := r.send(i%3, []byte(fmt.Sprintf("l%d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	ref := r.recv[0].wait(t, msgs)
	for n := 1; n < 3; n++ {
		ds := r.recv[n].wait(t, msgs)
		for i := range ref {
			if ds[i].Seq != ref[i].Seq || string(ds[i].Payload) != string(ref[i].Payload) {
				t.Fatalf("member %d diverges at %d under loss", n, i)
			}
		}
	}
	if r.net.Dropped() == 0 {
		t.Fatal("no drops: test proved nothing")
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	r := newRing(t, 2, memnet.Config{})
	r.eps[1].Close()
	done := make(chan error, 1)
	r.eps[1].Send([]byte("x"), func(e error) { done <- e })
	if err := <-done; err == nil {
		t.Fatal("send on closed endpoint succeeded")
	}
}

func TestFIFOPerOrigin(t *testing.T) {
	r := newRing(t, 2, memnet.Config{})
	const msgs = 20
	for i := 0; i < msgs; i++ {
		if err := r.send(1, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	ds := r.recv[0].wait(t, msgs)
	for i := 0; i < msgs; i++ {
		if ds[i].Payload[0] != byte(i) {
			t.Fatalf("FIFO broken at %d", i)
		}
		if ds[i].Origin != 1 {
			t.Fatalf("origin = %d", ds[i].Origin)
		}
	}
}
