// Package cm implements the Chang–Maxemchuk reliable broadcast protocol
// (ACM TOCS 1984), the baseline the paper compares its sequencer protocol
// against (§6).
//
// Like Amoeba's protocol, CM orders messages through a central point — the
// token site — but differs in the ways the paper calls out:
//
//   - Every message is broadcast, including the ordering acknowledgements,
//     so each broadcast interrupts every machine twice: 2(n−1) interrupts
//     versus n for Amoeba's PB method.
//   - The token site moves to another member on every acknowledgement. If
//     the incoming token site is missing messages it must recover them
//     before acknowledging, costing an extra control message — hence 2 to 3
//     messages per broadcast versus Amoeba's 2.
//
// This implementation covers the failure-free ordering core used by the
// comparison experiments: rotating token site, broadcast data and
// acknowledgements, negative-acknowledgement recovery, and total-order
// delivery. The CM reformation (membership/failure) phase is out of scope —
// the paper's comparison is about the failure-free fast path.
package cm

import (
	"encoding/binary"
	"errors"
	"sync"
	"time"

	"amoeba/internal/cost"
	"amoeba/internal/flip"
	"amoeba/internal/sim"
)

// HeaderSize is the CM packet header size.
const HeaderSize = 24

type pktType uint8

const (
	ptData    pktType = iota + 1 // sender → group: payload, unordered
	ptAck                        // token site → group: seq assignment + token pass
	ptNak                        // member → member: retransmit request
	ptRetrans                    // holder → member: data + its seq
)

// packet layout (24 bytes + payload):
//
//	off size field
//	0   1    type
//	1   1    reserved
//	2   2    origin member (data sender)
//	4   4    localID (origin's message counter)
//	8   4    seq (acks, retrans)
//	12  2    next token holder (acks)
//	14  2    reserved
//	16  4    nak range end
//	20  4    reserved
type packet struct {
	typ     pktType
	origin  uint16
	localID uint32
	seq     uint32
	next    uint16
	nakHi   uint32
	payload []byte
}

func (p packet) encode() []byte {
	buf := make([]byte, HeaderSize+len(p.payload))
	buf[0] = byte(p.typ)
	binary.BigEndian.PutUint16(buf[2:], p.origin)
	binary.BigEndian.PutUint32(buf[4:], p.localID)
	binary.BigEndian.PutUint32(buf[8:], p.seq)
	binary.BigEndian.PutUint16(buf[12:], p.next)
	binary.BigEndian.PutUint32(buf[16:], p.nakHi)
	copy(buf[HeaderSize:], p.payload)
	return buf
}

var errShort = errors.New("cm: packet shorter than header")

func decode(buf []byte) (packet, error) {
	if len(buf) < HeaderSize {
		return packet{}, errShort
	}
	return packet{
		typ:     pktType(buf[0]),
		origin:  binary.BigEndian.Uint16(buf[2:]),
		localID: binary.BigEndian.Uint32(buf[4:]),
		seq:     binary.BigEndian.Uint32(buf[8:]),
		next:    binary.BigEndian.Uint16(buf[12:]),
		nakHi:   binary.BigEndian.Uint32(buf[16:]),
		payload: buf[HeaderSize:],
	}, nil
}

// Delivery is one totally-ordered message.
type Delivery struct {
	Seq     uint32
	Origin  int // member index of the sender
	Payload []byte
}

// Config assembles an Endpoint.
type Config struct {
	// Group is the broadcast address shared by all members.
	Group flip.Address
	// Self is this member's process address.
	Self flip.Address
	// Members lists every member's process address; index = member id.
	// The token starts at member 0.
	Members []flip.Address
	// Stack is the FLIP stack. Required.
	Stack *flip.Stack
	// Clock drives retransmission timers. Required.
	Clock sim.Clock
	// Meter accounts processing; nil disables.
	Meter cost.Meter
	// RetryInterval spaces sender retries (default 50 ms).
	RetryInterval time.Duration
	// NakDelay delays gap recovery (default 2 ms).
	NakDelay time.Duration
	// OnDeliver receives ordered messages.
	OnDeliver func(Delivery)
}

// Stats counts protocol events.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Acked     uint64 // acks this member broadcast as token site
	NaksSent  uint64
	Retrans   uint64
}

type msgKey struct {
	origin  uint16
	localID uint32
}

type entry struct {
	origin  uint16
	localID uint32
	payload []byte
}

// Endpoint is one CM group member.
type Endpoint struct {
	cfg  Config
	self uint16

	mu       sync.Mutex
	closed   bool
	stats    Stats
	actions  []func()
	draining bool

	// Data store: everything broadcast, keyed by origin message id.
	data map[msgKey]*entry
	// Ordering: seq → msgKey, as announced by acks.
	order map[uint32]msgKey
	// acked tracks which messages have a seq (dedup for token duty).
	acked map[msgKey]uint32
	// unacked data in arrival order, awaiting token duty.
	backlog []msgKey
	lastSeq uint32 // highest seq whose assignment we hold
	// maxKnown is the highest seq anyone has mentioned (piggybacked on
	// data packets); maxKnown > lastSeq means we missed an ack — possibly
	// one that named us token holder.
	maxKnown uint32
	holder   uint16 // who we believe holds the token
	deliver  uint32 // next seq to deliver (1-based)

	// Sending.
	nextLocal uint32
	pending   map[uint32]*sendOp // by localID

	nakTimer   sim.Timer
	nakAttempt int
}

type sendOp struct {
	localID uint32
	payload []byte
	done    func(error)
	timer   sim.Timer
	tries   int
}

// New builds and registers a CM endpoint. Call Start to begin.
func New(cfg Config) (*Endpoint, error) {
	if cfg.Stack == nil || cfg.Clock == nil || cfg.Group == 0 || cfg.Self == 0 {
		return nil, errors.New("cm: Group, Self, Stack, and Clock are required")
	}
	if cfg.Meter == nil {
		cfg.Meter = cost.NopMeter{}
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 50 * time.Millisecond
	}
	if cfg.NakDelay <= 0 {
		cfg.NakDelay = 2 * time.Millisecond
	}
	self := -1
	for i, a := range cfg.Members {
		if a == cfg.Self {
			self = i
		}
	}
	if self < 0 {
		return nil, errors.New("cm: Self not in Members")
	}
	ep := &Endpoint{
		cfg:     cfg,
		self:    uint16(self),
		data:    make(map[msgKey]*entry),
		order:   make(map[uint32]msgKey),
		acked:   make(map[msgKey]uint32),
		pending: make(map[uint32]*sendOp),
		deliver: 1,
	}
	cfg.Stack.Register(cfg.Self, ep.onMessage)
	cfg.Stack.JoinGroup(cfg.Group, ep.onMessage)
	return ep, nil
}

// Stats snapshots the counters.
func (ep *Endpoint) Stats() Stats {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.stats
}

// Close detaches the endpoint.
func (ep *Endpoint) Close() {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return
	}
	ep.closed = true
	for _, op := range ep.pending {
		if op.timer != nil {
			op.timer.Stop()
		}
		op := op
		ep.enqueue(func() { op.done(errors.New("cm: endpoint closed")) })
	}
	ep.pending = map[uint32]*sendOp{}
	if ep.nakTimer != nil {
		ep.nakTimer.Stop()
	}
	ep.mu.Unlock()
	ep.drain()
	ep.cfg.Stack.Unregister(ep.cfg.Self)
	ep.cfg.Stack.LeaveGroup(ep.cfg.Group)
}

// Send broadcasts payload; done fires when the message has been ordered.
func (ep *Endpoint) Send(payload []byte, done func(error)) {
	if done == nil {
		done = func(error) {}
	}
	ep.cfg.Meter.Charge(cost.UserSend, len(payload))
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		done(errors.New("cm: endpoint closed"))
		return
	}
	ep.nextLocal++
	op := &sendOp{localID: ep.nextLocal, done: done}
	op.payload = make([]byte, len(payload))
	copy(op.payload, payload)
	ep.pending[op.localID] = op
	ep.transmitLocked(op)
	ep.mu.Unlock()
	ep.drain()
}

func (ep *Endpoint) transmitLocked(op *sendOp) {
	ep.cfg.Meter.Charge(cost.GroupOut, 0)
	// Piggyback our ordering high-water mark: a receiver that missed an
	// acknowledgement (possibly the one passing it the token) detects the
	// gap from it.
	pkt := packet{typ: ptData, origin: ep.self, localID: op.localID, seq: ep.lastSeq, payload: op.payload}.encode()
	ep.enqueue(func() { _ = ep.cfg.Stack.Multicast(ep.cfg.Self, ep.cfg.Group, pkt) })
	op.timer = ep.after(ep.cfg.RetryInterval, func() {
		if o, ok := ep.pending[op.localID]; ok {
			o.tries++
			ep.transmitLocked(o)
		}
	})
}

// --- locking/action plumbing (same discipline as internal/core) -------------

func (ep *Endpoint) enqueue(f func()) { ep.actions = append(ep.actions, f) }

func (ep *Endpoint) drain() {
	ep.mu.Lock()
	for {
		if ep.draining || len(ep.actions) == 0 {
			ep.mu.Unlock()
			return
		}
		ep.draining = true
		acts := ep.actions
		ep.actions = nil
		ep.mu.Unlock()
		for _, a := range acts {
			a()
		}
		ep.mu.Lock()
		ep.draining = false
	}
}

func (ep *Endpoint) after(d time.Duration, fn func()) sim.Timer {
	return ep.cfg.Clock.AfterFunc(d, func() {
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			return
		}
		fn()
		ep.mu.Unlock()
		ep.drain()
	})
}

// --- receive path ------------------------------------------------------------

func (ep *Endpoint) onMessage(m flip.Message) {
	p, err := decode(m.Payload)
	if err != nil {
		return
	}
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return
	}
	switch p.typ {
	case ptData:
		ep.cfg.Meter.Charge(cost.GroupIn, 0)
		ep.handleData(p)
	case ptAck:
		ep.cfg.Meter.Charge(cost.CtrlIn, 0)
		ep.handleAck(p)
	case ptNak:
		ep.cfg.Meter.Charge(cost.CtrlIn, 0)
		ep.handleNak(p, m.Src)
	case ptRetrans:
		ep.cfg.Meter.Charge(cost.GroupIn, 0)
		ep.handleRetrans(p)
	}
	ep.mu.Unlock()
	ep.drain()
}

func (ep *Endpoint) handleData(p packet) {
	key := msgKey{origin: p.origin, localID: p.localID}
	if p.seq > ep.maxKnown {
		ep.maxKnown = p.seq
	}
	if ep.hasGapLocked() {
		ep.armNakLocked()
	}
	if _, ok := ep.data[key]; !ok {
		pl := make([]byte, len(p.payload))
		copy(pl, p.payload)
		ep.data[key] = &entry{origin: p.origin, localID: p.localID, payload: pl}
	}
	seq, ordered := ep.acked[key]
	if !ordered {
		ep.noteBacklogLocked(key)
		ep.tokenDutyLocked()
		return
	}
	// Duplicate data for an ordered message means the origin missed the
	// acknowledgement. Whoever believes it holds the token — plus the
	// origin's deterministic successor as a backup — re-sends the
	// assignment point-to-point.
	successor := int(p.origin+1) % len(ep.cfg.Members)
	if ep.holder == ep.self || int(ep.self) == successor {
		if e, ok := ep.data[key]; ok {
			ep.stats.Retrans++
			pkt := packet{
				typ: ptRetrans, origin: e.origin, localID: e.localID,
				seq: seq, next: ep.holder, payload: e.payload,
			}.encode()
			origin := ep.cfg.Members[int(p.origin)]
			ep.enqueue(func() { _ = ep.cfg.Stack.Send(ep.cfg.Self, origin, pkt) })
		}
	}
	ep.tokenDutyLocked()
}

// noteBacklogLocked queues an unacked message for token duty, once.
func (ep *Endpoint) noteBacklogLocked(key msgKey) {
	for _, k := range ep.backlog {
		if k == key {
			return
		}
	}
	ep.backlog = append(ep.backlog, key)
}

// tokenDutyLocked performs the token site's job: assign the next sequence
// number to the oldest unacked message and pass the token along.
func (ep *Endpoint) tokenDutyLocked() {
	if ep.holder != ep.self {
		return
	}
	// Token duty requires a complete prefix: if we have gaps we must
	// recover them before acknowledging (the protocol's occasional third
	// message).
	if ep.hasGapLocked() {
		ep.armNakLocked()
		return
	}
	for len(ep.backlog) > 0 {
		key := ep.backlog[0]
		if _, done := ep.acked[key]; done {
			ep.backlog = ep.backlog[1:]
			continue
		}
		e, ok := ep.data[key]
		if !ok {
			ep.backlog = ep.backlog[1:]
			continue
		}
		_ = e
		seq := ep.lastSeq + 1
		next := uint16((int(ep.self) + 1) % len(ep.cfg.Members))
		ep.stats.Acked++
		ep.cfg.Meter.Charge(cost.GroupOut, 0)
		pkt := packet{typ: ptAck, origin: key.origin, localID: key.localID, seq: seq, next: next}.encode()
		ep.enqueue(func() { _ = ep.cfg.Stack.Multicast(ep.cfg.Self, ep.cfg.Group, pkt) })
		ep.applyAckLocked(key, seq, next)
		return // token passed; the next site acks the next message
	}
}

func (ep *Endpoint) handleAck(p packet) {
	key := msgKey{origin: p.origin, localID: p.localID}
	ep.applyAckLocked(key, p.seq, p.next)
	ep.tokenDutyLocked()
}

// applyAckLocked folds one sequence assignment into local state.
func (ep *Endpoint) applyAckLocked(key msgKey, seq uint32, next uint16) {
	if old, ok := ep.acked[key]; ok && old != seq {
		return // conflicting duplicate; first assignment wins
	}
	ep.acked[key] = seq
	ep.order[seq] = key
	// Only the newest assignment moves the token; a stale retransmission
	// must not regress our belief about who holds it.
	if seq > ep.lastSeq {
		ep.lastSeq = seq
		ep.holder = next
	}
	// The origin's pending send completes at ordering time.
	if key.origin == ep.self {
		if op, ok := ep.pending[key.localID]; ok {
			delete(ep.pending, key.localID)
			if op.timer != nil {
				op.timer.Stop()
			}
			ep.stats.Sent++
			op := op
			ep.enqueue(func() { op.done(nil) })
		}
	}
	ep.deliverReadyLocked()
	if ep.hasGapLocked() {
		ep.armNakLocked()
	}
}

func (ep *Endpoint) deliverReadyLocked() {
	for {
		key, ok := ep.order[ep.deliver]
		if !ok {
			return
		}
		e, ok := ep.data[key]
		if !ok {
			return // ordered but data missing: NAK will fetch it
		}
		seq := ep.deliver
		ep.deliver++
		ep.stats.Delivered++
		ep.cfg.Meter.Charge(cost.UserDeliver, len(e.payload))
		if ep.cfg.OnDeliver != nil {
			h := ep.cfg.OnDeliver
			pl := make([]byte, len(e.payload))
			copy(pl, e.payload)
			d := Delivery{Seq: seq, Origin: int(e.origin), Payload: pl}
			ep.enqueue(func() { h(d) })
		}
	}
}

// hasGapLocked reports an incomplete prefix: a seq up to the highest known
// assignment whose seq→message mapping or data we lack.
func (ep *Endpoint) hasGapLocked() bool {
	hi := ep.lastSeq
	if ep.maxKnown > hi {
		hi = ep.maxKnown
	}
	for s := ep.deliver; s <= hi; s++ {
		key, ok := ep.order[s]
		if !ok {
			return true
		}
		if _, ok := ep.data[key]; !ok {
			return true
		}
	}
	return false
}

func (ep *Endpoint) armNakLocked() {
	if ep.nakTimer != nil {
		return
	}
	ep.nakTimer = ep.after(ep.cfg.NakDelay, func() {
		ep.nakTimer = nil
		if !ep.hasGapLocked() {
			return
		}
		lo := ep.deliver
		hi := ep.lastSeq
		if ep.maxKnown > hi {
			hi = ep.maxKnown
		}
		ep.stats.NaksSent++
		// Start with the believed token site, then rotate through the
		// membership on each retry — the belief may be wrong, or may
		// even point at ourselves when we missed an earlier ack.
		n := len(ep.cfg.Members)
		idx := (int(ep.holder) + ep.nakAttempt) % n
		if idx == int(ep.self) {
			idx = (idx + 1) % n
		}
		ep.nakAttempt++
		target := ep.cfg.Members[idx]
		pkt := packet{typ: ptNak, seq: lo, nakHi: hi}.encode()
		ep.enqueue(func() { _ = ep.cfg.Stack.Send(ep.cfg.Self, target, pkt) })
		ep.armNakLocked() // keep trying until the gap closes
	})
}

func (ep *Endpoint) handleNak(p packet, from flip.Address) {
	for s := p.seq; s <= p.nakHi && s-p.seq < 64; s++ {
		key, ok := ep.order[s]
		if !ok {
			continue
		}
		e, ok := ep.data[key]
		if !ok {
			continue
		}
		ep.stats.Retrans++
		pkt := packet{
			typ: ptRetrans, origin: e.origin, localID: e.localID,
			seq: s, next: ep.holder, payload: e.payload,
		}.encode()
		ep.enqueue(func() { _ = ep.cfg.Stack.Send(ep.cfg.Self, from, pkt) })
	}
}

func (ep *Endpoint) handleRetrans(p packet) {
	key := msgKey{origin: p.origin, localID: p.localID}
	if _, ok := ep.data[key]; !ok {
		pl := make([]byte, len(p.payload))
		copy(pl, p.payload)
		ep.data[key] = &entry{origin: p.origin, localID: p.localID, payload: pl}
	}
	ep.applyAckLocked(key, p.seq, p.next)
	ep.tokenDutyLocked()
}
