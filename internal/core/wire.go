package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"amoeba/internal/flip"
)

// GroupHeaderSize is the encoded group-protocol header, matching the 28-byte
// group header the paper counts in its 116 bytes of per-packet overhead.
const GroupHeaderSize = 28

// MemberID numbers a member within a group. The sequencer is not always
// member 0 (after recovery any member may sequence), so the sequencer is
// named explicitly in the view.
type MemberID uint16

// noMember marks an invalid or unassigned member id.
const noMember MemberID = 0xffff

// pktType discriminates group-protocol packets.
type pktType uint8

const (
	// Data path.
	ptReq       pktType = iota + 1 // member → sequencer: order this message (PB)
	ptBcast                        // sequencer → group: ordered message
	ptBBData                       // member → group: unordered payload (BB)
	ptAccept                       // sequencer → group: assign seqno to a BB message, or finalise a tentative
	ptTentative                    // sequencer → group: ordered but unaccepted (resilience)
	ptAck                          // member → sequencer: stored tentative seqno
	ptNak                          // member → sequencer: retransmit [seq, aux]
	ptRetrans                      // sequencer → member: retransmitted ordered message
	ptSync                         // sequencer → group: seqno watermark + history floor
	ptLost                         // sequencer → member: seqno unrecoverable after failure (r=0 loss)
	ptStatusReq                    // sequencer → member: report your state
	ptStatus                       // member → sequencer: lastRecv report
	// Membership.
	ptJoinReq  // prospective member → group: request to join
	ptJoinAck  // sequencer → joiner: view snapshot
	ptLeaveReq // member → sequencer: request to leave
	ptStale    // sequencer → sender: your view/membership is stale
	ptHandoff  // departing sequencer → group: new sequencer may take over
	// Recovery (ResetGroup).
	ptResetInvite // coordinator → all: join recovery epoch
	ptResetVote   // member → coordinator: state report
	ptResetFetch  // coordinator → member: send me stored range
	ptResetResult // coordinator → all survivors: new view
	ptResetAck    // member → coordinator: installed new view
)

// MsgKind labels deliveries handed to the application.
type MsgKind uint8

// Delivery kinds. Data carries application payload; the others are
// membership events, totally ordered in the same stream as data (the paper's
// guarantee that joins, leaves, and recoveries are observed in the same order
// by all members).
const (
	KindData MsgKind = iota + 1
	KindJoin
	KindLeave
	KindReset
	KindExpelled // local endpoint was removed from the group
	// KindLost is internal: a sequence number whose message was lost to a
	// processor failure in a resilience-0 group. Never delivered to the
	// application; the stream silently skips it (paper §2.1: with r=0,
	// messages may be lost when processors fail).
	KindLost
	// KindBatch is internal: several KindData messages from one sender
	// coalesced into a single wire request / history entry / multicast. The
	// entry occupies a contiguous seqno range and is delivered to the
	// application as its constituent KindData messages, one per seqno, so
	// batching is invisible above the protocol. The batch body is
	// self-describing (see encodeBatchBody), which keeps the group header
	// at its paper-faithful 28 bytes.
	KindBatch
)

func (k MsgKind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindJoin:
		return "join"
	case KindLeave:
		return "leave"
	case KindReset:
		return "reset"
	case KindExpelled:
		return "expelled"
	case KindLost:
		return "lost"
	case KindBatch:
		return "batch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// packet is the decoded group-protocol header plus payload.
//
// Field use varies by type; the invariant layout is:
//
//	off size field
//	0   1    type
//	1   1    kind (delivery kind for data-bearing packets)
//	2   2    sender member id
//	4   4    view incarnation
//	8   4    seqno
//	12  4    localID (sender-local message id, for dedup and BB matching)
//	16  4    lastRecv (piggybacked acknowledgement state)
//	20  4    aux   (nak range end, history floor, resilience degree, new seq id)
//	24  4    aux2  (BB sender id for accepts, handoff seq, …)
type packet struct {
	typ      pktType
	kind     MsgKind
	sender   MemberID
	view     uint32
	seq      uint32
	localID  uint32
	lastRecv uint32
	aux      uint32
	aux2     uint32
	payload  []byte
}

var errShortGroupPacket = errors.New("core: packet shorter than group header")

// stampsSender reports whether the transmitting member's id goes in the
// sender field. Relayed packet types (broadcasts, tentatives,
// retransmissions) instead carry the ORIGINATING member there, set by the
// sequencer when it constructs them.
func stampsSender(t pktType) bool {
	switch t {
	case ptBcast, ptTentative, ptRetrans, ptJoinAck, ptStale,
		ptResetFetch, ptResetResult, ptStatusReq, ptLost:
		return false
	default:
		return true
	}
}

// carriesPiggyback reports whether the lastRecv field of an inbound packet is
// a member's acknowledgement report the sequencer may consume. Only
// member→sequencer packet types qualify; on relayed packets the field is the
// relayer's own state.
func carriesPiggyback(t pktType) bool {
	switch t {
	case ptReq, ptAck, ptNak, ptStatus, ptBBData, ptLeaveReq:
		return true
	default:
		return false
	}
}

// encode renders the packet for the wire.
func (p packet) encode() []byte {
	buf := make([]byte, GroupHeaderSize+len(p.payload))
	buf[0] = byte(p.typ)
	buf[1] = byte(p.kind)
	binary.BigEndian.PutUint16(buf[2:], uint16(p.sender))
	binary.BigEndian.PutUint32(buf[4:], p.view)
	binary.BigEndian.PutUint32(buf[8:], p.seq)
	binary.BigEndian.PutUint32(buf[12:], p.localID)
	binary.BigEndian.PutUint32(buf[16:], p.lastRecv)
	binary.BigEndian.PutUint32(buf[20:], p.aux)
	binary.BigEndian.PutUint32(buf[24:], p.aux2)
	copy(buf[GroupHeaderSize:], p.payload)
	return buf
}

// decodePacket parses a group packet. The payload aliases buf.
func decodePacket(buf []byte) (packet, error) {
	if len(buf) < GroupHeaderSize {
		return packet{}, errShortGroupPacket
	}
	return packet{
		typ:      pktType(buf[0]),
		kind:     MsgKind(buf[1]),
		sender:   MemberID(binary.BigEndian.Uint16(buf[2:])),
		view:     binary.BigEndian.Uint32(buf[4:]),
		seq:      binary.BigEndian.Uint32(buf[8:]),
		localID:  binary.BigEndian.Uint32(buf[12:]),
		lastRecv: binary.BigEndian.Uint32(buf[16:]),
		aux:      binary.BigEndian.Uint32(buf[20:]),
		aux2:     binary.BigEndian.Uint32(buf[24:]),
		payload:  buf[GroupHeaderSize:],
	}, nil
}

// --- Batch bodies ------------------------------------------------------------
//
// A KindBatch packet or entry carries several application payloads in one
// body: uvarint payload count, then each payload as uvarint length + bytes.
// The count lives in the body rather than the header so every packet type
// that can relay ordered messages (request, broadcast, tentative,
// retransmission) carries batches without new header fields.

// maxBatchWire bounds the payload count a decoder accepts; far above any
// configured MaxBatch, it only rejects garbage.
const maxBatchWire = 1 << 12

var errBadBatch = errors.New("core: malformed batch body")

// encodeBatchBody serialises a multi-payload batch.
func encodeBatchBody(payloads [][]byte) []byte {
	n := binary.MaxVarintLen32
	for _, p := range payloads {
		n += binary.MaxVarintLen32 + len(p)
	}
	buf := make([]byte, 0, n)
	buf = binary.AppendUvarint(buf, uint64(len(payloads)))
	for _, p := range payloads {
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

// decodeBatchBody parses a batch body. The returned payloads alias body.
func decodeBatchBody(body []byte) ([][]byte, error) {
	count, w := binary.Uvarint(body)
	if w <= 0 || count == 0 || count > maxBatchWire {
		return nil, errBadBatch
	}
	body = body[w:]
	payloads := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		n, w := binary.Uvarint(body)
		if w <= 0 || uint64(len(body)-w) < n {
			return nil, errBadBatch
		}
		payloads = append(payloads, body[w:w+int(n):w+int(n)])
		body = body[w+int(n):]
	}
	if len(body) != 0 {
		return nil, errBadBatch
	}
	return payloads, nil
}

// Member describes one group member in a view.
type Member struct {
	// ID is the member's number within the group.
	ID MemberID
	// Addr is the member's FLIP process address.
	Addr flip.Address
}

// view is the group composition as known to an endpoint.
type view struct {
	// incarnation increments on every recovery (ResetGroup); ordinary
	// joins and leaves mutate the member list in-stream without bumping
	// it.
	incarnation uint32
	members     []Member // sorted by ID
	sequencer   MemberID
}

func (v *view) clone() view {
	out := *v
	out.members = make([]Member, len(v.members))
	copy(out.members, v.members)
	return out
}

func (v *view) find(id MemberID) (Member, bool) {
	for _, m := range v.members {
		if m.ID == id {
			return m, true
		}
	}
	return Member{}, false
}

func (v *view) findAddr(a flip.Address) (Member, bool) {
	for _, m := range v.members {
		if m.Addr == a {
			return m, true
		}
	}
	return Member{}, false
}

func (v *view) sequencerAddr() flip.Address {
	if m, ok := v.find(v.sequencer); ok {
		return m.Addr
	}
	return 0
}

// add inserts a member keeping the list sorted by ID.
func (v *view) add(m Member) {
	for i, e := range v.members {
		if e.ID == m.ID {
			v.members[i] = m
			return
		}
		if e.ID > m.ID {
			v.members = append(v.members[:i], append([]Member{m}, v.members[i:]...)...)
			return
		}
	}
	v.members = append(v.members, m)
}

// remove deletes a member by id.
func (v *view) remove(id MemberID) {
	for i, e := range v.members {
		if e.ID == id {
			v.members = append(v.members[:i], v.members[i+1:]...)
			return
		}
	}
}

// nextID returns the lowest unused member id.
func (v *view) nextID() MemberID {
	var id MemberID
	for _, m := range v.members {
		if m.ID == id {
			id++
			continue
		}
		if m.ID > id {
			break
		}
	}
	return id
}

// lowestOther returns the lowest member id that is not exclude, or noMember.
func (v *view) lowestOther(exclude MemberID) MemberID {
	for _, m := range v.members {
		if m.ID != exclude {
			return m.ID
		}
	}
	return noMember
}

// encodeView serialises a view plus a starting sequence number, used in join
// acks and reset results.
func encodeView(v view, startSeq uint32) []byte {
	buf := make([]byte, 4+4+2+2+len(v.members)*10)
	binary.BigEndian.PutUint32(buf[0:], v.incarnation)
	binary.BigEndian.PutUint32(buf[4:], startSeq)
	binary.BigEndian.PutUint16(buf[8:], uint16(v.sequencer))
	binary.BigEndian.PutUint16(buf[10:], uint16(len(v.members)))
	off := 12
	for _, m := range v.members {
		binary.BigEndian.PutUint16(buf[off:], uint16(m.ID))
		binary.BigEndian.PutUint64(buf[off+2:], uint64(m.Addr))
		off += 10
	}
	return buf
}

var errBadView = errors.New("core: malformed view encoding")

// decodeView parses an encoded view.
func decodeView(buf []byte) (view, uint32, error) {
	if len(buf) < 12 {
		return view{}, 0, errBadView
	}
	v := view{
		incarnation: binary.BigEndian.Uint32(buf[0:]),
		sequencer:   MemberID(binary.BigEndian.Uint16(buf[8:])),
	}
	startSeq := binary.BigEndian.Uint32(buf[4:])
	n := int(binary.BigEndian.Uint16(buf[10:]))
	if len(buf) < 12+n*10 {
		return view{}, 0, errBadView
	}
	off := 12
	for i := 0; i < n; i++ {
		v.members = append(v.members, Member{
			ID:   MemberID(binary.BigEndian.Uint16(buf[off:])),
			Addr: flip.Address(binary.BigEndian.Uint64(buf[off+2:])),
		})
		off += 10
	}
	return v, startSeq, nil
}
