package core

import (
	"time"

	"amoeba/internal/flip"
)

// joinAck is a stashed admission response, kept for lost-ack retransmission.
type joinAck struct {
	seq  uint32
	view []byte
}

// This file implements ordered group membership: JoinGroup and LeaveGroup.
// Joins and leaves travel through the normal ordering path as system
// messages, so every member — including the joiner and the leaver — observes
// them at the same point in the totally-ordered stream, the property the
// paper's introduction illustrates with the concurrent JoinGroup /
// SendToGroup example.

// maxJoinAcksRetained bounds the stash of join acknowledgements kept for
// retransmission to joiners whose first ack was lost.
const maxJoinAcksRetained = 64

// sendJoinReqLocked multicasts a join request to the group; only the
// sequencer answers.
func (ep *Endpoint) sendJoinReqLocked() {
	ep.multicastPkt(packet{typ: ptJoinReq})
	ep.joinTimer = ep.after(ep.cfg.RetryInterval, func() {
		ep.joinTimer = nil
		if ep.st != stJoining {
			return
		}
		ep.joinRetries++
		if ep.joinRetries > ep.cfg.MaxRetries {
			ep.st = stDead
			for _, d := range ep.joinDone {
				d := d
				ep.enqueue(func() { d(ErrJoinFailed) })
			}
			ep.joinDone = nil
			return
		}
		ep.sendJoinReqLocked()
	})
}

// handleJoinReq admits a new member (sequencer side): assign the lowest free
// id, order a KindJoin system message carrying the post-join view, and
// acknowledge the joiner with that view once the join is accepted.
func (ep *Endpoint) handleJoinReq(p packet, from flip.Address) {
	if !ep.isSeq || ep.st != stNormal || ep.leaveSeq != 0 {
		return
	}
	// Duplicate join request: the ack was lost; resend the stashed one —
	// unless the join is still tentative (resilience-gated), in which case
	// the joiner must keep waiting for acceptance, not proceed on a view
	// that r crashes could still erase.
	if _, ok := ep.pending.findAddr(from); ok {
		if ack, ok := ep.joinAcks[from]; ok {
			if e, held := ep.hist.get(ack.seq); !held || !e.tentative {
				ep.sendPkt(from, packet{typ: ptJoinAck, seq: ack.seq, payload: ack.view})
			}
		}
		return
	}
	if ep.hist.full() {
		ep.tryPruneLocked()
		if ep.hist.full() {
			return // joiner retries
		}
	}
	id := ep.pending.nextID()
	ep.pending.add(Member{ID: id, Addr: from})
	joinSeq := ep.globalSeq + 1
	viewBytes := encodeView(ep.pending, joinSeq)
	if !ep.orderLocked(KindJoin, id, 0, viewBytes) {
		// Could not order after all: roll the admission back.
		ep.pending.remove(id)
		return
	}
	ep.lastRecv[id] = joinSeq
	ep.lastHeardSetLocked(id)
	ep.stashJoinAckLocked(from, joinSeq, viewBytes)
	if ep.cfg.Resilience > 0 || ep.cfg.leasesOn() {
		// Ack the joiner only once the join survives r crashes — and,
		// with leases, only once the join clears the lease/fence
		// acceptance gate, so a joiner cannot deliver entries that are
		// invisible to a still-live old-regime lease holder; see
		// maybeAcceptLocked → sendPendingJoinAckLocked.
		if ep.pendingJoinAcks == nil {
			ep.pendingJoinAcks = make(map[uint32]flip.Address)
		}
		ep.pendingJoinAcks[joinSeq] = from
		if e, ok := ep.hist.get(joinSeq); ok && !e.tentative {
			ep.sendPendingJoinAckLocked(joinSeq)
		}
		return
	}
	ep.sendPkt(from, packet{typ: ptJoinAck, seq: joinSeq, payload: viewBytes})
}

// stashJoinAckLocked retains an ack for retransmission, bounded.
func (ep *Endpoint) stashJoinAckLocked(from flip.Address, seq uint32, viewBytes []byte) {
	if ep.joinAcks == nil {
		ep.joinAcks = make(map[flip.Address]joinAck)
	}
	if len(ep.joinAcks) >= maxJoinAcksRetained {
		// Evict the oldest stashed ack.
		var oldest flip.Address
		var oldestSeq uint32 = ^uint32(0)
		for a, j := range ep.joinAcks {
			if j.seq < oldestSeq {
				oldest, oldestSeq = a, j.seq
			}
		}
		delete(ep.joinAcks, oldest)
	}
	ep.joinAcks[from] = joinAck{seq: seq, view: viewBytes}
}

// sendPendingJoinAckLocked releases a resilience-gated join ack.
func (ep *Endpoint) sendPendingJoinAckLocked(seq uint32) {
	from, ok := ep.pendingJoinAcks[seq]
	if !ok {
		return
	}
	delete(ep.pendingJoinAcks, seq)
	if ack, ok := ep.joinAcks[from]; ok {
		ep.sendPkt(from, packet{typ: ptJoinAck, seq: ack.seq, payload: ack.view})
	}
}

// handleJoinAck installs the sequencer's admission response (joiner side).
func (ep *Endpoint) handleJoinAck(p packet) {
	if ep.st != stJoining {
		return
	}
	v, joinSeq, err := decodeView(p.payload)
	if err != nil {
		return
	}
	me, ok := v.findAddr(ep.cfg.Self)
	if !ok {
		return
	}
	if ep.joinTimer != nil {
		ep.joinTimer.Stop()
		ep.joinTimer = nil
	}
	ep.st = stNormal
	ep.self = me.ID
	ep.view = v
	ep.pending = v.clone()
	ep.isSeq = false
	ep.nextDeliver = joinSeq
	if joinSeq > ep.maxSeen {
		ep.maxSeen = joinSeq
	}
	// The join itself is the joiner's first stored message: keeping the
	// entry (rather than starting past it) lets this member serve its own
	// join to laggards if it ever coordinates a recovery.
	ep.hist.pruneTo(joinSeq - 1)
	pl := make([]byte, len(p.payload))
	copy(pl, p.payload)
	ep.hist.add(&entry{seq: joinSeq, kind: KindJoin, sender: me.ID, payload: pl})
	ep.deliverReadyLocked()
	for _, d := range ep.joinDone {
		d := d
		ep.enqueue(func() { d(nil) })
	}
	ep.joinDone = nil
	ep.pumpSendLocked()
	ep.checkGapLocked()
}

// --- Leaving -----------------------------------------------------------------

// startLeaveLocked begins an ordered departure.
func (ep *Endpoint) startLeaveLocked() {
	if ep.st == stJoining {
		ep.failLeaveLocked(ErrNotMember)
		return
	}
	if ep.isSeq {
		ep.sequencerLeaveLocked()
		return
	}
	ep.sendLeaveReqLocked(0)
}

func (ep *Endpoint) failLeaveLocked(err error) {
	for _, d := range ep.leaveDone {
		d := d
		ep.enqueue(func() { d(err) })
	}
	ep.leaveDone = nil
}

// sendLeaveReqLocked transmits (and retries) the leave request.
func (ep *Endpoint) sendLeaveReqLocked(tries int) {
	if ep.st == stDead || len(ep.leaveDone) == 0 {
		return
	}
	if tries > ep.cfg.MaxRetries {
		if ep.cfg.AutoReset {
			ep.initiateResetLocked(ep.cfg.MinSurvivors)
			return
		}
		ep.failLeaveLocked(ErrSequencerDead)
		return
	}
	ep.sendPkt(ep.view.sequencerAddr(), packet{typ: ptLeaveReq})
	ep.after(ep.cfg.RetryInterval, func() {
		if ep.st == stDead || len(ep.leaveDone) == 0 {
			return
		}
		ep.sendLeaveReqLocked(tries + 1)
	})
}

// handleLeaveReq orders a member's departure (sequencer side).
func (ep *Endpoint) handleLeaveReq(p packet, from flip.Address) {
	if !ep.isSeq || ep.st != stNormal || ep.leaveSeq != 0 {
		return
	}
	m, ok := ep.pending.findAddr(from)
	if !ok {
		return // already ordered: the leaver will see its own leave
	}
	if !ep.orderLocked(KindLeave, m.ID, 0, nil) {
		return // history full: the leaver retries
	}
	ep.pending.remove(m.ID)
	// Keep serving retransmissions to the leaver until it has seen its
	// own leave; only then may pruning stop waiting for it.
	if ep.leavers == nil {
		ep.leavers = make(map[MemberID]uint32)
	}
	ep.leavers[m.ID] = ep.globalSeq
}

// sequencerLeaveLocked begins the graceful handoff: order our own leave
// naming a successor, keep sequencing duties (retransmissions, redirects)
// until every member has caught up past the leave, then depart.
func (ep *Endpoint) sequencerLeaveLocked() {
	if len(ep.pending.members) == 1 {
		// Last member: the group dissolves with us.
		ep.st = stDead
		ep.stopTimersLocked()
		ep.deliverLocked(Delivery{
			Kind: KindLeave, Seq: ep.globalSeq + 1, Sender: ep.self,
			SenderAddr: ep.cfg.Self, Members: 0,
		})
		ep.failLeaveLocked(nil)
		return
	}
	successor := ep.pending.lowestOther(ep.self)
	if !ep.orderLocked(KindLeave, ep.self, uint32(successor), nil) {
		// History full: try again shortly.
		ep.after(ep.cfg.RetryInterval, func() {
			if ep.isSeq && ep.st == stNormal && ep.leaveSeq == 0 && len(ep.leaveDone) > 0 {
				ep.sequencerLeaveLocked()
			}
		})
		return
	}
	ep.leaveSeq = ep.globalSeq
	ep.pending.remove(ep.self)
	// Safety valve: hand off even if some member never confirms.
	ep.after(time.Duration(ep.cfg.MaxRetries)*ep.cfg.RetryInterval, func() {
		ep.finishHandoffLocked(true)
	})
	ep.maybeFinishHandoffLocked()
}

// maybeFinishHandoffLocked departs once all remaining members have received
// everything up to and including the leave.
func (ep *Endpoint) maybeFinishHandoffLocked() {
	if ep.leaveSeq == 0 || ep.st != stNormal {
		return
	}
	for _, m := range ep.pending.members {
		if ep.lastRecv[m.ID] < ep.leaveSeq {
			return
		}
	}
	ep.finishHandoffLocked(false)
}

// finishHandoffLocked completes the departing sequencer's exit.
func (ep *Endpoint) finishHandoffLocked(forced bool) {
	if ep.leaveSeq == 0 || ep.st != stNormal {
		return
	}
	ep.multicastPkt(packet{typ: ptHandoff, seq: ep.globalSeq, aux: ep.leaveSeq})
	ep.leaveSeq = 0
	ep.st = stDead
	ep.stopTimersLocked()
	ep.failLeaveLocked(nil)
}

// handleHandoff notes the departing sequencer's final watermark.
func (ep *Endpoint) handleHandoff(p packet) {
	if ep.st != stNormal {
		return
	}
	ep.noteSyncLocked(p.seq, 0)
	ep.checkGapLocked()
}

// leftLocked finishes an ordered departure at the leaver, after it has
// delivered its own leave.
func (ep *Endpoint) leftLocked() {
	if ep.isSeq {
		// The departing sequencer lingers in handoff; see
		// finishHandoffLocked.
		return
	}
	ep.st = stDead
	ep.stopTimersLocked()
	ep.leaseDropLocked()
	ep.flushFencedDonesLocked(nil)
	ep.failSendQLocked(ErrNotMember)
	ep.failLeaveLocked(nil)
}

// adoptNewSequencerLocked reacts to a delivered sequencer leave: everyone
// repoints at the successor; the successor itself assumes sequencing duty,
// rebuilding ordering state from its own history.
func (ep *Endpoint) adoptNewSequencerLocked(successor MemberID) {
	if successor == noMember {
		return
	}
	ep.view.sequencer = successor
	if successor != ep.self || ep.isSeq {
		return
	}
	ep.isSeq = true
	ep.pending = ep.view.clone()
	// The leave we just delivered is the last message of the old regime.
	ep.globalSeq = ep.nextDeliver - 1
	ep.lastRecv = make(map[MemberID]uint32, len(ep.pending.members))
	for _, m := range ep.pending.members {
		if m.ID == ep.self {
			continue
		}
		// Conservative: assume others have only what is surely stable;
		// piggybacks will correct this within a round trip.
		ep.lastRecv[m.ID] = ep.hist.floor
	}
	ep.rebuildDedupLocked()
	if ep.nakTimer != nil {
		ep.nakTimer.Stop()
		ep.nakTimer = nil
	}
	// The old sequencer's grants survive its departure (incarnation is
	// unchanged), and we cannot know which holders it considered live:
	// fence until they have all expired, then grant afresh.
	ep.armLeaseFenceLocked()
	ep.leaseSeedHeardLocked()
	ep.armSyncLocked()
	// In-flight sends of our own are now sequenced locally; resend the
	// window in FIFO order (the pump stays suppressed meanwhile, so a
	// synchronous completion cannot order a newer op ahead of an older
	// one).
	ep.resendWindowLocked()
}

// rebuildDedupLocked reconstructs duplicate-suppression state from retained
// history, for a successor or recovered sequencer. Batch entries count with
// their full localID range.
func (ep *Endpoint) rebuildDedupLocked() {
	ep.dedup = make(map[MemberID]dedupEntry)
	for s := ep.hist.floor + 1; s <= ep.globalSeq; s++ {
		e, ok := ep.hist.get(s)
		if !ok || (e.kind != KindData && e.kind != KindBatch) {
			continue
		}
		if d, ok := ep.dedup[e.sender]; !ok || e.lastLocalID() > d.localID {
			ep.dedup[e.sender] = dedupEntry{localID: e.lastLocalID(), seq: e.seq}
		}
	}
}
