package core

import (
	"fmt"
	"testing"
	"time"

	"amoeba/internal/netw/memnet"
)

// TestCoordinatorFetchesFromBetterStockedSurvivor covers the recovery fetch
// path: the member that coordinates recovery is missing recent messages that
// another survivor holds, so it must fetch them before installing the new
// view — and nothing may be lost.
func TestCoordinatorFetchesFromBetterStockedSurvivor(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		// Slow NAK recovery so the lagging member stays behind until
		// recovery forces the issue.
		c.NakDelay = 500 * time.Millisecond
		c.SyncInterval = time.Hour
	})
	// Node 1 misses a burst.
	g.net.Isolate(1, true)
	const msgs = 5
	for i := 0; i < msgs; i++ {
		if err := g.send(2, []byte(fmt.Sprintf("burst-%d", i))); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	g.nodes[2].waitData(msgs)
	// Sequencer dies; the LAGGING member coordinates recovery and must
	// fetch the burst from node 2 to become a complete sequencer.
	g.nodes[0].crash()
	g.net.Isolate(1, false)
	if err := await(t, "reset", func(d func(error)) { g.nodes[1].ep.Reset(2, d) }); err != nil {
		t.Fatalf("reset: %v", err)
	}
	data := g.nodes[1].waitData(msgs)
	for i := 0; i < msgs; i++ {
		if string(data[i].Payload) != fmt.Sprintf("burst-%d", i) {
			t.Fatalf("coordinator data[%d] = %q", i, data[i].Payload)
		}
	}
	info := g.nodes[1].ep.Info()
	if !info.IsSequencer {
		t.Fatal("lagging coordinator did not become sequencer")
	}
	// And it can serve the burst onward (it fetched the payloads).
	if err := g.send(2, []byte("post")); err != nil {
		t.Fatalf("post-reset send: %v", err)
	}
	g.nodes[2].waitData(msgs + 1)
}

// TestLostMarkerSkipsUnrecoverableMessage covers the r=0 loss path: a
// message held only by the crashed sequencer is explicitly skipped, keeping
// the survivors live rather than NAKing forever.
func TestLostMarkerSkipsUnrecoverableMessage(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		c.NakDelay = 5 * time.Millisecond
		c.SyncInterval = time.Hour
	})
	// Both members go deaf; the sequencer orders a message neither sees.
	g.net.Isolate(1, true)
	g.net.Isolate(2, true)
	done := g.sendAsync(0, []byte("doomed"))
	deadline := time.After(testTimeout)
	for g.nodes[0].ep.Stats().Ordered < 4 { // 3 joins + the doomed message
		select {
		case <-deadline:
			t.Fatal("sequencer never ordered the doomed message")
		case <-time.After(2 * time.Millisecond):
		}
	}
	<-done // sequencer self-send completes at ordering
	// Sequencer crashes; survivors recover. The doomed message existed
	// only in the dead sequencer's history.
	g.nodes[0].crash()
	g.net.Isolate(1, false)
	g.net.Isolate(2, false)
	if err := await(t, "reset", func(d func(error)) { g.nodes[1].ep.Reset(2, d) }); err != nil {
		t.Fatalf("reset: %v", err)
	}
	// The survivors continue: new messages deliver even though a seqno
	// from the old epoch is forever missing.
	if err := g.send(2, []byte("alive")); err != nil {
		t.Fatalf("post-reset send: %v", err)
	}
	for _, i := range []int{1, 2} {
		nd := g.nodes[i]
		deadline := time.After(testTimeout)
		for {
			nd.mu.Lock()
			var got bool
			for _, d := range nd.deliveries {
				if d.Kind == KindData && string(d.Payload) == "alive" {
					got = true
				}
				if d.Kind == KindData && string(d.Payload) == "doomed" {
					nd.mu.Unlock()
					t.Fatal("doomed message delivered: it should have died with the sequencer")
				}
			}
			nd.mu.Unlock()
			if got {
				break
			}
			select {
			case <-nd.notify:
			case <-deadline:
				t.Fatalf("member %d never delivered post-reset message", i)
			}
		}
	}
}

// TestLostMarkerAfterResetWithStraggler drives handleLost directly: a
// member that voted with a gap below the recovery target NAKs the new
// sequencer for seqnos nobody can serve and must receive loss markers.
func TestLostMarkerAfterResetWithStraggler(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		c.NakDelay = 5 * time.Millisecond
		c.SyncInterval = 50 * time.Millisecond
	})
	// Node 2 misses a message that ONLY the sequencer ends up holding
	// (node 1 receives it but prunes are impossible — instead, make node
	// 1 miss it too, so after the crash nobody has it).
	g.net.Isolate(1, true)
	g.net.Isolate(2, true)
	done := g.sendAsync(0, []byte("only-sequencer-had-this"))
	deadline := time.After(testTimeout)
	for g.nodes[0].ep.Stats().Ordered < 4 {
		select {
		case <-deadline:
			t.Fatal("never ordered")
		case <-time.After(2 * time.Millisecond):
		}
	}
	<-done
	// One more message that node 1 DOES see, creating a gap at node 2
	// spanning the doomed seqno.
	g.net.Isolate(1, false)
	if err := g.send(0, []byte("node1-sees-this")); err != nil {
		t.Fatalf("send: %v", err)
	}
	g.nodes[1].waitData(1)
	g.nodes[0].crash()
	g.net.Isolate(2, false)
	if err := await(t, "reset", func(d func(error)) { g.nodes[1].ep.Reset(2, d) }); err != nil {
		t.Fatalf("reset: %v", err)
	}
	// Node 2 must catch up fully — the recoverable message delivered, the
	// unrecoverable one skipped via loss markers.
	nd := g.nodes[2]
	deadline = time.After(testTimeout)
	for {
		nd.mu.Lock()
		var sawData bool
		for _, d := range nd.deliveries {
			if d.Kind == KindData && string(d.Payload) == "node1-sees-this" {
				sawData = true
			}
		}
		nd.mu.Unlock()
		if sawData {
			break
		}
		select {
		case <-nd.notify:
		case <-deadline:
			st := nd.ep.Stats()
			t.Fatalf("straggler never caught up (naks=%d lost=%d)", st.NaksSent, st.LostGaps)
		}
	}
}
