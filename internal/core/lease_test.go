package core

import (
	"testing"
	"time"

	"amoeba/internal/netw/memnet"
)

// Lease test parameters: LeaseDur 200ms over a 25ms sync tick gives the
// default guard max(2.5×25ms, 200/8 ms) = 62.5ms, holder validity
// 200−62.5 = 137.5ms renewed every tick, and a silence window of 50ms.
func leaseCfg(c *Config) {
	c.SyncInterval = 25 * time.Millisecond
	c.LeaseDur = 200 * time.Millisecond
}

// waitLeaseHeld polls until the node's lease-held state matches want.
func waitLeaseHeld(t *testing.T, nd *node, want bool, what string) LeaseInfo {
	t.Helper()
	deadline := time.Now().Add(testTimeout)
	for {
		li := nd.ep.Lease()
		if li.Held == want {
			return li
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: lease held=%v, want %v (%+v)", what, li.Held, want, li)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestLeaseGrantCoversCompletedWrites(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, leaseCfg)
	// Grants ride the sync ticks; within a few ticks every member holds.
	for i := 1; i <= 2; i++ {
		li := waitLeaseHeld(t, g.nodes[i], true, "initial grant")
		if !li.Enabled {
			t.Fatalf("node %d reports leases disabled", i)
		}
	}
	// Rule 1: when a send completes, every member holding a lease has the
	// write stored — its read watermark covers the write's seqno.
	if err := g.send(1, []byte("covered")); err != nil {
		t.Fatalf("send: %v", err)
	}
	seq := g.nodes[1].waitData(1)[0].Seq
	for i, nd := range g.nodes {
		li := nd.ep.Lease()
		if li.Held && li.Watermark < seq {
			t.Fatalf("node %d holds a lease but watermark %d < completed write %d", i, li.Watermark, seq)
		}
	}
	// The sequencer granted and the members renewed.
	if s := g.nodes[0].ep.Stats(); s.LeaseGrants == 0 {
		t.Fatal("sequencer recorded no lease grants")
	}
	if s := g.nodes[1].ep.Stats(); s.LeaseRenewals == 0 {
		t.Fatal("member recorded no lease renewals")
	}
}

func TestLeaseFreshAtBoundsStaleness(t *testing.T) {
	g := newGroup(t, 2, memnet.Config{}, leaseCfg)
	if err := g.send(1, []byte("anchor")); err != nil {
		t.Fatalf("send: %v", err)
	}
	// Let a few idle sync ticks land: each is a freshness anchor.
	time.Sleep(4 * g.cfg.SyncInterval)
	li := g.nodes[1].ep.Lease()
	bound, ok := g.nodes[1].ep.FreshAt(li.Watermark)
	if !ok {
		t.Fatalf("no staleness bound at own watermark %d", li.Watermark)
	}
	if bound > 4*g.cfg.SyncInterval {
		t.Fatalf("staleness bound %v exceeds the tick cadence", bound)
	}
	// State that never applied anything has no bound: fall back to the
	// ordered path, never serve unboundedly stale data.
	if _, ok := g.nodes[1].ep.FreshAt(0); ok {
		t.Fatal("FreshAt(0) produced a bound for never-applied state")
	}
}

func TestLeaseGrantingSuspendedBySilence(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, leaseCfg)
	waitLeaseHeld(t, g.nodes[1], true, "initial grant")
	// Rule 2: one silent member suspends ALL granting, so even the
	// reachable holder's lease lapses within LeaseDur.
	g.net.Isolate(2, true)
	waitLeaseHeld(t, g.nodes[1], false, "after peer silenced")
	// The sequencer's own read authority dies with its granting.
	if li := g.nodes[0].ep.Lease(); li.Held {
		t.Fatal("sequencer still claims read authority with a silent member")
	}
	// Heal: granting resumes.
	g.net.Isolate(2, false)
	waitLeaseHeld(t, g.nodes[1], true, "after heal")
}

func TestLeaseWriteWaitsOutPartitionedHolder(t *testing.T) {
	// A partitioned holder cannot ack, so acceptance (and the sender's
	// completion) must wait until its lease has expired — the moment it
	// can no longer serve a read missing this write.
	g := newGroup(t, 3, memnet.Config{}, leaseCfg)
	waitLeaseHeld(t, g.nodes[2], true, "initial grant")
	g.net.Isolate(2, true)
	start := time.Now()
	if err := g.send(1, []byte("conflicting")); err != nil {
		t.Fatalf("send: %v", err)
	}
	// The partitioned holder's lease must be dead by the time the write
	// completed; it stays dead (no renewals cross the partition), so
	// checking after completion is race-free.
	if li := g.nodes[2].ep.Lease(); li.Held {
		t.Fatalf("partitioned holder still holds a lease after a write completed (%+v)", li)
	}
	if elapsed := time.Since(start); elapsed < g.cfg.LeaseDur/2 {
		t.Fatalf("write completed in %v: did not wait for the holder's lease", elapsed)
	}
}

func TestLeaseFailoverFencesUntilOldGrantsExpire(t *testing.T) {
	// Rule 3, the issue's headline safety case: sequencer crashes while a
	// partitioned member still holds a lease. The new sequencer must not
	// commit (or complete) a conflicting write before that lease expires.
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		leaseCfg(c)
		c.AutoReset = true
		c.MinSurvivors = 1
		c.MaxRetries = 3
		c.RetryInterval = 15 * time.Millisecond
	})
	waitLeaseHeld(t, g.nodes[2], true, "initial grant")
	g.net.Isolate(2, true) // old-regime holder, out of contact
	g.nodes[0].crash()     // sequencer dies; node 1 recovers alone

	if err := g.send(1, []byte("new-regime")); err != nil {
		t.Fatalf("send after failover: %v", err)
	}
	// By completion time the new sequencer fenced, and the stranded
	// holder's lease is gone.
	if s := g.nodes[1].ep.Stats(); s.LeaseFences == 0 {
		t.Fatal("new sequencer never armed the failover fence")
	}
	if li := g.nodes[2].ep.Lease(); li.Held {
		t.Fatalf("old-regime holder survived the failover fence (%+v)", li)
	}
	info := g.nodes[1].ep.Info()
	if !info.IsSequencer || info.State != "normal" {
		t.Fatalf("survivor did not take over cleanly: %+v", info)
	}
	// And the new regime grants again once members return: rejoin node 2's
	// replacement via a fresh joiner to prove granting recovered.
	nd := g.addNode(false)
	waitLeaseHeld(t, nd, true, "grant in new regime")
}

func TestLeaseRecoveryFreezeDropsHolderLease(t *testing.T) {
	// Freezing for a recovery vote drops the local lease immediately: the
	// member's silence is only safe if it also stops serving.
	g := newGroup(t, 3, memnet.Config{}, leaseCfg)
	waitLeaseHeld(t, g.nodes[1], true, "initial grant")
	if err := await(t, "reset", func(d func(error)) { g.nodes[1].ep.Reset(3, d) }); err != nil {
		t.Fatalf("reset: %v", err)
	}
	// After the epoch change the lease state is from the new incarnation.
	li := waitLeaseHeld(t, g.nodes[2], true, "grant after reset")
	if li.Incarnation < 2 {
		t.Fatalf("lease not re-granted in the new incarnation: %+v", li)
	}
	requireSameOrder(t, g.nodes, g.nodes[0].ep.Info().NextSeq-1)
}
