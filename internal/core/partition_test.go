package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"amoeba/internal/netw/memnet"
)

// These tests exercise the paper's unreliable failure detector with
// partitions rather than crashes: the "dead" member is alive the whole time,
// which is exactly the case the paper acknowledges can be misjudged ("some
// processes may be declared dead although they are functioning fine").

func TestPartitionedSequencerTriggersAutoReset(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		c.AutoReset = true
		c.MinSurvivors = 2
		c.MaxRetries = 3
		c.RetryInterval = 15 * time.Millisecond
	})
	// Cut the sequencer's cable. It is still running.
	g.net.Isolate(0, true)
	// A member's send exhausts retries, recovery runs automatically, and
	// the send completes in the new view.
	if err := g.send(1, []byte("over-the-partition")); err != nil {
		t.Fatalf("send across partition: %v", err)
	}
	data := g.nodes[2].waitData(1)
	if string(data[0].Payload) != "over-the-partition" {
		t.Fatalf("delivery = %q", data[0].Payload)
	}
	info := g.nodes[1].ep.Info()
	if len(info.Members) != 2 {
		t.Fatalf("view still has %d members", len(info.Members))
	}
}

func TestPartitionedMemberLearnsOfExpulsionOnHeal(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		c.RetryInterval = 15 * time.Millisecond
	})
	// Partition member 2, rebuild without it, heal the partition.
	g.net.Isolate(2, true)
	if err := await(t, "reset", func(d func(error)) { g.nodes[0].ep.Reset(2, d) }); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if err := g.send(1, []byte("while-partitioned")); err != nil {
		t.Fatalf("send: %v", err)
	}
	g.net.Isolate(2, false)
	// The zombie tries to participate; the sequencer's stale reply turns
	// into a KindExpelled delivery.
	done := make(chan error, 1)
	g.nodes[2].ep.Send([]byte("zombie"), func(e error) { done <- e })
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expelled member's send succeeded")
		}
	case <-time.After(testTimeout):
		t.Fatal("expelled member's send never resolved")
	}
	deadline := time.After(testTimeout)
	for {
		g.nodes[2].mu.Lock()
		var expelled bool
		for _, d := range g.nodes[2].deliveries {
			if d.Kind == KindExpelled {
				expelled = true
			}
		}
		g.nodes[2].mu.Unlock()
		if expelled {
			break
		}
		select {
		case <-g.nodes[2].notify:
		case <-deadline:
			t.Fatal("expelled member never delivered KindExpelled")
		}
	}
	// The zombie's message must NOT have been delivered to the group.
	for _, i := range []int{0, 1} {
		g.nodes[i].mu.Lock()
		for _, d := range g.nodes[i].deliveries {
			if d.Kind == KindData && string(d.Payload) == "zombie" {
				t.Errorf("member %d delivered the expelled member's message", i)
			}
		}
		g.nodes[i].mu.Unlock()
	}
}

func TestTransientPartitionHealsWithoutReset(t *testing.T) {
	// A short partition is indistinguishable from loss: once healed, NAK
	// recovery catches the member up without any membership change.
	g := newGroup(t, 3, memnet.Config{}, nil)
	g.net.Isolate(2, true)
	for i := 0; i < 5; i++ {
		if err := g.send(1, []byte(fmt.Sprintf("gap-%d", i))); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	g.net.Isolate(2, false)
	// The sequencer's periodic sync exposes the gap; NAKs close it.
	data := g.nodes[2].waitData(5)
	for i := range data {
		if string(data[i].Payload) != fmt.Sprintf("gap-%d", i) {
			t.Fatalf("data[%d] = %q after heal", i, data[i].Payload)
		}
	}
	if g.nodes[2].ep.Stats().NaksSent == 0 {
		t.Fatal("member caught up without NAKs: partition never bit")
	}
	info := g.nodes[2].ep.Info()
	if len(info.Members) != 3 || info.Incarnation != 1 {
		t.Fatalf("membership changed for a transient partition: %+v", info)
	}
}

func TestSequencerExpelsSilentMemberUnderHistoryPressure(t *testing.T) {
	// A partitioned member pins the history buffer; with AutoReset the
	// sequencer's status probes declare it dead and recovery expels it,
	// unblocking the group.
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		c.AutoReset = true
		c.MinSurvivors = 2
		c.HistorySize = 8
		c.StatusTimeout = 15 * time.Millisecond
		c.StatusRetries = 2
	})
	g.net.Isolate(2, true)
	// Keep sending: the history fills, probes fail, recovery expels the
	// silent member, and sends keep completing.
	for i := 0; i < 40; i++ {
		if err := g.send(1, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	deadline := time.After(testTimeout)
	for len(g.nodes[0].ep.Info().Members) != 2 {
		select {
		case <-deadline:
			t.Fatalf("silent member never expelled: %+v", g.nodes[0].ep.Info())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestResetFailsCleanlyWhenAllOthersPartitioned(t *testing.T) {
	g := newGroup(t, 2, memnet.Config{}, nil)
	g.net.Isolate(1, true)
	// Reset demanding both members cannot finish while the partition
	// holds…
	done := make(chan error, 1)
	g.nodes[0].ep.Reset(2, func(e error) { done <- e })
	select {
	case err := <-done:
		t.Fatalf("reset completed despite partition: %v", err)
	case <-time.After(300 * time.Millisecond):
	}
	// …but completes as soon as it heals (the paper: the group blocks
	// until enough processors recover).
	g.net.Isolate(1, false)
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("reset after heal: %v", err)
		}
	case <-time.After(testTimeout):
		t.Fatal("reset never completed after heal")
	}
	info := g.nodes[0].ep.Info()
	if len(info.Members) != 2 {
		t.Fatalf("healed reset lost a member: %+v", info)
	}
}
