package core

import (
	"time"

	"amoeba/internal/cost"
	"amoeba/internal/flip"
	"amoeba/internal/sim"
	"amoeba/obs"
)

// Obs is the endpoint's observability wiring: stage-latency histograms for
// the sequencer pipeline (history append, multicast, resilience-ack
// completion), occupancy gauges for the sender pipeline, and the flight
// recorder for protocol events. Every field is optional — a nil instrument
// is the no-op sink — so the zero Obs disables everything at the cost of
// nil checks.
type Obs struct {
	// Append observes the sequencer's receive→history-append latency per
	// ordered entry (amoeba_seq_append_ns).
	Append *obs.Histogram
	// Multicast observes receive→multicast-transmitted latency: the order
	// decision plus the deferred transport send (amoeba_seq_multicast_ns).
	Multicast *obs.Histogram
	// AckComplete observes order→resilience-acceptance latency for
	// tentative entries (amoeba_seq_ack_complete_ns).
	AckComplete *obs.Histogram
	// BatchFill observes the per-entry batch size in messages
	// (amoeba_seq_batch_fill).
	BatchFill *obs.Histogram
	// SendQueue tracks queued ordering requests (amoeba_send_queue_depth);
	// SendWindow tracks the in-flight subset (amoeba_send_window_active).
	// Both are delta-updated, so several endpoints can share them.
	SendQueue  *obs.Gauge
	SendWindow *obs.Gauge
	// Flight records protocol events (expulsions, NAKs, retransmissions,
	// recoveries) for postmortems.
	Flight *obs.Recorder
	// Tag scopes this endpoint's flight events, e.g. "core/<group>".
	Tag string
}

// Method selects the broadcast wire strategy.
type Method uint8

// Broadcast methods. MethodPB sends the payload point-to-point to the
// sequencer, which multicasts it: two network transits of the data, one
// interrupt per receiver. MethodBB multicasts the payload directly and the
// sequencer multicasts a short accept: one transit of the data, two
// interrupts per receiver. MethodAuto switches on message size, as the
// Amoeba implementation does: small messages use PB (bandwidth is cheap,
// interrupts are not), large messages use BB (halving the bandwidth
// dominates).
const (
	MethodAuto Method = iota
	MethodPB
	MethodBB
)

func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodPB:
		return "PB"
	case MethodBB:
		return "BB"
	default:
		return "method(?)"
	}
}

// Transport is the sending half of the endpoint's world: point-to-point and
// group multicast FLIP service. Delivery of inbound packets happens through
// Endpoint.HandlePacket.
type Transport interface {
	// Send transmits a group-protocol packet to the process address dst.
	Send(dst flip.Address, payload []byte) error
	// Multicast transmits a group-protocol packet to every group member,
	// including the local one (loopback).
	Multicast(payload []byte) error
}

// Delivery is one totally-ordered message handed to the application.
// Deliveries arrive in strictly increasing Seq order, identically at every
// member of the group.
type Delivery struct {
	// Kind is KindData for application messages or a membership event.
	Kind MsgKind
	// Seq is the global sequence number.
	Seq uint32
	// Sender is the member that sent the message (for membership events,
	// the member that joined or left).
	Sender MemberID
	// SenderAddr is the FLIP address of the sender.
	SenderAddr flip.Address
	// Payload is the application data (KindData only). The receiver owns
	// it.
	Payload []byte
	// Members is the group size after applying this event.
	Members int
}

// Info is a GetInfoGroup snapshot.
type Info struct {
	// Group is the group's FLIP address.
	Group flip.Address
	// Incarnation counts recoveries survived.
	Incarnation uint32
	// Self is this endpoint's member id.
	Self MemberID
	// Sequencer is the current sequencer's member id.
	Sequencer MemberID
	// IsSequencer reports whether this endpoint sequences the group.
	IsSequencer bool
	// Members lists the current membership sorted by id.
	Members []Member
	// NextSeq is the next sequence number this endpoint expects to
	// deliver.
	NextSeq uint32
	// Resilience is the group's configured resilience degree.
	Resilience int
	// State names the endpoint's protocol state: "joining", "normal",
	// "recovering" (frozen, voted in a recovery), "coordinating" (running
	// a recovery), or "dead".
	State string
}

// Config assembles an Endpoint. Group, Self, Transport, and Clock are
// required; zero timeouts take the defaults noted on each field.
type Config struct {
	// Group is the group's FLIP address.
	Group flip.Address
	// Self is this member's FLIP process address.
	Self flip.Address
	// Transport sends packets; inbound packets must be fed to
	// Endpoint.HandlePacket.
	Transport Transport
	// Clock drives every protocol timer.
	Clock sim.Clock
	// Meter accounts per-layer processing; nil disables accounting.
	Meter cost.Meter

	// Resilience is the group's resilience degree r: SendToGroup does not
	// complete until r other members have stored the message, and any r
	// member crashes lose no completed message.
	Resilience int
	// Method selects PB, BB, or automatic switching.
	Method Method
	// BBThreshold is the payload size at or above which MethodAuto uses
	// BB. Default 1024 bytes.
	BBThreshold int
	// HistorySize bounds the history buffer. Default 128, as in the
	// paper's experiments.
	HistorySize int
	// MaxMessage bounds application payloads. Default 64 KiB (the paper
	// measures up to 8000 bytes but the protocol handles more).
	MaxMessage int
	// SendWindow is the number of ordering requests one member keeps in
	// flight (per-sender pipelining). Sends beyond the window coalesce
	// into multi-payload batch requests (PB method only), amortising the
	// sequencer's per-request processing — the paper's conclusion 1
	// (processing-bound, not protocol-bound) turned into a knob.
	// Per-sender FIFO is preserved: localIDs stay contiguous and the
	// sequencer refuses to order a request out of localID order. 1
	// restores the seed's one-request-at-a-time behaviour. Default 4.
	SendWindow int
	// MaxBatch bounds the payloads coalesced into one batch request.
	// Default 16; 1 disables coalescing (batches also stay within
	// MaxMessage bytes of payload regardless of count).
	MaxBatch int
	// FirstSeq seeds a creator's sequence space: the new group's first
	// entry is ordered at FirstSeq+1, as if FirstSeq messages had already
	// been delivered. A process reforming a group from a durable log sets
	// it to the highest recovered sequence number, so the re-created
	// group's history continues the recovered timeline instead of reusing
	// numbers the log already binds to old entries. Zero (the default)
	// starts at 1, as always; joiners ignore it.
	FirstSeq uint32

	// RetryInterval spaces sender retransmissions of unacknowledged
	// requests and joins. Default 50 ms.
	RetryInterval time.Duration
	// MaxRetries bounds request retransmissions before the sequencer is
	// suspected dead. Default 10.
	MaxRetries int
	// NakDelay is how long a member waits after detecting a sequence gap
	// before sending a retransmission request, allowing in-flight packets
	// to settle. Default 2 ms.
	NakDelay time.Duration
	// SyncInterval is the idle sequencer's watermark multicast period,
	// letting members discover missed trailing messages. Default 500 ms.
	SyncInterval time.Duration
	// StatusTimeout bounds a member's response to a status request before
	// the sequencer suspects it dead. Default 100 ms.
	StatusTimeout time.Duration
	// StatusRetries is how many unanswered status requests (the paper's
	// "certain number of trials") declare a member dead. Default 3.
	StatusRetries int
	// IdleProbeTicks is the number of consecutive idle sync ticks a
	// member may lag the sequencer's delivery point before it is probed.
	// Without it a dead member is only discovered under traffic (send
	// retries, history pressure, a stalled tentative) — a corpse in an
	// idle group would sit in the view forever. A live idle member
	// answers the probe (its piggybacked acknowledgement clears the lag);
	// a dead one escalates through the status-probe failure detector and
	// is expelled (AutoReset) or surfaced to the application's Reset.
	// Default 2 (≈ one second at the default SyncInterval); negative
	// disables the probe.
	IdleProbeTicks int
	// ResetTimeout bounds each wait during recovery (votes, fetches,
	// acks) before retrying or declaring non-responders dead. Default
	// 100 ms.
	ResetTimeout time.Duration
	// ResetRetries bounds invite/result retransmissions per recovery
	// round. Default 3.
	ResetRetries int
	// AutoReset makes the endpoint start recovery on its own when it
	// suspects the sequencer has failed (send retries exhausted). When
	// false, suspicion is surfaced as ErrSequencerDead and the
	// application decides whether to call Reset — the paper's
	// "user-requested" recovery.
	AutoReset bool
	// MinSurvivors is the quorum recovery requires before installing a
	// new view; recovery retries until it can gather this many members.
	// Default 1.
	MinSurvivors int

	// LeaseDur > 0 enables sequencer-granted read leases: grants ride the
	// sync ticks, every message takes the tentative/accept path, and
	// acceptance waits for every live lease holder's stored-ack — so a
	// holder with a valid lease serves linearizable reads from local state
	// (see lease.go and Endpoint.Lease). Failover pauses the group for up
	// to LeaseDur+LeaseGuard while old grants expire, so keep LeaseDur
	// moderate (≥ 8×SyncInterval recommended for renewal headroom, and as
	// small as the availability budget allows). Zero (the default)
	// disables leases entirely.
	LeaseDur time.Duration
	// LeaseGuard is the lease safety margin: holders deduct it from the
	// granted duration, granters add it to their own bookkeeping, and it
	// bounds the silence window after which granting is suspended. It
	// absorbs grant transit delay and timer skew between endpoints.
	// Default max(2.5×SyncInterval, LeaseDur/8), capped at LeaseDur/2.
	LeaseGuard time.Duration

	// OnDeliver receives ordered messages. Called strictly in Seq order,
	// never concurrently, and never while internal locks are held (the
	// handler may call back into the endpoint).
	OnDeliver func(Delivery)

	// Obs wires the endpoint into a node's observability hub; the zero
	// value is the no-op sink.
	Obs Obs
}

func (c *Config) applyDefaults() {
	if c.Meter == nil {
		c.Meter = cost.NopMeter{}
	}
	if c.BBThreshold <= 0 {
		c.BBThreshold = 1024
	}
	if c.HistorySize <= 0 {
		c.HistorySize = 128
	}
	if c.MaxMessage <= 0 {
		c.MaxMessage = 64 << 10
	}
	if c.SendWindow <= 0 {
		c.SendWindow = 4
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 50 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 10
	}
	if c.NakDelay <= 0 {
		c.NakDelay = 2 * time.Millisecond
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 500 * time.Millisecond
	}
	if c.StatusTimeout <= 0 {
		c.StatusTimeout = 100 * time.Millisecond
	}
	if c.StatusRetries <= 0 {
		c.StatusRetries = 3
	}
	if c.IdleProbeTicks == 0 {
		c.IdleProbeTicks = 2
	}
	if c.ResetTimeout <= 0 {
		c.ResetTimeout = 100 * time.Millisecond
	}
	if c.ResetRetries <= 0 {
		c.ResetRetries = 3
	}
	if c.MinSurvivors <= 0 {
		c.MinSurvivors = 1
	}
	if c.LeaseDur > 0 && c.LeaseGuard <= 0 {
		g := 5 * c.SyncInterval / 2
		if g < c.LeaseDur/8 {
			g = c.LeaseDur / 8
		}
		if g > c.LeaseDur/2 {
			g = c.LeaseDur / 2
		}
		c.LeaseGuard = g
	}
}
