package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"amoeba/internal/netw/memnet"
)

// blockingCall wraps a callback API into a blocking wait.
func await(t *testing.T, what string, start func(done func(error))) error {
	t.Helper()
	ch := make(chan error, 1)
	start(func(e error) { ch <- e })
	select {
	case e := <-ch:
		return e
	case <-time.After(testTimeout):
		t.Fatalf("%s timed out", what)
		return nil
	}
}

func TestMemberLeaveIsOrderedEverywhere(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, nil)
	if err := await(t, "leave", func(d func(error)) { g.nodes[1].ep.Leave(d) }); err != nil {
		t.Fatalf("leave: %v", err)
	}
	// Leave occupies seq 4 (after 3 joins); both survivors must see it.
	for _, i := range []int{0, 2} {
		ds := g.nodes[i].waitForSeq(4)
		last := ds[len(ds)-1]
		if last.Kind != KindLeave || last.Sender != 1 || last.Members != 2 {
			t.Fatalf("node %d saw %+v", i, last)
		}
		info := g.nodes[i].ep.Info()
		if len(info.Members) != 2 {
			t.Fatalf("node %d has %d members", i, len(info.Members))
		}
	}
	// The leaver saw its own leave as its final delivery.
	ds := g.nodes[1].waitForSeq(4)
	if ds[len(ds)-1].Kind != KindLeave || ds[len(ds)-1].Sender != 1 {
		t.Fatalf("leaver saw %+v", ds[len(ds)-1])
	}
	// And can no longer send.
	if err := await(t, "post-leave send", func(d func(error)) { g.nodes[1].ep.Send([]byte("x"), d) }); err == nil {
		t.Fatal("send after leave succeeded")
	}
	// The survivors still can.
	if err := g.send(2, []byte("after-leave")); err != nil {
		t.Fatalf("survivor send: %v", err)
	}
	g.nodes[0].waitData(1)
}

func TestSequencerLeaveHandsOff(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, nil)
	if err := await(t, "sequencer leave", func(d func(error)) { g.nodes[0].ep.Leave(d) }); err != nil {
		t.Fatalf("leave: %v", err)
	}
	// Node 1 (lowest survivor) must take over sequencing.
	deadline := time.After(testTimeout)
	for !g.nodes[1].ep.Info().IsSequencer {
		select {
		case <-deadline:
			t.Fatal("successor never became sequencer")
		case <-time.After(5 * time.Millisecond):
		}
	}
	// The group remains fully operational under the new sequencer.
	for i := 0; i < 5; i++ {
		if err := g.send(2, []byte(fmt.Sprintf("post-handoff-%d", i))); err != nil {
			t.Fatalf("send %d after handoff: %v", i, err)
		}
	}
	d1 := g.nodes[1].waitData(5)
	d2 := g.nodes[2].waitData(5)
	for i := range d1 {
		if err := sameDelivery(d1[i], d2[i]); err != nil {
			t.Fatalf("post-handoff divergence at %d: %v", i, err)
		}
	}
	info := g.nodes[2].ep.Info()
	if info.Sequencer != 1 || len(info.Members) != 2 {
		t.Fatalf("info after handoff: %+v", info)
	}
}

func TestLastMemberLeaveDissolvesGroup(t *testing.T) {
	g := newGroup(t, 1, memnet.Config{}, nil)
	if err := await(t, "last leave", func(d func(error)) { g.nodes[0].ep.Leave(d) }); err != nil {
		t.Fatalf("leave: %v", err)
	}
	ds := g.nodes[0].waitDeliveries(2)
	if ds[1].Kind != KindLeave || ds[1].Members != 0 {
		t.Fatalf("dissolution delivery = %+v", ds[1])
	}
}

func TestResetAfterSequencerCrash(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, nil)
	// Establish some pre-crash traffic.
	for i := 0; i < 3; i++ {
		if err := g.send(1, []byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	g.nodes[2].waitData(3)
	g.nodes[0].crash()

	if err := await(t, "reset", func(d func(error)) { g.nodes[1].ep.Reset(2, d) }); err != nil {
		t.Fatalf("reset: %v", err)
	}
	info := g.nodes[1].ep.Info()
	if !info.IsSequencer || len(info.Members) != 2 {
		t.Fatalf("post-reset info: %+v", info)
	}
	if info.Incarnation < 2 {
		t.Fatalf("incarnation did not advance: %+v", info)
	}
	// Both survivors observe the reset event in-stream.
	for _, i := range []int{1, 2} {
		nd := g.nodes[i]
		nd.mu.Lock()
		var sawReset bool
		for _, d := range nd.deliveries {
			if d.Kind == KindReset {
				sawReset = true
			}
		}
		nd.mu.Unlock()
		if !sawReset {
			deadline := time.After(testTimeout)
			for !sawReset {
				select {
				case <-nd.notify:
					nd.mu.Lock()
					for _, d := range nd.deliveries {
						if d.Kind == KindReset {
							sawReset = true
						}
					}
					nd.mu.Unlock()
				case <-deadline:
					t.Fatalf("node %d never delivered the reset event", i)
				}
			}
		}
	}
	// Pre-crash messages were not lost or reordered.
	for _, i := range []int{1, 2} {
		data := g.nodes[i].waitData(3)
		for j := 0; j < 3; j++ {
			if string(data[j].Payload) != fmt.Sprintf("pre-%d", j) {
				t.Fatalf("node %d data[%d] = %q", i, j, data[j].Payload)
			}
		}
	}
	// And the rebuilt group still works.
	if err := g.send(2, []byte("post-reset")); err != nil {
		t.Fatalf("post-reset send: %v", err)
	}
	d1 := g.nodes[1].waitData(4)
	d2 := g.nodes[2].waitData(4)
	if string(d1[3].Payload) != "post-reset" || string(d2[3].Payload) != "post-reset" {
		t.Fatalf("post-reset delivery: %q / %q", d1[3].Payload, d2[3].Payload)
	}
}

func TestAutoResetRecoversInFlightSend(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		c.AutoReset = true
		c.MinSurvivors = 2
		c.MaxRetries = 3
	})
	g.nodes[0].crash()
	// The send hits retry exhaustion, triggers recovery automatically,
	// and then completes under the new sequencer.
	if err := g.send(1, []byte("survives-crash")); err != nil {
		t.Fatalf("send across crash: %v", err)
	}
	data := g.nodes[2].waitData(1)
	if string(data[0].Payload) != "survives-crash" {
		t.Fatalf("delivery = %q", data[0].Payload)
	}
}

func TestResilienceSurvivesSequencerCrash(t *testing.T) {
	// r=1: every completed send is stored by at least one member besides
	// the sequencer, so a sequencer crash loses nothing.
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		c.Resilience = 1
	})
	const msgs = 5
	for i := 0; i < msgs; i++ {
		if err := g.send(1, []byte(fmt.Sprintf("r1-%d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	g.nodes[0].crash()
	if err := await(t, "reset", func(d func(error)) { g.nodes[1].ep.Reset(2, d) }); err != nil {
		t.Fatalf("reset: %v", err)
	}
	for _, i := range []int{1, 2} {
		data := g.nodes[i].waitData(msgs)
		for j := 0; j < msgs; j++ {
			if string(data[j].Payload) != fmt.Sprintf("r1-%d", j) {
				t.Fatalf("node %d lost or reordered: data[%d]=%q", i, j, data[j].Payload)
			}
		}
	}
	// The survivors continue with resilience intact (now degree capped by
	// group size).
	if err := g.send(2, []byte("after")); err != nil {
		t.Fatalf("post-reset resilient send: %v", err)
	}
	g.nodes[1].waitData(msgs + 1)
}

func TestResilientSendBlocksUntilReset(t *testing.T) {
	// With r=1 and the only other member crashed, a send from the
	// sequencer cannot complete: no surviving member can store it. The
	// group blocks (paper §2.1) until recovery rebuilds it, after which
	// the message — anointed by the reset — completes.
	g := newGroup(t, 2, memnet.Config{}, func(c *Config) { c.Resilience = 1 })
	g.nodes[1].crash()
	done := g.sendAsync(0, []byte("needs-ack"))
	select {
	case err := <-done:
		t.Fatalf("resilient send completed without acker: %v", err)
	case <-time.After(300 * time.Millisecond):
		// Blocked, as required.
	}
	if err := await(t, "reset", func(d func(error)) { g.nodes[0].ep.Reset(1, d) }); err != nil {
		t.Fatalf("reset: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("send failed after reset: %v", err)
		}
	case <-time.After(testTimeout):
		t.Fatal("send never completed after reset")
	}
	// The anointed message was delivered at the survivor.
	var found bool
	for _, d := range g.nodes[0].waitDeliveries(1) {
		if d.Kind == KindData && string(d.Payload) == "needs-ack" {
			found = true
		}
	}
	if !found {
		deadline := time.After(testTimeout)
		for !found {
			select {
			case <-g.nodes[0].notify:
			case <-deadline:
				t.Fatal("anointed message never delivered")
			}
			g.nodes[0].mu.Lock()
			for _, d := range g.nodes[0].deliveries {
				if d.Kind == KindData && string(d.Payload) == "needs-ack" {
					found = true
				}
			}
			g.nodes[0].mu.Unlock()
		}
	}
}

func TestResetWithInsufficientSurvivorsBlocksThenRecovers(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, nil)
	g.nodes[0].crash()
	g.nodes[2].crash()
	// Survivor demands 2 alive members; only itself remains, so reset
	// must not complete...
	done := make(chan error, 1)
	g.nodes[1].ep.Reset(2, func(e error) { done <- e })
	select {
	case err := <-done:
		t.Fatalf("reset completed without quorum: %v", err)
	case <-time.After(400 * time.Millisecond):
	}
	// ...until another member appears. (A recovered processor would
	// rejoin; here a fresh member joining is impossible while blocked, so
	// this test just documents the blocking behaviour.)
	g.nodes[1].ep.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked reset ended with %v, want ErrClosed", err)
	}
}

func TestSoloResetSucceeds(t *testing.T) {
	g := newGroup(t, 2, memnet.Config{}, nil)
	g.nodes[0].crash()
	if err := await(t, "solo reset", func(d func(error)) { g.nodes[1].ep.Reset(1, d) }); err != nil {
		t.Fatalf("reset: %v", err)
	}
	info := g.nodes[1].ep.Info()
	if !info.IsSequencer || len(info.Members) != 1 {
		t.Fatalf("solo info: %+v", info)
	}
	// A group of one still totally orders its own sends.
	if err := g.send(1, []byte("alone")); err != nil {
		t.Fatalf("solo send: %v", err)
	}
}

func TestConcurrentResetsConverge(t *testing.T) {
	g := newGroup(t, 4, memnet.Config{}, nil)
	g.nodes[0].crash()
	// All three survivors start recovery simultaneously; precedence must
	// pick exactly one winner and everyone must land in the same view.
	dones := make([]chan error, 3)
	for i := 1; i <= 3; i++ {
		ch := make(chan error, 1)
		dones[i-1] = ch
		g.nodes[i].ep.Reset(3, func(e error) { ch <- e })
	}
	for i, ch := range dones {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("reset %d: %v", i+1, err)
			}
		case <-time.After(testTimeout):
			t.Fatalf("reset %d timed out", i+1)
		}
	}
	// Reset completion is transport-level; the new view lands at each
	// member when its KindReset delivery catches up. Poll for
	// convergence.
	deadline := time.After(testTimeout)
	for {
		infos := make([]Info, 3)
		for i := 1; i <= 3; i++ {
			infos[i-1] = g.nodes[i].ep.Info()
		}
		converged := true
		seqCount := 0
		for _, inf := range infos {
			if inf.Incarnation != infos[0].Incarnation ||
				inf.Sequencer != infos[0].Sequencer ||
				len(inf.Members) != 3 {
				converged = false
			}
			if inf.IsSequencer {
				seqCount++
			}
		}
		if converged {
			if seqCount != 1 {
				t.Fatalf("%d sequencers after convergence", seqCount)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("views never converged: %+v", infos)
		case <-time.After(5 * time.Millisecond):
		}
	}
	// The converged group functions.
	if err := g.send(2, []byte("converged")); err != nil {
		t.Fatalf("post-convergence send: %v", err)
	}
	g.nodes[3].waitData(1)
}

func TestCrashedMemberExpelledOnReset(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, nil)
	// Node 2 does not crash, but is cut off: its station closes so it
	// cannot vote.
	g.nodes[2].tr.Unbind()
	if err := await(t, "reset", func(d func(error)) { g.nodes[0].ep.Reset(2, d) }); err != nil {
		t.Fatalf("reset: %v", err)
	}
	info := g.nodes[0].ep.Info()
	if len(info.Members) != 2 {
		t.Fatalf("members after expulsion = %d", len(info.Members))
	}
	for _, m := range info.Members {
		if m.Addr == g.nodes[2].addr {
			t.Fatal("cut-off member still in view")
		}
	}
}

func TestGroupBlocksWhenMemberDiesWithoutReset(t *testing.T) {
	// Without AutoReset and without an application Reset, a dead member
	// eventually pins the history buffer and the sequencer refuses new
	// messages — the documented blocking behaviour.
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		c.HistorySize = 8
		c.MaxRetries = 2
		c.RetryInterval = 20 * time.Millisecond
	})
	g.nodes[2].crash()
	var err error
	for i := 0; i < 50; i++ {
		if err = g.send(1, []byte{byte(i)}); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("sends kept succeeding past a full history pinned by a dead member")
	}
	if !errors.Is(err, ErrSequencerDead) {
		t.Fatalf("unexpected error: %v", err)
	}
	st := g.nodes[0].ep.Stats()
	if st.DroppedFull == 0 {
		t.Fatal("sequencer never exercised history backpressure")
	}
}

func TestJoinFailsWithNoGroup(t *testing.T) {
	net := memnet.New(memnet.Config{})
	t.Cleanup(net.Close)
	station, _ := net.Attach("loner")
	stack := newTestStack(t, station)
	self := stack.AllocAddress()
	groupAddr := flipAddr("no-such-group")
	tr := NewFLIPTransport(stack, self, groupAddr)
	done := make(chan error, 1)
	ep, err := NewJoiner(Config{
		Group: groupAddr, Self: self, Transport: tr, Clock: newTestClock(),
		RetryInterval: 10 * time.Millisecond, MaxRetries: 3,
	}, func(e error) { done <- e })
	if err != nil {
		t.Fatalf("NewJoiner: %v", err)
	}
	tr.Bind(ep)
	ep.Start()
	select {
	case e := <-done:
		if !errors.Is(e, ErrJoinFailed) {
			t.Fatalf("join ended with %v, want ErrJoinFailed", e)
		}
	case <-time.After(testTimeout):
		t.Fatal("join never failed")
	}
}

func TestRejoinAfterLeave(t *testing.T) {
	g := newGroup(t, 2, memnet.Config{}, nil)
	if err := await(t, "leave", func(d func(error)) { g.nodes[1].ep.Leave(d) }); err != nil {
		t.Fatalf("leave: %v", err)
	}
	// The same process joins again with a fresh endpoint (new address).
	nd := g.addNode(false)
	info := nd.ep.Info()
	if len(info.Members) != 2 {
		t.Fatalf("rejoin membership = %d", len(info.Members))
	}
	if err := g.send(0, []byte("welcome-back")); err != nil {
		t.Fatalf("send: %v", err)
	}
	data := nd.waitData(1)
	if string(data[0].Payload) != "welcome-back" {
		t.Fatalf("rejoined member got %q", data[0].Payload)
	}
}
