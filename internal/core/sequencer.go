package core

import (
	"encoding/binary"
	"time"

	"amoeba/internal/flip"
)

// This file is the sequencer side of the protocol: ordering requests,
// collecting resilience acknowledgements, serving retransmissions, and
// pruning the history buffer from piggybacked acknowledgement state.

// nakBatch bounds retransmissions served per negative acknowledgement; the
// member re-asks for the remainder, which keeps a recovering laggard from
// monopolising the sequencer.
const nakBatch = 32

// handleReq processes a member's point-to-point ordering request (PB method).
func (ep *Endpoint) handleReq(p packet, from flip.Address) {
	if !ep.isSeq || ep.st != stNormal {
		return
	}
	if ep.leaveSeq != 0 {
		// This sequencer has ordered its own departure: redirect the
		// sender to the successor.
		ep.sendPkt(from, packet{typ: ptStale, payload: encodeView(ep.pending, ep.globalSeq+1)})
		return
	}
	m, ok := ep.pending.find(p.sender)
	if !ok || m.Addr != from {
		// Not a member (stale after expulsion or leave): tell it.
		ep.sendPkt(from, packet{typ: ptStale, payload: encodeView(ep.pending, ep.globalSeq+1)})
		return
	}
	last := p.localID
	if p.kind == KindBatch {
		n := wireBatchCount(p.payload)
		if n == 0 {
			return // malformed batch body: cannot come from a correct member
		}
		last = p.localID + uint32(n) - 1
	}
	if d, ok := ep.dedup[p.sender]; ok && last <= d.localID {
		// Duplicate suppression: a retried request for something already
		// ordered is answered by retransmitting the sender's latest
		// ordered broadcast point-to-point — proof that completes its
		// window prefix. (Still tentative: the accept will reach the
		// sender in due course; sequenced state must not be re-ordered.)
		if e, ok := ep.hist.get(d.seq); ok && !e.tentative {
			ep.retransmitLocked(from, e)
		}
		return
	}
	if !ep.fifoAdmitsLocked(p.sender, p.localID, p.aux) {
		return // an earlier send is still in flight: its retry resends the window in order
	}
	ep.orderLocked(p.kind, p.sender, p.localID, p.payload)
}

// fifoAdmitsLocked is the per-sender FIFO admission rule under pipelining:
// a request may be ordered only if it is the next in localID order — or if
// it sits at the sender's declared barrier (its oldest outstanding localID,
// stamped on every request), which proves every lower localID already
// completed and can never be sent again. The barrier case covers a
// sequencer change that erased dedup state for the sender (and, after a
// resilience-0 recovery, localIDs of completed-then-lost messages that will
// never reappear). Without any dedup state, the barrier is the only
// admissible start.
func (ep *Endpoint) fifoAdmitsLocked(sender MemberID, localID, barrier uint32) bool {
	if d, ok := ep.dedup[sender]; ok && localID == d.localID+1 {
		return true
	}
	return localID == barrier
}

// wireBatchCount reads the payload count from a batch body without decoding
// it; 0 reports a malformed body.
func wireBatchCount(body []byte) int {
	n, w := binary.Uvarint(body)
	if w <= 0 || n == 0 || n > maxBatchWire {
		return 0
	}
	return int(n)
}

// orderLocked assigns the next sequence number — or, for a KindBatch
// request, the next contiguous range of them — to a message and transmits it
// to the group: a full broadcast for PB-path messages (payload present), a
// short accept for BB-path messages (payload already multicast by the
// sender), or a tentative broadcast when the group runs with resilience. A
// batch costs the group one history entry, one multicast, and one
// ack/tentative round regardless of how many messages it carries — the
// amortisation the paper's conclusion 1 (processing-bound, not
// protocol-bound) predicts pays off.
// It reports false when the history buffer is full, in which case the
// message is NOT ordered and the sender's retry will try again later — the
// protocol's backpressure.
func (ep *Endpoint) orderLocked(kind MsgKind, sender MemberID, localID uint32, payload []byte) bool {
	// Stage timing (paper-style per-stage decomposition): t0 is when the
	// ordering decision starts; the append histogram closes after the
	// history insert, the multicast histogram closes when the deferred
	// transport send actually executes (actions run in enqueue order, so
	// observing right after the multicast action measures the transmit).
	// Sampled 1-in-4: an append is ~1µs, so stamping the clock around
	// every one would cost a measurable slice of the stage it measures.
	o := &ep.cfg.Obs
	timed := (o.Append != nil || o.Multicast != nil || o.AckComplete != nil) && ep.ordTick&3 == 0
	ep.ordTick++
	var t0 time.Duration
	if timed {
		t0 = ep.cfg.Clock.Now()
	}
	var e *entry
	if kind == KindBatch {
		e = newBatchEntry(ep.globalSeq+1, sender, localID, payload)
		if e == nil {
			return true // malformed batch: drop silently, as for garbled packets
		}
	} else {
		pl := make([]byte, len(payload))
		copy(pl, payload)
		e = &entry{seq: ep.globalSeq + 1, kind: kind, sender: sender, localID: localID, payload: pl}
	}
	if !ep.hist.hasRoom(int(e.span())) {
		ep.tryPruneLocked()
		if !ep.hist.hasRoom(int(e.span())) {
			ep.stats.DroppedFull++
			o.Flight.Recordf(o.Tag, "order refused: history full at seq %d (sender %d)", ep.globalSeq, sender)
			ep.solicitStatusLocked()
			return false
		}
	}
	seq := e.seq
	ep.globalSeq = e.lastSeq()
	ep.hist.add(e)
	if timed {
		o.Append.Observe(ep.cfg.Clock.Now() - t0)
	}
	o.BatchFill.ObserveValue(uint64(e.span()))
	ep.stats.Ordered += uint64(e.span())
	if e.span() > 1 {
		ep.stats.OrderedBatches++
		ep.stats.BatchedMsgs += uint64(e.span())
	}
	if uint64(e.span()) > ep.stats.MaxBatchMsgs {
		ep.stats.MaxBatchMsgs = uint64(e.span())
	}
	ep.dedup[sender] = dedupEntry{localID: e.lastLocalID(), seq: seq}
	if e.lastSeq() > ep.maxSeen {
		ep.maxSeen = e.lastSeq()
	}

	if ep.cfg.Resilience > 0 || ep.cfg.leasesOn() {
		// Leases route even r=0 messages through the tentative path:
		// acceptance is the sequencer's decision, which is what lets it
		// wait for lease holders' stored-acks before a send completes.
		e.tentative = true
		e.acked = make(map[MemberID]bool)
		if timed {
			e.orderedAt = t0
		}
		ep.multicastPkt(packet{
			typ: ptTentative, kind: kind, seq: seq, localID: localID,
			aux: uint32(ep.cfg.Resilience), aux2: ep.hist.floor,
			payload: e.payload, sender: sender,
		})
		if timed {
			ep.observeMulticastLocked(t0)
		}
		// With no other members to ack (tiny group), finalise at once.
		ep.maybeAcceptLocked(e)
		ep.armTentativeRetryLocked()
		return true
	}
	ep.multicastPkt(packet{
		typ: ptBcast, kind: kind, seq: seq, localID: localID,
		aux: ep.hist.floor, sender: sender, payload: e.payload,
	})
	if timed {
		ep.observeMulticastLocked(t0)
	}
	// Only data kinds complete sends: membership kinds reuse the localID
	// field for other purposes (a leave names the successor there).
	if kind == KindData || kind == KindBatch {
		ep.completeSendsUpToLocked(sender, e.lastLocalID())
	}
	return true
}

// observeMulticastLocked enqueues a stage-timing observation directly
// behind the multicast action just enqueued: actions run in order, so the
// observation fires when the transport send has executed, closing the
// receive→multicast-transmitted histogram. No-op without the instrument.
func (ep *Endpoint) observeMulticastLocked(t0 time.Duration) {
	h := ep.cfg.Obs.Multicast
	if h == nil {
		return
	}
	clock := ep.cfg.Clock
	ep.enqueue(func() { h.Observe(clock.Now() - t0) })
}

// orderBBLocked sequences a message whose payload arrived by sender
// multicast (BB method): only the short accept goes out.
func (ep *Endpoint) orderBBLocked(sender MemberID, localID uint32, kind MsgKind, payload []byte) bool {
	o := &ep.cfg.Obs
	timed := (o.Append != nil || o.Multicast != nil) && ep.ordTick&3 == 0
	ep.ordTick++
	var t0 time.Duration
	if timed {
		t0 = ep.cfg.Clock.Now()
	}
	if ep.hist.full() {
		ep.tryPruneLocked()
		if ep.hist.full() {
			ep.stats.DroppedFull++
			o.Flight.Recordf(o.Tag, "BB order refused: history full at seq %d (sender %d)", ep.globalSeq, sender)
			ep.solicitStatusLocked()
			return false
		}
	}
	ep.globalSeq++
	seq := ep.globalSeq
	pl := make([]byte, len(payload))
	copy(pl, payload)
	ep.hist.add(&entry{seq: seq, kind: kind, sender: sender, localID: localID, payload: pl})
	if timed {
		o.Append.Observe(ep.cfg.Clock.Now() - t0)
	}
	o.BatchFill.ObserveValue(1)
	ep.stats.Ordered++
	ep.dedup[sender] = dedupEntry{localID: localID, seq: seq}
	if seq > ep.maxSeen {
		ep.maxSeen = seq
	}
	ep.multicastPkt(packet{
		typ: ptAccept, kind: kind, seq: seq, localID: localID,
		aux: ep.hist.floor, aux2: uint32(sender),
	})
	if timed {
		ep.observeMulticastLocked(t0)
	}
	ep.completeSendsUpToLocked(sender, localID)
	return true
}

// handleAck records a resilience acknowledgement for a tentative message.
func (ep *Endpoint) handleAck(p packet) {
	if !ep.isSeq {
		return
	}
	e, ok := ep.hist.get(p.seq)
	if !ok || !e.tentative {
		return
	}
	if e.acked[p.sender] {
		return
	}
	e.acked[p.sender] = true
	e.acks++
	ep.maybeAcceptLocked(e)
}

// requiredAcksLocked is how many stored-acknowledgements finalise an entry:
// min(r, members-1) — a group smaller than r+1 cannot do better than
// everyone-but-the-sequencer. A join's own subject cannot vouch for it (it
// is not active until the join is accepted), so it is excluded from the
// available-acker count.
func (ep *Endpoint) requiredAcksLocked(e *entry) int {
	need := ep.cfg.Resilience
	avail := len(ep.pending.members) - 1
	if e.kind == KindJoin && e.sender != ep.self {
		avail--
	}
	if need > avail {
		need = avail
	}
	if need < 0 {
		need = 0
	}
	return need
}

// maybeAcceptLocked finalises a tentative entry once enough members have
// stored it — but only IN SEQUENCE ORDER: an entry is never accepted while
// an earlier one is still tentative. Cumulative acceptance is what makes an
// accept (and the prefix send-completions it implies at the sender) safe
// under pipelining: without it, a later message could be finalised — and
// complete its sender's whole window — while an earlier message's acks were
// still outstanding and a crash could yet erase it.
func (ep *Endpoint) maybeAcceptLocked(e *entry) {
	if !e.tentative || e.acks < ep.requiredAcksLocked(e) {
		return
	}
	// Everything below the sequencer's own delivery point is final (the
	// delivery loop stops at tentative entries), so the gate only scans
	// the short undelivered window, not the whole history.
	for s := ep.nextDeliver; s < e.seq; s++ {
		if en, ok := ep.hist.get(s); ok && en.tentative {
			return // accepted later, cumulatively, once its turn comes
		}
	}
	if !ep.leaseAcceptGateLocked(e) {
		// A live lease holder has not stored it yet (or the failover
		// fence is pending). The tentative retry timer re-evaluates:
		// lease expiry, not just a new ack, can open this gate.
		ep.armTentativeRetryLocked()
		return
	}
	for e != nil {
		e.tentative = false
		if e.orderedAt != 0 {
			if h := ep.cfg.Obs.AckComplete; h != nil {
				h.Observe(ep.cfg.Clock.Now() - e.orderedAt)
			}
			e.orderedAt = 0
		}
		ep.multicastPkt(packet{
			typ: ptAccept, kind: e.kind, seq: e.seq, localID: e.localID,
			aux: ep.hist.floor, aux2: uint32(noMember),
		})
		if e.kind == KindData || e.kind == KindBatch {
			ep.completeSendsUpToLocked(e.sender, e.lastLocalID())
		}
		if e.kind == KindJoin {
			ep.sendPendingJoinAckLocked(e.seq)
		}
		// Acceptance may unblock the next tentative entry whose acks
		// already arrived while it waited its turn (skipping entries
		// that are already final, e.g. recovery anchors).
		next := (*entry)(nil)
		for s := e.lastSeq() + 1; s <= ep.globalSeq; s++ {
			en, ok := ep.hist.get(s)
			if !ok {
				break
			}
			if en.tentative {
				next = en
				break
			}
			s = en.lastSeq()
		}
		if next == nil || next.acks < ep.requiredAcksLocked(next) ||
			!ep.leaseAcceptGateLocked(next) {
			break
		}
		e = next
	}
	ep.deliverReadyLocked()
}

// armTentativeRetryLocked schedules re-multicast of tentative entries whose
// acknowledgements are slow — without it, one lost tentative packet at an
// acking member would stall the group.
func (ep *Endpoint) armTentativeRetryLocked() {
	if ep.tentTimer != nil {
		return
	}
	ep.tentTimer = ep.after(ep.cfg.RetryInterval, func() {
		ep.tentTimer = nil
		if !ep.isSeq {
			return
		}
		var oldest, last *entry
		for s := ep.hist.floor + 1; s <= ep.globalSeq; s++ {
			e, ok := ep.hist.get(s)
			if !ok || !e.tentative || e == last {
				continue // batch entries appear once per covered seqno
			}
			last = e
			if oldest == nil {
				oldest = e
			}
			ep.multicastPkt(packet{
				typ: ptTentative, kind: e.kind, seq: e.seq,
				localID: e.localID, aux: uint32(ep.cfg.Resilience),
				aux2: ep.hist.floor, payload: e.payload, sender: e.sender,
			})
		}
		if oldest != nil {
			ep.noteTentativeStallLocked(oldest)
			// Time alone can open the lease gate (a dead holder's
			// lease expiring, the failover fence lifting): re-try
			// acceptance of the oldest tentative each round.
			ep.maybeAcceptLocked(oldest)
			ep.armTentativeRetryLocked()
		} else {
			ep.tentStallSeq, ep.tentStallRounds = 0, 0
		}
	})
}

// noteTentativeStallLocked escalates a tentative message whose designated
// ackers stay silent across retry rounds: without this, a crashed acking
// member stalls every resilient send (and join) until the history fills or a
// sender gives up — the group livelocks on an idle workload. After
// StatusRetries rounds the sequencer probes the members that have not acked;
// the failure detector then expels the dead (AutoReset) or leaves the group
// blocked for the application's Reset, exactly as for any suspected death.
func (ep *Endpoint) noteTentativeStallLocked(oldest *entry) {
	if oldest.seq != ep.tentStallSeq {
		ep.tentStallSeq, ep.tentStallRounds = oldest.seq, 0
		return
	}
	ep.tentStallRounds++
	if ep.tentStallRounds < ep.cfg.StatusRetries {
		return
	}
	for _, m := range ep.pending.members {
		if m.ID == ep.self || oldest.acked[m.ID] {
			continue
		}
		// A join's subject cannot ack (it is not active yet); do not
		// suspect it for staying silent.
		if oldest.kind == KindJoin && m.ID == oldest.sender {
			continue
		}
		ep.probeMemberLocked(m)
	}
}

// handleNak serves a retransmission request for [p.seq, p.aux]. A message
// the sequencer provably cannot recover — below its history floor after a
// recovery in a resilience-0 group — is answered with an explicit loss
// marker, so the requester can move past the hole instead of asking forever.
func (ep *Endpoint) handleNak(p packet, from flip.Address) {
	lo, hi := p.seq, p.aux
	if hi < lo {
		return
	}
	if hi-lo >= nakBatch {
		hi = lo + nakBatch - 1
	}
	var served *entry
	for s := lo; s <= hi; s++ {
		e, ok := ep.hist.get(s)
		if !ok {
			if ep.isSeq && s <= ep.hist.floor {
				ep.sendPkt(from, packet{typ: ptLost, seq: s})
			}
			continue
		}
		if e.tentative {
			continue
		}
		if e == served {
			continue // a batch entry covers several requested seqnos: send it once
		}
		served = e
		ep.retransmitLocked(from, e)
	}
}

// retransmitLocked unicasts one ordered message back to a member.
func (ep *Endpoint) retransmitLocked(to flip.Address, e *entry) {
	ep.stats.Retransmitted++
	ep.cfg.Obs.Flight.Recordf(ep.cfg.Obs.Tag, "retransmit seq %d (kind %d) to %v", e.seq, e.kind, to)
	ep.sendPkt(to, packet{
		typ: ptRetrans, kind: e.kind, seq: e.seq, localID: e.localID,
		aux: ep.hist.floor, aux2: uint32(e.sender), payload: e.payload,
	})
}

// noteLastRecvLocked folds a piggybacked acknowledgement into the pruning
// state.
func (ep *Endpoint) noteLastRecvLocked(m MemberID, last uint32) {
	if ep.lastRecv == nil {
		return
	}
	_, isMember := ep.pending.find(m)
	leaveSeq, isLeaver := ep.leavers[m]
	if !isMember && !isLeaver {
		return
	}
	if isMember {
		ep.lastHeardSetLocked(m) // lease silence rule: the member is alive
	}
	if last > ep.lastRecv[m] {
		ep.lastRecv[m] = last
		// A member catching up may release a status probe.
		if pr, ok := ep.statusProbe[m]; ok {
			if pr.timer != nil {
				pr.timer.Stop()
			}
			delete(ep.statusProbe, m)
		}
	}
	if isLeaver && ep.lastRecv[m] >= leaveSeq {
		// The leaver has observed its own departure; stop waiting on
		// it.
		delete(ep.leavers, m)
		delete(ep.lastRecv, m)
	}
	ep.maybeFinishHandoffLocked()
}

// tryPruneLocked advances the history floor to the minimum acknowledged
// sequence number across members (and not-yet-departed leavers).
func (ep *Endpoint) tryPruneLocked() {
	if !ep.isSeq || len(ep.pending.members) == 0 {
		return
	}
	min := ep.nextDeliver - 1 // the sequencer's own receipt point
	for _, m := range ep.pending.members {
		if m.ID == ep.self {
			continue
		}
		if last := ep.lastRecv[m.ID]; last < min {
			min = last
		}
	}
	for id := range ep.leavers {
		if last := ep.lastRecv[id]; last < min {
			min = last
		}
	}
	ep.hist.pruneTo(min)
}

// solicitStatusLocked asks the group for fresh acknowledgement state when
// the history is under pressure, then probes individual laggards.
func (ep *Endpoint) solicitStatusLocked() {
	ep.multicastPkt(packet{typ: ptSync, seq: ep.globalSeq, aux: ep.hist.floor, aux2: 1})
	// Probe members whose acknowledgement state pins the floor.
	ep.tryPruneLocked()
	if !ep.hist.full() {
		return
	}
	floor := ep.hist.floor
	for _, m := range ep.pending.members {
		if m.ID == ep.self || ep.lastRecv[m.ID] > floor {
			continue
		}
		ep.probeMemberLocked(m)
	}
}

// probeMemberLocked starts (or continues) a status probe of one member; the
// paper's unreliable failure detector. StatusRetries unanswered probes
// declare the member dead.
func (ep *Endpoint) probeMemberLocked(m Member) {
	if ep.statusProbe == nil {
		ep.statusProbe = make(map[MemberID]*probe)
	}
	if _, ok := ep.statusProbe[m.ID]; ok {
		return // probe in progress
	}
	pr := &probe{}
	ep.statusProbe[m.ID] = pr
	var fire func()
	fire = func() {
		if !ep.isSeq || ep.st != stNormal {
			return
		}
		if _, ok := ep.statusProbe[m.ID]; !ok {
			return // answered
		}
		pr.tries++
		if pr.tries > ep.cfg.StatusRetries {
			delete(ep.statusProbe, m.ID)
			ep.memberSuspectedDeadLocked(m)
			return
		}
		ep.sendPkt(m.Addr, packet{typ: ptStatusReq, seq: ep.globalSeq, aux: ep.hist.floor})
		pr.timer = ep.after(ep.cfg.StatusTimeout, fire)
	}
	fire()
}

// memberSuspectedDeadLocked reacts to an unresponsive member: with AutoReset
// the sequencer rebuilds the group without it; otherwise the group stays
// intact (and possibly blocked on history space) until the application calls
// Reset — the paper's user-requested recovery.
func (ep *Endpoint) memberSuspectedDeadLocked(m Member) {
	ep.cfg.Obs.Flight.Recordf(ep.cfg.Obs.Tag, "member %d suspected dead (autoReset=%v)", m.ID, ep.cfg.AutoReset)
	if ep.cfg.AutoReset {
		ep.initiateResetLocked(ep.cfg.MinSurvivors)
	}
}

// handleStatus processes a member's explicit status report; the piggyback
// path in HandlePacket has already recorded p.lastRecv.
func (ep *Endpoint) handleStatus(p packet) {
	ep.tryPruneLocked()
}

// handleStatusReq answers a sequencer's status probe (member side).
func (ep *Endpoint) handleStatusReq(p packet, from flip.Address) {
	ep.noteSyncLocked(p.seq, p.aux)
	ep.sendPkt(from, packet{typ: ptStatus})
}

// armSyncLocked keeps the idle-sequencer watermark broadcast running.
func (ep *Endpoint) armSyncLocked() {
	if ep.syncTimer != nil || ep.cfg.SyncInterval <= 0 {
		return
	}
	ep.syncTimer = ep.after(ep.cfg.SyncInterval, func() {
		ep.syncTimer = nil
		if !ep.isSeq || ep.st != stNormal {
			return
		}
		ep.tryPruneLocked()
		var grants []byte
		if ep.cfg.leasesOn() {
			grants = ep.leaseTickLocked()
		}
		ep.multicastPkt(packet{typ: ptSync, seq: ep.globalSeq, aux: ep.hist.floor, payload: grants})
		ep.probeIdleLaggardsLocked()
		ep.armSyncLocked()
	})
}

// probeIdleLaggardsLocked is the idle-group failure detector: on each sync
// tick, members whose acknowledged receipt point trails the sequencer's own
// delivery point accrue a lag tick, and after IdleProbeTicks consecutive
// ones a status probe is started. A live member (idle senders piggyback no
// acknowledgements, so lagging is normal for them) answers the probe at
// once — the answer's piggyback clears the lag and releases the probe. A
// corpse exhausts StatusRetries and is handled by
// memberSuspectedDeadLocked, exactly as for a laggard under traffic — so a
// dead member is expelled within a bounded time even from a group that
// carries no traffic at all.
func (ep *Endpoint) probeIdleLaggardsLocked() {
	if ep.cfg.IdleProbeTicks < 0 {
		return
	}
	behind := ep.nextDeliver - 1 // the sequencer's own receipt point
	for _, m := range ep.pending.members {
		if m.ID == ep.self {
			continue
		}
		if ep.lastRecv[m.ID] >= behind {
			delete(ep.idleLag, m.ID)
			continue
		}
		if ep.idleLag == nil {
			ep.idleLag = make(map[MemberID]int)
		}
		ep.idleLag[m.ID]++
		if ep.idleLag[m.ID] >= ep.cfg.IdleProbeTicks {
			delete(ep.idleLag, m.ID)
			ep.probeMemberLocked(m)
		}
	}
}
