package core

import (
	"amoeba/internal/flip"
)

// This file is the sequencer side of the protocol: ordering requests,
// collecting resilience acknowledgements, serving retransmissions, and
// pruning the history buffer from piggybacked acknowledgement state.

// nakBatch bounds retransmissions served per negative acknowledgement; the
// member re-asks for the remainder, which keeps a recovering laggard from
// monopolising the sequencer.
const nakBatch = 32

// handleReq processes a member's point-to-point ordering request (PB method).
func (ep *Endpoint) handleReq(p packet, from flip.Address) {
	if !ep.isSeq || ep.st != stNormal {
		return
	}
	if ep.leaveSeq != 0 {
		// This sequencer has ordered its own departure: redirect the
		// sender to the successor.
		ep.sendPkt(from, packet{typ: ptStale, payload: encodeView(ep.pending, ep.globalSeq+1)})
		return
	}
	m, ok := ep.pending.find(p.sender)
	if !ok || m.Addr != from {
		// Not a member (stale after expulsion or leave): tell it.
		ep.sendPkt(from, packet{typ: ptStale, payload: encodeView(ep.pending, ep.globalSeq+1)})
		return
	}
	// Duplicate suppression: a retried request for something already
	// ordered is answered by retransmitting the ordered broadcast
	// point-to-point.
	if d, ok := ep.dedup[p.sender]; ok {
		if p.localID == d.localID {
			if e, ok := ep.hist.get(d.seq); ok && !e.tentative {
				ep.retransmitLocked(from, e)
			}
			// Still tentative: the accept will reach the sender in
			// due course; sequenced state must not be re-ordered.
			return
		}
		if p.localID < d.localID {
			return // older duplicate: already completed at the sender
		}
	}
	ep.orderLocked(p.kind, p.sender, p.localID, p.payload)
}

// orderLocked assigns the next sequence number to a message and transmits it
// to the group: a full broadcast for PB-path messages (payload present), a
// short accept for BB-path messages (payload already multicast by the
// sender), or a tentative broadcast when the group runs with resilience.
// It reports false when the history buffer is full, in which case the
// message is NOT ordered and the sender's retry will try again later — the
// protocol's backpressure.
func (ep *Endpoint) orderLocked(kind MsgKind, sender MemberID, localID uint32, payload []byte) bool {
	if ep.hist.full() {
		ep.tryPruneLocked()
		if ep.hist.full() {
			ep.stats.DroppedFull++
			ep.solicitStatusLocked()
			return false
		}
	}
	ep.globalSeq++
	seq := ep.globalSeq
	pl := make([]byte, len(payload))
	copy(pl, payload)
	e := &entry{seq: seq, kind: kind, sender: sender, localID: localID, payload: pl}
	ep.hist.add(e)
	ep.stats.Ordered++
	ep.dedup[sender] = dedupEntry{localID: localID, seq: seq}
	if seq > ep.maxSeen {
		ep.maxSeen = seq
	}

	if ep.cfg.Resilience > 0 {
		e.tentative = true
		e.acked = make(map[MemberID]bool)
		ep.multicastPkt(packet{
			typ: ptTentative, kind: kind, seq: seq, localID: localID,
			aux: uint32(ep.cfg.Resilience), aux2: ep.hist.floor,
			payload: pl, sender: sender,
		})
		// With no other members to ack (tiny group), finalise at once.
		ep.maybeAcceptLocked(e)
		ep.armTentativeRetryLocked()
		return true
	}
	ep.multicastPkt(packet{
		typ: ptBcast, kind: kind, seq: seq, localID: localID,
		aux: ep.hist.floor, sender: sender, payload: pl,
	})
	ep.completeOwnSendLocked(sender, localID, nil)
	return true
}

// orderBBLocked sequences a message whose payload arrived by sender
// multicast (BB method): only the short accept goes out.
func (ep *Endpoint) orderBBLocked(sender MemberID, localID uint32, kind MsgKind, payload []byte) bool {
	if ep.hist.full() {
		ep.tryPruneLocked()
		if ep.hist.full() {
			ep.stats.DroppedFull++
			ep.solicitStatusLocked()
			return false
		}
	}
	ep.globalSeq++
	seq := ep.globalSeq
	pl := make([]byte, len(payload))
	copy(pl, payload)
	ep.hist.add(&entry{seq: seq, kind: kind, sender: sender, localID: localID, payload: pl})
	ep.stats.Ordered++
	ep.dedup[sender] = dedupEntry{localID: localID, seq: seq}
	if seq > ep.maxSeen {
		ep.maxSeen = seq
	}
	ep.multicastPkt(packet{
		typ: ptAccept, kind: kind, seq: seq, localID: localID,
		aux: ep.hist.floor, aux2: uint32(sender),
	})
	ep.completeOwnSendLocked(sender, localID, nil)
	return true
}

// handleAck records a resilience acknowledgement for a tentative message.
func (ep *Endpoint) handleAck(p packet) {
	if !ep.isSeq {
		return
	}
	e, ok := ep.hist.get(p.seq)
	if !ok || !e.tentative {
		return
	}
	if e.acked[p.sender] {
		return
	}
	e.acked[p.sender] = true
	e.acks++
	ep.maybeAcceptLocked(e)
}

// maybeAcceptLocked finalises a tentative entry once enough members have
// stored it. "Enough" is min(r, members-1): a group smaller than r+1 cannot
// do better than everyone-but-the-sequencer. A join's own subject cannot
// vouch for it (it is not active until the join is accepted), so it is
// excluded from the available-acker count.
func (ep *Endpoint) maybeAcceptLocked(e *entry) {
	if !e.tentative {
		return
	}
	need := ep.cfg.Resilience
	avail := len(ep.pending.members) - 1
	if e.kind == KindJoin && e.sender != ep.self {
		avail--
	}
	if need > avail {
		need = avail
	}
	if need < 0 {
		need = 0
	}
	if e.acks < need {
		return
	}
	e.tentative = false
	ep.multicastPkt(packet{
		typ: ptAccept, kind: e.kind, seq: e.seq, localID: e.localID,
		aux: ep.hist.floor, aux2: uint32(noMember),
	})
	ep.completeOwnSendLocked(e.sender, e.localID, nil)
	if e.kind == KindJoin {
		ep.sendPendingJoinAckLocked(e.seq)
	}
	ep.deliverReadyLocked()
}

// armTentativeRetryLocked schedules re-multicast of tentative entries whose
// acknowledgements are slow — without it, one lost tentative packet at an
// acking member would stall the group.
func (ep *Endpoint) armTentativeRetryLocked() {
	if ep.tentTimer != nil {
		return
	}
	ep.tentTimer = ep.after(ep.cfg.RetryInterval, func() {
		ep.tentTimer = nil
		if !ep.isSeq {
			return
		}
		var oldest *entry
		for s := ep.hist.floor + 1; s <= ep.globalSeq; s++ {
			e, ok := ep.hist.get(s)
			if !ok || !e.tentative {
				continue
			}
			if oldest == nil {
				oldest = e
			}
			ep.multicastPkt(packet{
				typ: ptTentative, kind: e.kind, seq: e.seq,
				localID: e.localID, aux: uint32(ep.cfg.Resilience),
				aux2: ep.hist.floor, payload: e.payload, sender: e.sender,
			})
		}
		if oldest != nil {
			ep.noteTentativeStallLocked(oldest)
			ep.armTentativeRetryLocked()
		} else {
			ep.tentStallSeq, ep.tentStallRounds = 0, 0
		}
	})
}

// noteTentativeStallLocked escalates a tentative message whose designated
// ackers stay silent across retry rounds: without this, a crashed acking
// member stalls every resilient send (and join) until the history fills or a
// sender gives up — the group livelocks on an idle workload. After
// StatusRetries rounds the sequencer probes the members that have not acked;
// the failure detector then expels the dead (AutoReset) or leaves the group
// blocked for the application's Reset, exactly as for any suspected death.
func (ep *Endpoint) noteTentativeStallLocked(oldest *entry) {
	if oldest.seq != ep.tentStallSeq {
		ep.tentStallSeq, ep.tentStallRounds = oldest.seq, 0
		return
	}
	ep.tentStallRounds++
	if ep.tentStallRounds < ep.cfg.StatusRetries {
		return
	}
	for _, m := range ep.pending.members {
		if m.ID == ep.self || oldest.acked[m.ID] {
			continue
		}
		// A join's subject cannot ack (it is not active yet); do not
		// suspect it for staying silent.
		if oldest.kind == KindJoin && m.ID == oldest.sender {
			continue
		}
		ep.probeMemberLocked(m)
	}
}

// handleNak serves a retransmission request for [p.seq, p.aux]. A message
// the sequencer provably cannot recover — below its history floor after a
// recovery in a resilience-0 group — is answered with an explicit loss
// marker, so the requester can move past the hole instead of asking forever.
func (ep *Endpoint) handleNak(p packet, from flip.Address) {
	lo, hi := p.seq, p.aux
	if hi < lo {
		return
	}
	if hi-lo >= nakBatch {
		hi = lo + nakBatch - 1
	}
	for s := lo; s <= hi; s++ {
		e, ok := ep.hist.get(s)
		if !ok {
			if ep.isSeq && s <= ep.hist.floor {
				ep.sendPkt(from, packet{typ: ptLost, seq: s})
			}
			continue
		}
		if e.tentative {
			continue
		}
		ep.retransmitLocked(from, e)
	}
}

// retransmitLocked unicasts one ordered message back to a member.
func (ep *Endpoint) retransmitLocked(to flip.Address, e *entry) {
	ep.stats.Retransmitted++
	ep.sendPkt(to, packet{
		typ: ptRetrans, kind: e.kind, seq: e.seq, localID: e.localID,
		aux: ep.hist.floor, aux2: uint32(e.sender), payload: e.payload,
	})
}

// noteLastRecvLocked folds a piggybacked acknowledgement into the pruning
// state.
func (ep *Endpoint) noteLastRecvLocked(m MemberID, last uint32) {
	if ep.lastRecv == nil {
		return
	}
	_, isMember := ep.pending.find(m)
	leaveSeq, isLeaver := ep.leavers[m]
	if !isMember && !isLeaver {
		return
	}
	if last > ep.lastRecv[m] {
		ep.lastRecv[m] = last
		// A member catching up may release a status probe.
		if pr, ok := ep.statusProbe[m]; ok {
			if pr.timer != nil {
				pr.timer.Stop()
			}
			delete(ep.statusProbe, m)
		}
	}
	if isLeaver && ep.lastRecv[m] >= leaveSeq {
		// The leaver has observed its own departure; stop waiting on
		// it.
		delete(ep.leavers, m)
		delete(ep.lastRecv, m)
	}
	ep.maybeFinishHandoffLocked()
}

// tryPruneLocked advances the history floor to the minimum acknowledged
// sequence number across members (and not-yet-departed leavers).
func (ep *Endpoint) tryPruneLocked() {
	if !ep.isSeq || len(ep.pending.members) == 0 {
		return
	}
	min := ep.nextDeliver - 1 // the sequencer's own receipt point
	for _, m := range ep.pending.members {
		if m.ID == ep.self {
			continue
		}
		if last := ep.lastRecv[m.ID]; last < min {
			min = last
		}
	}
	for id := range ep.leavers {
		if last := ep.lastRecv[id]; last < min {
			min = last
		}
	}
	ep.hist.pruneTo(min)
}

// solicitStatusLocked asks the group for fresh acknowledgement state when
// the history is under pressure, then probes individual laggards.
func (ep *Endpoint) solicitStatusLocked() {
	ep.multicastPkt(packet{typ: ptSync, seq: ep.globalSeq, aux: ep.hist.floor, aux2: 1})
	// Probe members whose acknowledgement state pins the floor.
	ep.tryPruneLocked()
	if !ep.hist.full() {
		return
	}
	floor := ep.hist.floor
	for _, m := range ep.pending.members {
		if m.ID == ep.self || ep.lastRecv[m.ID] > floor {
			continue
		}
		ep.probeMemberLocked(m)
	}
}

// probeMemberLocked starts (or continues) a status probe of one member; the
// paper's unreliable failure detector. StatusRetries unanswered probes
// declare the member dead.
func (ep *Endpoint) probeMemberLocked(m Member) {
	if ep.statusProbe == nil {
		ep.statusProbe = make(map[MemberID]*probe)
	}
	if _, ok := ep.statusProbe[m.ID]; ok {
		return // probe in progress
	}
	pr := &probe{}
	ep.statusProbe[m.ID] = pr
	var fire func()
	fire = func() {
		if !ep.isSeq || ep.st != stNormal {
			return
		}
		if _, ok := ep.statusProbe[m.ID]; !ok {
			return // answered
		}
		pr.tries++
		if pr.tries > ep.cfg.StatusRetries {
			delete(ep.statusProbe, m.ID)
			ep.memberSuspectedDeadLocked(m)
			return
		}
		ep.sendPkt(m.Addr, packet{typ: ptStatusReq, seq: ep.globalSeq, aux: ep.hist.floor})
		pr.timer = ep.after(ep.cfg.StatusTimeout, fire)
	}
	fire()
}

// memberSuspectedDeadLocked reacts to an unresponsive member: with AutoReset
// the sequencer rebuilds the group without it; otherwise the group stays
// intact (and possibly blocked on history space) until the application calls
// Reset — the paper's user-requested recovery.
func (ep *Endpoint) memberSuspectedDeadLocked(m Member) {
	if ep.cfg.AutoReset {
		ep.initiateResetLocked(ep.cfg.MinSurvivors)
	}
}

// handleStatus processes a member's explicit status report; the piggyback
// path in HandlePacket has already recorded p.lastRecv.
func (ep *Endpoint) handleStatus(p packet) {
	ep.tryPruneLocked()
}

// handleStatusReq answers a sequencer's status probe (member side).
func (ep *Endpoint) handleStatusReq(p packet, from flip.Address) {
	ep.noteSyncLocked(p.seq, p.aux)
	ep.sendPkt(from, packet{typ: ptStatus})
}

// armSyncLocked keeps the idle-sequencer watermark broadcast running.
func (ep *Endpoint) armSyncLocked() {
	if ep.syncTimer != nil || ep.cfg.SyncInterval <= 0 {
		return
	}
	ep.syncTimer = ep.after(ep.cfg.SyncInterval, func() {
		ep.syncTimer = nil
		if !ep.isSeq || ep.st != stNormal {
			return
		}
		ep.tryPruneLocked()
		ep.multicastPkt(packet{typ: ptSync, seq: ep.globalSeq, aux: ep.hist.floor})
		ep.armSyncLocked()
	})
}

// completeOwnSendLocked completes the sequencer's own active send once its
// message is ordered (resilience 0) or accepted (resilience > 0).
func (ep *Endpoint) completeOwnSendLocked(sender MemberID, localID uint32, err error) {
	if sender != ep.self || len(ep.sendQ) == 0 {
		return
	}
	op := ep.sendQ[0]
	if op.localID != localID || !op.active {
		return
	}
	ep.finishSendLocked(op, err)
}
