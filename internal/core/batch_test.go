package core

import (
	"fmt"
	"testing"
	"time"

	"amoeba/internal/netw/memnet"
)

// pipeline fires count concurrent sends from node i with numbered payloads
// and returns the completion channels in submission order.
func (g *group) pipeline(i, count int) []chan error {
	dones := make([]chan error, count)
	for n := 0; n < count; n++ {
		dones[n] = g.sendAsync(i, []byte(fmt.Sprintf("m%03d", n)))
	}
	return dones
}

// requireFIFO asserts that the node's data deliveries from each sender carry
// strictly increasing payload numbers with no duplicates or gaps.
func requireFIFO(t *testing.T, data []Delivery, sender MemberID, want int) {
	t.Helper()
	next := 0
	for _, d := range data {
		if d.Sender != sender {
			continue
		}
		if got := fmt.Sprintf("m%03d", next); string(d.Payload) != got {
			t.Fatalf("sender %d delivery %d: payload %q, want %q (FIFO violated)", sender, next, d.Payload, got)
		}
		next++
	}
	if next != want {
		t.Fatalf("sender %d: delivered %d messages, want %d", sender, next, want)
	}
}

// TestPipelinedSendsCoalesceAndStayFIFO drives a window of concurrent sends
// through one member: the sends must coalesce into multi-message batch
// requests at the sequencer (amortisation actually happening, not just
// configured) while every member delivers the same totally-ordered,
// per-sender-FIFO stream.
func TestPipelinedSendsCoalesceAndStayFIFO(t *testing.T) {
	const msgs = 48
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		c.SendWindow = 2
		c.MaxBatch = 8
	})
	dones := g.pipeline(1, msgs)
	for n, done := range dones {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("send %d: %v", n, err)
			}
		case <-time.After(testTimeout):
			t.Fatalf("send %d timed out", n)
		}
	}
	sender := g.nodes[1].ep.Info().Self
	for _, nd := range g.nodes {
		data := dataOf(nd.waitData(msgs))
		requireFIFO(t, data, sender, msgs)
	}
	st := g.nodes[0].ep.Stats()
	if st.OrderedBatches == 0 || st.MaxBatchMsgs < 2 {
		t.Fatalf("no batches formed: %+v", st)
	}
	if st.MaxBatchMsgs > 8 {
		t.Fatalf("batch exceeded MaxBatch: %d", st.MaxBatchMsgs)
	}
	upTo := g.nodes[0].ep.Info().NextSeq - 1
	requireSameOrder(t, g.nodes, upTo)
}

// TestPipelinedSendsUnderLoss runs the same pipelined workload over a lossy,
// duplicating network: batch broadcasts get dropped and NAK-refetched as
// units, and the guarantees must hold regardless.
func TestPipelinedSendsUnderLoss(t *testing.T) {
	const msgs = 40
	g := newGroup(t, 3, memnet.Config{DropRate: 0.05, DupRate: 0.03, Seed: 42}, func(c *Config) {
		c.SendWindow = 3
		c.MaxBatch = 6
	})
	dones := g.pipeline(2, msgs)
	for n, done := range dones {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("send %d: %v", n, err)
			}
		case <-time.After(testTimeout):
			t.Fatalf("send %d timed out", n)
		}
	}
	sender := g.nodes[2].ep.Info().Self
	for _, nd := range g.nodes {
		requireFIFO(t, dataOf(nd.waitData(msgs)), sender, msgs)
	}
	upTo := g.nodes[0].ep.Info().NextSeq - 1
	requireSameOrder(t, g.nodes, upTo)
}

// TestBatchedResilienceAcksOnce checks the resilience path with batching: a
// batch travels as ONE tentative, collects acks as a unit, and its messages
// become deliverable only on the accept — r crashes may not lose any
// completed send, batched or not.
func TestBatchedResilienceAcksOnce(t *testing.T) {
	const msgs = 24
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		c.Resilience = 1
		c.SendWindow = 2
		c.MaxBatch = 6
	})
	dones := g.pipeline(1, msgs)
	for n, done := range dones {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("send %d: %v", n, err)
			}
		case <-time.After(testTimeout):
			t.Fatalf("send %d timed out", n)
		}
	}
	sender := g.nodes[1].ep.Info().Self
	for _, nd := range g.nodes {
		requireFIFO(t, dataOf(nd.waitData(msgs)), sender, msgs)
	}
	st := g.nodes[0].ep.Stats()
	if st.OrderedBatches == 0 {
		t.Fatalf("no batches formed under resilience: %+v", st)
	}
	// One ack round per batch, not per message: the designated acker's
	// AcksSent must stay well below the message count.
	acker := g.nodes[1].ep.Stats().AcksSent + g.nodes[2].ep.Stats().AcksSent
	if acker >= msgs {
		t.Fatalf("acks (%d) not amortised across batches (%d msgs, %d batches)", acker, msgs, st.OrderedBatches)
	}
	upTo := g.nodes[0].ep.Info().NextSeq - 1
	requireSameOrder(t, g.nodes, upTo)
}

// TestPipelinedWindowSurvivesSequencerFailover crashes the sequencer while a
// sender has a full pipelined window in flight. The recovery must re-home
// the window on the new sequencer without reordering or duplicating: every
// completed send appears exactly once, in submission order, at every
// survivor. Resilience 1 guarantees no completed send is lost to the single
// crash.
func TestPipelinedWindowSurvivesSequencerFailover(t *testing.T) {
	const msgs = 30
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		c.Resilience = 1
		c.SendWindow = 4
		c.MaxBatch = 4
		c.AutoReset = true
		c.MinSurvivors = 2
	})
	// Keep a continuous pipelined stream going from node 2.
	dones := g.pipeline(2, msgs)
	// Let some complete, then kill the sequencer mid-window.
	g.nodes[2].waitData(4)
	g.nodes[0].crash()
	for n, done := range dones {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("send %d: %v", n, err)
			}
		case <-time.After(testTimeout):
			t.Fatalf("send %d timed out (window lost across failover)", n)
		}
	}
	sender := g.nodes[2].ep.Info().Self
	survivors := g.nodes[1:]
	for _, nd := range survivors {
		requireFIFO(t, dataOf(nd.waitData(msgs)), sender, msgs)
	}
	upTo := g.nodes[1].ep.Info().NextSeq - 1
	requireSameOrder(t, survivors, upTo)
}

// TestSequencerSelfSendsBatch: a member co-located with the sequencer must
// coalesce its own bursts too. Self-sends are ordered without a network round
// trip, so without the one-drain-cycle deferral the window never fills and
// every message costs its own multicast; with it, a SendMany burst forms
// multi-message batch entries exactly like a remote member's — observable in
// the rising batch counters.
func TestSequencerSelfSendsBatch(t *testing.T) {
	const msgs = 48
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		c.SendWindow = 2
		c.MaxBatch = 8
	})
	seq := g.nodes[0] // the creator sequences the group
	if !seq.ep.Info().IsSequencer {
		t.Fatal("node 0 is not the sequencer")
	}
	payloads := make([][]byte, msgs)
	dones := make([]func(error), msgs)
	errs := make(chan error, msgs)
	for n := 0; n < msgs; n++ {
		payloads[n] = []byte(fmt.Sprintf("m%03d", n))
		dones[n] = func(e error) { errs <- e }
	}
	seq.ep.SendMany(payloads, dones)
	for n := 0; n < msgs; n++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("send %d: %v", n, err)
			}
		case <-time.After(testTimeout):
			t.Fatalf("send %d timed out", n)
		}
	}
	sender := seq.ep.Info().Self
	for _, nd := range g.nodes {
		data := dataOf(nd.waitData(msgs))
		requireFIFO(t, data, sender, msgs)
	}
	st := seq.ep.Stats()
	if st.OrderedBatches == 0 || st.MaxBatchMsgs < 2 {
		t.Fatalf("sequencer self-sends formed no batches: %+v", st)
	}
	if st.MaxBatchMsgs > 8 {
		t.Fatalf("batch exceeded MaxBatch: %d", st.MaxBatchMsgs)
	}
	upTo := seq.ep.Info().NextSeq - 1
	requireSameOrder(t, g.nodes, upTo)
}

// TestSequencerSelfSendsBatchWithResilience: the deferral must compose with
// the tentative/ack round — a resilient self-send burst still batches, and
// no send completes before its batch is stored remotely.
func TestSequencerSelfSendsBatchWithResilience(t *testing.T) {
	const msgs = 24
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		c.Resilience = 1
		c.SendWindow = 2
		c.MaxBatch = 8
	})
	seq := g.nodes[0]
	payloads := make([][]byte, msgs)
	errs := make(chan error, msgs)
	dones := make([]func(error), msgs)
	for n := 0; n < msgs; n++ {
		payloads[n] = []byte(fmt.Sprintf("m%03d", n))
		dones[n] = func(e error) { errs <- e }
	}
	seq.ep.SendMany(payloads, dones)
	for n := 0; n < msgs; n++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("send %d: %v", n, err)
			}
		case <-time.After(testTimeout):
			t.Fatalf("send %d timed out", n)
		}
	}
	sender := seq.ep.Info().Self
	for _, nd := range g.nodes {
		requireFIFO(t, dataOf(nd.waitData(msgs)), sender, msgs)
	}
	if st := seq.ep.Stats(); st.OrderedBatches == 0 {
		t.Fatalf("resilient self-sends formed no batches: %+v", st)
	}
}
