package core

import (
	"testing"
	"time"

	"amoeba/internal/netw/memnet"
)

// waitMembers polls node's view until it has want members (via a Reset or
// other membership event) or the deadline passes.
func waitMembers(t *testing.T, nd *node, want int, deadline time.Duration) bool {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		if len(nd.ep.Info().Members) == want {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

// TestIdleGroupExpelsCorpse is the idle-group failure-detection regression:
// a member that crashes while the group is idle must be expelled within a
// bounded time — without any application traffic to trip send retries or
// history pressure — via the sequencer's sync-tick probe of laggards.
func TestIdleGroupExpelsCorpse(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		c.AutoReset = true
		c.MinSurvivors = 1
	})
	// A little traffic so everyone is live and acknowledged, then silence.
	if err := g.send(0, []byte("warmup")); err != nil {
		t.Fatalf("send: %v", err)
	}
	g.nodes[2].waitData(1)

	g.nodes[2].crash()
	// No further sends: only the idle probe can notice the corpse. At the
	// test's 50 ms sync interval and 2 lag ticks + 3 status retries × 30 ms
	// detection should land well under a second.
	if !waitMembers(t, g.nodes[0], 2, 5*time.Second) {
		t.Fatalf("idle corpse was not expelled: members=%d (want 2)", len(g.nodes[0].ep.Info().Members))
	}
	// The survivors' group must still order messages.
	if err := g.send(1, []byte("after")); err != nil {
		t.Fatalf("send after expulsion: %v", err)
	}
}

// TestIdleProbeSparesLiveMembers: a fully idle group with everyone alive
// must not churn — the probe's answer clears the lag, and membership stays
// intact across several probe rounds.
func TestIdleProbeSparesLiveMembers(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		c.AutoReset = true
		c.MinSurvivors = 1
	})
	if err := g.send(0, []byte("warmup")); err != nil {
		t.Fatalf("send: %v", err)
	}
	g.nodes[2].waitData(1)
	// Many sync intervals of pure idleness.
	time.Sleep(600 * time.Millisecond)
	for i, nd := range g.nodes {
		if got := len(nd.ep.Info().Members); got != 3 {
			t.Fatalf("node %d sees %d members after idling (want 3): idle probe expelled a live member", i, got)
		}
	}
}

// TestIdleProbeDisabled: with IdleProbeTicks < 0 the seed behaviour is
// preserved — an idle corpse is not discovered without traffic.
func TestIdleProbeDisabled(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		c.AutoReset = true
		c.MinSurvivors = 1
		c.IdleProbeTicks = -1
	})
	if err := g.send(0, []byte("warmup")); err != nil {
		t.Fatalf("send: %v", err)
	}
	g.nodes[2].waitData(1)
	g.nodes[2].crash()
	if waitMembers(t, g.nodes[0], 2, 700*time.Millisecond) {
		t.Fatal("corpse expelled while idle probing was disabled (no traffic should mean no detection)")
	}
}
