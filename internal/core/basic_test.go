package core

import (
	"fmt"
	"testing"
	"time"

	"amoeba/internal/netw/memnet"
)

func TestCreateGroupDeliversOwnJoin(t *testing.T) {
	g := newGroup(t, 1, memnet.Config{}, nil)
	ds := g.nodes[0].waitDeliveries(1)
	if ds[0].Kind != KindJoin || ds[0].Sender != 0 || ds[0].Seq != 1 {
		t.Fatalf("first delivery = %+v", ds[0])
	}
	info := g.nodes[0].ep.Info()
	if !info.IsSequencer || info.Self != 0 || len(info.Members) != 1 {
		t.Fatalf("info = %+v", info)
	}
}

func TestJoinersSeeOrderedJoins(t *testing.T) {
	g := newGroup(t, 4, memnet.Config{}, nil)
	// Joins occupy seqs 1..4; every node must agree on the overlap.
	requireSameOrder(t, g.nodes, 4)
	for i, nd := range g.nodes {
		info := nd.ep.Info()
		if len(info.Members) != 4 {
			t.Fatalf("node %d sees %d members", i, len(info.Members))
		}
		if info.Self != MemberID(i) {
			t.Fatalf("node %d has id %d", i, info.Self)
		}
	}
}

func TestSendPBDeliversEverywhereInOrder(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) { c.Method = MethodPB })
	for i := 0; i < 5; i++ {
		if err := g.send(1, []byte(fmt.Sprintf("msg-%d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for _, nd := range g.nodes {
		data := nd.waitData(5)
		for i := 0; i < 5; i++ {
			if string(data[i].Payload) != fmt.Sprintf("msg-%d", i) {
				t.Fatalf("data[%d] = %q", i, data[i].Payload)
			}
			if data[i].Sender != 1 {
				t.Fatalf("data[%d].Sender = %d", i, data[i].Sender)
			}
		}
	}
	requireSameOrder(t, g.nodes, 3+5)
}

func TestSendBBDeliversEverywhereInOrder(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) { c.Method = MethodBB })
	for i := 0; i < 5; i++ {
		if err := g.send(2, []byte(fmt.Sprintf("bb-%d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for _, nd := range g.nodes {
		data := nd.waitData(5)
		for i := range data {
			if string(data[i].Payload) != fmt.Sprintf("bb-%d", i) {
				t.Fatalf("data[%d] = %q", i, data[i].Payload)
			}
		}
	}
	requireSameOrder(t, g.nodes, 3+5)
}

func TestSequencerSelfSendFastPath(t *testing.T) {
	g := newGroup(t, 2, memnet.Config{}, nil)
	if err := g.send(0, []byte("from-sequencer")); err != nil {
		t.Fatalf("send: %v", err)
	}
	data := g.nodes[1].waitData(1)
	if string(data[0].Payload) != "from-sequencer" || data[0].Sender != 0 {
		t.Fatalf("delivery = %+v", data[0])
	}
}

func TestAutoMethodHandlesMixedSizes(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) { c.BBThreshold = 256 })
	payloads := [][]byte{
		[]byte("small"),
		make([]byte, 1000), // BB, single fragment
		make([]byte, 8000), // BB, fragmented
		[]byte("small-again"),
	}
	for i, p := range payloads {
		if len(p) > 64 {
			for j := range p {
				p[j] = byte(i + j)
			}
		}
		if err := g.send(1, p); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for _, nd := range g.nodes {
		data := nd.waitData(len(payloads))
		for i := range payloads {
			if string(data[i].Payload) != string(payloads[i]) {
				t.Fatalf("payload %d mismatch (%d vs %d bytes)", i, len(data[i].Payload), len(payloads[i]))
			}
		}
	}
}

func TestFIFOPerSenderUnderConcurrency(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, nil)
	const perSender = 20
	errs := make(chan error, 3*perSender)
	for s := 0; s < 3; s++ {
		s := s
		go func() {
			for i := 0; i < perSender; i++ {
				payload := []byte(fmt.Sprintf("s%d-%d", s, i))
				done := make(chan error, 1)
				g.nodes[s].ep.Send(payload, func(e error) { done <- e })
				errs <- <-done
			}
		}()
	}
	for i := 0; i < 3*perSender; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("send: %v", err)
			}
		case <-time.After(testTimeout):
			t.Fatal("sends timed out")
		}
	}
	for _, nd := range g.nodes {
		data := nd.waitData(3 * perSender)
		// FIFO per sender: for each sender the per-sender indices
		// appear in order.
		next := map[MemberID]int{}
		for _, d := range data {
			var s, i int
			if _, err := fmt.Sscanf(string(d.Payload), "s%d-%d", &s, &i); err != nil {
				t.Fatalf("bad payload %q", d.Payload)
			}
			if i != next[d.Sender] {
				t.Fatalf("sender %d out of FIFO: got %d want %d", d.Sender, i, next[d.Sender])
			}
			next[d.Sender]++
		}
	}
	// And the total order is identical.
	last := g.nodes[0].waitData(3 * perSender)[3*perSender-1].Seq
	requireSameOrder(t, g.nodes, last)
}

func TestTotalOrderUnderLossDupsAndCorruption(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{DropRate: 0.15, DupRate: 0.1, CorruptRate: 0.05, Seed: 42}, nil)
	const perSender = 15
	done := make(chan error, 3*perSender)
	for s := 0; s < 3; s++ {
		s := s
		go func() {
			for i := 0; i < perSender; i++ {
				ch := make(chan error, 1)
				g.nodes[s].ep.Send([]byte(fmt.Sprintf("s%d-%d", s, i)), func(e error) { ch <- e })
				done <- <-ch
			}
		}()
	}
	for i := 0; i < 3*perSender; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("send: %v", err)
			}
		case <-time.After(testTimeout):
			t.Fatal("sends timed out under loss")
		}
	}
	last := g.nodes[0].waitData(3 * perSender)[3*perSender-1].Seq
	requireSameOrder(t, g.nodes, last)
	// Loss must actually have happened for this test to mean anything.
	if g.net.Dropped() == 0 {
		t.Fatal("fault injection produced no drops")
	}
}

func TestLargeMessagesUnderLoss(t *testing.T) {
	g := newGroup(t, 2, memnet.Config{DropRate: 0.1, Seed: 7}, nil)
	payload := make([]byte, 8000)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	for i := 0; i < 5; i++ {
		if err := g.send(1, payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	data := g.nodes[0].waitData(5)
	for i := range data {
		if len(data[i].Payload) != len(payload) {
			t.Fatalf("message %d truncated: %d bytes", i, len(data[i].Payload))
		}
		for j := range payload {
			if data[i].Payload[j] != payload[j] {
				t.Fatalf("message %d corrupt at %d", i, j)
			}
		}
	}
}

func TestOversizedSendRejected(t *testing.T) {
	g := newGroup(t, 1, memnet.Config{}, func(c *Config) { c.MaxMessage = 100 })
	err := g.send(0, make([]byte, 101))
	if err == nil {
		t.Fatal("oversized send accepted")
	}
}

func TestInfoReflectsGroupState(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) { c.Resilience = 1 })
	_ = g.send(0, []byte("x"))
	info := g.nodes[2].ep.Info()
	if info.Group != g.addr {
		t.Fatalf("group addr = %v", info.Group)
	}
	if info.Resilience != 1 {
		t.Fatalf("resilience = %d", info.Resilience)
	}
	if info.Sequencer != 0 || info.IsSequencer {
		t.Fatalf("sequencer fields wrong: %+v", info)
	}
	if len(info.Members) != 3 {
		t.Fatalf("members = %d", len(info.Members))
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	g := newGroup(t, 2, memnet.Config{}, nil)
	g.nodes[1].ep.Close()
	done := make(chan error, 1)
	g.nodes[1].ep.Send([]byte("x"), func(e error) { done <- e })
	if err := <-done; err == nil {
		t.Fatal("send on closed endpoint succeeded")
	}
}

func TestHistoryStaysBounded(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) { c.HistorySize = 16 })
	for i := 0; i < 100; i++ {
		if err := g.send(1, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	g.nodes[2].waitData(100)
	for i, nd := range g.nodes {
		nd.ep.mu.Lock()
		n := nd.ep.hist.len()
		nd.ep.mu.Unlock()
		if n > 16 {
			t.Fatalf("node %d history holds %d entries, cap 16", i, n)
		}
	}
}

func TestManyMembersDeliverEverything(t *testing.T) {
	g := newGroup(t, 8, memnet.Config{}, nil)
	const msgs = 10
	for i := 0; i < msgs; i++ {
		if err := g.send(i%8, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	last := g.nodes[0].waitData(msgs)[msgs-1].Seq
	requireSameOrder(t, g.nodes, last)
}
