package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"amoeba/internal/flip"
)

func TestPacketCodecRoundTrip(t *testing.T) {
	f := func(typ, kind uint8, sender uint16, view, seq, localID, lastRecv, aux, aux2 uint32, payload []byte) bool {
		if typ == 0 {
			typ = 1
		}
		p := packet{
			typ: pktType(typ), kind: MsgKind(kind), sender: MemberID(sender),
			view: view, seq: seq, localID: localID,
			lastRecv: lastRecv, aux: aux, aux2: aux2, payload: payload,
		}
		buf := p.encode()
		got, err := decodePacket(buf)
		if err != nil {
			return false
		}
		return got.typ == p.typ && got.kind == p.kind && got.sender == p.sender &&
			got.view == p.view && got.seq == p.seq && got.localID == p.localID &&
			got.lastRecv == p.lastRecv && got.aux == p.aux && got.aux2 == p.aux2 &&
			bytes.Equal(got.payload, p.payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodePacketRejectsShort(t *testing.T) {
	for n := 0; n < GroupHeaderSize; n++ {
		if _, err := decodePacket(make([]byte, n)); err == nil {
			t.Fatalf("accepted %d-byte packet", n)
		}
	}
	if _, err := decodePacket(make([]byte, GroupHeaderSize)); err != nil {
		t.Fatalf("rejected exact-header packet: %v", err)
	}
}

func TestViewCodecRoundTrip(t *testing.T) {
	f := func(inc, start uint32, seqID uint16, rawMembers []uint64) bool {
		v := view{incarnation: inc, sequencer: MemberID(seqID)}
		if len(rawMembers) > 100 {
			rawMembers = rawMembers[:100]
		}
		for i, a := range rawMembers {
			v.add(Member{ID: MemberID(i), Addr: flip.Address(a)})
		}
		buf := encodeView(v, start)
		got, gotStart, err := decodeView(buf)
		if err != nil {
			return false
		}
		if gotStart != start || got.incarnation != inc || got.sequencer != v.sequencer {
			return false
		}
		if len(got.members) != len(v.members) {
			return false
		}
		for i := range got.members {
			if got.members[i] != v.members[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeViewRejectsTruncated(t *testing.T) {
	v := view{incarnation: 3, sequencer: 1}
	v.add(Member{ID: 0, Addr: 10})
	v.add(Member{ID: 1, Addr: 20})
	buf := encodeView(v, 7)
	for n := 0; n < len(buf); n++ {
		if _, _, err := decodeView(buf[:n]); err == nil {
			t.Fatalf("accepted %d-byte truncation", n)
		}
	}
}

func TestViewAddKeepsSortedAndReplaces(t *testing.T) {
	var v view
	v.add(Member{ID: 5, Addr: 50})
	v.add(Member{ID: 1, Addr: 10})
	v.add(Member{ID: 3, Addr: 30})
	ids := []MemberID{1, 3, 5}
	for i, m := range v.members {
		if m.ID != ids[i] {
			t.Fatalf("order broken: %+v", v.members)
		}
	}
	v.add(Member{ID: 3, Addr: 99}) // replace
	if m, _ := v.find(3); m.Addr != 99 {
		t.Fatalf("replace failed: %+v", m)
	}
	if len(v.members) != 3 {
		t.Fatalf("replace duplicated: %+v", v.members)
	}
}

func TestViewNextIDFillsGaps(t *testing.T) {
	var v view
	if v.nextID() != 0 {
		t.Fatal("empty view nextID != 0")
	}
	v.add(Member{ID: 0})
	v.add(Member{ID: 1})
	v.add(Member{ID: 3})
	if v.nextID() != 2 {
		t.Fatalf("nextID = %d, want 2", v.nextID())
	}
	v.add(Member{ID: 2})
	if v.nextID() != 4 {
		t.Fatalf("nextID = %d, want 4", v.nextID())
	}
}

func TestViewLowestOther(t *testing.T) {
	var v view
	v.add(Member{ID: 2})
	v.add(Member{ID: 4})
	v.add(Member{ID: 7})
	if got := v.lowestOther(2); got != 4 {
		t.Fatalf("lowestOther(2) = %d", got)
	}
	if got := v.lowestOther(4); got != 2 {
		t.Fatalf("lowestOther(4) = %d", got)
	}
	var solo view
	solo.add(Member{ID: 9})
	if got := solo.lowestOther(9); got != noMember {
		t.Fatalf("lowestOther on solo = %d", got)
	}
}

func TestViewRemove(t *testing.T) {
	var v view
	v.add(Member{ID: 0})
	v.add(Member{ID: 1})
	v.add(Member{ID: 2})
	v.remove(1)
	if _, ok := v.find(1); ok {
		t.Fatal("member 1 still present")
	}
	if len(v.members) != 2 {
		t.Fatalf("len = %d", len(v.members))
	}
	v.remove(42) // absent: no-op
	if len(v.members) != 2 {
		t.Fatal("removing absent member changed view")
	}
}

func TestHistoryAddGetPrune(t *testing.T) {
	h := newHistory(4)
	for s := uint32(1); s <= 4; s++ {
		if !h.add(&entry{seq: s}) {
			t.Fatalf("add %d failed", s)
		}
	}
	if h.add(&entry{seq: 5}) {
		t.Fatal("add beyond capacity succeeded")
	}
	if !h.full() {
		t.Fatal("not full at capacity")
	}
	h.pruneTo(2)
	if h.full() {
		t.Fatal("still full after pruning")
	}
	if _, ok := h.get(2); ok {
		t.Fatal("pruned entry still retrievable")
	}
	if _, ok := h.get(3); !ok {
		t.Fatal("unpruned entry lost")
	}
	if h.floor != 2 {
		t.Fatalf("floor = %d", h.floor)
	}
	// Pruning backwards is a no-op.
	h.pruneTo(1)
	if h.floor != 2 {
		t.Fatal("floor moved backwards")
	}
}

func TestHistoryContiguousTop(t *testing.T) {
	h := newHistory(10)
	if h.contiguousTop() != 0 {
		t.Fatal("empty top != floor")
	}
	h.add(&entry{seq: 1})
	h.add(&entry{seq: 2})
	h.add(&entry{seq: 4})
	if got := h.contiguousTop(); got != 2 {
		t.Fatalf("contiguousTop = %d, want 2", got)
	}
	h.add(&entry{seq: 3})
	if got := h.contiguousTop(); got != 4 {
		t.Fatalf("contiguousTop = %d, want 4", got)
	}
}

func TestHistoryTruncateAbove(t *testing.T) {
	h := newHistory(10)
	for s := uint32(1); s <= 6; s++ {
		h.add(&entry{seq: s})
	}
	h.truncateAbove(4)
	if _, ok := h.get(5); ok {
		t.Fatal("entry above truncation survives")
	}
	if _, ok := h.get(4); !ok {
		t.Fatal("entry at truncation removed")
	}
}

func TestHistoryLargeFloorJumpIsCheap(t *testing.T) {
	h := newHistory(8)
	h.add(&entry{seq: 1})
	// A joiner re-bases its floor by a huge jump; must not iterate the
	// whole range.
	h.pruneTo(1 << 30)
	if h.floor != 1<<30 {
		t.Fatalf("floor = %d", h.floor)
	}
	if h.len() != 0 {
		t.Fatal("entries survived giant prune")
	}
}

func TestMsgKindString(t *testing.T) {
	kinds := map[MsgKind]string{
		KindData: "data", KindJoin: "join", KindLeave: "leave",
		KindReset: "reset", KindExpelled: "expelled", MsgKind(99): "kind(99)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

func TestMethodString(t *testing.T) {
	if MethodAuto.String() != "auto" || MethodPB.String() != "PB" || MethodBB.String() != "BB" {
		t.Fatal("method strings wrong")
	}
}

func TestBatchBodyRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{[]byte("a")},
		{[]byte(""), []byte("b"), []byte("ccc")},
		{[]byte("x"), {}, []byte("yy"), []byte("zzzz"), {0, 1, 2, 255}},
	}
	for i, payloads := range cases {
		body := encodeBatchBody(payloads)
		if got := wireBatchCount(body); got != len(payloads) {
			t.Fatalf("case %d: wireBatchCount = %d, want %d", i, got, len(payloads))
		}
		parts, err := decodeBatchBody(body)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if len(parts) != len(payloads) {
			t.Fatalf("case %d: %d parts, want %d", i, len(parts), len(payloads))
		}
		for j := range parts {
			if string(parts[j]) != string(payloads[j]) {
				t.Fatalf("case %d part %d: %q != %q", i, j, parts[j], payloads[j])
			}
		}
	}
}

func TestBatchBodyRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		{},                     // no count
		{0},                    // zero count
		{2, 1, 'a'},            // second payload missing
		{1, 5, 'a'},            // length overruns body
		{1, 1, 'a', 'b'},       // trailing bytes
		{0xff, 0xff, 0xff, 1},  // absurd count
		append([]byte{1}, 200), // truncated length varint
	}
	for i, body := range bad {
		if _, err := decodeBatchBody(body); err == nil {
			t.Fatalf("case %d: malformed body decoded", i)
		}
	}
	if newBatchEntry(7, 3, 9, []byte{0}) != nil {
		t.Fatal("newBatchEntry accepted malformed body")
	}
}

func TestBatchEntrySpansHistory(t *testing.T) {
	h := newHistory(8)
	e := newBatchEntry(4, 1, 10, encodeBatchBody([][]byte{[]byte("a"), []byte("b"), []byte("c")}))
	if e == nil {
		t.Fatal("newBatchEntry failed")
	}
	if e.lastSeq() != 6 || e.lastLocalID() != 12 || e.span() != 3 {
		t.Fatalf("span geometry wrong: lastSeq=%d lastLocalID=%d span=%d", e.lastSeq(), e.lastLocalID(), e.span())
	}
	if !h.add(e) {
		t.Fatal("add failed with room available")
	}
	for s := uint32(4); s <= 6; s++ {
		got, ok := h.get(s)
		if !ok || got != e {
			t.Fatalf("seq %d not mapped to the batch entry", s)
		}
	}
	if h.len() != 3 {
		t.Fatalf("batch consumed %d slots, want 3", h.len())
	}
	// Capacity is counted per message: a 6-slot batch does not fit in the
	// remaining 5.
	big := newBatchEntry(7, 1, 13, encodeBatchBody([][]byte{{}, {}, {}, {}, {}, {}}))
	if h.add(big) {
		t.Fatal("add accepted a batch beyond capacity")
	}
	// Partial prune keeps the tail reachable.
	h.pruneTo(5)
	if _, ok := h.get(6); !ok {
		t.Fatal("partial prune dropped the batch tail")
	}
	if h.contiguousTop() != 6 {
		t.Fatalf("contiguousTop = %d", h.contiguousTop())
	}
}
