package core

import (
	"testing"
	"time"

	"amoeba/internal/flip"
	"amoeba/internal/netw/memnet"
)

func TestLeaveUnderLossRetriesUntilOrdered(t *testing.T) {
	g := newGroup(t, 3, memnet.Config{DropRate: 0.35, Seed: 31}, func(c *Config) {
		c.RetryInterval = 15 * time.Millisecond
		c.MaxRetries = 200
	})
	if err := await(t, "lossy leave", func(d func(error)) { g.nodes[1].ep.Leave(d) }); err != nil {
		t.Fatalf("leave under loss: %v", err)
	}
	deadline := time.After(testTimeout)
	for len(g.nodes[0].ep.Info().Members) != 2 {
		select {
		case <-deadline:
			t.Fatalf("leave never took effect: %+v", g.nodes[0].ep.Info())
		case <-time.After(5 * time.Millisecond):
		}
	}
	// Exactly one Leave delivery at the survivors despite duplicates of
	// the request.
	ds := g.nodes[2].waitForSeq(4)
	leaves := 0
	for _, d := range ds {
		if d.Kind == KindLeave {
			leaves++
		}
	}
	if leaves != 1 {
		t.Fatalf("delivered %d leave events, want 1", leaves)
	}
}

func TestJoinAckStashEviction(t *testing.T) {
	// Admit more joiners than the ack stash retains; the protocol must
	// keep working (old acks are only needed for retransmission, and
	// their owners have long since joined).
	g := newGroup(t, 1, memnet.Config{}, func(c *Config) {
		c.HistorySize = 512
	})
	const joiners = maxJoinAcksRetained + 5
	for i := 0; i < joiners; i++ {
		g.addNode(false)
	}
	info := g.nodes[0].ep.Info()
	if len(info.Members) != joiners+1 {
		t.Fatalf("members = %d, want %d", len(info.Members), joiners+1)
	}
	g.nodes[0].ep.mu.Lock()
	stash := len(g.nodes[0].ep.joinAcks)
	g.nodes[0].ep.mu.Unlock()
	if stash > maxJoinAcksRetained {
		t.Fatalf("ack stash grew to %d, bound %d", stash, maxJoinAcksRetained)
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	c := Config{}
	c.applyDefaults()
	if c.HistorySize != 128 {
		t.Fatalf("HistorySize default = %d, want the paper's 128", c.HistorySize)
	}
	if c.BBThreshold != 1024 || c.MaxMessage != 64<<10 {
		t.Fatalf("size defaults: %d %d", c.BBThreshold, c.MaxMessage)
	}
	if c.RetryInterval <= 0 || c.NakDelay <= 0 || c.SyncInterval <= 0 ||
		c.StatusTimeout <= 0 || c.ResetTimeout <= 0 {
		t.Fatal("timeout defaults missing")
	}
	if c.MaxRetries <= 0 || c.StatusRetries <= 0 || c.ResetRetries <= 0 || c.MinSurvivors != 1 {
		t.Fatal("retry defaults missing")
	}
	if c.Meter == nil {
		t.Fatal("meter default missing")
	}
}

func TestEndpointConstructorValidation(t *testing.T) {
	base := Config{
		Group: 1, Self: 2,
		Transport: nopTransport{}, Clock: newTestClock(),
	}
	if _, err := NewCreator(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, mod := range map[string]func(*Config){
		"no group":     func(c *Config) { c.Group = 0 },
		"no self":      func(c *Config) { c.Self = 0 },
		"no transport": func(c *Config) { c.Transport = nil },
		"no clock":     func(c *Config) { c.Clock = nil },
	} {
		c := base
		mod(&c)
		if _, err := NewCreator(c); err == nil {
			t.Fatalf("%s accepted", name)
		}
		if _, err := NewJoiner(c, nil); err == nil {
			t.Fatalf("joiner with %s accepted", name)
		}
	}
}

type nopTransport struct{}

func (nopTransport) Send(flip.Address, []byte) error { return nil }
func (nopTransport) Multicast([]byte) error          { return nil }

func TestResolveMethodPolicy(t *testing.T) {
	mk := func(mod func(*Config)) *Endpoint {
		c := Config{Group: 1, Self: 2, Transport: nopTransport{}, Clock: newTestClock()}
		if mod != nil {
			mod(&c)
		}
		ep, err := NewCreator(c)
		if err != nil {
			t.Fatalf("NewCreator: %v", err)
		}
		return ep
	}
	auto := mk(nil)
	if auto.resolveMethod(10) != MethodPB || auto.resolveMethod(4096) != MethodBB {
		t.Fatal("auto switching wrong")
	}
	if auto.resolveMethod(1024) != MethodBB { // threshold is inclusive
		t.Fatal("threshold not inclusive")
	}
	forcedPB := mk(func(c *Config) { c.Method = MethodPB })
	if forcedPB.resolveMethod(1<<15) != MethodPB {
		t.Fatal("forced PB ignored")
	}
	forcedBB := mk(func(c *Config) { c.Method = MethodBB })
	if forcedBB.resolveMethod(0) != MethodBB {
		t.Fatal("forced BB ignored")
	}
	// Resilience forces PB regardless.
	resilient := mk(func(c *Config) { c.Resilience = 2; c.Method = MethodBB })
	if resilient.resolveMethod(1<<15) != MethodPB {
		t.Fatal("resilience did not force PB")
	}
}

func TestDoubleCloseAndLateCallbacks(t *testing.T) {
	g := newGroup(t, 2, memnet.Config{}, nil)
	ep := g.nodes[1].ep
	done1 := make(chan error, 1)
	ep.Send([]byte("in-flight"), func(e error) { done1 <- e })
	ep.Close()
	ep.Close() // idempotent
	select {
	case <-done1:
	case <-time.After(testTimeout):
		t.Fatal("in-flight send never resolved on Close")
	}
	// Operations after close resolve immediately.
	for name, start := range map[string]func(func(error)){
		"send":  func(d func(error)) { ep.Send(nil, d) },
		"leave": func(d func(error)) { ep.Leave(d) },
		"reset": func(d func(error)) { ep.Reset(1, d) },
	} {
		ch := make(chan error, 1)
		start(func(e error) { ch <- e })
		select {
		case err := <-ch:
			if err == nil {
				t.Fatalf("%s after close succeeded", name)
			}
		case <-time.After(testTimeout):
			t.Fatalf("%s after close hung", name)
		}
	}
}
