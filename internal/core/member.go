package core

import (
	"time"

	"amoeba/internal/cost"
	"amoeba/internal/flip"
)

// This file is the member (non-sequencer) side of the protocol: the send
// pump with pipelining and retries, receiving ordered messages, gap
// detection with negative acknowledgements, and the in-order delivery loop.

// pumpSendLocked activates queued ordering requests until Config.SendWindow
// of them are in flight. Active ops are always a FIFO prefix of sendQ.
func (ep *Endpoint) pumpSendLocked() {
	if ep.st != stNormal || ep.resending {
		return
	}
	for {
		active := 0
		var next *sendOp
		for _, op := range ep.sendQ {
			if !op.active {
				next = op
				break
			}
			active++
		}
		if next == nil || active >= ep.cfg.SendWindow {
			return
		}
		next.active = true
		next.sent = true
		next.retries = 0
		// Transmission may complete synchronously (own sequencer) and
		// mutate sendQ; re-scan each round.
		ep.transmitOpLocked(next)
		if ep.st != stNormal {
			return
		}
	}
}

// transmitOpLocked puts one in-flight ordering request on the wire.
func (ep *Endpoint) transmitOpLocked(op *sendOp) {
	ep.cfg.Meter.Charge(cost.GroupOut, 0)
	if ep.isSeq {
		// The sequencer orders its own sends without any wire request: one
		// multicast total. (The paper notes heavy senders were co-located
		// with the sequencer for exactly this reason.) Re-activation after
		// a recovery or handoff must not re-order an already-sequenced
		// request.
		if d, ok := ep.dedup[ep.self]; ok && op.lastLocalID() <= d.localID {
			if e, ok := ep.findOwnOrderedLocked(op.localID); ok && !e.tentative {
				ep.finishSendLocked(op, nil)
			}
			// Still tentative (or entry pruned — then long since
			// complete): acceptance will complete it.
			return
		}
		ep.deferSelfOrderLocked(op)
		return
	}
	kind, body := op.wireBody()
	seqAddr := ep.view.sequencerAddr()
	if seqAddr == 0 {
		ep.armSendRetryLocked()
		return
	}
	// The FIFO barrier: everything below the oldest outstanding localID has
	// completed at this sender, so the sequencer may order a request at the
	// barrier even after a recovery erased its dedup state for us.
	barrier := op.localID
	if len(ep.sendQ) > 0 {
		barrier = ep.sendQ[0].localID
	}
	switch op.method {
	case MethodBB:
		// Multicast the payload; the sequencer answers with a short
		// accept. Loopback stores our own copy in the BB cache. BB ops
		// are never batched: the data is already on the wire once.
		ep.multicastPkt(packet{typ: ptBBData, kind: KindData, localID: op.localID, aux: barrier, payload: body})
	default:
		ep.sendPkt(seqAddr, packet{typ: ptReq, kind: kind, localID: op.localID, aux: barrier, payload: body})
	}
	ep.armSendRetryLocked()
}

// deferSelfOrderLocked queues one of the sequencer's own active requests for
// ordering at the end of the current drain cycle instead of ordering it
// inline. Synchronous self-ordering completes each send before the next can
// even be queued, so the co-located sender's window never fills and its
// sends never coalesce — every message costs a full multicast. Deferring by
// one drain cycle lets sends queued in the same burst (SendMany, or other
// goroutines racing the drain) coalesce into batch entries, giving the
// paper's hottest deployment shape — heavy senders on the sequencer machine —
// the same amortisation remote members get from the network round-trip.
func (ep *Endpoint) deferSelfOrderLocked(op *sendOp) {
	for _, q := range ep.selfPend {
		if q == op {
			return // already deferred (window retransmission)
		}
	}
	ep.selfPend = append(ep.selfPend, op)
	if ep.selfFlush {
		return
	}
	ep.selfFlush = true
	ep.enqueue(func() {
		ep.mu.Lock()
		ep.flushSelfOrdersLocked()
		ep.mu.Unlock()
		// Runs inside a drain; actions the flush enqueued (multicasts,
		// completions) are picked up by the running drainer.
	})
}

// flushSelfOrdersLocked orders every deferred self-send that is still
// pending. Ops that completed meanwhile (a retransmission round raced the
// flush) or whose endpoint stopped sequencing (recovery, handoff) are
// skipped — the normal send path re-homes the survivors.
//
// The flush walks the send queue, NOT the deferral list: the queue is the
// authoritative per-sender FIFO. A flush that bails on a full history can
// leave earlier ops unordered while a second flush — enqueued by a pump
// that ran mid-flush — holds only later ones; ordering from that younger
// deferral list would advance the self-dedup state past the stranded ops,
// falsely completing them via the prefix rule without ever sequencing them.
// Walking the queue makes every flush retry the oldest unordered op first.
func (ep *Endpoint) flushSelfOrdersLocked() {
	ep.selfFlush = false
	if len(ep.selfPend) == 0 {
		return
	}
	ep.selfPend = nil
	if ep.st != stNormal || !ep.isSeq {
		return
	}
	for _, op := range append([]*sendOp(nil), ep.sendQ...) {
		if !ep.opQueuedLocked(op) || !op.active {
			continue
		}
		if d, ok := ep.dedup[ep.self]; ok && op.lastLocalID() <= d.localID {
			if e, ok := ep.findOwnOrderedLocked(op.localID); ok && !e.tentative {
				ep.finishSendLocked(op, nil)
			}
			continue
		}
		kind, body := op.wireBody()
		if !ep.orderLocked(kind, ep.self, op.localID, body) {
			// History full: stop the whole flush. Ordering a LATER op now
			// would advance the self-dedup state past this one — falsely
			// completing it via the prefix rule and breaking per-sender
			// FIFO. The send retry re-transmits the window in localID
			// order, which re-defers every remaining op.
			ep.armSendRetryLocked()
			return
		}
	}
}

// opQueuedLocked reports whether op is still in the send queue.
func (ep *Endpoint) opQueuedLocked(op *sendOp) bool {
	for _, o := range ep.sendQ {
		if o == op {
			return true
		}
	}
	return false
}

// findOwnOrderedLocked locates the retained entry holding this endpoint's own
// request starting at localID, if any.
func (ep *Endpoint) findOwnOrderedLocked(localID uint32) (*entry, bool) {
	for s := ep.hist.floor + 1; s <= ep.globalSeq; s++ {
		e, ok := ep.hist.get(s)
		if ok && e.sender == ep.self && e.localID == localID &&
			(e.kind == KindData || e.kind == KindBatch) {
			return e, true
		}
	}
	return nil, false
}

// armSendRetryLocked arms the send retry timer if it is not already running.
// The timer fires only after RetryInterval with no completed request; every
// completion restarts it (see finishSendLocked), so a pipelined window that
// is making progress never retransmits spuriously.
func (ep *Endpoint) armSendRetryLocked() {
	if ep.sendTimer != nil {
		return
	}
	ep.sendTimer = ep.after(ep.cfg.RetryInterval, func() {
		ep.sendTimer = nil
		ep.retrySendLocked()
	})
}

// retrySendLocked retransmits the whole in-flight window or gives up on the
// sequencer. The oldest active op carries the retry budget: it is the one
// whose silence proves the sequencer unresponsive.
func (ep *Endpoint) retrySendLocked() {
	if len(ep.sendQ) == 0 || ep.st != stNormal {
		return
	}
	op := ep.sendQ[0]
	if !op.active {
		return
	}
	if ep.fenced {
		// The lease fence stalls acceptance for up to LeaseDur+LeaseGuard,
		// far longer than the retry budget; counting retries here would
		// turn every failover into a spurious second recovery. Keep the
		// timer ticking without consuming the budget.
		ep.armSendRetryLocked()
		return
	}
	op.retries++
	ep.stats.RequestRetries++
	if op.retries > ep.cfg.MaxRetries {
		// The sequencer is not responding: the paper's failure
		// detector has spoken.
		ep.cfg.Obs.Flight.Recordf(ep.cfg.Obs.Tag, "sequencer suspected dead after %d request retries (autoReset=%v)", op.retries-1, ep.cfg.AutoReset)
		if ep.cfg.AutoReset && !ep.isSeq {
			for _, o := range ep.sendQ {
				o.active = false // re-pumped after recovery
			}
			ep.syncSendGaugesLocked()
			ep.initiateResetLocked(ep.cfg.MinSurvivors)
			return
		}
		ep.finishSendLocked(op, ErrSequencerDead)
		return
	}
	ep.resendWindowLocked()
	ep.armSendRetryLocked()
	ep.syncSendGaugesLocked()
}

// resendWindowLocked retransmits every in-flight op in FIFO order. The pump
// is suppressed for the duration: on an endpoint that sequences its own
// sends, a retransmission can complete synchronously, and the resulting pump
// must not inject a newer op ahead of a not-yet-resent older one.
func (ep *Endpoint) resendWindowLocked() {
	ep.resending = true
	for _, op := range append([]*sendOp(nil), ep.sendQ...) {
		if op.active {
			ep.transmitOpLocked(op)
		}
	}
	ep.resending = false
	ep.pumpSendLocked()
}

// finishSendLocked completes one in-flight request — all of its payloads —
// and pumps the window.
func (ep *Endpoint) finishSendLocked(op *sendOp, err error) {
	idx := -1
	for i, o := range ep.sendQ {
		if o == op {
			idx = i
			break
		}
	}
	if idx == -1 {
		return // already completed
	}
	ep.sendQ = append(ep.sendQ[:idx], ep.sendQ[idx+1:]...)
	// Progress: restart the retry clock for the rest of the window.
	if ep.sendTimer != nil {
		ep.sendTimer.Stop()
		ep.sendTimer = nil
	}
	if err == nil {
		ep.stats.Sent += uint64(len(op.payloads))
	}
	dones := op.dones
	if err == nil && ep.fenced {
		// A send completing during the lease fence was anointed by
		// recovery but is not yet visible anywhere; reporting success now
		// would let the sender read-back through a stale lease holder and
		// miss its own write. Park the callbacks until the fence lifts.
		ep.fencedDones = append(ep.fencedDones, dones)
	} else {
		ep.enqueue(func() {
			for _, d := range dones {
				d(err)
			}
		})
	}
	for _, o := range ep.sendQ {
		if o.active {
			ep.armSendRetryLocked()
			break
		}
	}
	ep.pumpSendLocked()
	ep.syncSendGaugesLocked()
}

// completeSendsUpToLocked completes every in-flight send of ours covered by
// an ordering proof for lastLocalID (our own broadcast, accept, or a
// retransmission arriving back). Ordering proof for a localID implies every
// lower localID was ordered first — the sequencer refuses out-of-order
// requests — so the whole prefix of the window completes.
func (ep *Endpoint) completeSendsUpToLocked(sender MemberID, lastLocalID uint32) {
	if sender != ep.self {
		return
	}
	for len(ep.sendQ) > 0 {
		op := ep.sendQ[0]
		if !op.sent || op.lastLocalID() > lastLocalID {
			return
		}
		ep.finishSendLocked(op, nil)
	}
}

// --- Receiving ordered messages ---------------------------------------------

// currentViewLocked gates normal-operation packets on state and view. A
// packet from a FUTURE incarnation observed in normal operation is proof
// that a recovery completed without this member — it was declared dead while
// merely slow (the paper's unreliable failure detector) and the group moved
// on. Silently dropping such packets would leave the member a zombie,
// forever discarding the new view's traffic; instead it learns of its
// expulsion at once and the application can rejoin with state transfer.
// Packets from past incarnations are stragglers and stay ignored.
func (ep *Endpoint) currentViewLocked(p packet) bool {
	if ep.st != stNormal {
		return false
	}
	if p.view == ep.view.incarnation {
		return true
	}
	if p.view > ep.view.incarnation {
		ep.expelledLocked()
	}
	return false
}

// handleBcast stores a sequenced message or batch (PB broadcast or a
// retransmission).
func (ep *Endpoint) handleBcast(p packet, retrans bool) {
	if retrans {
		// Retransmissions also feed a recovering coordinator's fetch
		// and a frozen voter's catch-up.
		if ep.st != stNormal && ep.st != stRecovering && ep.st != stCoordinating {
			return
		}
	} else {
		if !ep.currentViewLocked(p) {
			return
		}
	}
	origin := p.sender
	if retrans {
		origin = MemberID(p.aux2)
	}
	ep.noteSyncLocked(p.seq, p.aux)
	e := entryFromPacket(p, origin)
	if e == nil {
		return // malformed batch body: NAK will refetch
	}
	if e.lastSeq() > ep.maxSeen {
		ep.maxSeen = e.lastSeq()
	}
	if e.lastSeq() < ep.nextDeliver {
		// Already delivered — but a duplicate or retransmission may
		// still be the sender's first proof that its message was
		// sequenced.
		ep.completeSendsUpToLocked(origin, e.lastLocalID())
		return
	}
	if held, ok := ep.hist.get(p.seq); !ok {
		// A full history refuses the entry; the NAK machinery refetches
		// once space frees.
		ep.hist.add(e)
	} else if held.tentative {
		// Broadcasts and retransmissions are only ever sent for accepted
		// messages (the sequencer serves tentative entries to nobody but
		// a recovery coordinator): the accept we were waiting for was
		// lost, and this packet is its substitute.
		held.tentative = false
	}
	ep.completeSendsUpToLocked(origin, e.lastLocalID())
	ep.deliverReadyLocked()
	ep.checkGapLocked()
}

// entryFromPacket builds a history entry from a data-bearing packet, copying
// the payload and decoding batch bodies. It returns nil for a malformed
// batch.
func entryFromPacket(p packet, origin MemberID) *entry {
	if p.kind == KindBatch {
		return newBatchEntry(p.seq, origin, p.localID, p.payload)
	}
	pl := make([]byte, len(p.payload))
	copy(pl, p.payload)
	return &entry{seq: p.seq, kind: p.kind, sender: origin, localID: p.localID, payload: pl}
}

// handleBBData caches an unordered BB payload until its accept arrives.
func (ep *Endpoint) handleBBData(p packet) {
	if !ep.currentViewLocked(p) {
		return
	}
	key := bbKey{sender: p.sender, localID: p.localID}
	if _, ok := ep.bbCache[key]; ok {
		return
	}
	// Bound the cache: a slot per history entry is plenty; beyond that the
	// accept path will fetch from the sequencer instead.
	if len(ep.bbCache) >= ep.cfg.HistorySize {
		return
	}
	pl := make([]byte, len(p.payload))
	copy(pl, p.payload)
	ep.bbCache[key] = pl

	if ep.isSeq {
		// The sequencer orders a BB message the moment it sees the
		// data.
		delete(ep.bbCache, key)
		m, ok := ep.pending.find(p.sender)
		if !ok {
			return
		}
		_ = m
		if d, ok := ep.dedup[p.sender]; ok && p.localID <= d.localID {
			// Duplicate BB data for something already ordered: the
			// accept was lost at the sender; re-announce it.
			if e, ok := ep.hist.get(d.seq); ok && p.localID == d.localID && e.kind != KindBatch {
				ep.multicastPkt(packet{
					typ: ptAccept, kind: e.kind, seq: e.seq,
					localID: e.localID, aux: ep.hist.floor,
					aux2: uint32(e.sender),
				})
			}
			return
		}
		if !ep.fifoAdmitsLocked(p.sender, p.localID, p.aux) {
			// Arrived ahead of an earlier in-flight send (pipelining):
			// ordering it now would break the sender's FIFO. The
			// sender's retry resends the window in order.
			return
		}
		ep.orderBBLocked(p.sender, p.localID, p.kind, pl)
	}
}

// handleAccept processes the sequencer's short accept: either the ordering
// of a BB message (aux2 = sender id) or the finalisation of a tentative
// message (aux2 = noMember).
func (ep *Endpoint) handleAccept(p packet) {
	if !ep.currentViewLocked(p) {
		return
	}
	ep.noteSyncLocked(p.seq, p.aux)
	if p.seq > ep.maxSeen {
		ep.maxSeen = p.seq
	}
	if MemberID(p.aux2) == noMember {
		// Tentative finalisation. The sequencer accepts in sequence
		// order, so an accept is cumulative: every buffered tentative at
		// or below p.seq is final too (their own accepts may have been
		// lost on the wire).
		for s := ep.nextDeliver; s <= p.seq; s++ {
			e, ok := ep.hist.get(s)
			if !ok || !e.tentative {
				continue
			}
			e.tentative = false
			if e.lastSeq() > ep.maxSeen {
				ep.maxSeen = e.lastSeq()
			}
			if e.kind == KindData || e.kind == KindBatch {
				ep.completeSendsUpToLocked(e.sender, e.lastLocalID())
			}
			s = e.lastSeq()
		}
		// If we never got the tentative itself, the gap logic will
		// NAK it as a plain missing message.
		ep.deliverReadyLocked()
		ep.checkGapLocked()
		return
	}
	// BB ordering.
	sender := MemberID(p.aux2)
	if p.seq < ep.nextDeliver {
		return
	}
	if _, ok := ep.hist.get(p.seq); !ok && !ep.hist.full() {
		key := bbKey{sender: sender, localID: p.localID}
		pl, have := ep.bbCache[key]
		if have {
			delete(ep.bbCache, key)
			ep.hist.add(&entry{seq: p.seq, kind: p.kind, sender: sender, localID: p.localID, payload: pl})
		}
		// Data missing: leave the slot empty; the gap logic NAKs and
		// the sequencer retransmits the full message.
	}
	ep.completeSendsUpToLocked(sender, p.localID)
	ep.deliverReadyLocked()
	ep.checkGapLocked()
}

// handleTentative buffers a resilience-degree message and acknowledges it if
// this member is one of the r designated ackers (the r lowest-numbered
// members other than the sequencer).
func (ep *Endpoint) handleTentative(p packet) {
	if !ep.currentViewLocked(p) {
		return
	}
	ep.noteSyncLocked(p.seq, p.aux2)
	if p.seq > ep.maxSeen {
		ep.maxSeen = p.seq
	}
	if ep.isSeq {
		return // own tentative echoed by loopback
	}
	if p.seq >= ep.nextDeliver {
		if _, ok := ep.hist.get(p.seq); !ok {
			e := entryFromPacket(p, p.sender)
			if e == nil {
				return // malformed batch body
			}
			e.tentative = true
			ep.hist.add(e) // room-checked for the entry's full span
			if e.lastSeq() > ep.maxSeen {
				ep.maxSeen = e.lastSeq()
			}
		}
	}
	// Ack duty falls on the r lowest-numbered members; counting skips the
	// sequencer, which stores everything anyway. Acking requires actually
	// holding the message — a member that joined after the message was
	// sent cannot vouch for it in recovery — AND everything ordered before
	// it: recovery redistributes each survivor's contiguously-stored
	// prefix, so an ack for a message sitting above an unfilled gap would
	// let the send complete and then be truncated by the very recovery
	// that must preserve it. A gap defers the ack; the NAK machinery fills
	// the hole and the sequencer's tentative retry collects the ack on the
	// next round. With leases enabled every member acks: acceptance gates
	// on lease holders' stored-acks, and grants churn too fast for a
	// static ack-duty subset to cover them.
	if e, stored := ep.hist.get(p.seq); stored &&
		ep.hist.contiguousTop() >= e.lastSeq() &&
		(ep.ackDutyLocked(int(p.aux)) || ep.cfg.leasesOn()) {
		ep.stats.AcksSent++
		ep.sendPkt(ep.view.sequencerAddr(), packet{typ: ptAck, seq: p.seq})
	}
	ep.checkGapLocked()
}

// ackDutyLocked reports whether this member is one of the r lowest-numbered
// non-sequencer members.
func (ep *Endpoint) ackDutyLocked(r int) bool {
	count := 0
	for _, m := range ep.view.members {
		if m.ID == ep.view.sequencer {
			continue
		}
		if m.ID == ep.self {
			return count < r
		}
		count++
	}
	return false
}

// handleLost records a loss marker: the sequencer cannot recover this
// sequence number (a resilience-0 message that died with a processor). The
// slot is filled with a non-delivering entry so the stream moves past it.
func (ep *Endpoint) handleLost(p packet) {
	if !ep.currentViewLocked(p) {
		return
	}
	if p.seq < ep.nextDeliver {
		return
	}
	if _, ok := ep.hist.get(p.seq); !ok && !ep.hist.full() {
		ep.hist.add(&entry{seq: p.seq, kind: KindLost})
		ep.stats.LostGaps++
	}
	ep.deliverReadyLocked()
	ep.checkGapLocked()
}

// handleSync folds a watermark broadcast: learn about trailing messages and
// prune local history. aux2 = 1 demands an explicit status reply. With
// leases enabled, periodic ticks also carry grant lists (adopted here), feed
// the bounded-staleness anchors, and are answered unconditionally — the
// reply is the lease heartbeat that keeps this member inside the sequencer's
// silence window.
func (ep *Endpoint) handleSync(p packet) {
	if !ep.currentViewLocked(p) {
		return
	}
	ep.noteSyncLocked(p.seq, p.aux)
	if !ep.isSeq {
		ep.recordFreshLocked(p.seq)
		if ep.cfg.leasesOn() {
			ep.adoptLeaseGrantLocked(p)
			ep.sendPkt(ep.view.sequencerAddr(), packet{typ: ptStatus})
		} else if p.aux2 == 1 {
			ep.sendPkt(ep.view.sequencerAddr(), packet{typ: ptStatus})
		}
	}
	ep.checkGapLocked()
}

// noteSyncLocked updates the high-water mark and prunes member-side history
// to the sequencer-announced floor.
func (ep *Endpoint) noteSyncLocked(seq, floor uint32) {
	if seq > ep.maxSeen {
		ep.maxSeen = seq
	}
	if !ep.isSeq && floor > ep.hist.floor {
		// Never prune undelivered entries, whatever the announcement
		// says.
		limit := floor
		if ep.nextDeliver != 0 && limit > ep.nextDeliver-1 {
			limit = ep.nextDeliver - 1
		}
		ep.hist.pruneTo(limit)
	}
}

// handleStale reacts to the sequencer telling us our membership or view is
// out of date: adopt the attached view. If we are no longer in it, we have
// been expelled.
func (ep *Endpoint) handleStale(p packet) {
	v, _, err := decodeView(p.payload)
	if err != nil {
		return
	}
	if v.incarnation < ep.view.incarnation {
		return
	}
	if _, ok := v.findAddr(ep.cfg.Self); !ok {
		ep.expelledLocked()
		return
	}
	// Redirect: a new sequencer has taken over (graceful handoff).
	ep.view.sequencer = v.sequencer
	if m, ok := v.find(v.sequencer); ok {
		ep.view.add(m) // make sure we can route to it
	}
	// Resend the in-flight window to the new sequencer immediately.
	ep.resendWindowLocked()
}

// expelledLocked terminates the endpoint after removal from the group.
func (ep *Endpoint) expelledLocked() {
	if ep.st == stDead {
		return
	}
	ep.st = stDead
	ep.cfg.Obs.Flight.Recordf(ep.cfg.Obs.Tag, "expelled from group (member %d, incarnation %d)", ep.self, ep.view.incarnation)
	ep.stopTimersLocked()
	ep.leaseDropLocked()
	ep.flushFencedDonesLocked(nil)
	ep.deliverLocked(Delivery{Kind: KindExpelled, Sender: ep.self, SenderAddr: ep.cfg.Self})
	ep.failSendQLocked(ErrNotMember)
	for _, d := range ep.leaveDone {
		d := d
		ep.enqueue(func() { d(nil) }) // out of the group, one way or another
	}
	ep.leaveDone = nil
}

// --- Gap detection and the delivery loop -------------------------------------

// checkGapLocked arms the negative-acknowledgement timer when sequence
// numbers are known to be missing — or when delivery has been blocked on a
// tentative entry whose accept is overdue. The tentative case waits a full
// RetryInterval before asking: accepts normally arrive within a round trip,
// and while the message is still tentative at the sequencer its own retry
// machinery is already re-multicasting it.
func (ep *Endpoint) checkGapLocked() {
	if ep.st != stNormal || ep.isSeq {
		return
	}
	gap := ep.hasGapLocked()
	tentStall := !gap && ep.blockedOnTentativeLocked()
	if !gap && !tentStall {
		ep.nakBackoff = 0
		return
	}
	if ep.nakTimer != nil {
		return
	}
	delay := ep.cfg.NakDelay + ep.nakStaggerLocked()
	if tentStall && delay < ep.cfg.RetryInterval {
		delay = ep.cfg.RetryInterval + ep.nakStaggerLocked()
	}
	if ep.nakBackoff > 0 {
		delay = ep.nakBackoff
	}
	ep.nakSnap = ep.nextDeliver
	ep.nakTimer = ep.after(delay, func() {
		ep.nakTimer = nil
		ep.fireNakLocked()
	})
}

// blockedOnTentativeLocked reports whether the next delivery is held up by a
// buffered tentative entry. If its accept was lost AFTER the sequencer
// finalised the message, nobody will resend it unprompted; the NAK turns
// into a refetch of the (by then accepted) message.
func (ep *Endpoint) blockedOnTentativeLocked() bool {
	e, ok := ep.hist.get(ep.nextDeliver)
	return ok && e.tentative
}

// nakStaggerLocked spreads members' retransmission requests in time. A lost
// multicast is detected by every member at the same instant; staggering by
// member id keeps the requests (and the retransmissions they trigger) from
// arriving as a synchronized burst — the negative-acknowledgement analogue of
// the paper's argument against ack implosion (§2.2).
func (ep *Endpoint) nakStaggerLocked() time.Duration {
	return time.Duration(ep.self%16) * ep.cfg.NakDelay / 2
}

// hasGapLocked reports whether some seqno in [nextDeliver, maxSeen] is
// missing or payload-less.
func (ep *Endpoint) hasGapLocked() bool {
	for s := ep.nextDeliver; s <= ep.maxSeen; s++ {
		e, ok := ep.hist.get(s)
		if !ok {
			return true
		}
		if e.tentative {
			// Waiting for an accept is not a gap — unless it has
			// been pending so long the accept is surely lost, which
			// the NAK turns into a refetch of the (by then
			// accepted) message.
			continue
		}
	}
	return false
}

// fireNakLocked sends a retransmission request covering the missing range
// (or the overdue tentative entry blocking delivery). A tentative at the
// delivery point counts as overdue only if the point has not moved since the
// timer was armed: under steady resilient traffic there is almost always
// SOME tentative briefly at the head, and pestering the sequencer about a
// moving pipeline would tax the very path the accept is about to clear.
func (ep *Endpoint) fireNakLocked() {
	if ep.st != stNormal || ep.isSeq {
		ep.nakBackoff = 0
		return
	}
	if !ep.hasGapLocked() {
		stalled := ep.blockedOnTentativeLocked() && ep.nextDeliver == ep.nakSnap
		if !stalled {
			ep.nakBackoff = 0
			ep.checkGapLocked() // still blocked but moving: keep watching the new head
			return
		}
	}
	lo := ep.nextDeliver
	for {
		if e, ok := ep.hist.get(lo); ok && !e.tentative {
			lo++
			continue
		}
		break
	}
	hi := lo
	for s := lo; s <= ep.maxSeen && s < lo+nakBatch; s++ {
		if _, ok := ep.hist.get(s); !ok {
			hi = s
		}
	}
	ep.stats.NaksSent++
	ep.cfg.Obs.Flight.Recordf(ep.cfg.Obs.Tag, "nak [%d,%d] (next %d, maxSeen %d)", lo, hi, ep.nextDeliver, ep.maxSeen)
	if ep.nakBackoff >= ep.cfg.RetryInterval {
		// The sequencer has not answered several requests — it may be
		// gone (a crash, or a departure we have not yet delivered).
		// Every member keeps history, so ask the whole group.
		ep.multicastPkt(packet{typ: ptNak, seq: lo, aux: hi})
	} else {
		ep.sendPkt(ep.view.sequencerAddr(), packet{typ: ptNak, seq: lo, aux: hi})
	}
	// Back off and re-arm until the gap closes.
	if ep.nakBackoff == 0 {
		ep.nakBackoff = ep.cfg.NakDelay * 2
	} else if ep.nakBackoff < ep.cfg.RetryInterval {
		ep.nakBackoff *= 2
	}
	ep.nakTimer = ep.after(ep.nakBackoff, func() {
		ep.nakTimer = nil
		ep.fireNakLocked()
	})
}

// deliverReadyLocked hands every ready in-order message to the application.
// Batch entries deliver as their constituent KindData messages, one per
// seqno.
func (ep *Endpoint) deliverReadyLocked() {
	if ep.fenced {
		// Failover fence: nothing becomes visible until every lease of
		// the previous regime has expired — a partitioned old holder
		// could otherwise serve reads missing state another member has
		// already exposed. Lifting the fence re-runs delivery.
		return
	}
	for {
		e, ok := ep.hist.get(ep.nextDeliver)
		if !ok || e.tentative {
			return
		}
		if e.kind == KindBatch {
			ep.deliverBatchLocked(e)
		} else {
			ep.nextDeliver++
			ep.applyDeliveryLocked(e)
		}
		if ep.st == stDead {
			return
		}
	}
}

// deliverBatchLocked emits a batch entry's payloads from the delivery point
// to the end of its range. The delivery point normally sits at an entry
// boundary; starting mid-entry (a rebased joiner) delivers only the tail.
// The receiver pays the wakeup (UserDeliver) once: follow-on messages of the
// same batch arrive in an already-drained queue and cost only queue handling
// plus the copy.
func (ep *Endpoint) deliverBatchLocked(e *entry) {
	var addr flip.Address
	if m, ok := ep.view.find(e.sender); ok {
		addr = m.Addr
	}
	first := true
	for ep.nextDeliver <= e.lastSeq() {
		i := ep.nextDeliver - e.seq
		ep.nextDeliver++
		pl := make([]byte, len(e.parts[i]))
		copy(pl, e.parts[i])
		charge := cost.UserDeliverNext
		if first {
			charge = cost.UserDeliver
			first = false
		}
		ep.deliverChargedLocked(Delivery{
			Kind: KindData, Seq: e.seq + i, Sender: e.sender,
			SenderAddr: addr, Payload: pl, Members: len(ep.view.members),
		}, charge)
		if ep.st == stDead {
			return
		}
	}
}

// applyDeliveryLocked applies membership side effects and emits the delivery
// upcall for one entry.
func (ep *Endpoint) applyDeliveryLocked(e *entry) {
	if e.kind == KindLost {
		return // the stream silently skips unrecoverable r=0 losses
	}
	d := Delivery{Kind: e.kind, Seq: e.seq, Sender: e.sender}
	if m, ok := ep.view.find(e.sender); ok {
		d.SenderAddr = m.Addr
	}
	switch e.kind {
	case KindJoin:
		v, _, err := decodeView(e.payload)
		if err == nil {
			if m, ok := v.find(e.sender); ok {
				ep.view.add(m)
				d.SenderAddr = m.Addr
				if !ep.isSeq {
					ep.pending = ep.view.clone()
				}
			}
		}
	case KindLeave:
		leaver := e.sender
		wasSequencer := leaver == ep.view.sequencer
		ep.view.remove(leaver)
		if !ep.isSeq {
			ep.pending = ep.view.clone()
		}
		if wasSequencer {
			ep.adoptNewSequencerLocked(MemberID(e.localID))
		}
		if leaver == ep.self {
			ep.leftLocked()
		}
	case KindReset:
		v, _, err := decodeView(e.payload)
		if err == nil {
			ep.view = v
			ep.pending = v.clone()
		}
	}
	d.Members = len(ep.view.members)
	if e.kind == KindData {
		pl := make([]byte, len(e.payload))
		copy(pl, e.payload)
		d.Payload = pl
	}
	ep.deliverLocked(d)
}

// deliverLocked queues the application upcall.
func (ep *Endpoint) deliverLocked(d Delivery) {
	ep.deliverChargedLocked(d, cost.UserDeliver)
}

// deliverChargedLocked queues the application upcall with an explicit
// delivery charge kind (full wakeup, or follow-on within one wakeup).
func (ep *Endpoint) deliverChargedLocked(d Delivery, k cost.Kind) {
	ep.stats.Delivered++
	ep.cfg.Meter.Charge(k, len(d.Payload))
	if ep.cfg.OnDeliver == nil {
		return
	}
	h := ep.cfg.OnDeliver
	ep.enqueue(func() { h(d) })
}
