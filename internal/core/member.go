package core

import (
	"time"

	"amoeba/internal/cost"
)

// This file is the member (non-sequencer) side of the protocol: the send
// pump with retries, receiving ordered messages, gap detection with negative
// acknowledgements, and the in-order delivery loop.

// pumpSendLocked activates the head of the send queue if idle.
func (ep *Endpoint) pumpSendLocked() {
	if len(ep.sendQ) == 0 || ep.st != stNormal {
		return
	}
	op := ep.sendQ[0]
	if op.active {
		return
	}
	op.active = true
	op.retries = 0
	ep.transmitOpLocked(op)
}

// transmitOpLocked puts the active send on the wire.
func (ep *Endpoint) transmitOpLocked(op *sendOp) {
	ep.cfg.Meter.Charge(cost.GroupOut, 0)
	if ep.isSeq {
		// The sequencer's own sends are ordered directly: one multicast
		// total. (The paper notes heavy senders were co-located with the
		// sequencer for exactly this reason.) Re-activation after a
		// recovery or handoff must not re-order an already-sequenced
		// message.
		if d, ok := ep.dedup[ep.self]; ok && d.localID == op.localID {
			if e, ok := ep.hist.get(d.seq); ok && !e.tentative {
				ep.finishSendLocked(op, nil)
			}
			// Still tentative: acceptance will complete it.
			return
		}
		if !ep.orderLocked(KindData, ep.self, op.localID, op.payload) {
			ep.armSendRetryLocked() // history full: retry later
		}
		return
	}
	seqAddr := ep.view.sequencerAddr()
	if seqAddr == 0 {
		ep.armSendRetryLocked()
		return
	}
	switch op.method {
	case MethodBB:
		// Multicast the payload; the sequencer answers with a short
		// accept. Loopback stores our own copy in the BB cache.
		ep.multicastPkt(packet{typ: ptBBData, kind: KindData, localID: op.localID, payload: op.payload})
	default:
		ep.sendPkt(seqAddr, packet{typ: ptReq, kind: KindData, localID: op.localID, payload: op.payload})
	}
	ep.armSendRetryLocked()
}

// armSendRetryLocked (re)arms the active-send retry timer.
func (ep *Endpoint) armSendRetryLocked() {
	if ep.sendTimer != nil {
		ep.sendTimer.Stop()
	}
	ep.sendTimer = ep.after(ep.cfg.RetryInterval, func() {
		ep.sendTimer = nil
		ep.retrySendLocked()
	})
}

// retrySendLocked retransmits the active send or gives up on the sequencer.
func (ep *Endpoint) retrySendLocked() {
	if len(ep.sendQ) == 0 || ep.st != stNormal {
		return
	}
	op := ep.sendQ[0]
	if !op.active {
		return
	}
	op.retries++
	ep.stats.RequestRetries++
	if op.retries > ep.cfg.MaxRetries {
		// The sequencer is not responding: the paper's failure
		// detector has spoken.
		if ep.cfg.AutoReset && !ep.isSeq {
			op.active = false // re-pumped after recovery
			ep.initiateResetLocked(ep.cfg.MinSurvivors)
			return
		}
		ep.finishSendLocked(op, ErrSequencerDead)
		return
	}
	ep.transmitOpLocked(op)
}

// finishSendLocked completes the active send and pumps the next.
func (ep *Endpoint) finishSendLocked(op *sendOp, err error) {
	if len(ep.sendQ) == 0 || ep.sendQ[0] != op {
		return
	}
	ep.sendQ = ep.sendQ[1:]
	if ep.sendTimer != nil {
		ep.sendTimer.Stop()
		ep.sendTimer = nil
	}
	if err == nil {
		ep.stats.Sent++
	}
	done := op.done
	ep.enqueue(func() { done(err) })
	ep.pumpSendLocked()
}

// completeSendIfOursLocked completes the active send when its ordering
// becomes visible (our own broadcast or accept arriving back).
func (ep *Endpoint) completeSendIfOursLocked(sender MemberID, localID uint32) {
	if sender != ep.self || len(ep.sendQ) == 0 {
		return
	}
	op := ep.sendQ[0]
	if !op.active || op.localID != localID {
		return
	}
	ep.finishSendLocked(op, nil)
}

// --- Receiving ordered messages ---------------------------------------------

// currentViewLocked gates normal-operation packets on state and view. A
// packet from a FUTURE incarnation observed in normal operation is proof
// that a recovery completed without this member — it was declared dead while
// merely slow (the paper's unreliable failure detector) and the group moved
// on. Silently dropping such packets would leave the member a zombie,
// forever discarding the new view's traffic; instead it learns of its
// expulsion at once and the application can rejoin with state transfer.
// Packets from past incarnations are stragglers and stay ignored.
func (ep *Endpoint) currentViewLocked(p packet) bool {
	if ep.st != stNormal {
		return false
	}
	if p.view == ep.view.incarnation {
		return true
	}
	if p.view > ep.view.incarnation {
		ep.expelledLocked()
	}
	return false
}

// handleBcast stores a sequenced message (PB broadcast or a retransmission).
func (ep *Endpoint) handleBcast(p packet, retrans bool) {
	if retrans {
		// Retransmissions also feed a recovering coordinator's fetch
		// and a frozen voter's catch-up.
		if ep.st != stNormal && ep.st != stRecovering && ep.st != stCoordinating {
			return
		}
	} else {
		if !ep.currentViewLocked(p) {
			return
		}
	}
	origin := p.sender
	if retrans {
		origin = MemberID(p.aux2)
	}
	ep.noteSyncLocked(p.seq, p.aux)
	if p.seq > ep.maxSeen {
		ep.maxSeen = p.seq
	}
	if p.seq < ep.nextDeliver {
		// Already delivered — but a duplicate or retransmission may
		// still be the sender's first proof that its message was
		// sequenced.
		ep.completeSendIfOursLocked(origin, p.localID)
		return
	}
	if _, ok := ep.hist.get(p.seq); !ok {
		if ep.hist.full() {
			return // refetch later via NAK once space frees
		}
		pl := make([]byte, len(p.payload))
		copy(pl, p.payload)
		ep.hist.add(&entry{seq: p.seq, kind: p.kind, sender: origin, localID: p.localID, payload: pl})
	}
	ep.completeSendIfOursLocked(origin, p.localID)
	ep.deliverReadyLocked()
	ep.checkGapLocked()
}

// handleBBData caches an unordered BB payload until its accept arrives.
func (ep *Endpoint) handleBBData(p packet) {
	if !ep.currentViewLocked(p) {
		return
	}
	key := bbKey{sender: p.sender, localID: p.localID}
	if _, ok := ep.bbCache[key]; ok {
		return
	}
	// Bound the cache: a slot per history entry is plenty; beyond that the
	// accept path will fetch from the sequencer instead.
	if len(ep.bbCache) >= ep.cfg.HistorySize {
		return
	}
	pl := make([]byte, len(p.payload))
	copy(pl, p.payload)
	ep.bbCache[key] = pl

	if ep.isSeq {
		// The sequencer orders a BB message the moment it sees the
		// data.
		delete(ep.bbCache, key)
		m, ok := ep.pending.find(p.sender)
		if !ok {
			return
		}
		_ = m
		if d, ok := ep.dedup[p.sender]; ok && p.localID <= d.localID {
			// Duplicate BB data for something already ordered: the
			// accept was lost at the sender; re-announce it.
			if e, ok := ep.hist.get(d.seq); ok && p.localID == d.localID {
				ep.multicastPkt(packet{
					typ: ptAccept, kind: e.kind, seq: e.seq,
					localID: e.localID, aux: ep.hist.floor,
					aux2: uint32(e.sender),
				})
			}
			return
		}
		ep.orderBBLocked(p.sender, p.localID, p.kind, pl)
	}
}

// handleAccept processes the sequencer's short accept: either the ordering
// of a BB message (aux2 = sender id) or the finalisation of a tentative
// message (aux2 = noMember).
func (ep *Endpoint) handleAccept(p packet) {
	if !ep.currentViewLocked(p) {
		return
	}
	ep.noteSyncLocked(p.seq, p.aux)
	if p.seq > ep.maxSeen {
		ep.maxSeen = p.seq
	}
	if MemberID(p.aux2) == noMember {
		// Tentative finalisation.
		if e, ok := ep.hist.get(p.seq); ok {
			e.tentative = false
		}
		// If we never got the tentative itself, the gap logic will
		// NAK it as a plain missing message.
		ep.completeSendIfOursLocked(senderOfTentative(ep, p.seq), p.localID)
		ep.deliverReadyLocked()
		ep.checkGapLocked()
		return
	}
	// BB ordering.
	sender := MemberID(p.aux2)
	if p.seq < ep.nextDeliver {
		return
	}
	if _, ok := ep.hist.get(p.seq); !ok && !ep.hist.full() {
		key := bbKey{sender: sender, localID: p.localID}
		pl, have := ep.bbCache[key]
		if have {
			delete(ep.bbCache, key)
			ep.hist.add(&entry{seq: p.seq, kind: p.kind, sender: sender, localID: p.localID, payload: pl})
		}
		// Data missing: leave the slot empty; the gap logic NAKs and
		// the sequencer retransmits the full message.
	}
	ep.completeSendIfOursLocked(sender, p.localID)
	ep.deliverReadyLocked()
	ep.checkGapLocked()
}

// senderOfTentative looks up who sent the tentative entry at seq, for send
// completion; noMember when unknown.
func senderOfTentative(ep *Endpoint, seq uint32) MemberID {
	if e, ok := ep.hist.get(seq); ok {
		return e.sender
	}
	return noMember
}

// handleTentative buffers a resilience-degree message and acknowledges it if
// this member is one of the r designated ackers (the r lowest-numbered
// members other than the sequencer).
func (ep *Endpoint) handleTentative(p packet) {
	if !ep.currentViewLocked(p) {
		return
	}
	ep.noteSyncLocked(p.seq, p.aux2)
	if p.seq > ep.maxSeen {
		ep.maxSeen = p.seq
	}
	if ep.isSeq {
		return // own tentative echoed by loopback
	}
	if p.seq >= ep.nextDeliver {
		if _, ok := ep.hist.get(p.seq); !ok && !ep.hist.full() {
			pl := make([]byte, len(p.payload))
			copy(pl, p.payload)
			ep.hist.add(&entry{
				seq: p.seq, kind: p.kind, sender: p.sender,
				localID: p.localID, payload: pl, tentative: true,
			})
		}
	}
	// Ack duty falls on the r lowest-numbered members; counting skips the
	// sequencer, which stores everything anyway. Acking requires actually
	// holding the message — a member that joined after the message was
	// sent cannot vouch for it in recovery.
	if _, stored := ep.hist.get(p.seq); stored && ep.ackDutyLocked(int(p.aux)) {
		ep.stats.AcksSent++
		ep.sendPkt(ep.view.sequencerAddr(), packet{typ: ptAck, seq: p.seq})
	}
	ep.checkGapLocked()
}

// ackDutyLocked reports whether this member is one of the r lowest-numbered
// non-sequencer members.
func (ep *Endpoint) ackDutyLocked(r int) bool {
	count := 0
	for _, m := range ep.view.members {
		if m.ID == ep.view.sequencer {
			continue
		}
		if m.ID == ep.self {
			return count < r
		}
		count++
	}
	return false
}

// handleLost records a loss marker: the sequencer cannot recover this
// sequence number (a resilience-0 message that died with a processor). The
// slot is filled with a non-delivering entry so the stream moves past it.
func (ep *Endpoint) handleLost(p packet) {
	if !ep.currentViewLocked(p) {
		return
	}
	if p.seq < ep.nextDeliver {
		return
	}
	if _, ok := ep.hist.get(p.seq); !ok && !ep.hist.full() {
		ep.hist.add(&entry{seq: p.seq, kind: KindLost})
		ep.stats.LostGaps++
	}
	ep.deliverReadyLocked()
	ep.checkGapLocked()
}

// handleSync folds a watermark broadcast: learn about trailing messages and
// prune local history. aux2 = 1 demands an explicit status reply.
func (ep *Endpoint) handleSync(p packet) {
	if !ep.currentViewLocked(p) {
		return
	}
	ep.noteSyncLocked(p.seq, p.aux)
	if p.aux2 == 1 && !ep.isSeq {
		ep.sendPkt(ep.view.sequencerAddr(), packet{typ: ptStatus})
	}
	ep.checkGapLocked()
}

// noteSyncLocked updates the high-water mark and prunes member-side history
// to the sequencer-announced floor.
func (ep *Endpoint) noteSyncLocked(seq, floor uint32) {
	if seq > ep.maxSeen {
		ep.maxSeen = seq
	}
	if !ep.isSeq && floor > ep.hist.floor {
		// Never prune undelivered entries, whatever the announcement
		// says.
		limit := floor
		if ep.nextDeliver != 0 && limit > ep.nextDeliver-1 {
			limit = ep.nextDeliver - 1
		}
		ep.hist.pruneTo(limit)
	}
}

// handleStale reacts to the sequencer telling us our membership or view is
// out of date: adopt the attached view. If we are no longer in it, we have
// been expelled.
func (ep *Endpoint) handleStale(p packet) {
	v, _, err := decodeView(p.payload)
	if err != nil {
		return
	}
	if v.incarnation < ep.view.incarnation {
		return
	}
	if _, ok := v.findAddr(ep.cfg.Self); !ok {
		ep.expelledLocked()
		return
	}
	// Redirect: a new sequencer has taken over (graceful handoff).
	ep.view.sequencer = v.sequencer
	if m, ok := v.find(v.sequencer); ok {
		ep.view.add(m) // make sure we can route to it
	}
	// Resend the active request to the new sequencer immediately.
	if len(ep.sendQ) > 0 && ep.sendQ[0].active {
		ep.transmitOpLocked(ep.sendQ[0])
	}
}

// expelledLocked terminates the endpoint after removal from the group.
func (ep *Endpoint) expelledLocked() {
	if ep.st == stDead {
		return
	}
	ep.st = stDead
	ep.stopTimersLocked()
	ep.deliverLocked(Delivery{Kind: KindExpelled, Sender: ep.self, SenderAddr: ep.cfg.Self})
	for _, op := range ep.sendQ {
		op := op
		ep.enqueue(func() { op.done(ErrNotMember) })
	}
	ep.sendQ = nil
	for _, d := range ep.leaveDone {
		d := d
		ep.enqueue(func() { d(nil) }) // out of the group, one way or another
	}
	ep.leaveDone = nil
}

// --- Gap detection and the delivery loop -------------------------------------

// checkGapLocked arms the negative-acknowledgement timer when sequence
// numbers are known to be missing.
func (ep *Endpoint) checkGapLocked() {
	if ep.st != stNormal || ep.isSeq {
		return
	}
	if !ep.hasGapLocked() {
		ep.nakBackoff = 0
		return
	}
	if ep.nakTimer != nil {
		return
	}
	delay := ep.cfg.NakDelay + ep.nakStaggerLocked()
	if ep.nakBackoff > 0 {
		delay = ep.nakBackoff
	}
	ep.nakTimer = ep.after(delay, func() {
		ep.nakTimer = nil
		ep.fireNakLocked()
	})
}

// nakStaggerLocked spreads members' retransmission requests in time. A lost
// multicast is detected by every member at the same instant; staggering by
// member id keeps the requests (and the retransmissions they trigger) from
// arriving as a synchronized burst — the negative-acknowledgement analogue of
// the paper's argument against ack implosion (§2.2).
func (ep *Endpoint) nakStaggerLocked() time.Duration {
	return time.Duration(ep.self%16) * ep.cfg.NakDelay / 2
}

// hasGapLocked reports whether some seqno in [nextDeliver, maxSeen] is
// missing or payload-less.
func (ep *Endpoint) hasGapLocked() bool {
	for s := ep.nextDeliver; s <= ep.maxSeen; s++ {
		e, ok := ep.hist.get(s)
		if !ok {
			return true
		}
		if e.tentative {
			// Waiting for an accept is not a gap — unless it has
			// been pending so long the accept is surely lost, which
			// the NAK turns into a refetch of the (by then
			// accepted) message.
			continue
		}
	}
	return false
}

// fireNakLocked sends a retransmission request covering the missing range.
func (ep *Endpoint) fireNakLocked() {
	if ep.st != stNormal || ep.isSeq || !ep.hasGapLocked() {
		ep.nakBackoff = 0
		return
	}
	lo := ep.nextDeliver
	for {
		if e, ok := ep.hist.get(lo); ok && !e.tentative {
			lo++
			continue
		}
		break
	}
	hi := lo
	for s := lo; s <= ep.maxSeen && s < lo+nakBatch; s++ {
		if _, ok := ep.hist.get(s); !ok {
			hi = s
		}
	}
	ep.stats.NaksSent++
	if ep.nakBackoff >= ep.cfg.RetryInterval {
		// The sequencer has not answered several requests — it may be
		// gone (a crash, or a departure we have not yet delivered).
		// Every member keeps history, so ask the whole group.
		ep.multicastPkt(packet{typ: ptNak, seq: lo, aux: hi})
	} else {
		ep.sendPkt(ep.view.sequencerAddr(), packet{typ: ptNak, seq: lo, aux: hi})
	}
	// Back off and re-arm until the gap closes.
	if ep.nakBackoff == 0 {
		ep.nakBackoff = ep.cfg.NakDelay * 2
	} else if ep.nakBackoff < ep.cfg.RetryInterval {
		ep.nakBackoff *= 2
	}
	ep.nakTimer = ep.after(ep.nakBackoff, func() {
		ep.nakTimer = nil
		ep.fireNakLocked()
	})
}

// deliverReadyLocked hands every ready in-order message to the application.
func (ep *Endpoint) deliverReadyLocked() {
	for {
		e, ok := ep.hist.get(ep.nextDeliver)
		if !ok || e.tentative {
			return
		}
		ep.nextDeliver++
		ep.applyDeliveryLocked(e)
		if ep.st == stDead {
			return
		}
	}
}

// applyDeliveryLocked applies membership side effects and emits the delivery
// upcall for one entry.
func (ep *Endpoint) applyDeliveryLocked(e *entry) {
	if e.kind == KindLost {
		return // the stream silently skips unrecoverable r=0 losses
	}
	d := Delivery{Kind: e.kind, Seq: e.seq, Sender: e.sender}
	if m, ok := ep.view.find(e.sender); ok {
		d.SenderAddr = m.Addr
	}
	switch e.kind {
	case KindJoin:
		v, _, err := decodeView(e.payload)
		if err == nil {
			if m, ok := v.find(e.sender); ok {
				ep.view.add(m)
				d.SenderAddr = m.Addr
				if !ep.isSeq {
					ep.pending = ep.view.clone()
				}
			}
		}
	case KindLeave:
		leaver := e.sender
		wasSequencer := leaver == ep.view.sequencer
		ep.view.remove(leaver)
		if !ep.isSeq {
			ep.pending = ep.view.clone()
		}
		if wasSequencer {
			ep.adoptNewSequencerLocked(MemberID(e.localID))
		}
		if leaver == ep.self {
			ep.leftLocked()
		}
	case KindReset:
		v, _, err := decodeView(e.payload)
		if err == nil {
			ep.view = v
			ep.pending = v.clone()
		}
	}
	d.Members = len(ep.view.members)
	if e.kind == KindData {
		pl := make([]byte, len(e.payload))
		copy(pl, e.payload)
		d.Payload = pl
	}
	ep.deliverLocked(d)
}

// deliverLocked queues the application upcall.
func (ep *Endpoint) deliverLocked(d Delivery) {
	ep.stats.Delivered++
	ep.cfg.Meter.Charge(cost.UserDeliver, len(d.Payload))
	if ep.cfg.OnDeliver == nil {
		return
	}
	h := ep.cfg.OnDeliver
	ep.enqueue(func() { h(d) })
}
