package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"amoeba/internal/flip"
	"amoeba/internal/netw"
	"amoeba/internal/netw/memnet"
	"amoeba/internal/sim"
)

// testTimeout bounds every blocking wait in the suite.
const testTimeout = 10 * time.Second

// newTestStack builds a FLIP stack with fast locate retries for tests.
func newTestStack(t *testing.T, station netw.Station) *flip.Stack {
	t.Helper()
	return flip.NewStack(flip.Config{
		Station:        station,
		Clock:          sim.NewRealClock(),
		LocateInterval: 5 * time.Millisecond,
	})
}

// newTestClock returns a wall clock for endpoint configs.
func newTestClock() sim.Clock { return sim.NewRealClock() }

// flipAddr names a group address.
func flipAddr(name string) flip.Address { return flip.AddressForName(name) }

// node is one member under test: a memnet station, a FLIP stack, and an
// endpoint, plus a recorder of everything delivered.
type node struct {
	t     *testing.T
	stack *flip.Stack
	tr    *FLIPTransport
	ep    *Endpoint
	addr  flip.Address

	mu         sync.Mutex
	deliveries []Delivery
	notify     chan struct{}
}

// group is a whole test group on one network.
type group struct {
	t     *testing.T
	net   *memnet.Network
	addr  flip.Address
	cfg   Config // template
	nodes []*node
}

// newGroup builds a memnet network with a creator plus n-1 joiners. mod, if
// non-nil, adjusts the Config template before any endpoint starts.
func newGroup(t *testing.T, n int, netCfg memnet.Config, mod func(*Config)) *group {
	t.Helper()
	g := &group{
		t:    t,
		net:  memnet.New(netCfg),
		addr: flip.AddressForName("test-group"),
	}
	t.Cleanup(g.net.Close)
	g.cfg = Config{
		Group:         g.addr,
		RetryInterval: 30 * time.Millisecond,
		NakDelay:      2 * time.Millisecond,
		SyncInterval:  50 * time.Millisecond,
		StatusTimeout: 30 * time.Millisecond,
		ResetTimeout:  40 * time.Millisecond,
	}
	if mod != nil {
		mod(&g.cfg)
	}
	for i := 0; i < n; i++ {
		g.addNode(i == 0)
	}
	return g
}

// addNode attaches one more member (creator when create is true, otherwise a
// joiner, waiting for the join to complete).
func (g *group) addNode(create bool) *node {
	g.t.Helper()
	station, err := g.net.Attach("node")
	if err != nil {
		g.t.Fatalf("Attach: %v", err)
	}
	stack := flip.NewStack(flip.Config{
		Station:        station,
		Clock:          sim.NewRealClock(),
		LocateInterval: 5 * time.Millisecond,
	})
	nd := &node{t: g.t, stack: stack, addr: stack.AllocAddress(), notify: make(chan struct{}, 4096)}
	cfg := g.cfg
	cfg.Self = nd.addr
	cfg.Clock = sim.NewRealClock()
	cfg.OnDeliver = func(d Delivery) {
		nd.mu.Lock()
		nd.deliveries = append(nd.deliveries, d)
		nd.mu.Unlock()
		select {
		case nd.notify <- struct{}{}:
		default:
		}
	}
	nd.tr = NewFLIPTransport(stack, nd.addr, g.addr)
	cfg.Transport = nd.tr

	if create {
		ep, err := NewCreator(cfg)
		if err != nil {
			g.t.Fatalf("NewCreator: %v", err)
		}
		nd.ep = ep
		nd.tr.Bind(ep)
		ep.Start()
	} else {
		done := make(chan error, 1)
		ep, err := NewJoiner(cfg, func(e error) { done <- e })
		if err != nil {
			g.t.Fatalf("NewJoiner: %v", err)
		}
		nd.ep = ep
		nd.tr.Bind(ep)
		ep.Start()
		select {
		case e := <-done:
			if e != nil {
				g.t.Fatalf("join: %v", e)
			}
		case <-time.After(testTimeout):
			g.t.Fatal("join timed out")
		}
	}
	g.nodes = append(g.nodes, nd)
	return nd
}

// send performs a blocking send from node i.
func (g *group) send(i int, payload []byte) error {
	g.t.Helper()
	done := make(chan error, 1)
	g.nodes[i].ep.Send(payload, func(e error) { done <- e })
	select {
	case e := <-done:
		return e
	case <-time.After(testTimeout):
		g.t.Fatalf("send from node %d timed out", i)
		return nil
	}
}

// sendAsync starts a send and returns its completion channel.
func (g *group) sendAsync(i int, payload []byte) chan error {
	done := make(chan error, 1)
	g.nodes[i].ep.Send(payload, func(e error) { done <- e })
	return done
}

// waitDeliveries blocks until node i has at least n deliveries.
func (n *node) waitDeliveries(count int) []Delivery {
	n.t.Helper()
	deadline := time.After(testTimeout)
	for {
		n.mu.Lock()
		if len(n.deliveries) >= count {
			out := make([]Delivery, len(n.deliveries))
			copy(out, n.deliveries)
			n.mu.Unlock()
			return out
		}
		n.mu.Unlock()
		select {
		case <-n.notify:
		case <-deadline:
			n.mu.Lock()
			got := len(n.deliveries)
			n.mu.Unlock()
			n.t.Fatalf("timed out waiting for %d deliveries, have %d", count, got)
		}
	}
}

// dataDeliveries filters to application data.
func dataOf(ds []Delivery) []Delivery {
	var out []Delivery
	for _, d := range ds {
		if d.Kind == KindData {
			out = append(out, d)
		}
	}
	return out
}

// waitData blocks until node has n data deliveries.
func (n *node) waitData(count int) []Delivery {
	n.t.Helper()
	deadline := time.After(testTimeout)
	for {
		n.mu.Lock()
		data := dataOf(n.deliveries)
		n.mu.Unlock()
		if len(data) >= count {
			return data
		}
		select {
		case <-n.notify:
		case <-deadline:
			n.t.Fatalf("timed out waiting for %d data deliveries, have %d", count, len(data))
		}
	}
}

// crash makes a node vanish without protocol goodbye.
func (n *node) crash() {
	n.ep.Close()
	n.tr.Unbind()
}

// requireSameOrder asserts that all nodes delivered identical sequences over
// their common seq range, after each has delivered through seq upTo.
// Deliveries are aligned by Seq because members that joined later begin their
// streams later.
func requireSameOrder(t *testing.T, nodes []*node, upTo uint32) {
	t.Helper()
	perNode := make([]map[uint32]Delivery, len(nodes))
	lo := uint32(0)
	for i, nd := range nodes {
		ds := nd.waitForSeq(upTo)
		m := make(map[uint32]Delivery, len(ds))
		for _, d := range ds {
			m[d.Seq] = d
		}
		perNode[i] = m
		if first := ds[0].Seq; first > lo {
			lo = first
		}
	}
	for s := lo; s <= upTo; s++ {
		ref, ok := perNode[0][s]
		if !ok {
			t.Fatalf("node 0 missing delivery for seq %d", s)
		}
		for i := 1; i < len(perNode); i++ {
			got, ok := perNode[i][s]
			if !ok {
				t.Fatalf("node %d missing delivery for seq %d", i, s)
			}
			if err := sameDelivery(ref, got); err != nil {
				t.Fatalf("node %d delivery at seq %d differs: %v\n ref=%+v\n got=%+v",
					i, s, err, ref, got)
			}
		}
	}
}

// waitForSeq blocks until the node has delivered through seq upTo and
// returns everything delivered.
func (n *node) waitForSeq(upTo uint32) []Delivery {
	n.t.Helper()
	deadline := time.After(testTimeout)
	for {
		n.mu.Lock()
		if len(n.deliveries) > 0 && n.deliveries[len(n.deliveries)-1].Seq >= upTo {
			out := make([]Delivery, len(n.deliveries))
			copy(out, n.deliveries)
			n.mu.Unlock()
			return out
		}
		var last uint32
		if len(n.deliveries) > 0 {
			last = n.deliveries[len(n.deliveries)-1].Seq
		}
		n.mu.Unlock()
		select {
		case <-n.notify:
		case <-deadline:
			n.t.Fatalf("timed out waiting for seq %d, at %d", upTo, last)
		}
	}
}

func sameDelivery(a, b Delivery) error {
	if a.Kind != b.Kind {
		return fmt.Errorf("kind %v vs %v", a.Kind, b.Kind)
	}
	if a.Seq != b.Seq {
		return fmt.Errorf("seq %d vs %d", a.Seq, b.Seq)
	}
	if a.Sender != b.Sender {
		return fmt.Errorf("sender %d vs %d", a.Sender, b.Sender)
	}
	if string(a.Payload) != string(b.Payload) {
		return fmt.Errorf("payload %q vs %q", a.Payload, b.Payload)
	}
	return nil
}
