package core

import (
	"amoeba/internal/flip"
)

// FLIPTransport adapts a flip.Stack to the Transport interface and routes the
// group's inbound packets into an Endpoint. It is the glue every hosting
// runtime (the public amoeba package, the experiment harnesses, tests) uses
// to put an endpoint on a network.
type FLIPTransport struct {
	stack *flip.Stack
	self  flip.Address
	group flip.Address
	bound bool
}

var _ Transport = (*FLIPTransport)(nil)

// NewFLIPTransport prepares a transport for one member: self is the member's
// process address (registered on bind), group the group address (joined on
// bind).
func NewFLIPTransport(stack *flip.Stack, self, group flip.Address) *FLIPTransport {
	return &FLIPTransport{stack: stack, self: self, group: group}
}

// Bind registers the member and group addresses, delivering inbound messages
// to ep. Call before creating traffic.
func (t *FLIPTransport) Bind(ep *Endpoint) {
	t.bound = true
	h := func(m flip.Message) { ep.HandlePacket(m) }
	t.stack.Register(t.self, h)
	t.stack.JoinGroup(t.group, h)
}

// Unbind detaches from the FLIP stack; inbound traffic stops.
func (t *FLIPTransport) Unbind() {
	if !t.bound {
		return
	}
	t.bound = false
	t.stack.Unregister(t.self)
	t.stack.LeaveGroup(t.group)
}

// Send implements Transport.
func (t *FLIPTransport) Send(dst flip.Address, payload []byte) error {
	return t.stack.Send(t.self, dst, payload)
}

// Multicast implements Transport.
func (t *FLIPTransport) Multicast(payload []byte) error {
	return t.stack.Multicast(t.self, t.group, payload)
}
