package core

import (
	"encoding/binary"
	"errors"
	"time"
)

var errBadLeaseGrants = errors.New("core: malformed lease grant payload")

// This file implements sequencer-granted read leases (Gray & Cheriton style,
// adapted to the Amoeba sequencer): the sequencer piggybacks lease grants on
// its periodic sync ticks, and a member holding an unexpired lease may serve
// linearizable reads from local state without touching the ordering path.
//
// Safety rests on three rules:
//
//  1. Write gating. With leases enabled every message takes the
//     tentative/accept path (even at resilience 0), and the sequencer
//     accepts an entry only once every member holding an unexpired grant
//     has acknowledged storing it. A completed write is therefore stored by
//     every live lease holder before its sender's Send returns — so a
//     holder that reads at its contiguous-storage watermark observes every
//     completed write.
//
//  2. The silence rule. The sequencer grants (and renews) leases only while
//     every member has been heard from within leaseSilence — a fraction of
//     the guard. A deposed sequencer on the wrong side of a partition loses
//     contact with the members that participate in the recovery (they
//     freeze and fall silent), so its granting stops within leaseSilence of
//     the recovery's start regardless of quorum configuration, and every
//     lease it ever issued expires within LeaseDur of that.
//
//  3. The failover fence. A new sequencer (recovery coordinator, recovery
//     voter, or handoff successor) suspends acceptance, delivery, and send
//     completions for LeaseDur+LeaseGuard after installing the new regime —
//     long enough for rule 2 to kill every grant of the old one. Nothing
//     the old holders might lack becomes visible (or acknowledged to a
//     client) while any of their leases could still be live.
//
// Holder-side validity is receipt-time + LeaseDur − LeaseGuard; the granter
// remembers grant-time + LeaseDur + LeaseGuard. The 2×guard asymmetry
// absorbs transit delay and clock-timer skew between the two endpoints.

// freshRingMax bounds the member-side ring of freshness anchors used for
// bounded-staleness reads.
const freshRingMax = 32

// freshMark is one bounded-staleness anchor: at local time `at`, the
// sequencer's watermark was `seq` — every write completed before `at` (less
// one network transit) has a sequence number ≤ seq.
type freshMark struct {
	at  time.Duration
	seq uint32
}

// leasesOn reports whether read leases are enabled.
func (c *Config) leasesOn() bool { return c.LeaseDur > 0 }

// leaseSilence is how long a member may be unheard before the sequencer
// suspends all granting (rule 2). It must not exceed the guard: grants stop
// at least guard before the earliest moment a recovery fence could lift.
func (c *Config) leaseSilence() time.Duration { return c.LeaseGuard * 4 / 5 }

// LeaseInfo is a snapshot of this endpoint's read-lease state.
type LeaseInfo struct {
	// Enabled reports whether the group runs with read leases.
	Enabled bool
	// Held reports whether a local linearizable read is currently
	// permitted: a valid unexpired lease (member), or granting authority
	// (sequencer).
	Held bool
	// Remaining is the time left on the held lease (members; nominal for
	// the sequencer, whose authority is re-evaluated per read).
	Remaining time.Duration
	// Watermark is the sequence number a local read must have applied
	// through before serving: every write completed before this snapshot
	// has a seqno ≤ Watermark.
	Watermark uint32
	// Incarnation is the view incarnation the lease state belongs to.
	Incarnation uint32
}

// Lease returns the endpoint's read-lease snapshot. Callers serving a local
// read should re-check Held after reading state (validity is time-bounded).
func (ep *Endpoint) Lease() LeaseInfo {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	li := LeaseInfo{Enabled: ep.cfg.leasesOn(), Incarnation: ep.view.incarnation}
	if !li.Enabled || ep.st != stNormal {
		return li
	}
	now := ep.cfg.Clock.Now()
	if ep.isSeq {
		li.Watermark = ep.nextDeliver - 1
		if ep.grantAllowedLocked(now) {
			li.Held = true
			li.Remaining = ep.cfg.leaseSilence()
		}
		return li
	}
	wm := ep.hist.contiguousTop()
	if nd := ep.nextDeliver - 1; nd > wm {
		wm = nd
	}
	li.Watermark = wm
	if ep.leaseInc == ep.view.incarnation && now < ep.leaseUntil {
		li.Held = true
		li.Remaining = ep.leaseUntil - now
	}
	return li
}

// FreshAt bounds the staleness of local state that has applied through
// `applied`: every write completed more than the returned duration ago (plus
// one network transit) is reflected in that state. ok=false means no bound is
// known and the caller must fall back to a linearizable path.
func (ep *Endpoint) FreshAt(applied uint32) (time.Duration, bool) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.st != stNormal {
		return 0, false
	}
	now := ep.cfg.Clock.Now()
	if ep.isSeq {
		// The sequencer's own state is fresh while it provably still
		// sequences (the silence rule): a depositing recovery silences
		// its members first.
		if ep.grantAllowedLocked(now) && applied >= ep.nextDeliver-1 {
			return 0, true
		}
		return 0, false
	}
	for i := len(ep.fresh) - 1; i >= 0; i-- {
		if ep.fresh[i].seq <= applied {
			return now - ep.fresh[i].at, true
		}
	}
	return 0, false
}

// recordFreshLocked notes a sync-tick watermark as a staleness anchor. Only
// sync ticks qualify: accepts and broadcasts can be transmitted after later
// ordering decisions were already made, so their (time, seq) pairs bound
// nothing.
func (ep *Endpoint) recordFreshLocked(seq uint32) {
	now := ep.cfg.Clock.Now()
	if n := len(ep.fresh); n > 0 {
		if ep.fresh[n-1].seq == seq {
			ep.fresh[n-1].at = now // same watermark, fresher anchor
			return
		}
		if seq < ep.fresh[n-1].seq {
			return // reordered straggler
		}
	}
	ep.fresh = append(ep.fresh, freshMark{at: now, seq: seq})
	if len(ep.fresh) > freshRingMax {
		ep.fresh = append(ep.fresh[:0], ep.fresh[len(ep.fresh)-freshRingMax:]...)
	}
}

// --- Granter (sequencer) side ------------------------------------------------

// heardWithinLocked reports whether member id was heard within window of now.
func (ep *Endpoint) heardWithinLocked(id MemberID, now, window time.Duration) bool {
	t, ok := ep.lastHeard[id]
	return ok && now-t <= window
}

// lastHeardSetLocked stamps a member as heard now.
func (ep *Endpoint) lastHeardSetLocked(id MemberID) {
	if !ep.cfg.leasesOn() {
		return
	}
	if ep.lastHeard == nil {
		ep.lastHeard = make(map[MemberID]time.Duration)
	}
	ep.lastHeard[id] = ep.cfg.Clock.Now()
}

// leaseSeedHeardLocked marks every current member as just heard — called when
// an endpoint assumes sequencing duty, so the silence rule measures from the
// takeover rather than from stale (or absent) history.
func (ep *Endpoint) leaseSeedHeardLocked() {
	if !ep.cfg.leasesOn() {
		return
	}
	ep.lastHeard = make(map[MemberID]time.Duration, len(ep.pending.members))
	now := ep.cfg.Clock.Now()
	for _, m := range ep.pending.members {
		if m.ID != ep.self {
			ep.lastHeard[m.ID] = now
		}
	}
}

// grantAllowedLocked is the silence rule (and the sequencer's own read
// authority): granting — and serving local reads as the sequencer — is
// allowed only while every member has been heard within leaseSilence, the
// endpoint sequences in normal state, no fence is pending, and no own leave
// is in flight. A partitioned, deposed sequencer fails this within
// leaseSilence of the recovery participants freezing.
func (ep *Endpoint) grantAllowedLocked(now time.Duration) bool {
	if !ep.cfg.leasesOn() || !ep.isSeq || ep.st != stNormal ||
		ep.fenced || ep.leaveSeq != 0 {
		return false
	}
	window := ep.cfg.leaseSilence()
	for _, m := range ep.pending.members {
		if m.ID == ep.self {
			continue
		}
		if !ep.heardWithinLocked(m.ID, now, window) {
			return false
		}
	}
	return true
}

// leaseTickLocked runs on every sync tick: prune expired grants, then (if
// granting is allowed) grant a lease to every member that is both recently
// heard and caught up to the previous tick's watermark. Returns the encoded
// grant payload for the tick packet, or nil.
func (ep *Endpoint) leaseTickLocked() []byte {
	now := ep.cfg.Clock.Now()
	ep.pruneLeasesLocked(now)
	prevTick := ep.leaseTickSeq
	ep.leaseTickSeq = ep.globalSeq
	if !ep.grantAllowedLocked(now) {
		return nil
	}
	var ids []MemberID
	for _, m := range ep.pending.members {
		if m.ID == ep.self {
			continue
		}
		if !ep.heardWithinLocked(m.ID, now, ep.cfg.leaseSilence()) {
			continue
		}
		if ep.lastRecv[m.ID] < prevTick {
			continue // not caught up: a grant would only stall its reads
		}
		ids = append(ids, m.ID)
		if ep.leases == nil {
			ep.leases = make(map[MemberID]time.Duration)
		}
		ep.leases[m.ID] = now + ep.cfg.LeaseDur + ep.cfg.LeaseGuard
	}
	if len(ids) == 0 {
		return nil
	}
	ep.stats.LeaseGrants += uint64(len(ids))
	return encodeLeaseGrants(ep.cfg.LeaseDur, ids)
}

// pruneLeasesLocked drops expired and departed grants.
func (ep *Endpoint) pruneLeasesLocked(now time.Duration) {
	for id, exp := range ep.leases {
		if now >= exp {
			delete(ep.leases, id)
			continue
		}
		if _, ok := ep.pending.find(id); !ok {
			delete(ep.leases, id)
		}
	}
}

// leaseAcceptGateLocked is rule 1's sequencer half: a tentative entry may be
// accepted only once every member with an unexpired grant has acknowledged
// storing it (and never while the failover fence is pending). A dead holder
// blocks acceptance until its lease expires — the price of its reads having
// been local.
func (ep *Endpoint) leaseAcceptGateLocked(e *entry) bool {
	if !ep.cfg.leasesOn() {
		return true
	}
	if ep.fenced {
		return false
	}
	now := ep.cfg.Clock.Now()
	for id, exp := range ep.leases {
		if now >= exp {
			continue
		}
		if _, ok := ep.pending.find(id); !ok {
			continue
		}
		if !e.acked[id] {
			return false
		}
	}
	return true
}

// leaseRetryAcceptLocked re-attempts acceptance of the oldest tentative
// entry; called when time (a lease expiry, the fence lifting) rather than a
// new ack may have unblocked the gate.
func (ep *Endpoint) leaseRetryAcceptLocked() {
	if !ep.isSeq || ep.st != stNormal {
		return
	}
	for s := ep.nextDeliver; s <= ep.globalSeq; s++ {
		e, ok := ep.hist.get(s)
		if !ok {
			return
		}
		if e.tentative {
			ep.maybeAcceptLocked(e)
			return
		}
		s = e.lastSeq()
	}
}

// --- Holder (member) side ----------------------------------------------------

// adoptLeaseGrantLocked applies a sync tick's piggybacked grant list: if this
// member is named, its lease is renewed for the granter-declared duration
// less the local guard.
func (ep *Endpoint) adoptLeaseGrantLocked(p packet) {
	dur, ids, err := decodeLeaseGrants(p.payload)
	if err != nil {
		return
	}
	for _, id := range ids {
		if id != ep.self {
			continue
		}
		until := ep.cfg.Clock.Now() + dur - ep.cfg.LeaseGuard
		if until > ep.leaseUntil || ep.leaseInc != p.view {
			ep.leaseUntil = until
			ep.leaseInc = p.view
		}
		ep.stats.LeaseRenewals++
		return
	}
}

// leaseDropLocked invalidates holder-side lease state (freeze, expulsion,
// departure).
func (ep *Endpoint) leaseDropLocked() {
	ep.leaseUntil = 0
}

// --- Failover fence -----------------------------------------------------------

// armLeaseFenceLocked starts (or extends) the failover fence: for
// LeaseDur+LeaseGuard from now, this endpoint accepts nothing, delivers
// nothing, and completes no sends — the window in which a lease granted by
// the previous regime could still be honoured somewhere. Grants of the old
// regime are forgotten; the holder-side lease (if any) dies with them.
func (ep *Endpoint) armLeaseFenceLocked() {
	if !ep.cfg.leasesOn() {
		return
	}
	now := ep.cfg.Clock.Now()
	until := now + ep.cfg.LeaseDur + ep.cfg.LeaseGuard
	ep.leases = nil
	ep.leaseUntil = 0
	ep.leaseTickSeq = ep.globalSeq
	if until <= ep.leaseFence {
		return // an equal-or-longer fence is already pending
	}
	ep.leaseFence = until
	ep.fenced = true
	ep.stats.LeaseFences++
	ep.cfg.Obs.Flight.Recordf(ep.cfg.Obs.Tag, "lease fence armed for %v (incarnation %d)", until-now, ep.view.incarnation)
	if ep.fenceTimer != nil {
		ep.fenceTimer.Stop()
	}
	ep.fenceTimer = ep.after(until-now, func() {
		ep.fenceTimer = nil
		ep.liftLeaseFenceLocked()
	})
}

// liftLeaseFenceLocked ends the fence: deferred send completions fire, and
// acceptance + delivery resume.
func (ep *Endpoint) liftLeaseFenceLocked() {
	if !ep.fenced {
		return
	}
	if now := ep.cfg.Clock.Now(); now < ep.leaseFence {
		// Extended while the timer was in flight: re-arm for the rest.
		ep.fenceTimer = ep.after(ep.leaseFence-now, func() {
			ep.fenceTimer = nil
			ep.liftLeaseFenceLocked()
		})
		return
	}
	ep.fenced = false
	ep.flushFencedDonesLocked(nil)
	ep.cfg.Obs.Flight.Recordf(ep.cfg.Obs.Tag, "lease fence lifted (incarnation %d)", ep.view.incarnation)
	ep.leaseRetryAcceptLocked()
	ep.deliverReadyLocked()
	ep.pumpSendLocked()
}

// flushFencedDonesLocked releases every send completion the fence deferred.
// err is nil on a normal lift (the sends did complete — their acknowledgement
// was merely withheld); teardown paths pass nil too, since a fenced done's
// send succeeded protocol-wise before the fence deferred it.
func (ep *Endpoint) flushFencedDonesLocked(err error) {
	for _, dones := range ep.fencedDones {
		dones := dones
		ep.enqueue(func() {
			for _, d := range dones {
				d(err)
			}
		})
	}
	ep.fencedDones = nil
}

// --- Grant wire codec ---------------------------------------------------------

// Lease grants ride the sync tick's payload: uvarint duration in
// milliseconds, uvarint grant count, then each grantee's member id as two
// big-endian bytes. An empty payload is a plain tick.

func encodeLeaseGrants(dur time.Duration, ids []MemberID) []byte {
	buf := make([]byte, 0, 2*binary.MaxVarintLen32+2*len(ids))
	buf = binary.AppendUvarint(buf, uint64(dur/time.Millisecond))
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = append(buf, byte(id>>8), byte(id))
	}
	return buf
}

func decodeLeaseGrants(body []byte) (time.Duration, []MemberID, error) {
	if len(body) == 0 {
		return 0, nil, nil
	}
	ms, w := binary.Uvarint(body)
	if w <= 0 {
		return 0, nil, errBadLeaseGrants
	}
	body = body[w:]
	n, w := binary.Uvarint(body)
	if w <= 0 || n > uint64(noMember) || uint64(len(body)-w) < 2*n {
		return 0, nil, errBadLeaseGrants
	}
	body = body[w:]
	ids := make([]MemberID, 0, n)
	for i := uint64(0); i < n; i++ {
		ids = append(ids, MemberID(body[2*i])<<8|MemberID(body[2*i+1]))
	}
	return time.Duration(ms) * time.Millisecond, ids, nil
}
