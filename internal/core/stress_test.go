package core

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"amoeba/internal/netw/memnet"
)

// These tests target specific loss interleavings and randomized fault
// schedules beyond the happy paths of basic_test.go.

func TestBBAcceptBeforeDataRecoversViaNak(t *testing.T) {
	// Drop heavily so some members see the sequencer's accept without the
	// sender's BB data multicast; the gap machinery must fetch the full
	// message from the sequencer's history.
	g := newGroup(t, 4, memnet.Config{DropRate: 0.25, Seed: 13}, func(c *Config) {
		c.Method = MethodBB
	})
	const msgs = 12
	for i := 0; i < msgs; i++ {
		if err := g.send(1, []byte(fmt.Sprintf("bb-loss-%d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for _, nd := range g.nodes {
		data := nd.waitData(msgs)
		for i := range data {
			if string(data[i].Payload) != fmt.Sprintf("bb-loss-%d", i) {
				t.Fatalf("payload %d = %q", i, data[i].Payload)
			}
		}
	}
	// The point of the test: at least one full-message retransmission
	// must have been served (accept-without-data or plain loss).
	if g.nodes[0].ep.Stats().Retransmitted == 0 {
		t.Skip("no retransmissions under this seed; loss path not exercised")
	}
}

func TestBBDuplicateDataReannouncesAccept(t *testing.T) {
	// Duplicate everything: the sequencer will see BB data for messages
	// it already ordered and must re-announce the accept rather than
	// re-order.
	g := newGroup(t, 3, memnet.Config{DupRate: 0.9, Seed: 17}, func(c *Config) {
		c.Method = MethodBB
	})
	const msgs = 10
	for i := 0; i < msgs; i++ {
		if err := g.send(1, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for _, nd := range g.nodes {
		data := nd.waitData(msgs)
		if len(data) != msgs {
			t.Fatalf("delivered %d, want exactly %d (duplicates ordered twice?)", len(data), msgs)
		}
		for i := range data {
			if data[i].Payload[0] != byte(i) {
				t.Fatalf("order broken at %d", i)
			}
		}
	}
	// No duplicate ordering at the sequencer.
	if got := g.nodes[0].ep.Stats().Ordered; got != msgs+3 { // +3 joins
		t.Fatalf("sequencer ordered %d messages, want %d", got, msgs+3)
	}
}

func TestIdleTailRecoveredBySync(t *testing.T) {
	// The final broadcast is lost at a member and nothing follows; only
	// the sequencer's periodic sync watermark can expose the gap.
	g := newGroup(t, 2, memnet.Config{}, func(c *Config) {
		c.SyncInterval = 25 * time.Millisecond
	})
	// Partition the member just long enough to miss one message.
	g.net.Isolate(1, true)
	if err := g.send(0, []byte("tail")); err != nil {
		t.Fatalf("send: %v", err)
	}
	g.net.Isolate(1, false)
	data := g.nodes[1].waitData(1)
	if string(data[0].Payload) != "tail" {
		t.Fatalf("tail = %q", data[0].Payload)
	}
}

func TestConcurrentJoinersAllAdmitted(t *testing.T) {
	g := newGroup(t, 1, memnet.Config{}, nil)
	const joiners = 5
	var wg sync.WaitGroup
	errs := make(chan error, joiners)
	var mu sync.Mutex
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// addNode mutates shared test state; serialise the test
			// harness part, not the protocol part.
			mu.Lock()
			defer mu.Unlock()
			defer func() {
				if r := recover(); r != nil {
					errs <- fmt.Errorf("join panicked: %v", r)
				}
			}()
			g.addNode(false)
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(testTimeout)
	for {
		info := g.nodes[0].ep.Info()
		if len(info.Members) == joiners+1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("membership = %d, want %d", len(g.nodes[0].ep.Info().Members), joiners+1)
		case <-time.After(5 * time.Millisecond):
		}
	}
	// Distinct member ids all around.
	seen := map[MemberID]bool{}
	for _, m := range g.nodes[0].ep.Info().Members {
		if seen[m.ID] {
			t.Fatalf("duplicate member id %d", m.ID)
		}
		seen[m.ID] = true
	}
	// The grown group still orders.
	if err := g.send(3, []byte("after-join-storm")); err != nil {
		t.Fatalf("send: %v", err)
	}
	g.nodes[5].waitData(1)
}

func TestJoinAckLossRetriesToSameIdentity(t *testing.T) {
	// Heavy loss makes the first join ack likely to vanish; the joiner's
	// retries must converge on a single admission, not several.
	g := newGroup(t, 2, memnet.Config{DropRate: 0.4, Seed: 23}, func(c *Config) {
		c.RetryInterval = 15 * time.Millisecond
		c.MaxRetries = 100
	})
	nd := g.addNode(false)
	info := nd.ep.Info()
	if info.Self == noMember {
		t.Fatalf("joiner has no id: %+v", info)
	}
	deadline := time.After(testTimeout)
	for len(g.nodes[0].ep.Info().Members) != 3 {
		select {
		case <-deadline:
			t.Fatalf("sequencer sees %d members, want 3 (double admission?)",
				len(g.nodes[0].ep.Info().Members))
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestSequencerLeaveWithLaggingMember(t *testing.T) {
	// A member is partitioned when the sequencer leaves; the handoff must
	// not strand it: after healing it catches up from the new sequencer.
	g := newGroup(t, 3, memnet.Config{}, func(c *Config) {
		c.SyncInterval = 25 * time.Millisecond
	})
	for i := 0; i < 3; i++ {
		if err := g.send(0, []byte{byte(i)}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	g.nodes[2].waitData(3)
	g.net.Isolate(2, true)
	if err := await(t, "leave", func(d func(error)) { g.nodes[0].ep.Leave(d) }); err != nil {
		t.Fatalf("sequencer leave: %v", err)
	}
	if err := g.send(1, []byte("after-handoff")); err != nil {
		t.Fatalf("send after handoff: %v", err)
	}
	g.net.Isolate(2, false)
	data := g.nodes[2].waitData(4)
	if string(data[3].Payload) != "after-handoff" {
		t.Fatalf("lagging member got %q", data[3].Payload)
	}
	info := g.nodes[2].ep.Info()
	if info.Sequencer != 1 {
		t.Fatalf("lagging member's sequencer = %d", info.Sequencer)
	}
}

// TestTotalOrderPropertyUnderRandomFaults is the suite's property test: for
// arbitrary fault-injection seeds and rates, all members of a busy group
// deliver identical prefixes. quick.Check drives the schedule space.
func TestTotalOrderPropertyUnderRandomFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	prop := func(seed int64, dropPct, dupPct uint8) bool {
		drop := float64(dropPct%25) / 100 // 0–24%
		dup := float64(dupPct%20) / 100   // 0–19%
		g := newGroup(t, 3, memnet.Config{
			DropRate: drop, DupRate: dup, Seed: seed,
		}, nil)
		const perSender = 6
		var wg sync.WaitGroup
		ok := true
		var mu sync.Mutex
		for s := 0; s < 3; s++ {
			s := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perSender; i++ {
					done := make(chan error, 1)
					g.nodes[s].ep.Send([]byte(fmt.Sprintf("%d-%d", s, i)), func(e error) { done <- e })
					select {
					case e := <-done:
						if e != nil {
							mu.Lock()
							ok = false
							mu.Unlock()
							return
						}
					case <-time.After(testTimeout):
						mu.Lock()
						ok = false
						mu.Unlock()
						return
					}
				}
			}()
		}
		wg.Wait()
		if !ok {
			return false
		}
		last := g.nodes[0].waitData(3 * perSender)[3*perSender-1].Seq
		requireSameOrder(t, g.nodes, last)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
